package simjoin

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func unitSquareCluster() *Dataset {
	return FromPoints([][]float64{
		{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9},
	})
}

func TestSelfJoinAllAlgorithmsAgree(t *testing.T) {
	ds, err := Synthetic("clustered", 400, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	var want []Pair
	for _, algo := range Algorithms() {
		res, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if want == nil {
			want = res.Pairs
			if len(want) == 0 {
				t.Fatal("degenerate test: no pairs")
			}
			continue
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", algo, len(res.Pairs), len(want))
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("%s: pair %d = %v, want %v", algo, i, res.Pairs[i], want[i])
			}
		}
	}
}

func TestJoinAllAlgorithmsAgree(t *testing.T) {
	a, _ := Synthetic("uniform", 300, 5, 1)
	b, _ := Synthetic("clustered", 200, 5, 2)
	var want []Pair
	for _, algo := range Algorithms() {
		res, err := Join(a, b, Options{Eps: 0.15, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if want == nil {
			want = res.Pairs
			if len(want) == 0 {
				t.Fatal("degenerate test: no pairs")
			}
			continue
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", algo, len(res.Pairs), len(want))
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("%s: pair mismatch at %d", algo, i)
			}
		}
	}
}

func TestSelfJoinDefaultsAndStats(t *testing.T) {
	res, err := SelfJoin(unitSquareCluster(), Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{0, 1}, {2, 3}}
	if len(res.Pairs) != 2 || res.Pairs[0] != want[0] || res.Pairs[1] != want[1] {
		t.Fatalf("pairs = %v, want %v", res.Pairs, want)
	}
	if res.Stats.Results != 2 {
		t.Errorf("Stats.Results = %d", res.Stats.Results)
	}
	if res.Stats.Elapsed <= 0 {
		t.Error("Stats.Elapsed not positive")
	}
	for _, p := range res.Pairs {
		if p.I >= p.J {
			t.Errorf("self-join pair %v not ordered", p)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	ds := unitSquareCluster()
	for name, opt := range map[string]Options{
		"zero eps":   {},
		"nan eps":    {Eps: math.NaN()},
		"bad algo":   {Eps: 0.1, Algorithm: "quantum"},
		"bad metric": {Eps: 0.1, Metric: Metric(9)},
	} {
		if _, err := SelfJoin(ds, opt); err == nil {
			t.Errorf("%s accepted", name)
		}
		if _, err := Join(ds, ds, opt); err == nil {
			t.Errorf("join %s accepted", name)
		}
	}
}

func TestMetricsDiffer(t *testing.T) {
	// Points at L2 distance just over ε but L1 distance well over and Linf
	// under: the metric option must change the result.
	ds := FromPoints([][]float64{{0, 0}, {0.08, 0.08}})
	within := func(m Metric) bool {
		res, err := SelfJoin(ds, Options{Eps: 0.1, Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Pairs) == 1
	}
	if !within(Linf) { // 0.08 ≤ 0.1
		t.Error("Linf should match")
	}
	if !within(L2) { // 0.113 > 0.1 → no... sqrt(2)*0.08 = 0.113
		t.Log("L2 0.113 > 0.1")
	}
	if within(L2) {
		t.Error("L2 should not match (0.113 > 0.1)")
	}
	if within(L1) { // 0.16 > 0.1
		t.Error("L1 should not match")
	}
}

func TestMetricStringAndParse(t *testing.T) {
	for _, m := range []Metric{L2, L1, Linf} {
		back, err := ParseMetric(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed", m)
		}
	}
	if _, err := ParseMetric("hamming"); err == nil {
		t.Error("ParseMetric(hamming) accepted")
	}
}

func TestCollectPairsDisabled(t *testing.T) {
	ds, _ := Synthetic("uniform", 200, 3, 3)
	off := false
	res, err := SelfJoin(ds, Options{Eps: 0.2, CollectPairs: &off})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Error("pairs collected despite CollectPairs=false")
	}
	if res.Stats.Results == 0 {
		t.Error("Stats.Results empty; counting must still work")
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	ds, _ := Synthetic("uniform", 2000, 5, 4)
	for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmKDTree} {
		serial, err := SelfJoin(ds, Options{Eps: 0.08, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		par, err := SelfJoin(ds, Options{Eps: 0.08, Algorithm: algo, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Pairs) != len(par.Pairs) {
			t.Fatalf("%s: parallel %d pairs, serial %d", algo, len(par.Pairs), len(serial.Pairs))
		}
		for i := range serial.Pairs {
			if serial.Pairs[i] != par.Pairs[i] {
				t.Fatalf("%s: pair %d differs", algo, i)
			}
		}
	}
}

func TestEKDBTuningKnobs(t *testing.T) {
	ds, _ := Synthetic("clustered", 800, 8, 5)
	base, _ := SelfJoin(ds, Options{Eps: 0.1})
	for _, opt := range []Options{
		{Eps: 0.1, LeafThreshold: 4},
		{Eps: 0.1, LeafThreshold: 512},
		{Eps: 0.1, BiasedSplit: true},
		{Eps: 0.1, BiasedSplit: true, LeafThreshold: 16, Workers: 3},
	} {
		res, err := SelfJoin(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) != len(base.Pairs) {
			t.Errorf("opts %+v changed the answer: %d vs %d pairs", opt, len(res.Pairs), len(base.Pairs))
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := unitSquareCluster()
	for _, name := range []string{"pts.csv", "pts.bin"} {
		p := filepath.Join(dir, name)
		if err := ds.Save(p); err != nil {
			t.Fatal(err)
		}
		back, err := Load(p)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != ds.Len() || back.Dims() != ds.Dims() {
			t.Fatalf("%s: shape changed", name)
		}
		for i := 0; i < ds.Len(); i++ {
			for k := 0; k < ds.Dims(); k++ {
				if back.Point(i)[k] != ds.Point(i)[k] {
					t.Fatalf("%s: value changed", name)
				}
			}
		}
	}
}

func TestReadCSVPublic(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil || ds.Len() != 2 {
		t.Fatalf("ReadCSV: %v, %d", err, ds.Len())
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3,4") {
		t.Error("WriteCSV lost data")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic("nope", 10, 2, 1); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := Synthetic("uniform", 0, 2, 1); err == nil {
		t.Error("zero n accepted")
	}
	if got := SyntheticKinds(); len(got) != 4 {
		t.Errorf("SyntheticKinds = %v", got)
	}
}

func TestTimeSeriesFacade(t *testing.T) {
	series := RandomWalks(20, 64, 7)
	feats := TimeSeriesFeatures(series, 4)
	if feats.Len() != 20 || feats.Dims() != 8 {
		t.Fatalf("features shape %dx%d", feats.Len(), feats.Dims())
	}
	// Lower-bounding: feature distance ≤ sequence distance for a few pairs.
	for i := 0; i < 5; i++ {
		fd := SeqDist(feats.Point(i), feats.Point(i+1))
		sd := SeqDist(series[i], series[i+1])
		if fd > sd+1e-9 {
			t.Fatalf("feature distance %g exceeds sequence distance %g", fd, sd)
		}
	}
}

func TestNeighborIndex(t *testing.T) {
	ds := unitSquareCluster()
	idx := NewNeighborIndex(ds)
	got := idx.Range([]float64{0, 0}, L2, 0.06)
	if len(got) != 2 { // itself and {0.05, 0}
		t.Fatalf("Range = %v", got)
	}
	if got2 := idx.Range([]float64{10, 10}, L2, 0.5); len(got2) != 0 {
		t.Errorf("far query hit %v", got2)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}

func TestSubsequenceFacade(t *testing.T) {
	series := make([]float64, 300)
	for i := range series {
		series[i] = float64(i % 17)
	}
	feats := SlidingFeatures(series, 32, 3)
	if len(feats) != 300-32+1 || len(feats[0]) != 6 {
		t.Fatalf("sliding features shape %dx%d", len(feats), len(feats[0]))
	}
	// A window matched against itself at eps 0 epsilon-ish must be found.
	query := append([]float64(nil), series[40:72]...)
	got := SubsequenceMatches(series, query, 3, 0.001)
	found := false
	for _, off := range got {
		if off == 40 {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-match at offset 40 missing: %v", got)
	}
}

func TestCollectPairsDisabledJoin(t *testing.T) {
	a, _ := Synthetic("clustered", 500, 4, 12)
	b, _ := Synthetic("clustered", 500, 4, 12)
	off := false
	counted, err := Join(a, b, Options{Eps: 0.1, CollectPairs: &off})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Join(a, b, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(counted.Pairs) != 0 {
		t.Error("pairs collected despite CollectPairs=false")
	}
	if counted.Stats.Results != full.Stats.Results || counted.Stats.Results == 0 {
		t.Errorf("counting-only Results = %d, full = %d", counted.Stats.Results, full.Stats.Results)
	}
	// Counting-only self-join parallel path too.
	par, err := SelfJoin(a, Options{Eps: 0.1, CollectPairs: &off, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ser, _ := SelfJoin(a, Options{Eps: 0.1})
	if par.Stats.Results != ser.Stats.Results {
		t.Errorf("parallel counting = %d, want %d", par.Stats.Results, ser.Stats.Results)
	}
}
