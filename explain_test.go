package simjoin

import "testing"

func TestExplainResolvesAlgorithm(t *testing.T) {
	ds, _ := Synthetic("clustered", 2000, 8, 7)

	// Default resolves to the library's primary engine, prediction filled.
	ex, err := Explain(ds, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Algorithm != AlgorithmEKDB || ex.Requested != "" {
		t.Fatalf("default Explain = %+v, want ekdb", ex)
	}
	if ex.Plan.EstimatedPairs < 0 {
		t.Fatalf("default Explain did not price: %+v", ex.Plan)
	}

	// Auto resolves to whatever the planner picks.
	ex, err = Explain(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Algorithm == AlgorithmAuto || ex.Algorithm == "" {
		t.Fatalf("auto Explain left algorithm unresolved: %+v", ex)
	}
	if ex.Algorithm != ex.Plan.Algorithm {
		t.Fatalf("auto Explain engine %q != plan choice %q", ex.Algorithm, ex.Plan.Algorithm)
	}

	// An explicit algorithm is honored but still priced.
	ex, err = Explain(ds, Options{Eps: 0.1, Algorithm: AlgorithmGrid})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Algorithm != AlgorithmGrid || ex.Requested != AlgorithmGrid {
		t.Fatalf("explicit Explain = %+v, want grid", ex)
	}
	if ex.Plan.EstimatedPairs < 0 {
		t.Fatalf("explicit Explain did not price: %+v", ex.Plan)
	}
}

func TestExplainMatchesExecution(t *testing.T) {
	ds, _ := Synthetic("clustered", 2000, 8, 7)
	ds.EnableSketch()
	ex, err := Explain(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Plan.Sketched {
		t.Fatalf("sketched dataset not priced from the sketch: %+v", ex.Plan)
	}
	var st JoinStats
	if _, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != ex.Algorithm {
		t.Fatalf("Explain said %q, execution ran %q", ex.Algorithm, st.Algorithm)
	}
	if st.EstimatedPairs != ex.Plan.EstimatedPairs {
		t.Fatalf("Explain predicted %d, execution predicted %d", ex.Plan.EstimatedPairs, st.EstimatedPairs)
	}
}

func TestExplainValidates(t *testing.T) {
	ds, _ := Synthetic("uniform", 100, 4, 1)
	if _, err := Explain(ds, Options{Eps: -1}); err == nil {
		t.Fatal("Explain accepted a negative eps")
	}
	if _, err := Explain(ds, Options{Eps: 0.1, Algorithm: "bogus"}); err == nil {
		t.Fatal("Explain accepted an unknown algorithm")
	}
	a, _ := Synthetic("uniform", 100, 4, 1)
	b, _ := Synthetic("uniform", 100, 5, 2)
	if _, err := ExplainJoin(a, b, Options{Eps: 0.1}); err == nil {
		t.Fatal("ExplainJoin accepted mismatched dims")
	}
}

func TestExplainJoinResolves(t *testing.T) {
	a, _ := Synthetic("clustered", 1500, 6, 3)
	b, _ := Synthetic("clustered", 1500, 6, 4)
	ex, err := ExplainJoin(a, b, Options{Eps: 0.1, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Algorithm == AlgorithmAuto || ex.Algorithm == "" {
		t.Fatalf("ExplainJoin left algorithm unresolved: %+v", ex)
	}
	if ex.Plan.EstimatedPairs < 0 {
		t.Fatalf("ExplainJoin did not price: %+v", ex.Plan)
	}
}

// TestStreamingFillsEstimatedPairs covers JoinStats.EstimatedPairs on
// the streaming path: SelfJoinEach under AlgorithmAuto must report the
// same pre-run estimate a collecting run does, and count every pair.
func TestStreamingFillsEstimatedPairs(t *testing.T) {
	ds, _ := Synthetic("clustered", 2000, 8, 9)
	ds.EnableSketch()
	var streamed JoinStats
	var n int64
	if _, err := SelfJoinEach(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto, Stats: &streamed}, func(i, j int) {
		n++
	}); err != nil {
		t.Fatal(err)
	}
	if streamed.EstimatedPairs < 0 {
		t.Fatalf("streaming run did not fill EstimatedPairs: %+v", streamed)
	}
	if streamed.PairsEmitted != n {
		t.Fatalf("streaming PairsEmitted %d, callback saw %d", streamed.PairsEmitted, n)
	}
	var collected JoinStats
	if _, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto, Stats: &collected}); err != nil {
		t.Fatal(err)
	}
	if streamed.EstimatedPairs != collected.EstimatedPairs {
		t.Fatalf("streaming estimate %d != collecting estimate %d", streamed.EstimatedPairs, collected.EstimatedPairs)
	}
}
