package simjoin

import "simjoin/internal/obsv/trace"

// Tracing follows the same zero-cost-when-off rule as Options.Stats:
// pass Options.Trace and every public entry point records one child
// span (named after the entry point) carrying the run's work counters,
// with "build" and "probe" child spans synthesized from the engines'
// phase timers. Leave it nil and the feature costs one pointer check.
//
// The types are aliases of internal/obsv/trace so the library, the
// daemons and the CLI share one span model; library users only ever
// need NewTracer, Tracer.Start and Span.End.

// Tracer mints spans and retains the most recent completed traces in a
// fixed-capacity ring. Safe for concurrent use; a nil *Tracer is a
// valid disabled tracer.
type Tracer = trace.Tracer

// Span is one timed node of a trace. All methods are no-ops on a nil
// receiver, so a nil Options.Trace disables tracing end to end.
type Span = trace.Span

// TraceData is one completed trace as retained by a Tracer's ring.
type TraceData = trace.TraceData

// SpanData is one completed span within a TraceData.
type SpanData = trace.SpanData

// SpanAttr is one key/value annotation on a completed span.
type SpanAttr = trace.Attr

// SpanCounter is one integer measurement on a completed span.
type SpanCounter = trace.Counter

// NewTracer returns a Tracer retaining the last capacity completed
// traces (a package default when capacity <= 0).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }
