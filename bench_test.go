package simjoin_test

// One testing.B benchmark per experiment of the evaluation (DESIGN.md §4).
// These are the micro-level counterparts of cmd/repro: each pins a
// representative point of its figure's sweep so `go test -bench .` gives a
// stable, comparable timing of the same code paths. Regenerate the full
// curves with `go run ./cmd/repro`.

import (
	"runtime"
	"testing"

	"simjoin"

	"simjoin/internal/bench"
	"simjoin/internal/core"
	"simjoin/internal/dataset"
	"simjoin/internal/dft"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// benchSelf times one algorithm on one workload, reporting pairs found.
func benchSelf(b *testing.B, algo string, ds *dataset.Dataset, eps float64) {
	b.Helper()
	b.ReportAllocs()
	var pairsFound int64
	for i := 0; i < b.N; i++ {
		r := bench.RunSelf(algo, ds, vec.L2, eps)
		pairsFound = r.Pairs
	}
	b.ReportMetric(float64(pairsFound), "pairs")
}

// BenchmarkF1ScaleN pins the N=10k point of figure F1 for every algorithm.
func BenchmarkF1ScaleN(b *testing.B) {
	ds := bench.Uniform(10000, 8, 0xF1)
	for _, algo := range bench.AlgoNames {
		b.Run(algo, func(b *testing.B) { benchSelf(b, algo, ds, 0.1) })
	}
}

// BenchmarkF2Dimensionality pins three dimensionalities of figure F2 for
// the tree-based contenders.
func BenchmarkF2Dimensionality(b *testing.B) {
	for _, d := range []int{4, 16, 28} {
		ds := bench.Uniform(8000, d, 0xF2)
		eps := bench.CalibrateEps(ds, vec.L2, 16000)
		for _, algo := range []string{"kdtree", "rtree", "rplus", "grid", "ekdb"} {
			b.Run(benchName(algo, "d", d), func(b *testing.B) { benchSelf(b, algo, ds, eps) })
		}
	}
}

// BenchmarkF3Epsilon pins a small and a large ε of figure F3.
func BenchmarkF3Epsilon(b *testing.B) {
	ds := bench.Uniform(8000, 8, 0xF3)
	for _, eps := range []float64{0.04, 0.16} {
		for _, algo := range []string{"grid", "ekdb"} {
			b.Run(benchNameF(algo, "eps", eps), func(b *testing.B) { benchSelf(b, algo, ds, eps) })
		}
	}
}

// BenchmarkF4LeafThreshold ablates the ε-kdB leaf capacity (figure F4).
func BenchmarkF4LeafThreshold(b *testing.B) {
	ds := bench.Uniform(10000, 8, 0xF4)
	for _, leaf := range []int{16, 64, 1024} {
		b.Run(benchName("ekdb", "leaf", leaf), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := core.Build(ds, 0.1, core.Config{LeafThreshold: leaf})
				var sink pairs.Counter
				t.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.1}, &sink)
			}
		})
	}
}

// BenchmarkF5Candidates measures the pure filtering cost at high
// dimensionality (figure F5's d=28 point).
func BenchmarkF5Candidates(b *testing.B) {
	ds := bench.Uniform(6000, 28, 0xF5)
	eps := bench.CalibrateEps(ds, vec.L2, 12000)
	for _, algo := range []string{"grid", "rtree", "rplus", "ekdb"} {
		b.Run(algo, func(b *testing.B) { benchSelf(b, algo, ds, eps) })
	}
}

// BenchmarkF6Distributions pins the zipf (most skewed) workload of F6.
func BenchmarkF6Distributions(b *testing.B) {
	ds := synth.Generate(synth.Config{N: 8000, Dims: 8, Seed: 0xF6, Dist: synth.Zipf})
	for _, algo := range []string{"grid", "zorder", "ekdb"} {
		b.Run(algo, func(b *testing.B) { benchSelf(b, algo, ds, 0.08) })
	}
}

// BenchmarkF7External times the two external algorithms at a tight buffer
// budget (figure F7's left edge).
func BenchmarkF7External(b *testing.B) {
	ds := bench.Uniform(10000, 4, 0xF7)
	cfg := core.ExternalConfig{PoolPages: 16}
	opt := join.Options{Metric: vec.L2, Eps: 0.05}
	b.Run("ekdb-ext", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink pairs.Counter
			core.ExternalSelfJoin(ds, opt, cfg, &sink)
		}
	})
	b.Run("bnl-ext", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink pairs.Counter
			core.ExternalBlockNestedLoopSelfJoin(ds, opt, cfg, &sink)
		}
	})
}

// BenchmarkF8TimeSeries times the DFT feature pipeline (figure F8's k=4
// point): feature extraction plus feature-space join.
func BenchmarkF8TimeSeries(b *testing.B) {
	series := synth.SimilarWalkPairs(2000, 50, 128, 1, 0.05, 0xF8)
	b.Run("features-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dft.FeatureDataset(series, 4)
		}
	})
	feats := dft.FeatureDataset(series, 4)
	b.Run("filter-join-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink pairs.Counter
			core.SelfJoin(feats, join.Options{Metric: vec.L2, Eps: 2}, &sink)
		}
	})
}

// BenchmarkT1Summary times the public API end to end (table T1's workload)
// including pair collection, serial vs parallel ε-kdB.
func BenchmarkT1Summary(b *testing.B) {
	ds, err := simjoin.Synthetic("clustered", 8000, 8, 0x71)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ekdb-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ekdb-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.05, Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT2Breakdown separates ε-kdB build from join (table T2).
func BenchmarkT2Breakdown(b *testing.B) {
	ds := synth.Generate(synth.Config{N: 10000, Dims: 8, Seed: 0x73, Dist: synth.GaussianClusters})
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Build(ds, 0.05, core.Config{})
		}
	})
	t := core.Build(ds, 0.05, core.Config{})
	b.Run("join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sink pairs.Counter
			t.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.05}, &sink)
		}
	})
}

func benchName(algo, k string, v int) string {
	return algo + "/" + k + "=" + itoa(v)
}

func benchNameF(algo, k string, v float64) string {
	return algo + "/" + k + "=" + ftoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	// Two decimal places are all the bench names need.
	whole := int(v)
	frac := int(v*100+0.5) - whole*100
	return itoa(whole) + "p" + itoa(frac)
}

// BenchmarkT3TwoSetJoinWorkers times the parallel two-set join engine at
// the tentpole's acceptance scale — a 100k×100k uniform workload —
// pinning Workers=1 against Workers=GOMAXPROCS over identical inputs.
// TestJoinParallelLargeMatchesSerial asserts both configurations produce
// the identical sorted pair set; this benchmark times them (count-only,
// so the measurement is the join engine, not result buffering).
func BenchmarkT3TwoSetJoinWorkers(b *testing.B) {
	a, err := simjoin.Synthetic("uniform", 100000, 8, 0x75)
	if err != nil {
		b.Fatal(err)
	}
	c, err := simjoin.Synthetic("uniform", 100000, 8, 0x76)
	if err != nil {
		b.Fatal(err)
	}
	no := false
	// Floor the parallel leg at 2 so the two sub-benchmarks stay distinct
	// even on a single-core runner.
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 2
	}
	for _, workers := range []int{1, parallel} {
		b.Run(benchName("ekdb", "workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pairsFound int64
			for i := 0; i < b.N; i++ {
				res, err := simjoin.Join(a, c, simjoin.Options{
					Eps: 0.1, Workers: workers, CollectPairs: &no,
				})
				if err != nil {
					b.Fatal(err)
				}
				pairsFound = res.Stats.Results
			}
			b.ReportMetric(float64(pairsFound), "pairs")
		})
	}
}
