package simjoin

import (
	"math"

	"simjoin/internal/estimate"
)

// Plan is the planner's pre-run report for a prospective join: what
// AlgorithmAuto would run and the result size it predicts. PlanSelfJoin
// and PlanJoin expose it so serving layers can price a query — for
// admission control, capacity answers, or predicted-vs-actual
// monitoring — without running the join.
type Plan struct {
	// Algorithm is what AlgorithmAuto would pick for this workload.
	Algorithm Algorithm
	// EstimatedPairs is the predicted result size (self-joins count
	// unordered pairs).
	EstimatedPairs int64
	// Selectivity is EstimatedPairs over the total pair count, in [0, 1].
	Selectivity float64
	// Sketched reports whether a resident sketch answered (true) or the
	// sampling estimator ran (false).
	Sketched bool
}

// PlanSelfJoin predicts a self-join over ds at the given metric and ε:
// answered by the dataset's attached sketch when one is present — no
// pass over the raw points — and by the sampling estimator otherwise.
// Unlike the planning AlgorithmAuto does inline (which skips estimating
// when the algorithm choice is forced anyway), the returned prediction
// is always filled.
func PlanSelfJoin(ds *Dataset, m Metric, eps float64) Plan {
	im := m.internal()
	if sk := ds.sk.internal(); sk != nil {
		return toPlan(estimate.PlanSketch(sk, ds.Len(), im, eps))
	}
	p := estimate.Plan(ds.internal(), im, eps, autoSeed)
	if p.Pairs < 0 {
		n := int64(ds.Len())
		total := n * (n - 1) / 2
		switch {
		case n < 2 || !(eps > 0):
			p.Pairs, p.Selectivity = 0, 0
		case math.IsInf(eps, 1):
			p.Pairs, p.Selectivity = total, 1
		default:
			p.Pairs = estimate.SelfJoinSize(ds.internal(), im, eps, 0, autoSeed)
			p.Selectivity = float64(p.Pairs) / float64(total)
		}
	}
	return toPlan(p)
}

// PlanJoin is PlanSelfJoin for a two-set join. The sketch path needs a
// sketch on each side; anything less falls back to sampling.
func PlanJoin(a, b *Dataset, m Metric, eps float64) Plan {
	im := m.internal()
	if ska, skb := a.sk.internal(), b.sk.internal(); ska != nil && skb != nil {
		return toPlan(estimate.PlanJoinSketch(ska, skb, a.Len(), b.Len(), im, eps))
	}
	p := estimate.PlanJoin(a.internal(), b.internal(), im, eps, autoSeed)
	if p.Pairs < 0 {
		total := int64(a.Len()) * int64(b.Len())
		switch {
		case total == 0 || !(eps > 0):
			p.Pairs, p.Selectivity = 0, 0
		case math.IsInf(eps, 1):
			p.Pairs, p.Selectivity = total, 1
		default:
			p.Pairs = estimate.JoinSize(a.internal(), b.internal(), im, eps, 0, autoSeed)
			p.Selectivity = float64(p.Pairs) / float64(total)
		}
	}
	return toPlan(p)
}

// Explanation is the EXPLAIN report for a prospective join: the request
// as the planner understood it, the engine that would actually run, and
// the always-filled size prediction — everything a caller needs to
// judge a query before paying for it.
type Explanation struct {
	// Eps and Metric echo the request.
	Eps    float64
	Metric Metric
	// Requested is the algorithm the options named ("" when the caller
	// left the default).
	Requested Algorithm
	// Algorithm is the engine that would run: the default for "", the
	// planner's choice for AlgorithmAuto, the explicit name otherwise.
	Algorithm Algorithm
	// Plan is the size prediction, filled even when the algorithm choice
	// did not need it (an explicit algorithm still gets priced).
	Plan Plan
}

// Explain reports what a SelfJoin with these options would do — resolved
// engine plus prediction — without running it. The prediction comes from
// the dataset's resident sketch when one is attached (O(1), no pass over
// the points) and the sampling estimator otherwise.
func Explain(ds *Dataset, opt Options) (Explanation, error) {
	if err := opt.validate(); err != nil {
		return Explanation{}, err
	}
	return explanation(opt, PlanSelfJoin(ds, opt.Metric, opt.Eps)), nil
}

// ExplainJoin is Explain for a two-set join.
func ExplainJoin(a, b *Dataset, opt Options) (Explanation, error) {
	if err := opt.validate(); err != nil {
		return Explanation{}, err
	}
	if err := checkJoinDims(a, b); err != nil {
		return Explanation{}, err
	}
	return explanation(opt, PlanJoin(a, b, opt.Metric, opt.Eps)), nil
}

func explanation(opt Options, pl Plan) Explanation {
	ex := Explanation{
		Eps:       opt.Eps,
		Metric:    opt.Metric,
		Requested: opt.Algorithm,
		Plan:      pl,
	}
	switch opt.Algorithm {
	case "":
		ex.Algorithm = AlgorithmEKDB
	case AlgorithmAuto:
		ex.Algorithm = pl.Algorithm
	default:
		ex.Algorithm = opt.Algorithm
	}
	return ex
}

func toPlan(p estimate.Prediction) Plan {
	return Plan{
		Algorithm:      Algorithm(p.Algorithm),
		EstimatedPairs: p.Pairs,
		Selectivity:    p.Selectivity,
		Sketched:       p.Sketched,
	}
}
