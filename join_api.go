package simjoin

import (
	"runtime"
	"time"

	"simjoin/internal/brute"
	"simjoin/internal/core"
	"simjoin/internal/dataset"
	"simjoin/internal/estimate"
	"simjoin/internal/grid"
	"simjoin/internal/hilbert"
	"simjoin/internal/join"
	"simjoin/internal/kdtree"
	"simjoin/internal/pairs"
	"simjoin/internal/rplus"
	"simjoin/internal/rtree"
	"simjoin/internal/stats"
	"simjoin/internal/sweep"
	"simjoin/internal/zorder"
)

// algorithmImpl binds an Algorithm name to its entry points.
type algorithmImpl struct {
	self func(*dataset.Dataset, join.Options, pairs.Sink)
	join func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink)
	// parallelSelf, when non-nil, is used instead of self when
	// Options.Workers > 1.
	parallelSelf func(*dataset.Dataset, join.Options, func() pairs.Sink)
}

var registry = map[Algorithm]algorithmImpl{
	AlgorithmBrute: {self: brute.SelfJoin, join: brute.Join},
	AlgorithmSweep: {self: sweep.SelfJoin, join: sweep.Join},
	AlgorithmKDTree: {
		self: kdtree.SelfJoin,
		join: kdtree.Join,
		parallelSelf: func(ds *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
			kdtree.Build(ds, 0).SelfJoinParallel(opt, newSink)
		},
	},
	AlgorithmRTree:   {self: rtree.SelfJoin, join: rtree.Join},
	AlgorithmRPlus:   {self: rplus.SelfJoin, join: rplus.Join},
	AlgorithmZOrder:  {self: zorder.SelfJoin, join: zorder.Join},
	AlgorithmHilbert: {self: hilbert.SelfJoin, join: hilbert.Join},
	AlgorithmAuto:    {}, // resolved per call in resolveAlgorithm
	AlgorithmGrid: {
		self: grid.SelfJoin,
		join: grid.Join,
		parallelSelf: func(ds *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
			grid.SelfJoinParallel(ds, opt, grid.DefaultConfig(), newSink)
		},
	},
	AlgorithmEKDB: {}, // wired in init: needs per-call Config
}

func init() {
	impl := registry[AlgorithmEKDB]
	impl.self = core.SelfJoin
	impl.join = core.Join
	registry[AlgorithmEKDB] = impl
}

// toInternal converts public options to the internal contract.
func (o Options) toInternal(c *stats.Counters) join.Options {
	return join.Options{
		Metric:   o.Metric.internal(),
		Eps:      o.Eps,
		Counters: c,
		Workers:  o.Workers,
	}
}

// SelfJoin reports every unordered pair of points in ds within opt.Eps,
// each exactly once with I < J.
func SelfJoin(ds *Dataset, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var counters stats.Counters
	iopt := opt.toInternal(&counters)
	algo := resolveAlgorithm(ds, opt)
	impl := registry[algo]

	watch := stats.Start()
	if !opt.collect() {
		// Counting-only: no pair buffering at all.
		var sink pairs.Counter
		switch {
		case algo == AlgorithmEKDB:
			runEKDBSelfCounting(ds.internal(), iopt, opt, &sink)
		case opt.Workers > 1 && impl.parallelSelf != nil:
			impl.parallelSelf(ds.internal(), iopt, func() pairs.Sink { return &sink })
		default:
			impl.self(ds.internal(), iopt, &sink)
		}
		return countResult(sink.N(), counters.Snapshot(), watch.Elapsed()), nil
	}
	var collected []pairs.Pair
	switch {
	case algo == AlgorithmEKDB:
		collected = runEKDBSelf(ds.internal(), iopt, opt)
	case opt.Workers > 1 && impl.parallelSelf != nil:
		sh := pairs.NewSharded(true)
		impl.parallelSelf(ds.internal(), iopt, sh.Handle)
		collected = sh.Merged()
	default:
		col := &pairs.Collector{Canonical: true}
		impl.self(ds.internal(), iopt, col)
		collected = col.Sorted()
	}
	elapsed := watch.Elapsed()
	return buildResult(collected, counters.Snapshot(), elapsed, opt), nil
}

// runEKDBSelfCounting is runEKDBSelf without pair storage.
func runEKDBSelfCounting(ds *dataset.Dataset, iopt join.Options, opt Options, sink pairs.Sink) {
	if ds.Len() < 2 {
		return
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	t := core.Build(ds, opt.Eps, cfg)
	if opt.Workers > 1 {
		t.SelfJoinParallel(iopt, func() pairs.Sink { return sink })
		return
	}
	t.SelfJoin(iopt, sink)
}

// countResult assembles a Result for counting-only runs.
func countResult(n int64, snap stats.Snapshot, elapsed time.Duration) *Result {
	return &Result{Stats: Stats{
		Candidates: snap.Candidates,
		DistComps:  snap.DistComps,
		Results:    n,
		NodeVisits: snap.NodeVisits,
		Elapsed:    elapsed,
	}}
}

// runEKDBSelf runs the ε-kdB self-join with the public options' tree knobs.
func runEKDBSelf(ds *dataset.Dataset, iopt join.Options, opt Options) []pairs.Pair {
	if ds.Len() < 2 {
		return nil
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	t := core.Build(ds, opt.Eps, cfg)
	if opt.Workers > 1 {
		sh := pairs.NewSharded(true)
		t.SelfJoinParallel(iopt, sh.Handle)
		return sh.Merged()
	}
	col := &pairs.Collector{Canonical: true}
	t.SelfJoin(iopt, col)
	return col.Sorted()
}

// Join reports every pair (i, j) with dist(a[i], b[j]) ≤ opt.Eps. The two
// datasets must share one dimensionality.
func Join(a, b *Dataset, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var counters stats.Counters
	iopt := opt.toInternal(&counters)
	algo := resolveAlgorithm(a, opt)
	watch := stats.Start()
	if !opt.collect() {
		var sink pairs.Counter
		registry[algo].join(a.internal(), b.internal(), iopt, &sink)
		return countResult(sink.N(), counters.Snapshot(), watch.Elapsed()), nil
	}
	col := &pairs.Collector{}
	registry[algo].join(a.internal(), b.internal(), iopt, col)
	elapsed := watch.Elapsed()
	return buildResult(col.Sorted(), counters.Snapshot(), elapsed, opt), nil
}

func buildResult(ps []pairs.Pair, snap stats.Snapshot, elapsed time.Duration, opt Options) *Result {
	res := &Result{Stats: Stats{
		Candidates: snap.Candidates,
		DistComps:  snap.DistComps,
		Results:    int64(len(ps)),
		NodeVisits: snap.NodeVisits,
		Elapsed:    elapsed,
	}}
	if opt.collect() {
		res.Pairs = make([]Pair, len(ps))
		for i, p := range ps {
			res.Pairs[i] = Pair{I: int(p.I), J: int(p.J)}
		}
	}
	return res
}

// resolveAlgorithm maps the empty default and AlgorithmAuto to a concrete
// algorithm. Auto samples ds (the only/outer set) to estimate selectivity;
// the chooser's rules are documented in internal/estimate.
func resolveAlgorithm(ds *Dataset, opt Options) Algorithm {
	switch opt.Algorithm {
	case "":
		return AlgorithmEKDB
	case AlgorithmAuto:
		if ds.Len() == 0 {
			return AlgorithmBrute
		}
		return Algorithm(estimate.Choose(ds.internal(), opt.Metric.internal(), opt.Eps, 0x5e1ec7))
	default:
		return opt.Algorithm
	}
}

// DefaultWorkers returns the worker count the parallel variants use for
// Options.Workers values ≤ 0 passed through to them (GOMAXPROCS).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
