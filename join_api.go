package simjoin

import (
	"fmt"
	"runtime"
	"time"

	"simjoin/internal/brute"
	"simjoin/internal/core"
	"simjoin/internal/dataset"
	"simjoin/internal/estimate"
	"simjoin/internal/grid"
	"simjoin/internal/hilbert"
	"simjoin/internal/join"
	"simjoin/internal/kdtree"
	"simjoin/internal/obsv"
	"simjoin/internal/obsv/trace"
	"simjoin/internal/pairs"
	"simjoin/internal/rplus"
	"simjoin/internal/rtree"
	"simjoin/internal/stats"
	"simjoin/internal/sweep"
	"simjoin/internal/zorder"
)

// algorithmImpl binds an Algorithm name to its entry points.
type algorithmImpl struct {
	self func(*dataset.Dataset, join.Options, pairs.Sink)
	join func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink)
	// parallelSelf, when non-nil, is used instead of self when
	// Options.Workers > 1.
	parallelSelf func(*dataset.Dataset, join.Options, func() pairs.Sink)
	// parallelJoin, when non-nil, is used instead of join when
	// Options.Workers > 1.
	parallelJoin func(a, b *dataset.Dataset, opt join.Options, newSink func() pairs.Sink)
}

var registry = map[Algorithm]algorithmImpl{
	AlgorithmBrute: {self: brute.SelfJoin, join: brute.Join},
	AlgorithmSweep: {self: sweep.SelfJoin, join: sweep.Join},
	AlgorithmKDTree: {
		self: kdtree.SelfJoin,
		join: kdtree.Join,
		parallelSelf: func(ds *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
			start := time.Now()
			t := kdtree.Build(ds, 0)
			opt.Timing().AddBuild(time.Since(start))
			t.SelfJoinParallel(opt, newSink)
		},
		parallelJoin: kdtree.JoinParallel,
	},
	AlgorithmRTree:   {self: rtree.SelfJoin, join: rtree.Join},
	AlgorithmRPlus:   {self: rplus.SelfJoin, join: rplus.Join},
	AlgorithmZOrder:  {self: zorder.SelfJoin, join: zorder.Join},
	AlgorithmHilbert: {self: hilbert.SelfJoin, join: hilbert.Join},
	AlgorithmAuto:    {}, // resolved per call in resolveAlgorithm
	AlgorithmGrid: {
		self: grid.SelfJoin,
		join: grid.Join,
		parallelSelf: func(ds *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
			grid.SelfJoinParallel(ds, opt, grid.DefaultConfig(), newSink)
		},
		parallelJoin: func(a, b *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
			grid.JoinParallel(a, b, opt, grid.DefaultConfig(), newSink)
		},
	},
	AlgorithmEKDB: {}, // wired in init: needs per-call Config
}

func init() {
	impl := registry[AlgorithmEKDB]
	impl.self = core.SelfJoin
	impl.join = core.Join
	impl.parallelJoin = core.JoinParallel
	registry[AlgorithmEKDB] = impl
}

// toInternal converts public options to the internal contract.
func (o Options) toInternal(c *stats.Counters, ph *obsv.Phases) join.Options {
	return join.Options{
		Metric:   o.Metric.internal(),
		Eps:      o.Eps,
		Counters: c,
		Phases:   ph,
		Workers:  o.Workers,
		Float32:  o.Float32,
	}
}

// fillStats overwrites o.Stats (when set) with the run's report.
func (o Options) fillStats(p planned, snap stats.Snapshot, ph *obsv.Phases, pairsEmitted int64, elapsed time.Duration) {
	if o.Stats == nil {
		return
	}
	*o.Stats = JoinStats{
		Algorithm:      p.algo,
		DistComps:      snap.DistComps,
		Candidates:     snap.Candidates,
		NodeVisits:     snap.NodeVisits,
		PairsEmitted:   pairsEmitted,
		EstimatedPairs: p.est,
		BuildTime:      ph.Build(),
		ProbeTime:      ph.Probe(),
		Elapsed:        elapsed,
	}
}

// finishSpan seals one entry point's span: the resolved algorithm and
// the run's work counters are recorded, and the engines' phase totals
// become "build" and "probe" child intervals. The intervals reuse the
// obsv.Phases seam — the engines already charged those timers, so
// nothing is instrumented twice. For parallel runs the probe interval's
// offset is approximate (phases can overlap across goroutines); the
// durations are exact.
func finishSpan(sp *trace.Span, algo Algorithm, snap stats.Snapshot, ph *obsv.Phases, pairsEmitted int64) {
	if sp == nil {
		return
	}
	sp.SetAttr("algorithm", string(algo))
	sp.AddCounter("dist_comps", snap.DistComps)
	sp.AddCounter("candidates", snap.Candidates)
	sp.AddCounter("node_visits", snap.NodeVisits)
	sp.AddCounter("pairs_emitted", pairsEmitted)
	build := ph.Build()
	if build > 0 {
		sp.ChildInterval("build", sp.StartTime(), build)
	}
	if probe := ph.Probe(); probe > 0 {
		sp.ChildInterval("probe", sp.StartTime().Add(build), probe)
	}
	sp.End()
}

// SelfJoin reports every unordered pair of points in ds within opt.Eps,
// each exactly once with I < J.
func SelfJoin(ds *Dataset, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	sp := opt.Trace.Child("simjoin.SelfJoin")
	plan := planSelf(ds, opt, sp)
	algo := plan.algo
	impl := registry[algo]

	watch := stats.Start()
	if !opt.collect() {
		// Counting-only: no pair buffering at all.
		var sink pairs.Counter
		switch {
		case algo == AlgorithmEKDB:
			runEKDBSelfCounting(ds.internal(), iopt, opt, &sink)
		case opt.Workers > 1 && impl.parallelSelf != nil:
			impl.parallelSelf(ds.internal(), iopt, func() pairs.Sink { return &sink })
		default:
			impl.self(ds.internal(), iopt, &sink)
		}
		elapsed := watch.Elapsed()
		snap := counters.Snapshot()
		opt.fillStats(plan, snap, &phases, sink.N(), elapsed)
		finishSpan(sp, algo, snap, &phases, sink.N())
		return countResult(sink.N(), snap, elapsed), nil
	}
	var collected []pairs.Pair
	switch {
	case algo == AlgorithmEKDB:
		collected = runEKDBSelf(ds.internal(), iopt, opt)
	case opt.Workers > 1 && impl.parallelSelf != nil:
		sh := pairs.NewSharded(true)
		impl.parallelSelf(ds.internal(), iopt, sh.Handle)
		collected = sh.Merged()
	default:
		col := &pairs.Collector{Canonical: true}
		impl.self(ds.internal(), iopt, col)
		collected = col.Sorted()
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(plan, snap, &phases, int64(len(collected)), elapsed)
	finishSpan(sp, algo, snap, &phases, int64(len(collected)))
	return buildResult(collected, snap, elapsed, opt), nil
}

// runEKDBSelfCounting is runEKDBSelf without pair storage.
func runEKDBSelfCounting(ds *dataset.Dataset, iopt join.Options, opt Options, sink pairs.Sink) {
	if ds.Len() < 2 {
		return
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	start := time.Now()
	t := core.Build(ds, opt.Eps, cfg)
	iopt.Timing().AddBuild(time.Since(start))
	if opt.Workers > 1 {
		t.SelfJoinParallel(iopt, func() pairs.Sink { return sink })
		return
	}
	t.SelfJoin(iopt, sink)
}

// countResult assembles a Result for counting-only runs.
func countResult(n int64, snap stats.Snapshot, elapsed time.Duration) *Result {
	return &Result{Stats: Stats{
		Candidates: snap.Candidates,
		DistComps:  snap.DistComps,
		Results:    n,
		NodeVisits: snap.NodeVisits,
		Elapsed:    elapsed,
	}}
}

// runEKDBSelf runs the ε-kdB self-join with the public options' tree knobs.
func runEKDBSelf(ds *dataset.Dataset, iopt join.Options, opt Options) []pairs.Pair {
	if ds.Len() < 2 {
		return nil
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	start := time.Now()
	t := core.Build(ds, opt.Eps, cfg)
	iopt.Timing().AddBuild(time.Since(start))
	if opt.Workers > 1 {
		sh := pairs.NewSharded(true)
		t.SelfJoinParallel(iopt, sh.Handle)
		return sh.Merged()
	}
	col := &pairs.Collector{Canonical: true}
	t.SelfJoin(iopt, col)
	return col.Sorted()
}

// Join reports every pair (i, j) with dist(a[i], b[j]) ≤ opt.Eps. The two
// datasets must share one dimensionality (an error otherwise). Workers > 1
// runs the parallel variant when the algorithm has one (ekdb, grid,
// kdtree); the result is identical to the serial run.
func Join(a, b *Dataset, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := checkJoinDims(a, b); err != nil {
		return nil, err
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	sp := opt.Trace.Child("simjoin.Join")
	plan := planJoin(a, b, opt, sp)
	algo := plan.algo
	impl := registry[algo]
	watch := stats.Start()
	if !opt.collect() {
		var sink pairs.Counter
		if opt.Workers > 1 && impl.parallelJoin != nil {
			impl.parallelJoin(a.internal(), b.internal(), iopt, func() pairs.Sink { return &sink })
		} else {
			impl.join(a.internal(), b.internal(), iopt, &sink)
		}
		elapsed := watch.Elapsed()
		snap := counters.Snapshot()
		opt.fillStats(plan, snap, &phases, sink.N(), elapsed)
		finishSpan(sp, algo, snap, &phases, sink.N())
		return countResult(sink.N(), snap, elapsed), nil
	}
	var collected []pairs.Pair
	if opt.Workers > 1 && impl.parallelJoin != nil {
		sh := pairs.NewSharded(false)
		impl.parallelJoin(a.internal(), b.internal(), iopt, sh.Handle)
		collected = sh.Merged()
	} else {
		col := &pairs.Collector{}
		impl.join(a.internal(), b.internal(), iopt, col)
		collected = col.Sorted()
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(plan, snap, &phases, int64(len(collected)), elapsed)
	finishSpan(sp, algo, snap, &phases, int64(len(collected)))
	return buildResult(collected, snap, elapsed, opt), nil
}

// checkJoinDims rejects two-set inputs of different dimensionality before
// they can panic deep inside an algorithm.
func checkJoinDims(a, b *Dataset) error {
	if a.Dims() != b.Dims() {
		return fmt.Errorf("simjoin: joining a %d-dim set with a %d-dim set", a.Dims(), b.Dims())
	}
	return nil
}

// SelfJoinEach streams every qualifying unordered pair (delivered with
// i < j) to fn as it is found, never materializing a Result.Pairs slice —
// memory stays flat no matter how many pairs qualify. fn is always called
// from a single goroutine at a time, in unspecified order. Workers > 1
// runs the parallel variant when the algorithm has one, funneling every
// worker's pairs through one delivery goroutine. The returned Stats match
// a collecting run's.
func SelfJoinEach(ds *Dataset, opt Options, fn func(i, j int)) (Stats, error) {
	if err := opt.validate(); err != nil {
		return Stats{}, err
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	sp := opt.Trace.Child("simjoin.SelfJoinEach")
	plan := planSelf(ds, opt, sp)
	algo := plan.algo
	impl := registry[algo]
	watch := stats.Start()
	var n int64
	deliver := func(i, j int) {
		if j < i {
			i, j = j, i
		}
		n++
		fn(i, j)
	}
	switch {
	case algo == AlgorithmEKDB:
		runEKDBSelfEach(ds.internal(), iopt, opt, deliver)
	case opt.Workers > 1 && impl.parallelSelf != nil:
		f := pairs.NewFunnel(deliver)
		impl.parallelSelf(ds.internal(), iopt, f.Handle)
		f.Close()
	default:
		impl.self(ds.internal(), iopt, pairs.Func(deliver))
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(plan, snap, &phases, n, elapsed)
	finishSpan(sp, algo, snap, &phases, n)
	return eachStats(n, snap, elapsed), nil
}

// runEKDBSelfEach is the streaming counterpart of runEKDBSelf: the tree is
// built with the public options' knobs and pairs flow to deliver (via a
// funnel when parallel).
func runEKDBSelfEach(ds *dataset.Dataset, iopt join.Options, opt Options, deliver func(i, j int)) {
	if ds.Len() < 2 {
		return
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	start := time.Now()
	t := core.Build(ds, opt.Eps, cfg)
	iopt.Timing().AddBuild(time.Since(start))
	if opt.Workers > 1 {
		f := pairs.NewFunnel(deliver)
		t.SelfJoinParallel(iopt, f.Handle)
		f.Close()
		return
	}
	t.SelfJoin(iopt, pairs.Func(deliver))
}

// JoinEach streams every (a-index, b-index) pair within opt.Eps to fn as
// it is found, with the same callback contract as SelfJoinEach:
// single-goroutine delivery, unspecified order, flat memory. Workers > 1
// runs the parallel variant when the algorithm has one.
func JoinEach(a, b *Dataset, opt Options, fn func(i, j int)) (Stats, error) {
	if err := opt.validate(); err != nil {
		return Stats{}, err
	}
	if err := checkJoinDims(a, b); err != nil {
		return Stats{}, err
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	sp := opt.Trace.Child("simjoin.JoinEach")
	plan := planJoin(a, b, opt, sp)
	algo := plan.algo
	impl := registry[algo]
	watch := stats.Start()
	var n int64
	deliver := func(i, j int) {
		n++
		fn(i, j)
	}
	if opt.Workers > 1 && impl.parallelJoin != nil {
		f := pairs.NewFunnel(deliver)
		impl.parallelJoin(a.internal(), b.internal(), iopt, f.Handle)
		f.Close()
	} else {
		impl.join(a.internal(), b.internal(), iopt, pairs.Func(deliver))
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(plan, snap, &phases, n, elapsed)
	finishSpan(sp, algo, snap, &phases, n)
	return eachStats(n, snap, elapsed), nil
}

// eachStats assembles the Stats of a streaming run.
func eachStats(n int64, snap stats.Snapshot, elapsed time.Duration) Stats {
	return Stats{
		Candidates: snap.Candidates,
		DistComps:  snap.DistComps,
		Results:    n,
		NodeVisits: snap.NodeVisits,
		Elapsed:    elapsed,
	}
}

func buildResult(ps []pairs.Pair, snap stats.Snapshot, elapsed time.Duration, opt Options) *Result {
	res := &Result{Stats: Stats{
		Candidates: snap.Candidates,
		DistComps:  snap.DistComps,
		Results:    int64(len(ps)),
		NodeVisits: snap.NodeVisits,
		Elapsed:    elapsed,
	}}
	if opt.collect() {
		res.Pairs = make([]Pair, len(ps))
		for i, p := range ps {
			res.Pairs[i] = Pair{I: int(p.I), J: int(p.J)}
		}
	}
	return res
}

// autoSeed shuffles the subsample when AlgorithmAuto falls back to the
// sampling estimator. Fixed so Auto is deterministic run to run.
const autoSeed = 0x5e1ec7

// planned is the outcome of pre-run planning: the concrete algorithm
// that will run plus the result-size estimate that drove the choice
// (est is -1 when the run decided without estimating — an explicit
// algorithm was requested, or Auto short-circuited on a trivial input).
type planned struct {
	algo     Algorithm
	est      int64
	sketched bool
}

// planSelf maps the empty default and AlgorithmAuto to a concrete
// algorithm for self-joins. Auto consults the dataset's resident sketch
// when one is attached — zero passes over the raw points — and falls
// back to the sampling estimator otherwise; the chooser's rules are
// documented in internal/estimate. The decision is recorded as an
// "estimate" child span of sp.
func planSelf(ds *Dataset, opt Options, sp *trace.Span) planned {
	switch opt.Algorithm {
	case "":
		return planned{algo: AlgorithmEKDB, est: -1}
	case AlgorithmAuto:
		esp := sp.Child("estimate")
		var p estimate.Prediction
		source := "sample"
		if sk := ds.sk.internal(); sk != nil {
			source = "sketch"
			p = estimate.PlanSketch(sk, ds.Len(), opt.Metric.internal(), opt.Eps)
		} else {
			p = estimate.Plan(ds.internal(), opt.Metric.internal(), opt.Eps, autoSeed)
		}
		finishEstimateSpan(esp, source, p)
		return planned{algo: Algorithm(p.Algorithm), est: p.Pairs, sketched: p.Sketched}
	default:
		return planned{algo: opt.Algorithm, est: -1}
	}
}

// planJoin is planSelf for two-set joins: Auto judges both sets, so a
// tiny outer set joined against a huge inner set is judged by the
// workload's true size rather than the outer set alone. The sketch path
// needs a sketch on each side; anything less falls back to sampling.
func planJoin(a, b *Dataset, opt Options, sp *trace.Span) planned {
	switch opt.Algorithm {
	case "":
		return planned{algo: AlgorithmEKDB, est: -1}
	case AlgorithmAuto:
		esp := sp.Child("estimate")
		var p estimate.Prediction
		source := "sample"
		if ska, skb := a.sk.internal(), b.sk.internal(); ska != nil && skb != nil {
			source = "sketch"
			p = estimate.PlanJoinSketch(ska, skb, a.Len(), b.Len(), opt.Metric.internal(), opt.Eps)
		} else {
			p = estimate.PlanJoin(a.internal(), b.internal(), opt.Metric.internal(), opt.Eps, autoSeed)
		}
		finishEstimateSpan(esp, source, p)
		return planned{algo: Algorithm(p.Algorithm), est: p.Pairs, sketched: p.Sketched}
	default:
		return planned{algo: opt.Algorithm, est: -1}
	}
}

// finishEstimateSpan seals the planner's span: where the estimate came
// from, what it predicted, and what the chooser picked.
func finishEstimateSpan(sp *trace.Span, source string, p estimate.Prediction) {
	if sp == nil {
		return
	}
	sp.SetAttr("source", source)
	sp.SetAttr("algorithm", string(p.Algorithm))
	sp.AddCounter("predicted_pairs", p.Pairs)
	sp.End()
}

// DefaultWorkers returns the worker count the parallel variants use for
// Options.Workers values ≤ 0 passed through to them (GOMAXPROCS).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
