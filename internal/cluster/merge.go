package cluster

import "sort"

// indexSet accumulates global point indexes, deduping replicas reported
// by two shards.
type indexSet map[int]struct{}

func (is indexSet) addLocal(local []int, global []int) {
	for _, l := range local {
		// A worker can briefly hold more points than the shard map the
		// query was routed with (an append landed after the map snapshot
		// was taken); those extra points have no global identity under
		// this map, so skip them rather than fault.
		if l < 0 || l >= len(global) {
			continue
		}
		is[global[l]] = struct{}{}
	}
}

func (is indexSet) sorted() []int {
	out := make([]int, 0, len(is))
	for i := range is {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Neighbor is one KNN result in global index space.
type Neighbor struct {
	Index int     `json:"index"`
	Dist  float64 `json:"dist"`
}

// neighborSet keeps the best distance seen per global index; replicas of
// one point may be reported by several shards.
type neighborSet map[int]float64

func (ns neighborSet) add(global int, dist float64) {
	if d, ok := ns[global]; !ok || dist < d {
		ns[global] = dist
	}
}

// top returns the k nearest accumulated neighbors, ordered by distance
// with index as the deterministic tie-break.
func (ns neighborSet) top(k int) []Neighbor {
	out := make([]Neighbor, 0, len(ns))
	for i, d := range ns {
		out = append(out, Neighbor{Index: i, Dist: d})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
