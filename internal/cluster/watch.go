package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"simjoin/internal/live"
	"simjoin/internal/vec"
)

// WatchEvent is one translated batch of standing-query pairs from one
// shard: global upload-order indexes, i < j, positionally deduped so a
// pair found by several replica-holding shards is emitted once.
type WatchEvent struct {
	Pairs [][2]int
	// Shard produced the batch; Seq is that shard's worker-local resume
	// cursor (its dataset length after the batch).
	Shard int
	Seq   int
	// Added is how many points the worker's batch appended; CatchUp
	// marks a replay batch rather than a live one.
	Added   int
	CatchUp bool
}

const (
	watchRetryMin = 50 * time.Millisecond
	watchRetryMax = time.Second
)

// Watch runs a standing self-join across every shard of the dataset:
// it opens one worker watch stream per shard, translates each delta
// batch into global indexes, dedupes pairs found by replica-holding
// neighbors, and hands every batch to emit (serialized; return false to
// stop the watch as a slow consumer). fromStart replays the dataset's
// entire pair set first; otherwise only pairs created by appends after
// the call are delivered.
//
// Broken shard streams reconnect with the shard's last delivered cursor
// — a worker restarted from its WAL replays what the watch missed — so
// delivery is at-least-once: callers union pairs rather than count
// them. Watch blocks until the dataset is deleted or replaced, emit
// gives up, or ctx ends; the terminal reason (live.ReasonDeleted,
// live.ReasonReplaced, live.ReasonSlowConsumer) comes back with a nil
// error, ctx cancellation as ("", ctx.Err()).
func (c *Coordinator) Watch(ctx context.Context, name string, q JoinQuery, fromStart bool, emit func(WatchEvent) bool) (string, error) {
	sm, ok := c.Map(name)
	if !ok {
		return "", NotFoundError{Name: name}
	}
	if !(q.Eps > 0) {
		return "", QueryError{Msg: "eps must be positive"}
	}
	if q.Eps > sm.Margin {
		return "", queryErrorf("eps %g exceeds the dataset's shard margin %g; re-upload with a larger margin", q.Eps, sm.Margin)
	}
	if q.Metric != "" {
		if _, err := vec.ParseMetric(q.Metric); err != nil {
			return "", QueryError{Msg: err.Error()}
		}
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w := &coordWatch{c: c, name: name, q: q, emit: emit, cancel: cancel}
	w.mu.Lock()
	w.refreshLocked(sm)
	w.mu.Unlock()
	var wg sync.WaitGroup
	for s := range sm.Shards {
		after := 0
		if !fromStart {
			after = len(sm.Shards[s].Global)
		}
		wg.Add(1)
		go func(s, after int) {
			defer wg.Done()
			w.run(wctx, s, after)
		}(s, after)
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.reason != "" {
		return w.reason, nil
	}
	return "", ctx.Err()
}

// coordWatch is the shared state of one Watch call: the terminal
// reason, the emit serialization lock, and the owner table cached per
// shard-map generation for positional dedup.
type coordWatch struct {
	c      *Coordinator
	name   string
	q      JoinQuery
	emit   func(WatchEvent) bool
	cancel context.CancelFunc

	mu     sync.Mutex
	reason string
	sm     *ShardMap
	owner  []int
}

// refreshLocked swaps in the dataset's current shard map, recomputing
// the core-owner table only when an append produced a new generation.
func (w *coordWatch) refreshLocked(sm *ShardMap) {
	if sm != w.sm {
		w.sm, w.owner = sm, sm.coreOwners()
	}
}

// finishLocked records the watch's terminal reason (first writer wins)
// and stops every shard stream.
func (w *coordWatch) finishLocked(reason string) {
	if w.reason == "" {
		w.reason = reason
	}
	w.cancel()
}

func (w *coordWatch) finish(reason string) {
	w.mu.Lock()
	w.finishLocked(reason)
	w.mu.Unlock()
}

// run keeps one shard's watch stream alive until the watch ends: open,
// consume, and on any non-terminal break — worker down, worker
// restarting, stream evicted server-side, shard not created yet —
// reconnect with the shard's cursor after a backoff.
func (w *coordWatch) run(ctx context.Context, s, after int) {
	backoff := watchRetryMin
	// One reusable timer for the whole retry loop: time.After leaks its
	// timer until expiry, and a watch that is cancelled mid-backoff
	// (dataset deleted, server shutdown) would strand one per retry —
	// with many shards and the backoff at watchRetryMax that is real
	// memory held for seconds after the watch is gone. The timer is
	// always either drained (the <-timer.C receive) or stopped on the
	// way out, so Reset never races a stale tick.
	timer := time.NewTimer(backoff)
	timer.Stop()
	defer timer.Stop()
	for ctx.Err() == nil {
		opened, err := w.streamOnce(ctx, s, &after)
		if ctx.Err() != nil {
			return
		}
		if opened && err == nil {
			backoff = watchRetryMin
		}
		// The dataset disappearing from the registry is terminal no
		// matter how the worker stream ended.
		if _, ok := w.c.Map(w.name); !ok {
			w.finish(live.ReasonDeleted)
			return
		}
		timer.Reset(backoff)
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if backoff *= 2; backoff > watchRetryMax {
			backoff = watchRetryMax
		}
	}
}

// watchLine is a worker watch stream's event object.
type watchLine struct {
	Event   string `json:"event"`
	Seq     int    `json:"seq"`
	Added   int    `json:"added"`
	CatchUp bool   `json:"catch_up"`
	Reason  string `json:"reason"`
}

// streamOnce opens one worker watch stream and consumes it to its end,
// advancing *after as batches arrive. It reports whether the stream got
// past the HTTP handshake (resets the caller's backoff) and a non-nil
// error only for breaks worth logging; terminal outcomes go through
// finish and are surfaced by cancelling ctx.
func (w *coordWatch) streamOnce(ctx context.Context, s int, after *int) (bool, error) {
	w.mu.Lock()
	sm := w.sm
	w.mu.Unlock()
	body, err := json.Marshal(map[string]any{"eps": w.q.Eps, "metric": w.q.Metric, "after": *after})
	if err != nil {
		return false, err
	}
	resp, err := w.c.rc.Post(ctx, w.c.datasetURL(sm, s, w.name)+"/watch", "application/json", body)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		if resp.StatusCode == http.StatusBadRequest && *after > 0 {
			// The worker holds fewer points than our cursor — it lost
			// durable state. Replay its shard from the start; delivery
			// is at-least-once, so re-seen pairs are harmless.
			*after = 0
		}
		// 404 included: an empty shard whose worker has no dataset yet,
		// or a worker restarted empty. Retry until it appears or the
		// dataset is dropped from the registry.
		return false, fmt.Errorf("worker status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var buf [][2]int
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return true, nil
			}
			return true, err
		}
		if len(raw) > 0 && raw[0] == '[' {
			var p [2]int
			if err := json.Unmarshal(raw, &p); err != nil {
				return true, err
			}
			buf = append(buf, p)
			continue
		}
		var line watchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return true, err
		}
		switch line.Event {
		case "batch":
			*after = line.Seq
			if !w.deliver(s, buf, line) {
				return true, nil
			}
			buf = buf[:0]
		case "end":
			switch line.Reason {
			case live.ReasonDeleted, live.ReasonReplaced:
				w.finish(line.Reason)
			}
			// Any other reason (shutdown, eviction) reconnects.
			return true, nil
		}
	}
}

// deliver translates one shard batch into global index space, dedupes
// it positionally, and emits it. It returns false once the watch is
// over — terminally finished, the dataset gone, or emit giving up.
func (w *coordWatch) deliver(s int, local [][2]int, line watchLine) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.reason != "" {
		return false
	}
	sm, ok := w.c.Map(w.name)
	if !ok {
		w.finishLocked(live.ReasonDeleted)
		return false
	}
	w.refreshLocked(sm)
	global := w.sm.Shards[s].Global
	out := make([][2]int, 0, len(local))
	for _, p := range local {
		// Skip points with no global identity under the current map:
		// appends bypassing the coordinator, or a translation racing a
		// not-yet-registered successor map.
		if p[0] < 0 || p[1] < 0 || p[0] >= len(global) || p[1] >= len(global) {
			continue
		}
		gi, gj := global[p[0]], global[p[1]]
		if gi > gj {
			gi, gj = gj, gi
		}
		// Positional dedup, as in SelfJoinEach: only the shard owning
		// the pair's lowest-owner endpoint reports it.
		if min(w.owner[gi], w.owner[gj]) != s {
			continue
		}
		out = append(out, [2]int{gi, gj})
	}
	if !w.emit(WatchEvent{Pairs: out, Shard: s, Seq: line.Seq, Added: line.Added, CatchUp: line.CatchUp}) {
		w.finishLocked(live.ReasonSlowConsumer)
		return false
	}
	return true
}
