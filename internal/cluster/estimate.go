package cluster

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
)

// ShardEstimate is one worker's answer to a join-size estimate scatter:
// the predicted pair count of the shard's local self-join at the asked
// (metric, ε), straight from the worker's resident sketch (or its
// sampling fallback — Sketched tells which). Err is set when the shard
// did not answer; its contribution is then missing from the total.
type ShardEstimate struct {
	Shard       int     `json:"shard"`
	URL         string  `json:"url"`
	Points      int     `json:"points"`
	Pairs       int64   `json:"pairs"`
	Selectivity float64 `json:"selectivity"`
	Sketched    bool    `json:"sketched"`
	// Algorithm is what the shard's planner would run locally for this
	// workload — the per-shard half of a distributed EXPLAIN.
	Algorithm string `json:"algorithm,omitempty"`
	Err       string `json:"error,omitempty"`
}

// EstimateResult is a merged distributed join-size estimate.
type EstimateResult struct {
	// Pairs is the sum of the live shards' local estimates. Boundary
	// replicas make it a slight over-estimate of the global result (a
	// cross-slab pair is predicted by both slabs that replicate it),
	// which is the safe direction for admission control.
	Pairs   int64
	Shards  []ShardEstimate
	Partial bool
}

// EstimateSelfJoin scatters a join-size estimate to every non-empty
// shard and sums the answers — the coordinator's pricing pass: no
// worker touches raw points when its dataset carries a sketch, so the
// whole round trip costs one histogram scan per shard.
func (c *Coordinator) EstimateSelfJoin(ctx context.Context, name string, eps float64, metric string) (*EstimateResult, error) {
	sm, ok := c.Map(name)
	if !ok {
		return nil, NotFoundError{Name: name}
	}
	if !(eps > 0) {
		return nil, QueryError{Msg: "eps must be positive"}
	}
	targets := sm.nonEmpty()
	out := make([]ShardEstimate, len(targets))
	failed := c.scatter(ctx, "estimate", sm, targets, func(ctx context.Context, s int) error {
		var resp struct {
			Len      int `json:"len"`
			Estimate struct {
				Pairs       int64   `json:"pairs"`
				Selectivity float64 `json:"selectivity"`
				Sketched    bool    `json:"sketched"`
				Algorithm   string  `json:"algorithm"`
			} `json:"estimate"`
		}
		u := c.datasetURL(sm, s, name) + "?eps=" + strconv.FormatFloat(eps, 'g', -1, 64)
		if metric != "" {
			u += "&metric=" + url.QueryEscape(metric)
		}
		r, err := c.rc.Get(ctx, u)
		if err != nil {
			return err
		}
		if err := drainResponse(r, &resp); err != nil {
			return err
		}
		for i, t := range targets {
			if t == s {
				out[i] = ShardEstimate{
					Shard:       s,
					URL:         sm.Shards[s].URL,
					Points:      resp.Len,
					Pairs:       resp.Estimate.Pairs,
					Selectivity: resp.Estimate.Selectivity,
					Sketched:    resp.Estimate.Sketched,
					Algorithm:   resp.Estimate.Algorithm,
				}
				return nil
			}
		}
		return fmt.Errorf("shard %d not in target set", s)
	})
	if len(failed) == len(targets) && len(targets) > 0 {
		return nil, UnavailableError{Failed: failed}
	}
	for _, f := range failed {
		for i, t := range targets {
			if t == f.Shard {
				out[i] = ShardEstimate{Shard: f.Shard, URL: f.URL, Err: f.Err}
			}
		}
	}
	res := &EstimateResult{Shards: out, Partial: len(failed) > 0}
	for _, se := range out {
		if se.Err == "" {
			res.Pairs += se.Pairs
		}
	}
	sort.Slice(res.Shards, func(i, j int) bool { return res.Shards[i].Shard < res.Shards[j].Shard })
	return res, nil
}
