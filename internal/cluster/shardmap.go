// Package cluster turns a fleet of simjoind workers into one sharded
// similarity-join service. A Coordinator partitions each uploaded dataset
// across the workers with deterministic slab routing plus ε-boundary
// replication, scatters self-join/range/KNN queries to the shards that
// can hold matches, and merges the per-shard answers back into exactly
// the result a single node would have produced — degrading to partial,
// error-tagged results when workers are down.
//
// Sharding scheme. Points are sliced into K contiguous slabs along one
// routing dimension (the widest one), with cut values chosen at
// quantiles of the upload so shards balance. Every point whose
// coordinate lies within Margin above a shard's upper cut is *also*
// stored on that shard ("boundary replication"). For any pair within
// eps ≤ Margin that spans slabs, the lower point's shard therefore holds
// both endpoints: if a sits in slab i (so a[dim] < cut_i) and
// |dist(a,b)| ≤ eps, then b[dim] < cut_i + Margin, which is exactly the
// replica strip of shard i. A per-shard self-join thus sees every
// qualifying pair at least once; the merge step maps worker-local
// indexes back to upload order and dedupes pairs found by more than one
// shard, so the distributed pair set equals the single-node pair set.
package cluster

import "sort"

// ShardMap records how one dataset was partitioned across the workers.
// A built map is immutable; appends extend a dataset by building a
// successor map copy-on-write (see extend) and swapping it in, so
// readers holding the old map keep a consistent snapshot.
type ShardMap struct {
	// Dims is the dataset dimensionality.
	Dims int
	// Dim is the routing dimension (the widest at upload time).
	Dim int
	// Cuts are the K-1 ascending slab boundaries; Cuts[i] separates
	// shard i from shard i+1. A point with coordinate x routes to the
	// shard numbered by how many cuts are ≤ x.
	Cuts []float64
	// Margin is the boundary-replication width: self-joins with
	// eps ≤ Margin are exact.
	Margin float64
	// Total is the number of points in the original upload.
	Total int
	// Shards holds one entry per worker, in worker order.
	Shards []Shard
}

// Shard is one worker's slice of a dataset.
type Shard struct {
	// URL is the worker's base URL.
	URL string
	// Global maps the worker's local point index to the index in the
	// original upload (core points and replicas alike).
	Global []int
}

// Partition splits pts across len(urls) shards and returns the map plus
// the per-shard point slices to upload (core slab plus the replica strip
// within margin above the shard's upper cut). pts must be non-empty and
// rectangular; margin must be positive.
func Partition(pts [][]float64, urls []string, margin float64) (*ShardMap, [][][]float64) {
	n, k := len(pts), len(urls)
	sm := &ShardMap{Dims: len(pts[0]), Dim: widestDim(pts), Margin: margin, Total: n}
	if k > 1 {
		vals := make([]float64, n)
		for i, p := range pts {
			vals[i] = p[sm.Dim]
		}
		sort.Float64s(vals)
		sm.Cuts = make([]float64, 0, k-1)
		for i := 1; i < k; i++ {
			sm.Cuts = append(sm.Cuts, vals[i*n/k])
		}
	}
	sm.Shards = make([]Shard, k)
	for i := range sm.Shards {
		sm.Shards[i].URL = urls[i]
	}
	shardPts := make([][][]float64, k)
	add := func(s, g int, p []float64) {
		sm.Shards[s].Global = append(sm.Shards[s].Global, g)
		shardPts[s] = append(shardPts[s], p)
	}
	for g, p := range pts {
		x := p[sm.Dim]
		s := sm.ShardOf(x)
		add(s, g, p)
		// Replicate downward into every shard whose upper cut is within
		// margin below x; the break is safe because cuts ascend.
		for t := s - 1; t >= 0; t-- {
			if x >= sm.Cuts[t]+margin {
				break
			}
			add(t, g, p)
		}
	}
	return sm, shardPts
}

// widestDim returns the dimension with the largest spread (ties go to
// the lowest index), so slab routing splits where the data actually
// extends.
func widestDim(pts [][]float64) int {
	dims := len(pts[0])
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := pts[0][d], pts[0][d]
		for _, p := range pts {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
		}
		if spread := hi - lo; spread > bestSpread {
			best, bestSpread = d, spread
		}
	}
	return best
}

// extend returns a successor map that also routes pts — numbered
// m.Total onward — to their shards with the same cut/replication rules
// Partition used, plus the per-shard point batches to send. The
// receiver is not modified: Cuts stay shared (they never change after
// upload), Global tables are copied before growing. Appended points
// always route through the original cuts, so slabs can grow imbalanced
// over time; rebalancing means re-uploading.
func (m *ShardMap) extend(pts [][]float64) (*ShardMap, [][][]float64) {
	n := &ShardMap{
		Dims:   m.Dims,
		Dim:    m.Dim,
		Cuts:   m.Cuts,
		Margin: m.Margin,
		Total:  m.Total + len(pts),
		Shards: make([]Shard, len(m.Shards)),
	}
	for s, sh := range m.Shards {
		g := make([]int, len(sh.Global), len(sh.Global)+len(pts))
		copy(g, sh.Global)
		n.Shards[s] = Shard{URL: sh.URL, Global: g}
	}
	shardPts := make([][][]float64, len(m.Shards))
	add := func(s, g int, p []float64) {
		n.Shards[s].Global = append(n.Shards[s].Global, g)
		shardPts[s] = append(shardPts[s], p)
	}
	for k, p := range pts {
		g := m.Total + k
		x := p[n.Dim]
		s := n.ShardOf(x)
		add(s, g, p)
		for t := s - 1; t >= 0; t-- {
			if x >= n.Cuts[t]+n.Margin {
				break
			}
			add(t, g, p)
		}
	}
	return n, shardPts
}

// ShardOf returns the shard owning a point with routing coordinate x.
func (m *ShardMap) ShardOf(x float64) int {
	return sort.Search(len(m.Cuts), func(i int) bool { return m.Cuts[i] > x })
}

// RouteInterval returns the shards whose slabs intersect [lo, hi] — the
// scatter set for a range query centered in that interval.
func (m *ShardMap) RouteInterval(lo, hi float64) []int {
	a, b := m.ShardOf(lo), m.ShardOf(hi)
	out := make([]int, 0, b-a+1)
	for s := a; s <= b; s++ {
		out = append(out, s)
	}
	return out
}

// nonEmpty lists the shards that actually hold points.
func (m *ShardMap) nonEmpty() []int {
	out := make([]int, 0, len(m.Shards))
	for s, sh := range m.Shards {
		if len(sh.Global) > 0 {
			out = append(out, s)
		}
	}
	return out
}
