package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"simjoin/internal/obsv/trace"
	"simjoin/internal/rclient"
)

// DefaultMargin is the boundary-replication width used when neither the
// coordinator nor the upload names one. Self-joins with eps above the
// margin are rejected, so it should comfortably exceed the largest eps
// the deployment queries with.
const DefaultMargin = 0.25

// Coordinator fronts a set of simjoind workers: it owns the shard maps,
// scatters uploads and queries, and gathers exact merged results.
// Methods are safe for concurrent use.
type Coordinator struct {
	workers []string
	margin  float64
	rc      *rclient.Client

	mu   sync.RWMutex
	sets map[string]*ShardMap

	// apMu serializes appends: each append extends the dataset's shard
	// map copy-on-write from its predecessor, so two concurrent extends
	// of the same base map would assign overlapping global indexes.
	apMu sync.Mutex
}

// New builds a Coordinator over the given worker base URLs. margin ≤ 0
// takes DefaultMargin; rc == nil takes an rclient.Client with RetryPOST
// enabled (every coordinator POST is a read-only query, so transport
// retries are safe).
func New(workers []string, margin float64, rc *rclient.Client) *Coordinator {
	if margin <= 0 {
		margin = DefaultMargin
	}
	if rc == nil {
		rc = &rclient.Client{RetryPOST: true}
	}
	return &Coordinator{
		workers: workers,
		margin:  margin,
		rc:      rc,
		sets:    make(map[string]*ShardMap),
	}
}

// Workers returns the worker base URLs in shard order.
func (c *Coordinator) Workers() []string { return c.workers }

// Margin returns the default boundary-replication width.
func (c *Coordinator) Margin() float64 { return c.margin }

// Client returns the resilient HTTP client the coordinator scatters
// with, exposing its retry counter to observability layers.
func (c *Coordinator) Client() *rclient.Client { return c.rc }

// NotFoundError reports a query against an unknown dataset.
type NotFoundError struct{ Name string }

func (e NotFoundError) Error() string { return fmt.Sprintf("no dataset %q", e.Name) }

// QueryError reports an invalid upload or query (an HTTP 400 at the API
// layer).
type QueryError struct{ Msg string }

func (e QueryError) Error() string { return e.Msg }

func queryErrorf(format string, args ...any) QueryError {
	return QueryError{Msg: fmt.Sprintf(format, args...)}
}

// ShardError names one shard that failed during a scatter.
type ShardError struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	Err   string `json:"error"`
	// Attempts is how many times the shard's RPC was tried before
	// giving up (0 when the failure carried no attempt count).
	Attempts int `json:"attempts,omitempty"`
}

// UnavailableError reports a scatter in which no shard answered — there
// is no partial result worth returning.
type UnavailableError struct{ Failed []ShardError }

func (e UnavailableError) Error() string {
	return fmt.Sprintf("all %d shards failed (first: %s: %s)", len(e.Failed), e.Failed[0].URL, e.Failed[0].Err)
}

// Info describes one sharded dataset.
type Info struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
	Dims int    `json:"dims"`
}

// Upload partitions pts across the workers under the given
// boundary-replication margin (0 = coordinator default) and registers
// the dataset. A failed worker upload rolls the dataset back everywhere.
func (c *Coordinator) Upload(ctx context.Context, name string, pts [][]float64, margin float64) (Info, error) {
	if name == "" {
		return Info{}, QueryError{Msg: "dataset name required"}
	}
	if len(pts) == 0 {
		return Info{}, QueryError{Msg: "no points in upload"}
	}
	for i, p := range pts {
		if len(p) != len(pts[0]) {
			return Info{}, queryErrorf("point %d has %d dims, want %d", i, len(p), len(pts[0]))
		}
	}
	if margin == 0 {
		margin = c.margin
	}
	if margin < 0 {
		return Info{}, QueryError{Msg: "margin must be positive"}
	}
	sm, shardPts := Partition(pts, c.workers, margin)
	failed := c.scatter(ctx, "upload", sm, sm.nonEmpty(), func(ctx context.Context, s int) error {
		body, err := json.Marshal(map[string]any{"points": shardPts[s]})
		if err != nil {
			return err
		}
		resp, err := c.rc.Put(ctx, c.datasetURL(sm, s, name), "application/json", body)
		if err != nil {
			return err
		}
		return drainResponse(resp, nil)
	})
	if len(failed) > 0 {
		// Best-effort rollback so no worker keeps a half-registered set.
		for _, s := range sm.nonEmpty() {
			if resp, err := c.rc.Delete(ctx, c.datasetURL(sm, s, name)); err == nil {
				resp.Body.Close()
			}
		}
		return Info{}, UnavailableError{Failed: failed}
	}
	c.mu.Lock()
	c.sets[name] = sm
	c.mu.Unlock()
	return Info{Name: name, Len: sm.Total, Dims: sm.Dims}, nil
}

// Delete unregisters the dataset and removes it from every worker
// (best-effort: a missing or down worker does not block the delete).
func (c *Coordinator) Delete(ctx context.Context, name string) error {
	c.mu.Lock()
	sm, ok := c.sets[name]
	delete(c.sets, name)
	c.mu.Unlock()
	if !ok {
		return NotFoundError{Name: name}
	}
	for _, s := range sm.nonEmpty() {
		if resp, err := c.rc.Delete(ctx, c.datasetURL(sm, s, name)); err == nil {
			resp.Body.Close()
		}
	}
	return nil
}

// List describes the registered datasets, sorted by name.
func (c *Coordinator) List() []Info {
	c.mu.RLock()
	out := make([]Info, 0, len(c.sets))
	for name, sm := range c.sets {
		out = append(out, Info{Name: name, Len: sm.Total, Dims: sm.Dims})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Map returns the dataset's shard map, for introspection.
func (c *Coordinator) Map(name string) (*ShardMap, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sm, ok := c.sets[name]
	return sm, ok
}

// JoinQuery mirrors the worker self-join request.
type JoinQuery struct {
	Eps       float64
	Metric    string
	Algorithm string
	Workers   int
	Float32   bool
}

// JoinResult is a merged distributed self-join. When Partial is set,
// Pairs holds everything the live shards found and Failed names the
// shards whose contribution is missing.
type JoinResult struct {
	Pairs   [][2]int
	Shards  int
	Partial bool
	Failed  []ShardError
}

// SelfJoin scatters the self-join to every non-empty shard and merges
// the answers into the exact global pair set (upload-order indexes,
// i < j, deduped across shards). It is SelfJoinEach collecting into a
// slice: dedup is positional (see SelfJoinEach), so the only merge-side
// buffer is the result itself — no per-shard pair sets, no dedup map.
func (c *Coordinator) SelfJoin(ctx context.Context, name string, q JoinQuery) (*JoinResult, error) {
	out := make([][2]int, 0)
	sum, err := c.SelfJoinEach(ctx, name, q, func(i, j int) {
		out = append(out, [2]int{i, j})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return &JoinResult{
		Pairs:   out,
		Shards:  sum.Shards,
		Partial: sum.Partial,
		Failed:  sum.Failed,
	}, nil
}

// RangeResult is a merged distributed range query.
type RangeResult struct {
	Indexes []int
	Shards  int
	Partial bool
	Failed  []ShardError
}

// Range scatters an ε-range query to the shards whose slabs intersect
// the query ball (exact for any radius — cores cover the ball, replicas
// dedupe away) and merges the global indexes.
func (c *Coordinator) Range(ctx context.Context, name string, point []float64, radius float64, metric string) (*RangeResult, error) {
	sm, ok := c.Map(name)
	if !ok {
		return nil, NotFoundError{Name: name}
	}
	if len(point) != sm.Dims {
		return nil, queryErrorf("query has %d dims, dataset has %d", len(point), sm.Dims)
	}
	if !(radius > 0) {
		return nil, QueryError{Msg: "radius must be positive"}
	}
	x := point[sm.Dim]
	targets := make([]int, 0)
	for _, s := range sm.RouteInterval(x-radius, x+radius) {
		if len(sm.Shards[s].Global) > 0 {
			targets = append(targets, s)
		}
	}
	merged := make(indexSet)
	var mu sync.Mutex
	failed := c.scatter(ctx, "range", sm, targets, func(ctx context.Context, s int) error {
		var out struct {
			Indexes []int `json:"indexes"`
		}
		req := map[string]any{"point": point, "radius": radius, "metric": metric}
		if err := c.postJSON(ctx, c.datasetURL(sm, s, name)+"/range", req, &out); err != nil {
			return err
		}
		mu.Lock()
		merged.addLocal(out.Indexes, sm.Shards[s].Global)
		mu.Unlock()
		return nil
	})
	if len(failed) == len(targets) && len(targets) > 0 {
		return nil, UnavailableError{Failed: failed}
	}
	return &RangeResult{
		Indexes: merged.sorted(),
		Shards:  len(targets),
		Partial: len(failed) > 0,
		Failed:  failed,
	}, nil
}

// KNNResult is a merged distributed KNN query.
type KNNResult struct {
	Neighbors []Neighbor
	Shards    int
	Partial   bool
	Failed    []ShardError
}

// KNN scatters a k-nearest query to every non-empty shard (the k-th
// distance is unknown up front, so no shard can be pruned), takes each
// shard's local top-k, and keeps the k best after deduping replicas.
func (c *Coordinator) KNN(ctx context.Context, name string, point []float64, k int, metric string) (*KNNResult, error) {
	sm, ok := c.Map(name)
	if !ok {
		return nil, NotFoundError{Name: name}
	}
	if len(point) != sm.Dims {
		return nil, queryErrorf("query has %d dims, dataset has %d", len(point), sm.Dims)
	}
	if k < 1 {
		return nil, QueryError{Msg: "k must be ≥ 1"}
	}
	targets := sm.nonEmpty()
	merged := make(neighborSet)
	var mu sync.Mutex
	failed := c.scatter(ctx, "knn", sm, targets, func(ctx context.Context, s int) error {
		var out struct {
			Neighbors []Neighbor `json:"neighbors"`
		}
		req := map[string]any{"point": point, "k": k, "metric": metric}
		if err := c.postJSON(ctx, c.datasetURL(sm, s, name)+"/knn", req, &out); err != nil {
			return err
		}
		mu.Lock()
		for _, n := range out.Neighbors {
			// Skip points the worker gained after this query's map
			// snapshot (see indexSet.addLocal).
			if n.Index < 0 || n.Index >= len(sm.Shards[s].Global) {
				continue
			}
			merged.add(sm.Shards[s].Global[n.Index], n.Dist)
		}
		mu.Unlock()
		return nil
	})
	if len(failed) == len(targets) && len(targets) > 0 {
		return nil, UnavailableError{Failed: failed}
	}
	return &KNNResult{
		Neighbors: merged.top(k),
		Shards:    len(targets),
		Partial:   len(failed) > 0,
		Failed:    failed,
	}, nil
}

// WorkerHealth is one worker's health-check outcome.
type WorkerHealth struct {
	URL string `json:"url"`
	OK  bool   `json:"ok"`
	Err string `json:"error,omitempty"`
}

// Health polls every worker's /healthz concurrently and reports each
// outcome in worker order.
func (c *Coordinator) Health(ctx context.Context) []WorkerHealth {
	out := make([]WorkerHealth, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			out[i] = WorkerHealth{URL: w}
			resp, err := c.rc.Get(ctx, w+"/healthz")
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			if resp.StatusCode != http.StatusOK {
				out[i].Err = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			out[i].OK = true
		}(i, w)
	}
	wg.Wait()
	return out
}

// scatter runs fn for each listed shard concurrently and gathers the
// failures, ordered by shard. When ctx carries a trace span, every
// shard RPC runs under its own child span — named "shard.<op>", tagged
// with the shard index, worker URL and outcome — and fn receives a
// context carrying that span, so the resilient client's per-attempt
// spans nest beneath it and its traceparent reaches the worker.
func (c *Coordinator) scatter(ctx context.Context, op string, sm *ShardMap, shards []int, fn func(ctx context.Context, shard int) error) []ShardError {
	parent := trace.FromContext(ctx)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed []ShardError
	for _, s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sp := parent.Child("shard." + op)
			sp.SetAttr("shard", strconv.Itoa(s))
			sp.SetAttr("worker", sm.Shards[s].URL)
			err := fn(trace.NewContext(ctx, sp), s)
			if err != nil {
				attempts := rclient.Attempts(err)
				sp.SetAttr("status", "error")
				sp.SetAttr("error", err.Error())
				if attempts > 0 {
					sp.AddCounter("attempts", int64(attempts))
				}
				mu.Lock()
				failed = append(failed, ShardError{Shard: s, URL: sm.Shards[s].URL, Err: err.Error(), Attempts: attempts})
				mu.Unlock()
			} else {
				sp.SetAttr("status", "ok")
			}
			sp.End()
		}(s)
	}
	wg.Wait()
	sort.Slice(failed, func(i, j int) bool { return failed[i].Shard < failed[j].Shard })
	return failed
}

func (c *Coordinator) datasetURL(sm *ShardMap, shard int, name string) string {
	return sm.Shards[shard].URL + "/datasets/" + url.PathEscape(name)
}

// postJSON posts a JSON body and decodes a JSON answer, surfacing worker
// {"error": …} payloads as errors.
func (c *Coordinator) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.rc.Post(ctx, url, "application/json", body)
	if err != nil {
		return err
	}
	return drainResponse(resp, out)
}

// drainResponse consumes resp, decoding into out on success (out may be
// nil) and converting non-2xx answers into errors.
func drainResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we struct {
			Error string `json:"error"`
		}
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&we); err == nil {
			msg = we.Error
		}
		return fmt.Errorf("worker status %d: %s", resp.StatusCode, msg)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
