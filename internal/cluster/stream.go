package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"simjoin/internal/pairs"
)

// coreOwners maps every global point index to the shard that owns its
// core copy. Replication only ever copies a point downward (into shards
// below its slab), so the owning shard is the highest-numbered shard
// holding the point.
func (m *ShardMap) coreOwners() []int {
	owner := make([]int, m.Total)
	for s, sh := range m.Shards {
		for _, g := range sh.Global {
			owner[g] = s
		}
	}
	return owner
}

// JoinSummary describes a streamed distributed self-join after every pair
// has been delivered.
type JoinSummary struct {
	// Pairs is the number of pairs delivered to the callback.
	Pairs int64
	// Shards is the number of shards queried.
	Shards int
	// Partial marks that some shard's contribution is missing; Failed
	// names the shards.
	Partial bool
	Failed  []ShardError
}

// SelfJoinEach streams the exact merged distributed self-join to fn, one
// global pair (i < j, upload-order indexes) at a time, without buffering
// any shard's pair set. fn is called from a single goroutine at a time,
// in unspecified order.
//
// Dedup is positional rather than set-based: a pair within eps ≤ margin
// is always found by the shard owning the core of its lower-slab
// endpoint (that shard holds the other endpoint too, as core or replica
// — see the package comment), so the coordinator accepts each pair only
// from the shard owning its lowest-owner endpoint and needs no memory of
// what it has already seen. When the accepting shard is down its pairs
// are lost even if a neighbor also found them; the summary is marked
// Partial exactly as in SelfJoin.
func (c *Coordinator) SelfJoinEach(ctx context.Context, name string, q JoinQuery, fn func(i, j int)) (*JoinSummary, error) {
	sm, ok := c.Map(name)
	if !ok {
		return nil, NotFoundError{Name: name}
	}
	if !(q.Eps > 0) {
		return nil, QueryError{Msg: "eps must be positive"}
	}
	if q.Eps > sm.Margin {
		return nil, queryErrorf("eps %g exceeds the dataset's shard margin %g; re-upload with a larger margin", q.Eps, sm.Margin)
	}
	owner := sm.coreOwners()
	targets := sm.nonEmpty()
	var delivered int64
	funnel := pairs.NewFunnel(func(i, j int) {
		delivered++
		fn(i, j)
	})
	failed := c.scatter(ctx, "selfjoin", sm, targets, func(ctx context.Context, s int) error {
		sink := funnel.Handle()
		global := sm.Shards[s].Global
		return c.streamShardSelfJoin(ctx, sm, s, name, q, func(p [2]int) error {
			if p[0] < 0 || p[1] < 0 {
				return fmt.Errorf("negative pair %v from shard", p)
			}
			// Points past the map snapshot (appended after this query's
			// map was taken) have no global identity yet: skip the pair;
			// the next query, routed with the successor map, will see it.
			if p[0] >= len(global) || p[1] >= len(global) {
				return nil
			}
			gi, gj := global[p[0]], global[p[1]]
			if gi > gj {
				gi, gj = gj, gi
			}
			// Positional dedup: only the lowest-owner endpoint's shard
			// may report the pair.
			if o := min(owner[gi], owner[gj]); o != s {
				return nil
			}
			sink.Emit(gi, gj)
			return nil
		})
	})
	funnel.Close()
	if len(failed) == len(targets) && len(targets) > 0 {
		return nil, UnavailableError{Failed: failed}
	}
	return &JoinSummary{
		Pairs:   delivered,
		Shards:  len(targets),
		Partial: len(failed) > 0,
		Failed:  failed,
	}, nil
}

// streamShardSelfJoin posts one shard's self-join with streaming
// requested and feeds every worker-local pair to accept as it arrives.
// Workers answering NDJSON deliver incrementally ([i,j] lines closed by a
// summary object); workers that ignore the stream flag and answer one
// {"pairs": …} object are consumed the same way, line by JSON value.
func (c *Coordinator) streamShardSelfJoin(ctx context.Context, sm *ShardMap, s int, name string, q JoinQuery, accept func(p [2]int) error) error {
	req := map[string]any{
		"eps": q.Eps, "metric": q.Metric, "algorithm": q.Algorithm,
		"workers": q.Workers, "float32": q.Float32, "stream": true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.rc.Post(ctx, c.datasetURL(sm, s, name)+"/selfjoin", "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we struct {
			Error string `json:"error"`
		}
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&we); err == nil {
			msg = we.Error
		}
		return fmt.Errorf("worker status %d: %s", resp.StatusCode, msg)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if len(raw) > 0 && raw[0] == '[' {
			var p [2]int
			if err := json.Unmarshal(raw, &p); err != nil {
				return err
			}
			if err := accept(p); err != nil {
				return err
			}
			continue
		}
		// An object: a non-streaming worker's full answer, or a streaming
		// worker's closing summary (whose "pairs" is absent).
		var full struct {
			Pairs [][2]int `json:"pairs"`
		}
		if err := json.Unmarshal(raw, &full); err != nil {
			return err
		}
		for _, p := range full.Pairs {
			if err := accept(p); err != nil {
				return err
			}
		}
	}
}
