package cluster

import (
	"context"
	"encoding/json"
	"io"
	"sync"

	"simjoin/internal/obsv/trace"
)

// WorkerTrace is one worker's contribution to a stitched trace: the
// spans it retained for the trace ID, or the error that kept it from
// answering. A worker that answered but retained nothing returns OK
// with no spans — its ring may simply have evicted the trace.
type WorkerTrace struct {
	URL   string           `json:"url"`
	Spans []trace.SpanData `json:"-"`
	Err   string           `json:"error,omitempty"`
}

// StitchedTrace is a distributed trace assembled from the coordinator's
// own spans plus every worker's spans for the same trace ID: one span
// tree (parented across processes by traceparent propagation) and a
// per-source account of where the spans came from.
type StitchedTrace struct {
	trace.TraceData
	// Sources reports each queried worker in worker order, including
	// the ones that failed or had nothing.
	Sources []WorkerTrace `json:"sources"`
}

// FetchTrace polls every worker's GET /debug/traces?trace=<id>
// concurrently and stitches the answers together with the
// coordinator-local spans (the coordinator's own retained view of the
// trace, passed in by the caller). Workers that fail or no longer
// retain the trace contribute nothing but are reported in Sources, so a
// partially-evicted trace still renders as much tree as survives.
func (c *Coordinator) FetchTrace(ctx context.Context, traceID string, local []trace.SpanData) *StitchedTrace {
	sources := make([]WorkerTrace, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			sources[i] = WorkerTrace{URL: w}
			resp, err := c.rc.Get(ctx, w+"/debug/traces?trace="+traceID)
			if err != nil {
				sources[i].Err = err.Error()
				return
			}
			defer resp.Body.Close()
			var out []trace.TraceData
			if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out); err != nil {
				sources[i].Err = err.Error()
				return
			}
			sources[i].Spans = trace.Collect(out, traceID)
		}(i, w)
	}
	wg.Wait()
	sets := make([][]trace.SpanData, 0, len(sources)+1)
	sets = append(sets, local)
	for _, s := range sources {
		sets = append(sets, s.Spans)
	}
	return &StitchedTrace{
		TraceData: trace.Stitch(traceID, sets...),
		Sources:   sources,
	}
}
