package cluster

import (
	"context"
	"encoding/json"
)

// AppendResult describes a distributed append. Failed lists shards that
// did not durably receive their slice of the batch; the shard map is
// swapped in regardless (degraded, not rolled back), so queries against
// a failed shard simply miss those points until the worker recovers —
// retrying the append would double-register the points everywhere else.
type AppendResult struct {
	Info    Info
	Partial bool
	Failed  []ShardError
}

// Append routes pts — numbered after the dataset's current points — to
// their shards under the original cuts and replication margin, growing
// each worker's slice in place through POST /points (or creating it
// with PUT on a shard that was empty until now). The successor shard
// map is registered before any worker is contacted, so standing-query
// watchers can translate the new points' local indexes the moment a
// worker starts delivering them.
func (c *Coordinator) Append(ctx context.Context, name string, pts [][]float64) (*AppendResult, error) {
	if len(pts) == 0 {
		return nil, QueryError{Msg: "no points in append"}
	}
	// One extend at a time: concurrent extends of the same base map
	// would hand out overlapping global indexes.
	c.apMu.Lock()
	defer c.apMu.Unlock()
	old, ok := c.Map(name)
	if !ok {
		return nil, NotFoundError{Name: name}
	}
	for i, p := range pts {
		if len(p) != old.Dims {
			return nil, queryErrorf("point %d has %d dims, dataset has %d", i, len(p), old.Dims)
		}
	}
	sm, shardPts := old.extend(pts)
	c.mu.Lock()
	c.sets[name] = sm
	c.mu.Unlock()

	targets := make([]int, 0, len(sm.Shards))
	for s := range sm.Shards {
		if len(shardPts[s]) > 0 {
			targets = append(targets, s)
		}
	}
	failed := c.scatter(ctx, "append", sm, targets, func(ctx context.Context, s int) error {
		body, err := json.Marshal(map[string]any{"points": shardPts[s]})
		if err != nil {
			return err
		}
		url := c.datasetURL(sm, s, name)
		if len(old.Shards[s].Global) == 0 {
			// The shard held nothing before this batch, so the worker has
			// no dataset to append to: create it.
			resp, err := c.rc.Put(ctx, url, "application/json", body)
			if err != nil {
				return err
			}
			return drainResponse(resp, nil)
		}
		resp, err := c.rc.Post(ctx, url+"/points", "application/json", body)
		if err != nil {
			return err
		}
		return drainResponse(resp, nil)
	})
	return &AppendResult{
		Info:    Info{Name: name, Len: sm.Total, Dims: sm.Dims},
		Partial: len(failed) > 0,
		Failed:  failed,
	}, nil
}
