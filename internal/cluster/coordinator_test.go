package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"simjoin/internal/rclient"
)

// fakeWorker is a minimal in-process simjoind worker: it stores uploaded
// datasets and answers selfjoin/range/knn by brute force (L2), which
// doubles as the oracle the merged cluster answers are checked against.
type fakeWorker struct {
	mu            sync.Mutex
	sets          map[string][][]float64
	failSelfJoins int // inject: fail this many selfjoin calls with 503
	// change closes (and is replaced) on every dataset mutation, waking
	// watch streams; watchConns counts the streams currently attached.
	// endAfterBatch injects worker churn: every watch stream ends itself
	// after one delivered batch, forcing the coordinator to reconnect
	// with its cursor.
	change        chan struct{}
	watchConns    int
	endAfterBatch bool
}

// bump wakes every watch stream; call with mu held.
func (f *fakeWorker) bump() {
	close(f.change)
	f.change = make(chan struct{})
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	mux.HandleFunc("PUT /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points [][]float64 `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Points) == 0 {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad upload"})
			return
		}
		f.mu.Lock()
		f.sets[r.PathValue("name")] = req.Points
		f.bump()
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"len": len(req.Points)})
	})
	mux.HandleFunc("DELETE /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		delete(f.sets, r.PathValue("name"))
		f.bump()
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /datasets/{name}/points", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points [][]float64 `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Points) == 0 {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad append"})
			return
		}
		name := r.PathValue("name")
		f.mu.Lock()
		pts, ok := f.sets[name]
		if !ok {
			f.mu.Unlock()
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no dataset"})
			return
		}
		f.sets[name] = append(pts, req.Points...)
		n := len(f.sets[name])
		f.bump()
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"len": n})
	})
	mux.HandleFunc("POST /datasets/{name}/watch", f.handleWatch)
	mux.HandleFunc("POST /datasets/{name}/selfjoin", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		if f.failSelfJoins > 0 {
			f.failSelfJoins--
			f.mu.Unlock()
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "injected failure"})
			return
		}
		pts := f.sets[r.PathValue("name")]
		f.mu.Unlock()
		var q struct {
			Eps float64 `json:"eps"`
		}
		_ = json.NewDecoder(r.Body).Decode(&q)
		pairs := [][2]int{}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if l2(pts[i], pts[j]) <= q.Eps {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		json.NewEncoder(w).Encode(map[string]any{"pairs": pairs})
	})
	mux.HandleFunc("POST /datasets/{name}/range", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		pts := f.sets[r.PathValue("name")]
		f.mu.Unlock()
		var q struct {
			Point  []float64 `json:"point"`
			Radius float64   `json:"radius"`
		}
		_ = json.NewDecoder(r.Body).Decode(&q)
		idx := []int{}
		for i, p := range pts {
			if l2(p, q.Point) <= q.Radius {
				idx = append(idx, i)
			}
		}
		json.NewEncoder(w).Encode(map[string]any{"indexes": idx})
	})
	mux.HandleFunc("POST /datasets/{name}/knn", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		pts := f.sets[r.PathValue("name")]
		f.mu.Unlock()
		var q struct {
			Point []float64 `json:"point"`
			K     int       `json:"k"`
		}
		_ = json.NewDecoder(r.Body).Decode(&q)
		nbrs := make([]Neighbor, 0, len(pts))
		for i, p := range pts {
			nbrs = append(nbrs, Neighbor{Index: i, Dist: l2(p, q.Point)})
		}
		sort.Slice(nbrs, func(a, b int) bool {
			if nbrs[a].Dist != nbrs[b].Dist {
				return nbrs[a].Dist < nbrs[b].Dist
			}
			return nbrs[a].Index < nbrs[b].Index
		})
		if len(nbrs) > q.K {
			nbrs = nbrs[:q.K]
		}
		json.NewEncoder(w).Encode(map[string]any{"neighbors": nbrs})
	})
	return mux
}

func fastTestClient() *rclient.Client {
	return &rclient.Client{
		MaxRetries:     2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		RetryPOST:      true,
	}
}

// newTestCluster starts k fake workers and a coordinator over them.
func newTestCluster(t *testing.T, k int, margin float64) (*Coordinator, []*httptest.Server, []*fakeWorker) {
	t.Helper()
	servers := make([]*httptest.Server, k)
	fakes := make([]*fakeWorker, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		fakes[i] = &fakeWorker{sets: make(map[string][][]float64), change: make(chan struct{})}
		servers[i] = httptest.NewServer(fakes[i].handler())
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	return New(urls, margin, fastTestClient()), servers, fakes
}

// brutePairs is the single-node oracle: every pair within eps, (i, j)
// sorted.
func brutePairs(pts [][]float64, eps float64) [][2]int {
	out := [][2]int{}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if l2(pts[i], pts[j]) <= eps {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func TestDistributedSelfJoinMatchesSingleNode(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 0.15)
	pts := randomPoints(300, 4, 42)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	res, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.12})
	if err != nil {
		t.Fatalf("SelfJoin: %v", err)
	}
	if res.Partial || len(res.Failed) != 0 {
		t.Fatalf("unexpected partial result: %+v", res.Failed)
	}
	want := brutePairs(pts, 0.12)
	if !reflect.DeepEqual(res.Pairs, want) {
		t.Fatalf("distributed pairs differ from single-node: got %d pairs, want %d", len(res.Pairs), len(want))
	}
	if res.Shards < 2 {
		t.Fatalf("join only touched %d shards — partitioning is broken", res.Shards)
	}
}

func TestSelfJoinPartialWhenWorkerDies(t *testing.T) {
	c, servers, _ := newTestCluster(t, 3, 0.15)
	pts := randomPoints(200, 3, 7)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	full, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.1})
	if err != nil {
		t.Fatalf("SelfJoin: %v", err)
	}

	servers[1].Close()
	res, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.1})
	if err != nil {
		t.Fatalf("SelfJoin with dead worker: %v", err)
	}
	if !res.Partial {
		t.Fatal("want partial result with a dead worker")
	}
	found := false
	for _, f := range res.Failed {
		if f.URL == servers[1].URL && f.Shard == 1 && f.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed shards = %+v, want shard 1 at %s", res.Failed, servers[1].URL)
	}
	// Partial pairs must be a subset of the full answer.
	fullSet := make(map[[2]int]bool, len(full.Pairs))
	for _, p := range full.Pairs {
		fullSet[p] = true
	}
	for _, p := range res.Pairs {
		if !fullSet[p] {
			t.Fatalf("partial result invented pair %v", p)
		}
	}
}

func TestSelfJoinRetriesFlakyWorker(t *testing.T) {
	c, _, fakes := newTestCluster(t, 3, 0.15)
	pts := randomPoints(150, 3, 9)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	fakes[0].mu.Lock()
	fakes[0].failSelfJoins = 1
	fakes[0].mu.Unlock()
	res, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.1})
	if err != nil {
		t.Fatalf("SelfJoin: %v", err)
	}
	if res.Partial {
		t.Fatalf("retry should have absorbed the flake: %+v", res.Failed)
	}
	if want := brutePairs(pts, 0.1); !reflect.DeepEqual(res.Pairs, want) {
		t.Fatalf("pairs differ after retry: got %d, want %d", len(res.Pairs), len(want))
	}
}

func TestSelfJoinAllShardsDown(t *testing.T) {
	c, servers, _ := newTestCluster(t, 2, 0.15)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", randomPoints(50, 2, 11), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	for _, s := range servers {
		s.Close()
	}
	_, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.1})
	var ue UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnavailableError", err)
	}
}

func TestSelfJoinEpsExceedsMargin(t *testing.T) {
	c, _, _ := newTestCluster(t, 2, 0.1)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", randomPoints(50, 2, 12), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	_, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.5})
	var qe QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want QueryError for eps > margin", err)
	}
}

func TestRangeMatchesSingleNode(t *testing.T) {
	c, _, _ := newTestCluster(t, 4, 0.1)
	pts := randomPoints(250, 3, 13)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	q := []float64{0.5, 0.5, 0.5}
	// Radius beyond the margin: range routing does not depend on it.
	const radius = 0.3
	res, err := c.Range(ctx, "d", q, radius, "")
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	want := []int{}
	for i, p := range pts {
		if l2(p, q) <= radius {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(res.Indexes, want) {
		t.Fatalf("range indexes = %v, want %v", res.Indexes, want)
	}
}

func TestKNNMatchesSingleNode(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 0.1)
	pts := randomPoints(250, 3, 14)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	q := []float64{0.2, 0.8, 0.4}
	const k = 10
	res, err := c.KNN(ctx, "d", q, k, "")
	if err != nil {
		t.Fatalf("KNN: %v", err)
	}
	all := make([]Neighbor, 0, len(pts))
	for i, p := range pts {
		all = append(all, Neighbor{Index: i, Dist: l2(p, q)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if !reflect.DeepEqual(res.Neighbors, all[:k]) {
		t.Fatalf("knn = %v, want %v", res.Neighbors, all[:k])
	}
}

func TestUploadAndQueryValidation(t *testing.T) {
	c, _, _ := newTestCluster(t, 2, 0.1)
	ctx := context.Background()
	var qe QueryError
	if _, err := c.Upload(ctx, "d", nil, 0); !errors.As(err, &qe) {
		t.Errorf("empty upload: err = %v, want QueryError", err)
	}
	if _, err := c.Upload(ctx, "d", [][]float64{{1}, {1, 2}}, 0); !errors.As(err, &qe) {
		t.Errorf("ragged upload: err = %v, want QueryError", err)
	}
	var nfe NotFoundError
	if _, err := c.SelfJoin(ctx, "nope", JoinQuery{Eps: 0.1}); !errors.As(err, &nfe) {
		t.Errorf("selfjoin missing: err = %v, want NotFoundError", err)
	}
	if _, err := c.Range(ctx, "nope", []float64{0}, 0.1, ""); !errors.As(err, &nfe) {
		t.Errorf("range missing: err = %v, want NotFoundError", err)
	}
	if _, err := c.Upload(ctx, "d", randomPoints(20, 2, 15), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if _, err := c.Range(ctx, "d", []float64{0}, 0.1, ""); !errors.As(err, &qe) {
		t.Errorf("range dims mismatch: err = %v, want QueryError", err)
	}
	if _, err := c.KNN(ctx, "d", []float64{0, 0}, 0, ""); !errors.As(err, &qe) {
		t.Errorf("knn k=0: err = %v, want QueryError", err)
	}
}

func TestDeleteRemovesEverywhere(t *testing.T) {
	c, _, fakes := newTestCluster(t, 3, 0.1)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "d", randomPoints(60, 2, 16), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if err := c.Delete(ctx, "d"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for i, f := range fakes {
		f.mu.Lock()
		_, ok := f.sets["d"]
		f.mu.Unlock()
		if ok {
			t.Errorf("worker %d still holds the deleted dataset", i)
		}
	}
	var nfe NotFoundError
	if err := c.Delete(ctx, "d"); !errors.As(err, &nfe) {
		t.Errorf("second delete: err = %v, want NotFoundError", err)
	}
	if got := c.List(); len(got) != 0 {
		t.Errorf("List after delete = %v", got)
	}
}

func TestUploadRollsBackOnWorkerFailure(t *testing.T) {
	c, servers, fakes := newTestCluster(t, 3, 0.1)
	servers[2].Close()
	ctx := context.Background()
	_, err := c.Upload(ctx, "d", randomPoints(100, 2, 17), 0)
	var ue UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("upload with dead worker: err = %v, want UnavailableError", err)
	}
	for i := 0; i < 2; i++ {
		fakes[i].mu.Lock()
		_, ok := fakes[i].sets["d"]
		fakes[i].mu.Unlock()
		if ok {
			t.Errorf("worker %d kept a rolled-back upload", i)
		}
	}
	if got := c.List(); len(got) != 0 {
		t.Errorf("List after failed upload = %v", got)
	}
}

func TestHealthReportsDeadWorker(t *testing.T) {
	c, servers, _ := newTestCluster(t, 3, 0.1)
	servers[2].Close()
	hs := c.Health(context.Background())
	if len(hs) != 3 {
		t.Fatalf("health entries = %d", len(hs))
	}
	if !hs[0].OK || !hs[1].OK {
		t.Errorf("live workers reported unhealthy: %+v", hs)
	}
	if hs[2].OK || hs[2].Err == "" {
		t.Errorf("dead worker reported healthy: %+v", hs[2])
	}
}
