package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"simjoin/internal/live"
)

// handleWatch is the fake worker's standing-query stream: the same
// NDJSON contract as a real worker's POST /datasets/{name}/watch, with
// deltas computed by brute force against the stored points.
func (f *fakeWorker) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var q struct {
		Eps   float64 `json:"eps"`
		After *int    `json:"after"`
	}
	_ = json.NewDecoder(r.Body).Decode(&q)
	f.mu.Lock()
	pts, ok := f.sets[name]
	f.mu.Unlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no dataset"})
		return
	}
	cursor := len(pts)
	if q.After != nil {
		if *q.After < 0 || *q.After > len(pts) {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad cursor"})
			return
		}
		cursor = *q.After
	}
	f.mu.Lock()
	f.watchConns++
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.watchConns--
		f.mu.Unlock()
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{"event": "hello", "seq": cursor})
	if fl != nil {
		fl.Flush()
	}
	catchUp := true
	for {
		f.mu.Lock()
		pts, ok := f.sets[name]
		ch := f.change
		end := f.endAfterBatch
		f.mu.Unlock()
		if !ok {
			enc.Encode(map[string]any{"event": "end", "reason": live.ReasonDeleted})
			if fl != nil {
				fl.Flush()
			}
			return
		}
		if len(pts) > cursor {
			for j := cursor; j < len(pts); j++ {
				for i := 0; i < j; i++ {
					if l2(pts[i], pts[j]) <= q.Eps {
						enc.Encode([2]int{i, j})
					}
				}
			}
			ev := map[string]any{"event": "batch", "seq": len(pts), "added": len(pts) - cursor}
			if catchUp {
				ev["catch_up"] = true
			}
			enc.Encode(ev)
			cursor = len(pts)
			if fl != nil {
				fl.Flush()
			}
			if end {
				enc.Encode(map[string]any{"event": "end", "reason": live.ReasonShutdown})
				if fl != nil {
					fl.Flush()
				}
				return
			}
		}
		catchUp = false
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// pairTally collects watch deliveries: distinct pairs plus how often
// each arrived.
type pairTally struct {
	mu  sync.Mutex
	got map[[2]int]int
}

func newPairTally() *pairTally { return &pairTally{got: make(map[[2]int]int)} }

func (pt *pairTally) add(ev WatchEvent) bool {
	pt.mu.Lock()
	for _, p := range ev.Pairs {
		pt.got[p]++
	}
	pt.mu.Unlock()
	return true
}

func (pt *pairTally) distinct() int {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return len(pt.got)
}

// check verifies the tally is exactly want, delivered at most maxSeen
// times per pair.
func (pt *pairTally) check(t *testing.T, want [][2]int, maxSeen int) {
	t.Helper()
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, p := range want {
		if pt.got[p] == 0 {
			t.Fatalf("pair %v never delivered", p)
		}
	}
	for p, n := range pt.got {
		if n > maxSeen {
			t.Fatalf("pair %v delivered %d times, want ≤ %d", p, n, maxSeen)
		}
	}
	if len(pt.got) != len(want) {
		t.Fatalf("delivered %d distinct pairs, want %d", len(pt.got), len(want))
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWatchFromStartMatchesOracle(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 0.2)
	ctx := context.Background()
	pts := randomPoints(100, 3, 21)
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	// One append lands before the watch: full replay must cover it.
	pts = append(pts, randomPoints(50, 3, 22)...)
	if _, err := c.Append(ctx, "d", pts[100:]); err != nil {
		t.Fatalf("Append: %v", err)
	}

	const eps = 0.15
	tally := newPairTally()
	done := make(chan struct{})
	var reason string
	var werr error
	go func() {
		defer close(done)
		reason, werr = c.Watch(ctx, "d", JoinQuery{Eps: eps}, true, tally.add)
	}()
	want := brutePairs(pts, eps)
	waitFor(t, "full replay", func() bool { return tally.distinct() >= len(want) })

	// A live append while the watch runs delivers exactly the new pairs.
	pts = append(pts, randomPoints(50, 3, 23)...)
	if _, err := c.Append(ctx, "d", pts[150:]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want = brutePairs(pts, eps)
	waitFor(t, "live delta", func() bool { return tally.distinct() >= len(want) })
	tally.check(t, want, 1)

	// Deleting the dataset is the watch's terminal event.
	if err := c.Delete(ctx, "d"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not end after delete")
	}
	if werr != nil || reason != live.ReasonDeleted {
		t.Fatalf("watch ended (%q, %v), want (%q, nil)", reason, werr, live.ReasonDeleted)
	}
}

func TestWatchLiveOnlyDeliversOnlyNewPairs(t *testing.T) {
	c, _, fakes := newTestCluster(t, 3, 0.2)
	ctx := context.Background()
	pts := randomPoints(120, 3, 31)
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	const eps = 0.15
	tally := newPairTally()
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Watch(wctx, "d", JoinQuery{Eps: eps}, false, tally.add)
	}()
	// Every shard stream must be attached before the append, or its
	// catch-up legitimately replays from an older cursor.
	waitFor(t, "shard streams", func() bool {
		n := 0
		for _, f := range fakes {
			f.mu.Lock()
			n += f.watchConns
			f.mu.Unlock()
		}
		return n == 3
	})

	old := brutePairs(pts, eps)
	pts = append(pts, randomPoints(60, 3, 32)...)
	if _, err := c.Append(ctx, "d", pts[120:]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	oldSet := make(map[[2]int]bool, len(old))
	for _, p := range old {
		oldSet[p] = true
	}
	want := [][2]int{}
	for _, p := range brutePairs(pts, eps) {
		if !oldSet[p] {
			want = append(want, p)
		}
	}
	waitFor(t, "delta pairs", func() bool { return tally.distinct() >= len(want) })
	tally.check(t, want, 1)
	cancel()
	<-done
}

func TestWatchReconnectResumesFromCursor(t *testing.T) {
	c, _, fakes := newTestCluster(t, 3, 0.2)
	ctx := context.Background()
	for _, f := range fakes {
		f.mu.Lock()
		f.endAfterBatch = true
		f.mu.Unlock()
	}
	pts := randomPoints(80, 3, 41)
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	const eps = 0.15
	tally := newPairTally()
	done := make(chan struct{})
	var reason string
	var werr error
	go func() {
		defer close(done)
		reason, werr = c.Watch(ctx, "d", JoinQuery{Eps: eps}, true, tally.add)
	}()
	// Each batch kills its stream, so every delivery crosses a
	// reconnect; cursor resume must still produce the exact pair set.
	for round := 0; round < 3; round++ {
		grown := append(pts, randomPoints(30, 3, int64(42+round))...)
		if _, err := c.Append(ctx, "d", grown[len(pts):]); err != nil {
			t.Fatalf("Append: %v", err)
		}
		pts = grown
	}
	want := brutePairs(pts, eps)
	waitFor(t, "pairs across reconnects", func() bool { return tally.distinct() >= len(want) })
	tally.check(t, want, 1)
	if err := c.Delete(ctx, "d"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not end after delete")
	}
	if werr != nil || reason != live.ReasonDeleted {
		t.Fatalf("watch ended (%q, %v), want (%q, nil)", reason, werr, live.ReasonDeleted)
	}
}

func TestWatchSlowConsumerStops(t *testing.T) {
	c, _, _ := newTestCluster(t, 2, 0.2)
	ctx := context.Background()
	// Clustered points so the replay has at least one pair to deliver.
	pts := [][]float64{{0.5, 0.5}, {0.5, 0.51}, {0.9, 0.1}, {0.1, 0.9}}
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	reason, err := c.Watch(ctx, "d", JoinQuery{Eps: 0.1}, true, func(WatchEvent) bool { return false })
	if err != nil || reason != live.ReasonSlowConsumer {
		t.Fatalf("watch ended (%q, %v), want (%q, nil)", reason, err, live.ReasonSlowConsumer)
	}
}

func TestWatchValidation(t *testing.T) {
	c, _, _ := newTestCluster(t, 2, 0.1)
	ctx := context.Background()
	emit := func(WatchEvent) bool { return true }
	var nfe NotFoundError
	if _, err := c.Watch(ctx, "nope", JoinQuery{Eps: 0.05}, false, emit); !errors.As(err, &nfe) {
		t.Errorf("missing dataset: err = %v, want NotFoundError", err)
	}
	if _, err := c.Upload(ctx, "d", randomPoints(20, 2, 51), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	var qe QueryError
	if _, err := c.Watch(ctx, "d", JoinQuery{Eps: 0}, false, emit); !errors.As(err, &qe) {
		t.Errorf("eps 0: err = %v, want QueryError", err)
	}
	if _, err := c.Watch(ctx, "d", JoinQuery{Eps: 0.5}, false, emit); !errors.As(err, &qe) {
		t.Errorf("eps > margin: err = %v, want QueryError", err)
	}
	if _, err := c.Watch(ctx, "d", JoinQuery{Eps: 0.05, Metric: "cosine"}, false, emit); !errors.As(err, &qe) {
		t.Errorf("bad metric: err = %v, want QueryError", err)
	}
}

func TestAppendRoutesAndMatchesSingleNode(t *testing.T) {
	c, _, fakes := newTestCluster(t, 3, 0.1)
	ctx := context.Background()
	pts := randomPoints(200, 3, 61)
	if _, err := c.Upload(ctx, "d", pts, 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	old, _ := c.Map("d")
	oldLens := make([]int, len(old.Shards))
	for s, sh := range old.Shards {
		oldLens[s] = len(sh.Global)
	}

	pts = append(pts, randomPoints(100, 3, 62)...)
	res, err := c.Append(ctx, "d", pts[200:])
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if res.Partial || res.Info.Len != 300 {
		t.Fatalf("append result = %+v", res)
	}
	// Copy-on-write: the superseded map is untouched.
	if old.Total != 200 {
		t.Fatalf("old map Total mutated to %d", old.Total)
	}
	for s, sh := range old.Shards {
		if len(sh.Global) != oldLens[s] {
			t.Fatalf("old map shard %d grew from %d to %d", s, oldLens[s], len(sh.Global))
		}
	}

	sm, _ := c.Map("d")
	if sm.Total != 300 {
		t.Fatalf("new map Total = %d", sm.Total)
	}
	// Every worker's stored points must line up with the new map.
	for s, sh := range sm.Shards {
		fakes[s].mu.Lock()
		stored := fakes[s].sets["d"]
		fakes[s].mu.Unlock()
		if len(stored) != len(sh.Global) {
			t.Fatalf("shard %d stores %d points, map says %d", s, len(stored), len(sh.Global))
		}
		for l, g := range sh.Global {
			if !reflect.DeepEqual(stored[l], pts[g]) {
				t.Fatalf("shard %d local %d: wrong point for global %d", s, l, g)
			}
		}
	}
	// Appended points keep the core-once + margin-replica invariants.
	core := make(map[int]int)
	for s, sh := range sm.Shards {
		for _, g := range sh.Global {
			if g >= 200 && sm.ShardOf(pts[g][sm.Dim]) == s {
				core[g]++
			}
		}
	}
	for g := 200; g < 300; g++ {
		if core[g] != 1 {
			t.Fatalf("appended global %d is core on %d shards, want 1", g, core[g])
		}
	}
	// The distributed join over the grown dataset stays exact.
	got, err := c.SelfJoin(ctx, "d", JoinQuery{Eps: 0.08})
	if err != nil {
		t.Fatalf("SelfJoin: %v", err)
	}
	if want := brutePairs(pts, 0.08); !reflect.DeepEqual(got.Pairs, want) {
		t.Fatalf("post-append join: got %d pairs, want %d", len(got.Pairs), len(want))
	}
}

func TestAppendCreatesDatasetOnEmptyShard(t *testing.T) {
	c, _, fakes := newTestCluster(t, 2, 0.1)
	// Hand-built map: shard 1 exists but holds nothing yet.
	sm := &ShardMap{
		Dims: 1, Dim: 0, Cuts: []float64{10}, Margin: 0.1, Total: 1,
		Shards: []Shard{
			{URL: c.workers[0], Global: []int{0}},
			{URL: c.workers[1]},
		},
	}
	c.sets["d"] = sm
	fakes[0].sets["d"] = [][]float64{{0}}

	res, err := c.Append(context.Background(), "d", [][]float64{{20}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if res.Partial || res.Info.Len != 2 {
		t.Fatalf("append result = %+v", res)
	}
	fakes[1].mu.Lock()
	created := fakes[1].sets["d"]
	fakes[1].mu.Unlock()
	if !reflect.DeepEqual(created, [][]float64{{20}}) {
		t.Fatalf("empty shard was not created via PUT: %v", created)
	}
	fakes[0].mu.Lock()
	untouched := len(fakes[0].sets["d"])
	fakes[0].mu.Unlock()
	if untouched != 1 {
		t.Fatalf("shard 0 gained a point outside its strip: %d", untouched)
	}
}

func TestAppendValidation(t *testing.T) {
	c, _, _ := newTestCluster(t, 2, 0.1)
	ctx := context.Background()
	var nfe NotFoundError
	if _, err := c.Append(ctx, "nope", [][]float64{{1, 2}}); !errors.As(err, &nfe) {
		t.Errorf("missing dataset: err = %v, want NotFoundError", err)
	}
	if _, err := c.Upload(ctx, "d", randomPoints(20, 2, 71), 0); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	var qe QueryError
	if _, err := c.Append(ctx, "d", nil); !errors.As(err, &qe) {
		t.Errorf("empty append: err = %v, want QueryError", err)
	}
	if _, err := c.Append(ctx, "d", [][]float64{{1, 2, 3}}); !errors.As(err, &qe) {
		t.Errorf("dims mismatch: err = %v, want QueryError", err)
	}
}
