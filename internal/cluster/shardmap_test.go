package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomPoints(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func testURLs(k int) []string {
	urls := make([]string, k)
	for i := range urls {
		urls[i] = "http://worker" + string(rune('a'+i))
	}
	return urls
}

func TestPartitionCoversEveryPointOnce(t *testing.T) {
	pts := randomPoints(500, 4, 1)
	sm, shardPts := Partition(pts, testURLs(4), 0.1)

	core := make(map[int]int)
	for s, sh := range sm.Shards {
		if len(sh.Global) != len(shardPts[s]) {
			t.Fatalf("shard %d: %d globals vs %d points", s, len(sh.Global), len(shardPts[s]))
		}
		seen := make(map[int]bool)
		for l, g := range sh.Global {
			if seen[g] {
				t.Fatalf("shard %d holds global %d twice", s, g)
			}
			seen[g] = true
			if !reflect.DeepEqual(shardPts[s][l], pts[g]) {
				t.Fatalf("shard %d local %d: wrong point for global %d", s, l, g)
			}
			if sm.ShardOf(pts[g][sm.Dim]) == s {
				core[g]++
			}
		}
	}
	for g := range pts {
		if core[g] != 1 {
			t.Fatalf("global %d is core on %d shards, want 1", g, core[g])
		}
	}
}

func TestPartitionReplicasStayWithinMargin(t *testing.T) {
	const margin = 0.07
	pts := randomPoints(400, 3, 2)
	sm, _ := Partition(pts, testURLs(5), margin)
	for s, sh := range sm.Shards {
		for _, g := range sh.Global {
			x := pts[g][sm.Dim]
			home := sm.ShardOf(x)
			if home == s {
				continue
			}
			if home < s {
				t.Fatalf("global %d (home %d) replicated upward to shard %d", g, home, s)
			}
			// A downward replica must sit within margin above shard s's
			// upper cut.
			if x < sm.Cuts[s] || x >= sm.Cuts[s]+margin {
				t.Fatalf("global %d at %g replicated to shard %d outside strip [%g, %g)",
					g, x, s, sm.Cuts[s], sm.Cuts[s]+margin)
			}
		}
	}
	// Conversely, every point in a strip must be replicated there.
	for g, p := range pts {
		x := p[sm.Dim]
		home := sm.ShardOf(x)
		for s := home - 1; s >= 0; s-- {
			if x >= sm.Cuts[s]+margin {
				break
			}
			found := false
			for _, gg := range sm.Shards[s].Global {
				if gg == g {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("global %d at %g missing from shard %d's strip", g, x, s)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	pts := randomPoints(300, 6, 3)
	sm1, sp1 := Partition(pts, testURLs(3), 0.1)
	sm2, sp2 := Partition(pts, testURLs(3), 0.1)
	if !reflect.DeepEqual(sm1, sm2) || !reflect.DeepEqual(sp1, sp2) {
		t.Fatal("Partition is not deterministic")
	}
}

func TestPartitionSingleWorker(t *testing.T) {
	pts := randomPoints(50, 2, 4)
	sm, shardPts := Partition(pts, testURLs(1), 0.1)
	if len(sm.Cuts) != 0 || len(sm.Shards) != 1 {
		t.Fatalf("single worker map = %+v", sm)
	}
	if len(shardPts[0]) != len(pts) {
		t.Fatalf("single worker holds %d points, want %d", len(shardPts[0]), len(pts))
	}
}

func TestPartitionRoutesOnWidestDim(t *testing.T) {
	// Dimension 1 spans [0, 10]; dimension 0 only [0, 1].
	pts := make([][]float64, 100)
	rng := rand.New(rand.NewSource(5))
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64() * 10}
	}
	sm, _ := Partition(pts, testURLs(4), 0.1)
	if sm.Dim != 1 {
		t.Fatalf("routing dim = %d, want 1", sm.Dim)
	}
}

func TestShardOfAndRouteInterval(t *testing.T) {
	sm := &ShardMap{Cuts: []float64{1, 2, 3}, Shards: make([]Shard, 4)}
	cases := []struct {
		x    float64
		want int
	}{{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.99, 2}, {3, 3}, {99, 3}}
	for _, tc := range cases {
		if got := sm.ShardOf(tc.x); got != tc.want {
			t.Errorf("ShardOf(%g) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if got := sm.RouteInterval(0.9, 2.1); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("RouteInterval(0.9, 2.1) = %v", got)
	}
	if got := sm.RouteInterval(1.2, 1.8); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("RouteInterval(1.2, 1.8) = %v", got)
	}
}

func TestPartitionDegenerateProjection(t *testing.T) {
	// Every point identical: all cores land on the last shard and the
	// replica strips replicate everywhere; nothing is lost.
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{0.5}
	}
	sm, _ := Partition(pts, testURLs(3), 0.1)
	seen := make(map[int]bool)
	for _, sh := range sm.Shards {
		for _, g := range sh.Global {
			seen[g] = true
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("degenerate partition dropped points: %d of %d present", len(seen), len(pts))
	}
}
