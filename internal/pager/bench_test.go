package pager

import "testing"

// BenchmarkPoolFetch measures the hit and miss paths of the LRU pool.
func BenchmarkPoolFetch(b *testing.B) {
	s := NewStore(4096, nil)
	f := s.CreateFile(8)
	p := make([]float64, 8)
	for i := 0; i < 64*100; i++ { // 100 pages
		f.Append(p)
	}
	f.Flush()

	b.Run("hit", func(b *testing.B) {
		pool := NewPool(s, 4)
		pool.Fetch(f, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Fetch(f, 0)
		}
	})
	b.Run("miss-evict", func(b *testing.B) {
		pool := NewPool(s, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Fetch(f, i%100) // pool of 2 over 100 pages: ~all misses
		}
	})
}

func BenchmarkFileAppend(b *testing.B) {
	s := NewStore(4096, nil)
	f := s.CreateFile(8)
	p := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(p)
	}
}
