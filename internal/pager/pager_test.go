package pager

import (
	"math/rand"
	"testing"

	"simjoin/internal/stats"
)

func TestPointsPerPage(t *testing.T) {
	s := NewStore(4096, nil)
	if got := s.PointsPerPage(8); got != 64 { // 4096/(8*8)
		t.Errorf("PointsPerPage(8) = %d, want 64", got)
	}
	if got := s.PointsPerPage(1); got != 512 {
		t.Errorf("PointsPerPage(1) = %d, want 512", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized point did not panic")
		}
	}()
	s.PointsPerPage(4096)
}

func TestStoreDefaults(t *testing.T) {
	s := NewStore(0, nil)
	if s.PageBytes() != DefaultPageBytes {
		t.Errorf("PageBytes = %d, want default", s.PageBytes())
	}
	if s.Counters() == nil {
		t.Error("nil counters not replaced")
	}
	defer func() {
		if recover() == nil {
			t.Error("tiny page did not panic")
		}
	}()
	NewStore(8, nil)
}

func TestFileAppendAndPages(t *testing.T) {
	var c stats.Counters
	s := NewStore(64, &c) // 64 bytes = 8 floats = 4 points of dim 2
	f := s.CreateFile(2)
	if f.PointsPerPage() != 4 {
		t.Fatalf("perPage = %d, want 4", f.PointsPerPage())
	}
	for i := 0; i < 10; i++ {
		f.Append([]float64{float64(i), float64(-i)})
	}
	if f.Len() != 10 {
		t.Errorf("Len = %d", f.Len())
	}
	if f.NumPages() != 2 { // 8 points flushed, 2 buffered
		t.Errorf("NumPages before Flush = %d, want 2", f.NumPages())
	}
	f.Flush()
	if f.NumPages() != 3 {
		t.Errorf("NumPages after Flush = %d, want 3", f.NumPages())
	}
	if got := c.Snapshot().PageWrites; got != 3 {
		t.Errorf("PageWrites = %d, want 3", got)
	}
	if f.PagePoints(2) != 2 {
		t.Errorf("partial page has %d points, want 2", f.PagePoints(2))
	}
	// Flush with empty buffer is a no-op.
	f.Flush()
	if f.NumPages() != 3 || c.Snapshot().PageWrites != 3 {
		t.Error("empty Flush was not a no-op")
	}
}

func TestFileAppendPanics(t *testing.T) {
	s := NewStore(0, nil)
	f := s.CreateFile(3)
	for name, fn := range map[string]func(){
		"wrong dims": func() { f.Append([]float64{1}) },
		"bad file":   func() { s.CreateFile(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRoundTripThroughPages(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c stats.Counters
	s := NewStore(128, &c)
	f := s.CreateFile(3)
	want := make([][]float64, 50)
	for i := range want {
		p := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		want[i] = p
		f.Append(p)
	}
	f.Flush()
	pool := NewPool(s, 2)
	got := 0
	for pg := 0; pg < f.NumPages(); pg++ {
		data := pool.Fetch(f, pg)
		for i := 0; i < f.PagePoints(pg); i++ {
			p := PagePoint(data, 3, i)
			for k := 0; k < 3; k++ {
				if p[k] != want[got][k] {
					t.Fatalf("point %d dim %d: %g vs %g", got, k, p[k], want[got][k])
				}
			}
			got++
		}
	}
	if got != 50 {
		t.Fatalf("read %d points, want 50", got)
	}
}

func TestPoolLRUSemantics(t *testing.T) {
	var c stats.Counters
	s := NewStore(64, &c) // 4 points of dim 2 per page
	f := s.CreateFile(2)
	for i := 0; i < 16; i++ { // 4 pages
		f.Append([]float64{float64(i), 0})
	}
	f.Flush()
	c.Reset() // ignore write accounting

	pool := NewPool(s, 2)
	pool.Fetch(f, 0) // miss
	pool.Fetch(f, 1) // miss
	pool.Fetch(f, 0) // hit, page 0 becomes MRU
	pool.Fetch(f, 2) // miss, evicts page 1 (LRU)
	if pool.Resident(f, 1) {
		t.Error("page 1 still resident; LRU eviction wrong")
	}
	if !pool.Resident(f, 0) || !pool.Resident(f, 2) {
		t.Error("expected pages 0 and 2 resident")
	}
	pool.Fetch(f, 1) // miss again
	hits, misses, evictions := pool.Stats()
	if hits != 1 || misses != 4 || evictions != 2 {
		t.Errorf("stats = %d/%d/%d, want 1/4/2", hits, misses, evictions)
	}
	if got := c.Snapshot().PageReads; got != 4 {
		t.Errorf("PageReads = %d, want 4 (one per miss)", got)
	}
}

func TestPoolDrop(t *testing.T) {
	s := NewStore(64, nil)
	f := s.CreateFile(2)
	for i := 0; i < 8; i++ {
		f.Append([]float64{1, 2})
	}
	f.Flush()
	pool := NewPool(s, 4)
	pool.Fetch(f, 0)
	pool.Fetch(f, 1)
	pool.Drop()
	if pool.Resident(f, 0) || pool.Resident(f, 1) {
		t.Error("Drop left pages resident")
	}
	// Refetch after drop is a miss but capacity unaffected.
	pool.Fetch(f, 0)
	if _, misses, _ := pool.Stats(); misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
}

func TestPoolMultipleFilesDistinctKeys(t *testing.T) {
	s := NewStore(64, nil)
	a := s.CreateFile(2)
	b := s.CreateFile(2)
	for i := 0; i < 4; i++ {
		a.Append([]float64{1, 1})
		b.Append([]float64{2, 2})
	}
	a.Flush()
	b.Flush()
	pool := NewPool(s, 4)
	pa := pool.Fetch(a, 0)
	pb := pool.Fetch(b, 0)
	if pa[0] == pb[0] {
		t.Error("pages from different files collided")
	}
	if !pool.Resident(a, 0) || !pool.Resident(b, 0) {
		t.Error("both pages should be resident")
	}
}

func TestPoolPanics(t *testing.T) {
	s := NewStore(0, nil)
	f := s.CreateFile(2)
	f.Append([]float64{1, 2})
	f.Flush()
	pool := NewPool(s, 1)
	for name, fn := range map[string]func(){
		"zero capacity":     func() { NewPool(s, 0) },
		"page out of range": func() { pool.Fetch(f, 5) },
		"negative page":     func() { pool.Fetch(f, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestScanIOPattern: scanning a file larger than the pool charges exactly
// one read per page per scan — the base case external algorithms build on.
func TestScanIOPattern(t *testing.T) {
	var c stats.Counters
	s := NewStore(64, &c)
	f := s.CreateFile(2)
	for i := 0; i < 40; i++ { // 10 pages
		f.Append([]float64{float64(i), 0})
	}
	f.Flush()
	c.Reset()
	pool := NewPool(s, 3)
	for scan := 0; scan < 2; scan++ {
		for pg := 0; pg < f.NumPages(); pg++ {
			pool.Fetch(f, pg)
		}
	}
	if got := c.Snapshot().PageReads; got != 20 {
		t.Errorf("two cold scans charged %d reads, want 20", got)
	}
}

func TestAccessors(t *testing.T) {
	s := NewStore(0, nil)
	f := s.CreateFile(3)
	if f.Dims() != 3 {
		t.Errorf("Dims = %d", f.Dims())
	}
	p := NewPool(s, 7)
	if p.Capacity() != 7 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
}
