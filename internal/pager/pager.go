// Package pager simulates disk-resident point storage for the external join
// experiments: fixed-size pages of points, files of pages, and an LRU buffer
// pool through which every page access flows. Nothing actually touches the
// filesystem — the "disk" is a slab of memory — but every fetch that misses
// the pool is charged as a page read, so the harness reports the I/O counts
// a 1998 disk subsystem would have performed. (This is the hardware
// substitution recorded in DESIGN.md: we measure I/O operations rather than
// timing a period disk.)
package pager

import (
	"container/list"
	"fmt"

	"simjoin/internal/stats"
)

// DefaultPageBytes is the simulated page size used throughout the
// evaluation.
const DefaultPageBytes = 4096

// Store owns a set of simulated files and the I/O counters they charge.
type Store struct {
	pageBytes int
	counters  *stats.Counters
	files     []*File
}

// NewStore returns a store with the given page size in bytes (0 selects
// DefaultPageBytes). I/O is charged to counters, which may be nil for an
// uninstrumented store.
func NewStore(pageBytes int, counters *stats.Counters) *Store {
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	if pageBytes < 16 {
		panic(fmt.Sprintf("pager: page size %d too small for even one coordinate", pageBytes))
	}
	if counters == nil {
		counters = &stats.Counters{}
	}
	return &Store{pageBytes: pageBytes, counters: counters}
}

// PageBytes returns the store's page size.
func (s *Store) PageBytes() int { return s.pageBytes }

// Counters returns the store's I/O counters.
func (s *Store) Counters() *stats.Counters { return s.counters }

// PointsPerPage returns how many d-dimensional float64 points fit in one
// page. It panics if a single point exceeds the page, which no layout in
// this library supports.
func (s *Store) PointsPerPage(dims int) int {
	pp := s.pageBytes / (8 * dims)
	if pp < 1 {
		panic(fmt.Sprintf("pager: %d-dim point does not fit in a %d-byte page", dims, s.pageBytes))
	}
	return pp
}

// File is a simulated disk file holding d-dimensional points in fixed-size
// pages. Points are appended through a one-page write buffer; every full
// page costs one page write. Reads must go through a Pool so they are
// counted.
type File struct {
	store   *Store
	id      int
	dims    int
	perPage int
	pages   [][]float64 // finalized pages, each ≤ perPage*dims floats
	buf     []float64   // current write buffer (not yet on "disk")
	n       int         // total points appended
}

// CreateFile allocates a new empty file of d-dimensional points.
func (s *Store) CreateFile(dims int) *File {
	if dims < 1 {
		panic(fmt.Sprintf("pager: invalid dimensionality %d", dims))
	}
	f := &File{store: s, id: len(s.files), dims: dims, perPage: s.PointsPerPage(dims)}
	s.files = append(s.files, f)
	return f
}

// Dims returns the file's point dimensionality.
func (f *File) Dims() int { return f.dims }

// Len returns the number of points appended so far (including buffered
// ones).
func (f *File) Len() int { return f.n }

// PointsPerPage returns the file's page fan-out.
func (f *File) PointsPerPage() int { return f.perPage }

// NumPages returns the number of finalized pages. Call Flush first if the
// write buffer may be non-empty.
func (f *File) NumPages() int { return len(f.pages) }

// Append adds a point to the file, writing a page to "disk" whenever the
// buffer fills.
func (f *File) Append(p []float64) {
	if len(p) != f.dims {
		panic(fmt.Sprintf("pager: appending %d-dim point to %d-dim file", len(p), f.dims))
	}
	f.buf = append(f.buf, p...)
	f.n++
	if len(f.buf) == f.perPage*f.dims {
		f.flushBuf()
	}
}

// Flush forces any buffered points onto a final (possibly partial) page.
func (f *File) Flush() {
	if len(f.buf) > 0 {
		f.flushBuf()
	}
}

func (f *File) flushBuf() {
	page := make([]float64, len(f.buf))
	copy(page, f.buf)
	f.pages = append(f.pages, page)
	f.buf = f.buf[:0]
	f.store.counters.AddPageWrites(1)
}

// pageKey identifies a page across all files of one store.
type pageKey struct {
	file, page int
}

// Pool is an LRU buffer pool of pages. All page reads flow through Fetch;
// a miss charges one page read to the store's counters and may evict the
// least-recently-used resident page. The pool is not safe for concurrent
// use — the external algorithms are single-threaded by design, mirroring
// the paper's setting.
type Pool struct {
	store    *Store
	capacity int
	lru      *list.List // front = most recent; values are pageKey
	resident map[pageKey]*list.Element

	hits, misses, evictions int64
}

// NewPool returns a pool caching up to capacity pages. Capacity must be at
// least 1.
func NewPool(store *Store, capacity int) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("pager: pool capacity %d < 1", capacity))
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		lru:      list.New(),
		resident: make(map[pageKey]*list.Element, capacity),
	}
}

// Capacity returns the pool's page budget.
func (p *Pool) Capacity() int { return p.capacity }

// Fetch returns page number page of file f, reading it from "disk" (and
// charging a page read) unless it is resident. The returned slice is the
// page's point data laid out row-major; callers must not modify it.
func (p *Pool) Fetch(f *File, page int) []float64 {
	if page < 0 || page >= len(f.pages) {
		panic(fmt.Sprintf("pager: page %d out of range [0, %d)", page, len(f.pages)))
	}
	key := pageKey{file: f.id, page: page}
	if el, ok := p.resident[key]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		return f.pages[page]
	}
	p.misses++
	p.store.counters.AddPageReads(1)
	if p.lru.Len() == p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.resident, oldest.Value.(pageKey))
		p.evictions++
	}
	p.resident[key] = p.lru.PushFront(key)
	return f.pages[page]
}

// Resident reports whether the given page is currently cached.
func (p *Pool) Resident(f *File, page int) bool {
	_, ok := p.resident[pageKey{file: f.id, page: page}]
	return ok
}

// Stats returns the pool's hit, miss, and eviction totals.
func (p *Pool) Stats() (hits, misses, evictions int64) {
	return p.hits, p.misses, p.evictions
}

// Drop empties the pool without charging I/O, as between experiment phases.
func (p *Pool) Drop() {
	p.lru.Init()
	for k := range p.resident {
		delete(p.resident, k)
	}
}

// PagePoints returns the number of points on page `page` of file f.
func (f *File) PagePoints(page int) int {
	return len(f.pages[page]) / f.dims
}

// PagePoint returns point i of page `page` from previously fetched page
// data (as returned by Pool.Fetch).
func PagePoint(pageData []float64, dims, i int) []float64 {
	return pageData[i*dims : (i+1)*dims : (i+1)*dims]
}
