// Package zorder implements the space-filling-curve similarity join
// (Orenstein-style): points are sorted along a Z-order (Morton) curve,
// packed into consecutive blocks, and blocks are joined pairwise with
// bounding-box pruning. The curve gives blocks spatial locality, so most
// block pairs prune; but a single curve cannot preserve ε-proximity in all
// dimensions at once, which is why the method trails the ε-kdB tree as
// dimensionality grows — another axis of the evaluation.
//
// The Morton key is also exported for reuse as a bulk-loading sort key
// (package rtree packs its leaves in Z-order).
package zorder

import (
	"sort"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// DefaultBlockSize is the number of curve-consecutive points joined as one
// block.
const DefaultBlockSize = 256

// BitsPerDim returns how many bits of each coordinate a 64-bit Morton key
// can hold for d interleaved dimensions (at least 1 for d ≤ 64; dimensions
// beyond 64 simply do not participate in the key).
func BitsPerDim(d int) int {
	if d <= 0 {
		panic("zorder: non-positive dimensionality")
	}
	if d > 64 {
		return 1
	}
	bits := 64 / d
	if bits > 16 {
		bits = 16 // finer than 16 bits/dim buys nothing for ordering
	}
	return bits
}

// Key maps point p to its Morton code: each coordinate is normalized by box
// to [0, 1], quantized to BitsPerDim(d) bits, and the bits of all
// dimensions are interleaved most-significant first.
func Key(p []float64, box vec.Box) uint64 {
	d := len(p)
	bits := BitsPerDim(d)
	kd := d
	if kd > 64 {
		kd = 64
	}
	maxQ := uint64(1)<<bits - 1
	var q [64]uint64
	for k := 0; k < kd; k++ {
		ext := box.Hi[k] - box.Lo[k]
		var v float64
		if ext > 0 {
			v = (p[k] - box.Lo[k]) / ext
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		qv := uint64(v * float64(maxQ))
		if qv > maxQ {
			qv = maxQ
		}
		q[k] = qv
	}
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for k := 0; k < kd; k++ {
			key = key<<1 | (q[k]>>uint(b))&1
		}
	}
	return key
}

// KeyFunc maps a point (normalized by a box) to its position on a
// space-filling curve. Package zorder provides Key (Morton); package
// hilbert provides a Hilbert-curve key with the same signature.
type KeyFunc func(p []float64, box vec.Box) uint64

// block is a run of curve-consecutive points with its bounding box.
type block struct {
	idx []int32
	box vec.Box
}

// makeBlocks sorts ds's indexes along the curve (normalizing by box) and
// cuts them into blocks of the given size.
func makeBlocks(ds *dataset.Dataset, box vec.Box, blockSize int, key KeyFunc) []block {
	n := ds.Len()
	type keyed struct {
		key uint64
		idx int32
	}
	ks := make([]keyed, n)
	for i := 0; i < n; i++ {
		ks[i] = keyed{key: key(ds.Point(i), box), idx: int32(i)}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	var blocks []block
	for start := 0; start < n; start += blockSize {
		end := start + blockSize
		if end > n {
			end = n
		}
		idx := make([]int32, end-start)
		for i := range idx {
			idx[i] = ks[start+i].idx
		}
		b := vec.BoundingBox(len(idx), func(i int) []float64 { return ds.Point(int(idx[i])) })
		blocks = append(blocks, block{idx: idx, box: b})
	}
	return blocks
}

// SortedIndexes returns ds's point indexes ordered along the Z-curve — the
// bulk-load ordering used by package rtree.
func SortedIndexes(ds *dataset.Dataset) []int32 {
	box := ds.Bounds()
	blocks := makeBlocks(ds, box, ds.Len(), Key)
	return blocks[0].idx
}

// SelfJoin reports every unordered pair within ε once, using the default
// block size.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	SelfJoinBlock(ds, opt, DefaultBlockSize, sink)
}

// SelfJoinBlock is SelfJoin with an explicit block size.
func SelfJoinBlock(ds *dataset.Dataset, opt join.Options, blockSize int, sink pairs.Sink) {
	SelfJoinKeyed(ds, opt, blockSize, Key, sink)
}

// SelfJoinKeyed is SelfJoinBlock with an explicit curve key, so other
// space-filling curves (package hilbert) reuse the block machinery.
func SelfJoinKeyed(ds *dataset.Dataset, opt join.Options, blockSize int, key KeyFunc, sink pairs.Sink) {
	opt.MustValidate()
	if blockSize < 1 {
		blockSize = DefaultBlockSize
	}
	if ds.Len() < 2 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	blocks := makeBlocks(ds, ds.Bounds(), blockSize, key)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	var cand, res, visits int64
	for bi := range blocks {
		a := &blocks[bi]
		// Within-block pairs.
		for x := 0; x < len(a.idx); x++ {
			px := ds.Point(int(a.idx[x]))
			for y := x + 1; y < len(a.idx); y++ {
				cand++
				if vec.Within(opt.Metric, px, ds.Point(int(a.idx[y])), t) {
					res++
					sink.Emit(int(a.idx[x]), int(a.idx[y]))
				}
			}
		}
		// Cross-block pairs, MBR-pruned.
		for bj := bi + 1; bj < len(blocks); bj++ {
			b := &blocks[bj]
			visits++
			if !a.box.WithinDist(opt.Metric, b.box, t) {
				continue
			}
			for _, ix := range a.idx {
				px := ds.Point(int(ix))
				for _, iy := range b.idx {
					cand++
					if vec.Within(opt.Metric, px, ds.Point(int(iy)), t) {
						res++
						sink.Emit(int(ix), int(iy))
					}
				}
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}

// Join reports every (a-index, b-index) pair within ε, blocking both sets
// along a shared curve.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	JoinBlock(a, b, opt, DefaultBlockSize, sink)
}

// JoinBlock is Join with an explicit block size.
func JoinBlock(a, b *dataset.Dataset, opt join.Options, blockSize int, sink pairs.Sink) {
	JoinKeyed(a, b, opt, blockSize, Key, sink)
}

// JoinKeyed is JoinBlock with an explicit curve key.
func JoinKeyed(a, b *dataset.Dataset, opt join.Options, blockSize int, key KeyFunc, sink pairs.Sink) {
	opt.MustValidate()
	if blockSize < 1 {
		blockSize = DefaultBlockSize
	}
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ba := makeBlocks(a, box, blockSize, key)
	bb := makeBlocks(b, box, blockSize, key)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	var cand, res, visits int64
	for i := range ba {
		for j := range bb {
			visits++
			if !ba[i].box.WithinDist(opt.Metric, bb[j].box, t) {
				continue
			}
			for _, ix := range ba[i].idx {
				px := a.Point(int(ix))
				for _, iy := range bb[j].idx {
					cand++
					if vec.Within(opt.Metric, px, b.Point(int(iy)), t) {
						res++
						sink.Emit(int(ix), int(iy))
					}
				}
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}
