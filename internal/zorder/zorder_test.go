package zorder

import (
	"math/rand"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 601)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 602)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestBlockSizeVariants(t *testing.T) {
	for _, bs := range []int{1, 2, 17, 1000} {
		fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			SelfJoinBlock(ds, opt, bs, sink)
		}
		jointest.CheckSelf(t, fn, 8, 603+int64(bs))
	}
}

func TestBitsPerDim(t *testing.T) {
	for _, tc := range []struct{ d, want int }{
		{1, 16}, {2, 16}, {4, 16}, {5, 12}, {8, 8}, {16, 4}, {32, 2}, {64, 1}, {100, 1},
	} {
		if got := BitsPerDim(tc.d); got != tc.want {
			t.Errorf("BitsPerDim(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BitsPerDim(0) did not panic")
		}
	}()
	BitsPerDim(0)
}

// TestKeyMonotone1D: in one dimension the Z-order reduces to coordinate
// order.
func TestKeyMonotone1D(t *testing.T) {
	box := vec.NewBox([]float64{0}, []float64{1})
	prev := uint64(0)
	for i := 0; i <= 100; i++ {
		k := Key([]float64{float64(i) / 100}, box)
		if k < prev {
			t.Fatalf("key not monotone at %d: %d < %d", i, k, prev)
		}
		prev = k
	}
}

// TestKeyQuadrantOrder2D: the four quadrants of the unit square follow the
// Z shape: (lo,lo) < (lo,hi)? Morton with dim 0 as the most significant bit
// orders quadrants by (x-half, y-half) bits: 00 < 01 < 10 < 11 →
// (lo,lo) < (lo,hi) < (hi,lo) < (hi,hi).
func TestKeyQuadrantOrder2D(t *testing.T) {
	box := vec.NewBox([]float64{0, 0}, []float64{1, 1})
	ll := Key([]float64{0.2, 0.2}, box)
	lh := Key([]float64{0.2, 0.8}, box)
	hl := Key([]float64{0.8, 0.2}, box)
	hh := Key([]float64{0.8, 0.8}, box)
	if !(ll < lh && lh < hl && hl < hh) {
		t.Errorf("quadrant order violated: %d %d %d %d", ll, lh, hl, hh)
	}
}

// TestKeyLocality: nearby points share long key prefixes more often than
// far ones; measure via average absolute key difference.
func TestKeyLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.NewBox([]float64{0, 0, 0}, []float64{1, 1, 1})
	var nearSum, farSum float64
	const trials = 500
	for i := 0; i < trials; i++ {
		p := []float64{rng.Float64() * 0.9, rng.Float64() * 0.9, rng.Float64() * 0.9}
		q := []float64{p[0] + 0.01, p[1] + 0.01, p[2] + 0.01}
		r := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		kp, kq, kr := Key(p, box), Key(q, box), Key(r, box)
		nearSum += absDiff(kp, kq)
		farSum += absDiff(kp, kr)
	}
	if nearSum >= farSum {
		t.Errorf("curve has no locality: near avg %g ≥ far avg %g", nearSum/trials, farSum/trials)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestKeyDegenerateBox(t *testing.T) {
	// Zero-extent dimensions must not produce NaN-driven garbage.
	box := vec.NewBox([]float64{5, 0}, []float64{5, 1})
	k1 := Key([]float64{5, 0.1}, box)
	k2 := Key([]float64{5, 0.9}, box)
	if k1 >= k2 {
		t.Errorf("degenerate dim broke ordering: %d >= %d", k1, k2)
	}
}

func TestSortedIndexes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 300, Dims: 4, Seed: 2, Dist: synth.Uniform})
	idx := SortedIndexes(ds)
	if len(idx) != 300 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := make([]bool, 300)
	box := ds.Bounds()
	prev := uint64(0)
	for pos, i := range idx {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
		k := Key(ds.Point(int(i)), box)
		if k < prev {
			t.Fatalf("keys out of order at position %d", pos)
		}
		prev = k
	}
}

// TestBlockPruning: on spread data most block pairs must be rejected by the
// MBR test.
func TestBlockPruning(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 5000, Dims: 3, Seed: 3, Dist: synth.Uniform})
	var c stats.Counters
	var sink pairs.Counter
	SelfJoinBlock(ds, join.Options{Metric: vec.L2, Eps: 0.02, Counters: &c}, 64, &sink)
	s := c.Snapshot()
	quad := int64(ds.Len()) * int64(ds.Len()-1) / 2
	// Z-order block MBRs overlap substantially (curve jumps), so the
	// pruning is real but modest — the very effect the evaluation reports.
	if s.Candidates*2 > quad {
		t.Errorf("candidates %d not below half of quadratic %d", s.Candidates, quad)
	}
}
