package live

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

// randPoints draws n clustered points in [0,1]^dims — clustering keeps
// the pair sets non-trivial at small ε.
func randPoints(rng *rand.Rand, n, dims int) [][]float64 {
	centers := make([][]float64, 8)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make([]float64, dims)
		for d := range p {
			p[d] = c[d] + (rng.Float64()-0.5)*0.2
		}
		pts[i] = p
	}
	return pts
}

func fromPoints(pts [][]float64) *dataset.Dataset {
	ds := dataset.New(len(pts[0]), len(pts))
	for _, p := range pts {
		ds.Append(p)
	}
	return ds
}

// oracleSelf brute-forces the self-join pair set over pts.
func oracleSelf(pts [][]float64, m vec.Metric, eps float64) [][2]int {
	t := vec.Threshold(m, eps)
	var out [][2]int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if vec.Within(m, pts[i], pts[j], t) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// oracleTwo brute-forces the two-set pair set.
func oracleTwo(a, b [][]float64, m vec.Metric, eps float64) [][2]int {
	t := vec.Threshold(m, eps)
	var out [][2]int
	for i := range a {
		for j := range b {
			if vec.Within(m, a[i], b[j], t) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func sortPairs(prs [][2]int) {
	sort.Slice(prs, func(a, b int) bool {
		if prs[a][0] != prs[b][0] {
			return prs[a][0] < prs[b][0]
		}
		return prs[a][1] < prs[b][1]
	})
}

func pairsEqual(t *testing.T, got, want [][2]int) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// drain collects every event currently buffered on sub.
func drain(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func collectPairs(evs []Event) [][2]int {
	var out [][2]int
	for _, ev := range evs {
		out = append(out, ev.Pairs...)
	}
	return out
}

// TestSelfJoinDeltaEqualsOracle is the core contract: the union of
// delta pairs a subscriber receives across appended batches equals the
// brute-force pair set over the final dataset.
func TestSelfJoinDeltaEqualsOracle(t *testing.T) {
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		t.Run(m.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(m) + 7))
			const eps = 0.15
			all := randPoints(rng, 120, 4)
			seed := all[:30]

			eng := New(Hooks{})
			eng.Track("pts", fromPoints(seed), eps)
			sub, err := eng.Subscribe(Query{Dataset: "pts", Eps: eps, Metric: m}, Options{Buffer: 64})
			if err != nil {
				t.Fatal(err)
			}
			got := [][2]int{}
			next := 30
			total := next
			for next < len(all) {
				k := 1 + rng.Intn(20)
				if next+k > len(all) {
					k = len(all) - next
				}
				batch := all[next : next+k]
				next += k
				total += k
				eng.Append(context.Background(), "pts", batch, total)
			}
			evs := drain(sub)
			got = append(got, collectPairs(evs)...)
			// Deltas exclude seed-internal pairs: both endpoints < 30.
			var want [][2]int
			for _, p := range oracleSelf(all, m, eps) {
				if p[1] >= 30 {
					want = append(want, p)
				}
			}
			pairsEqual(t, got, want)
			// Sequence tokens must walk the dataset lengths.
			if last := evs[len(evs)-1]; last.Seq != len(all) {
				t.Fatalf("final seq %d, want %d", last.Seq, len(all))
			}
		})
	}
}

// TestCatchUpReplayEqualsOracle: subscribing with an After cursor must
// replay exactly the pairs whose later endpoint is at or past the
// cursor, and live delivery continues seamlessly after it.
func TestCatchUpReplayEqualsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const eps = 0.12
	all := randPoints(rng, 100, 3)

	eng := New(Hooks{})
	eng.Track("pts", fromPoints(all[:70]), eps)

	cursor := 40
	sub, err := eng.Subscribe(Query{Dataset: "pts", Eps: eps, Metric: vec.L2}, Options{Buffer: 64, After: &cursor})
	if err != nil {
		t.Fatal(err)
	}
	eng.Append(context.Background(), "pts", all[70:], 100)

	evs := drain(sub)
	if len(evs) < 2 || !evs[0].CatchUp {
		t.Fatalf("want a catch-up event then a live batch, got %+v", evs)
	}
	if evs[0].Seq != 70 {
		t.Fatalf("catch-up seq %d, want 70", evs[0].Seq)
	}
	var want [][2]int
	for _, p := range oracleSelf(all, vec.L2, eps) {
		if p[1] >= cursor {
			want = append(want, p)
		}
	}
	pairsEqual(t, collectPairs(evs), want)
}

// TestTwoSetDeltaEqualsOracle interleaves appends to both sides of a
// two-set standing query.
func TestTwoSetDeltaEqualsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const eps = 0.15
	a := randPoints(rng, 80, 3)
	b := randPoints(rng, 90, 3)

	eng := New(Hooks{})
	eng.Track("a", fromPoints(a[:20]), eps)
	eng.Track("b", fromPoints(b[:25]), eps)
	sub, err := eng.Subscribe(Query{Dataset: "a", Other: "b", Eps: eps, Metric: vec.L1}, Options{Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	na, nb := 20, 25
	for na < len(a) || nb < len(b) {
		if na < len(a) && (nb >= len(b) || rng.Intn(2) == 0) {
			k := 1 + rng.Intn(10)
			if na+k > len(a) {
				k = len(a) - na
			}
			eng.Append(context.Background(), "a", a[na:na+k], na+k)
			na += k
		} else {
			k := 1 + rng.Intn(10)
			if nb+k > len(b) {
				k = len(b) - nb
			}
			eng.Append(context.Background(), "b", b[nb:nb+k], nb+k)
			nb += k
		}
	}
	evs := drain(sub)
	var want [][2]int
	for _, p := range oracleTwo(a, b, vec.L1, eps) {
		if p[0] >= 20 || p[1] >= 25 {
			want = append(want, p)
		}
	}
	pairsEqual(t, collectPairs(evs), want)
	last := evs[len(evs)-1]
	if last.Seq != len(a) || last.SeqOther != len(b) {
		t.Fatalf("final cursors (%d,%d), want (%d,%d)", last.Seq, last.SeqOther, len(a), len(b))
	}
}

// TestTwoSetCatchUp replays both cursors of a two-set query.
func TestTwoSetCatchUp(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const eps = 0.2
	a := randPoints(rng, 50, 3)
	b := randPoints(rng, 60, 3)
	eng := New(Hooks{})
	eng.Track("a", fromPoints(a), eps)
	eng.Track("b", fromPoints(b), eps)
	ca, cb := 30, 35
	sub, err := eng.Subscribe(Query{Dataset: "a", Other: "b", Eps: eps, Metric: vec.L2},
		Options{Buffer: 8, After: &ca, AfterOther: &cb})
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(sub)
	var want [][2]int
	for _, p := range oracleTwo(a, b, vec.L2, eps) {
		if p[0] >= ca || p[1] >= cb {
			want = append(want, p)
		}
	}
	pairsEqual(t, collectPairs(evs), want)
}

// TestEpsRaiseRebuilds: a later subscription with a larger ε forces an
// index rebuild and both standing queries stay exact at their own ε.
func TestEpsRaiseRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	all := randPoints(rng, 80, 3)
	eng := New(Hooks{})
	eng.Track("pts", fromPoints(all[:40]), 0.05)
	small, err := eng.Subscribe(Query{Dataset: "pts", Eps: 0.05, Metric: vec.L2}, Options{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	big, err := eng.Subscribe(Query{Dataset: "pts", Eps: 0.25, Metric: vec.L2}, Options{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng.Append(context.Background(), "pts", all[40:], len(all))
	for _, tc := range []struct {
		sub *Subscription
		eps float64
	}{{small, 0.05}, {big, 0.25}} {
		var want [][2]int
		for _, p := range oracleSelf(all, vec.L2, tc.eps) {
			if p[1] >= 40 {
				want = append(want, p)
			}
		}
		pairsEqual(t, collectPairs(drain(tc.sub)), want)
	}
}

// TestSlowConsumerEviction: a subscriber that stops reading is evicted
// once its mailbox fills, and its channel closes with the eviction
// reason rather than blocking the append path.
func TestSlowConsumerEviction(t *testing.T) {
	evicted := 0
	eng := New(Hooks{Evicted: func() { evicted++ }})
	eng.Track("pts", fromPoints([][]float64{{0, 0}}), 0.1)
	sub, err := eng.Subscribe(Query{Dataset: "pts", Eps: 0.1, Metric: vec.L2}, Options{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		eng.Append(context.Background(), "pts", [][]float64{{float64(i) + 10, 0}}, 2+i)
	}
	// Two events fit, the third overflows: drain and expect closure.
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d buffered events, want 2", n)
	}
	if sub.Reason() != ReasonSlowConsumer {
		t.Fatalf("reason %q, want %q", sub.Reason(), ReasonSlowConsumer)
	}
	if evicted != 1 {
		t.Fatalf("evicted hook ran %d times, want 1", evicted)
	}
	if eng.Subscriptions() != 0 {
		t.Fatalf("evicted subscription still registered")
	}
}

// TestDropTerminatesSubscribers covers DELETE/replace semantics: every
// subscription touching the dataset ends with the drop reason.
func TestDropTerminatesSubscribers(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0, 0}}), 0.1)
	eng.Track("b", fromPoints([][]float64{{1, 1}}), 0.1)
	self, _ := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{})
	two, _ := eng.Subscribe(Query{Dataset: "b", Other: "a", Eps: 0.1, Metric: vec.L2}, Options{})
	eng.Drop("a", ReasonDeleted)
	for _, sub := range []*Subscription{self, two} {
		if _, ok := <-sub.Events(); ok {
			t.Fatal("expected closed channel after drop")
		}
		if sub.Reason() != ReasonDeleted {
			t.Fatalf("reason %q, want %q", sub.Reason(), ReasonDeleted)
		}
	}
	if eng.Tracked("a") {
		t.Fatal("dropped dataset still tracked")
	}
	if !eng.Tracked("b") {
		t.Fatal("unrelated dataset lost")
	}
	// Appends to b must now be inert for the removed two-set sub.
	eng.Append(context.Background(), "b", [][]float64{{1, 1.01}}, 2)
	if eng.Subscriptions() != 0 {
		t.Fatalf("want no live subscriptions, got %d", eng.Subscriptions())
	}
}

// TestShutdownTerminatesAll covers the daemon's graceful-exit hook.
func TestShutdownTerminatesAll(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0}}), 0.1)
	sub, _ := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{})
	eng.Shutdown()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("expected closed channel after shutdown")
	}
	if sub.Reason() != ReasonShutdown {
		t.Fatalf("reason %q, want %q", sub.Reason(), ReasonShutdown)
	}
	if _, err := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{}); err == nil {
		t.Fatal("Subscribe after Shutdown should fail")
	}
}

// TestDesyncDropsTracking: a gapped sequence token means a batch
// notification was lost; the engine must fail the affected streams
// loudly rather than silently under-deliver.
func TestDesyncDropsTracking(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0, 0}}), 0.1)
	sub, _ := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{})
	eng.Append(context.Background(), "a", [][]float64{{0.5, 0.5}}, 5) // gap: mirror has 1, 1+1 != 5
	if _, ok := <-sub.Events(); ok {
		t.Fatal("expected closed channel after desync")
	}
	if sub.Reason() != ReasonDesync {
		t.Fatalf("reason %q, want %q", sub.Reason(), ReasonDesync)
	}
	if eng.Tracked("a") {
		t.Fatal("desynced dataset still tracked")
	}
}

// TestStaleAndReplayedAppendsIgnored: totals at or below the mirror
// length are duplicates of batches the seed snapshot already contained.
func TestStaleAndReplayedAppendsIgnored(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0, 0}, {1, 1}}), 0.1)
	sub, _ := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{Buffer: 4})
	eng.Append(context.Background(), "a", [][]float64{{1, 1}}, 2) // replay of the seeded batch
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("replayed append produced %d events, want 0", len(evs))
	}
	if got := eng.Seq("a"); got != 2 {
		t.Fatalf("seq %d, want 2", got)
	}
}

// TestTrackSyncsPrefixMirror: re-tracking with a longer snapshot (appends
// landed while nothing subscribed) silently syncs the tail.
func TestTrackSyncsPrefixMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	all := randPoints(rng, 60, 3)
	eng := New(Hooks{})
	eng.Track("a", fromPoints(all[:20]), 0.15)
	// Appends happened elsewhere; Track again with the longer snapshot.
	eng.Track("a", fromPoints(all[:50]), 0.15)
	sub, err := eng.Subscribe(Query{Dataset: "a", Eps: 0.15, Metric: vec.L2}, Options{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng.Append(context.Background(), "a", all[50:], 60)
	var want [][2]int
	for _, p := range oracleSelf(all, vec.L2, 0.15) {
		if p[1] >= 50 {
			want = append(want, p)
		}
	}
	pairsEqual(t, collectPairs(drain(sub)), want)
}

// TestSubscribeValidation exercises the query guards.
func TestSubscribeValidation(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0, 0}}), 0.1)
	eng.Track("b3", fromPoints([][]float64{{0, 0, 0}}), 0.1)
	cases := []struct {
		name string
		q    Query
		opt  Options
	}{
		{"zero eps", Query{Dataset: "a", Eps: 0, Metric: vec.L2}, Options{}},
		{"unknown dataset", Query{Dataset: "nope", Eps: 0.1, Metric: vec.L2}, Options{}},
		{"unknown other", Query{Dataset: "a", Other: "nope", Eps: 0.1, Metric: vec.L2}, Options{}},
		{"self as other", Query{Dataset: "a", Other: "a", Eps: 0.1, Metric: vec.L2}, Options{}},
		{"dims mismatch", Query{Dataset: "a", Other: "b3", Eps: 0.1, Metric: vec.L2}, Options{}},
		{"after beyond len", Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{After: intp(9)}},
		{"negative after", Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{After: intp(-1)}},
	}
	for _, tc := range cases {
		if _, err := eng.Subscribe(tc.q, tc.opt); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if eng.Subscriptions() != 0 {
		t.Fatalf("failed subscriptions leaked: %d", eng.Subscriptions())
	}
}

func intp(v int) *int { return &v }

// TestConcurrentAppendAndSubscribe race-checks the engine under -race:
// appends, subscriptions and drops from many goroutines.
func TestConcurrentAppendAndSubscribe(t *testing.T) {
	eng := New(Hooks{})
	eng.Track("a", fromPoints([][]float64{{0, 0}}), 0.1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		total := 1
		for i := 0; i < 50; i++ {
			total++
			eng.Append(context.Background(), "a", [][]float64{{float64(i), 0}}, total)
		}
	}()
	for i := 0; i < 20; i++ {
		sub, err := eng.Subscribe(Query{Dataset: "a", Eps: 0.1, Metric: vec.L2}, Options{Buffer: 4})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range sub.Events() {
			}
		}()
		if i%5 == 4 {
			eng.Unsubscribe(sub.ID())
		}
	}
	<-done
	eng.Shutdown()
}

func ExampleEngine() {
	eng := New(Hooks{})
	eng.Track("pts", fromPoints([][]float64{{0, 0}, {5, 5}}), 0.2)
	sub, _ := eng.Subscribe(Query{Dataset: "pts", Eps: 0.2, Metric: vec.L2}, Options{})
	eng.Append(context.Background(), "pts", [][]float64{{0.1, 0}}, 3)
	ev := <-sub.Events()
	fmt.Println(ev.Seq, ev.Pairs)
	// Output: 3 [[0 2]]
}
