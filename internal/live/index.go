package live

import (
	"simjoin/internal/core"
	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

// Index is the long-lived incremental ε-kdB tree behind one tracked
// dataset: a growable mirror of the points plus a tree built for the
// largest ε any standing query needs. Appends route new points down the
// existing stripe grid (core.Tree.Insert) instead of rebuilding; only a
// *raised* ε forces a one-time rebuild, because the stripe grid is sized
// to the ε it was built for.
//
// The mirror owns its storage: the engine clones the seed dataset, so
// later copy-on-write swaps in the serving layer never alias it.
type Index struct {
	ds   *dataset.Dataset
	eps  float64
	tree *core.Tree
}

// fallbackEps sizes the stripe grid when a dataset is tracked before
// any standing query names its ε (the hint is 0). The first Subscribe
// raises it through EnsureEps if the query needs more.
const fallbackEps = 0.1

// newIndex clones seed and builds the stripe grid for eps. An empty seed
// gets a unit frame so the first insert has a grid to route through
// (points outside any frame clamp into the edge stripes — a selectivity
// cost, never a correctness one). A non-positive eps falls back to
// fallbackEps: the tree needs some stripe width, and queries only ever
// shrink relative to it or rebuild through EnsureEps.
func newIndex(seed *dataset.Dataset, eps float64) *Index {
	if eps <= 0 {
		eps = fallbackEps
	}
	x := &Index{ds: seed.Clone(), eps: eps}
	x.rebuild()
	return x
}

// rebuild constructs the tree from scratch at the current ε.
func (x *Index) rebuild() {
	box := unitBox(x.ds.Dims())
	if x.ds.Len() > 0 {
		box = x.ds.Bounds()
	}
	x.tree = core.BuildWithBox(x.ds, x.eps, box, core.Config{})
}

// unitBox is the fallback frame for an empty mirror.
func unitBox(dims int) vec.Box {
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := range hi {
		hi[d] = 1
	}
	return vec.NewBox(lo, hi)
}

// EnsureEps guarantees the index answers queries up to eps, rebuilding
// once if the standing-query ceiling rose. Lowering never rebuilds.
func (x *Index) EnsureEps(eps float64) {
	if eps <= x.eps {
		return
	}
	x.eps = eps
	x.rebuild()
}

// Add appends p to the mirror and indexes it, returning its index.
func (x *Index) Add(p []float64) int {
	x.ds.Append(p)
	i := x.ds.Len() - 1
	x.tree.Insert(i)
	return i
}

// Neighbors visits every indexed point within radius of q under metric.
// radius must not exceed the index ε (EnsureEps is the caller's job).
func (x *Index) Neighbors(q []float64, metric vec.Metric, radius float64, visit func(i int)) {
	x.tree.RangeQuery(q, metric, radius, nil, visit)
}

// Len returns the number of mirrored points.
func (x *Index) Len() int { return x.ds.Len() }

// Dims returns the mirror dimensionality.
func (x *Index) Dims() int { return x.ds.Dims() }

// Point returns mirrored point i (aliased, treat as read-only).
func (x *Index) Point(i int) []float64 { return x.ds.Point(i) }

// Eps returns the largest query radius the index currently supports.
func (x *Index) Eps() float64 { return x.eps }
