package live

import "simjoin/internal/vec"

// Query is one standing similarity-join: a self-join over Dataset, or a
// two-set join when Other is non-empty (pairs are (Dataset-index,
// Other-index)).
type Query struct {
	Dataset string
	Other   string
	Eps     float64
	Metric  vec.Metric
}

// DefaultBuffer is the mailbox capacity, in batch events, a subscription
// gets when Options.Buffer is unset. A subscriber that falls this many
// batches behind is evicted as a slow consumer.
const DefaultBuffer = 32

// Options tunes one subscription.
type Options struct {
	// Buffer is the mailbox capacity in batch events (≤ 0 selects
	// DefaultBuffer).
	Buffer int
	// After, when non-nil, asks for catch-up replay: every pair whose
	// later endpoint has index ≥ *After is delivered in one synthetic
	// batch before live delivery starts. nil subscribes from now.
	After *int
	// AfterOther is the Other-side replay cursor for two-set queries:
	// with both cursors set, the catch-up batch holds every pair not
	// fully contained in the [0,*After)×[0,*AfterOther) prefix.
	AfterOther *int
}

// Event is one message on a subscription stream: the delta pairs of one
// appended batch (or one catch-up replay), plus the sequence tokens a
// client needs to resume after a disconnect.
type Event struct {
	// Pairs are the new qualifying pairs this batch created. Self-join
	// pairs are (i, j) with i < j; two-set pairs are (Dataset-index,
	// Other-index).
	Pairs [][2]int
	// Seq is the dataset length after the batch — the cursor to resume
	// from (Options.After) when reconnecting.
	Seq int
	// SeqOther is the Other dataset's length, for two-set queries.
	SeqOther int
	// Added is how many points the batch appended (to either side).
	Added int
	// CatchUp marks the synthetic replay batch an Options.After
	// subscription starts with.
	CatchUp bool
}

// Subscription is one registered standing query. Events arrive on
// Events(); when the channel closes, Reason() says why the stream ended
// ("dataset deleted", "slow consumer", "server shutting down", …).
type Subscription struct {
	id uint64
	q  Query
	ch chan Event
	// baseSeq / baseSeqOther are the dataset lengths at registration —
	// the cursors a hello event reports before any batch arrives.
	baseSeq      int
	baseSeqOther int
	// done and reason are engine-state: written only under the engine
	// mutex, reason read after ch closes (close happens-before the
	// receive that observes it).
	done   bool
	reason string
}

// ID returns the engine-assigned subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// Query returns the standing query this subscription delivers.
func (s *Subscription) Query() Query { return s.q }

// Events is the subscription mailbox. It closes when the stream ends.
func (s *Subscription) Events() <-chan Event { return s.ch }

// BaseSeq returns the Dataset-side sequence token (its length) at the
// moment the subscription registered.
func (s *Subscription) BaseSeq() int { return s.baseSeq }

// BaseSeqOther returns the Other-side token at registration (0 for
// self-joins).
func (s *Subscription) BaseSeqOther() int { return s.baseSeqOther }

// Reason reports why the stream ended. Valid only after Events() closed.
func (s *Subscription) Reason() string { return s.reason }

// deliver enqueues ev without blocking; a full mailbox means the
// consumer is not keeping up and the subscription is evicted. Caller
// holds the engine mutex.
func (s *Subscription) deliver(ev Event) bool {
	if s.done {
		return false
	}
	select {
	case s.ch <- ev:
		return true
	default:
		s.terminate(ReasonSlowConsumer)
		return false
	}
}

// terminate ends the stream with reason. Caller holds the engine mutex,
// which is what makes close safe against concurrent deliver calls.
func (s *Subscription) terminate(reason string) {
	if s.done {
		return
	}
	s.done = true
	s.reason = reason
	close(s.ch)
}

// Terminal reasons the engine ends subscriptions with.
const (
	ReasonDeleted      = "dataset deleted"
	ReasonReplaced     = "dataset replaced"
	ReasonShutdown     = "server shutting down"
	ReasonSlowConsumer = "slow consumer"
	ReasonDesync       = "live mirror out of sync"
)
