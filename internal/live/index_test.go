package live

import (
	"math/rand"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

// TestIndexIncrementalMatchesRebuild: an index grown point-by-point must
// answer neighbor queries identically to one rebuilt from scratch over
// the same points — including points outside the seed frame, which clamp
// into edge stripes.
func TestIndexIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const eps = 0.2
	all := randPoints(rng, 150, 4)
	// Push some growth points outside the seed bounding box.
	for i := 120; i < 150; i++ {
		all[i][0] += 2.5
	}
	grown := newIndex(fromPoints(all[:50]), eps)
	for _, p := range all[50:] {
		grown.Add(p)
	}
	rebuilt := newIndex(fromPoints(all), eps)
	for qi := 0; qi < len(all); qi += 7 {
		var a, b []int
		grown.Neighbors(all[qi], vec.L2, eps, func(i int) { a = append(a, i) })
		rebuilt.Neighbors(all[qi], vec.L2, eps, func(i int) { b = append(b, i) })
		if len(a) != len(b) {
			t.Fatalf("query %d: grown found %d neighbors, rebuilt %d", qi, len(a), len(b))
		}
		seen := make(map[int]bool, len(a))
		for _, i := range a {
			seen[i] = true
		}
		for _, i := range b {
			if !seen[i] {
				t.Fatalf("query %d: rebuilt found %d, grown did not", qi, i)
			}
		}
	}
}

// TestIndexEmptySeed: tracking can start before any point exists; the
// unit frame gives inserts a grid to clamp into.
func TestIndexEmptySeed(t *testing.T) {
	x := newIndex(dataset.New(3, 0), 0.1)
	if x.Len() != 0 {
		t.Fatalf("empty seed has %d points", x.Len())
	}
	x.Add([]float64{5, 5, 5}) // far outside the unit frame
	x.Add([]float64{5, 5, 5.05})
	var got []int
	x.Neighbors([]float64{5, 5, 5}, vec.L2, 0.1, func(i int) { got = append(got, i) })
	if len(got) != 2 {
		t.Fatalf("found %d neighbors, want 2", len(got))
	}
}

// TestIndexEnsureEps: raising ε rebuilds and widens answers; lowering is
// a no-op and queries at smaller radii still work.
func TestIndexEnsureEps(t *testing.T) {
	x := newIndex(fromPoints([][]float64{{0, 0}, {0.3, 0}, {0.05, 0}}), 0.1)
	x.EnsureEps(0.5)
	if x.Eps() != 0.5 {
		t.Fatalf("eps %g after raise, want 0.5", x.Eps())
	}
	var got []int
	x.Neighbors([]float64{0, 0}, vec.L2, 0.5, func(i int) { got = append(got, i) })
	if len(got) != 3 {
		t.Fatalf("found %d neighbors at raised eps, want 3", len(got))
	}
	x.EnsureEps(0.05) // lowering never shrinks
	if x.Eps() != 0.5 {
		t.Fatalf("eps %g after lower, want 0.5", x.Eps())
	}
}
