// Package live is simjoind's continuous-query engine: a long-lived
// incremental index per dataset plus a registry of standing similarity
// joins. A subscriber registers a self-join or two-set query once and
// from then on receives exactly the *new* qualifying pairs each appended
// batch creates — the delta enumeration problem of maintaining a
// similarity join under insertions, instead of recomputing it per
// request.
//
// The delta of a batch is computed point-by-point against the index
// *before* the point is inserted: every neighbor found is an earlier
// point (smaller index, including same-batch predecessors), so each new
// pair is enumerated exactly once and self-join pairs come out i < j by
// construction.
//
// Sequence tokens are simply dataset lengths. An append is fully
// determined by the prefix length it grows, lengths survive WAL replay
// and snapshot compaction untouched, and a reconnecting subscriber can
// resume with Options.After = the last Seq it processed: the catch-up
// replay re-derives the missed pairs from the recovered index rather
// than from retained history, so delivery is at-least-once across
// crashes without the store keeping any per-subscriber state.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/obsv/trace"
)

// Hooks lets the daemon observe the engine without the engine importing
// the metrics stack. Every field may be nil. Callbacks run under the
// engine mutex — keep them O(1).
type Hooks struct {
	// Append observes one index mutation: wall time of the
	// delta-compute + insert pass and how many points it added.
	Append func(d time.Duration, points int)
	// Batch observes one delivered batch event and its pair count.
	Batch func(pairs int)
	// CatchUp observes one catch-up replay and its pair count.
	CatchUp func(pairs int)
	// Subscribed / Unsubscribed observe registry churn.
	Subscribed   func()
	Unsubscribed func()
	// Evicted observes a slow-consumer eviction.
	Evicted func()
}

// UnknownDatasetError reports a subscription against an untracked or
// unregistered dataset.
type UnknownDatasetError struct{ Name string }

func (e UnknownDatasetError) Error() string { return fmt.Sprintf("no dataset %q", e.Name) }

// QueryError reports an invalid standing query (a 400 at the API layer).
type QueryError struct{ Msg string }

func (e QueryError) Error() string { return e.Msg }

// ErrShutdown is returned by Subscribe once Shutdown has run.
var ErrShutdown = QueryError{Msg: "live engine is shut down"}

// liveSet is one tracked dataset: its incremental index plus the
// subscriptions that must hear about its appends, split by the role the
// set plays in each query.
type liveSet struct {
	name string
	idx  *Index
	// self holds self-join subscriptions on this set; asA / asB hold
	// two-set subscriptions in which this set is the Dataset / Other
	// side respectively.
	self map[uint64]*Subscription
	asA  map[uint64]*Subscription
	asB  map[uint64]*Subscription
}

func newLiveSet(name string, seed *dataset.Dataset, eps float64) *liveSet {
	return &liveSet{
		name: name,
		idx:  newIndex(seed, eps),
		self: make(map[uint64]*Subscription),
		asA:  make(map[uint64]*Subscription),
		asB:  make(map[uint64]*Subscription),
	}
}

func (ls *liveSet) subscriptions() int { return len(ls.self) + len(ls.asA) + len(ls.asB) }

// Engine owns every tracked dataset's incremental index and every
// standing query. One mutex serializes all mutation and delivery: that
// total order is what makes "each new pair is delivered exactly once,
// by the append that completed it" well-defined, including for two-set
// queries whose sides append concurrently.
type Engine struct {
	hooks Hooks

	mu     sync.Mutex
	sets   map[string]*liveSet
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool
}

// New builds an empty engine.
func New(hooks Hooks) *Engine {
	return &Engine{
		hooks: hooks,
		sets:  make(map[string]*liveSet),
		subs:  make(map[uint64]*Subscription),
	}
}

// Track starts (or refreshes) live tracking of name, seeding the mirror
// from ds — callers snapshot ds under the same lock that serializes
// their Append notifications, so the mirror can never miss or double-
// count a batch. epsHint pre-sizes the index for an upcoming
// subscription. Tracking an already-tracked dataset only raises ε.
func (e *Engine) Track(name string, ds *dataset.Dataset, epsHint float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	ls, ok := e.sets[name]
	if !ok {
		e.sets[name] = newLiveSet(name, ds, epsHint)
		return
	}
	if ls.idx.Dims() != ds.Dims() || ls.idx.Len() > ds.Len() {
		// The dataset was replaced under us without a Drop — the mirror
		// is no longer a prefix of the truth.
		e.dropLocked(name, ReasonDesync)
		e.sets[name] = newLiveSet(name, ds, epsHint)
		return
	}
	// The mirror is a strict prefix when appends landed while nothing
	// subscribed to notice; silently sync the tail (those batches owe no
	// notifications — no subscription was alive to see them... and if one
	// was, Append kept the mirror current and this loop is empty).
	for i := ls.idx.Len(); i < ds.Len(); i++ {
		ls.idx.Add(ds.Point(i))
	}
	ls.idx.EnsureEps(epsHint)
}

// Tracked reports whether name has a live index.
func (e *Engine) Tracked(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.sets[name]
	return ok
}

// Append feeds one committed batch through the engine: compute each
// affected standing query's delta pairs, insert the points into the
// incremental index, and deliver one batch event per subscription.
// total is the dataset's length after the batch — the batch's sequence
// token — which also guards the mirror against reordered or replayed
// notifications. Untracked datasets are ignored.
func (e *Engine) Append(ctx context.Context, name string, pts [][]float64, total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	ls, ok := e.sets[name]
	if !ok {
		return
	}
	if ls.idx.Len() >= total {
		return // the mirror was seeded from a snapshot that already includes this batch
	}
	if ls.idx.Len()+len(pts) != total {
		// A gap: some batch's notification never arrived. The mirror can
		// no longer honor the exactly-once-per-pair contract.
		e.dropLocked(name, ReasonDesync)
		return
	}
	for _, p := range pts {
		if len(p) != ls.idx.Dims() {
			e.dropLocked(name, ReasonDesync)
			return
		}
	}

	sp := trace.FromContext(ctx).Child("live.append")
	sp.SetAttr("dataset", name)
	sp.AddCounter("points", int64(len(pts)))
	defer sp.End()

	start := time.Now()
	deltas := make(map[*Subscription][][2]int)
	for _, p := range pts {
		// Delta pairs against everything already indexed — earlier
		// points and same-batch predecessors alike — then insert.
		j := ls.idx.Len()
		for _, sub := range ls.self {
			q := sub.q
			ls.idx.Neighbors(p, q.Metric, q.Eps, func(i int) {
				deltas[sub] = append(deltas[sub], [2]int{i, j})
			})
		}
		ls.idx.Add(p)
	}
	startIdx := total - len(pts)
	for _, sub := range ls.asA {
		other := e.sets[sub.q.Other]
		for k, p := range pts {
			i := startIdx + k
			other.idx.Neighbors(p, sub.q.Metric, sub.q.Eps, func(j int) {
				deltas[sub] = append(deltas[sub], [2]int{i, j})
			})
		}
	}
	for _, sub := range ls.asB {
		a := e.sets[sub.q.Dataset]
		for k, p := range pts {
			j := startIdx + k
			a.idx.Neighbors(p, sub.q.Metric, sub.q.Eps, func(i int) {
				deltas[sub] = append(deltas[sub], [2]int{i, j})
			})
		}
	}
	if e.hooks.Append != nil {
		e.hooks.Append(time.Since(start), len(pts))
	}

	nsp := sp.Child("live.notify")
	var pairTotal int64
	notified := 0
	notify := func(sub *Subscription, seq, seqOther int) {
		notified++
		pairTotal += int64(len(deltas[sub]))
		e.deliverLocked(sub, Event{
			Pairs:    deltas[sub],
			Seq:      seq,
			SeqOther: seqOther,
			Added:    len(pts),
		})
	}
	for _, sub := range ls.self {
		notify(sub, ls.idx.Len(), 0)
	}
	for _, sub := range ls.asA {
		notify(sub, ls.idx.Len(), e.sets[sub.q.Other].idx.Len())
	}
	for _, sub := range ls.asB {
		notify(sub, e.sets[sub.q.Dataset].idx.Len(), ls.idx.Len())
	}
	nsp.AddCounter("subscriptions", int64(notified))
	nsp.AddCounter("pairs", pairTotal)
	sp.AddCounter("pairs", pairTotal)
	nsp.End()
}

// deliverLocked pushes ev and handles the slow-consumer case: a full
// mailbox evicts the subscription entirely (its stream ends with
// ReasonSlowConsumer; the client may reconnect with After to resync).
func (e *Engine) deliverLocked(sub *Subscription, ev Event) {
	if sub.deliver(ev) {
		if e.hooks.Batch != nil {
			e.hooks.Batch(len(ev.Pairs))
		}
		return
	}
	if sub.reason == ReasonSlowConsumer {
		e.removeSubLocked(sub)
		if e.hooks.Evicted != nil {
			e.hooks.Evicted()
		}
	}
}

// Subscribe registers a standing query over tracked datasets (Track
// first) and returns its subscription. With Options.After set, the
// mailbox starts with one catch-up event replaying every pair the
// subscriber missed since that cursor.
func (e *Engine) Subscribe(q Query, opt Options) (*Subscription, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrShutdown
	}
	if !(q.Eps > 0) {
		return nil, QueryError{Msg: "eps must be positive"}
	}
	if q.Other == q.Dataset && q.Other != "" {
		return nil, QueryError{Msg: "two-set watch of a dataset against itself; use a self-join"}
	}
	lsA, ok := e.sets[q.Dataset]
	if !ok {
		return nil, UnknownDatasetError{Name: q.Dataset}
	}
	var lsB *liveSet
	if q.Other != "" {
		if lsB, ok = e.sets[q.Other]; !ok {
			return nil, UnknownDatasetError{Name: q.Other}
		}
		if lsA.idx.Dims() != lsB.idx.Dims() {
			return nil, QueryError{Msg: fmt.Sprintf("dimensionality mismatch: %d vs %d", lsA.idx.Dims(), lsB.idx.Dims())}
		}
	}
	if opt.After != nil && (*opt.After < 0 || *opt.After > lsA.idx.Len()) {
		return nil, QueryError{Msg: fmt.Sprintf("after cursor %d outside [0, %d]", *opt.After, lsA.idx.Len())}
	}
	if opt.AfterOther != nil && (lsB == nil || *opt.AfterOther < 0 || *opt.AfterOther > lsB.idx.Len()) {
		return nil, QueryError{Msg: "after_other cursor invalid for this query"}
	}
	lsA.idx.EnsureEps(q.Eps)
	if lsB != nil {
		lsB.idx.EnsureEps(q.Eps)
	}

	buf := opt.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	e.nextID++
	sub := &Subscription{id: e.nextID, q: q, ch: make(chan Event, buf), baseSeq: lsA.idx.Len()}
	if lsB != nil {
		sub.baseSeqOther = lsB.idx.Len()
	}
	e.subs[sub.id] = sub
	if lsB == nil {
		lsA.self[sub.id] = sub
	} else {
		lsA.asA[sub.id] = sub
		lsB.asB[sub.id] = sub
	}
	if ev, ok := e.catchUpLocked(lsA, lsB, q, opt); ok {
		if e.hooks.CatchUp != nil {
			e.hooks.CatchUp(len(ev.Pairs))
		}
		e.deliverLocked(sub, ev)
	}
	if e.hooks.Subscribed != nil {
		e.hooks.Subscribed()
	}
	return sub, nil
}

// catchUpLocked re-derives the pairs a reconnecting subscriber missed
// since its cursors, straight from the incremental indexes. For a
// self-join with cursor L, those are the pairs whose later endpoint is
// ≥ L; for a two-set query with cursors (La, Lb), the pairs outside the
// already-seen [0,La)×[0,Lb) prefix.
func (e *Engine) catchUpLocked(lsA, lsB *liveSet, q Query, opt Options) (Event, bool) {
	if opt.After == nil && opt.AfterOther == nil {
		return Event{}, false
	}
	var prs [][2]int
	if lsB == nil {
		after := lsA.idx.Len()
		if opt.After != nil {
			after = *opt.After
		}
		for j := after; j < lsA.idx.Len(); j++ {
			lsA.idx.Neighbors(lsA.idx.Point(j), q.Metric, q.Eps, func(i int) {
				if i < j {
					prs = append(prs, [2]int{i, j})
				}
			})
		}
		return Event{Pairs: prs, Seq: lsA.idx.Len(), Added: lsA.idx.Len() - after, CatchUp: true}, true
	}
	afterA, afterB := lsA.idx.Len(), lsB.idx.Len()
	if opt.After != nil {
		afterA = *opt.After
	}
	if opt.AfterOther != nil {
		afterB = *opt.AfterOther
	}
	for i := afterA; i < lsA.idx.Len(); i++ {
		lsB.idx.Neighbors(lsA.idx.Point(i), q.Metric, q.Eps, func(j int) {
			prs = append(prs, [2]int{i, j})
		})
	}
	for j := afterB; j < lsB.idx.Len(); j++ {
		lsA.idx.Neighbors(lsB.idx.Point(j), q.Metric, q.Eps, func(i int) {
			if i < afterA {
				prs = append(prs, [2]int{i, j})
			}
		})
	}
	added := (lsA.idx.Len() - afterA) + (lsB.idx.Len() - afterB)
	return Event{Pairs: prs, Seq: lsA.idx.Len(), SeqOther: lsB.idx.Len(), Added: added, CatchUp: true}, true
}

// Unsubscribe ends one subscription (normally because its client went
// away). Unknown ids are a no-op.
func (e *Engine) Unsubscribe(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sub, ok := e.subs[id]
	if !ok {
		return
	}
	sub.terminate("unsubscribed")
	e.removeSubLocked(sub)
}

// removeSubLocked unregisters sub everywhere.
func (e *Engine) removeSubLocked(sub *Subscription) {
	delete(e.subs, sub.id)
	if ls, ok := e.sets[sub.q.Dataset]; ok {
		delete(ls.self, sub.id)
		delete(ls.asA, sub.id)
	}
	if sub.q.Other != "" {
		if ls, ok := e.sets[sub.q.Other]; ok {
			delete(ls.asB, sub.id)
		}
	}
	if e.hooks.Unsubscribed != nil {
		e.hooks.Unsubscribed()
	}
}

// Drop stops tracking name — the dataset was deleted or replaced — and
// terminates every subscription touching it with the given reason, so
// their streams end with a terminal event instead of dangling.
func (e *Engine) Drop(name, reason string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropLocked(name, reason)
}

func (e *Engine) dropLocked(name, reason string) {
	ls, ok := e.sets[name]
	if !ok {
		return
	}
	delete(e.sets, name)
	for _, m := range []map[uint64]*Subscription{ls.self, ls.asA, ls.asB} {
		for _, sub := range m {
			sub.terminate(reason)
			e.removeSubLocked(sub)
		}
	}
}

// Shutdown terminates every subscription (their streams end with
// ReasonShutdown) and refuses further work — the graceful-exit hook the
// daemon runs before draining HTTP.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, sub := range e.subs {
		sub.terminate(ReasonShutdown)
	}
	e.subs = make(map[uint64]*Subscription)
	e.sets = make(map[string]*liveSet)
}

// Subscriptions returns the number of active subscriptions.
func (e *Engine) Subscriptions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.subs)
}

// DatasetStats describes one dataset's live state for introspection.
type DatasetStats struct {
	Tracked       bool    `json:"tracked"`
	Subscriptions int     `json:"subscriptions"`
	IndexedPoints int     `json:"indexed_points,omitempty"`
	Eps           float64 `json:"eps,omitempty"`
}

// Stats reports name's live-engine state (zero value when untracked).
func (e *Engine) Stats(name string) DatasetStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	ls, ok := e.sets[name]
	if !ok {
		return DatasetStats{}
	}
	return DatasetStats{
		Tracked:       true,
		Subscriptions: ls.subscriptions(),
		IndexedPoints: ls.idx.Len(),
		Eps:           ls.idx.Eps(),
	}
}

// Seq returns the current sequence token (mirror length) for name, or
// -1 when untracked — what a hello event reports.
func (e *Engine) Seq(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ls, ok := e.sets[name]; ok {
		return ls.idx.Len()
	}
	return -1
}
