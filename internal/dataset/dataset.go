// Package dataset provides the in-memory point-set container shared by every
// join algorithm, plus CSV and binary codecs and simple preprocessing
// (normalization, shuffling, sampling).
//
// Points are stored row-major in a single flat []float64, so Point(i) is a
// zero-allocation slice view and iteration is cache-friendly regardless of
// dimensionality — the access pattern the ε-kdB tree's leaf sweeps depend
// on.
package dataset

import (
	"fmt"
	"math/rand"

	"simjoin/internal/vec"
)

// Dataset is a mutable, append-only collection of d-dimensional points.
// The zero value is unusable; construct with New or FromPoints.
type Dataset struct {
	dims int
	data []float64 // row-major: point i occupies data[i*dims : (i+1)*dims]
	// f32 is the lazily built float32 mirror of data, used by the
	// float32 kernel mode (see KernelView). Any mutation invalidates it.
	f32 []float32
}

// New returns an empty dataset of the given dimensionality with capacity for
// capHint points (0 for no hint). It panics if dims < 1.
func New(dims, capHint int) *Dataset {
	if dims < 1 {
		panic(fmt.Sprintf("dataset: invalid dimensionality %d", dims))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &Dataset{dims: dims, data: make([]float64, 0, capHint*dims)}
}

// FromPoints builds a dataset by copying the given points. All points must
// share one dimensionality; it panics otherwise (mixing dimensionalities is
// always a caller bug).
func FromPoints(pts [][]float64) *Dataset {
	if len(pts) == 0 {
		panic("dataset: FromPoints of empty slice (dimensionality unknown)")
	}
	ds := New(len(pts[0]), len(pts))
	for _, p := range pts {
		ds.Append(p)
	}
	return ds
}

// FromFlat wraps an existing row-major buffer without copying. len(flat)
// must be a multiple of dims.
func FromFlat(dims int, flat []float64) *Dataset {
	if dims < 1 {
		panic(fmt.Sprintf("dataset: invalid dimensionality %d", dims))
	}
	if len(flat)%dims != 0 {
		panic(fmt.Sprintf("dataset: flat length %d not a multiple of dims %d", len(flat), dims))
	}
	return &Dataset{dims: dims, data: flat}
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.data) / d.dims }

// Dims returns the dimensionality.
func (d *Dataset) Dims() int { return d.dims }

// Point returns a view of point i. The slice aliases the dataset's storage:
// mutations are visible, and the view is invalidated by Append.
func (d *Dataset) Point(i int) []float64 {
	return d.data[i*d.dims : (i+1)*d.dims : (i+1)*d.dims]
}

// Append copies p into the dataset. It panics on dimensionality mismatch.
func (d *Dataset) Append(p []float64) {
	if len(p) != d.dims {
		panic(fmt.Sprintf("dataset: appending %d-dim point to %d-dim dataset", len(p), d.dims))
	}
	d.data = append(d.data, p...)
	d.f32 = nil
}

// AppendFlat bulk-copies points stored row-major in flat — one copy for
// any number of points, where per-point Append would revalidate and grow
// k times. len(flat) must be a multiple of dims; it panics otherwise.
func (d *Dataset) AppendFlat(flat []float64) {
	if len(flat)%d.dims != 0 {
		panic(fmt.Sprintf("dataset: appending %d floats to %d-dim dataset", len(flat), d.dims))
	}
	d.data = append(d.data, flat...)
	d.f32 = nil
}

// Flat returns the underlying row-major buffer. It aliases the dataset.
func (d *Dataset) Flat() []float64 { return d.data }

// FlatView returns the dataset's kernel view: the flat buffer plus its
// dimensionality, in the shape the vec kernels consume. It aliases the
// dataset and is invalidated (like Point views) by Append.
func (d *Dataset) FlatView() vec.Flat {
	return vec.Flat{Dims: d.dims, Data: d.data}
}

// Mirror32 returns the dataset's float32 coordinate mirror, building and
// caching it on first call. The mirror is invalidated by any mutation
// (Append, AppendFlat, Shuffle, Normalize) and rebuilt on the next call.
// The first call after a mutation is not safe to race with other reads;
// engines that fan work out to goroutines warm it before spawning.
func (d *Dataset) Mirror32() []float32 {
	if len(d.f32) != len(d.data) {
		d.f32 = vec.ToFloat32(d.data)
	}
	return d.f32
}

// KernelView resolves the flat view the distance kernels should run over:
// the float64 buffer alone, or with the float32 mirror attached when the
// caller opted into float32 mode.
func (d *Dataset) KernelView(float32Mode bool) vec.Flat {
	f := d.FlatView()
	if float32Mode {
		f.Data32 = d.Mirror32()
	}
	return f
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return d.CloneWithCap(0)
}

// CloneWithCap returns a deep copy with spare capacity for extra more
// points, so copy-on-write growth (clone + append batch) costs one
// allocation and one bulk copy instead of rebuilding point by point.
func (d *Dataset) CloneWithCap(extra int) *Dataset {
	if extra < 0 {
		extra = 0
	}
	c := &Dataset{dims: d.dims, data: make([]float64, len(d.data), len(d.data)+extra*d.dims)}
	copy(c.data, d.data)
	return c
}

// Bounds returns the bounding box of all points. It panics on an empty
// dataset.
func (d *Dataset) Bounds() vec.Box {
	return vec.BoundingBox(d.Len(), d.Point)
}

// Subset returns a new dataset holding copies of the points whose indexes
// are listed in idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := New(d.dims, len(idx))
	for _, i := range idx {
		s.Append(d.Point(i))
	}
	return s
}

// Head returns a new dataset holding copies of the first n points (all of
// them if n exceeds Len).
func (d *Dataset) Head(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	s := New(d.dims, n)
	s.data = append(s.data, d.data[:n*d.dims]...)
	return s
}

// Shuffle permutes the points in place using the given seed, so that sorted
// or generator-ordered inputs do not bias insertion-order-sensitive
// structures.
func (d *Dataset) Shuffle(seed int64) {
	d.f32 = nil
	rng := rand.New(rand.NewSource(seed))
	n := d.Len()
	tmp := make([]float64, d.dims)
	rng.Shuffle(n, func(i, j int) {
		pi, pj := d.Point(i), d.Point(j)
		copy(tmp, pi)
		copy(pi, pj)
		copy(pj, tmp)
	})
}

// Normalize rescales every dimension in place to [0, 1] and returns the
// original bounds, so callers can map distances back. Degenerate dimensions
// (zero extent) map to 0.5.
func (d *Dataset) Normalize() vec.Box {
	d.f32 = nil
	b := d.Bounds()
	n := d.Len()
	for i := 0; i < n; i++ {
		p := d.Point(i)
		for k := 0; k < d.dims; k++ {
			ext := b.Hi[k] - b.Lo[k]
			if ext == 0 {
				p[k] = 0.5
			} else {
				p[k] = (p[k] - b.Lo[k]) / ext
			}
		}
	}
	return b
}

// Equal reports whether two datasets have identical dimensionality, length
// and coordinates.
func (d *Dataset) Equal(o *Dataset) bool {
	if d.dims != o.dims || len(d.data) != len(o.data) {
		return false
	}
	for i, v := range d.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// MemoryBytes returns the approximate heap footprint of the point storage.
func (d *Dataset) MemoryBytes() int { return cap(d.data) * 8 }
