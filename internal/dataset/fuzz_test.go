package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic; accepted input must
// round-trip exactly through WriteCSV → ReadCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("1,2\n3,4\n"))
	f.Add([]byte("# comment\n\n1.5e-3,2\n"))
	f.Add([]byte("NaN,Inf\n"))
	f.Add([]byte(",\n"))
	f.Add([]byte("1,2\n3\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := ReadCSV(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed dataset failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of written CSV failed: %v", err)
		}
		// NaN breaks Equal's == comparison legitimately; compare bitwise
		// through the binary codec instead.
		var b1, b2 bytes.Buffer
		if err := ds.WriteBinary(&b1); err != nil {
			t.Fatal(err)
		}
		if err := back.WriteBinary(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("CSV round trip changed the data")
		}
	})
}

// FuzzReadBinary: arbitrary input must never panic and must either error
// or yield a dataset whose re-encoding parses again.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = FromPoints([][]float64{{1, 2}, {3, 4}}).WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("SJN1"))
	f.Add([]byte("XXXXXXXXXXXXXXXX"))
	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := ds.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadBinary(&out); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
