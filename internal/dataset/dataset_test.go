package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func randomDataset(rng *rand.Rand, n, d int) *Dataset {
	ds := New(d, n)
	p := make([]float64, d)
	for i := 0; i < n; i++ {
		for k := range p {
			p[k] = rng.NormFloat64() * 100
		}
		ds.Append(p)
	}
	return ds
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero dims":         func() { New(0, 0) },
		"from empty":        func() { FromPoints(nil) },
		"flat misaligned":   func() { FromFlat(3, make([]float64, 7)) },
		"flat zero dims":    func() { FromFlat(0, nil) },
		"append wrong dims": func() { New(2, 0).Append([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAppendAndPointViews(t *testing.T) {
	ds := New(3, 0)
	ds.Append([]float64{1, 2, 3})
	ds.Append([]float64{4, 5, 6})
	if ds.Len() != 2 || ds.Dims() != 3 {
		t.Fatalf("Len/Dims = %d/%d, want 2/3", ds.Len(), ds.Dims())
	}
	p := ds.Point(1)
	if p[0] != 4 || p[2] != 6 {
		t.Fatalf("Point(1) = %v", p)
	}
	// Views are writable.
	p[0] = 40
	if ds.Point(1)[0] != 40 {
		t.Fatal("Point view is not aliased")
	}
	// Full-slice expression must prevent append-through-view corruption.
	_ = append(ds.Point(0), 999)
	if ds.Point(1)[0] != 40 {
		t.Fatal("append through a point view corrupted the next point")
	}
}

func TestFromPointsAndFlat(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ds := FromPoints(pts)
	if ds.Len() != 3 {
		t.Fatalf("Len = %d", ds.Len())
	}
	pts[0][0] = 99 // FromPoints copies
	if ds.Point(0)[0] == 99 {
		t.Fatal("FromPoints aliases input")
	}
	flat := []float64{1, 2, 3, 4}
	fd := FromFlat(2, flat)
	if fd.Len() != 2 || fd.Point(1)[1] != 4 {
		t.Fatalf("FromFlat wrong: %v", fd.Flat())
	}
	flat[0] = 77 // FromFlat aliases by contract
	if fd.Point(0)[0] != 77 {
		t.Fatal("FromFlat did not alias input")
	}
}

func TestAppendFlat(t *testing.T) {
	ds := FromPoints([][]float64{{1, 2}})
	ds.AppendFlat([]float64{3, 4, 5, 6})
	if ds.Len() != 3 || ds.Point(2)[1] != 6 {
		t.Fatalf("after AppendFlat: len=%d flat=%v", ds.Len(), ds.Flat())
	}
	defer func() {
		if recover() == nil {
			t.Error("misaligned AppendFlat did not panic")
		}
	}()
	ds.AppendFlat(make([]float64, 3))
}

func TestCloneWithCapGrowsWithoutRealloc(t *testing.T) {
	ds := FromPoints([][]float64{{1, 2}, {3, 4}})
	c := ds.CloneWithCap(5)
	if !ds.Equal(c) {
		t.Fatal("CloneWithCap not equal to original")
	}
	c.Point(0)[0] = 42
	if ds.Point(0)[0] == 42 {
		t.Fatal("CloneWithCap aliases original")
	}
	// The headline property: appending the reserved points must not move
	// the backing array (no O(N) copy per batch).
	before := &c.Flat()[0]
	for i := 0; i < 5; i++ {
		c.Append([]float64{float64(i), float64(i)})
	}
	if &c.Flat()[0] != before {
		t.Fatal("appending within reserved capacity reallocated the data")
	}
	if c.Len() != 7 {
		t.Fatalf("Len = %d, want 7", c.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := FromPoints([][]float64{{1, 2}, {3, 4}})
	c := ds.Clone()
	if !ds.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Point(0)[0] = 42
	if ds.Point(0)[0] == 42 {
		t.Fatal("clone aliases original")
	}
}

func TestEqual(t *testing.T) {
	a := FromPoints([][]float64{{1, 2}})
	b := FromPoints([][]float64{{1, 2}})
	if !a.Equal(b) {
		t.Error("identical datasets not Equal")
	}
	if a.Equal(FromPoints([][]float64{{1, 3}})) {
		t.Error("different datasets Equal")
	}
	if a.Equal(FromPoints([][]float64{{1}, {2}})) {
		t.Error("different-dims datasets Equal")
	}
}

func TestBoundsSubsetHead(t *testing.T) {
	ds := FromPoints([][]float64{{0, 10}, {5, -3}, {2, 2}})
	b := ds.Bounds()
	if b.Lo[0] != 0 || b.Lo[1] != -3 || b.Hi[0] != 5 || b.Hi[1] != 10 {
		t.Fatalf("Bounds = %v", b)
	}
	s := ds.Subset([]int{2, 0})
	if s.Len() != 2 || s.Point(0)[0] != 2 || s.Point(1)[1] != 10 {
		t.Fatalf("Subset wrong: %v", s.Flat())
	}
	h := ds.Head(2)
	if h.Len() != 2 || h.Point(1)[0] != 5 {
		t.Fatalf("Head wrong: %v", h.Flat())
	}
	if ds.Head(100).Len() != 3 {
		t.Fatal("Head over-length did not clamp")
	}
}

func TestShuffleIsPermutationAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 200, 4)
	orig := ds.Clone()
	ds.Shuffle(123)
	if ds.Equal(orig) {
		t.Fatal("shuffle left data unchanged (astronomically unlikely)")
	}
	// Same multiset of points.
	key := func(d *Dataset) []string {
		keys := make([]string, d.Len())
		for i := 0; i < d.Len(); i++ {
			keys[i] = pointKey(d.Point(i))
		}
		sort.Strings(keys)
		return keys
	}
	ka, kb := key(ds), key(orig)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("shuffle changed the point multiset")
		}
	}
	// Determinism: same seed, same permutation.
	again := orig.Clone()
	again.Shuffle(123)
	if !again.Equal(ds) {
		t.Fatal("shuffle is not deterministic for a fixed seed")
	}
}

// pointKey encodes a point's exact bit pattern so multisets of points can be
// compared as sorted strings.
func pointKey(p []float64) string {
	b := make([]byte, 0, 17*len(p))
	for _, v := range p {
		b = append(b, ',')
		u := math.Float64bits(v)
		for i := 0; i < 16; i++ {
			b = append(b, "0123456789abcdef"[u&0xf])
			u >>= 4
		}
	}
	return string(b)
}

func TestNormalize(t *testing.T) {
	ds := FromPoints([][]float64{{0, 5, 7}, {10, 5, 14}, {5, 5, 0}})
	orig := ds.Bounds()
	ret := ds.Normalize()
	if orig.Lo[0] != ret.Lo[0] || orig.Hi[2] != ret.Hi[2] {
		t.Fatal("Normalize did not return original bounds")
	}
	b := ds.Bounds()
	for k := 0; k < 3; k++ {
		if k == 1 {
			continue // degenerate dimension
		}
		if b.Lo[k] != 0 || b.Hi[k] != 1 {
			t.Fatalf("dim %d normalized bounds [%g,%g], want [0,1]", k, b.Lo[k], b.Hi[k])
		}
	}
	// Degenerate dimension maps to 0.5.
	for i := 0; i < ds.Len(); i++ {
		if ds.Point(i)[1] != 0.5 {
			t.Fatalf("degenerate dim value %g, want 0.5", ds.Point(i)[1])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 1+r.Intn(50), 1+r.Intn(8))
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return ds.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCSVCommentsAndErrors(t *testing.T) {
	in := "# header comment\n1,2\n\n3,4\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dims() != 2 {
		t.Fatalf("parsed %dx%d", ds.Len(), ds.Dims())
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 1+r.Intn(50), 1+r.Intn(8))
		var buf bytes.Buffer
		if err := ds.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return ds.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
	// Special values survive binary (but are rejected conceptually by CSV
	// parse of "NaN"? strconv parses NaN fine — check binary only here).
	ds := FromPoints([][]float64{{math.Inf(1), math.Inf(-1)}})
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil || !ds.Equal(back) {
		t.Fatal("infinities did not round-trip in binary")
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("SJ")); err == nil {
		t.Error("truncated magic accepted")
	}
	var buf bytes.Buffer
	ds := FromPoints([][]float64{{1, 2}, {3, 4}})
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(10))
	ds := randomDataset(rng, 30, 5)
	for _, name := range []string{"pts.csv", "pts.bin"} {
		path := filepath.Join(dir, name)
		if err := ds.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ds.Equal(back) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestMemoryBytes(t *testing.T) {
	ds := New(4, 100)
	if got := ds.MemoryBytes(); got < 100*4*8 {
		t.Errorf("MemoryBytes = %d, want >= %d", got, 100*4*8)
	}
}

func TestFlatAliases(t *testing.T) {
	ds := FromPoints([][]float64{{1, 2}, {3, 4}})
	flat := ds.Flat()
	if len(flat) != 4 || flat[3] != 4 {
		t.Fatalf("Flat = %v", flat)
	}
	flat[0] = 9
	if ds.Point(0)[0] != 9 {
		t.Error("Flat does not alias storage")
	}
}
