package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// binaryMagic identifies the library's binary point-file format:
// "SJN1" | uint32 dims | uint64 count | count*dims little-endian float64.
const binaryMagic = "SJN1"

// WriteCSV writes the dataset as one comma-separated row per point, full
// float64 precision.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := d.Len()
	for i := 0; i < n; i++ {
		p := d.Point(i)
		for k, v := range p {
			if k > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset from comma-separated rows. Blank lines and lines
// starting with '#' are skipped. All rows must agree on field count.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ds *Dataset
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if ds == nil {
			ds = New(len(fields), 0)
		} else if len(fields) != ds.Dims() {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", lineNo, len(fields), ds.Dims())
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			ds.data = append(ds.data, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("dataset: empty CSV input")
	}
	return ds, nil
}

// WriteBinary writes the dataset in the library's binary format, which is
// roughly 3× smaller and 10× faster to parse than CSV.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(d.dims))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(d.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range d.data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	dims := int(binary.LittleEndian.Uint32(hdr[0:4]))
	count := binary.LittleEndian.Uint64(hdr[4:12])
	if dims < 1 || dims > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible dimensionality %d", dims)
	}
	const maxPoints = 1 << 40
	if count > maxPoints {
		return nil, fmt.Errorf("dataset: implausible point count %d", count)
	}
	// Cap the pre-allocation hint: the header is untrusted input, and a
	// lying count (or huge dims) must fail with a truncation error, not an
	// out-of-memory allocation. The bound is on total floats, since both
	// factors come from the header; growth past it is amortized by append.
	hint := int(count)
	if maxHint := (1 << 22) / dims; hint > maxHint {
		hint = maxHint
	}
	ds := New(dims, hint)
	raw := make([]byte, 8*dims)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("dataset: reading point %d: %w", i, err)
		}
		for k := 0; k < dims; k++ {
			ds.data = append(ds.data, math.Float64frombits(binary.LittleEndian.Uint64(raw[k*8:])))
		}
	}
	return ds, nil
}

// SaveFile writes the dataset to path, choosing the codec by extension:
// ".csv" for CSV, anything else for binary.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = d.WriteCSV(f)
	} else {
		err = d.WriteBinary(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a dataset from path, choosing the codec by extension as in
// SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return ReadCSV(f)
	}
	return ReadBinary(f)
}
