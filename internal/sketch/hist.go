package sketch

import "math"

// The distance histograms are log₂-spaced: histPerOctave sub-buckets per
// doubling across exponents [histMinExp, histMaxExp), plus a bucket for
// (near-)zero distances and one for overflow. Each bucket spans a factor
// of 2^(1/8) ≈ 1.09 in distance, so even before the in-bucket
// interpolation a query threshold is resolved to within ~9% of its
// position — far inside the factor-level accuracy the estimators promise.
const (
	histPerOctave = 8
	histMinExp    = -60
	histMaxExp    = 60
	histBuckets   = (histMaxExp - histMinExp) * histPerOctave
)

// histogram accumulates sampled pair distances for one metric.
type histogram struct {
	// zero counts distances below 2^histMinExp (including exact zeros):
	// they qualify at any eps the library accepts.
	zero int64
	// over counts distances at or beyond 2^histMaxExp.
	over    int64
	buckets [histBuckets]int64
}

// add records one distance.
func (h *histogram) add(v float64) {
	switch {
	case !(v >= 0): // NaN guard; distances are never negative
		return
	case v < math.Ldexp(1, histMinExp):
		h.zero++
	case v >= math.Ldexp(1, histMaxExp):
		h.over++
	default:
		i := int((math.Log2(v) - histMinExp) * histPerOctave)
		if i < 0 {
			i = 0
		} else if i >= histBuckets {
			i = histBuckets - 1
		}
		h.buckets[i]++
	}
}

// fracAtMost returns the estimated fraction of the total recorded
// distances that are ≤ eps, interpolating linearly inside the bucket
// containing eps. total is the caller's record count (shared across
// metrics by the sketch).
func (h *histogram) fracAtMost(eps float64, total int64) float64 {
	if total <= 0 || !(eps >= 0) {
		return 0
	}
	count := float64(h.zero)
	if eps >= math.Ldexp(1, histMinExp) {
		pos := (math.Log2(eps) - histMinExp) * histPerOctave
		if pos >= histBuckets {
			count = float64(total) // everything, overflow included
		} else {
			i := int(pos)
			for b := 0; b < i; b++ {
				count += float64(h.buckets[b])
			}
			count += (pos - float64(i)) * float64(h.buckets[i])
		}
	}
	if f := count / float64(total); f < 1 {
		return f
	}
	return 1
}
