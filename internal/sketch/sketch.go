// Package sketch maintains one-pass, incrementally updated join-size
// sketches: per-dataset summaries cheap enough to keep resident that
// answer self-join and two-set size/selectivity estimates at any
// (metric, ε) without touching the raw points again.
//
// The design follows the streaming join-size estimation literature
// (see PAPERS.md): each arriving point is compared against a small,
// fixed number of members of a bounded uniform reservoir sample, and the
// observed distances are recorded in per-metric log-scale histograms.
// An update therefore costs O(PairsPerPoint · dims) — independent of
// the dataset size — and a query costs one histogram scan. Because the
// (arriving point, reservoir member) pairs are a uniform sample of the
// unordered point pairs seen so far (exactly uniform for exchangeable
// input orders), the fraction of recorded distances ≤ ε estimates the
// self-join selectivity directly; no finite-population pair correction
// is needed because the estimate is a fraction, not a scaled count.
// Expect factor-level accuracy, like the sampling estimators in
// internal/estimate — but at a per-query cost a million times smaller.
package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

const (
	// DefaultReservoir is the bounded uniform sample size. 512 points keeps
	// a d=32 sketch near 128 KiB while leaving two-set reservoir
	// cross-joins (≤ 512² early-exited distance tests) well under a
	// millisecond.
	DefaultReservoir = 512
	// DefaultPairsPerPoint is how many reservoir members each arriving
	// point is compared against. 8 keeps the per-append cost at a handful
	// of distance evaluations while the recorded-pair count grows 8× faster
	// than the dataset.
	DefaultPairsPerPoint = 8
	// DefaultSeed seeds the sketch's deterministic sampling when the
	// config leaves it zero.
	DefaultSeed = 0x5ce7c4
)

// Config tunes a sketch; the zero value selects every default.
type Config struct {
	// Reservoir bounds the uniform point sample (0 = DefaultReservoir).
	Reservoir int
	// PairsPerPoint is the number of sampled distances recorded per
	// arriving point (0 = DefaultPairsPerPoint).
	PairsPerPoint int
	// Seed makes the sampling deterministic (0 = DefaultSeed).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Reservoir <= 0 {
		c.Reservoir = DefaultReservoir
	}
	if c.PairsPerPoint <= 0 {
		c.PairsPerPoint = DefaultPairsPerPoint
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Sketch is one dataset's resident join-size summary. All methods are
// safe for concurrent use: the serving layer appends under its own
// locks while queries estimate concurrently.
type Sketch struct {
	mu  sync.RWMutex
	cfg Config
	rng *rand.Rand

	dims int
	n    int64 // points observed so far

	// res is the bounded uniform reservoir (algorithm R) over everything
	// observed; while n ≤ cfg.Reservoir it holds the dataset exactly and
	// estimates are exact counts.
	res *dataset.Dataset

	// hist records sampled pair distances per metric; pairs is the number
	// of sampled pairs (identical across metrics — every sampled pair is
	// recorded under all three).
	hist  [3]histogram
	pairs int64
}

// New returns an empty sketch for dims-dimensional points. It panics if
// dims < 1, mirroring dataset.New.
func New(dims int, cfg Config) *Sketch {
	if dims < 1 {
		panic(fmt.Sprintf("sketch: dims must be >= 1, got %d", dims))
	}
	cfg = cfg.withDefaults()
	return &Sketch{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		dims: dims,
		res:  dataset.New(dims, cfg.Reservoir),
	}
}

// FromDataset builds a sketch by observing every point of ds in order —
// the store-recovery and bulk-upload path.
func FromDataset(ds *dataset.Dataset, cfg Config) *Sketch {
	s := New(ds.Dims(), cfg)
	for i := 0; i < ds.Len(); i++ {
		s.Observe(ds.Point(i))
	}
	return s
}

// Observe folds one appended point into the sketch: record its distance
// to a few random reservoir members under every metric, then give it a
// uniform chance of joining the reservoir. It panics on a
// dimensionality mismatch, mirroring dataset.Append.
func (s *Sketch) Observe(p []float64) {
	if len(p) != s.dims {
		panic(fmt.Sprintf("sketch: point has %d dims, sketch has %d", len(p), s.dims))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.res.Len()
	c := s.cfg.PairsPerPoint
	if c > k {
		c = k
	}
	for i := 0; i < c; i++ {
		q := s.res.Point(s.rng.Intn(k))
		s.hist[vec.L2].add(math.Sqrt(vec.DistSqL2(p, q)))
		s.hist[vec.L1].add(vec.DistL1(p, q))
		s.hist[vec.Linf].add(vec.DistLinf(p, q))
		s.pairs++
	}
	// Reservoir update (algorithm R): the i-th arrival (0-based i = n)
	// replaces a uniform slot with probability cap/(i+1).
	if k < s.cfg.Reservoir {
		s.res.Append(p)
	} else if j := s.rng.Int63n(s.n + 1); j < int64(s.cfg.Reservoir) {
		copy(s.res.Point(int(j)), p)
	}
	s.n++
}

// Len returns the number of points observed.
func (s *Sketch) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.n)
}

// Dims returns the sketch dimensionality.
func (s *Sketch) Dims() int { return s.dims }

// Stats is a sketch's introspection snapshot (served as dataset
// metadata).
type Stats struct {
	Points       int64 `json:"points"`
	Reservoir    int   `json:"reservoir"`
	SampledPairs int64 `json:"sampled_pairs"`
}

// Snapshot reports the sketch's current state.
func (s *Sketch) Snapshot() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Points: s.n, Reservoir: s.res.Len(), SampledPairs: s.pairs}
}

// SelfSelectivity estimates the fraction of unordered point pairs within
// eps under m, in [0, 1]. While every observed point is still in the
// reservoir the answer is an exact count; afterwards it is the
// (interpolated) fraction of sampled pair distances ≤ eps.
func (s *Sketch) SelfSelectivity(m vec.Metric, eps float64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.selfSelectivityLocked(m, eps)
}

func (s *Sketch) selfSelectivityLocked(m vec.Metric, eps float64) float64 {
	switch {
	case s.n < 2 || !(eps >= 0): // empty, or eps < 0 / NaN: nothing joins
		return 0
	case math.IsInf(eps, 1):
		return 1
	case int64(s.res.Len()) == s.n:
		// Everything observed is still resident: count exactly.
		return float64(bruteCount(s.res, s.res, m, eps, true)) /
			(float64(s.n) * float64(s.n-1) / 2)
	case s.pairs == 0:
		return 0
	}
	return s.hist[m].fracAtMost(eps, s.pairs)
}

// SelfJoinSize estimates the number of result pairs of a self-join over
// everything observed, at the given metric and ε.
func (s *Sketch) SelfJoinSize(m vec.Metric, eps float64) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.n * (s.n - 1) / 2
	return int64(s.selfSelectivityLocked(m, eps)*float64(total) + 0.5)
}

// reservoirSnapshot copies out the state a cross-sketch estimate needs,
// so two-sketch queries never hold two sketch locks at once (no lock
// ordering between independent sketches).
func (s *Sketch) reservoirSnapshot() (n int64, res *dataset.Dataset) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n, s.res.Clone()
}

// JoinSelectivity estimates the fraction of the |a|×|b| cross pairs
// within eps under m, in [0, 1]: the exact fraction over the two
// reservoirs. Cross pairs drawn from two independent uniform samples
// are themselves uniform over the cross product, so the sample fraction
// estimates the population fraction without any finite-population
// correction. A dimensionality mismatch reports 0.
func (s *Sketch) JoinSelectivity(o *Sketch, m vec.Metric, eps float64) float64 {
	if s.dims != o.dims {
		return 0
	}
	var na, nb int64
	var ra, rb *dataset.Dataset
	if s == o {
		na, ra = s.reservoirSnapshot()
		nb, rb = na, ra
	} else {
		na, ra = s.reservoirSnapshot()
		nb, rb = o.reservoirSnapshot()
	}
	switch {
	case na == 0 || nb == 0 || !(eps >= 0):
		return 0
	case math.IsInf(eps, 1):
		return 1
	case ra.Len() == 0 || rb.Len() == 0:
		return 0
	}
	count := bruteCount(ra, rb, m, eps, false)
	return float64(count) / (float64(ra.Len()) * float64(rb.Len()))
}

// JoinSize estimates the result cardinality of a two-set join of
// everything the two sketches observed, at the given metric and ε.
func (s *Sketch) JoinSize(o *Sketch, m vec.Metric, eps float64) int64 {
	na, nb := int64(s.Len()), int64(o.Len())
	return int64(s.JoinSelectivity(o, m, eps)*float64(na)*float64(nb) + 0.5)
}

// bruteCount counts qualifying pairs between two point sets: unordered
// i < j pairs when self is set (a and b must then be the same set),
// all (i, j) cross pairs otherwise.
func bruteCount(a, b *dataset.Dataset, m vec.Metric, eps float64, self bool) int64 {
	t := vec.Threshold(m, eps)
	var count int64
	for i := 0; i < a.Len(); i++ {
		p := a.Point(i)
		j0 := 0
		if self {
			j0 = i + 1
		}
		for j := j0; j < b.Len(); j++ {
			if vec.Within(m, p, b.Point(j), t) {
				count++
			}
		}
	}
	return count
}
