package sketch

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

// randomData builds n clustered points in [0,1]^dims: cluster centers
// plus Gaussian spread, the shape the evaluation's workloads use.
func randomData(n, dims int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 10
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dims)
		for d := range c {
			c[d] = rng.Float64()
		}
		centers[i] = c
	}
	ds := dataset.New(dims, n)
	p := make([]float64, dims)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*0.05
		}
		ds.Append(p)
	}
	return ds
}

func exactSelf(ds *dataset.Dataset, m vec.Metric, eps float64) int64 {
	return bruteCount(ds, ds, m, eps, true)
}

// TestExactWhileSmall: while every observed point fits in the reservoir
// the sketch must answer with exact counts, for every metric.
func TestExactWhileSmall(t *testing.T) {
	ds := randomData(300, 6, 1)
	s := FromDataset(ds, Config{})
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		for _, eps := range []float64{0.01, 0.1, 0.5} {
			want := exactSelf(ds, m, eps)
			if got := s.SelfJoinSize(m, eps); got != want {
				t.Errorf("metric %v eps %g: got %d, want exact %d", m, eps, got, want)
			}
		}
	}
}

// TestSelfAccuracyAcrossEpsAndDims: the streamed estimate must stay
// within a modest factor of the exact count across dimensionality and ε —
// the satellite's sketch-vs-exact accuracy sweep.
func TestSelfAccuracyAcrossEpsAndDims(t *testing.T) {
	for _, dims := range []int{2, 4, 8, 16} {
		ds := randomData(4000, dims, int64(dims))
		s := FromDataset(ds, Config{})
		// ε sweep scaled with dimensionality so the exact count stays
		// populous enough to measure against.
		for _, eps := range []float64{0.1, 0.2, 0.4} {
			want := exactSelf(ds, vec.L2, eps)
			if want < 500 {
				continue // too sparse for a factor-level comparison
			}
			got := s.SelfJoinSize(vec.L2, eps)
			ratio := float64(got) / float64(want)
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("d=%d eps=%g: sketch %d vs exact %d (ratio %.2f)", dims, eps, got, want, ratio)
			}
		}
	}
}

// TestSelfAccuracyOtherMetrics spot-checks L1 and Linf at one workload.
func TestSelfAccuracyOtherMetrics(t *testing.T) {
	ds := randomData(4000, 8, 7)
	s := FromDataset(ds, Config{})
	for _, tc := range []struct {
		m   vec.Metric
		eps float64
	}{{vec.L1, 0.5}, {vec.Linf, 0.1}} {
		want := exactSelf(ds, tc.m, tc.eps)
		if want < 500 {
			t.Fatalf("metric %v eps %g: workload too sparse (%d pairs)", tc.m, tc.eps, want)
		}
		got := s.SelfJoinSize(tc.m, tc.eps)
		ratio := float64(got) / float64(want)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("metric %v: sketch %d vs exact %d (ratio %.2f)", tc.m, got, want, ratio)
		}
	}
}

// TestJoinSizeAccuracy: the two-set estimate (reservoir cross-join)
// must land within a modest factor of the exact cross count.
func TestJoinSizeAccuracy(t *testing.T) {
	// Same seed → same cluster centers, so the two sets overlap densely;
	// the point draws after the centers still differ via the counts.
	a := randomData(3000, 6, 11)
	b := randomData(2500, 6, 11)
	sa := FromDataset(a, Config{})
	sb := FromDataset(b, Config{Seed: 99})
	eps := 0.2
	want := bruteCount(a, b, vec.L2, eps, false)
	if want < 500 {
		t.Fatalf("workload too sparse (%d pairs)", want)
	}
	got := sa.JoinSize(sb, vec.L2, eps)
	ratio := float64(got) / float64(want)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("sketch %d vs exact %d (ratio %.2f)", got, want, ratio)
	}
}

// TestDegenerateEps: non-finite and non-positive thresholds must answer
// without touching any histogram math.
func TestDegenerateEps(t *testing.T) {
	ds := randomData(1000, 4, 3)
	s := FromDataset(ds, Config{})
	n := int64(ds.Len())
	if got := s.SelfJoinSize(vec.L2, -1); got != 0 {
		t.Errorf("eps=-1: got %d, want 0", got)
	}
	if got := s.SelfJoinSize(vec.L2, math.NaN()); got != 0 {
		t.Errorf("eps=NaN: got %d, want 0", got)
	}
	if got := s.SelfJoinSize(vec.L2, math.Inf(1)); got != n*(n-1)/2 {
		t.Errorf("eps=+Inf: got %d, want %d", got, n*(n-1)/2)
	}
	if got := s.JoinSize(s, vec.L2, math.Inf(1)); got != n*n {
		t.Errorf("join eps=+Inf: got %d, want %d", got, n*n)
	}
	if got := s.JoinSize(s, vec.L2, math.NaN()); got != 0 {
		t.Errorf("join eps=NaN: got %d, want 0", got)
	}
}

// TestDeterminism: two sketches fed the same stream must agree exactly.
func TestDeterminism(t *testing.T) {
	ds := randomData(2000, 5, 21)
	a := FromDataset(ds, Config{})
	b := FromDataset(ds, Config{})
	for _, eps := range []float64{0.05, 0.2, 0.8} {
		if ga, gb := a.SelfJoinSize(vec.L2, eps), b.SelfJoinSize(vec.L2, eps); ga != gb {
			t.Errorf("eps %g: %d vs %d", eps, ga, gb)
		}
	}
}

// TestDimsMismatch: cross-sketch estimates across dimensionalities
// report zero rather than panicking.
func TestDimsMismatch(t *testing.T) {
	a := New(3, Config{})
	b := New(4, Config{})
	if got := a.JoinSize(b, vec.L2, 1); got != 0 {
		t.Errorf("got %d, want 0", got)
	}
}

// TestEmptyAndTiny covers the n < 2 edges.
func TestEmptyAndTiny(t *testing.T) {
	s := New(2, Config{})
	if got := s.SelfJoinSize(vec.L2, 1); got != 0 {
		t.Errorf("empty: got %d", got)
	}
	s.Observe([]float64{0, 0})
	if got := s.SelfJoinSize(vec.L2, 1); got != 0 {
		t.Errorf("single point: got %d", got)
	}
	s.Observe([]float64{0.1, 0.1})
	if got := s.SelfJoinSize(vec.L2, 1); got != 1 {
		t.Errorf("two close points: got %d, want 1", got)
	}
}

// TestConcurrentObserveAndQuery drives appends and estimates from many
// goroutines; run under -race this is the package's concurrency gate.
func TestConcurrentObserveAndQuery(t *testing.T) {
	s := New(4, Config{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := make([]float64, 4)
			for i := 0; i < 2000; i++ {
				for d := range p {
					p[d] = rng.Float64()
				}
				s.Observe(p)
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = s.SelfJoinSize(vec.L2, 0.3)
				_ = s.Snapshot()
				_ = s.JoinSize(s, vec.L1, 0.3)
			}
		}()
	}
	wg.Wait()
	if got := s.Len(); got != 8000 {
		t.Errorf("observed %d points, want 8000", got)
	}
}

// TestSnapshotStats sanity-checks the introspection surface.
func TestSnapshotStats(t *testing.T) {
	ds := randomData(1500, 3, 5)
	s := FromDataset(ds, Config{})
	st := s.Snapshot()
	if st.Points != 1500 {
		t.Errorf("points %d", st.Points)
	}
	if st.Reservoir != DefaultReservoir {
		t.Errorf("reservoir %d, want %d", st.Reservoir, DefaultReservoir)
	}
	if st.SampledPairs == 0 {
		t.Error("no sampled pairs recorded")
	}
}
