// Package hilbert computes d-dimensional Hilbert-curve indexes (Skilling's
// transpose algorithm). The Hilbert curve visits every cell of the
// quantized grid in a sequence where consecutive cells are always
// grid-adjacent — strictly better locality than the Z-order curve, whose
// sequence jumps across the space at power-of-two boundaries. The
// evaluation's curve ablation (E2) swaps this key into the block join in
// place of the Morton key to measure how much that locality is worth.
package hilbert

import (
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
	"simjoin/internal/zorder"
)

// BitsPerDim mirrors the Z-order budget: how many bits of each coordinate
// a 64-bit key can hold for d dimensions.
func BitsPerDim(d int) int { return zorder.BitsPerDim(d) }

// Key maps point p to its Hilbert index: coordinates are normalized by
// box, quantized to BitsPerDim(d) bits, run through Skilling's
// axes-to-transpose transform, and bit-interleaved into one integer.
// Dimensions beyond 64 do not participate (as with the Morton key).
func Key(p []float64, box vec.Box) uint64 {
	d := len(p)
	bits := BitsPerDim(d)
	kd := d
	if kd > 64 {
		kd = 64
	}
	maxQ := uint64(1)<<bits - 1
	var x [64]uint64
	for k := 0; k < kd; k++ {
		ext := box.Hi[k] - box.Lo[k]
		var v float64
		if ext > 0 {
			v = (p[k] - box.Lo[k]) / ext
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		q := uint64(v * float64(maxQ))
		if q > maxQ {
			q = maxQ
		}
		x[k] = q
	}
	axesToTranspose(x[:kd], bits)
	// Interleave the transposed coordinates, most significant bit first,
	// dimension 0 outermost — the transposed form is defined so that this
	// interleaving IS the Hilbert index.
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for k := 0; k < kd; k++ {
			key = key<<1 | (x[k]>>uint(b))&1
		}
	}
	return key
}

// axesToTranspose converts coordinates in place to the "transposed"
// Hilbert form (J. Skilling, "Programming the Hilbert curve", AIP 2004).
func axesToTranspose(x []uint64, bits int) {
	n := len(x)
	if n < 2 || bits < 1 {
		return // 1-D Hilbert is the identity
	}
	m := uint64(1) << uint(bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// SelfJoin runs the curve-block similarity self-join over the Hilbert
// order (the Z-order block machinery with this package's key).
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	zorder.SelfJoinKeyed(ds, opt, zorder.DefaultBlockSize, Key, sink)
}

// Join runs the curve-block two-set join over the Hilbert order.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	zorder.JoinKeyed(a, b, opt, zorder.DefaultBlockSize, Key, sink)
}
