package hilbert

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/jointest"
	"simjoin/internal/vec"
	"simjoin/internal/zorder"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 40, 1101)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 40, 1102)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestKeyMonotone1D(t *testing.T) {
	box := vec.NewBox([]float64{0}, []float64{1})
	prev := uint64(0)
	for i := 0; i <= 200; i++ {
		k := Key([]float64{float64(i) / 200}, box)
		if k < prev {
			t.Fatalf("1-D Hilbert key not monotone at %d", i)
		}
		prev = k
	}
}

// TestAdjacencyProperty is the defining Hilbert-curve invariant: walking
// the curve order over a full 2-D grid, consecutive cells differ by
// exactly one step in exactly one coordinate. The Z-order curve fails
// this massively (it jumps); Hilbert must have zero jumps.
func TestAdjacencyProperty(t *testing.T) {
	const side = 16 // uses a 2-D grid of 16×16 cells
	box := vec.NewBox([]float64{0, 0}, []float64{side - 1, side - 1})
	type cell struct {
		x, y int
		key  uint64
	}
	cells := make([]cell, 0, side*side)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			// Place the point at the cell's exact lattice coordinate; with
			// extent side−1 and 16 bits/dim the quantizer maps lattice
			// points to distinct codes whose low bits equal x·(2¹⁶−1)/(side−1),
			// so equal spacing keeps ordering faithful.
			k := Key([]float64{float64(x), float64(y)}, box)
			cells = append(cells, cell{x: x, y: y, key: k})
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].key < cells[b].key })
	jumps := 0
	for i := 1; i < len(cells); i++ {
		dx := cells[i].x - cells[i-1].x
		dy := cells[i].y - cells[i-1].y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			jumps++
		}
	}
	if jumps != 0 {
		t.Errorf("Hilbert order has %d non-adjacent steps, want 0", jumps)
	}
	// Contrast: the Z-order walk over the same grid does jump.
	zcells := make([]cell, len(cells))
	copy(zcells, cells)
	for i := range zcells {
		zcells[i].key = zorder.Key([]float64{float64(zcells[i].x), float64(zcells[i].y)}, box)
	}
	sort.Slice(zcells, func(a, b int) bool { return zcells[a].key < zcells[b].key })
	zjumps := 0
	for i := 1; i < len(zcells); i++ {
		dx := zcells[i].x - zcells[i-1].x
		dy := zcells[i].y - zcells[i-1].y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			zjumps++
		}
	}
	if zjumps == 0 {
		t.Error("Z-order walk shows no jumps; the contrast test is broken")
	}
}

// TestKeyBijectiveOnGrid: distinct cells get distinct keys (the transform
// is a permutation of the grid).
func TestKeyBijectiveOnGrid(t *testing.T) {
	const side = 8
	box := vec.NewBox([]float64{0, 0, 0}, []float64{side - 1, side - 1, side - 1})
	seen := map[uint64]bool{}
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				k := Key([]float64{float64(x), float64(y), float64(z)}, box)
				if seen[k] {
					t.Fatalf("duplicate key for cell (%d,%d,%d)", x, y, z)
				}
				seen[k] = true
			}
		}
	}
}

// TestLocality: near point pairs must have far smaller key differences
// than random pairs. (Hilbert's advantage over Z-order is in worst-case
// adjacency — TestAdjacencyProperty — not in this mean metric, where the
// two curves land within a few percent of each other; the E2 ablation
// bench reports the measured join-cost difference.)
func TestLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.NewBox([]float64{0, 0, 0}, []float64{1, 1, 1})
	ratio := func(key func([]float64, vec.Box) uint64) float64 {
		var near, far float64
		const trials = 2000
		for i := 0; i < trials; i++ {
			p := []float64{rng.Float64() * 0.95, rng.Float64() * 0.95, rng.Float64() * 0.95}
			q := []float64{p[0] + 0.02, p[1] + 0.02, p[2] + 0.02}
			r := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			kp, kq, kr := key(p, box), key(q, box), key(r, box)
			near += absDiff(kp, kq)
			far += absDiff(kp, kr)
		}
		return near / far
	}
	rng = rand.New(rand.NewSource(1))
	h := ratio(Key)
	rng = rand.New(rand.NewSource(1))
	z := ratio(zorder.Key)
	if h > 0.2 {
		t.Errorf("Hilbert near/far key ratio %g: no locality", h)
	}
	if h > z*1.25 {
		t.Errorf("Hilbert mean locality %g dramatically worse than Z-order's %g", h, z)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestDegenerateInputs(t *testing.T) {
	// 1-D and zero-extent boxes must not panic and must stay ordered.
	box := vec.NewBox([]float64{5, 0}, []float64{5, 1})
	k1 := Key([]float64{5, 0.1}, box)
	k2 := Key([]float64{5, 0.9}, box)
	if k1 >= k2 {
		t.Errorf("degenerate dim broke ordering: %d >= %d", k1, k2)
	}
}
