// Package synth generates the synthetic workloads used throughout the
// evaluation: uniform, Gaussian-cluster, correlated, and Zipf-skewed point
// sets, plus random-walk time sequences for the time-series-matching
// application. Every generator is deterministic for a given seed, so every
// experiment in the harness is exactly reproducible.
//
// Real traces from the paper's evaluation (feature vectors extracted from a
// production time-sequence warehouse) are not available; the random-walk
// sequences stand in for them because DFT feature extraction relies only on
// the 1/f energy concentration of brownian-like series, which random walks
// exhibit. See DESIGN.md §2 for the substitution record.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"simjoin/internal/dataset"
)

// Distribution selects a synthetic data distribution.
type Distribution int

const (
	// Uniform draws each coordinate independently from U[0, 1).
	Uniform Distribution = iota
	// GaussianClusters draws points from k Gaussian blobs with uniformly
	// placed centers.
	GaussianClusters
	// Correlated draws points near the main diagonal: one latent uniform
	// value per point plus per-dimension Gaussian jitter. This models the
	// strong inter-dimension correlation of real feature vectors.
	Correlated
	// Zipf skews every dimension toward 0 with a power-law-shaped density,
	// producing the dense-corner hot spot that stresses grid-based methods.
	Zipf
)

// String returns the generator's conventional name.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case GaussianClusters:
		return "clustered"
	case Correlated:
		return "correlated"
	case Zipf:
		return "zipf"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// ParseDistribution converts a name printed by String back to a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "clustered", "gaussian":
		return GaussianClusters, nil
	case "correlated":
		return Correlated, nil
	case "zipf", "skewed":
		return Zipf, nil
	}
	return Uniform, fmt.Errorf("synth: unknown distribution %q", s)
}

// AllDistributions lists every distribution, in the order the evaluation
// reports them.
func AllDistributions() []Distribution {
	return []Distribution{Uniform, GaussianClusters, Correlated, Zipf}
}

// Config parameterizes a generator run. Zero values get sensible defaults
// from Generate.
type Config struct {
	N    int          // number of points (required, > 0)
	Dims int          // dimensionality (required, > 0)
	Seed int64        // PRNG seed; same seed → same dataset
	Dist Distribution // which generator

	Clusters   int     // GaussianClusters: blob count (default 10)
	ClusterStd float64 // GaussianClusters: blob standard deviation (default 0.05)
	CorrJitter float64 // Correlated: per-dimension jitter std (default 0.05)
	ZipfTheta  float64 // Zipf: skew exponent (default 1.0; larger = more skew)
}

// Generate produces a dataset according to cfg. All generators emit
// coordinates in [0, 1], which the join algorithms rely on only through
// Dataset.Bounds (nothing assumes the unit cube). It panics if N or Dims is
// not positive, because a silent empty dataset would invalidate an entire
// experiment run.
func Generate(cfg Config) *dataset.Dataset {
	if cfg.N <= 0 || cfg.Dims <= 0 {
		panic(fmt.Sprintf("synth: invalid config N=%d Dims=%d", cfg.N, cfg.Dims))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := dataset.New(cfg.Dims, cfg.N)
	p := make([]float64, cfg.Dims)
	switch cfg.Dist {
	case Uniform:
		for i := 0; i < cfg.N; i++ {
			for k := range p {
				p[k] = rng.Float64()
			}
			ds.Append(p)
		}

	case GaussianClusters:
		k := cfg.Clusters
		if k <= 0 {
			k = 10
		}
		std := cfg.ClusterStd
		if std <= 0 {
			std = 0.05
		}
		centers := make([][]float64, k)
		for c := range centers {
			centers[c] = make([]float64, cfg.Dims)
			for d := range centers[c] {
				centers[c][d] = rng.Float64()
			}
		}
		for i := 0; i < cfg.N; i++ {
			c := centers[rng.Intn(k)]
			for d := range p {
				p[d] = clamp01(c[d] + rng.NormFloat64()*std)
			}
			ds.Append(p)
		}

	case Correlated:
		jit := cfg.CorrJitter
		if jit <= 0 {
			jit = 0.05
		}
		for i := 0; i < cfg.N; i++ {
			base := rng.Float64()
			for d := range p {
				p[d] = clamp01(base + rng.NormFloat64()*jit)
			}
			ds.Append(p)
		}

	case Zipf:
		theta := cfg.ZipfTheta
		if theta <= 0 {
			theta = 1.0
		}
		// Inverse-CDF of the density f(x) ∝ (1+x)^{-theta-ish}: use
		// x = u^{1+theta}, which concentrates mass near 0 and needs no
		// discrete Zipf machinery while keeping a heavy skew knob.
		exp := 1 + theta
		for i := 0; i < cfg.N; i++ {
			for d := range p {
				p[d] = math.Pow(rng.Float64(), exp)
			}
			ds.Append(p)
		}

	default:
		panic(fmt.Sprintf("synth: unknown distribution %d", int(cfg.Dist)))
	}
	return ds
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RandomWalks generates n time sequences of the given length: each sequence
// starts at a uniform level in [0, 100) and takes N(0, step²) increments.
// These stand in for the stock/utilization traces of the original
// evaluation (see the package comment).
func RandomWalks(n, length int, step float64, seed int64) [][]float64 {
	if n <= 0 || length <= 0 {
		panic(fmt.Sprintf("synth: invalid series config n=%d length=%d", n, length))
	}
	if step <= 0 {
		step = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := rng.Float64() * 100
		for t := range s {
			v += rng.NormFloat64() * step
			s[t] = v
		}
		out[i] = s
	}
	return out
}

// SeriesDataset packs equal-length sequences into a dataset (each sequence
// becomes one length-dimensional point), so time sequences can be joined
// directly in the raw space.
func SeriesDataset(series [][]float64) *dataset.Dataset {
	if len(series) == 0 {
		panic("synth: SeriesDataset of no sequences")
	}
	ds := dataset.New(len(series[0]), len(series))
	for i, s := range series {
		if len(s) != len(series[0]) {
			panic(fmt.Sprintf("synth: sequence %d has length %d, want %d", i, len(s), len(series[0])))
		}
		ds.Append(s)
	}
	return ds
}

// SimilarWalkPairs generates n base random walks plus, for each of the first
// dup of them, a near-duplicate obtained by adding small N(0, noise²)
// perturbations. It returns the 2·dup + (n−dup) sequences with duplicates
// appended after the bases, so callers know pair (i, n+i) for i < dup is
// planted. Used by the time-series experiment to measure recall of the
// DFT-feature filter.
func SimilarWalkPairs(n, dup, length int, step, noise float64, seed int64) [][]float64 {
	if dup > n {
		panic(fmt.Sprintf("synth: dup %d exceeds n %d", dup, n))
	}
	base := RandomWalks(n, length, step, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	out := make([][]float64, 0, n+dup)
	out = append(out, base...)
	for i := 0; i < dup; i++ {
		d := make([]float64, length)
		for t, v := range base[i] {
			d[t] = v + rng.NormFloat64()*noise
		}
		out = append(out, d)
	}
	return out
}
