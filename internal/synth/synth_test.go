package synth

import (
	"math"
	"testing"
)

func TestDistributionStringParseRoundTrip(t *testing.T) {
	for _, d := range AllDistributions() {
		back, err := ParseDistribution(d.String())
		if err != nil || back != d {
			t.Errorf("round trip of %v failed: %v, %v", d, back, err)
		}
	}
	if _, err := ParseDistribution("nope"); err == nil {
		t.Error("ParseDistribution(nope) succeeded")
	}
	if s := Distribution(77).String(); s != "Distribution(77)" {
		t.Errorf("unknown distribution String = %q", s)
	}
}

func TestGenerateShapeAndRange(t *testing.T) {
	for _, dist := range AllDistributions() {
		ds := Generate(Config{N: 500, Dims: 6, Seed: 1, Dist: dist})
		if ds.Len() != 500 || ds.Dims() != 6 {
			t.Fatalf("%v: shape %dx%d", dist, ds.Len(), ds.Dims())
		}
		b := ds.Bounds()
		for k := 0; k < 6; k++ {
			if b.Lo[k] < 0 || b.Hi[k] > 1 {
				t.Fatalf("%v: dim %d out of unit range [%g, %g]", dist, k, b.Lo[k], b.Hi[k])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, dist := range AllDistributions() {
		a := Generate(Config{N: 200, Dims: 4, Seed: 42, Dist: dist})
		b := Generate(Config{N: 200, Dims: 4, Seed: 42, Dist: dist})
		if !a.Equal(b) {
			t.Errorf("%v: same seed produced different data", dist)
		}
		c := Generate(Config{N: 200, Dims: 4, Seed: 43, Dist: dist})
		if a.Equal(c) {
			t.Errorf("%v: different seeds produced identical data", dist)
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero N":    {N: 0, Dims: 3},
		"zero dims": {N: 10, Dims: 0},
		"bad dist":  {N: 10, Dims: 3, Dist: Distribution(99)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			Generate(cfg)
		}()
	}
}

// TestUniformMoments sanity-checks the uniform generator's first two
// moments: mean ≈ 1/2, variance ≈ 1/12 per dimension.
func TestUniformMoments(t *testing.T) {
	ds := Generate(Config{N: 20000, Dims: 3, Seed: 5, Dist: Uniform})
	for k := 0; k < 3; k++ {
		var sum, sq float64
		for i := 0; i < ds.Len(); i++ {
			v := ds.Point(i)[k]
			sum += v
			sq += v * v
		}
		n := float64(ds.Len())
		mean := sum / n
		variance := sq/n - mean*mean
		if math.Abs(mean-0.5) > 0.02 {
			t.Errorf("dim %d mean = %g, want ≈0.5", k, mean)
		}
		if math.Abs(variance-1.0/12) > 0.01 {
			t.Errorf("dim %d variance = %g, want ≈%g", k, variance, 1.0/12)
		}
	}
}

// TestClusteredIsClustered: the average nearest-cluster-center spread must
// be far below uniform's, i.e. most points sit near one of the blobs. We
// test indirectly: the mean pairwise distance of a clustered set is smaller
// than that of a uniform set of the same size.
func TestClusteredIsClustered(t *testing.T) {
	u := Generate(Config{N: 400, Dims: 8, Seed: 6, Dist: Uniform})
	c := Generate(Config{N: 400, Dims: 8, Seed: 6, Dist: GaussianClusters, Clusters: 5, ClusterStd: 0.02})
	if meanNNDist(c) >= meanNNDist(u) {
		t.Errorf("clustered mean-NN %g not below uniform %g", meanNNDist(c), meanNNDist(u))
	}
}

func meanNNDist(ds interface {
	Len() int
	Point(int) []float64
}) float64 {
	var total float64
	n := ds.Len()
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		pi := ds.Point(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pj := ds.Point(j)
			var s float64
			for k := range pi {
				d := pi[k] - pj[k]
				s += d * d
			}
			if s < best {
				best = s
			}
		}
		total += math.Sqrt(best)
	}
	return total / float64(n)
}

// TestCorrelatedHugsDiagonal: coordinates of a correlated point should be
// near each other (small per-point spread), unlike uniform.
func TestCorrelatedHugsDiagonal(t *testing.T) {
	ds := Generate(Config{N: 1000, Dims: 6, Seed: 7, Dist: Correlated, CorrJitter: 0.02})
	var spread float64
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		lo, hi := p[0], p[0]
		for _, v := range p[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spread += hi - lo
	}
	spread /= float64(ds.Len())
	if spread > 0.25 {
		t.Errorf("mean per-point spread %g, want small (diagonal hugging)", spread)
	}
}

// TestZipfSkewsTowardZero: far more mass below 0.25 than uniform's 25%
// (with θ=1 the transform is u², so exactly half the mass lies below 0.25),
// and more skew with larger θ.
func TestZipfSkewsTowardZero(t *testing.T) {
	massBelow := func(theta, cut float64) float64 {
		ds := Generate(Config{N: 5000, Dims: 1, Seed: 8, Dist: Zipf, ZipfTheta: theta})
		below := 0
		for i := 0; i < ds.Len(); i++ {
			if ds.Point(i)[0] < cut {
				below++
			}
		}
		return float64(below) / float64(ds.Len())
	}
	if frac := massBelow(1, 0.25); frac < 0.45 {
		t.Errorf("θ=1: %.0f%% of mass below 0.25, want ≈50%% (uniform would be 25%%)", frac*100)
	}
	if m1, m3 := massBelow(1, 0.1), massBelow(3, 0.1); m3 <= m1 {
		t.Errorf("θ=3 mass below 0.1 (%g) not above θ=1 (%g)", m3, m1)
	}
}

func TestRandomWalks(t *testing.T) {
	ws := RandomWalks(10, 64, 1, 9)
	if len(ws) != 10 || len(ws[0]) != 64 {
		t.Fatalf("shape %dx%d", len(ws), len(ws[0]))
	}
	again := RandomWalks(10, 64, 1, 9)
	for i := range ws {
		for t2 := range ws[i] {
			if ws[i][t2] != again[i][t2] {
				t.Fatal("RandomWalks not deterministic")
			}
		}
	}
	// Steps should look like N(0,1): mean |step| around 0.8, not 0 or 10.
	var mean float64
	cnt := 0
	for _, w := range ws {
		for t2 := 1; t2 < len(w); t2++ {
			mean += math.Abs(w[t2] - w[t2-1])
			cnt++
		}
	}
	mean /= float64(cnt)
	if mean < 0.4 || mean > 1.6 {
		t.Errorf("mean |step| = %g, want ≈0.8", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("RandomWalks(0, ...) did not panic")
		}
	}()
	RandomWalks(0, 10, 1, 1)
}

func TestSimilarWalkPairs(t *testing.T) {
	seqs := SimilarWalkPairs(20, 5, 32, 1, 0.01, 11)
	if len(seqs) != 25 {
		t.Fatalf("len = %d, want 25", len(seqs))
	}
	// Planted pair (i, 20+i) must be much closer than a random pair.
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	for i := 0; i < 5; i++ {
		planted := dist(seqs[i], seqs[20+i])
		random := dist(seqs[i], seqs[(i+7)%20])
		if planted >= random {
			t.Errorf("planted pair %d distance %g not below random %g", i, planted, random)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("dup > n did not panic")
		}
	}()
	SimilarWalkPairs(3, 4, 8, 1, 0.1, 1)
}

func TestSeriesDataset(t *testing.T) {
	series := [][]float64{{1, 2, 3}, {4, 5, 6}}
	ds := SeriesDataset(series)
	if ds.Len() != 2 || ds.Dims() != 3 || ds.Point(1)[2] != 6 {
		t.Fatalf("shape/content wrong: %v", ds.Flat())
	}
	for name, fn := range map[string]func(){
		"empty":  func() { SeriesDataset(nil) },
		"ragged": func() { SeriesDataset([][]float64{{1}, {1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
