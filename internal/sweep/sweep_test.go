package sweep

import (
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 101)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 102)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

// TestStripFilterPrunes: on well-spread 1-D-sortable data the sweep must
// inspect far fewer candidates than the quadratic total.
func TestStripFilterPrunes(t *testing.T) {
	ds := dataset.New(1, 1000)
	for i := 0; i < 1000; i++ {
		ds.Append([]float64{float64(i)})
	}
	var c stats.Counters
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 2, Counters: &c}, &sink)
	s := c.Snapshot()
	if s.Candidates > 3000 { // ~2 per point, quadratic would be ~500k
		t.Errorf("candidates = %d, strip filter not pruning", s.Candidates)
	}
	if sink.N() != 999+998 { // gaps of 1 and 2
		t.Errorf("results = %d, want %d", sink.N(), 999+998)
	}
}

// TestWindowStartMonotone: the two-set merge must not miss pairs when a has
// duplicate dim-0 values (window start must not overshoot).
func TestWindowStartMonotone(t *testing.T) {
	a := dataset.FromPoints([][]float64{{5}, {5}, {5}})
	b := dataset.FromPoints([][]float64{{4.5}, {5.5}, {4.9}})
	col := &pairs.Collector{}
	Join(a, b, join.Options{Metric: vec.L2, Eps: 0.6}, col)
	if len(col.Pairs) != 9 {
		t.Errorf("%d pairs, want 9 (every a within 0.6 of every b)", len(col.Pairs))
	}
}

func TestInvalidOptionsPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}})
	defer func() {
		if recover() == nil {
			t.Error("invalid options did not panic")
		}
	}()
	SelfJoin(ds, join.Options{Eps: -1}, &pairs.Counter{})
}
