// Package sweep implements the sort-and-plane-sweep similarity join: points
// are sorted on dimension 0 and only pairs whose dim-0 gap is at most ε are
// tested. For every Minkowski metric the per-dimension gap lower-bounds the
// distance, so the strip filter never loses a result. This is the classic
// one-dimensional filtering baseline: cheap to build (one sort), effective
// in low dimensions, and increasingly useless as dimensionality grows — one
// projected dimension prunes less and less of the volume.
package sweep

import (
	"sort"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// sortedIndex returns the point indexes of ds ordered by coordinate dim.
func sortedIndex(ds *dataset.Dataset, dim int) []int32 {
	idx := make([]int32, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		return ds.Point(int(idx[a]))[dim] < ds.Point(int(idx[b]))[dim]
	})
	return idx
}

// SelfJoin reports every unordered pair within ε once, in either endpoint
// order.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	build := time.Now()
	idx := sortedIndex(ds, 0)
	opt.Timing().AddBuild(time.Since(build))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	var cand, res int64
	for a := 0; a < len(idx); a++ {
		i := int(idx[a])
		pi := ds.Point(i)
		x := pi[0]
		for b := a + 1; b < len(idx); b++ {
			j := int(idx[b])
			pj := ds.Point(j)
			if pj[0]-x > opt.Eps {
				break // sorted: no later point can be in the strip
			}
			cand++
			if vec.Within(opt.Metric, pi, pj, t) {
				res++
				sink.Emit(i, j)
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}

// Join reports every (a-index, b-index) pair within ε by merging the two
// sorted orders: for each a-point, only the b-window whose dim-0 values lie
// in [x−ε, x+ε] is tested.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	build := time.Now()
	ia := sortedIndex(a, 0)
	ib := sortedIndex(b, 0)
	opt.Timing().AddBuild(time.Since(build))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	var cand, res int64
	lo := 0
	for _, aiRaw := range ia {
		ai := int(aiRaw)
		pa := a.Point(ai)
		x := pa[0]
		// Advance the window start past b-points below x−ε. The window start
		// only moves forward because a is processed in ascending order.
		for lo < len(ib) && b.Point(int(ib[lo]))[0] < x-opt.Eps {
			lo++
		}
		for w := lo; w < len(ib); w++ {
			bi := int(ib[w])
			pb := b.Point(bi)
			if pb[0]-x > opt.Eps {
				break
			}
			cand++
			if vec.Within(opt.Metric, pa, pb, t) {
				res++
				sink.Emit(ai, bi)
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}
