// Package sweep implements the sort-and-plane-sweep similarity join: points
// are sorted on dimension 0 and only pairs whose dim-0 gap is at most ε are
// tested. For every Minkowski metric the per-dimension gap lower-bounds the
// distance, so the strip filter never loses a result. This is the classic
// one-dimensional filtering baseline: cheap to build (one sort), effective
// in low dimensions, and increasingly useless as dimensionality grows — one
// projected dimension prunes less and less of the volume.
package sweep

import (
	"sort"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// sortedIndex returns the point indexes of ds ordered by coordinate dim.
func sortedIndex(ds *dataset.Dataset, dim int) []int32 {
	idx := make([]int32, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	data, dims := ds.Flat(), ds.Dims()
	sort.Slice(idx, func(a, b int) bool {
		return data[int(idx[a])*dims+dim] < data[int(idx[b])*dims+dim]
	})
	return idx
}

// SelfJoin reports every unordered pair within ε once, in either endpoint
// order.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	build := time.Now()
	idx := sortedIndex(ds, 0)
	opt.Timing().AddBuild(time.Since(build))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	f := ds.KernelView(opt.Float32)
	cand, res := vec.SelfSweepFlat(opt.Metric, f, idx, 0, opt.Eps, t, func(i, j int32) {
		sink.Emit(int(i), int(j))
	})
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}

// Join reports every (a-index, b-index) pair within ε by merging the two
// sorted orders: for each a-point, only the b-window whose dim-0 values lie
// in [x−ε, x+ε] is tested.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	build := time.Now()
	ia := sortedIndex(a, 0)
	ib := sortedIndex(b, 0)
	opt.Timing().AddBuild(time.Since(build))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	fa := a.KernelView(opt.Float32)
	fb := b.KernelView(opt.Float32)
	cand, res := vec.CrossSweepFlat(opt.Metric, fa, fb, ia, ib, 0, opt.Eps, t, func(ai, bi int32) {
		sink.Emit(int(ai), int(bi))
	})
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}
