package dft

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkFFTvsNaive(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		x := benchSeries(n)
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		b.Run("fft/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FFT(c)
			}
		})
		if n <= 256 {
			b.Run("naive/n="+itoa(n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Naive(x)
				}
			})
		}
	}
}

func BenchmarkFeatures(b *testing.B) {
	x := benchSeries(128)
	for i := 0; i < b.N; i++ {
		Features(x, 8)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
