// Package dft implements the discrete Fourier transform feature extraction
// used by the time-sequence-matching application that motivates
// high-dimensional similarity joins: each length-n sequence maps to its
// first k DFT coefficients (2k real dimensions), and similar sequences are
// found by an ε-join in feature space followed by a refinement pass in the
// time domain.
//
// The transform is normalized by 1/√n, which makes it unitary: Euclidean
// distance between two sequences equals the distance between their full
// coefficient vectors, so truncating to the first k coefficients can only
// shrink distances. The feature-space join therefore admits false positives
// but never false dismissals — the contract the filter-and-refine
// experiment (F8) measures.
package dft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"simjoin/internal/dataset"
)

// Naive computes the normalized DFT of x directly in O(n²). It is the
// correctness oracle for FFT and the fallback for non-power-of-two lengths.
func Naive(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	norm := 1 / math.Sqrt(float64(n))
	for f := 0; f < n; f++ {
		var sum complex128
		for t, v := range x {
			angle := -2 * math.Pi * float64(f) * float64(t) / float64(n)
			sum += complex(v, 0) * cmplx.Exp(complex(0, angle))
		}
		out[f] = sum * complex(norm, 0)
	}
	return out
}

// FFT computes the normalized DFT of x in O(n log n) with the iterative
// radix-2 Cooley-Tukey algorithm. It panics unless len(x) is a power of two
// (callers choose Transform for arbitrary lengths).
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dft: FFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i, v := range x {
		out[bits.Reverse64(uint64(i))>>shift] = v
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	norm := complex(1/math.Sqrt(float64(n)), 0)
	for i := range out {
		out[i] *= norm
	}
	return out
}

// IFFT inverts FFT (normalized symmetrically, so IFFT(FFT(x)) == x). It
// panics unless the length is a power of two.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y := FFT(conj)
	for i := range y {
		y[i] = cmplx.Conj(y[i])
	}
	return y
}

// Transform computes the normalized DFT of a real sequence of any length,
// using FFT when the length is a power of two and Naive otherwise.
func Transform(x []float64) []complex128 {
	n := len(x)
	if n > 0 && n&(n-1) == 0 {
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		return FFT(c)
	}
	return Naive(x)
}

// FeatureDims returns the dimensionality of the feature vector for k
// coefficients: 2k (real and imaginary parts interleaved).
func FeatureDims(k int) int { return 2 * k }

// Features maps a sequence to its first k normalized DFT coefficients as a
// 2k-dimensional real vector [Re X₀, Im X₀, Re X₁, Im X₁, …]. The DC
// coefficient X₀ is included so that the feature distance lower-bounds the
// raw time-domain distance (drop it only if sequences are mean-normalized
// first). It panics if k exceeds the sequence length — asking for more
// coefficients than exist is always a caller bug.
func Features(series []float64, k int) []float64 {
	if k < 1 || k > len(series) {
		panic(fmt.Sprintf("dft: k=%d out of range for series of length %d", k, len(series)))
	}
	coef := Transform(series)
	out := make([]float64, 2*k)
	for f := 0; f < k; f++ {
		out[2*f] = real(coef[f])
		out[2*f+1] = imag(coef[f])
	}
	return out
}

// FeatureDataset maps every sequence to its k-coefficient feature vector,
// returning a dataset ready for an ε-join. All sequences must share one
// length.
func FeatureDataset(series [][]float64, k int) *dataset.Dataset {
	if len(series) == 0 {
		panic("dft: FeatureDataset of no sequences")
	}
	n := len(series[0])
	ds := dataset.New(FeatureDims(k), len(series))
	for i, s := range series {
		if len(s) != n {
			panic(fmt.Sprintf("dft: sequence %d has length %d, want %d", i, len(s), n))
		}
		ds.Append(Features(s, k))
	}
	return ds
}

// SeqDist returns the Euclidean distance between two equal-length
// sequences, the refinement-step metric of the filter-and-refine pipeline.
func SeqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
