package dft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// SlidingFeatures maps every length-window subsequence of series (stride
// 1) to its first k normalized DFT coefficients, using the sliding-DFT
// recurrence: when the window advances one step, each coefficient updates
// in O(1) —
//
//	X'_f = (X_f + (x_in − x_out)/√w) · e^{+2πif/w}
//
// so the whole extraction costs O(n·k) instead of O(n·w log w). This is
// the subsequence-matching path of the time-series application: window
// features feed an ε-join or range query exactly like whole-sequence
// features, with the same no-false-dismissal guarantee per window.
//
// The result has len(series) − window + 1 rows of 2k values each
// (FeatureDims(k)). It panics if window or k is out of range.
func SlidingFeatures(series []float64, window, k int) [][]float64 {
	n := len(series)
	if window < 1 || window > n {
		panic(fmt.Sprintf("dft: window %d out of range for series of length %d", window, n))
	}
	if k < 1 || k > window {
		panic(fmt.Sprintf("dft: k=%d out of range for window %d", k, window))
	}
	count := n - window + 1
	out := make([][]float64, count)

	// First window: direct transform.
	coef := Transform(series[:window])[:k]
	cur := make([]complex128, k)
	copy(cur, coef)
	out[0] = coefToFeatures(cur)

	// Twiddles e^{+2πif/w} for the slide update.
	tw := make([]complex128, k)
	for f := 0; f < k; f++ {
		tw[f] = cmplx.Exp(complex(0, 2*math.Pi*float64(f)/float64(window)))
	}
	norm := 1 / math.Sqrt(float64(window))
	// Periodic exact refresh bounds floating-point drift on long series.
	const refreshEvery = 4096

	for s := 1; s < count; s++ {
		delta := complex((series[s+window-1]-series[s-1])*norm, 0)
		for f := 0; f < k; f++ {
			cur[f] = (cur[f] + delta) * tw[f]
		}
		if s%refreshEvery == 0 {
			copy(cur, Transform(series[s : s+window])[:k])
		}
		out[s] = coefToFeatures(cur)
	}
	return out
}

// coefToFeatures lays out complex coefficients as the standard interleaved
// real feature vector.
func coefToFeatures(coef []complex128) []float64 {
	out := make([]float64, 2*len(coef))
	for f, c := range coef {
		out[2*f] = real(c)
		out[2*f+1] = imag(c)
	}
	return out
}

// SubsequenceMatches returns the start offsets of every window of series
// whose distance to the query sequence is ≤ eps (Euclidean over the raw
// window). It filters with sliding DFT features (k coefficients) and
// refines in the time domain — false positives are discarded, false
// dismissals cannot occur.
func SubsequenceMatches(series, query []float64, k int, eps float64) []int {
	w := len(query)
	if w < 1 || w > len(series) {
		panic(fmt.Sprintf("dft: query length %d out of range for series of length %d", w, len(series)))
	}
	if k < 1 || k > w {
		panic(fmt.Sprintf("dft: k=%d out of range for query length %d", k, w))
	}
	qf := Features(query, k)
	var out []int
	for s, wf := range SlidingFeatures(series, w, k) {
		if SeqDist(qf, wf) > eps {
			continue // feature distance lower-bounds window distance
		}
		if SeqDist(series[s:s+w], query) <= eps {
			out = append(out, s)
		}
	}
	return out
}
