package dft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func complexAlmostEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randSeries(rng, n)
		naive := Naive(x)
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		fast := FFT(c)
		if !complexAlmostEqual(naive, fast, 1e-9*float64(n)) {
			t.Errorf("n=%d: FFT differs from naive DFT", n)
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT length %d did not panic", n)
				}
			}()
			FFT(make([]complex128, n))
		}()
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(8))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := IFFT(FFT(x))
		return complexAlmostEqual(x, y, 1e-9*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestParseval: the normalized transform is unitary — energy is preserved.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{7, 16, 33, 128} { // both FFT and naive paths
		x := randSeries(rng, n)
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += v * v
		}
		var freqEnergy float64
		for _, c := range Transform(x) {
			freqEnergy += real(c)*real(c) + imag(c)*imag(c)
		}
		if math.Abs(timeEnergy-freqEnergy) > 1e-6*(1+timeEnergy) {
			t.Errorf("n=%d: Parseval violated: time %g vs freq %g", n, timeEnergy, freqEnergy)
		}
	}
}

// TestLowerBounding is the GEMINI guarantee: for any two sequences, the
// Euclidean distance between their k-coefficient feature vectors never
// exceeds the raw sequence distance, for every k. This is what makes the
// feature-space ε-join free of false dismissals.
func TestLowerBounding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(60)
		a, b := randSeries(r, n), randSeries(r, n)
		full := SeqDist(a, b)
		for k := 1; k <= n; k += 1 + n/4 {
			fd := SeqDist(Features(a, k), Features(b, k))
			if fd > full+1e-9 {
				return false
			}
		}
		// And with all coefficients the distance is exactly preserved.
		fd := SeqDist(Features(a, n), Features(b, n))
		return math.Abs(fd-full) < 1e-7*(1+full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestFeatureDistanceMonotoneInK: adding coefficients can only grow the
// feature distance.
func TestFeatureDistanceMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randSeries(rng, 64), randSeries(rng, 64)
	prev := 0.0
	for k := 1; k <= 64; k++ {
		d := SeqDist(Features(a, k), Features(b, k))
		if d < prev-1e-12 {
			t.Fatalf("k=%d: feature distance %g dropped below %g", k, d, prev)
		}
		prev = d
	}
}

func TestDFTKnownValues(t *testing.T) {
	// Constant series: all energy in the DC coefficient.
	x := []float64{3, 3, 3, 3}
	c := Transform(x)
	if math.Abs(real(c[0])-6) > 1e-12 { // 4*3/sqrt(4) = 6
		t.Errorf("DC coefficient = %v, want 6", c[0])
	}
	for f := 1; f < 4; f++ {
		if cmplx.Abs(c[f]) > 1e-12 {
			t.Errorf("coefficient %d = %v, want 0", f, c[f])
		}
	}
	// Pure cosine at frequency 1: energy splits between bins 1 and n-1.
	n := 8
	y := make([]float64, n)
	for t2 := range y {
		y[t2] = math.Cos(2 * math.Pi * float64(t2) / float64(n))
	}
	cy := Transform(y)
	if cmplx.Abs(cy[1]) < 1 || cmplx.Abs(cy[n-1]) < 1 {
		t.Errorf("cosine energy not in bins 1 and %d: %v", n-1, cy)
	}
	if cmplx.Abs(cy[0]) > 1e-9 || cmplx.Abs(cy[2]) > 1e-9 {
		t.Errorf("cosine leaked into wrong bins: %v", cy)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randSeries(rng, 32), randSeries(rng, 32)
	sum := make([]float64, 32)
	for i := range sum {
		sum[i] = 2*a[i] - 3*b[i]
	}
	ca, cb, cs := Transform(a), Transform(b), Transform(sum)
	for f := range cs {
		want := complex(2, 0)*ca[f] - complex(3, 0)*cb[f]
		if cmplx.Abs(cs[f]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", f)
		}
	}
}

func TestFeaturesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"k too large":  func() { Features([]float64{1, 2}, 3) },
		"k zero":       func() { Features([]float64{1, 2}, 0) },
		"no sequences": func() { FeatureDataset(nil, 1) },
		"ragged":       func() { FeatureDataset([][]float64{{1, 2}, {1}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFeatureDataset(t *testing.T) {
	series := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	ds := FeatureDataset(series, 2)
	if ds.Len() != 2 || ds.Dims() != FeatureDims(2) {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dims())
	}
	want := Features(series[1], 2)
	got := ds.Point(1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestSeqDist(t *testing.T) {
	if d := SeqDist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("SeqDist = %g, want 5", d)
	}
}
