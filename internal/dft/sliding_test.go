package dft

import (
	"math"
	"math/rand"
	"testing"
)

// TestSlidingMatchesDirect: every sliding window's incremental features
// must match a direct per-window transform to tight tolerance.
func TestSlidingMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, w, k int }{
		{40, 8, 3}, {200, 32, 8}, {500, 33, 5}, // non-power-of-two window too
		{64, 64, 4}, // single window
	} {
		series := randSeries(rng, tc.n)
		got := SlidingFeatures(series, tc.w, tc.k)
		if len(got) != tc.n-tc.w+1 {
			t.Fatalf("n=%d w=%d: %d windows, want %d", tc.n, tc.w, len(got), tc.n-tc.w+1)
		}
		for s, feats := range got {
			want := Features(series[s:s+tc.w], tc.k)
			for i := range want {
				if math.Abs(feats[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d w=%d window %d feature %d: %g vs %g",
						tc.n, tc.w, s, i, feats[i], want[i])
				}
			}
		}
	}
}

// TestSlidingDriftBounded: the periodic refresh keeps error tiny across a
// long series (tens of thousands of incremental updates).
func TestSlidingDriftBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := randSeries(rng, 20000)
	const w, k = 64, 4
	got := SlidingFeatures(series, w, k)
	// Spot-check far-from-refresh windows.
	for _, s := range []int{3000, 9999, 19000, len(got) - 1} {
		want := Features(series[s:s+w], k)
		for i := range want {
			if math.Abs(got[s][i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("window %d feature %d drifted: %g vs %g", s, i, got[s][i], want[i])
			}
		}
	}
}

func TestSlidingPanics(t *testing.T) {
	series := randSeries(rand.New(rand.NewSource(3)), 16)
	for name, fn := range map[string]func(){
		"window too big": func() { SlidingFeatures(series, 17, 2) },
		"window zero":    func() { SlidingFeatures(series, 0, 1) },
		"k too big":      func() { SlidingFeatures(series, 8, 9) },
		"query too long": func() { SubsequenceMatches(series, make([]float64, 17), 2, 1) },
		"k over query":   func() { SubsequenceMatches(series, make([]float64, 4), 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSubsequenceMatchesOracle: filter-and-refine must equal the direct
// scan for every offset.
func TestSubsequenceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(400)
		w := 8 + rng.Intn(32)
		series := make([]float64, n)
		v := 0.0
		for i := range series {
			v += rng.NormFloat64()
			series[i] = v
		}
		// Query: a window of the series itself plus noise, so matches exist.
		start := rng.Intn(n - w)
		query := make([]float64, w)
		for i := range query {
			query[i] = series[start+i] + rng.NormFloat64()*0.05
		}
		eps := 1.0 + rng.Float64()*2
		k := 1 + rng.Intn(w/2+1)

		got := SubsequenceMatches(series, query, k, eps)
		var want []int
		for s := 0; s+w <= n; s++ {
			if SeqDist(series[s:s+w], query) <= eps {
				want = append(want, s)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: match offsets differ", trial)
			}
		}
		if len(want) == 0 {
			t.Fatalf("trial %d degenerate: no matches planted", trial)
		}
	}
}

func BenchmarkSlidingFeatures(b *testing.B) {
	series := randSeries(rand.New(rand.NewSource(5)), 10000)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SlidingFeatures(series, 128, 8)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s+128 <= len(series); s += 1 {
				Features(series[s:s+128], 8)
			}
		}
	})
}
