// Package rtree implements an R-tree with Z-order bulk loading, dynamic
// insertion with Guttman quadratic splits, window and ε-range queries, and
// a synchronized-traversal similarity join (Brinkhoff-style). It stands in
// for the disk-era spatial-access-method baseline of the evaluation: the
// original comparison used R+ trees, whose selling point is overlap-free
// node regions; a bulk-loaded packed R-tree has near-zero overlap at build
// time and identical candidate-pruning structure, which is the behaviour
// the experiments depend on (see DESIGN.md for the substitution record).
//
// The join experiments highlight the method's high-dimensional weakness:
// node boxes inflate with dimensionality until MinDist pruning stops
// rejecting anything, so the tree degenerates toward a blocked nested loop.
package rtree

import (
	"fmt"

	"simjoin/internal/dataset"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

const (
	// DefaultMaxEntries is the node capacity used by the evaluation.
	DefaultMaxEntries = 32
)

// Tree is an R-tree over one dataset. Build one with BulkLoad (packed,
// overlap-minimal) or New+Insert (dynamic).
type Tree struct {
	ds         *dataset.Dataset
	root       *node
	maxEntries int
	minEntries int
	height     int // leaf level = 1
	nodes      int
}

// entry is one slot of a node: a child subtree for internal nodes, a point
// index for leaves.
type entry struct {
	box   vec.Box
	child *node // nil in leaf entries
	idx   int32 // point index, leaf entries only
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty dynamic R-tree over ds with the given node capacity
// (≤ 0 selects DefaultMaxEntries; minimum fill is capacity/2). Points are
// added with Insert.
func New(ds *dataset.Dataset, maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4 // quadratic split needs room for two seeds per side
	}
	t := &Tree{
		ds:         ds,
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
		root:       &node{leaf: true},
		height:     1,
		nodes:      1,
	}
	return t
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return t.count(t.root) }

func (t *Tree) count(n *node) int {
	if n.leaf {
		return len(n.entries)
	}
	total := 0
	for _, e := range n.entries {
		total += t.count(e.child)
	}
	return total
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.nodes }

// Bounds returns the root bounding box; the second result is false for an
// empty tree.
func (t *Tree) Bounds() (vec.Box, bool) {
	if len(t.root.entries) == 0 {
		return vec.Box{}, false
	}
	return nodeBox(t.root), true
}

func nodeBox(n *node) vec.Box {
	b := n.entries[0].box.Clone()
	for _, e := range n.entries[1:] {
		b.ExtendBox(e.box)
	}
	return b
}

// RangeQuery visits every point index with dist(q, p) ≤ eps.
func (t *Tree) RangeQuery(q []float64, metric vec.Metric, eps float64, counters *stats.Counters, visit func(i int)) {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("rtree: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	th := vec.Threshold(metric, eps)
	var visits, comps int64
	var rec func(n *node)
	rec = func(n *node) {
		visits++
		for _, e := range n.entries {
			if n.leaf {
				comps++
				if vec.Within(metric, q, t.ds.Point(int(e.idx)), th) {
					visit(int(e.idx))
				}
				continue
			}
			if e.box.MinDistPoint(metric, q) <= eps {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
}

// WindowQuery visits every point index inside the (closed) box w.
func (t *Tree) WindowQuery(w vec.Box, visit func(i int)) {
	var rec func(n *node)
	rec = func(n *node) {
		for _, e := range n.entries {
			if !e.box.Intersects(w) {
				continue
			}
			if n.leaf {
				if w.Contains(t.ds.Point(int(e.idx))) {
					visit(int(e.idx))
				}
				continue
			}
			rec(e.child)
		}
	}
	rec(t.root)
}

// checkInvariants validates the R-tree structure for tests: uniform leaf
// depth, box containment, fill factors, and exact point coverage.
func (t *Tree) checkInvariants() error {
	n := t.Len()
	seen := make([]bool, t.ds.Len())
	var leafDepth int
	var rec func(nd *node, depth int, isRoot bool) error
	rec = func(nd *node, depth int, isRoot bool) error {
		if nd.leaf {
			if leafDepth == 0 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
		}
		if !isRoot && (len(nd.entries) < t.minEntries || len(nd.entries) > t.maxEntries) {
			return fmt.Errorf("rtree: node with %d entries outside [%d, %d]", len(nd.entries), t.minEntries, t.maxEntries)
		}
		if isRoot && len(nd.entries) > t.maxEntries {
			return fmt.Errorf("rtree: root overflow (%d entries)", len(nd.entries))
		}
		for _, e := range nd.entries {
			if nd.leaf {
				i := int(e.idx)
				if seen[i] {
					return fmt.Errorf("rtree: point %d appears twice", i)
				}
				seen[i] = true
				if !e.box.Contains(t.ds.Point(i)) {
					return fmt.Errorf("rtree: leaf entry box misses its point %d", i)
				}
				continue
			}
			cb := nodeBox(e.child)
			if !e.box.ContainsBox(cb) {
				return fmt.Errorf("rtree: entry box %v does not contain child box %v", e.box, cb)
			}
			if err := rec(e.child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root, 1, true); err != nil {
		return err
	}
	if leafDepth != 0 && leafDepth != t.height {
		return fmt.Errorf("rtree: recorded height %d but leaves at depth %d", t.height, leafDepth)
	}
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	if count != n {
		return fmt.Errorf("rtree: %d distinct points indexed, tree reports %d", count, n)
	}
	return nil
}
