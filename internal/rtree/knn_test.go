package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func bruteKNN(ds *dataset.Dataset, q []float64, k int, m vec.Metric) []join.Neighbor {
	all := make([]join.Neighbor, ds.Len())
	for i := range all {
		all[i] = join.Neighbor{Index: i, Dist: vec.Dist(m, q, ds.Point(i))}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(600)
		d := 1 + rng.Intn(6)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		trees := []*Tree{BulkLoad(ds, 8)}
		dyn := New(ds, 8)
		for i := 0; i < n; i++ {
			dyn.Insert(i)
		}
		trees = append(trees, dyn)
		for _, tr := range trees {
			for qi := 0; qi < 8; qi++ {
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64()
				}
				k := 1 + rng.Intn(10)
				for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
					got := tr.KNN(q, k, m, nil)
					want := bruteKNN(ds, q, k, m)
					if len(got) != len(want) {
						t.Fatalf("len %d, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i].Dist != want[i].Dist {
							t.Fatalf("%v: neighbor %d dist %g, want %g", m, i, got[i].Dist, want[i].Dist)
						}
					}
				}
			}
		}
	}
}

func TestKNNEmptyAndPanics(t *testing.T) {
	empty := BulkLoad(dataset.New(2, 0), 0)
	if got := empty.KNN([]float64{0, 0}, 3, vec.L2, nil); len(got) != 0 {
		t.Errorf("empty tree returned %d neighbors", len(got))
	}
	tr := BulkLoad(synth.Generate(synth.Config{N: 5, Dims: 2, Seed: 1, Dist: synth.Uniform}), 0)
	for name, fn := range map[string]func(){
		"k=0":          func() { tr.KNN([]float64{0, 0}, 0, vec.L2, nil) },
		"dim mismatch": func() { tr.KNN([]float64{0}, 1, vec.L2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKNNBestFirstEfficiency(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 30000, Dims: 3, Seed: 2, Dist: synth.Uniform})
	tr := BulkLoad(ds, 32)
	var c stats.Counters
	tr.KNN([]float64{0.5, 0.5, 0.5}, 10, vec.L2, &c)
	// Best-first should touch a tiny fraction of the points.
	if c.Snapshot().DistComps > int64(ds.Len())/20 {
		t.Errorf("KNN tested %d of %d points", c.Snapshot().DistComps, ds.Len())
	}
}

func TestKNNJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := synth.Generate(synth.Config{N: 150, Dims: 4, Seed: 4, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 400, Dims: 4, Seed: 5, Dist: synth.GaussianClusters})
	_ = rng
	for _, workers := range []int{1, 4} {
		got := KNNJoin(a, b, 3, workers, vec.L2, nil)
		if len(got) != a.Len() {
			t.Fatalf("workers=%d: %d result rows", workers, len(got))
		}
		for i := 0; i < a.Len(); i++ {
			want := bruteKNN(b, a.Point(i), 3, vec.L2)
			if len(got[i]) != 3 {
				t.Fatalf("workers=%d row %d: %d neighbors", workers, i, len(got[i]))
			}
			for j := range want {
				if got[i][j].Dist != want[j].Dist {
					t.Fatalf("workers=%d row %d neighbor %d: %g vs %g", workers, i, j, got[i][j].Dist, want[j].Dist)
				}
			}
		}
	}
}

func TestKNNJoinPanics(t *testing.T) {
	a := synth.Generate(synth.Config{N: 3, Dims: 2, Seed: 6, Dist: synth.Uniform})
	for name, fn := range map[string]func(){
		"dims differ": func() {
			KNNJoin(a, synth.Generate(synth.Config{N: 3, Dims: 3, Seed: 7, Dist: synth.Uniform}), 1, 1, vec.L2, nil)
		},
		"empty b": func() { KNNJoin(a, dataset.New(2, 0), 1, 1, vec.L2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
