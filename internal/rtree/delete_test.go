package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestDeleteRandomizedKeepsInvariantsAndAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(500)
		d := 1 + rng.Intn(5)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		var tr *Tree
		if rng.Intn(2) == 0 {
			tr = BulkLoad(ds, 4+rng.Intn(12))
		} else {
			tr = New(ds, 4+rng.Intn(12))
			for i := 0; i < n; i++ {
				tr.Insert(i)
			}
		}
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for k := 0; k < n/2; k++ {
			i := rng.Intn(n)
			if !alive[i] {
				if tr.Delete(i) {
					t.Fatalf("double delete of %d succeeded", i)
				}
				continue
			}
			if !tr.Delete(i) {
				t.Fatalf("delete of live point %d failed", i)
			}
			alive[i] = false
			if k%29 == 0 {
				if err := tr.checkInvariants(); err != nil {
					t.Fatalf("after %d deletes: %v", k+1, err)
				}
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		// Survivor queries must be exact.
		q := make([]float64, d)
		for qi := 0; qi < 10; qi++ {
			for k := range q {
				q[k] = rng.Float64()
			}
			eps := 0.05 + rng.Float64()*0.3
			var got []int
			tr.RangeQuery(q, vec.L2, eps, nil, func(i int) { got = append(got, i) })
			sort.Ints(got)
			var want []int
			th := vec.Threshold(vec.L2, eps)
			for i := 0; i < n; i++ {
				if alive[i] && vec.Within(vec.L2, q, ds.Point(i), th) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("post-delete range: %d hits, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatal("post-delete range hit set differs")
				}
			}
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 200, Dims: 3, Seed: 2, Dist: synth.Uniform})
	tr := BulkLoad(ds, 8)
	order := rand.New(rand.NewSource(3)).Perm(200)
	for _, i := range order {
		if !tr.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree reports bounds")
	}
	// Reinsert into the emptied tree.
	for i := 0; i < 200; i++ {
		tr.Insert(i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d after reinsertion", tr.Len())
	}
}

func TestDeleteDegenerate(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{1, 2}})
	tr := BulkLoad(ds, 0)
	if tr.Delete(5) || tr.Delete(-1) {
		t.Error("out-of-range delete succeeded")
	}
	if !tr.Delete(0) {
		t.Error("valid delete failed")
	}
	if tr.Delete(0) {
		t.Error("delete from empty tree succeeded")
	}
}

func TestDeleteDuplicateCoordinates(t *testing.T) {
	// Coincident points are distinct entries; deleting one must leave the
	// others findable.
	ds := dataset.New(2, 0)
	for i := 0; i < 30; i++ {
		ds.Append([]float64{1, 1})
	}
	tr := New(ds, 4)
	for i := 0; i < 30; i++ {
		tr.Insert(i)
	}
	for i := 0; i < 15; i++ {
		if !tr.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	hits := 0
	tr.RangeQuery([]float64{1, 1}, vec.L2, 0.01, nil, func(int) { hits++ })
	if hits != 15 {
		t.Errorf("found %d survivors, want 15", hits)
	}
}
