package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 701)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 702)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestDynamicInsertOracle(t *testing.T) {
	// The dynamically built tree must produce identical join results.
	fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		tr := New(ds, 8)
		for i := 0; i < ds.Len(); i++ {
			tr.Insert(i)
		}
		tr.SelfJoin(opt, sink)
	}
	jointest.CheckSelf(t, fn, 30, 703)
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(800)
		d := 1 + rng.Intn(10)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		max := 4 + rng.Intn(60)
		tr := BulkLoad(ds, max)
		if tr.Len() != n {
			t.Fatalf("n=%d max=%d: Len = %d", n, max, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d d=%d max=%d: %v", n, d, max, err)
		}
	}
}

func TestDynamicInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(6)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.Uniform})
		tr := New(ds, 4+rng.Intn(20))
		for i := 0; i < n; i++ {
			tr.Insert(i)
			if i%97 == 0 {
				if err := tr.checkInvariants(); err != nil {
					t.Fatalf("after %d inserts: %v", i+1, err)
				}
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("final n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
	}
}

func TestDuplicatePointsInsert(t *testing.T) {
	ds := dataset.New(2, 0)
	for i := 0; i < 100; i++ {
		ds.Append([]float64{1, 1})
	}
	tr := New(ds, 8)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var sink pairs.Counter
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.5}, &sink)
	if sink.N() != 100*99/2 {
		t.Errorf("coincident self-join = %d, want %d", sink.N(), 100*99/2)
	}
}

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := synth.Generate(synth.Config{N: 700, Dims: 4, Seed: 4, Dist: synth.GaussianClusters})
	for _, build := range []func() *Tree{
		func() *Tree { return BulkLoad(ds, 16) },
		func() *Tree {
			tr := New(ds, 16)
			for i := 0; i < ds.Len(); i++ {
				tr.Insert(i)
			}
			return tr
		},
	} {
		tr := build()
		for trial := 0; trial < 25; trial++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
				eps := 0.05 + rng.Float64()*0.3
				var got []int
				tr.RangeQuery(q, m, eps, nil, func(i int) { got = append(got, i) })
				sort.Ints(got)
				th := vec.Threshold(m, eps)
				var want []int
				for i := 0; i < ds.Len(); i++ {
					if vec.Within(m, q, ds.Point(i), th) {
						want = append(want, i)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%v eps=%g: %d hits, want %d", m, eps, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: hit mismatch", m)
					}
				}
			}
		}
	}
}

func TestWindowQuery(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 1000, Dims: 3, Seed: 5, Dist: synth.Uniform})
	tr := BulkLoad(ds, 0)
	w := vec.NewBox([]float64{0.2, 0.2, 0.2}, []float64{0.5, 0.6, 0.4})
	var got []int
	tr.WindowQuery(w, func(i int) { got = append(got, i) })
	sort.Ints(got)
	var want []int
	for i := 0; i < ds.Len(); i++ {
		if w.Contains(ds.Point(i)) {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("window hits %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("window hit set differs")
		}
	}
}

func TestJoinTreesDifferentHeights(t *testing.T) {
	// 2000 vs 10 points: trees of very different heights must still join
	// correctly through the mixed-level traversal.
	a := synth.Generate(synth.Config{N: 2000, Dims: 3, Seed: 6, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 10, Dims: 3, Seed: 7, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.1}
	got := &pairs.Collector{}
	JoinTrees(BulkLoad(a, 8), BulkLoad(b, 8), opt, got)
	want := &pairs.Collector{}
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if vec.Within(vec.L2, a.Point(i), b.Point(j), opt.Threshold()) {
				want.Emit(i, j)
			}
		}
	}
	if !pairs.Equal(got.Sorted(), want.Sorted()) {
		t.Errorf("mixed-height join wrong: %s", pairs.Diff(got.Pairs, want.Pairs))
	}
}

func TestHeightAndSizeGrow(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 5000, Dims: 2, Seed: 8, Dist: synth.Uniform})
	tr := BulkLoad(ds, 16)
	if tr.Height() < 3 {
		t.Errorf("Height = %d, want ≥ 3 for 5000 points with fan-out 16", tr.Height())
	}
	if tr.Size() < 5000/16 {
		t.Errorf("Size = %d, too few nodes", tr.Size())
	}
	dyn := New(ds, 16)
	for i := 0; i < 200; i++ {
		dyn.Insert(i)
	}
	if dyn.Height() < 2 {
		t.Errorf("dynamic Height = %d after 200 inserts with fan-out 16", dyn.Height())
	}
}

func TestEmptyTree(t *testing.T) {
	ds := dataset.New(2, 0)
	tr := BulkLoad(ds, 0)
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree reported bounds")
	}
	var sink pairs.Counter
	tr.RangeQuery([]float64{0, 0}, vec.L2, 1, nil, func(int) { sink.Emit(0, 0) })
	if sink.N() != 0 {
		t.Error("empty tree range query hit something")
	}
}

// TestJoinPrunes: synchronized traversal on spread data must test far fewer
// candidates than quadratic in low dimensions.
func TestJoinPrunes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 9, Dist: synth.Uniform})
	var c stats.Counters
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.03, Counters: &c}, &sink)
	quad := int64(ds.Len()) * int64(ds.Len()-1) / 2
	if got := c.Snapshot().Candidates; got*4 > quad {
		t.Errorf("candidates %d not well below quadratic %d", got, quad)
	}
}

func TestEvenChunks(t *testing.T) {
	for _, tc := range []struct {
		n, max int
	}{{1, 32}, {32, 32}, {33, 32}, {100, 32}, {5, 4}, {1000, 7}} {
		chunks := evenChunks(tc.n, tc.max)
		total := 0
		prevEnd := 0
		for _, c := range chunks {
			if c.start != prevEnd {
				t.Fatalf("n=%d max=%d: gap at %d", tc.n, tc.max, c.start)
			}
			size := c.end - c.start
			if size > tc.max || size < 1 {
				t.Fatalf("n=%d max=%d: chunk size %d", tc.n, tc.max, size)
			}
			if len(chunks) > 1 && size < tc.max/2 {
				t.Fatalf("n=%d max=%d: chunk below min fill (%d)", tc.n, tc.max, size)
			}
			total += size
			prevEnd = c.end
		}
		if total != tc.n {
			t.Fatalf("n=%d max=%d: chunks cover %d", tc.n, tc.max, total)
		}
	}
}
