package rtree

import (
	"simjoin/internal/dataset"
	"simjoin/internal/vec"
	"simjoin/internal/zorder"
)

// BulkLoad builds a packed R-tree over all points of ds: points are sorted
// along the Z-order curve and packed into leaves, then each level is packed
// the same way until one root remains. Chunks are sized evenly, which both
// maximizes fill and guarantees the minimum-fill invariant (an even split
// of more than maxEntries items never leaves a chunk below maxEntries/2).
// Packing gives near-minimal overlap — the closest faithful stand-in for
// the original evaluation's overlap-free R+ tree.
func BulkLoad(ds *dataset.Dataset, maxEntries int) *Tree {
	t := New(ds, maxEntries)
	if ds.Len() == 0 {
		return t
	}
	order := zorder.SortedIndexes(ds)
	t.nodes = 0
	t.height = 1

	// Pack leaves.
	level := make([]entry, 0, len(order)/t.maxEntries+1)
	for _, chunk := range evenChunks(len(order), t.maxEntries) {
		leaf := &node{leaf: true, entries: make([]entry, 0, chunk.end-chunk.start)}
		for _, i := range order[chunk.start:chunk.end] {
			leaf.entries = append(leaf.entries, entry{box: vec.PointBox(ds.Point(int(i))), idx: i})
		}
		t.nodes++
		level = append(level, entry{box: nodeBox(leaf), child: leaf})
	}

	// Pack internal levels until a single node remains.
	for len(level) > 1 {
		next := make([]entry, 0, len(level)/t.maxEntries+1)
		for _, chunk := range evenChunks(len(level), t.maxEntries) {
			n := &node{entries: level[chunk.start:chunk.end:chunk.end]}
			t.nodes++
			next = append(next, entry{box: nodeBox(n), child: n})
		}
		level = next
		t.height++
	}
	t.root = level[0].child
	return t
}

type chunk struct{ start, end int }

// evenChunks splits n items into ceil(n/max) consecutive chunks of
// near-equal size (differing by at most one).
func evenChunks(n, max int) []chunk {
	count := (n + max - 1) / max
	out := make([]chunk, 0, count)
	base := n / count
	extra := n % count
	start := 0
	for i := 0; i < count; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, chunk{start: start, end: start + size})
		start += size
	}
	return out
}
