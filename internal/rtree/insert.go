package rtree

import (
	"math"

	"simjoin/internal/vec"
)

// Insert adds point index i dynamically, splitting overflowing nodes with
// Guttman's quadratic algorithm and growing the root when it splits.
func (t *Tree) Insert(i int) {
	e := entry{box: vec.PointBox(t.ds.Point(i)), idx: int32(i)}
	t.insertAtLevel(e, 1)
}

// insertAtLevel places e so that it becomes an entry of a node at the
// given level (1 = leaf level; subtree reinsertion during deletion targets
// higher levels), growing the root on a split.
func (t *Tree) insertAtLevel(e entry, target int) {
	split := t.insert(t.root, e, t.height, target)
	if split != nil {
		// Root split: grow a new root over the two halves.
		old := t.root
		t.root = &node{entries: []entry{
			{box: nodeBox(old), child: old},
			{box: nodeBox(split), child: split},
		}}
		t.height++
		t.nodes++
	}
}

// insert places e in the subtree rooted at n (which sits at the given
// level; the leaf level is 1), appending once level == target, and returns
// the new sibling if n split.
func (t *Tree) insert(n *node, e entry, level, target int) *node {
	if level == target {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	best := t.chooseSubtree(n, e.box)
	split := t.insert(n.entries[best].child, e, level-1, target)
	n.entries[best].box.ExtendBox(e.box)
	if split == nil {
		return nil
	}
	// The child split: tighten the old entry and add the sibling.
	n.entries[best].box = nodeBox(n.entries[best].child)
	n.entries = append(n.entries, entry{box: nodeBox(split), child: split})
	if len(n.entries) > t.maxEntries {
		return t.splitNode(n)
	}
	return nil
}

// chooseSubtree picks the entry of internal node n whose box needs the
// least volume enlargement to cover b (ties: smaller volume).
func (t *Tree) chooseSubtree(n *node, b vec.Box) int {
	best, bestEnlarge, bestVol := 0, math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		vol := e.box.Volume()
		enlarge := e.box.EnlargedVolume(b) - vol
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && vol < bestVol) {
			best, bestEnlarge, bestVol = i, enlarge, vol
		}
	}
	return best
}

// splitNode splits an overflowing node in place with the quadratic method
// and returns the new sibling.
func (t *Tree) splitNode(n *node) *node {
	t.nodes++
	all := n.entries
	s1, s2 := pickSeeds(all)
	g1 := []entry{all[s1]}
	g2 := []entry{all[s2]}
	b1 := all[s1].box.Clone()
	b2 := all[s2].box.Clone()
	rest := make([]entry, 0, len(all)-2)
	for i, e := range all {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force-assign when one group must absorb everything left to reach
		// the minimum fill.
		if len(g1)+len(rest) == t.minEntries {
			for _, e := range rest {
				g1 = append(g1, e)
				b1.ExtendBox(e.box)
			}
			break
		}
		if len(g2)+len(rest) == t.minEntries {
			for _, e := range rest {
				g2 = append(g2, e)
				b2.ExtendBox(e.box)
			}
			break
		}
		// PickNext: the entry with the strongest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		var bestD1, bestD2 float64
		for i, e := range rest {
			d1 := b1.EnlargedVolume(e.box) - b1.Volume()
			d2 := b2.EnlargedVolume(e.box) - b2.Volume()
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		toG1 := bestD1 < bestD2
		if bestD1 == bestD2 {
			// Resolve ties by smaller volume, then fewer entries.
			if b1.Volume() != b2.Volume() {
				toG1 = b1.Volume() < b2.Volume()
			} else {
				toG1 = len(g1) <= len(g2)
			}
		}
		if toG1 {
			g1 = append(g1, e)
			b1.ExtendBox(e.box)
		} else {
			g2 = append(g2, e)
			b2.ExtendBox(e.box)
		}
	}
	n.entries = g1
	return &node{leaf: n.leaf, entries: g2}
}

// pickSeeds returns the two entries that together waste the most volume —
// the quadratic-split seed pair.
func pickSeeds(entries []entry) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].box.EnlargedVolume(entries[j].box) -
				entries[i].box.Volume() - entries[j].box.Volume()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	return s1, s2
}
