package rtree

import (
	"container/heap"
	"fmt"
	"sync"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// queueItem is one entry of the best-first search frontier: either a node
// (child != nil) or a point, ordered by minimum possible distance.
type queueItem struct {
	dist  float64
	child *node
	idx   int32
}

type frontier []queueItem

func (f frontier) Len() int           { return len(f) }
func (f frontier) Less(i, j int) bool { return f[i].dist < f[j].dist }
func (f frontier) Swap(i, j int)      { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)        { *f = append(*f, x.(queueItem)) }
func (f *frontier) Pop() any          { old := *f; n := len(old); x := old[n-1]; *f = old[:n-1]; return x }

// KNN returns the k nearest neighbors of q in ascending distance order,
// using Hjaltason–Samet best-first traversal: a priority queue over nodes
// and points keyed by minimum possible distance, stopping once k points
// have surfaced (everything still queued is provably farther).
func (t *Tree) KNN(q []float64, k int, metric vec.Metric, counters *stats.Counters) []join.Neighbor {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("rtree: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	if k < 1 {
		panic(fmt.Sprintf("rtree: KNN with k=%d", k))
	}
	out := make([]join.Neighbor, 0, k)
	if len(t.root.entries) == 0 {
		return out
	}
	var visits, comps int64
	f := &frontier{{dist: 0, child: t.root}}
	for f.Len() > 0 && len(out) < k {
		item := heap.Pop(f).(queueItem)
		if item.child == nil {
			out = append(out, join.Neighbor{Index: int(item.idx), Dist: item.dist})
			continue
		}
		visits++
		n := item.child
		for _, e := range n.entries {
			if n.leaf {
				comps++
				d := vec.Dist(metric, q, t.ds.Point(int(e.idx)))
				heap.Push(f, queueItem{dist: d, idx: e.idx})
				continue
			}
			heap.Push(f, queueItem{dist: e.box.MinDistPoint(metric, q), child: e.child})
		}
	}
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
	// Best-first pops points in exact distance order; normalize equal-
	// distance runs by index for deterministic output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist == out[j-1].Dist && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// KNNJoin reports, for every point of a, its k nearest neighbors in b
// (ascending distance), using a bulk-loaded tree over b and workers
// parallel queries. The result is indexed by a's point order.
func KNNJoin(a, b *dataset.Dataset, k, workers int, metric vec.Metric, counters *stats.Counters) [][]join.Neighbor {
	if a.Dims() != b.Dims() {
		panic(fmt.Sprintf("rtree: KNN join over %d-dim and %d-dim sets", a.Dims(), b.Dims()))
	}
	if b.Len() == 0 {
		panic("rtree: KNN join against an empty set")
	}
	t := BulkLoad(b, 0)
	out := make([][]join.Neighbor, a.Len())
	if workers < 1 {
		workers = 1
	}
	if workers > a.Len() {
		workers = a.Len()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < a.Len(); i += workers {
				out[i] = t.KNN(a.Point(i), k, metric, counters)
			}
		}(w)
	}
	wg.Wait()
	return out
}
