package rtree

// Delete removes point index i from the tree (Guttman's algorithm:
// find-leaf, remove, condense with reinsertion, shrink the root). It
// reports whether the point was indexed. The dataset itself is untouched.
func (t *Tree) Delete(i int) bool {
	if i < 0 || i >= t.ds.Len() || len(t.root.entries) == 0 {
		return false
	}
	p := t.ds.Point(i)
	var orphans []orphan
	removed := t.condense(t.root, int32(i), p, t.height, &orphans)
	if !removed {
		return false
	}
	// Shrink: while the root is internal with a single child, promote it.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
		t.nodes--
	}
	// Reinsert orphans at the level that keeps all leaves at depth 1.
	// Subtree orphans of height h become entries of a node at level h+1;
	// with the root possibly shrunk, clamp to the current height. Indexed
	// loop: scatter may append more orphans while we drain.
	for qi := 0; qi < len(orphans); qi++ {
		o := orphans[qi]
		target := o.height + 1
		if o.height == 0 {
			target = 1 // a point entry
		}
		if target > t.height {
			// The tree shrank below the orphan's height: split the orphan
			// into its child entries and reinsert those instead.
			t.scatter(o, &orphans)
			continue
		}
		t.insertAtLevel(o.e, target)
	}
	return true
}

// orphan is an evicted entry waiting for reinsertion: height 0 for point
// entries, the subtree height otherwise.
type orphan struct {
	e      entry
	height int
}

// scatter breaks an orphan subtree into its child entries and queues them
// (used when the tree shrank below the orphan's level).
func (t *Tree) scatter(o orphan, queue *[]orphan) {
	n := o.e.child
	t.nodes--
	for _, e := range n.entries {
		if n.leaf {
			*queue = append(*queue, orphan{e: e, height: 0})
		} else {
			*queue = append(*queue, orphan{e: e, height: o.height - 1})
		}
	}
}

// condense removes point i from the subtree rooted at n (at the given
// level) if present, evicting under-filled nodes into the orphan queue and
// tightening boxes on the way out. It reports whether the point was found.
func (t *Tree) condense(n *node, i int32, p []float64, level int, orphans *[]orphan) bool {
	if n.leaf {
		for at, e := range n.entries {
			if e.idx == i {
				n.entries = append(n.entries[:at], n.entries[at+1:]...)
				return true
			}
		}
		return false
	}
	for at := range n.entries {
		e := &n.entries[at]
		if !e.box.Contains(p) {
			continue
		}
		if !t.condense(e.child, i, p, level-1, orphans) {
			continue
		}
		child := e.child
		if len(child.entries) < t.minEntries {
			// Evict the whole under-filled child for reinsertion.
			n.entries = append(n.entries[:at], n.entries[at+1:]...)
			t.nodes--
			childHeight := level - 1 // height of nodes at the child's level
			for _, ce := range child.entries {
				if child.leaf {
					*orphans = append(*orphans, orphan{e: ce, height: 0})
				} else {
					*orphans = append(*orphans, orphan{e: ce, height: childHeight - 1})
				}
			}
		} else {
			e.box = nodeBox(child)
		}
		return true
	}
	return false
}
