package rtree

import (
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoin reports every unordered pair within ε once using a bulk-loaded
// tree and synchronized traversal.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	start := time.Now()
	t := BulkLoad(ds, 0)
	opt.Timing().AddBuild(time.Since(start))
	t.SelfJoin(opt, sink)
}

// SelfJoin runs the synchronized-traversal self-join on an existing tree:
// node pairs whose boxes are farther than ε apart are pruned, identical
// nodes pair their entries without duplication.
func (t *Tree) SelfJoin(opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Stats()
	th := opt.Threshold()
	var cand, res, visits int64
	var rec func(a, b *node)
	rec = func(a, b *node) {
		visits++
		same := a == b
		if a.leaf { // same tree, uniform height: b is a leaf too
			for i, ea := range a.entries {
				pa := t.ds.Point(int(ea.idx))
				jStart := 0
				if same {
					jStart = i + 1
				}
				for _, eb := range b.entries[jStart:] {
					cand++
					if vec.Within(opt.Metric, pa, t.ds.Point(int(eb.idx)), th) {
						res++
						sink.Emit(int(ea.idx), int(eb.idx))
					}
				}
			}
			return
		}
		for i, ea := range a.entries {
			jStart := 0
			if same {
				jStart = i
			}
			for _, eb := range b.entries[jStart:] {
				if ea.box.WithinDist(opt.Metric, eb.box, th) {
					rec(ea.child, eb.child)
				}
			}
		}
	}
	rec(t.root, t.root)
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}

// Join reports every (a-index, b-index) pair within ε across two datasets,
// bulk-loading a tree over each and traversing them synchronously.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	ta := BulkLoad(a, 0)
	tb := BulkLoad(b, 0)
	opt.Timing().AddBuild(time.Since(start))
	JoinTrees(ta, tb, opt, sink)
}

// JoinTrees runs the synchronized-traversal join over two existing trees
// (which may have different heights; the traversal descends the deeper
// side when levels disagree).
func JoinTrees(ta, tb *Tree, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if ta.Len() == 0 || tb.Len() == 0 {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Stats()
	th := opt.Threshold()
	var cand, res, visits int64
	var rec func(a, b *node, ab, bb vec.Box)
	rec = func(a, b *node, ab, bb vec.Box) {
		visits++
		switch {
		case a.leaf && b.leaf:
			for _, ea := range a.entries {
				pa := ta.ds.Point(int(ea.idx))
				for _, eb := range b.entries {
					cand++
					if vec.Within(opt.Metric, pa, tb.ds.Point(int(eb.idx)), th) {
						res++
						sink.Emit(int(ea.idx), int(eb.idx))
					}
				}
			}
		case a.leaf: // b internal: descend b
			for _, eb := range b.entries {
				if eb.box.WithinDist(opt.Metric, ab, th) {
					rec(a, eb.child, ab, eb.box)
				}
			}
		case b.leaf: // a internal: descend a
			for _, ea := range a.entries {
				if ea.box.WithinDist(opt.Metric, bb, th) {
					rec(ea.child, b, ea.box, bb)
				}
			}
		default: // both internal: descend both
			for _, ea := range a.entries {
				for _, eb := range b.entries {
					if ea.box.WithinDist(opt.Metric, eb.box, th) {
						rec(ea.child, eb.child, ea.box, eb.box)
					}
				}
			}
		}
	}
	rootA, _ := ta.Bounds()
	rootB, _ := tb.Bounds()
	if rootA.WithinDist(opt.Metric, rootB, th) {
		rec(ta.root, tb.root, rootA, rootB)
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}
