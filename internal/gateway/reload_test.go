package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func writeConfig(t *testing.T, path string, cfg *Config) {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshaling config: %v", err)
	}
	// Write-then-rename so a poll never reads a half-written file —
	// the same discipline an operator's config push should use.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatalf("writing config: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatalf("renaming config: %v", err)
	}
}

func TestReloadSwapsKeysAndLimits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeConfig(t, path, oneTenant("acme", "old-key", nil))

	be := newFakeBackend(t)
	g, srv := bootGateway(t, oneTenant("placeholder", "x", nil), be.srv.URL)
	if err := g.LoadConfigFile(path); err != nil {
		t.Fatalf("LoadConfigFile: %v", err)
	}

	resp := doJoin(t, srv.URL, "old-key", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-reload key: status %d", resp.StatusCode)
	}

	writeConfig(t, path, oneTenant("acme", "new-key", func(tn *Tenant) {
		tn.MaxPairs = 10
	}))
	if err := g.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}

	resp = doJoin(t, srv.URL, "old-key", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("revoked key still accepted: status %d", resp.StatusCode)
	}
	// New key works, and the reloaded max_pairs budget bites (backend
	// estimates 100 > 10).
	resp = doJoin(t, srv.URL, "new-key", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("reloaded max_pairs budget not applied: status %d", resp.StatusCode)
	}
	if g.Reloads() < 2 {
		t.Fatalf("reload counter %d, want >= 2", g.Reloads())
	}
}

func TestReloadKeepsBadConfigOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeConfig(t, path, oneTenant("acme", "k", nil))
	be := newFakeBackend(t)
	g, srv := bootGateway(t, oneTenant("placeholder", "x", nil), be.srv.URL)
	if err := g.LoadConfigFile(path); err != nil {
		t.Fatalf("LoadConfigFile: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"tenants": [{"name": "", "key"`), 0o644); err != nil {
		t.Fatalf("corrupting config: %v", err)
	}
	if err := g.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt config")
	}
	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("previous config not preserved after failed reload: status %d", resp.StatusCode)
	}
}

// TestReloadUnderTraffic hammers the gateway from many goroutines while
// the config is swapped repeatedly. The invariants: a key present in
// every config version never sees 401, in-flight requests finish
// normally across swaps, and (under -race) no reload/admission data
// race exists.
func TestReloadUnderTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	stable := Tenant{Name: "stable", Key: "stable-key", Weight: 1}
	writeConfig(t, path, &Config{Tenants: []Tenant{stable}})

	be := newFakeBackend(t)
	g, srv := bootGateway(t, oneTenant("placeholder", "x", nil), be.srv.URL)
	if err := g.LoadConfigFile(path); err != nil {
		t.Fatalf("LoadConfigFile: %v", err)
	}
	stop := make(chan struct{})
	go g.WatchConfig(stop, 5*time.Millisecond)
	defer close(stop)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var unauthorized, served atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp := doJoin(t, srv.URL, "stable-key", "pts", map[string]any{"eps": 0.5}, nil)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusUnauthorized:
					unauthorized.Add(1)
				case http.StatusTooManyRequests:
					// Rotating limits may legitimately shed; never 401.
				default:
					t.Errorf("unexpected status %d during reload churn", resp.StatusCode)
				}
			}
		}()
	}

	// Swap the config as fast as the poll watcher picks it up,
	// alternating limits and the set of other tenants around the
	// stable one.
	swaps := 0
	for ctx.Err() == nil {
		cfg := &Config{Tenants: []Tenant{stable}}
		if swaps%2 == 0 {
			cfg.Tenants[0].RatePerSec = 100000
			cfg.Tenants[0].Burst = 100000
			cfg.Tenants = append(cfg.Tenants, Tenant{Name: fmt.Sprintf("t%d", swaps), Key: fmt.Sprintf("k%d", swaps)})
		} else {
			cfg.Tenants[0].MaxInFlight = 64
			cfg.Experiments = []Experiment{{Name: "e", Percent: 50, Override: Override{Algorithm: "brute"}}}
		}
		writeConfig(t, path, cfg)
		// mtime granularity can swallow rapid swaps; also drive Reload
		// directly so the swap count is meaningful.
		if err := g.Reload(); err != nil {
			t.Errorf("Reload: %v", err)
		}
		swaps++
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	if n := unauthorized.Load(); n != 0 {
		t.Fatalf("stable key saw %d unauthorized responses across %d swaps", n, swaps)
	}
	if served.Load() == 0 {
		t.Fatal("no request succeeded during reload churn")
	}
	if swaps < 10 {
		t.Fatalf("only %d swaps in the test window", swaps)
	}
	g.ShadowDrain()
}
