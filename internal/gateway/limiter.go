package gateway

import (
	"math"
	"sync"
	"time"
)

// bucket is a monotonic-clock token bucket. The zero rate means
// unlimited; limits are mutated in place on config reload (under mu) so
// in-flight holders never see a freed bucket.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// newBucket returns a full bucket. burst <= 0 defaults to
// max(rate, 1) so a configured rate always admits at least one request.
func newBucket(rate, burst float64) *bucket {
	if burst <= 0 {
		burst = math.Max(rate, 1)
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// setLimits swaps the refill parameters atomically, clamping the
// current fill to the new capacity so a shrink takes effect now and a
// grow doesn't mint retroactive tokens.
func (b *bucket) setLimits(rate, burst float64) {
	if burst <= 0 {
		burst = math.Max(rate, 1)
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
	b.mu.Unlock()
}

func (b *bucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
}

// take consumes one token. On failure it returns how long until one is
// available — the Retry-After the shed response carries.
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	b.refillLocked(time.Now())
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Second {
		// Round the advisory up: a sub-second Retry-After serialized as
		// "0" would tell clients to hammer immediately.
		wait = time.Second
	}
	return false, wait
}
