package gateway

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// StickyHeader is the optional request header mixed into experiment
// assignment. Without it, assignment is sticky per tenant+dataset — one
// principal sees one arm for the experiment's lifetime. Clients that
// want finer-grained (e.g. per-session) assignment set it; the same
// value always lands on the same arm.
const StickyHeader = "X-Sticky-Key"

// decision is the routing outcome for one join request.
type decision struct {
	// exp is the matched rule's name ("" when no experiment applies).
	exp string
	// candidate reports assignment to the candidate arm.
	candidate bool
	// shadow reports that the candidate runs as a shadow duplicate
	// (the incumbent still answers the client).
	shadow bool
	// override is the candidate arm's rewrite.
	override Override
}

// route matches the first applicable experiment and assigns the request
// to an arm. Assignment hashes experiment+tenant+dataset+sticky into
// 10 000 buckets, so a 0.01% granularity and — the property the whole
// design leans on — determinism: the same principal hits the same arm
// on every request, and flipping a rule's percent moves a predictable
// cohort.
func (g *Gateway) route(tenant, dataset, sticky string) decision {
	exps := g.experiments()
	for i := range exps {
		e := &exps[i]
		if !e.matches(dataset) {
			continue
		}
		d := decision{exp: e.Name, shadow: e.Shadow, override: e.Override}
		d.candidate = stickyBucket(e.Name, tenant, dataset, sticky) < e.Percent*100
		return d
	}
	return decision{}
}

// stickyBucket hashes the assignment key into [0, 10000).
func stickyBucket(experiment, tenant, dataset, sticky string) float64 {
	h := fnv.New64a()
	for _, s := range []string{experiment, tenant, dataset, sticky} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return float64(mix64(h.Sum64()) % 10000)
}

// mix64 is a splitmix64-style finalizer. FNV alone avalanches poorly
// when keys share long prefixes or suffixes — rendezvous scores and
// bucket assignments computed from raw FNV sums order near-identical
// keys consistently instead of uniformly — so every hash that feeds a
// comparison or a modulus passes through this.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// applyOverride rewrites a decoded join request body with the candidate
// arm's options. The body stays a generic map so request fields the
// gateway doesn't model (stream, max_pairs, degrade, …) pass through
// untouched.
func applyOverride(body map[string]any, o Override) {
	if o.Algorithm != "" {
		body["algorithm"] = o.Algorithm
	}
	if o.Float32 != nil {
		body["float32"] = *o.Float32
	}
	if o.Workers != 0 {
		body["workers"] = o.Workers
	}
}

// encodeBody re-serializes a (possibly rewritten) request body.
func encodeBody(body map[string]any) ([]byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("re-encoding request body: %w", err)
	}
	return b, nil
}
