// Package gateway is the multi-tenant front door of the simjoin stack:
// an authenticating, rate-limiting, experiment-routing reverse proxy
// mounted in front of one coordinator or a flat worker fleet
// (simjoind -gateway -backends <url,…>).
//
// It adds three things the backends deliberately do not have:
//
//   - Tenancy: API-key authentication from a hot-reloadable JSON
//     config, per-tenant token-bucket rate limits, per-tenant in-flight
//     caps with weighted fair queuing, and estimate-priced load
//     shedding that asks the backend GET /datasets/{name}?eps= for a
//     predicted join size before admitting an expensive query.
//   - Experiment routing: named rules that send a sticky percentage of
//     matching join traffic to a candidate arm with an options override
//     (forced algorithm, float32 kernels, worker count), or shadow the
//     candidate — the client gets the incumbent's answer, the candidate
//     runs asynchronously and its pair count, checksum and latency are
//     diffed against the incumbent's.
//   - Observability: per-tenant and per-arm Prometheus families
//     (simjoin_gw_*), traceparent propagation so a stitched trace shows
//     gateway → coordinator → worker as one tree, and querylog journal
//     records for shed and mismatched requests.
//
// See docs/GATEWAY.md.
package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Tenant is one API-key principal and its limits. The zero limits mean
// "unlimited" so a minimal config is just name + key.
type Tenant struct {
	// Name labels the tenant in metrics and logs; unique.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-Api-Key: <key>"; unique across tenants.
	Key string `json:"key"`
	// RatePerSec is the token-bucket refill rate for requests (0 =
	// unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently admitted queries
	// (0 = unlimited).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Weight is the tenant's share of contended queue capacity
	// (default 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxPairs is the tenant's admission budget: join queries whose
	// backend-estimated result size exceeds it are shed with 429
	// (0 = no pricing).
	MaxPairs int64 `json:"max_pairs,omitempty"`
}

// Override is the candidate arm's option rewrite, applied to the join
// request body before it is proxied.
type Override struct {
	// Algorithm forces the engine ("brute", "ekdb", "auto", …).
	Algorithm string `json:"algorithm,omitempty"`
	// Float32 toggles the float32 kernel mode; nil leaves the request's
	// own setting.
	Float32 *bool `json:"float32,omitempty"`
	// Workers forces the parallelism (0 leaves the request's own).
	Workers int `json:"workers,omitempty"`
}

// zero reports an override that would change nothing.
func (o Override) zero() bool {
	return o.Algorithm == "" && o.Float32 == nil && o.Workers == 0
}

// Experiment is one routing rule over join traffic.
type Experiment struct {
	// Name labels the experiment in metrics and journal records; unique.
	Name string `json:"name"`
	// Dataset restricts the rule to one dataset ("" or "*" = all; for
	// two-set joins the A side is matched).
	Dataset string `json:"dataset,omitempty"`
	// Percent of matching traffic routed to the candidate arm, 0–100.
	// Assignment is hash-sticky by tenant+dataset (+ the optional
	// X-Sticky-Key request header), so one principal sees a consistent
	// arm for the experiment's lifetime.
	Percent float64 `json:"percent"`
	// Shadow duplicates the request to the candidate instead of
	// switching: the client is answered by the incumbent, and the
	// candidate's pair count, checksum and latency are diffed
	// asynchronously.
	Shadow bool `json:"shadow,omitempty"`
	// Override is what the candidate arm runs with.
	Override Override `json:"override"`
}

// matches reports whether the rule applies to a join on dataset.
func (e *Experiment) matches(dataset string) bool {
	return e.Dataset == "" || e.Dataset == "*" || e.Dataset == dataset
}

// Config is the gateway's hot-reloadable tenancy + experiment config.
type Config struct {
	Tenants     []Tenant     `json:"tenants"`
	Experiments []Experiment `json:"experiments,omitempty"`
}

// Validate checks the config's internal consistency: non-empty unique
// names and keys, sane numeric ranges.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("gateway config lists no tenants")
	}
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		if strings.TrimSpace(t.Name) == "" {
			return fmt.Errorf("tenant %d has no name", i)
		}
		if t.Key == "" {
			return fmt.Errorf("tenant %q has no key", t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if keys[t.Key] {
			return fmt.Errorf("tenant %q reuses another tenant's key", t.Name)
		}
		names[t.Name], keys[t.Key] = true, true
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxInFlight < 0 || t.Weight < 0 || t.MaxPairs < 0 {
			return fmt.Errorf("tenant %q has a negative limit", t.Name)
		}
	}
	expNames := make(map[string]bool, len(c.Experiments))
	for i, e := range c.Experiments {
		if strings.TrimSpace(e.Name) == "" {
			return fmt.Errorf("experiment %d has no name", i)
		}
		if expNames[e.Name] {
			return fmt.Errorf("duplicate experiment name %q", e.Name)
		}
		expNames[e.Name] = true
		if e.Percent < 0 || e.Percent > 100 {
			return fmt.Errorf("experiment %q: percent %v outside [0,100]", e.Name, e.Percent)
		}
		if e.Override.zero() && !e.Shadow {
			return fmt.Errorf("experiment %q has an empty override and is not a shadow rule; it would route traffic to an identical arm", e.Name)
		}
	}
	return nil
}

// ParseConfig decodes and validates a JSON config. Unknown fields are
// rejected so a typo'd limit fails the reload instead of silently
// meaning "unlimited".
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("parsing gateway config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadConfig reads and parses a config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading gateway config: %w", err)
	}
	return ParseConfig(data)
}
