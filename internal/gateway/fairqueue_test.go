package gateway

import (
	"context"
	"sync"
	"testing"
	"time"
)

func waitQueued(t *testing.T, q *fairQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for q.queued() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, q.queued())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFairQueueTenantCap(t *testing.T) {
	q := newFairQueue(8)
	rt := &tenantRT{name: "a", maxInFlight: 1}
	rel, err := q.acquire(context.Background(), rt)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := q.acquire(context.Background(), rt); err != errTenantBusy {
		t.Fatalf("second acquire: got %v, want errTenantBusy", err)
	}
	rel()
	rel2, err := q.acquire(context.Background(), rt)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()
}

func TestFairQueueWeightedOrder(t *testing.T) {
	// One slot, held; tenant A (weight 4) and B (weight 1) backlog
	// behind it. A's virtual finish tags (0.25, 0.5, 0.75) all precede
	// B's (1, 2), so the drain order is a1 a2 a3 b1 b2 regardless of
	// enqueue interleaving.
	q := newFairQueue(1)
	holder := &tenantRT{name: "holder"}
	a := &tenantRT{name: "a", weight: 4}
	b := &tenantRT{name: "b", weight: 1}
	relHold, err := q.acquire(context.Background(), holder)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	order := make(chan string, 5)
	var wg sync.WaitGroup
	enqueue := func(rt *tenantRT, label string) {
		t.Helper()
		depth := q.queued()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := q.acquire(context.Background(), rt)
			if err != nil {
				t.Errorf("%s acquire: %v", label, err)
				return
			}
			order <- label
			rel()
		}()
		waitQueued(t, q, depth+1)
	}
	enqueue(a, "a1")
	enqueue(b, "b1")
	enqueue(a, "a2")
	enqueue(a, "a3")
	enqueue(b, "b2")

	relHold()
	wg.Wait()
	close(order)
	var got []string
	for l := range order {
		got = append(got, l)
	}
	want := []string{"a1", "a2", "a3", "b1", "b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestFairQueueCancelWhileQueued(t *testing.T) {
	q := newFairQueue(1)
	holder := &tenantRT{name: "holder"}
	waiterRT := &tenantRT{name: "w"}
	relHold, err := q.acquire(context.Background(), holder)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.acquire(ctx, waiterRT)
		done <- err
	}()
	waitQueued(t, q, 1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("abandoned acquire: got %v, want context.Canceled", err)
	}
	relHold()
	// The slot must be reusable after the abandon.
	rel, err := q.acquire(context.Background(), waiterRT)
	if err != nil {
		t.Fatalf("acquire after abandon: %v", err)
	}
	rel()
	if q.queued() != 0 {
		t.Fatalf("queue depth %d after drain, want 0", q.queued())
	}
}

func TestFairQueueConcurrentChurn(t *testing.T) {
	q := newFairQueue(4)
	tenants := []*tenantRT{
		{name: "a", weight: 2, maxInFlight: 8},
		{name: "b", weight: 1, maxInFlight: 8},
		{name: "c", weight: 1},
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		rt := tenants[i%len(tenants)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rel, err := q.acquire(context.Background(), rt)
				if err == errTenantBusy {
					continue
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				rel()
			}
		}()
	}
	wg.Wait()
	if q.queued() != 0 {
		t.Fatalf("queue depth %d after churn, want 0", q.queued())
	}
	q.mu.Lock()
	busy := q.busy
	q.mu.Unlock()
	if busy != 0 {
		t.Fatalf("busy %d after churn, want 0", busy)
	}
}
