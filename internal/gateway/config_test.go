package gateway

import (
	"strings"
	"testing"
)

func TestParseConfigValid(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"tenants": [
			{"name": "acme", "key": "k1", "rate_per_sec": 10, "burst": 20, "max_in_flight": 4, "weight": 2, "max_pairs": 100000},
			{"name": "beta", "key": "k2"}
		],
		"experiments": [
			{"name": "brute-5", "dataset": "pts", "percent": 5, "override": {"algorithm": "brute"}},
			{"name": "f32-shadow", "percent": 100, "shadow": true, "override": {"float32": true}}
		]
	}`))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(cfg.Tenants) != 2 || len(cfg.Experiments) != 2 {
		t.Fatalf("got %d tenants, %d experiments", len(cfg.Tenants), len(cfg.Experiments))
	}
	if cfg.Experiments[1].Override.Float32 == nil || !*cfg.Experiments[1].Override.Float32 {
		t.Fatalf("float32 override not decoded: %+v", cfg.Experiments[1].Override)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name, js, want string
	}{
		{"no tenants", `{"tenants": []}`, "no tenants"},
		{"unknown field", `{"tenants": [{"name": "a", "key": "k", "rate_per_second": 1}]}`, "unknown field"},
		{"missing key", `{"tenants": [{"name": "a"}]}`, "no key"},
		{"dup name", `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`, "duplicate tenant"},
		{"dup key", `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`, "reuses"},
		{"negative limit", `{"tenants": [{"name": "a", "key": "k", "max_pairs": -1}]}`, "negative"},
		{"percent range", `{"tenants": [{"name": "a", "key": "k"}], "experiments": [{"name": "e", "percent": 150, "override": {"algorithm": "brute"}}]}`, "outside [0,100]"},
		{"empty override", `{"tenants": [{"name": "a", "key": "k"}], "experiments": [{"name": "e", "percent": 50}]}`, "empty override"},
		{"dup experiment", `{"tenants": [{"name": "a", "key": "k"}], "experiments": [{"name": "e", "percent": 1, "override": {"algorithm": "brute"}}, {"name": "e", "percent": 2, "override": {"algorithm": "auto"}}]}`, "duplicate experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(tc.js))
			if err == nil {
				t.Fatalf("config accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestExperimentMatches(t *testing.T) {
	for _, tc := range []struct {
		rule, dataset string
		want          bool
	}{
		{"", "pts", true},
		{"*", "pts", true},
		{"pts", "pts", true},
		{"pts", "other", false},
	} {
		e := Experiment{Dataset: tc.rule}
		if got := e.matches(tc.dataset); got != tc.want {
			t.Errorf("rule %q vs dataset %q: got %v, want %v", tc.rule, tc.dataset, got, tc.want)
		}
	}
}
