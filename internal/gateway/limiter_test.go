package gateway

import (
	"testing"
	"time"
)

func TestBucketBurstThenShed(t *testing.T) {
	b := newBucket(10, 2)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	ok, retryAfter := b.take()
	if ok {
		t.Fatal("take succeeded past burst")
	}
	if retryAfter < time.Second {
		t.Fatalf("sub-second Retry-After %v not rounded up", retryAfter)
	}
}

func TestBucketRefills(t *testing.T) {
	b := newBucket(1000, 1)
	if ok, _ := b.take(); !ok {
		t.Fatal("first take refused")
	}
	deadline := time.Now().Add(time.Second)
	for {
		if ok, _ := b.take(); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled at 1000/s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBucketZeroRateUnlimited(t *testing.T) {
	b := newBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("unlimited bucket refused take %d", i)
		}
	}
}

func TestBucketSetLimitsClampsFill(t *testing.T) {
	b := newBucket(1, 10)
	b.setLimits(1, 1)
	if ok, _ := b.take(); !ok {
		t.Fatal("take refused after shrink")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("shrink to burst 1 left more than one token")
	}
	b.setLimits(0, 0)
	if ok, _ := b.take(); !ok {
		t.Fatal("reload to unlimited still limited")
	}
}
