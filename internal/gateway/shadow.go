package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"simjoin/internal/obsv/querylog"
)

// defaultShadowWorkers bounds concurrently running shadow requests;
// beyond it shadows are dropped (counted), never queued — shadow
// traffic must not be able to back-pressure live traffic.
const defaultShadowWorkers = 4

// shadowTimeout bounds one shadow run. Candidates slower than this are
// recorded as mismatches of kind "timeout" — a candidate engine that
// can't answer inside it has already failed the experiment.
const shadowTimeout = 60 * time.Second

// armResult is what the differ compares: the pair volume, an order-
// independent checksum over the pair set, and how long the arm took.
// checksumOK is false when the response carried no comparable pair set
// (degraded or truncated answers), in which case only totals diff.
type armResult struct {
	pairs      int64
	checksum   uint64
	checksumOK bool
	latency    time.Duration
}

// parseArmResult extracts an armResult from a (non-streamed) join
// response body. The checksum XORs a hash of each pair, so it is
// insensitive to pair order — worker and coordinator answers order
// pairs differently — but pins the exact pair set.
func parseArmResult(body []byte, latency time.Duration) (armResult, error) {
	var resp struct {
		Pairs     [][2]int64 `json:"pairs"`
		Total     int64      `json:"total"`
		Truncated bool       `json:"truncated"`
		Degraded  bool       `json:"degraded"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return armResult{}, fmt.Errorf("parsing join response: %w", err)
	}
	r := armResult{pairs: resp.Total, latency: latency}
	if !resp.Truncated && !resp.Degraded {
		r.checksumOK = true
		for _, p := range resp.Pairs {
			r.checksum ^= pairHash(p[0], p[1])
		}
	}
	return r, nil
}

// pairHash hashes one result pair position-sensitively (i and j live in
// different index spaces for two-set joins, so no normalization).
func pairHash(i, j int64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for k := 0; k < 8; k++ {
		buf[k] = byte(uint64(i) >> (8 * k))
		buf[8+k] = byte(uint64(j) >> (8 * k))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// differ runs shadow requests against candidate arms and diffs them
// against the incumbent's answer, asynchronously and under a bounded
// worker pool.
type differ struct {
	g   *Gateway
	sem chan struct{}
	wg  sync.WaitGroup
}

func newDiffer(g *Gateway, workers int) *differ {
	if workers <= 0 {
		workers = defaultShadowWorkers
	}
	return &differ{g: g, sem: make(chan struct{}, workers)}
}

// shadow fires one candidate run for a completed incumbent request.
// body is the candidate's (already overridden) request payload; inc the
// incumbent's parsed result. Never blocks: if every shadow worker is
// busy the run is dropped and counted.
func (d *differ) shadow(exp, url string, body []byte, tenant, dataset, kind string, inc armResult) {
	select {
	case d.sem <- struct{}{}:
	default:
		d.g.m.shadowDropped.Inc()
		return
	}
	d.wg.Add(1)
	go func() {
		defer func() { <-d.sem; d.wg.Done() }()
		d.run(exp, url, body, tenant, dataset, kind, inc)
	}()
}

// run executes the candidate request and records the diff.
func (d *differ) run(exp, url string, body []byte, tenant, dataset, kind string, inc armResult) {
	ctx, cancel := context.WithTimeout(context.Background(), shadowTimeout)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		d.record(exp, tenant, dataset, kind, fmt.Sprintf("building shadow request: %v", err), inc, armResult{})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.g.rc.DoStream(ctx, req)
	if err != nil {
		d.record(exp, tenant, dataset, kind, fmt.Sprintf("shadow request failed: %v", err), inc, armResult{})
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, d.g.maxBody*64))
	latency := time.Since(start)
	d.g.m.armRequests.With(exp, armCandidate).Inc()
	d.g.m.armLatency.With(exp, armCandidate).Observe(latency.Seconds())
	if err != nil {
		d.record(exp, tenant, dataset, kind, fmt.Sprintf("reading shadow response: %v", err), inc, armResult{})
		return
	}
	if resp.StatusCode != http.StatusOK {
		d.record(exp, tenant, dataset, kind, fmt.Sprintf("shadow status %d: %s", resp.StatusCode, truncate(respBody, 200)), inc, armResult{})
		return
	}
	cand, err := parseArmResult(respBody, latency)
	if err != nil {
		d.record(exp, tenant, dataset, kind, err.Error(), inc, armResult{})
		return
	}
	diff := ""
	switch {
	case cand.pairs != inc.pairs:
		diff = fmt.Sprintf("pair count mismatch: incumbent %d, candidate %d", inc.pairs, cand.pairs)
	case inc.checksumOK && cand.checksumOK && cand.checksum != inc.checksum:
		diff = fmt.Sprintf("pair checksum mismatch at equal count %d: incumbent %x, candidate %x", inc.pairs, inc.checksum, cand.checksum)
	}
	d.record(exp, tenant, dataset, kind, diff, inc, cand)
}

// record finalizes one shadow comparison: the diff counter always, the
// mismatch counter and a pinned-worthy journal record when the arms
// disagreed.
func (d *differ) record(exp, tenant, dataset, kind, diff string, inc, cand armResult) {
	d.g.m.shadowDiffs.With(exp).Inc()
	if diff == "" {
		return
	}
	d.g.m.shadowMismatch.With(exp).Inc()
	rec := querylog.Record{
		Kind:           "shadow",
		Dataset:        dataset,
		Algorithm:      exp,
		EstimatedPairs: inc.pairs,
		ActualPairs:    cand.pairs,
		ElapsedNS:      int64(cand.latency),
		Outcome:        querylog.OutcomeError,
		Error:          fmt.Sprintf("experiment %q tenant %q %s: %s", exp, tenant, kind, diff),
	}
	d.g.qlog.Add(rec)
	if d.g.log != nil {
		d.g.log.Warn("shadow mismatch", "experiment", exp, "tenant", tenant,
			"dataset", dataset, "kind", kind, "diff", diff,
			"incumbent_pairs", inc.pairs, "candidate_pairs", cand.pairs)
	}
}

// truncate clips a response body for an error message.
func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
