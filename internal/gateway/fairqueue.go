package gateway

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// errTenantBusy is returned when a tenant is already at its in-flight
// cap; the request is shed immediately (429) rather than queued, so one
// tenant cannot occupy the queue either.
var errTenantBusy = errors.New("tenant at max_in_flight")

// fairQueue admits at most `slots` concurrently proxied queries and,
// under contention, releases waiters in weighted-fair order: each
// waiting request is stamped with a virtual finish time advancing the
// tenant's clock by 1/weight, and the smallest stamp runs next. A
// weight-4 tenant therefore drains four requests for every one of a
// weight-1 tenant while both are backlogged, and an idle tenant's first
// request is never penalized for the backlog of others (its clock is
// pulled up to the queue's virtual now).
type fairQueue struct {
	mu    sync.Mutex
	slots int // global concurrent admissions; <= 0 = unlimited
	busy  int
	vtime float64
	wait  waiterHeap
}

// waiter is one queued request.
type waiter struct {
	tag   float64
	ready chan struct{}
	index int // heap position; -1 once released or abandoned
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].tag < h[j].tag }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index, h[j].index = i, j }
func (h *waiterHeap) Push(x any)        { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

func newFairQueue(slots int) *fairQueue { return &fairQueue{slots: slots} }

// queued reports the number of requests currently waiting for a slot.
func (q *fairQueue) queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.wait)
}

// acquire admits one request for tenant rt, blocking in weighted-fair
// order when all slots are busy. The returned release func must be
// called exactly once. It fails fast with errTenantBusy at the tenant's
// in-flight cap and with ctx.Err() if the caller gives up while queued.
func (q *fairQueue) acquire(ctx context.Context, rt *tenantRT) (func(), error) {
	q.mu.Lock()
	if !rt.tryAdmit() {
		q.mu.Unlock()
		return nil, errTenantBusy
	}
	if q.slots <= 0 || q.busy < q.slots {
		q.busy++
		q.mu.Unlock()
		return func() { q.release(rt) }, nil
	}
	w := &waiter{tag: rt.nextTag(q.vtime), ready: make(chan struct{})}
	heap.Push(&q.wait, w)
	q.mu.Unlock()

	select {
	case <-w.ready:
		return func() { q.release(rt) }, nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.index >= 0 {
			heap.Remove(&q.wait, w.index)
			rt.leave()
			q.mu.Unlock()
			return nil, ctx.Err()
		}
		// Lost the race: a release already granted us the slot. Hand it
		// straight back so the count stays balanced.
		q.mu.Unlock()
		q.release(rt)
		return nil, ctx.Err()
	}
}

// release frees one slot and wakes the smallest-tag waiter, advancing
// the queue's virtual clock to that waiter's stamp.
func (q *fairQueue) release(rt *tenantRT) {
	q.mu.Lock()
	rt.leave()
	if len(q.wait) > 0 {
		w := heap.Pop(&q.wait).(*waiter)
		if w.tag > q.vtime {
			q.vtime = w.tag
		}
		close(w.ready)
		// The slot transfers to the waiter; busy is unchanged.
		q.mu.Unlock()
		return
	}
	q.busy--
	q.mu.Unlock()
}
