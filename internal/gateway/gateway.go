package gateway

import (
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"simjoin/internal/obsv"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
	"simjoin/internal/rclient"
)

// DefaultMaxBodyBytes bounds the join/query request bodies the gateway
// buffers for inspection (experiment override injection, pricing).
// Upload bodies are never buffered — they stream through — so this only
// needs to fit query parameter objects.
const DefaultMaxBodyBytes = 1 << 20

// DefaultQueueSlots is the global concurrent-query admission cap when
// Options.QueueSlots is zero.
const DefaultQueueSlots = 64

// Options configures New.
type Options struct {
	// Backends are the base URLs the gateway fronts: one coordinator,
	// or a flat worker fleet (dataset-affine rendezvous routing).
	Backends []string
	// Client is the retrying HTTP client for gateway-internal calls
	// (pricing, health, trace stitching); nil gets a default.
	Client *rclient.Client
	// Logger, when non-nil, receives one access-log line per request.
	Logger *slog.Logger
	// Tracer retains completed gateway traces; nil gets a default ring.
	Tracer *trace.Tracer
	// MaxBody bounds buffered query bodies (DefaultMaxBodyBytes if 0).
	MaxBody int64
	// QueueSlots caps globally concurrent proxied queries
	// (DefaultQueueSlots if 0; < 0 = unlimited).
	QueueSlots int
	// ShadowWorkers bounds concurrently running shadow requests
	// (defaultShadowWorkers if 0).
	ShadowWorkers int
	// Build is the binary identity block reported by /healthz.
	Build any
}

// tenantRT is one tenant's runtime state. It outlives config reloads:
// a reload updates limits in place (never replaces the object), so
// requests already admitted under the old limits release cleanly and
// bucket fill / fair-queue clocks survive the swap.
type tenantRT struct {
	name   string
	bucket *bucket

	// maxPairs is the admission budget, swapped atomically on reload.
	maxPairs atomic.Int64

	// The fields below are guarded by the gateway fair queue's mutex.
	inflight    int
	maxInFlight int
	weight      float64
	lastTag     float64
}

// tryAdmit counts the request against the tenant's in-flight cap.
// Called under the fair queue's lock.
func (rt *tenantRT) tryAdmit() bool {
	if rt.maxInFlight > 0 && rt.inflight >= rt.maxInFlight {
		return false
	}
	rt.inflight++
	return true
}

// leave undoes tryAdmit. Called under the fair queue's lock.
func (rt *tenantRT) leave() { rt.inflight-- }

// nextTag stamps a queued request with the tenant's next virtual finish
// time. Called under the fair queue's lock.
func (rt *tenantRT) nextTag(vnow float64) float64 {
	w := rt.weight
	if w <= 0 {
		w = 1
	}
	start := rt.lastTag
	if vnow > start {
		start = vnow
	}
	rt.lastTag = start + 1/w
	return rt.lastTag
}

// Gateway is the multi-tenant reverse proxy. Create with New, serve
// Handler().
type Gateway struct {
	backends []string
	rc       *rclient.Client
	log      *slog.Logger
	tracer   *trace.Tracer
	qlog     *querylog.Log
	m        *gwMetrics
	queue    *fairQueue
	differ   *differ
	maxBody  int64
	build    any

	// cfgMu guards the key→tenant index, the name→tenant index and the
	// experiment list; all three are swapped together on reload.
	cfgMu   sync.RWMutex
	byKey   map[string]*tenantRT
	byName  map[string]*tenantRT
	exps    []Experiment
	reloads atomic.Int64

	// cfgPath + cfgStamp drive Reload/WatchConfig for file-backed
	// configs.
	cfgPath  string
	stampMu  sync.Mutex
	cfgStamp time.Time
}

// New returns a gateway over the given backends with an empty tenant
// set; install one with SetConfig or LoadConfigFile before serving.
func New(opts Options) (*Gateway, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gateway needs at least one backend")
	}
	g := &Gateway{
		backends: opts.Backends,
		rc:       opts.Client,
		log:      opts.Logger,
		tracer:   opts.Tracer,
		qlog:     querylog.New(0),
		maxBody:  opts.MaxBody,
		build:    opts.Build,
		byKey:    map[string]*tenantRT{},
		byName:   map[string]*tenantRT{},
	}
	if g.rc == nil {
		g.rc = rclient.New()
	}
	if g.tracer == nil {
		g.tracer = trace.New(128)
	}
	if g.maxBody <= 0 {
		g.maxBody = DefaultMaxBodyBytes
	}
	slots := opts.QueueSlots
	if slots == 0 {
		slots = DefaultQueueSlots
	}
	g.queue = newFairQueue(slots)
	g.m = newGWMetrics(g)
	g.differ = newDiffer(g, opts.ShadowWorkers)
	return g, nil
}

// Registry exposes the gateway's metric registry (the /metrics payload).
func (g *Gateway) Registry() *obsv.Registry { return g.m.reg }

// Journal exposes the gateway's query journal (shed and mismatched
// requests), served at /debug/queries.
func (g *Gateway) Journal() *querylog.Log { return g.qlog }

// Tracer exposes the gateway's trace ring.
func (g *Gateway) Tracer() *trace.Tracer { return g.tracer }

// Reloads reports how many config swaps have been applied.
func (g *Gateway) Reloads() int64 { return g.reloads.Load() }

// SetConfig atomically swaps the tenant and experiment config. Tenants
// whose name survives keep their runtime state (bucket fill, in-flight
// count, fair-queue clock) with the new limits applied in place;
// requests in flight under a removed tenant finish normally — only new
// requests see the new key set.
func (g *Gateway) SetConfig(cfg *Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	byKey := make(map[string]*tenantRT, len(cfg.Tenants))
	byName := make(map[string]*tenantRT, len(cfg.Tenants))

	g.cfgMu.Lock()
	for _, t := range cfg.Tenants {
		rt := g.byName[t.Name]
		if rt == nil {
			rt = &tenantRT{name: t.Name, bucket: newBucket(t.RatePerSec, t.Burst)}
		} else {
			rt.bucket.setLimits(t.RatePerSec, t.Burst)
		}
		rt.maxPairs.Store(t.MaxPairs)
		// In-flight counts and fair-queue clocks live under the queue
		// lock; update the limits there so admission never reads a
		// half-applied tenant.
		g.queue.mu.Lock()
		rt.maxInFlight = t.MaxInFlight
		rt.weight = t.Weight
		g.queue.mu.Unlock()
		byKey[t.Key] = rt
		byName[t.Name] = rt
	}
	g.byKey = byKey
	g.byName = byName
	g.exps = append([]Experiment(nil), cfg.Experiments...)
	g.cfgMu.Unlock()
	g.reloads.Add(1)
	return nil
}

// LoadConfigFile loads, validates and installs a config file, and
// remembers the path for Reload/WatchConfig.
func (g *Gateway) LoadConfigFile(path string) error {
	cfg, err := LoadConfig(path)
	if err != nil {
		return err
	}
	if err := g.SetConfig(cfg); err != nil {
		return err
	}
	g.stampMu.Lock()
	g.cfgPath = path
	if fi, err := os.Stat(path); err == nil {
		g.cfgStamp = fi.ModTime()
	}
	g.stampMu.Unlock()
	return nil
}

// Reload re-reads the config file installed by LoadConfigFile. A
// parse or validation failure leaves the running config untouched.
func (g *Gateway) Reload() error {
	g.stampMu.Lock()
	path := g.cfgPath
	g.stampMu.Unlock()
	if path == "" {
		return fmt.Errorf("no config file to reload")
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		return err
	}
	return g.SetConfig(cfg)
}

// maybeReload reloads iff the config file's mtime moved since the last
// load — the body of one WatchConfig poll tick.
func (g *Gateway) maybeReload() {
	g.stampMu.Lock()
	path, stamp := g.cfgPath, g.cfgStamp
	g.stampMu.Unlock()
	if path == "" {
		return
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.ModTime().After(stamp) {
		return
	}
	g.stampMu.Lock()
	g.cfgStamp = fi.ModTime()
	g.stampMu.Unlock()
	if err := g.Reload(); err != nil {
		if g.log != nil {
			g.log.Error("gateway config reload failed; keeping previous config", "path", path, "error", err)
		}
		return
	}
	if g.log != nil {
		g.log.Info("gateway config reloaded", "path", path, "tenants", g.tenantCount())
	}
}

// WatchConfig polls the config file's mtime every interval and reloads
// on change, until stop is closed. SIGHUP-driven reloads (wired by the
// daemon) and the poll share Reload, so both paths swap atomically.
func (g *Gateway) WatchConfig(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			g.maybeReload()
		}
	}
}

// lookup resolves an API key to its tenant.
func (g *Gateway) lookup(key string) (*tenantRT, bool) {
	if key == "" {
		return nil, false
	}
	g.cfgMu.RLock()
	rt, ok := g.byKey[key]
	g.cfgMu.RUnlock()
	return rt, ok
}

// tenantCount reports the configured tenant count.
func (g *Gateway) tenantCount() int {
	g.cfgMu.RLock()
	defer g.cfgMu.RUnlock()
	return len(g.byName)
}

// experiments snapshots the current rule list.
func (g *Gateway) experiments() []Experiment {
	g.cfgMu.RLock()
	defer g.cfgMu.RUnlock()
	return g.exps
}

// ShadowDrain blocks until every in-flight shadow request has finished
// diffing — test and shutdown hygiene so async work is not lost.
func (g *Gateway) ShadowDrain() { g.differ.wg.Wait() }
