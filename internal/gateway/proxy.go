package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
)

// Handler wires the gateway's routes: the full worker/coordinator REST
// surface proxied behind tenancy, plus the gateway's own health, metric
// and debug endpoints. Debug and scrape routes sit outside the
// instrument middleware for the same reason they do on the backends —
// scraping must not mint traffic.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, g.instrument(pattern, h))
	}
	handle("GET /healthz", g.handleHealthz)
	handle("GET /datasets", g.handleListDatasets)
	handle("GET /datasets/{name}", g.proxyLight)
	handle("GET /datasets/{name}/explain", g.proxyLight)
	handle("DELETE /datasets/{name}", g.proxyLight)
	handle("PUT /datasets/{name}", g.proxyUpload)
	handle("POST /datasets/{name}/points", g.proxyUpload)
	handle("POST /datasets/{name}/watch", g.proxyWatch)
	handle("POST /datasets/{name}/selfjoin", g.handleSelfJoin)
	handle("POST /datasets/{name}/range", g.handleSimpleQuery)
	handle("POST /datasets/{name}/knn", g.handleSimpleQuery)
	handle("POST /join", g.handleJoin)
	mux.Handle("GET /metrics", g.m.reg.Handler())
	mux.HandleFunc("GET /debug/traces", g.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", g.handleStitchedTrace)
	mux.HandleFunc("GET /debug/queries", g.handleQueries)
	return mux
}

// instrument is the gateway's request middleware: a server span
// (continuing the caller's traceparent when present), per-route
// request/error/latency metrics, and one structured access-log line.
func (g *Gateway) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := g.tracer.StartRemote("gw "+pattern, r.Header.Get("traceparent"))
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		if sp != nil {
			r = r.WithContext(trace.NewContext(r.Context(), sp))
		}
		g.m.httpRequests.With(pattern).Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		g.m.httpLatency.With(pattern).Observe(elapsed.Seconds())
		if sw.status >= 400 {
			g.m.httpErrors.With(pattern).Inc()
		}
		sp.SetAttr("status", strconv.Itoa(sw.status))
		sp.End()
		if g.log == nil {
			return
		}
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("route", pattern),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
		}
		if sp != nil {
			attrs = append(attrs,
				slog.String("trace_id", sp.TraceID().String()),
				slog.String("span_id", sp.SpanID().String()))
		}
		g.log.Log(r.Context(), level, "gateway request", attrs...)
	}
}

// statusWriter mirrors the daemon's response recorder: status for the
// error counter, Flush/Unwrap passthrough for streamed proxying.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// httpError writes a JSON error with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// apiKey extracts the presented API key: "Authorization: Bearer <key>"
// wins, "X-Api-Key: <key>" is the fallback.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
		return ""
	}
	return r.Header.Get("X-Api-Key")
}

// authenticate resolves the request's tenant, answering 401 itself on a
// missing or unknown key.
func (g *Gateway) authenticate(w http.ResponseWriter, r *http.Request) (*tenantRT, bool) {
	rt, ok := g.lookup(apiKey(r))
	if !ok {
		g.m.shed.With("", "auth").Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="simjoin-gateway"`)
		httpError(w, http.StatusUnauthorized, "missing or unknown API key")
		return nil, false
	}
	g.m.requests.With(rt.name).Inc()
	if sp := trace.FromContext(r.Context()); sp != nil {
		sp.SetAttr("tenant", rt.name)
	}
	return rt, true
}

// shedResponse answers 429 with a Retry-After header and a JSON body
// naming the reason, and journals the refusal. extra merges additional
// fields (the estimate contract) into the body.
func (g *Gateway) shedResponse(w http.ResponseWriter, rt *tenantRT, kind, dataset, reason string, retryAfter time.Duration, msg string, extra map[string]any) {
	g.m.shed.With(rt.name, reason).Inc()
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	body := map[string]any{
		"error":               msg,
		"reason":              reason,
		"tenant":              rt.name,
		"retry_after_seconds": secs,
	}
	for k, v := range extra {
		body[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(body)
	g.qlog.Add(querylog.Record{
		Kind: kind, Dataset: dataset, EstimatedPairs: -1,
		Outcome: querylog.OutcomeRejected,
		Error:   fmt.Sprintf("tenant %q shed (%s): %s", rt.name, reason, msg),
	})
}

// admitRate charges the tenant's token bucket, shedding on exhaustion.
func (g *Gateway) admitRate(w http.ResponseWriter, rt *tenantRT, kind, dataset string) bool {
	ok, retryAfter := rt.bucket.take()
	if !ok {
		g.shedResponse(w, rt, kind, dataset, "rate", retryAfter,
			fmt.Sprintf("tenant %q rate limit exceeded", rt.name), nil)
		return false
	}
	return true
}

// admitQueue acquires a fair-queue slot, shedding when the tenant is at
// its in-flight cap and mapping a client disconnect while queued to 503.
// The returned release func must be called exactly once when non-nil.
func (g *Gateway) admitQueue(w http.ResponseWriter, r *http.Request, rt *tenantRT, kind, dataset string) (func(), bool) {
	start := time.Now()
	release, err := g.queue.acquire(r.Context(), rt)
	if err != nil {
		if err == errTenantBusy {
			g.shedResponse(w, rt, kind, dataset, "inflight", time.Second,
				fmt.Sprintf("tenant %q already has max_in_flight queries running", rt.name), nil)
		} else {
			g.m.shed.With(rt.name, "queue").Inc()
			httpError(w, http.StatusServiceUnavailable, "request abandoned while queued: %v", err)
		}
		return nil, false
	}
	g.m.queueWait.Observe(time.Since(start).Seconds())
	return release, true
}

// backendFor picks the backend a dataset lives behind by rendezvous
// (highest-random-weight) hashing, so a flat worker fleet gets stable
// dataset affinity without a shard map and a single coordinator backend
// degenerates to "always backend 0". An empty dataset name also maps to
// backend 0 (fleet-level routes).
func (g *Gateway) backendFor(dataset string) string {
	if len(g.backends) == 1 || dataset == "" {
		return g.backends[0]
	}
	best, bestScore := g.backends[0], uint64(0)
	for _, b := range g.backends {
		h := fnv.New64a()
		io.WriteString(h, b)
		h.Write([]byte{0})
		io.WriteString(h, dataset)
		if s := mix64(h.Sum64()); s >= bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// price asks the backend for a predicted self-join size and compares it
// to the tenant's budget. A pricing failure admits — an unreachable
// estimate endpoint must not turn into an outage — mirroring the
// coordinator's own admission contract.
func (g *Gateway) price(r *http.Request, backend, dataset string, eps float64, metric string, budget int64) (est int64, over bool) {
	g.m.priced.Inc()
	url := fmt.Sprintf("%s/datasets/%s?eps=%s", backend, dataset, strconv.FormatFloat(eps, 'g', -1, 64))
	if metric != "" {
		url += "&metric=" + metric
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return -1, false
	}
	resp, err := g.rc.Do(r.Context(), req)
	if err != nil {
		return -1, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return -1, false
	}
	var out struct {
		Estimate *struct {
			Pairs int64 `json:"pairs"`
		} `json:"estimate"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil || out.Estimate == nil {
		return -1, false
	}
	return out.Estimate.Pairs, out.Estimate.Pairs > budget
}

// joinBody is the subset of a join request the gateway inspects; the
// full body is kept as a generic map so unknown fields pass through.
type joinBody struct {
	m      map[string]any
	raw    []byte
	eps    float64
	metric string
	stream bool
	a      string // two-set joins: the routing dataset
}

// readJoinBody buffers and decodes a join request body, answering the
// HTTP error itself on failure.
func (g *Gateway) readJoinBody(w http.ResponseWriter, r *http.Request) (*joinBody, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return nil, false
	}
	jb := &joinBody{m: m, raw: raw}
	if v, ok := m["eps"].(float64); ok {
		jb.eps = v
	}
	if v, ok := m["metric"].(string); ok {
		jb.metric = v
	}
	if v, ok := m["stream"].(bool); ok {
		jb.stream = v
	}
	if v, ok := m["a"].(string); ok {
		jb.a = v
	}
	return jb, true
}

// handleSelfJoin and handleJoin are the experiment-aware proxy paths.
func (g *Gateway) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	g.proxyJoin(w, r, "selfjoin", r.PathValue("name"))
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	g.proxyJoin(w, r, "join", "")
}

// proxyJoin is the full admission + experiment pipeline for join
// queries: authenticate, rate-limit, price against the tenant budget,
// fair-queue, route to an arm, proxy, and shadow if assigned.
func (g *Gateway) proxyJoin(w http.ResponseWriter, r *http.Request, kind, dataset string) {
	rt, ok := g.authenticate(w, r)
	if !ok {
		return
	}
	jb, ok := g.readJoinBody(w, r)
	if !ok {
		return
	}
	if kind == "join" {
		dataset = jb.a
	}
	if !g.admitRate(w, rt, kind, dataset) {
		return
	}
	backend := g.backendFor(dataset)

	// Estimate-priced shedding: self-joins only — the backend estimate
	// endpoint predicts self-join sizes. A request already over budget
	// never occupies a queue slot.
	if budget := rt.maxPairs.Load(); budget > 0 && kind == "selfjoin" && jb.eps > 0 {
		if est, over := g.price(r, backend, dataset, jb.eps, jb.metric, budget); over {
			g.shedResponse(w, rt, kind, dataset, "estimate", time.Second,
				fmt.Sprintf("estimated result size %d exceeds tenant %q max_pairs budget %d; narrow eps", est, rt.name, budget),
				map[string]any{"estimated_pairs": est, "max_pairs": budget})
			return
		}
	}

	release, ok := g.admitQueue(w, r, rt, kind, dataset)
	if !ok {
		return
	}
	defer release()

	d := g.route(rt.name, dataset, r.Header.Get(StickyHeader))
	arm := armIncumbent
	body := jb.raw
	if d.exp != "" && d.candidate && !d.shadow {
		applyOverride(jb.m, d.override)
		rewritten, err := encodeBody(jb.m)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		body = rewritten
		arm = armCandidate
	}
	if sp := trace.FromContext(r.Context()); sp != nil && d.exp != "" {
		sp.SetAttr("experiment", d.exp)
		sp.SetAttr("arm", arm)
	}

	url := backend + r.URL.Path
	if jb.stream {
		// Streamed answers flow through; shadow diffing needs a parsed
		// result, so streams only get per-arm latency accounting.
		latency, _ := g.proxyPost(w, r, url, body, true)
		g.observeArm(d.exp, arm, latency)
		return
	}
	latency, resp := g.proxyPost(w, r, url, body, false)
	g.observeArm(d.exp, arm, latency)
	if d.exp != "" && d.candidate && d.shadow && resp != nil && resp.status == http.StatusOK {
		inc, err := parseArmResult(resp.body, latency)
		if err == nil {
			applyOverride(jb.m, d.override)
			if candBody, err := encodeBody(jb.m); err == nil {
				g.differ.shadow(d.exp, url, candBody, rt.name, dataset, kind, inc)
			}
		}
	}
}

// observeArm charges one proxied join to the experiment arm families
// ("none"/incumbent when no rule matched, so totals stay comparable).
func (g *Gateway) observeArm(exp, arm string, latency time.Duration) {
	if exp == "" {
		exp = "none"
	}
	g.m.armRequests.With(exp, arm).Inc()
	g.m.armLatency.With(exp, arm).Observe(latency.Seconds())
}

// bufferedResponse is a non-streamed backend answer the gateway relayed
// and kept for shadow diffing.
type bufferedResponse struct {
	status int
	body   []byte
}

// proxyPost forwards a buffered-body POST to the backend. In stream
// mode the response is copied through with flushes and not retained;
// otherwise it is buffered (bounded), relayed, and returned for
// inspection. The returned latency covers the backend call only — queue
// wait is accounted separately.
func (g *Gateway) proxyPost(w http.ResponseWriter, r *http.Request, url string, body []byte, stream bool) (time.Duration, *bufferedResponse) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building backend request: %v", err)
		return 0, nil
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := g.rc.DoStream(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unreachable: %v", err)
		return time.Since(start), nil
	}
	defer resp.Body.Close()
	if stream {
		relayHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		flushCopy(w, resp.Body)
		return time.Since(start), nil
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, g.maxBody*64))
	latency := time.Since(start)
	if err != nil {
		httpError(w, http.StatusBadGateway, "reading backend response: %v", err)
		return latency, nil
	}
	relayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	return latency, &bufferedResponse{status: resp.StatusCode, body: respBody}
}

// relayHeaders copies the response headers a client contract depends
// on.
func relayHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", "Content-Length"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// flushCopy streams src to w, flushing after every read so NDJSON lines
// reach the client as the backend emits them.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleSimpleQuery proxies range/KNN queries: authenticated,
// rate-limited and fair-queued, but never priced or experiment-routed —
// point queries are cheap and engine-independent.
func (g *Gateway) handleSimpleQuery(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.authenticate(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	kind := "range"
	if strings.HasSuffix(r.URL.Path, "/knn") {
		kind = "knn"
	}
	if !g.admitRate(w, rt, kind, name) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	release, ok := g.admitQueue(w, r, rt, kind, name)
	if !ok {
		return
	}
	defer release()
	g.proxyPost(w, r, g.backendFor(name)+r.URL.Path, body, false)
}

// proxyLight forwards body-less dataset routes (metadata, explain,
// delete) behind auth + rate limit.
func (g *Gateway) proxyLight(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.authenticate(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if !g.admitRate(w, rt, strings.ToLower(r.Method), name) {
		return
	}
	url := g.backendFor(name) + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building backend request: %v", err)
		return
	}
	resp, err := g.rc.Do(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	relayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, g.maxBody*64))
}

// proxyUpload streams mutation bodies (PUT dataset, append points)
// straight through to the backend — no buffering, no retries — so
// uploads are bounded by the backend's -max-body-bytes, not the
// gateway's query-body cap.
func (g *Gateway) proxyUpload(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.authenticate(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if !g.admitRate(w, rt, strings.ToLower(r.Method), name) {
		return
	}
	url := g.backendFor(name) + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building backend request: %v", err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.ContentLength = r.ContentLength
	resp, err := g.rc.DoStream(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	relayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// proxyWatch passes a standing-query watch stream through: rate-limited
// on entry but exempt from the fair queue (a watch is a long-lived
// subscription, not a unit of query work — it would pin a slot
// forever).
func (g *Gateway) proxyWatch(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.authenticate(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if !g.admitRate(w, rt, "watch", name) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	g.proxyPost(w, r, g.backendFor(name)+r.URL.Path, body, true)
}

// handleListDatasets merges GET /datasets across every backend (a flat
// fleet holds disjoint datasets; a single coordinator is just a 1-way
// merge), deduplicating by name.
func (g *Gateway) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	if _, ok := g.authenticate(w, r); !ok {
		return
	}
	type info struct {
		Name string `json:"name"`
		Len  int    `json:"len"`
		Dims int    `json:"dims"`
	}
	seen := map[string]bool{}
	out := []info{}
	for _, b := range g.backends {
		resp, err := g.rc.Get(r.Context(), b+"/datasets")
		if err != nil {
			continue
		}
		var list []info
		err = json.NewDecoder(io.LimitReader(resp.Body, g.maxBody)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, d := range list {
			if !seen[d.Name] {
				seen[d.Name] = true
				out = append(out, d)
			}
		}
	}
	writeJSON(w, out)
}

// handleHealthz reports the gateway as live plus each backend's health:
// "ok" only when every backend answered 200.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type backendHealth struct {
		URL   string `json:"url"`
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
	}
	status := "ok"
	backends := make([]backendHealth, len(g.backends))
	for i, b := range g.backends {
		backends[i] = backendHealth{URL: b}
		resp, err := g.rc.Get(r.Context(), b+"/healthz")
		if err != nil {
			backends[i].Error = err.Error()
			status = "degraded"
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			backends[i].Error = fmt.Sprintf("status %d", resp.StatusCode)
			status = "degraded"
			continue
		}
		backends[i].OK = true
	}
	writeJSON(w, map[string]any{
		"status":   status,
		"mode":     "gateway",
		"tenants":  g.tenantCount(),
		"reloads":  g.Reloads(),
		"backends": backends,
		"build":    g.build,
	})
}

// handleTraces serves the gateway's own retained traces (?trace=,
// ?limit= filters), bare-array shaped like every tier's.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := g.tracer.Traces()
	for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
		traces[i], traces[j] = traces[j], traces[i]
	}
	if want := r.URL.Query().Get("trace"); want != "" {
		kept := traces[:0]
		for _, td := range traces {
			if td.TraceID == want {
				kept = append(kept, td)
			}
		}
		traces = kept
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", v)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	if traces == nil {
		traces = []trace.TraceData{}
	}
	writeJSON(w, traces)
}

// handleStitchedTrace assembles GET /debug/traces/{id} across the whole
// stack: the gateway's own spans plus each backend's /debug/traces/{id}
// answer — which, on a coordinator, is itself already stitched across
// its workers — merged into one distributed span tree.
func (g *Gateway) handleStitchedTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	type source struct {
		URL   string `json:"url"`
		Error string `json:"error,omitempty"`
	}
	sets := [][]trace.SpanData{trace.Collect(g.tracer.Traces(), id)}
	sources := make([]source, len(g.backends))
	for i, b := range g.backends {
		sources[i] = source{URL: b}
		resp, err := g.rc.Get(r.Context(), b+"/debug/traces/"+id)
		if err != nil {
			sources[i].Error = err.Error()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			continue
		}
		var td trace.TraceData
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&td)
		resp.Body.Close()
		if err != nil {
			sources[i].Error = err.Error()
			continue
		}
		sets = append(sets, td.Spans)
	}
	st := trace.Stitch(id, sets...)
	if len(st.Spans) == 0 {
		httpError(w, http.StatusNotFound, "no trace %q retained anywhere behind the gateway", id)
		return
	}
	writeJSON(w, map[string]any{
		"trace_id": st.TraceID,
		"spans":    st.Spans,
		"sources":  sources,
	})
}

// handleQueries serves the gateway's journal: shed requests and shadow
// mismatches, newest first, with the backend tiers' filter surface.
func (g *Gateway) handleQueries(w http.ResponseWriter, r *http.Request) {
	f := querylog.Filter{Dataset: r.URL.Query().Get("dataset")}
	if v := r.URL.Query().Get("slow"); v == "1" || v == "true" {
		f.SlowOnly = true
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", v)
			return
		}
		f.Limit = n
	}
	total, slow := g.qlog.Totals()
	q := g.qlog.Snapshot(f)
	if q == nil {
		q = []querylog.Record{}
	}
	writeJSON(w, map[string]any{"total": total, "slow": slow, "queries": q})
}
