package gateway

import (
	"context"
	"net/http"
	"time"

	"simjoin/internal/obsv"
)

// gwMetrics is the gateway's Prometheus surface: the per-route HTTP
// families every simjoind tier has, plus the tenant/experiment families
// only a front door can know (who was shed and why, which arm served,
// how shadows diffed).
type gwMetrics struct {
	reg *obsv.Registry

	httpRequests *obsv.CounterVec
	httpErrors   *obsv.CounterVec
	httpLatency  *obsv.HistogramVec

	// requests counts authenticated requests per tenant; unauthorized
	// requests land in the "" tenant of shed instead.
	requests *obsv.CounterVec
	// shed counts refused requests per tenant and reason: "auth",
	// "rate", "inflight", "estimate", "queue".
	shed *obsv.CounterVec2
	// queueWait observes how long admitted queries waited for a fair-
	// queue slot.
	queueWait *obsv.Histogram

	// armRequests/armLatency split experiment traffic by arm
	// (incumbent / candidate); shadow candidate runs are charged here
	// too, so both arms' latency distributions come from live traffic.
	armRequests *obsv.CounterVec2
	armLatency  *obsv.HistogramVec2

	// shadowDiffs counts completed shadow comparisons, shadowMismatch
	// the ones whose pair count or checksum disagreed, shadowDropped
	// the shadow requests skipped because all shadow workers were busy.
	shadowDiffs    *obsv.CounterVec
	shadowMismatch *obsv.CounterVec
	shadowDropped  *obsv.Counter

	// priced counts join queries that went through estimate pricing.
	priced *obsv.Counter
}

// gwHealthProbeTimeout bounds the backend health sweep a /metrics or
// /healthz probe triggers.
const gwHealthProbeTimeout = 2 * time.Second

func newGWMetrics(g *Gateway) *gwMetrics {
	reg := obsv.NewRegistry()
	obsv.NewRuntimeCollector().Register(reg, "simjoin_gw")
	m := &gwMetrics{
		reg:          reg,
		httpRequests: reg.NewCounterVec("simjoin_gw_http_requests_total", "Gateway HTTP requests by route.", "route"),
		httpErrors:   reg.NewCounterVec("simjoin_gw_http_errors_total", "Gateway HTTP responses with status >= 400 by route.", "route"),
		httpLatency:  reg.NewHistogramVec("simjoin_gw_http_request_duration_seconds", "Gateway HTTP request latency by route.", "route", obsv.LatencyBuckets()),

		requests:  reg.NewCounterVec("simjoin_gw_requests_total", "Authenticated gateway requests by tenant.", "tenant"),
		shed:      reg.NewCounterVec2("simjoin_gw_shed_total", "Requests refused by the gateway, by tenant and reason (auth, rate, inflight, estimate, queue).", "tenant", "reason"),
		queueWait: reg.NewHistogram("simjoin_gw_queue_wait_seconds", "Time admitted queries spent waiting for a fair-queue slot.", obsv.LatencyBuckets()),

		armRequests: reg.NewCounterVec2("simjoin_gw_arm_requests_total", "Experiment-routed join requests by experiment and arm.", "experiment", "arm"),
		armLatency:  reg.NewHistogramVec2("simjoin_gw_arm_latency_seconds", "Join latency through the gateway by experiment and arm.", "experiment", "arm", obsv.LatencyBuckets()),

		shadowDiffs:    reg.NewCounterVec("simjoin_gw_shadow_diffs_total", "Completed shadow comparisons by experiment.", "experiment"),
		shadowMismatch: reg.NewCounterVec("simjoin_gw_shadow_mismatch_total", "Shadow comparisons whose pair count or checksum disagreed with the incumbent, by experiment.", "experiment"),
		shadowDropped:  reg.NewCounter("simjoin_gw_shadow_dropped_total", "Shadow requests skipped because all shadow workers were busy."),

		priced: reg.NewCounter("simjoin_gw_priced_total", "Join queries priced against a tenant admission budget via a backend estimate."),
	}
	reg.NewGaugeFunc("simjoin_gw_tenants", "Tenants in the active gateway config.",
		func() float64 { return float64(g.tenantCount()) })
	reg.NewCounterFunc("simjoin_gw_config_reloads_total", "Gateway config swaps applied.",
		g.Reloads)
	reg.NewGaugeFunc("simjoin_gw_queue_depth", "Queries waiting for a fair-queue slot right now.",
		func() float64 { return float64(g.queue.queued()) })
	reg.NewCounterFunc("simjoin_gw_rclient_retries_total", "HTTP retry attempts the gateway's backend client has made.",
		func() int64 { return g.rc.Retries() })
	reg.NewGaugeVecFunc("simjoin_gw_backend_up", "Per-backend health as seen by the gateway (1 = up).", "backend",
		func() map[string]float64 {
			ctx, cancel := context.WithTimeout(context.Background(), gwHealthProbeTimeout)
			defer cancel()
			out := make(map[string]float64, len(g.backends))
			for _, b := range g.backends {
				out[b] = 0
				resp, err := g.rc.Get(ctx, b+"/healthz")
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					out[b] = 1
				}
			}
			return out
		})
	return m
}

// armLabel names the arm a request was served by for the per-arm
// families.
const (
	armIncumbent = "incumbent"
	armCandidate = "candidate"
)
