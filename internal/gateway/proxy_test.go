package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"simjoin/internal/obsv/querylog"
	"simjoin/internal/rclient"
)

// fakeBackend is a scriptable stand-in for a worker/coordinator: it
// answers the estimate, health and join surface and records what the
// gateway sent it.
type fakeBackend struct {
	mu            sync.Mutex
	estimatePairs int64
	joinDelay     time.Duration
	// pairsFor maps forced algorithm → returned pair rows; "" is the
	// default arm.
	pairsFor map[string][][2]int64
	seen     []map[string]any
	srv      *httptest.Server
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	b := &fakeBackend{
		estimatePairs: 100,
		pairsFor:      map[string][][2]int64{"": {{0, 1}, {1, 2}}},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, []map[string]any{{"name": "pts", "len": 100, "dims": 8}})
	})
	mux.HandleFunc("GET /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{"name": r.PathValue("name"), "len": 100, "dims": 8}
		if r.URL.Query().Get("eps") != "" {
			b.mu.Lock()
			out["estimate"] = map[string]any{"pairs": b.estimatePairs}
			b.mu.Unlock()
		}
		writeJSON(w, out)
	})
	join := func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		b.mu.Lock()
		b.seen = append(b.seen, m)
		algo, _ := m["algorithm"].(string)
		pairs, ok := b.pairsFor[algo]
		if !ok {
			pairs = b.pairsFor[""]
		}
		delay := b.joinDelay
		b.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if stream, _ := m["stream"].(bool); stream {
			w.Header().Set("Content-Type", "application/x-ndjson")
			for _, p := range pairs {
				fmt.Fprintf(w, `{"i":%d,"j":%d}`+"\n", p[0], p[1])
			}
			return
		}
		writeJSON(w, map[string]any{"pairs": pairs, "total": len(pairs)})
	}
	mux.HandleFunc("POST /datasets/{name}/selfjoin", join)
	mux.HandleFunc("POST /join", join)
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func (b *fakeBackend) seenBodies() []map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]map[string]any(nil), b.seen...)
}

func (b *fakeBackend) setEstimate(n int64) {
	b.mu.Lock()
	b.estimatePairs = n
	b.mu.Unlock()
}

// bootGateway builds a gateway over the given backends with a fast test
// client and serves it from httptest.
func bootGateway(t *testing.T, cfg *Config, backends ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(Options{
		Backends: backends,
		Client: &rclient.Client{
			MaxRetries: 1,
			BaseDelay:  2 * time.Millisecond,
			MaxDelay:   20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.SetConfig(cfg); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

func doJoin(t *testing.T, gwURL, key, dataset string, body map[string]any, hdr map[string]string) *http.Response {
	t.Helper()
	raw, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, gwURL+"/datasets/"+dataset+"/selfjoin", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	return resp
}

func oneTenant(name, key string, mut func(*Tenant)) *Config {
	tn := Tenant{Name: name, Key: key}
	if mut != nil {
		mut(&tn)
	}
	return &Config{Tenants: []Tenant{tn}}
}

func TestGatewayAuth(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, oneTenant("acme", "sekrit", nil), be.srv.URL)

	resp := doJoin(t, srv.URL, "", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", resp.StatusCode)
	}
	resp = doJoin(t, srv.URL, "wrong", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong key: status %d, want 401", resp.StatusCode)
	}
	resp = doJoin(t, srv.URL, "sekrit", "pts", map[string]any{"eps": 0.5}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good key: status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Total != 2 {
		t.Fatalf("proxied answer total=%d err=%v, want 2", out.Total, err)
	}

	// X-Api-Key is an accepted alternative to Bearer.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/datasets/pts", nil)
	req.Header.Set("X-Api-Key", "sekrit")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("X-Api-Key request: %v", err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("X-Api-Key: status %d, want 200", r2.StatusCode)
	}
}

func TestGatewayRateShed(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, oneTenant("acme", "k", func(tn *Tenant) {
		tn.RatePerSec = 0.0001
		tn.Burst = 2
	}), be.srv.URL)

	for i := 0; i < 2; i++ {
		resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("past burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	var body struct {
		Reason string `json:"reason"`
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding shed body: %v", err)
	}
	if body.Reason != "rate" || body.Tenant != "acme" {
		t.Fatalf("shed body %+v, want reason=rate tenant=acme", body)
	}
}

func TestGatewayEstimateShed(t *testing.T) {
	be := newFakeBackend(t)
	be.setEstimate(5000)
	_, srv := bootGateway(t, oneTenant("acme", "k", func(tn *Tenant) {
		tn.MaxPairs = 1000
	}), be.srv.URL)

	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget join: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("estimate shed carries no Retry-After")
	}
	var body struct {
		Reason         string `json:"reason"`
		EstimatedPairs int64  `json:"estimated_pairs"`
		MaxPairs       int64  `json:"max_pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding shed body: %v", err)
	}
	resp.Body.Close()
	if body.Reason != "estimate" || body.EstimatedPairs != 5000 || body.MaxPairs != 1000 {
		t.Fatalf("shed body %+v, want estimate/5000/1000", body)
	}

	// Under budget the same query sails through.
	be.setEstimate(500)
	resp = doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-budget join: status %d, want 200", resp.StatusCode)
	}
}

func TestGatewayInFlightShed(t *testing.T) {
	be := newFakeBackend(t)
	be.mu.Lock()
	be.joinDelay = time.Second
	be.mu.Unlock()
	_, srv := bootGateway(t, oneTenant("acme", "k", func(tn *Tenant) {
		tn.MaxInFlight = 1
	}), be.srv.URL)

	done := make(chan int, 1)
	go func() {
		resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// Wait until the backend holds the slow query — from then until its
	// delay elapses the tenant's single slot is provably occupied.
	deadline := time.Now().Add(5 * time.Second)
	for len(be.seenBodies()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never reached the backend")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second in-flight query: status %d, want 429", resp.StatusCode)
	}
	var body struct {
		Reason string `json:"reason"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if body.Reason != "inflight" {
		t.Fatalf("shed reason %q, want inflight", body.Reason)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("slow query finished %d, want 200", status)
	}
}

func TestGatewayOverrideRouting(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, &Config{
		Tenants: []Tenant{{Name: "acme", Key: "k"}},
		Experiments: []Experiment{
			{Name: "force-brute", Percent: 100, Override: Override{Algorithm: "brute"}},
		},
	}, be.srv.URL)

	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5, "algorithm": "auto"}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	seen := be.seenBodies()
	if len(seen) != 1 {
		t.Fatalf("backend saw %d requests, want 1", len(seen))
	}
	if seen[0]["algorithm"] != "brute" {
		t.Fatalf("backend saw algorithm %v, want the brute override", seen[0]["algorithm"])
	}
	if seen[0]["eps"] != 0.5 {
		t.Fatalf("override disturbed eps: %v", seen[0]["eps"])
	}
}

func TestGatewayShadowDiff(t *testing.T) {
	be := newFakeBackend(t)
	// The candidate arm (forced brute) returns the same pair set →
	// zero mismatches; then a divergent set → one mismatch.
	be.mu.Lock()
	be.pairsFor["brute"] = [][2]int64{{1, 2}, {0, 1}} // same set, different order
	be.mu.Unlock()
	g, srv := bootGateway(t, &Config{
		Tenants: []Tenant{{Name: "acme", Key: "k"}},
		Experiments: []Experiment{
			{Name: "sh", Percent: 100, Shadow: true, Override: Override{Algorithm: "brute"}},
		},
	}, be.srv.URL)

	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	g.ShadowDrain()
	if got := metricValue(t, g, `simjoin_gw_shadow_diffs_total{experiment="sh"}`); got != 1 {
		t.Fatalf("shadow_diffs = %v, want 1", got)
	}
	if got := metricValue(t, g, `simjoin_gw_shadow_mismatch_total{experiment="sh"}`); got != 0 {
		t.Fatalf("order-insensitive checksum flagged a mismatch: %v", got)
	}

	be.mu.Lock()
	be.pairsFor["brute"] = [][2]int64{{0, 1}, {5, 6}}
	be.mu.Unlock()
	resp = doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	resp.Body.Close()
	g.ShadowDrain()
	if got := metricValue(t, g, `simjoin_gw_shadow_mismatch_total{experiment="sh"}`); got != 1 {
		t.Fatalf("divergent pair set not flagged: mismatches = %v", got)
	}
	// The mismatch lands in the journal as a shadow record.
	found := false
	for _, rec := range g.Journal().Snapshot(querylog.Filter{}) {
		if rec.Kind == "shadow" && strings.Contains(rec.Error, "mismatch") {
			found = true
		}
	}
	if !found {
		t.Fatal("shadow mismatch not journaled")
	}
}

func TestGatewayStreamPassthrough(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, oneTenant("acme", "k", nil), be.srv.URL)

	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5, "stream": true}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("Content-Type %q not relayed", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if lines != 2 {
		t.Fatalf("streamed %d lines through the gateway, want 2", lines)
	}
}

func TestGatewayBackend429Passthrough(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /datasets/{name}/selfjoin", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		httpError(w, http.StatusTooManyRequests, "join estimated at 9999 pairs exceeds budget")
	})
	be := httptest.NewServer(mux)
	defer be.Close()
	_, srv := bootGateway(t, oneTenant("acme", "k", nil), be.URL)

	resp := doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the backend's 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("backend Retry-After not relayed: %q", resp.Header.Get("Retry-After"))
	}
}

func TestGatewayMetricsSurface(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, oneTenant("acme", "k", func(tn *Tenant) {
		tn.RatePerSec = 0.0001
		tn.Burst = 1
	}), be.srv.URL)

	doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil).Body.Close()
	doJoin(t, srv.URL, "k", "pts", map[string]any{"eps": 0.5}, nil).Body.Close() // shed: rate
	doJoin(t, srv.URL, "", "pts", map[string]any{"eps": 0.5}, nil).Body.Close()  // shed: auth

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`simjoin_gw_requests_total{tenant="acme"} 2`,
		`simjoin_gw_shed_total{tenant="acme",reason="rate"} 1`,
		`simjoin_gw_shed_total{tenant="",reason="auth"} 1`,
		`simjoin_gw_arm_requests_total{experiment="none",arm="incumbent"} 1`,
		`simjoin_gw_backend_up{backend="` + be.srv.URL + `"} 1`,
		"simjoin_gw_tenants 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestGatewayHealthz(t *testing.T) {
	be := newFakeBackend(t)
	_, srv := bootGateway(t, oneTenant("acme", "k", nil), be.srv.URL)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Status   string `json:"status"`
		Mode     string `json:"mode"`
		Backends []struct {
			OK bool `json:"ok"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if out.Status != "ok" || out.Mode != "gateway" || len(out.Backends) != 1 || !out.Backends[0].OK {
		t.Fatalf("healthz %+v", out)
	}
}

// metricValue scrapes one sample from the gateway's registry text.
func metricValue(t *testing.T, g *Gateway, sample string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	g.Registry().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(sample)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing sample %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}
