package gateway

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testGateway(t *testing.T, cfg *Config) *Gateway {
	t.Helper()
	g, err := New(Options{Backends: []string{"http://unused"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if cfg != nil {
		if err := g.SetConfig(cfg); err != nil {
			t.Fatalf("SetConfig: %v", err)
		}
	}
	return g
}

func TestRouteSticky(t *testing.T) {
	g := testGateway(t, &Config{
		Tenants: []Tenant{{Name: "a", Key: "k"}},
		Experiments: []Experiment{
			{Name: "e", Dataset: "pts", Percent: 50, Override: Override{Algorithm: "brute"}},
		},
	})
	first := g.route("a", "pts", "s1")
	for i := 0; i < 100; i++ {
		if d := g.route("a", "pts", "s1"); d.candidate != first.candidate {
			t.Fatal("assignment not sticky across repeated requests")
		}
	}
	if d := g.route("a", "other", "s1"); d.exp != "" {
		t.Fatalf("rule for dataset pts matched dataset other: %+v", d)
	}
}

func TestRoutePercentBounds(t *testing.T) {
	mk := func(pct float64) *Gateway {
		return testGateway(t, &Config{
			Tenants:     []Tenant{{Name: "a", Key: "k"}},
			Experiments: []Experiment{{Name: "e", Percent: pct, Override: Override{Algorithm: "brute"}}},
		})
	}
	g0, g100 := mk(0), mk(100)
	for i := 0; i < 200; i++ {
		sticky := fmt.Sprintf("s%d", i)
		if d := g0.route("a", "pts", sticky); d.candidate {
			t.Fatal("0% experiment assigned a candidate")
		}
		if d := g100.route("a", "pts", sticky); !d.candidate {
			t.Fatal("100% experiment left a request on the incumbent")
		}
	}
}

func TestRouteSplitDistribution(t *testing.T) {
	g := testGateway(t, &Config{
		Tenants:     []Tenant{{Name: "a", Key: "k"}},
		Experiments: []Experiment{{Name: "e", Percent: 50, Override: Override{Algorithm: "brute"}}},
	})
	candidates := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.route("a", "pts", fmt.Sprintf("user-%d", i)).candidate {
			candidates++
		}
	}
	// FNV over 2000 distinct keys at 50%: allow ±10 points.
	if candidates < n*40/100 || candidates > n*60/100 {
		t.Fatalf("50%% split assigned %d/%d to candidate", candidates, n)
	}
}

func TestRouteFirstMatchWins(t *testing.T) {
	g := testGateway(t, &Config{
		Tenants: []Tenant{{Name: "a", Key: "k"}},
		Experiments: []Experiment{
			{Name: "specific", Dataset: "pts", Percent: 100, Override: Override{Algorithm: "brute"}},
			{Name: "catchall", Percent: 100, Override: Override{Algorithm: "auto"}},
		},
	})
	if d := g.route("a", "pts", ""); d.exp != "specific" {
		t.Fatalf("matched %q, want specific", d.exp)
	}
	if d := g.route("a", "other", ""); d.exp != "catchall" {
		t.Fatalf("matched %q, want catchall", d.exp)
	}
}

func TestApplyOverride(t *testing.T) {
	f32 := true
	body := map[string]any{"eps": 0.5, "algorithm": "auto", "max_pairs": float64(10)}
	applyOverride(body, Override{Algorithm: "brute", Float32: &f32, Workers: 3})
	raw, err := encodeBody(body)
	if err != nil {
		t.Fatalf("encodeBody: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("re-decoding: %v", err)
	}
	if got["algorithm"] != "brute" || got["float32"] != true || got["workers"] != float64(3) {
		t.Fatalf("override not applied: %v", got)
	}
	if got["eps"] != 0.5 || got["max_pairs"] != float64(10) {
		t.Fatalf("unrelated fields disturbed: %v", got)
	}
}

func TestBackendForRendezvous(t *testing.T) {
	g, err := New(Options{Backends: []string{"http://w1", "http://w2", "http://w3"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("ds-%d", i)
		b := g.backendFor(name)
		if b2 := g.backendFor(name); b2 != b {
			t.Fatalf("backendFor(%q) unstable: %q then %q", name, b, b2)
		}
		seen[b] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 datasets landed on %d of 3 backends", len(seen))
	}
	if g.backendFor("") != "http://w1" {
		t.Fatal("fleet-level routes must pin to the first backend")
	}
}
