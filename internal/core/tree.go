// Package core implements the ε-kdB tree, the paper's primary contribution:
// a main-memory index built for one specific similarity threshold ε that
// splits one dimension per level into stripes of width ε. Because stripe
// width equals ε, every join candidate for a node lies in the node itself or
// one of its two adjacent sibling stripes — there is no backtracking and no
// region overlap, which is what lets the structure stay effective where
// R-trees and grids collapse under dimensionality.
//
// The join descends two trees (or one tree against itself) in lockstep,
// pairing each stripe only with itself and its immediate neighbors; at the
// leaves, point lists kept sorted on a designated sweep dimension are merged
// with an ε-window sweep before the final early-exit distance test.
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"simjoin/internal/dataset"
	"simjoin/internal/vec"
)

// DefaultLeafThreshold is the build-time leaf capacity used by the
// evaluation (the F4 experiment sweeps it).
const DefaultLeafThreshold = 64

// Config holds the ε-kdB tree build knobs.
type Config struct {
	// LeafThreshold stops splitting once a node holds this few points
	// (≤ 0 selects DefaultLeafThreshold). Splitting also stops once every
	// dimension has been used.
	LeafThreshold int
	// BiasedSplit orders the split dimensions by decreasing extent instead
	// of natural order, so wide (selective) dimensions are consumed first.
	// This is the biased-splitting optimization the ablation (F4/T2)
	// examines.
	BiasedSplit bool
}

// Tree is an ε-kdB tree over one dataset, valid only for the ε it was built
// with.
type Tree struct {
	ds            *dataset.Dataset
	eps           float64
	box           vec.Box // stripe-grid frame (shared across trees for joins)
	order         []int   // dimension split order; order[depth] splits level depth
	stripes       []int   // stripe count per dimension (indexed by dimension)
	sweepDim      int     // the dimension every leaf list is sorted on
	leafThreshold int
	root          *node
	scratch       []int32 // per-level stripe cache, reused across the build

	nodes, leaves, maxDepth int
}

// node is one ε-kdB tree node. Internal nodes split dimension
// tree.order[depth] into stripes of width ε; children[s] covers stripe s
// and is nil when the stripe is empty. Leaves hold point indexes sorted by
// the tree's sweep dimension.
type node struct {
	children []*node
	pts      []int32
}

func (n *node) leaf() bool { return n.children == nil }

// Build constructs an ε-kdB tree over ds for threshold eps. An empty
// dataset yields an empty (still joinable) tree.
func Build(ds *dataset.Dataset, eps float64, cfg Config) *Tree {
	if ds.Len() == 0 {
		return newTree(ds, eps, vec.NewEmptyBox(ds.Dims()), cfg)
	}
	return BuildWithBox(ds, eps, ds.Bounds(), cfg)
}

// BuildWithBox is Build with an explicit stripe-grid frame. Two trees can
// be joined only if built with the same eps and the same box (JoinTrees
// verifies this); pass the joint bounding box of both datasets.
func BuildWithBox(ds *dataset.Dataset, eps float64, box vec.Box, cfg Config) *Tree {
	if !(eps > 0) {
		panic(fmt.Sprintf("core: eps must be positive, got %g", eps))
	}
	if box.Dims() != ds.Dims() {
		panic(fmt.Sprintf("core: box of dimension %d for %d-dim dataset", box.Dims(), ds.Dims()))
	}
	t := newTree(ds, eps, box, cfg)
	if ds.Len() == 0 {
		return t
	}
	idx := make([]int32, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx, 0)
	return t
}

func newTree(ds *dataset.Dataset, eps float64, box vec.Box, cfg Config) *Tree {
	if !(eps > 0) {
		panic(fmt.Sprintf("core: eps must be positive, got %g", eps))
	}
	leaf := cfg.LeafThreshold
	if leaf <= 0 {
		leaf = DefaultLeafThreshold
	}
	d := ds.Dims()
	t := &Tree{
		ds:            ds,
		eps:           eps,
		box:           box,
		order:         make([]int, d),
		stripes:       make([]int, d),
		leafThreshold: leaf,
	}
	for k := 0; k < d; k++ {
		t.order[k] = k
		ext := box.Hi[k] - box.Lo[k]
		s := 1
		if ext > 0 {
			s = int(math.Ceil(ext / eps))
			if s < 1 {
				s = 1
			}
		}
		t.stripes[k] = s
	}
	if cfg.BiasedSplit {
		sort.SliceStable(t.order, func(a, b int) bool {
			ea := box.Hi[t.order[a]] - box.Lo[t.order[a]]
			eb := box.Hi[t.order[b]] - box.Lo[t.order[b]]
			return ea > eb
		})
	}
	// Leaves sweep on the last dimension in split order: it is the one
	// least likely to be consumed by stripes, so the sweep window filters a
	// dimension the tree has (usually) not filtered yet.
	t.sweepDim = t.order[d-1]
	return t
}

// build recursively stripes idx (which it owns) and returns the subtree.
func (t *Tree) build(idx []int32, depth int) *node {
	t.nodes++
	if depth > t.maxDepth {
		t.maxDepth = depth
	}
	if len(idx) <= t.leafThreshold || depth == t.ds.Dims() {
		return t.makeLeaf(idx)
	}
	dim := t.order[depth]
	s := t.stripes[dim]
	// In-place stripe partition (American-flag style): compute each
	// element's stripe once into a scratch buffer shared across the whole
	// build, count occupancy, then swap elements (and their cached
	// stripes) directly into their stripe regions. Unstable, which is fine
	// — leaves re-sort on the sweep dimension anyway — and it replaces the
	// per-stripe append churn of the naive bucketing with zero per-node
	// point allocations.
	if cap(t.scratch) < len(idx) {
		t.scratch = make([]int32, len(idx))
	}
	str := t.scratch[:len(idx)]
	counts := make([]int32, s+1)
	data, dims := t.ds.Flat(), t.ds.Dims()
	for p, i := range idx {
		st := int32(t.stripeOf(data[int(i)*dims+dim], dim))
		str[p] = st
		counts[st+1]++
	}
	for st := 0; st < s; st++ {
		counts[st+1] += counts[st] // counts[st] = start of stripe st's region
	}
	cur := make([]int32, s)
	copy(cur, counts[:s])
	for st := 0; st < s; st++ {
		end := counts[st+1]
		for pos := cur[st]; pos < end; pos = cur[st] {
			vst := str[pos]
			if vst == int32(st) {
				cur[st]++
				continue
			}
			dst := cur[vst]
			idx[pos], idx[dst] = idx[dst], idx[pos]
			str[pos], str[dst] = str[dst], str[pos]
			cur[vst]++
		}
	}
	n := &node{children: make([]*node, s)}
	for st := 0; st < s; st++ {
		lo, hi := counts[st], counts[st+1]
		if hi > lo {
			n.children[st] = t.build(idx[lo:hi:hi], depth+1)
		}
	}
	return n
}

func (t *Tree) makeLeaf(idx []int32) *node {
	t.leaves++
	// Fetched per call: Append can realloc the buffer between dynamic
	// inserts, so the view must not be cached across tree operations.
	data, dims, sd := t.ds.Flat(), t.ds.Dims(), t.sweepDim
	// slices.SortFunc instantiates a concrete int32 sort — unlike
	// sort.Slice's reflection path, which showed up in join profiles.
	slices.SortFunc(idx, func(a, b int32) int {
		va, vb := data[int(a)*dims+sd], data[int(b)*dims+sd]
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		}
		return 0
	})
	return &node{pts: idx}
}

// stripeOf maps coordinate v in dimension dim to its stripe index, clamping
// the top edge into the last stripe.
func (t *Tree) stripeOf(v float64, dim int) int {
	s := int((v - t.box.Lo[dim]) / t.eps)
	if s < 0 {
		s = 0
	}
	if max := t.stripes[dim] - 1; s > max {
		s = max
	}
	return s
}

// Eps returns the threshold the tree was built for.
func (t *Tree) Eps() float64 { return t.eps }

// Dataset returns the indexed dataset.
func (t *Tree) Dataset() *dataset.Dataset { return t.ds }

// Nodes returns the number of tree nodes (internal + leaves).
func (t *Tree) Nodes() int { return t.nodes }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return t.leaves }

// MaxDepth returns the deepest node's depth (0 for a root leaf).
func (t *Tree) MaxDepth() int { return t.maxDepth }

// MemoryBytes estimates the heap footprint of the index structure
// (excluding the dataset itself).
func (t *Tree) MemoryBytes() int {
	total := 0
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		total += 48 // node header estimate
		total += 8 * len(n.children)
		total += 4 * len(n.pts)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return total
}

// sameFrame reports whether two trees share a joinable frame.
func (t *Tree) sameFrame(o *Tree) bool {
	if t.eps != o.eps || t.sweepDim != o.sweepDim || len(t.order) != len(o.order) {
		return false
	}
	for i := range t.order {
		if t.order[i] != o.order[i] || t.stripes[i] != o.stripes[i] {
			return false
		}
	}
	for i := range t.box.Lo {
		if t.box.Lo[i] != o.box.Lo[i] || t.box.Hi[i] != o.box.Hi[i] {
			return false
		}
	}
	return true
}

// checkInvariants validates the structure for tests: every point appears in
// exactly one leaf, leaf lists are sweep-sorted, every point lies in the
// stripe its ancestors claim, and depth never exceeds the dimensionality.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		if t.ds.Len() != 0 {
			return fmt.Errorf("core: nil root with %d points", t.ds.Len())
		}
		return nil
	}
	seen := make([]bool, t.ds.Len())
	// path[k] = stripe constraint for dimension t.order[k] on the current
	// path (-1 = unconstrained).
	constraint := make([]int, t.ds.Dims())
	var rec func(n *node, depth int) error
	rec = func(n *node, depth int) error {
		if depth > t.ds.Dims() {
			return fmt.Errorf("core: depth %d exceeds dimensionality", depth)
		}
		if n.leaf() {
			prev := math.Inf(-1)
			for _, i := range n.pts {
				if seen[i] {
					return fmt.Errorf("core: point %d in two leaves", i)
				}
				seen[i] = true
				p := t.ds.Point(int(i))
				if p[t.sweepDim] < prev {
					return fmt.Errorf("core: leaf not sorted on sweep dim")
				}
				prev = p[t.sweepDim]
				for k := 0; k < depth; k++ {
					dim := t.order[k]
					if c := constraint[k]; c >= 0 && t.stripeOf(p[dim], dim) != c {
						return fmt.Errorf("core: point %d violates stripe %d in dim %d", i, c, dim)
					}
				}
			}
			return nil
		}
		dim := t.order[depth]
		if len(n.children) != t.stripes[dim] {
			return fmt.Errorf("core: node at depth %d has %d children, want %d stripes", depth, len(n.children), t.stripes[dim])
		}
		for s, c := range n.children {
			if c == nil {
				continue
			}
			constraint[depth] = s
			if err := rec(c, depth+1); err != nil {
				return err
			}
			constraint[depth] = -1
		}
		return nil
	}
	for k := range constraint {
		constraint[k] = -1
	}
	if err := rec(t.root, 0); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("core: point %d missing from every leaf", i)
		}
	}
	return nil
}
