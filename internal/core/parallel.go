package core

import (
	"sync"
	"time"

	"simjoin/internal/join"
	"simjoin/internal/pairs"
)

// SelfJoinParallel runs the self-join with the root's stripe work spread
// across opt.WorkerCount() goroutines. newSink is called once per worker to
// obtain that worker's private result sink (pairs.Sharded handles, or a
// shared concurrency-safe pairs.Counter). The stripe decomposition is
// naturally parallel: each root stripe owns its self-join plus its join
// with the next stripe, so no pair is produced twice.
//
// When the root is a leaf (tiny input or a one-stripe frame) the join runs
// serially on a single worker sink.
func (t *Tree) SelfJoinParallel(opt join.Options, newSink func() pairs.Sink) {
	opt.MustValidate()
	if opt.Eps > t.eps {
		panic("core: join eps exceeds build eps (stripe adjacency would lose pairs)")
	}
	if t.root == nil {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	if opt.Float32 {
		// Warm the float32 mirror before any worker spawns: the lazy build
		// inside KernelView must not race.
		t.ds.Mirror32()
	}
	if t.root.leaf() {
		j := t.newJoiner(opt, newSink())
		j.selfNode(t.root, 0)
		j.flush(opt)
		return
	}
	type task struct {
		a, b *node // b == nil means self-join of a
	}
	children := t.root.children
	tasks := make([]task, 0, 2*len(children))
	for s, c := range children {
		if c == nil {
			continue
		}
		tasks = append(tasks, task{a: c})
		if s+1 < len(children) && children[s+1] != nil {
			tasks = append(tasks, task{a: c, b: children[s+1]})
		}
	}
	workers := opt.WorkerCount()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	work := make(chan task, len(tasks))
	for _, tk := range tasks {
		work <- tk
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := t.newJoiner(opt, newSink())
			for tk := range work {
				if tk.b == nil {
					j.selfNode(tk.a, 1)
				} else {
					j.crossNodes(tk.a, tk.b, 1, false)
				}
			}
			j.flush(opt)
		}()
	}
	wg.Wait()
}

// JoinTreesParallel is JoinTrees with the root's stripe pairs spread
// across opt.WorkerCount() goroutines; newSink supplies one private sink
// per worker. Frame rules are as for JoinTrees. When either root is a leaf
// the join runs serially (there is no stripe decomposition to parallelize).
func JoinTreesParallel(ta, tb *Tree, opt join.Options, newSink func() pairs.Sink) {
	opt.MustValidate()
	if opt.Eps > ta.eps {
		panic("core: join eps exceeds build eps (stripe adjacency would lose pairs)")
	}
	if !ta.sameFrame(tb) {
		panic("core: joining trees with different frames; build both with BuildWithBox over the joint bounding box")
	}
	if ta.root == nil || tb.root == nil {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	if opt.Float32 {
		// Warm both mirrors before any worker spawns (see SelfJoinParallel).
		ta.ds.Mirror32()
		tb.ds.Mirror32()
	}
	newCrossJoiner := func(sink pairs.Sink) *joiner {
		j := ta.newJoiner(opt, sink)
		j.fb = tb.ds.KernelView(opt.Float32)
		return j
	}
	if ta.root.leaf() || tb.root.leaf() {
		j := newCrossJoiner(newSink())
		j.crossNodes(ta.root, tb.root, 0, false)
		j.flush(opt)
		return
	}
	// Each task is one adjacent stripe pair of the two roots — the same
	// enumeration crossNodes performs, flattened into a work queue.
	type task struct{ a, b *node }
	ac, bc := ta.root.children, tb.root.children
	tasks := make([]task, 0, 3*len(ac))
	for s := range ac {
		if bc[s] != nil {
			if ac[s] != nil {
				tasks = append(tasks, task{a: ac[s], b: bc[s]})
			}
			if s+1 < len(ac) && ac[s+1] != nil {
				tasks = append(tasks, task{a: ac[s+1], b: bc[s]})
			}
		}
		if ac[s] != nil && s+1 < len(bc) && bc[s+1] != nil {
			tasks = append(tasks, task{a: ac[s], b: bc[s+1]})
		}
	}
	if len(tasks) == 0 {
		return
	}
	workers := opt.WorkerCount()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	work := make(chan task, len(tasks))
	for _, tk := range tasks {
		work <- tk
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := newCrossJoiner(newSink())
			for tk := range work {
				j.crossNodes(tk.a, tk.b, 1, false)
			}
			j.flush(opt)
		}()
	}
	wg.Wait()
}

func (t *Tree) newJoiner(opt join.Options, sink pairs.Sink) *joiner {
	f := t.ds.KernelView(opt.Float32)
	j := &joiner{
		fa: f, fb: f,
		metric: opt.Metric, eps: t.eps, qeps: opt.Eps, th: opt.Threshold(),
		sweepDim: t.sweepDim, order: t.order, frameLo: t.box.Lo,
		sink: sink,
	}
	j.emitFwd = func(x, y int32) { j.sink.Emit(int(x), int(y)) }
	j.emitRev = func(x, y int32) { j.sink.Emit(int(y), int(x)) }
	return j
}
