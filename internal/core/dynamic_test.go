package core

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// TestInsertMatchesBatchBuild: a tree grown point by point must give the
// same join answer (and satisfy the same invariants) as a batch build.
func TestInsertMatchesBatchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(400)
		d := 1 + rng.Intn(8)
		eps := 0.05 + rng.Float64()*0.3
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})

		batch := Build(ds, eps, Config{LeafThreshold: 1 + rng.Intn(32)})

		// The dynamic pattern: build an empty tree over a growable dataset
		// with a pre-sized frame, then append+insert point by point.
		grow := dataset.New(d, n)
		dyn := BuildWithBox(grow, eps, ds.Bounds(), Config{LeafThreshold: batch.leafThreshold})
		for i := 0; i < n; i++ {
			grow.Append(ds.Point(i))
			dyn.Insert(i)
		}
		if err := dyn.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := join.Options{Metric: vec.L2, Eps: eps}
		want := &pairs.Collector{Canonical: true}
		batch.SelfJoin(opt, want)
		got := &pairs.Collector{Canonical: true}
		dyn.SelfJoin(opt, got)
		if !pairs.Equal(got.Sorted(), want.Sorted()) {
			t.Fatalf("trial %d (n=%d d=%d eps=%g): %s", trial, n, d, eps, pairs.Diff(got.Pairs, want.Pairs))
		}
	}
}

func TestInsertOutOfFrame(t *testing.T) {
	// Build the frame over the unit square, then insert points far outside
	// it; clamping must keep the join exact.
	frame := dataset.FromPoints([][]float64{{0, 0}, {1, 1}}).Bounds()
	ds := dataset.New(2, 0)
	tr := BuildWithBox(ds, 0.1, frame, Config{LeafThreshold: 1})
	for _, p := range [][]float64{{0, 0}, {1, 1}, {5, 5}, {5.05, 5}, {-3, 0.5}} {
		ds.Append(p)
		tr.Insert(ds.Len() - 1)
	}
	got := &pairs.Collector{Canonical: true}
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.1}, got)
	want := []pairs.Pair{{I: 2, J: 3}} // only the two far-out points match
	if !pairs.Equal(got.Sorted(), want) {
		t.Errorf("out-of-frame join = %v, want %v", got.Pairs, want)
	}
}

func TestInsertPanics(t *testing.T) {
	empty := Build(dataset.New(2, 0), 0.5, Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Insert into empty-frame tree did not panic")
			}
		}()
		empty.Insert(0)
	}()
	ds := dataset.FromPoints([][]float64{{0, 0}})
	tr := Build(ds, 0.5, Config{})
	defer func() {
		if recover() == nil {
			t.Error("Insert of out-of-range index did not panic")
		}
	}()
	tr.Insert(5)
}

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := synth.Generate(synth.Config{N: 1500, Dims: 5, Seed: 3, Dist: synth.GaussianClusters})
	tr := Build(ds, 0.2, Config{LeafThreshold: 16})
	for trial := 0; trial < 60; trial++ {
		q := make([]float64, 5)
		for k := range q {
			q[k] = rng.Float64()*1.2 - 0.1 // sometimes outside the frame
		}
		for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
			radius := 0.01 + rng.Float64()*0.19 // ≤ build ε
			var got []int
			tr.RangeQuery(q, m, radius, nil, func(i int) { got = append(got, i) })
			sort.Ints(got)
			th := vec.Threshold(m, radius)
			var want []int
			for i := 0; i < ds.Len(); i++ {
				if vec.Within(m, q, ds.Point(i), th) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v r=%g: %d hits, want %d", m, radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v r=%g: hit set differs", m, radius)
				}
			}
		}
	}
}

func TestRangeQueryPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0, 0}, {1, 1}})
	tr := Build(ds, 0.25, Config{})
	for name, fn := range map[string]func(){
		"radius above eps": func() { tr.RangeQuery([]float64{0, 0}, vec.L2, 0.3, nil, func(int) {}) },
		"zero radius":      func() { tr.RangeQuery([]float64{0, 0}, vec.L2, 0, nil, func(int) {}) },
		"dim mismatch":     func() { tr.RangeQuery([]float64{0}, vec.L2, 0.1, nil, func(int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRangeQueryCountersAndPruning(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 20000, Dims: 4, Seed: 4, Dist: synth.Uniform})
	tr := Build(ds, 0.05, Config{LeafThreshold: 32})
	var c stats.Counters
	hits := 0
	tr.RangeQuery([]float64{0.5, 0.5, 0.5, 0.5}, vec.L2, 0.05, &c, func(int) { hits++ })
	s := c.Snapshot()
	if s.NodeVisits == 0 {
		t.Error("node visits not counted")
	}
	if s.DistComps > int64(ds.Len())/20 {
		t.Errorf("tested %d of %d points; stripe pruning ineffective", s.DistComps, ds.Len())
	}
}

func TestRangeQueryEmptyTree(t *testing.T) {
	tr := BuildWithBox(dataset.New(3, 0), 0.5, vec.NewBox([]float64{0, 0, 0}, []float64{1, 1, 1}), Config{})
	called := false
	tr.RangeQuery([]float64{0.5, 0.5, 0.5}, vec.L2, 0.5, nil, func(int) { called = true })
	if called {
		t.Error("empty tree range query visited something")
	}
}
