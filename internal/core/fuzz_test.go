package core

import (
	"encoding/binary"
	"math"
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// FuzzSelfJoinOracle decodes arbitrary bytes into a small dataset plus
// join parameters and holds the ε-kdB tree to the brute-force answer. This
// is the deepest fuzz target in the library: any stripe-boundary,
// clamping, duplicate-value or recursion defect surfaces as a pair-set
// mismatch.
func FuzzSelfJoinOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 1, 1, 1, 1, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 8 {
			return
		}
		dims := 1 + int(in[0]%6)
		leaf := 1 + int(in[1]%16)
		metric := vec.Metric(in[2] % 3)
		biased := in[3]%2 == 1
		// ε in (0, ~1.3]: derived from a byte so the fuzzer controls it.
		eps := float64(in[4]%64+1) / 50
		payload := in[5:]

		// Decode two bytes per coordinate into [0, 1] with many exact
		// duplicates (low-entropy bytes collide), which is exactly the
		// regime that breaks stripe logic.
		n := len(payload) / (2 * dims)
		if n < 2 {
			return
		}
		if n > 150 {
			n = 150
		}
		ds := dataset.New(dims, n)
		p := make([]float64, dims)
		for i := 0; i < n; i++ {
			for k := 0; k < dims; k++ {
				raw := binary.LittleEndian.Uint16(payload[(i*dims+k)*2:])
				p[k] = float64(raw%512) / 511 // coarse grid → duplicates
			}
			ds.Append(p)
		}

		opt := join.Options{Metric: metric, Eps: eps}
		want := &pairs.Collector{Canonical: true}
		brute.SelfJoin(ds, opt, want)

		tr := Build(ds, eps, Config{LeafThreshold: leaf, BiasedSplit: biased})
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		got := &pairs.Collector{Canonical: true}
		tr.SelfJoin(opt, got)
		g := pairs.Dedup(got.Sorted())
		if len(g) != len(got.Pairs) {
			t.Fatalf("duplicate pairs emitted (dims=%d leaf=%d eps=%g)", dims, leaf, eps)
		}
		if !pairs.Equal(g, want.Sorted()) {
			t.Fatalf("oracle mismatch (dims=%d leaf=%d eps=%g metric=%v): %s",
				dims, leaf, eps, metric, pairs.Diff(g, want.Pairs))
		}

		// The range query must agree with a scan for a random-ish query
		// point derived from the same bytes.
		q := make([]float64, dims)
		for k := range q {
			q[k] = float64(payload[k%len(payload)]) / 255
		}
		radius := eps * (0.25 + float64(in[5]%4)/4) // within (0, eps]
		if radius > eps {
			radius = eps
		}
		gotHits := map[int]bool{}
		tr.RangeQuery(q, metric, radius, nil, func(i int) { gotHits[i] = true })
		th := vec.Threshold(metric, radius)
		for i := 0; i < ds.Len(); i++ {
			want := vec.Within(metric, q, ds.Point(i), th)
			if want != gotHits[i] {
				t.Fatalf("range query mismatch at point %d (radius %g)", i, radius)
			}
		}
		if math.IsNaN(eps) {
			t.Fatal("unreachable")
		}
	})
}
