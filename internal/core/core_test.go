package core

import (
	"math/rand"
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 80, 801)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 80, 802)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestLeafThresholdVariants(t *testing.T) {
	for _, leaf := range []int{1, 2, 5, 16, 1000} {
		cfg := Config{LeafThreshold: leaf}
		fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			tr := Build(ds, opt.Eps, cfg)
			tr.SelfJoin(opt, sink)
		}
		jointest.CheckSelf(t, fn, 12, 810+int64(leaf))
	}
}

func TestBiasedSplitOracle(t *testing.T) {
	cfg := Config{BiasedSplit: true, LeafThreshold: 8}
	fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		tr := Build(ds, opt.Eps, cfg)
		tr.SelfJoin(opt, sink)
	}
	jointest.CheckSelf(t, fn, 30, 820)
	jfn := func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		box := a.Bounds()
		box.ExtendBox(b.Bounds())
		ta := BuildWithBox(a, opt.Eps, box, cfg)
		tb := BuildWithBox(b, opt.Eps, box, cfg)
		JoinTrees(ta, tb, opt, sink)
	}
	jointest.CheckJoin(t, jfn, 30, 821)
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(600)
		d := 1 + rng.Intn(10)
		cfg := Config{LeafThreshold: 1 + rng.Intn(64), BiasedSplit: rng.Intn(2) == 1}
		eps := 0.02 + rng.Float64()*0.5
		var ds *dataset.Dataset
		if n == 0 {
			ds = dataset.New(d, 0)
		} else {
			ds = synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		}
		tr := Build(ds, eps, cfg)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d d=%d eps=%g cfg=%+v: %v", n, d, eps, cfg, err)
		}
		if tr.MaxDepth() > d {
			t.Fatalf("depth %d exceeds dimensionality %d", tr.MaxDepth(), d)
		}
	}
}

func TestBuildPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{1, 2}})
	for name, fn := range map[string]func(){
		"zero eps":     func() { Build(ds, 0, Config{}) },
		"negative eps": func() { Build(ds, -1, Config{}) },
		"box mismatch": func() { BuildWithBox(ds, 0.5, vec.NewEmptyBox(3), Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestJoinEpsAboveBuildPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}, {1}})
	tr := Build(ds, 0.5, Config{})
	defer func() {
		if recover() == nil {
			t.Error("eps above build eps did not panic")
		}
	}()
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.6}, &pairs.Counter{})
}

// TestMultiEpsQueries: one tree built at the largest ε answers every
// smaller ε exactly (build-once-query-many).
func TestMultiEpsQueries(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 2000, Dims: 6, Seed: 20, Dist: synth.GaussianClusters})
	const buildEps = 0.2
	tr := Build(ds, buildEps, Config{LeafThreshold: 16})
	for _, qeps := range []float64{0.01, 0.05, 0.1, 0.2} {
		for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
			opt := join.Options{Metric: m, Eps: qeps}
			want := &pairs.Collector{Canonical: true}
			brute.SelfJoin(ds, opt, want)
			got := &pairs.Collector{Canonical: true}
			tr.SelfJoin(opt, got)
			if !pairs.Equal(got.Sorted(), want.Sorted()) {
				t.Fatalf("qeps=%g %v: %s", qeps, m, pairs.Diff(got.Pairs, want.Pairs))
			}
		}
	}
	// Parallel variant honors the smaller ε too.
	opt := join.Options{Metric: vec.L2, Eps: 0.05, Workers: 4}
	want := &pairs.Collector{Canonical: true}
	brute.SelfJoin(ds, opt, want)
	sh := pairs.NewSharded(true)
	tr.SelfJoinParallel(opt, sh.Handle)
	if !pairs.Equal(sh.Merged(), want.Sorted()) {
		t.Errorf("parallel multi-eps wrong: %s", pairs.Diff(sh.Merged(), want.Pairs))
	}
}

// TestMultiEpsTwoTree: the two-tree join also accepts any ε ≤ build ε.
func TestMultiEpsTwoTree(t *testing.T) {
	a := synth.Generate(synth.Config{N: 800, Dims: 4, Seed: 21, Dist: synth.GaussianClusters})
	b := synth.Generate(synth.Config{N: 800, Dims: 4, Seed: 21, Dist: synth.GaussianClusters})
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ta := BuildWithBox(a, 0.2, box, Config{})
	tb := BuildWithBox(b, 0.2, box, Config{})
	for _, qeps := range []float64{0.03, 0.1} {
		opt := join.Options{Metric: vec.L2, Eps: qeps}
		want := &pairs.Collector{}
		brute.Join(a, b, opt, want)
		got := &pairs.Collector{}
		JoinTrees(ta, tb, opt, got)
		if !pairs.Equal(got.Sorted(), want.Sorted()) {
			t.Fatalf("qeps=%g: %s", qeps, pairs.Diff(got.Pairs, want.Pairs))
		}
	}
}

func TestJoinTreesFrameMismatchPanics(t *testing.T) {
	a := dataset.FromPoints([][]float64{{0}, {1}})
	b := dataset.FromPoints([][]float64{{0}, {2}})
	ta := Build(a, 0.5, Config{}) // frames differ: separate bounding boxes
	tb := Build(b, 0.5, Config{})
	defer func() {
		if recover() == nil {
			t.Error("frame mismatch did not panic")
		}
	}()
	JoinTrees(ta, tb, join.Options{Metric: vec.L2, Eps: 0.5}, &pairs.Counter{})
}

func TestEmptyTrees(t *testing.T) {
	empty := dataset.New(3, 0)
	tr := Build(empty, 0.5, Config{})
	var sink pairs.Counter
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.5}, &sink)
	if sink.N() != 0 {
		t.Error("empty self-join produced pairs")
	}
	one := dataset.FromPoints([][]float64{{0.1, 0.2, 0.3}})
	Join(empty, one, join.Options{Metric: vec.L2, Eps: 0.5}, &sink)
	Join(one, empty, join.Options{Metric: vec.L2, Eps: 0.5}, &sink)
	if sink.N() != 0 {
		t.Error("empty two-set joins produced pairs")
	}
}

func TestStripeOf(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}, {1}})
	tr := Build(ds, 0.25, Config{})
	if tr.stripes[0] != 4 {
		t.Fatalf("stripes = %d, want 4", tr.stripes[0])
	}
	for _, tc := range []struct {
		v    float64
		want int
	}{{0, 0}, {0.1, 0}, {0.25, 1}, {0.49, 1}, {0.75, 3}, {1.0, 3} /* clamped top edge */} {
		if got := tr.stripeOf(tc.v, 0); got != tc.want {
			t.Errorf("stripeOf(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestAdjacencySoundness exercises the exact-boundary geometry the stripe
// adjacency argument rests on: points exactly ε apart must be found, points
// farther than ε in one dimension must not.
func TestAdjacencySoundness(t *testing.T) {
	eps := 0.25
	ds := dataset.New(1, 0)
	for i := 0; i < 40; i++ {
		ds.Append([]float64{float64(i) * eps}) // consecutive points exactly ε apart
	}
	opt := join.Options{Metric: vec.L2, Eps: eps}
	got := &pairs.Collector{Canonical: true}
	tr := Build(ds, eps, Config{LeafThreshold: 2})
	tr.SelfJoin(opt, got)
	if len(got.Sorted()) != 39 {
		t.Errorf("found %d boundary pairs, want 39", len(got.Pairs))
	}
}

// TestDeepTreeCorrectness forces maximal depth (leaf threshold 1, many
// dims) so every recursion path — including leaf-vs-internal at every
// level — is exercised against the oracle.
func TestDeepTreeCorrectness(t *testing.T) {
	for _, d := range []int{4, 8, 14} {
		ds := synth.Generate(synth.Config{N: 300, Dims: d, Seed: int64(d), Dist: synth.GaussianClusters})
		opt := join.Options{Metric: vec.L2, Eps: 0.15}
		want := &pairs.Collector{Canonical: true}
		brute.SelfJoin(ds, opt, want)
		got := &pairs.Collector{Canonical: true}
		tr := Build(ds, opt.Eps, Config{LeafThreshold: 1})
		tr.SelfJoin(opt, got)
		g := pairs.Dedup(got.Sorted())
		if len(g) != len(got.Pairs) {
			t.Errorf("d=%d: duplicates emitted", d)
		}
		if !pairs.Equal(g, want.Sorted()) {
			t.Errorf("d=%d: %s", d, pairs.Diff(g, want.Pairs))
		}
	}
}

// TestCandidatePruning: the ε-kdB tree must inspect dramatically fewer
// candidates than the quadratic bound on selective workloads.
func TestCandidatePruning(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 5000, Dims: 8, Seed: 9, Dist: synth.Uniform})
	var c stats.Counters
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.1, Counters: &c}, &sink)
	quad := int64(ds.Len()) * int64(ds.Len()-1) / 2
	if got := c.Snapshot().Candidates; got*20 > quad {
		t.Errorf("candidates %d not ≪ quadratic %d", got, quad)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, dist := range synth.AllDistributions() {
		ds := synth.Generate(synth.Config{N: 4000, Dims: 6, Seed: 10, Dist: dist})
		opt := join.Options{Metric: vec.L2, Eps: 0.07, Workers: 4}
		serial := &pairs.Collector{Canonical: true}
		tr := Build(ds, opt.Eps, Config{})
		tr.SelfJoin(opt, serial)
		sh := pairs.NewSharded(true)
		tr.SelfJoinParallel(opt, sh.Handle)
		got := sh.Merged()
		if !pairs.Equal(got, serial.Sorted()) {
			t.Errorf("%v: parallel differs: %s", dist, pairs.Diff(got, serial.Pairs))
		}
	}
}

func TestParallelTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		ds := dataset.New(2, n)
		for i := 0; i < n; i++ {
			ds.Append([]float64{0.5, 0.5})
		}
		tr := Build(ds, 0.25, Config{})
		sh := pairs.NewSharded(true)
		tr.SelfJoinParallel(join.Options{Metric: vec.L2, Eps: 0.25, Workers: 8}, sh.Handle)
		if got, want := len(sh.Merged()), n*(n-1)/2; got != want {
			t.Errorf("n=%d: %d pairs, want %d", n, got, want)
		}
	}
}

func TestStatsAndMemory(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 2000, Dims: 5, Seed: 11, Dist: synth.Uniform})
	tr := Build(ds, 0.1, Config{LeafThreshold: 32})
	if tr.Nodes() <= 0 || tr.Leaves() <= 0 || tr.Nodes() < tr.Leaves() {
		t.Errorf("implausible node/leaf counts: %d/%d", tr.Nodes(), tr.Leaves())
	}
	if tr.MemoryBytes() < 4*ds.Len() {
		t.Errorf("MemoryBytes %d below the raw index-array floor", tr.MemoryBytes())
	}
	if tr.Eps() != 0.1 || tr.Dataset() != ds {
		t.Error("accessors wrong")
	}
}

// TestBiasedSplitUsesWideDimsFirst: with one dominant dimension, biased
// splitting must consume it first.
func TestBiasedSplitUsesWideDimsFirst(t *testing.T) {
	ds := dataset.New(3, 0)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		ds.Append([]float64{rng.Float64() * 0.01, rng.Float64(), rng.Float64() * 0.1})
	}
	tr := Build(ds, 0.05, Config{BiasedSplit: true})
	if tr.order[0] != 1 {
		t.Errorf("first split dim = %d, want 1 (the widest)", tr.order[0])
	}
	if tr.order[2] != 0 {
		t.Errorf("last split dim = %d, want 0 (the narrowest)", tr.order[2])
	}
}
