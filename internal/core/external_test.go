package core

import (
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestExternalSelfJoinOracle(t *testing.T) {
	fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		ExternalSelfJoin(ds, opt, ExternalConfig{PageBytes: 256, PoolPages: 4}, sink)
	}
	jointest.CheckSelf(t, fn, 40, 901)
}

func TestExternalBNLOracle(t *testing.T) {
	fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		ExternalBlockNestedLoopSelfJoin(ds, opt, ExternalConfig{PageBytes: 256, PoolPages: 4}, sink)
	}
	jointest.CheckSelf(t, fn, 40, 902)
}

func TestExternalAdversarial(t *testing.T) {
	fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		ExternalSelfJoin(ds, opt, ExternalConfig{PageBytes: 128, PoolPages: 2}, sink)
	}
	jointest.CheckSelfAdversarial(t, fn)
}

func TestExternalTinyPool(t *testing.T) {
	// A one-page pool thrashes but must stay correct.
	for _, fn := range []jointest.SelfJoinFunc{
		func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			ExternalSelfJoin(ds, opt, ExternalConfig{PageBytes: 128, PoolPages: 1}, sink)
		},
		func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			ExternalBlockNestedLoopSelfJoin(ds, opt, ExternalConfig{PageBytes: 128, PoolPages: 1}, sink)
		},
	} {
		jointest.CheckSelf(t, fn, 10, 903)
	}
}

func TestExternalPoolPagesValidated(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}, {1}})
	defer func() {
		if recover() == nil {
			t.Error("PoolPages=0 did not panic")
		}
	}()
	ExternalSelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.5}, ExternalConfig{}, &pairs.Counter{})
}

// TestExternalIOShape is the heart of experiment F7: with a pool that holds
// a few partitions, the partitioned ε-kdB join must perform near-linear
// I/O, while the block-nested-loop join's reads grow roughly quadratically
// in the number of blocks.
func TestExternalIOShape(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 20000, Dims: 4, Seed: 1, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.05}

	run := func(fn func(*dataset.Dataset, join.Options, ExternalConfig, pairs.Sink), pool int) (reads, writes, results int64) {
		var c stats.Counters
		o := opt
		o.Counters = &c
		var sink pairs.Counter
		fn(ds, o, ExternalConfig{PageBytes: 4096, PoolPages: pool}, &sink)
		s := c.Snapshot()
		return s.PageReads, s.PageWrites, sink.N()
	}

	ekReads, ekWrites, ekResults := run(ExternalSelfJoin, 32)
	bnReads, _, bnResults := run(ExternalBlockNestedLoopSelfJoin, 32)
	if ekResults != bnResults {
		t.Fatalf("result mismatch: %d vs %d", ekResults, bnResults)
	}
	if ekResults == 0 {
		t.Fatal("no results; experiment degenerate")
	}
	// ε-kdB external: close to 2 read passes over its written pages.
	if ekReads > 4*ekWrites {
		t.Errorf("external ε-kdB read %d pages for %d written — not near-linear", ekReads, ekWrites)
	}
	// BNL with a small pool must read much more than the ε-kdB join.
	if bnReads < 3*ekReads {
		t.Errorf("BNL reads %d not ≫ ε-kdB reads %d", bnReads, ekReads)
	}
}

// TestExternalIODropsWithPool: giving the pool more pages must not increase
// reads, and a pool big enough for everything drops re-reads to ~one scan.
func TestExternalIODropsWithPool(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 8000, Dims: 4, Seed: 2, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.05}
	var prev int64 = -1
	for _, pool := range []int{2, 8, 64, 4096} {
		var c stats.Counters
		o := opt
		o.Counters = &c
		var sink pairs.Counter
		ExternalSelfJoin(ds, o, ExternalConfig{PageBytes: 1024, PoolPages: pool}, &sink)
		reads := c.Snapshot().PageReads
		if prev >= 0 && reads > prev {
			t.Errorf("pool %d: reads %d exceed smaller pool's %d", pool, reads, prev)
		}
		prev = reads
	}
}

func TestExternalEmptyAndSmall(t *testing.T) {
	var sink pairs.Counter
	cfg := ExternalConfig{PageBytes: 128, PoolPages: 2}
	ExternalSelfJoin(dataset.New(3, 0), join.Options{Metric: vec.L2, Eps: 0.1}, cfg, &sink)
	ExternalSelfJoin(dataset.FromPoints([][]float64{{1, 2, 3}}), join.Options{Metric: vec.L2, Eps: 0.1}, cfg, &sink)
	ExternalBlockNestedLoopSelfJoin(dataset.New(3, 0), join.Options{Metric: vec.L2, Eps: 0.1}, cfg, &sink)
	if sink.N() != 0 {
		t.Error("degenerate external joins produced pairs")
	}
}

func TestExternalJoinOracle(t *testing.T) {
	fn := func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
		ExternalJoin(a, b, opt, ExternalConfig{PageBytes: 256, PoolPages: 4}, sink)
	}
	jointest.CheckJoin(t, fn, 40, 904)
}

func TestExternalJoinDimsMismatchPanics(t *testing.T) {
	a := dataset.FromPoints([][]float64{{0, 0}})
	b := dataset.FromPoints([][]float64{{0, 0, 0}})
	defer func() {
		if recover() == nil {
			t.Error("dims mismatch did not panic")
		}
	}()
	ExternalJoin(a, b, join.Options{Metric: vec.L2, Eps: 0.1},
		ExternalConfig{PoolPages: 2}, &pairs.Counter{})
}

func TestExternalJoinEmptySides(t *testing.T) {
	var sink pairs.Counter
	cfg := ExternalConfig{PoolPages: 2}
	one := dataset.FromPoints([][]float64{{1, 2}})
	ExternalJoin(dataset.New(2, 0), one, join.Options{Metric: vec.L2, Eps: 0.1}, cfg, &sink)
	ExternalJoin(one, dataset.New(2, 0), join.Options{Metric: vec.L2, Eps: 0.1}, cfg, &sink)
	if sink.N() != 0 {
		t.Error("empty external joins produced pairs")
	}
}

// TestExternalJoinIOLinear: like the self-join, the partitioned two-set
// join must stay near a constant number of scans.
func TestExternalJoinIOLinear(t *testing.T) {
	a := synth.Generate(synth.Config{N: 10000, Dims: 4, Seed: 5, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 10000, Dims: 4, Seed: 6, Dist: synth.Uniform})
	var c stats.Counters
	opt := join.Options{Metric: vec.L2, Eps: 0.05, Counters: &c}
	var sink pairs.Counter
	ExternalJoin(a, b, opt, ExternalConfig{PoolPages: 32}, &sink)
	s := c.Snapshot()
	if s.PageReads > 4*s.PageWrites {
		t.Errorf("external two-set join read %d pages for %d written", s.PageReads, s.PageWrites)
	}
	if sink.N() == 0 {
		t.Error("degenerate workload: no pairs")
	}
}
