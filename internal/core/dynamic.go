package core

import (
	"fmt"
	"sort"

	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// Insert indexes point i of the tree's dataset (which must already contain
// it). The point routes down the existing stripe grid; a leaf that
// overflows the threshold is re-striped in place. Points outside the
// tree's frame are clamped into the edge stripes — that only costs
// selectivity, never correctness, because clamping merges stripes rather
// than separating them.
//
// The tree must have been built with a non-empty frame (Build over a
// non-empty dataset, or BuildWithBox): an empty frame has no stripe grid
// to route through.
func (t *Tree) Insert(i int) {
	if t.box.Empty() {
		panic("core: Insert into a tree with an empty frame; build with BuildWithBox to pre-size the stripe grid")
	}
	if i < 0 || i >= t.ds.Len() {
		panic(fmt.Sprintf("core: Insert of index %d outside dataset of %d points", i, t.ds.Len()))
	}
	t.root = t.insert(t.root, int32(i), 0)
}

func (t *Tree) insert(n *node, i int32, depth int) *node {
	if n == nil {
		return t.build([]int32{i}, depth)
	}
	if n.leaf() {
		// Keep the leaf sorted on the sweep dimension.
		data, dims := t.ds.Flat(), t.ds.Dims()
		v := data[int(i)*dims+t.sweepDim]
		at := sort.Search(len(n.pts), func(k int) bool {
			return data[int(n.pts[k])*dims+t.sweepDim] > v
		})
		n.pts = append(n.pts, 0)
		copy(n.pts[at+1:], n.pts[at:])
		n.pts[at] = i
		if len(n.pts) > t.leafThreshold && depth < t.ds.Dims() {
			// Re-stripe the overflowing leaf; build re-counts it.
			t.nodes--
			t.leaves--
			return t.build(n.pts, depth)
		}
		return n
	}
	dim := t.order[depth]
	s := t.stripeOf(t.ds.Point(int(i))[dim], dim)
	n.children[s] = t.insert(n.children[s], i, depth+1)
	return n
}

// Delete removes point index i from the tree, returning whether it was
// indexed. Emptied leaves are unlinked; internal nodes whose stripes all
// empty collapse to nil so joins and queries never descend dead branches.
// The dataset itself is untouched (indexes of other points must stay
// stable), so the deleted point's storage is simply no longer referenced.
func (t *Tree) Delete(i int) bool {
	if t.root == nil {
		return false
	}
	if i < 0 || i >= t.ds.Len() {
		return false
	}
	var removed bool
	t.root, removed = t.remove(t.root, int32(i), 0)
	return removed
}

func (t *Tree) remove(n *node, i int32, depth int) (*node, bool) {
	if n.leaf() {
		for at, idx := range n.pts {
			if idx != i {
				continue
			}
			n.pts = append(n.pts[:at], n.pts[at+1:]...)
			if len(n.pts) == 0 {
				t.nodes--
				t.leaves--
				return nil, true
			}
			return n, true
		}
		return n, false
	}
	dim := t.order[depth]
	s := t.stripeOf(t.ds.Point(int(i))[dim], dim)
	child := n.children[s]
	if child == nil {
		return n, false
	}
	next, removed := t.remove(child, i, depth+1)
	if !removed {
		return n, false
	}
	n.children[s] = next
	if next == nil {
		// Collapse the node if every stripe is now empty.
		for _, c := range n.children {
			if c != nil {
				return n, true
			}
		}
		t.nodes--
		return nil, true
	}
	return n, true
}

// RangeQuery visits every indexed point within radius of q under the given
// metric. The radius must not exceed the ε the tree was built for: the
// stripe grid only guarantees that closer points sit in adjacent stripes.
func (t *Tree) RangeQuery(q []float64, metric vec.Metric, radius float64, counters *stats.Counters, visit func(i int)) {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("core: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	if !(radius > 0) || radius > t.eps {
		panic(fmt.Sprintf("core: query radius %g outside (0, %g]; the stripe grid is built for ε=%g", radius, t.eps, t.eps))
	}
	if t.root == nil {
		return
	}
	th := vec.Threshold(metric, radius)
	f := t.ds.FlatView()
	data, dims := f.Data, f.Dims
	emit := func(yi int32) { visit(int(yi)) }
	var visits, comps int64
	var rec func(n *node, depth int)
	rec = func(n *node, depth int) {
		visits++
		if n.leaf() {
			v := q[t.sweepDim]
			// The leaf is sweep-sorted: only the window [v−r, v+r] can hit.
			lo := sort.Search(len(n.pts), func(k int) bool {
				return data[int(n.pts[k])*dims+t.sweepDim] >= v-radius
			})
			hi := lo
			for hi < len(n.pts) && data[int(n.pts[hi])*dims+t.sweepDim] <= v+radius {
				hi++
			}
			c, _ := vec.ProbeQueryFlat(metric, q, f, n.pts[lo:hi], th, emit)
			comps += c
			return
		}
		dim := t.order[depth]
		s := t.stripeOf(q[dim], dim)
		for _, cs := range [3]int{s - 1, s, s + 1} {
			if cs < 0 || cs >= len(n.children) || n.children[cs] == nil {
				continue
			}
			rec(n.children[cs], depth+1)
		}
	}
	rec(t.root, 0)
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
}
