package core

import (
	"fmt"
	"math"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pager"
	"simjoin/internal/pairs"
)

// ExternalConfig parameterizes the disk-resident join algorithms. All page
// traffic flows through a pager.Pool so the harness can report the I/O a
// real disk would have served (the F7 experiment).
type ExternalConfig struct {
	// PageBytes is the simulated page size (0 selects the pager default).
	PageBytes int
	// PoolPages is the buffer-pool budget in pages (required, ≥ 1).
	PoolPages int
	// MaxPartitions caps the stripe-partition count of the external ε-kdB
	// join so tiny ε values do not explode the file count (0 selects 512).
	// Partition width never drops below ε, preserving adjacency.
	MaxPartitions int
	// Tree configures the in-memory ε-kdB trees used inside partitions.
	Tree Config
}

func (c ExternalConfig) withDefaults() ExternalConfig {
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 512
	}
	if c.PoolPages < 1 {
		panic(fmt.Sprintf("core: external join needs PoolPages ≥ 1, got %d", c.PoolPages))
	}
	return c
}

// mapSink translates partition-local indexes back to dataset-global ones.
type mapSink struct {
	sink   pairs.Sink
	ga, gb []int32
}

func (m mapSink) Emit(i, j int) { m.sink.Emit(int(m.ga[i]), int(m.gb[j])) }

// ExternalSelfJoin runs the partitioned external ε-kdB self-join: points
// are striped on dimension 0 into partitions of width max(ε, extent/cap)
// and written to simulated disk; each partition is then joined with itself
// and its successor using in-memory ε-kdB trees, with every page access
// charged through an LRU pool of cfg.PoolPages pages. With a pool that
// holds two partitions the algorithm reads each page about twice (once as
// "self", once as the predecessor's neighbor — the second visit usually
// hits the pool), so total I/O stays near two scans plus the partition
// write.
func ExternalSelfJoin(ds *dataset.Dataset, opt join.Options, cfg ExternalConfig, sink pairs.Sink) {
	opt.MustValidate()
	cfg = cfg.withDefaults()
	if ds.Len() < 2 {
		return
	}
	store := pager.NewStore(cfg.PageBytes, opt.Counters)
	dims := ds.Dims()
	box := ds.Bounds()
	ext := box.Hi[0] - box.Lo[0]
	width := opt.Eps
	if ext/width > float64(cfg.MaxPartitions) {
		width = ext / float64(cfg.MaxPartitions)
	}
	parts := 1
	if ext > 0 {
		parts = int(math.Ceil(ext / width))
		if parts < 1 {
			parts = 1
		}
	}

	// Write pass: one file per stripe partition; rows carry the global
	// index as coordinate 0 (exact in a float64 for any realistic size).
	files := make([]*pager.File, parts)
	for s := range files {
		files[s] = store.CreateFile(dims + 1)
	}
	row := make([]float64, dims+1)
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		s := int((p[0] - box.Lo[0]) / width)
		if s < 0 {
			s = 0
		}
		if s > parts-1 {
			s = parts - 1
		}
		row[0] = float64(i)
		copy(row[1:], p)
		files[s].Append(row)
	}
	for _, f := range files {
		f.Flush()
	}

	pool := pager.NewPool(store, cfg.PoolPages)
	for s := 0; s < parts; s++ {
		cur, gcur := loadPartition(pool, files[s], dims)
		if cur == nil {
			continue
		}
		// Self-join within the partition.
		if cur.Len() > 1 {
			t := Build(cur, opt.Eps, cfg.Tree)
			t.SelfJoin(opt, mapSink{sink: sink, ga: gcur, gb: gcur})
		}
		// Cross-join with the next partition (stripe adjacency on dim 0).
		if s+1 < parts {
			next, gnext := loadPartition(pool, files[s+1], dims)
			if next != nil {
				jbox := cur.Bounds()
				jbox.ExtendBox(next.Bounds())
				ta := BuildWithBox(cur, opt.Eps, jbox, cfg.Tree)
				tb := BuildWithBox(next, opt.Eps, jbox, cfg.Tree)
				JoinTrees(ta, tb, opt, mapSink{sink: sink, ga: gcur, gb: gnext})
			}
		}
	}
}

// ExternalJoin runs the partitioned external two-set ε-kdB join: both
// datasets are striped on dimension 0 against one shared frame (so stripe
// s of A can only match stripes s−1, s, s+1 of B), written to simulated
// disk, and joined stripe-by-stripe with in-memory ε-kdB trees under the
// LRU pool's I/O accounting. Pairs are emitted as (a-index, b-index).
func ExternalJoin(a, b *dataset.Dataset, opt join.Options, cfg ExternalConfig, sink pairs.Sink) {
	opt.MustValidate()
	cfg = cfg.withDefaults()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	if a.Dims() != b.Dims() {
		panic(fmt.Sprintf("core: external join over %d-dim and %d-dim sets", a.Dims(), b.Dims()))
	}
	store := pager.NewStore(cfg.PageBytes, opt.Counters)
	dims := a.Dims()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ext := box.Hi[0] - box.Lo[0]
	width := opt.Eps
	if ext/width > float64(cfg.MaxPartitions) {
		width = ext / float64(cfg.MaxPartitions)
	}
	parts := 1
	if ext > 0 {
		parts = int(math.Ceil(ext / width))
		if parts < 1 {
			parts = 1
		}
	}
	partition := func(ds *dataset.Dataset) []*pager.File {
		files := make([]*pager.File, parts)
		for s := range files {
			files[s] = store.CreateFile(dims + 1)
		}
		row := make([]float64, dims+1)
		for i := 0; i < ds.Len(); i++ {
			p := ds.Point(i)
			s := int((p[0] - box.Lo[0]) / width)
			if s < 0 {
				s = 0
			}
			if s > parts-1 {
				s = parts - 1
			}
			row[0] = float64(i)
			copy(row[1:], p)
			files[s].Append(row)
		}
		for _, f := range files {
			f.Flush()
		}
		return files
	}
	fa := partition(a)
	fb := partition(b)

	pool := pager.NewPool(store, cfg.PoolPages)
	for s := 0; s < parts; s++ {
		cur, gcur := loadPartition(pool, fa[s], dims)
		if cur == nil {
			continue
		}
		for _, bs := range [3]int{s - 1, s, s + 1} {
			if bs < 0 || bs >= parts {
				continue
			}
			other, gother := loadPartition(pool, fb[bs], dims)
			if other == nil {
				continue
			}
			jbox := cur.Bounds()
			jbox.ExtendBox(other.Bounds())
			ta := BuildWithBox(cur, opt.Eps, jbox, cfg.Tree)
			tb := BuildWithBox(other, opt.Eps, jbox, cfg.Tree)
			JoinTrees(ta, tb, opt, mapSink{sink: sink, ga: gcur, gb: gother})
		}
	}
}

// ExternalBlockNestedLoopSelfJoin is the external baseline: the dataset is
// written sequentially and joined block against block, every block pair
// whose dim-0 ranges overlap within ε being loaded through the same LRU
// pool. Its I/O grows quadratically once the data outgrows the pool — the
// curve F7 contrasts with the partitioned ε-kdB join.
func ExternalBlockNestedLoopSelfJoin(ds *dataset.Dataset, opt join.Options, cfg ExternalConfig, sink pairs.Sink) {
	opt.MustValidate()
	cfg = cfg.withDefaults()
	if ds.Len() < 2 {
		return
	}
	store := pager.NewStore(cfg.PageBytes, opt.Counters)
	dims := ds.Dims()
	file := store.CreateFile(dims + 1)
	row := make([]float64, dims+1)
	for i := 0; i < ds.Len(); i++ {
		row[0] = float64(i)
		copy(row[1:], ds.Point(i))
		file.Append(row)
	}
	file.Flush()

	pool := pager.NewPool(store, cfg.PoolPages)
	blockPages := cfg.PoolPages / 2
	if blockPages < 1 {
		blockPages = 1
	}
	total := file.NumPages()
	for ps := 0; ps < total; ps += blockPages {
		pe := ps + blockPages
		if pe > total {
			pe = total
		}
		a, ga := loadPages(pool, file, dims, ps, pe)
		if a.Len() > 1 {
			t := Build(a, opt.Eps, cfg.Tree)
			t.SelfJoin(opt, mapSink{sink: sink, ga: ga, gb: ga})
		}
		for qs := pe; qs < total; qs += blockPages {
			qe := qs + blockPages
			if qe > total {
				qe = total
			}
			b, gb := loadPages(pool, file, dims, qs, qe)
			if a.Len() == 0 || b.Len() == 0 {
				continue
			}
			jbox := a.Bounds()
			jbox.ExtendBox(b.Bounds())
			ta := BuildWithBox(a, opt.Eps, jbox, cfg.Tree)
			tb := BuildWithBox(b, opt.Eps, jbox, cfg.Tree)
			JoinTrees(ta, tb, opt, mapSink{sink: sink, ga: ga, gb: gb})
		}
	}
}

// loadPartition reads an entire partition file through the pool, returning
// the coordinate dataset and the global-index mapping (nil for an empty
// partition).
func loadPartition(pool *pager.Pool, f *pager.File, dims int) (*dataset.Dataset, []int32) {
	if f.Len() == 0 {
		return nil, nil
	}
	return loadPages(pool, f, dims, 0, f.NumPages())
}

// loadPages reads pages [ps, pe) of f through the pool, splitting each row
// into its global index (coordinate 0) and point coordinates.
func loadPages(pool *pager.Pool, f *pager.File, dims, ps, pe int) (*dataset.Dataset, []int32) {
	out := dataset.New(dims, (pe-ps)*f.PointsPerPage())
	var gidx []int32
	for pg := ps; pg < pe; pg++ {
		data := pool.Fetch(f, pg)
		for r := 0; r < f.PagePoints(pg); r++ {
			rec := pager.PagePoint(data, dims+1, r)
			gidx = append(gidx, int32(rec[0]))
			out.Append(rec[1:])
		}
	}
	return out, gidx
}
