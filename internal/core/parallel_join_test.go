package core

import (
	"math/rand"
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestJoinTreesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		na, nb := 200+rng.Intn(3000), 200+rng.Intn(3000)
		d := 2 + rng.Intn(6)
		eps := 0.05 + rng.Float64()*0.1
		a := synth.Generate(synth.Config{N: na, Dims: d, Seed: rng.Int63(), Dist: synth.GaussianClusters})
		b := synth.Generate(synth.Config{N: nb, Dims: d, Seed: rng.Int63(), Dist: synth.GaussianClusters})
		box := a.Bounds()
		box.ExtendBox(b.Bounds())
		ta := BuildWithBox(a, eps, box, Config{})
		tb := BuildWithBox(b, eps, box, Config{})
		opt := join.Options{Metric: vec.L2, Eps: eps, Workers: 4}

		serial := &pairs.Collector{}
		JoinTrees(ta, tb, opt, serial)
		sh := pairs.NewSharded(false)
		JoinTreesParallel(ta, tb, opt, sh.Handle)
		if !pairs.Equal(sh.Merged(), serial.Sorted()) {
			t.Fatalf("trial %d: parallel two-set join differs: %s", trial, pairs.Diff(sh.Merged(), serial.Pairs))
		}
	}
}

func TestJoinTreesParallelLeafRoot(t *testing.T) {
	// One side so small its root is a leaf — must fall back to serial and
	// stay correct.
	a := synth.Generate(synth.Config{N: 3, Dims: 3, Seed: 1, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 2000, Dims: 3, Seed: 2, Dist: synth.Uniform})
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ta := BuildWithBox(a, 0.1, box, Config{})
	tb := BuildWithBox(b, 0.1, box, Config{})
	opt := join.Options{Metric: vec.L2, Eps: 0.1, Workers: 4}
	want := &pairs.Collector{}
	brute.Join(a, b, opt, want)
	sh := pairs.NewSharded(false)
	JoinTreesParallel(ta, tb, opt, sh.Handle)
	if !pairs.Equal(sh.Merged(), want.Sorted()) {
		t.Errorf("leaf-root parallel join wrong: %s", pairs.Diff(sh.Merged(), want.Pairs))
	}
}

func TestDeleteThenJoinMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(400)
		d := 1 + rng.Intn(6)
		eps := 0.05 + rng.Float64()*0.3
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		tr := Build(ds, eps, Config{LeafThreshold: 1 + rng.Intn(16)})

		// Delete a random subset.
		deleted := map[int]bool{}
		for len(deleted) < n/3 {
			i := rng.Intn(n)
			if deleted[i] {
				continue
			}
			if !tr.Delete(i) {
				t.Fatalf("Delete(%d) reported missing", i)
			}
			deleted[i] = true
		}
		if err := tr.checkSurvivors(deleted); err != nil {
			t.Fatal(err)
		}
		// Second delete of the same index reports false.
		for i := range deleted {
			if tr.Delete(i) {
				t.Fatalf("double Delete(%d) reported success", i)
			}
			break
		}

		// Join over the survivors must equal brute over the survivor set.
		opt := join.Options{Metric: vec.L2, Eps: eps}
		got := &pairs.Collector{Canonical: true}
		tr.SelfJoin(opt, got)
		want := &pairs.Collector{Canonical: true}
		keep := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !deleted[i] {
				keep = append(keep, i)
			}
		}
		sub := ds.Subset(keep)
		// Map subset-local pairs back to original indexes.
		mapped := &pairs.Collector{Canonical: true}
		brute.SelfJoin(sub, opt, want)
		for _, p := range want.Pairs {
			mapped.Emit(keep[p.I], keep[p.J])
		}
		if !pairs.Equal(got.Sorted(), mapped.Sorted()) {
			t.Fatalf("trial %d: post-delete join wrong: %s", trial, pairs.Diff(got.Pairs, mapped.Pairs))
		}
	}
}

// checkSurvivors verifies the structural invariants restricted to
// non-deleted points: every survivor present exactly once, no empty
// leaves, no all-nil internals.
func (t *Tree) checkSurvivors(deleted map[int]bool) error {
	seen := map[int]bool{}
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.leaf() {
			if len(n.pts) == 0 {
				return errEmptyLeaf
			}
			for _, i := range n.pts {
				if deleted[int(i)] {
					return errDeletedPresent
				}
				if seen[int(i)] {
					return errDuplicate
				}
				seen[int(i)] = true
			}
			return nil
		}
		any := false
		for _, c := range n.children {
			if c == nil {
				continue
			}
			any = true
			if err := walk(c); err != nil {
				return err
			}
		}
		if !any {
			return errHollowNode
		}
		return nil
	}
	if t.root != nil {
		if err := walk(t.root); err != nil {
			return err
		}
	}
	for i := 0; i < t.ds.Len(); i++ {
		if !deleted[i] && !seen[i] {
			return errSurvivorMissing
		}
	}
	return nil
}

var (
	errEmptyLeaf       = errorString("core: empty leaf after delete")
	errDeletedPresent  = errorString("core: deleted point still indexed")
	errDuplicate       = errorString("core: point indexed twice")
	errHollowNode      = errorString("core: internal node with no children")
	errSurvivorMissing = errorString("core: surviving point missing")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func TestDeleteAllThenReinsert(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 60, Dims: 3, Seed: 3, Dist: synth.Uniform})
	tr := Build(ds, 0.2, Config{LeafThreshold: 4})
	for i := 0; i < ds.Len(); i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.root != nil {
		t.Fatal("root not nil after deleting everything")
	}
	var sink pairs.Counter
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.2}, &sink)
	if sink.N() != 0 {
		t.Fatal("empty tree joined pairs")
	}
	// Reinsert everything; join must equal a fresh build.
	for i := 0; i < ds.Len(); i++ {
		tr.Insert(i)
	}
	got := &pairs.Collector{Canonical: true}
	tr.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.2}, got)
	want := &pairs.Collector{Canonical: true}
	Build(ds, 0.2, Config{LeafThreshold: 4}).SelfJoin(join.Options{Metric: vec.L2, Eps: 0.2}, want)
	if !pairs.Equal(got.Sorted(), want.Sorted()) {
		t.Errorf("post-reinsert join wrong: %s", pairs.Diff(got.Pairs, want.Pairs))
	}
}

func TestDeleteDegenerate(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0.5, 0.5}})
	tr := Build(ds, 0.1, Config{})
	if tr.Delete(7) {
		t.Error("out-of-range delete succeeded")
	}
	if tr.Delete(-1) {
		t.Error("negative delete succeeded")
	}
	if !tr.Delete(0) {
		t.Error("valid delete failed")
	}
	empty := Build(dataset.New(2, 0), 0.1, Config{})
	if empty.Delete(0) {
		t.Error("delete from empty tree succeeded")
	}
}
