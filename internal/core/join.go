package core

import (
	"fmt"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoin builds an ε-kdB tree with default configuration over ds and
// reports every unordered pair within opt.Eps once. It is the convenience
// entry point with the shared algorithm signature; reuse a Tree directly
// when running several joins over one build.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	start := time.Now()
	t := Build(ds, opt.Eps, Config{})
	opt.Timing().AddBuild(time.Since(start))
	t.SelfJoin(opt, sink)
}

// Join builds two frame-aligned ε-kdB trees (over the joint bounding box)
// and reports every (a-index, b-index) pair within opt.Eps.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ta := BuildWithBox(a, opt.Eps, box, Config{})
	tb := BuildWithBox(b, opt.Eps, box, Config{})
	opt.Timing().AddBuild(time.Since(start))
	JoinTrees(ta, tb, opt, sink)
}

// JoinParallel is Join with the root's stripe work spread across
// opt.WorkerCount() goroutines: both trees are built with BuildWithBox
// over the joint bounding box (so they share a frame) and handed to
// JoinTreesParallel. newSink supplies one private sink per worker.
func JoinParallel(a, b *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ta := BuildWithBox(a, opt.Eps, box, Config{})
	tb := BuildWithBox(b, opt.Eps, box, Config{})
	opt.Timing().AddBuild(time.Since(start))
	JoinTreesParallel(ta, tb, opt, newSink)
}

// SelfJoin runs the similarity self-join on a built tree. opt.Eps must not
// exceed the ε the tree was built for: stripes of width build-ε confine
// candidates for any smaller threshold too, so one tree built at the
// largest ε of interest serves every tighter query. A larger opt.Eps would
// silently lose pairs, so it panics.
func (t *Tree) SelfJoin(opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if opt.Eps > t.eps {
		panic(fmt.Sprintf("core: join eps %g exceeds build eps %g (stripe adjacency would lose pairs)", opt.Eps, t.eps))
	}
	if t.root == nil {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	j := t.newJoiner(opt, sink)
	j.selfNode(t.root, 0)
	j.flush(opt)
}

// JoinTrees runs the two-set join over trees that share a frame (same ε,
// same box, same split order — build both with BuildWithBox over the joint
// bounding box). Pairs are emitted as (ta-index, tb-index).
func JoinTrees(ta, tb *Tree, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if opt.Eps > ta.eps {
		panic(fmt.Sprintf("core: join eps %g exceeds build eps %g (stripe adjacency would lose pairs)", opt.Eps, ta.eps))
	}
	if !ta.sameFrame(tb) {
		panic("core: joining trees with different frames (eps/box/order); build both with BuildWithBox over the joint bounding box")
	}
	if ta.root == nil || tb.root == nil {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	j := ta.newJoiner(opt, sink)
	j.fb = tb.ds.KernelView(opt.Float32)
	j.crossNodes(ta.root, tb.root, 0, false)
	j.flush(opt)
}

// joiner carries the state of one join run. Side A always refers to the
// first dataset; the flip flag on recursion tracks orientation so emitted
// pairs stay (a-index, b-index) even when the traversal descends the B tree
// while holding a flat A point list.
type joiner struct {
	fa, fb   vec.Flat // kernel views of the A and B datasets
	metric   vec.Metric
	eps      float64 // stripe width: the ε the tree was built with
	qeps     float64 // query threshold: ≤ eps; drives windows and tests
	th       float64
	sweepDim int
	order    []int
	frameLo  []float64 // stripe-grid origin per dimension (shared frame)
	sink     pairs.Sink

	// emitFwd/emitRev adapt the sink to the kernels' int32 callbacks, built
	// once per joiner so the leaf sweeps don't allocate a closure per call.
	emitFwd, emitRev func(x, y int32)

	// bucketScratch[depth] is the stable-bucketing buffer for ptsVsNode
	// calls at that depth. The traversal is depth-first, so one buffer per
	// depth is never live twice; reusing them removes the dominant join
	// allocation.
	bucketScratch [][]int32

	cand, res, visits int64
}

// scratchAt returns the depth's bucketing buffer with capacity ≥ n.
func (j *joiner) scratchAt(depth, n int) []int32 {
	for len(j.bucketScratch) <= depth {
		j.bucketScratch = append(j.bucketScratch, nil)
	}
	if cap(j.bucketScratch[depth]) < n {
		j.bucketScratch[depth] = make([]int32, n)
	}
	return j.bucketScratch[depth][:n]
}

func (j *joiner) flush(opt join.Options) {
	c := opt.Stats()
	c.AddCandidates(j.cand)
	c.AddDistComps(j.cand)
	c.AddResults(j.res)
	c.AddNodeVisits(j.visits)
}

// selfNode joins a subtree with itself: every stripe self-joins, and every
// adjacent stripe pair cross-joins exactly once.
func (j *joiner) selfNode(n *node, depth int) {
	j.visits++
	if n.leaf() {
		j.leafSelf(n.pts)
		return
	}
	for s, c := range n.children {
		if c == nil {
			continue
		}
		j.selfNode(c, depth+1)
		if s+1 < len(n.children) && n.children[s+1] != nil {
			j.crossNodes(c, n.children[s+1], depth+1, false)
		}
	}
}

// crossNodes joins two distinct subtrees at the same depth. flip reports
// that a is from the B side (so emits must swap).
func (j *joiner) crossNodes(a, b *node, depth int, flip bool) {
	j.visits++
	switch {
	case a.leaf() && b.leaf():
		j.crossSweep(a.pts, b.pts, flip)
	case a.leaf():
		j.ptsVsNode(a.pts, b, depth, flip)
	case b.leaf():
		j.ptsVsNode(b.pts, a, depth, !flip)
	default:
		// Both split dimension order[depth] on the same global stripe
		// grid: stripe s of a can only meet stripes s−1, s, s+1 of b. Each
		// ordered adjacent stripe pair is visited exactly once: (s, s),
		// (s, s+1) and (s+1, s) at iteration s — independently of which
		// stripes happen to be empty.
		ac, bc := a.children, b.children
		for s := range ac {
			if bc[s] != nil {
				if ac[s] != nil {
					j.crossNodes(ac[s], bc[s], depth+1, flip)
				}
				if s+1 < len(ac) && ac[s+1] != nil {
					j.crossNodes(ac[s+1], bc[s], depth+1, flip)
				}
			}
			if ac[s] != nil && s+1 < len(bc) && bc[s+1] != nil {
				j.crossNodes(ac[s], bc[s+1], depth+1, flip)
			}
		}
	}
}

// ptsVsNode joins a flat, sweep-sorted point list (whose region spans the
// node's split dimension) against subtree n. flip reports that pts is from
// the B side. The list is bucketed by the split dimension's stripes so each
// child only meets the points of its own and adjacent stripes.
func (j *joiner) ptsVsNode(pts []int32, n *node, depth int, flip bool) {
	j.visits++
	if n.leaf() {
		j.crossSweep(pts, n.pts, flip)
		return
	}
	ptsF := j.fa
	if flip {
		ptsF = j.fb
	}
	data, dims := ptsF.Data, ptsF.Dims
	dim := j.order[depth]
	s := len(n.children)
	// Stable counting-sort bucketing into the depth's scratch buffer:
	// bucket order preserves the sweep-dimension sort the leaf sweeps rely
	// on, and the buffer reuse keeps this allocation-free after warm-up.
	buf := j.scratchAt(depth, len(pts))
	counts := make([]int32, s+1)
	for _, i := range pts {
		counts[j.stripeOfDim(data[int(i)*dims+dim], dim, s)+1]++
	}
	for st := 0; st < s; st++ {
		counts[st+1] += counts[st]
	}
	cur := make([]int32, s)
	copy(cur, counts[:s])
	for _, i := range pts {
		st := j.stripeOfDim(data[int(i)*dims+dim], dim, s)
		buf[cur[st]] = i
		cur[st]++
	}
	bucket := func(st int) []int32 {
		return buf[counts[st]:counts[st+1]:counts[st+1]]
	}
	for st, c := range n.children {
		if c == nil {
			continue
		}
		for _, bs := range [3]int{st - 1, st, st + 1} {
			if bs < 0 || bs >= s || counts[bs+1] == counts[bs] {
				continue
			}
			j.ptsVsNode(bucket(bs), c, depth+1, flip)
		}
	}
}

// stripeOfDim mirrors Tree.stripeOf using the joiner's frame (both trees
// share it).
func (j *joiner) stripeOfDim(v float64, dim, stripes int) int {
	s := int((v - j.boxLo(dim)) / j.eps)
	if s < 0 {
		s = 0
	}
	if s > stripes-1 {
		s = stripes - 1
	}
	return s
}

func (j *joiner) boxLo(dim int) float64 { return j.frameLo[dim] }

// leafSelf reports in-range pairs inside one sweep-sorted leaf: for each
// point, only the followers within the ε sweep window are tested. The whole
// sweep runs inside one metric-specialized flat kernel.
func (j *joiner) leafSelf(pts []int32) {
	cand, res := vec.SelfSweepFlat(j.metric, j.fa, pts, j.sweepDim, j.qeps, j.th, j.emitFwd)
	j.cand += cand
	j.res += res
}

// crossSweep merges two sweep-sorted lists, testing only pairs whose sweep
// coordinates differ by at most ε. flip reports that x is from the B side.
func (j *joiner) crossSweep(x, y []int32, flip bool) {
	fx, fy, emit := j.fa, j.fb, j.emitFwd
	if flip {
		fx, fy, emit = j.fb, j.fa, j.emitRev
	}
	cand, res := vec.CrossSweepFlat(j.metric, fx, fy, x, y, j.sweepDim, j.qeps, j.th, emit)
	j.cand += cand
	j.res += res
}
