package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simjoin/internal/brute"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// quickCase derives a random-but-reproducible workload from a seed.
func quickCase(seed int64) (cfg synth.Config, tree Config, eps float64, metric vec.Metric) {
	rng := rand.New(rand.NewSource(seed))
	cfg = synth.Config{
		N:    2 + rng.Intn(180),
		Dims: 1 + rng.Intn(8),
		Seed: rng.Int63(),
		Dist: synth.AllDistributions()[rng.Intn(4)],
	}
	tree = Config{LeafThreshold: 1 + rng.Intn(32), BiasedSplit: rng.Intn(2) == 1}
	eps = 0.01 + rng.Float64()*0.5
	metric = vec.Metric(rng.Intn(3))
	return
}

// TestQuickStructuralInvariants: for arbitrary workloads, the built tree
// satisfies every structural invariant.
func TestQuickStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		cfg, tcfg, eps, _ := quickCase(seed)
		tr := Build(synth.Generate(cfg), eps, tcfg)
		return tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickOracleEquivalence: for arbitrary workloads, the join answer
// equals brute force exactly.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		cfg, tcfg, eps, metric := quickCase(seed)
		ds := synth.Generate(cfg)
		opt := join.Options{Metric: metric, Eps: eps}
		want := &pairs.Collector{Canonical: true}
		brute.SelfJoin(ds, opt, want)
		got := &pairs.Collector{Canonical: true}
		tr := Build(ds, eps, tcfg)
		tr.SelfJoin(opt, got)
		return pairs.Equal(pairs.Dedup(got.Sorted()), want.Sorted())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertDeleteConsistency: random interleavings of inserts and
// deletes keep the tree consistent with a fresh build over the survivors.
func TestQuickInsertDeleteConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, tcfg, eps, metric := quickCase(seed)
		ds := synth.Generate(cfg)
		tr := Build(ds, eps, tcfg)

		alive := make([]bool, ds.Len())
		for i := range alive {
			alive[i] = true
		}
		// Random deletes (about a third), then reinsert a few.
		for k := 0; k < ds.Len()/3; k++ {
			i := rng.Intn(ds.Len())
			if alive[i] {
				if !tr.Delete(i) {
					return false
				}
				alive[i] = false
			}
		}
		for i := range alive {
			if !alive[i] && rng.Intn(2) == 0 {
				tr.Insert(i)
				alive[i] = true
			}
		}
		var keep []int
		for i, a := range alive {
			if a {
				keep = append(keep, i)
			}
		}
		if len(keep) < 2 {
			return true
		}
		opt := join.Options{Metric: metric, Eps: eps}
		got := &pairs.Collector{Canonical: true}
		tr.SelfJoin(opt, got)
		sub := ds.Subset(keep)
		subPairs := &pairs.Collector{Canonical: true}
		brute.SelfJoin(sub, opt, subPairs)
		want := &pairs.Collector{Canonical: true}
		for _, p := range subPairs.Pairs {
			want.Emit(keep[p.I], keep[p.J])
		}
		return pairs.Equal(got.Sorted(), want.Sorted())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGrowDeleteMatchesBatchRebuild: a tree seeded from a prefix
// and grown point by point through the dynamic insert path — with
// deletes interleaved into the growth — answers joins exactly like a
// batch build over the alive subset. This is the live-engine usage
// pattern: the index is seeded once and never rebuilt as the dataset
// grows, even when appended points land outside the seed frame.
func TestQuickGrowDeleteMatchesBatchRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, tcfg, eps, metric := quickCase(seed)
		full := synth.Generate(cfg)
		if full.Len() < 4 {
			return true
		}
		prefix := 1 + rng.Intn(full.Len()-1)
		ds := full.Head(prefix).Clone()
		tr := Build(ds, eps, tcfg)

		alive := make([]bool, full.Len())
		for i := 0; i < prefix; i++ {
			alive[i] = true
		}
		for i := prefix; i < full.Len(); i++ {
			ds.Append(full.Point(i))
			tr.Insert(i)
			alive[i] = true
			if rng.Intn(3) == 0 {
				j := rng.Intn(i + 1)
				if alive[j] {
					if !tr.Delete(j) {
						return false
					}
					alive[j] = false
				}
			}
		}
		var keep []int
		for i, a := range alive {
			if a {
				keep = append(keep, i)
			}
		}
		if len(keep) < 2 {
			return true
		}
		opt := join.Options{Metric: metric, Eps: eps}
		got := &pairs.Collector{Canonical: true}
		tr.SelfJoin(opt, got)
		subPairs := &pairs.Collector{Canonical: true}
		brute.SelfJoin(full.Subset(keep), opt, subPairs)
		want := &pairs.Collector{Canonical: true}
		for _, p := range subPairs.Pairs {
			want.Emit(keep[p.I], keep[p.J])
		}
		return pairs.Equal(got.Sorted(), want.Sorted())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSmallerEpsIsSubset: shrinking the query ε can only shrink the
// result set (monotonicity of the multi-ε query path).
func TestQuickSmallerEpsIsSubset(t *testing.T) {
	f := func(seed int64) bool {
		cfg, tcfg, eps, metric := quickCase(seed)
		ds := synth.Generate(cfg)
		tr := Build(ds, eps, tcfg)
		big := &pairs.Collector{Canonical: true}
		tr.SelfJoin(join.Options{Metric: metric, Eps: eps}, big)
		small := &pairs.Collector{Canonical: true}
		tr.SelfJoin(join.Options{Metric: metric, Eps: eps / 3}, small)
		inBig := map[pairs.Pair]bool{}
		for _, p := range big.Pairs {
			inBig[p] = true
		}
		for _, p := range small.Pairs {
			if !inBig[p] {
				return false
			}
		}
		return len(small.Pairs) <= len(big.Pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
