package pairs

import (
	"sync"
	"testing"
)

// TestFunnelSerializesWorkers drives a funnel from many goroutines and
// checks (a) every emitted pair arrives exactly once and (b) the callback
// is never entered concurrently — the whole point of the funnel. The
// concurrency check is a plain (unsynchronized) counter plus -race.
func TestFunnelSerializesWorkers(t *testing.T) {
	const workers, perWorker = 8, 5000
	seen := make(map[Pair]int)
	var inFlight int
	f := NewFunnel(func(i, j int) {
		inFlight++
		if inFlight != 1 {
			t.Errorf("callback entered concurrently")
		}
		seen[Pair{I: int32(i), J: int32(j)}]++
		inFlight--
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := f.Handle()
			for k := 0; k < perWorker; k++ {
				sink.Emit(w, k)
			}
		}(w)
	}
	wg.Wait()
	f.Close()
	if len(seen) != workers*perWorker {
		t.Fatalf("delivered %d distinct pairs, want %d", len(seen), workers*perWorker)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("pair %v delivered %d times", p, n)
		}
	}
}

// TestFunnelFlushesTails checks Close delivers partial batches — fewer
// pairs than the batch size must still arrive.
func TestFunnelFlushesTails(t *testing.T) {
	var got []Pair
	f := NewFunnel(func(i, j int) { got = append(got, Pair{I: int32(i), J: int32(j)}) })
	sink := f.Handle()
	sink.Emit(1, 2)
	sink.Emit(3, 4)
	f.Close()
	if len(got) != 2 || got[0] != (Pair{I: 1, J: 2}) || got[1] != (Pair{I: 3, J: 4}) {
		t.Fatalf("got %v", got)
	}
}

// TestFuncAdapter checks the Func adapter satisfies Sink.
func TestFuncAdapter(t *testing.T) {
	var n int
	var s Sink = Func(func(i, j int) { n += i + j })
	s.Emit(2, 3)
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
}
