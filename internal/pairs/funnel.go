package pairs

import "sync"

// Func adapts a plain callback into a Sink for serial joins. Like any
// non-concurrent Sink it must not be shared across worker goroutines;
// parallel joins funnel through a Funnel instead.
type Func func(i, j int)

// Emit implements Sink.
func (f Func) Emit(i, j int) { f(i, j) }

// funnelBatch is the per-handle buffer size: large enough to amortize the
// channel send far below the per-pair work, small enough to keep delivery
// latency and per-worker memory trivial.
const funnelBatch = 1024

// Funnel turns a single-goroutine callback into the per-worker sinks a
// parallel join needs: each worker gets a private batching handle, batches
// flow over one channel to a dedicated consumer goroutine, and that
// goroutine alone invokes the callback. The callback therefore keeps the
// exact contract of the serial path — never concurrent, never reentrant —
// while workers pay one channel send per funnelBatch pairs instead of a
// lock per pair.
//
// Use: f := NewFunnel(fn); pass f.Handle as the per-worker sink factory;
// after every worker has returned, call f.Close() to flush the tails and
// wait for the last callback to finish. Emitting through a handle after
// Close is a bug.
type Funnel struct {
	ch   chan []Pair
	done chan struct{}

	mu      sync.Mutex
	handles []*funnelHandle
}

// NewFunnel starts the consumer goroutine delivering every funneled pair
// to fn.
func NewFunnel(fn func(i, j int)) *Funnel {
	f := &Funnel{ch: make(chan []Pair, 16), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		for batch := range f.ch {
			for _, p := range batch {
				fn(int(p.I), int(p.J))
			}
		}
	}()
	return f
}

// funnelHandle is one worker's private batching buffer.
type funnelHandle struct {
	f   *Funnel
	buf []Pair
}

// Emit implements Sink.
func (h *funnelHandle) Emit(i, j int) {
	h.buf = append(h.buf, Pair{I: int32(i), J: int32(j)})
	if len(h.buf) >= funnelBatch {
		h.flush()
	}
}

func (h *funnelHandle) flush() {
	if len(h.buf) == 0 {
		return
	}
	h.f.ch <- h.buf
	h.buf = make([]Pair, 0, funnelBatch)
}

// Handle returns a private, single-goroutine Sink whose pairs funnel to
// the callback. Matches the newSink factory signature of the parallel
// join variants.
func (f *Funnel) Handle() Sink {
	h := &funnelHandle{f: f}
	f.mu.Lock()
	f.handles = append(f.handles, h)
	f.mu.Unlock()
	return h
}

// Close flushes every handle's buffered tail, then waits until the
// consumer has delivered everything. Call it only after all workers have
// stopped emitting (e.g. after the parallel join returned); pairs are
// fully delivered when Close returns.
func (f *Funnel) Close() {
	f.mu.Lock()
	hs := f.handles
	f.handles = nil
	f.mu.Unlock()
	for _, h := range hs {
		h.flush()
	}
	close(f.ch)
	<-f.done
}
