package pairs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestPairCanonAndLess(t *testing.T) {
	p := Pair{I: 5, J: 2}
	if c := p.Canon(); c.I != 2 || c.J != 5 {
		t.Errorf("Canon = %v", c)
	}
	q := Pair{I: 2, J: 5}
	if q.Canon() != q {
		t.Error("Canon changed an ordered pair")
	}
	if !(Pair{1, 9}).Less(Pair{2, 0}) {
		t.Error("Less by I failed")
	}
	if !(Pair{1, 2}).Less(Pair{1, 3}) {
		t.Error("Less by J failed")
	}
	if (Pair{1, 2}).Less(Pair{1, 2}) {
		t.Error("Less of equal pairs true")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Emit(i, i+1)
			}
		}()
	}
	wg.Wait()
	if c.N() != workers*each {
		t.Errorf("N = %d, want %d", c.N(), workers*each)
	}
	c.Reset()
	if c.N() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestCollectorCanonical(t *testing.T) {
	c := &Collector{Canonical: true}
	c.Emit(5, 2)
	c.Emit(1, 3)
	got := c.Sorted()
	want := []Pair{{1, 3}, {2, 5}}
	if !Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	raw := &Collector{}
	raw.Emit(5, 2)
	if raw.Pairs[0] != (Pair{5, 2}) {
		t.Error("non-canonical collector reordered endpoints")
	}
}

func TestShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	all := make([]Pair, 500)
	for i := range all {
		all[i] = Pair{I: int32(rng.Intn(100)), J: int32(rng.Intn(100))}
	}
	serial := &Collector{Canonical: true}
	for _, p := range all {
		serial.Emit(int(p.I), int(p.J))
	}
	sh := NewSharded(true)
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := sh.Handle()
			for i := w; i < len(all); i += workers {
				h.Emit(int(all[i].I), int(all[i].J))
			}
		}(w)
	}
	wg.Wait()
	if !Equal(serial.Sorted(), sh.Merged()) {
		t.Error("sharded result differs from serial")
	}
}

func TestSortDedup(t *testing.T) {
	ps := []Pair{{3, 4}, {1, 2}, {3, 4}, {1, 2}, {0, 9}}
	SortPairs(ps)
	ps = Dedup(ps)
	want := []Pair{{0, 9}, {1, 2}, {3, 4}}
	if !Equal(ps, want) {
		t.Errorf("got %v, want %v", ps, want)
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Error("Dedup(nil) non-empty")
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		ps := make([]Pair, len(raw)/2)
		for i := range ps {
			ps[i] = Pair{I: int32(raw[2*i]), J: int32(raw[2*i+1])}
		}
		SortPairs(ps)
		d := Dedup(ps)
		// No adjacent duplicates, sorted, and every input present.
		for i := 1; i < len(d); i++ {
			if d[i] == d[i-1] || d[i].Less(d[i-1]) {
				return false
			}
		}
		seen := map[Pair]bool{}
		for _, p := range d {
			seen[p] = true
		}
		for _, p := range ps {
			if !seen[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := []Pair{{1, 2}, {3, 4}}
	b := []Pair{{1, 2}, {3, 5}}
	if Equal(a, b) {
		t.Error("unequal sets Equal")
	}
	if !Equal(a, a) {
		t.Error("identical sets not Equal")
	}
	d := Diff(a, b)
	if !strings.Contains(d, "(3,4)") || !strings.Contains(d, "(3,5)") {
		t.Errorf("Diff = %q missing expected pairs", d)
	}
	// Truncation kicks in past 8 examples.
	var long []Pair
	for i := 0; i < 20; i++ {
		long = append(long, Pair{int32(i), int32(i + 1)})
	}
	if got := Diff(long, nil); !strings.Contains(got, "…") {
		t.Errorf("Diff truncation missing: %q", got)
	}
}
