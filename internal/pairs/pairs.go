// Package pairs defines how join results are reported and compared. All join
// algorithms emit results through a Sink, so the same implementation serves
// counting runs (benchmarks), collecting runs (applications), and exact
// set-comparison runs (the oracle tests that hold every algorithm to the
// brute-force answer).
package pairs

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Pair identifies one result of a similarity join by the indexes of its two
// points. For self-joins the canonical form has I < J; for two-set joins I
// indexes the outer (A) set and J the inner (B) set, and no ordering between
// them is implied.
type Pair struct {
	I, J int32
}

// Canon returns the pair with its endpoints ordered (I ≤ J). Only meaningful
// for self-join results.
func (p Pair) Canon() Pair {
	if p.I > p.J {
		return Pair{I: p.J, J: p.I}
	}
	return p
}

// Less orders pairs lexicographically.
func (p Pair) Less(q Pair) bool {
	if p.I != q.I {
		return p.I < q.I
	}
	return p.J < q.J
}

// Sink consumes join results one pair at a time. Implementations are NOT
// required to be safe for concurrent use; parallel joins must either use an
// explicitly concurrent sink (Counter, Sharded) or shard privately and
// merge.
type Sink interface {
	// Emit reports that points i and j joined. Self-join algorithms emit
	// each unordered pair exactly once (in either order); two-set joins
	// emit (a-index, b-index).
	Emit(i, j int)
}

// Counter is a concurrency-safe Sink that only counts results.
type Counter struct {
	n atomic.Int64
}

// Emit implements Sink.
func (c *Counter) Emit(i, j int) { c.n.Add(1) }

// N returns the number of pairs emitted so far.
func (c *Counter) N() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Collector is a Sink that stores every pair. If Canonical is set, each pair
// is stored endpoint-ordered (for self-join results). Not safe for
// concurrent use; wrap in Sharded for parallel joins.
type Collector struct {
	Canonical bool
	Pairs     []Pair
}

// Emit implements Sink.
func (c *Collector) Emit(i, j int) {
	p := Pair{I: int32(i), J: int32(j)}
	if c.Canonical {
		p = p.Canon()
	}
	c.Pairs = append(c.Pairs, p)
}

// Sorted returns the collected pairs in lexicographic order (sorting in
// place).
func (c *Collector) Sorted() []Pair {
	SortPairs(c.Pairs)
	return c.Pairs
}

// Sharded adapts any per-goroutine Sink factory into a concurrent Sink by
// giving each goroutine its own shard via sync.Pool-free explicit handles.
// Use: s := NewSharded(...); h := s.Handle() per goroutine; h.Emit(...).
type Sharded struct {
	mu     sync.Mutex
	shards []*Collector
	canon  bool
}

// NewSharded returns a Sharded collector; canonical applies to every shard.
func NewSharded(canonical bool) *Sharded {
	return &Sharded{canon: canonical}
}

// Handle returns a private, single-goroutine Sink whose results are owned by
// the Sharded parent.
func (s *Sharded) Handle() Sink {
	c := &Collector{Canonical: s.canon}
	s.mu.Lock()
	s.shards = append(s.shards, c)
	s.mu.Unlock()
	return c
}

// Merged returns all shards' pairs, sorted lexicographically.
func (s *Sharded) Merged() []Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int
	for _, sh := range s.shards {
		total += len(sh.Pairs)
	}
	out := make([]Pair, 0, total)
	for _, sh := range s.shards {
		out = append(out, sh.Pairs...)
	}
	SortPairs(out)
	return out
}

// SortPairs sorts a pair slice lexicographically in place. Pairs are packed
// into uint64 keys (I in the high word) so the sort runs over machine words
// instead of through a comparison callback — result sorting is a measurable
// slice of collect-mode joins. Indexes are non-negative (they index a
// dataset), so unsigned key order equals lexicographic pair order.
func SortPairs(ps []Pair) {
	if len(ps) < 2 {
		return
	}
	keys := make([]uint64, len(ps))
	for i, p := range ps {
		keys[i] = uint64(uint32(p.I))<<32 | uint64(uint32(p.J))
	}
	slices.Sort(keys)
	for i, k := range keys {
		ps[i] = Pair{I: int32(k >> 32), J: int32(k)}
	}
}

// Dedup removes adjacent duplicates from a sorted pair slice, returning the
// shortened slice.
func Dedup(ps []Pair) []Pair {
	if len(ps) == 0 {
		return ps
	}
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Equal reports whether two sorted pair slices are identical.
func Equal(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable summary of the difference between two
// sorted, deduped pair sets: pairs only in a (missing from b) and pairs only
// in b (spurious), truncated to a handful of examples each. Used by tests to
// explain oracle mismatches.
func Diff(a, b []Pair) string {
	var onlyA, onlyB []Pair
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i].Less(b[j]):
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	trunc := func(ps []Pair) string {
		const max = 8
		s := ""
		for k, p := range ps {
			if k == max {
				return s + "…"
			}
			s += fmt.Sprintf("(%d,%d) ", p.I, p.J)
		}
		return s
	}
	return fmt.Sprintf("%d only in A: %s| %d only in B: %s", len(onlyA), trunc(onlyA), len(onlyB), trunc(onlyB))
}
