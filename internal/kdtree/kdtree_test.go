package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 401)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 402)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(8)
		dist := synth.AllDistributions()[rng.Intn(4)]
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: dist})
		leaf := 1 + rng.Intn(32)
		tr := Build(ds, leaf)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d d=%d leaf=%d dist=%v: %v", n, d, leaf, dist, err)
		}
	}
}

func TestBuildDuplicateHeavy(t *testing.T) {
	// Many coincident points and many ties per dimension — the regime that
	// breaks naive median splits.
	ds := dataset.New(3, 0)
	for i := 0; i < 200; i++ {
		ds.Append([]float64{float64(i % 3), float64(i % 2), 0})
	}
	tr := Build(ds, 4)
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// All-coincident set must build (as one leaf) and join correctly.
	co := dataset.New(2, 0)
	for i := 0; i < 50; i++ {
		co.Append([]float64{7, 7})
	}
	tr2 := Build(co, 4)
	if err := tr2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var sink pairs.Counter
	tr2.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.1}, &sink)
	if sink.N() != 50*49/2 {
		t.Errorf("coincident join found %d pairs, want %d", sink.N(), 50*49/2)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(empty) did not panic")
		}
	}()
	Build(dataset.New(2, 0), 0)
}

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := synth.Generate(synth.Config{N: 800, Dims: 5, Seed: 3, Dist: synth.GaussianClusters})
	tr := Build(ds, 0)
	for trial := 0; trial < 50; trial++ {
		q := make([]float64, 5)
		for k := range q {
			q[k] = rng.Float64()
		}
		for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
			eps := 0.05 + rng.Float64()*0.3
			var got []int
			tr.Range(q, m, eps, nil, func(i int) { got = append(got, i) })
			sort.Ints(got)
			var want []int
			th := vec.Threshold(m, eps)
			for i := 0; i < ds.Len(); i++ {
				if vec.Within(m, q, ds.Point(i), th) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v eps=%g: %d hits, want %d", m, eps, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v eps=%g: hit set differs", m, eps)
				}
			}
		}
	}
}

func TestRangeDimensionMismatchPanics(t *testing.T) {
	tr := Build(dataset.FromPoints([][]float64{{1, 2}}), 0)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	tr.Range([]float64{1}, vec.L2, 1, nil, func(int) {})
}

func TestRangePrunes(t *testing.T) {
	// A tight query over spread data must visit far fewer nodes than exist.
	ds := synth.Generate(synth.Config{N: 10000, Dims: 3, Seed: 4, Dist: synth.Uniform})
	tr := Build(ds, 8)
	var c stats.Counters
	tr.Range([]float64{0.5, 0.5, 0.5}, vec.L2, 0.02, &c, func(int) {})
	s := c.Snapshot()
	if s.NodeVisits*4 > int64(tr.Size()) {
		t.Errorf("visited %d of %d nodes; pruning ineffective", s.NodeVisits, tr.Size())
	}
	if s.DistComps > int64(ds.Len())/10 {
		t.Errorf("tested %d of %d points; pruning ineffective", s.DistComps, ds.Len())
	}
}

func TestSizeAndDepth(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 1000, Dims: 2, Seed: 5, Dist: synth.Uniform})
	tr := Build(ds, 10)
	if tr.Size() < 100 {
		t.Errorf("Size = %d, implausibly small for 1000 points with leaf 10", tr.Size())
	}
	// Median splits keep the depth logarithmic-ish: generous bound 4·log₂ n.
	if d := tr.Depth(); d > 40 {
		t.Errorf("Depth = %d, tree degenerated", d)
	}
	one := Build(dataset.FromPoints([][]float64{{1}}), 0)
	if one.Depth() != 1 || one.Size() != 1 {
		t.Errorf("singleton tree depth/size = %d/%d", one.Depth(), one.Size())
	}
}

func TestLeafSizeVariants(t *testing.T) {
	for _, leaf := range []int{1, 2, 7, 64, 10000} {
		fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			tr := Build(ds, leaf)
			tr.SelfJoin(opt, sink)
		}
		jointest.CheckSelf(t, fn, 8, 500+int64(leaf))
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 3000, Dims: 5, Seed: 6, Dist: synth.GaussianClusters})
	tr := Build(ds, 0)
	opt := join.Options{Metric: vec.L2, Eps: 0.08, Workers: 4}
	serial := &pairs.Collector{Canonical: true}
	tr.SelfJoin(opt, serial)
	sh := pairs.NewSharded(true)
	tr.SelfJoinParallel(opt, sh.Handle)
	if !pairs.Equal(sh.Merged(), serial.Sorted()) {
		t.Errorf("parallel differs: %s", pairs.Diff(sh.Merged(), serial.Pairs))
	}
	// Tiny inputs.
	small := Build(dataset.FromPoints([][]float64{{0}, {0.01}, {9}}), 0)
	sh2 := pairs.NewSharded(true)
	small.SelfJoinParallel(join.Options{Metric: vec.L2, Eps: 0.1, Workers: 8}, sh2.Handle)
	if len(sh2.Merged()) != 1 {
		t.Errorf("tiny parallel join = %v", sh2.Merged())
	}
}
