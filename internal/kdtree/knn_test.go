package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// bruteKNN is the oracle: full sort of all distances.
func bruteKNN(ds interface {
	Len() int
	Point(int) []float64
}, q []float64, k int, m vec.Metric) []join.Neighbor {
	all := make([]join.Neighbor, ds.Len())
	for i := range all {
		all[i] = join.Neighbor{Index: i, Dist: vec.Dist(m, q, ds.Point(i))}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(6)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		tr := Build(ds, 1+rng.Intn(16))
		for qi := 0; qi < 10; qi++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64()
			}
			k := 1 + rng.Intn(12)
			for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
				got := tr.KNN(q, k, m, nil)
				want := bruteKNN(ds, q, k, m)
				if len(got) != len(want) {
					t.Fatalf("len %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i].Dist != want[i].Dist {
						t.Fatalf("%v: neighbor %d dist %g, want %g", m, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestKNNPrunes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 20000, Dims: 3, Seed: 2, Dist: synth.Uniform})
	tr := Build(ds, 16)
	var c stats.Counters
	got := tr.KNN([]float64{0.5, 0.5, 0.5}, 5, vec.L2, &c)
	if len(got) != 5 {
		t.Fatalf("got %d neighbors", len(got))
	}
	if c.Snapshot().DistComps > int64(ds.Len())/20 {
		t.Errorf("KNN tested %d of %d points; pruning ineffective", c.Snapshot().DistComps, ds.Len())
	}
}

func TestKNNPanics(t *testing.T) {
	tr := Build(synth.Generate(synth.Config{N: 10, Dims: 2, Seed: 3, Dist: synth.Uniform}), 0)
	for name, fn := range map[string]func(){
		"k=0":          func() { tr.KNN([]float64{0, 0}, 0, vec.L2, nil) },
		"dim mismatch": func() { tr.KNN([]float64{0}, 1, vec.L2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 4, Dims: 2, Seed: 4, Dist: synth.Uniform})
	tr := Build(ds, 0)
	got := tr.KNN([]float64{0.5, 0.5}, 10, vec.L2, nil)
	if len(got) != 4 {
		t.Errorf("k>n returned %d neighbors, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Error("neighbors not distance-ordered")
		}
	}
}
