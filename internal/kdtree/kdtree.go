// Package kdtree implements a main-memory k-d tree with ε-range queries and
// the similarity join built on them (one range query per point). It is the
// classic main-memory spatial-access-method baseline: excellent in low
// dimensions, but its per-node single-dimension split prunes less and less
// of the search volume as dimensionality grows, which the dimensionality
// experiment (F2) demonstrates against the ε-kdB tree.
package kdtree

import (
	"sync"
	"sync/atomic"
	"time"

	"fmt"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// DefaultLeafSize is the build-time leaf capacity used by the evaluation.
const DefaultLeafSize = 16

// Tree is an immutable k-d tree over one dataset.
type Tree struct {
	ds       *dataset.Dataset
	root     *node
	leafSize int
	nodes    int
}

type node struct {
	box         vec.Box // bounding box of the points below this node
	dim         int     // split dimension; -1 marks a leaf
	val         float64 // split value (points with coord < val go left)
	left, right *node
	pts         []int32 // leaf points (indexes into the dataset)
}

// Build constructs a k-d tree over ds with the given leaf capacity (≤ 0
// selects DefaultLeafSize). It panics on an empty dataset.
func Build(ds *dataset.Dataset, leafSize int) *Tree {
	if ds.Len() == 0 {
		panic("kdtree: building over an empty dataset")
	}
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	idx := make([]int32, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &Tree{ds: ds, leafSize: leafSize}
	t.root = t.build(idx)
	return t
}

// build recursively splits idx (which it owns and may reorder) and returns
// the subtree root.
func (t *Tree) build(idx []int32) *node {
	t.nodes++
	box := vec.BoundingBox(len(idx), func(i int) []float64 { return t.ds.Point(int(idx[i])) })
	n := &node{box: box, dim: -1}
	if len(idx) <= t.leafSize {
		n.pts = idx
		return n
	}
	// Split the widest dimension at the median. If every dimension is
	// degenerate (all points coincident) the node must stay a leaf no
	// matter its size — there is nothing to split.
	dim, extent := 0, -1.0
	for k := 0; k < t.ds.Dims(); k++ {
		if e := box.Hi[k] - box.Lo[k]; e > extent {
			dim, extent = k, e
		}
	}
	if extent == 0 {
		n.pts = idx
		return n
	}
	mid := len(idx) / 2
	t.selectNth(idx, mid, dim)
	data, dims := t.ds.Flat(), t.ds.Dims()
	val := data[int(idx[mid])*dims+dim]
	// If val is the dimension's minimum, splitting at it would leave the
	// "< val" side empty; lift it to the next distinct value (one exists
	// because extent > 0).
	if val == box.Lo[dim] {
		next := box.Hi[dim]
		for _, i := range idx {
			if v := data[int(i)*dims+dim]; v > val && v < next {
				next = v
			}
		}
		val = next
	}
	// Partition explicitly: quickselect leaves equal keys scattered, so a
	// boundary derived from positions alone would let coord == val points
	// leak into the left (strictly-less) side.
	lo := 0
	for i := range idx {
		if data[int(idx[i])*dims+dim] < val {
			idx[lo], idx[i] = idx[i], idx[lo]
			lo++
		}
	}
	n.dim = dim
	n.val = val
	n.left = t.build(idx[:lo])
	n.right = t.build(idx[lo:])
	return n
}

// selectNth partially sorts idx so that idx[nth] holds the element of rank
// nth by coordinate dim, with smaller elements before it and greater-or-
// equal after (Hoare quickselect with middle pivot).
func (t *Tree) selectNth(idx []int32, nth, dim int) {
	data, dims := t.ds.Flat(), t.ds.Dims()
	lo, hi := 0, len(idx)-1
	for lo < hi {
		pivot := data[int(idx[(lo+hi)/2])*dims+dim]
		i, j := lo, hi
		for i <= j {
			for data[int(idx[i])*dims+dim] < pivot {
				i++
			}
			for data[int(idx[j])*dims+dim] > pivot {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			return
		}
	}
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return t.nodes }

// Depth returns the height of the tree (1 for a single leaf).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.dim < 0 {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Range visits every point index whose distance to q is ≤ eps under the
// given metric. Counters (may be nil) receive node-visit and distance-test
// charges.
func (t *Tree) Range(q []float64, metric vec.Metric, eps float64, counters *stats.Counters, visit func(i int)) {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("kdtree: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	th := vec.Threshold(metric, eps)
	f := t.ds.FlatView() // kdtree has no float32 mode; queries stay exact
	emit := func(yi int32) { visit(int(yi)) }
	var nodesVisited, comps int64
	var rec func(n *node)
	rec = func(n *node) {
		nodesVisited++
		if n.dim < 0 {
			c, _ := vec.ProbeQueryFlat(metric, q, f, n.pts, th, emit)
			comps += c
			return
		}
		if n.left.box.MinDistPoint(metric, q) <= eps {
			rec(n.left)
		}
		if n.right.box.MinDistPoint(metric, q) <= eps {
			rec(n.right)
		}
	}
	if t.root.box.MinDistPoint(metric, q) <= eps {
		rec(t.root)
	}
	if counters != nil {
		counters.AddNodeVisits(nodesVisited)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
}

// SelfJoin reports every unordered pair within ε once (as i < j), using one
// range query per point over a tree built with the default leaf size.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	start := time.Now()
	t := Build(ds, 0)
	opt.Timing().AddBuild(time.Since(start))
	t.SelfJoin(opt, sink)
}

// SelfJoin runs the self-join on an already-built tree.
func (t *Tree) SelfJoin(opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Counters
	var res int64
	for i := 0; i < t.ds.Len(); i++ {
		q := t.ds.Point(i)
		t.Range(q, opt.Metric, opt.Eps, c, func(j int) {
			if j > i { // each unordered pair once
				res++
				sink.Emit(i, j)
			}
		})
	}
	opt.Stats().AddResults(res)
}

// SelfJoinParallel runs the self-join with the per-point range queries
// spread across opt.WorkerCount() goroutines; newSink supplies one private
// sink per worker. The point-partitioned decomposition cannot duplicate:
// each unordered pair is owned by its smaller index.
func (t *Tree) SelfJoinParallel(opt join.Options, newSink func() pairs.Sink) {
	opt.MustValidate()
	n := t.ds.Len()
	if n < 2 {
		return
	}
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	workers := opt.WorkerCount()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var results atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := newSink()
			var res int64
			for i := w; i < n; i += workers {
				q := t.ds.Point(i)
				t.Range(q, opt.Metric, opt.Eps, opt.Counters, func(j int) {
					if j > i {
						res++
						sink.Emit(i, j)
					}
				})
			}
			results.Add(res)
		}(w)
	}
	wg.Wait()
	opt.Stats().AddResults(results.Load())
}

// Join reports every (a-index, b-index) pair within ε by querying a tree
// built over b with every point of a.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	t := Build(b, 0)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Counters
	var res int64
	for i := 0; i < a.Len(); i++ {
		t.Range(a.Point(i), opt.Metric, opt.Eps, c, func(j int) {
			res++
			sink.Emit(i, j)
		})
	}
	opt.Stats().AddResults(res)
}

// JoinParallel is Join with the probe side spread across
// opt.WorkerCount() goroutines: the tree is built once over b, then the
// workers stride over a's points, each answering its own range queries
// into a private sink from newSink. Point-partitioning the probe side
// cannot duplicate: every (a, b) pair is owned by its a-point.
func JoinParallel(a, b *dataset.Dataset, opt join.Options, newSink func() pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	t := Build(b, 0)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	workers := opt.WorkerCount()
	if workers > a.Len() {
		workers = a.Len()
	}
	var wg sync.WaitGroup
	var results atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := newSink()
			var res int64
			for i := w; i < a.Len(); i += workers {
				t.Range(a.Point(i), opt.Metric, opt.Eps, opt.Counters, func(j int) {
					res++
					sink.Emit(i, j)
				})
			}
			results.Add(res)
		}(w)
	}
	wg.Wait()
	opt.Stats().AddResults(results.Load())
}

// checkInvariants verifies structural invariants for tests: every leaf
// point lies inside its node box, every box inside its parent's, split
// separation holds, and every dataset index appears exactly once.
func (t *Tree) checkInvariants() error {
	seen := make([]bool, t.ds.Len())
	var rec func(n *node) error
	rec = func(n *node) error {
		if n.dim < 0 {
			if len(n.pts) == 0 {
				return fmt.Errorf("kdtree: empty leaf")
			}
			for _, i := range n.pts {
				if seen[i] {
					return fmt.Errorf("kdtree: point %d in two leaves", i)
				}
				seen[i] = true
				if !n.box.Contains(t.ds.Point(int(i))) {
					return fmt.Errorf("kdtree: point %d outside its leaf box", i)
				}
			}
			return nil
		}
		if !n.box.ContainsBox(n.left.box) || !n.box.ContainsBox(n.right.box) {
			return fmt.Errorf("kdtree: child box escapes parent")
		}
		if n.left.box.Hi[n.dim] >= n.val {
			return fmt.Errorf("kdtree: split dim %d not separated (left hi %g, val %g)", n.dim, n.left.box.Hi[n.dim], n.val)
		}
		if n.right.box.Lo[n.dim] < n.val {
			return fmt.Errorf("kdtree: split dim %d not separated (right lo %g, val %g)", n.dim, n.right.box.Lo[n.dim], n.val)
		}
		if err := rec(n.left); err != nil {
			return err
		}
		return rec(n.right)
	}
	if err := rec(t.root); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("kdtree: point %d missing from every leaf", i)
		}
	}
	return nil
}
