package kdtree

import (
	"fmt"

	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// KNN returns the k nearest neighbors of q in ascending distance order
// (ties broken by index). The search descends the closer child first and
// prunes subtrees whose box is farther than the current k-th best.
func (t *Tree) KNN(q []float64, k int, metric vec.Metric, counters *stats.Counters) []join.Neighbor {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("kdtree: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	if k < 1 {
		panic(fmt.Sprintf("kdtree: KNN with k=%d", k))
	}
	best := join.NewMaxHeap(k)
	var visits, comps int64
	var rec func(n *node)
	rec = func(n *node) {
		visits++
		if n.dim < 0 {
			for _, i := range n.pts {
				comps++
				d := vec.Dist(metric, q, t.ds.Point(int(i)))
				best.Push(join.Neighbor{Index: int(i), Dist: d})
			}
			return
		}
		first, second := n.left, n.right
		if q[n.dim] >= n.val {
			first, second = second, first
		}
		if b, ok := best.Bound(); !ok || first.box.MinDistPoint(metric, q) <= b {
			rec(first)
		}
		if b, ok := best.Bound(); !ok || second.box.MinDistPoint(metric, q) <= b {
			rec(second)
		}
	}
	rec(t.root)
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
	return best.Sorted()
}
