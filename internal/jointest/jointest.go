// Package jointest provides the oracle harness every join algorithm's tests
// run through: randomized datasets across distributions, dimensionalities,
// metrics and ε values, with the algorithm's pair set compared exactly
// against the brute-force answer. Keeping it in one place means every
// algorithm faces the identical gauntlet.
package jointest

import (
	"fmt"
	"math/rand"
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// SelfJoinFunc is the self-join entry point shared by all algorithm
// packages.
type SelfJoinFunc func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink)

// JoinFunc is the two-set join entry point shared by all algorithm
// packages.
type JoinFunc func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink)

// Case describes one randomized oracle scenario.
type Case struct {
	Seed   int64
	N      int
	Dims   int
	Eps    float64
	Metric vec.Metric
	Dist   synth.Distribution
}

func (c Case) String() string {
	return fmt.Sprintf("seed=%d n=%d d=%d eps=%g metric=%v dist=%v", c.Seed, c.N, c.Dims, c.Eps, c.Metric, c.Dist)
}

// Cases generates count deterministic scenarios spanning the parameter
// space: 1–12 dimensions, all metrics, all distributions, ε from
// near-selectivity-zero to "almost everything joins".
func Cases(count int, baseSeed int64) []Case {
	rng := rand.New(rand.NewSource(baseSeed))
	metrics := []vec.Metric{vec.L2, vec.L1, vec.Linf}
	dists := synth.AllDistributions()
	out := make([]Case, count)
	for i := range out {
		out[i] = Case{
			Seed:   rng.Int63(),
			N:      2 + rng.Intn(220),
			Dims:   1 + rng.Intn(12),
			Eps:    0.01 + rng.Float64()*0.6,
			Metric: metrics[rng.Intn(len(metrics))],
			Dist:   dists[rng.Intn(len(dists))],
		}
	}
	return out
}

// Dataset materializes the scenario's point set.
func (c Case) Dataset() *dataset.Dataset {
	return synth.Generate(synth.Config{N: c.N, Dims: c.Dims, Seed: c.Seed, Dist: c.Dist})
}

// Options materializes the scenario's join options.
func (c Case) Options() join.Options {
	return join.Options{Metric: c.Metric, Eps: c.Eps}
}

// CheckSelf runs fn against the brute-force oracle on count randomized
// scenarios. Algorithms may emit self-join pairs in either endpoint order
// but must emit each unordered pair exactly once.
func CheckSelf(t *testing.T, fn SelfJoinFunc, count int, baseSeed int64) {
	t.Helper()
	for _, c := range Cases(count, baseSeed) {
		ds := c.Dataset()
		want := &pairs.Collector{Canonical: true}
		brute.SelfJoin(ds, c.Options(), want)
		got := &pairs.Collector{Canonical: true}
		fn(ds, c.Options(), got)
		g := pairs.Dedup(got.Sorted())
		if len(g) != len(got.Pairs) {
			t.Errorf("%v: emitted duplicate pairs", c)
		}
		if !pairs.Equal(g, want.Sorted()) {
			t.Errorf("%v: wrong result: %s", c, pairs.Diff(g, want.Pairs))
		}
	}
}

// CheckJoin runs fn against the brute-force oracle on count randomized
// two-set scenarios (the second set drawn with a different seed, length, and
// possibly distribution).
func CheckJoin(t *testing.T, fn JoinFunc, count int, baseSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(baseSeed ^ 0x5f5f))
	for _, c := range Cases(count, baseSeed) {
		a := c.Dataset()
		bCase := c
		bCase.Seed = rng.Int63()
		bCase.N = 1 + rng.Intn(220)
		bCase.Dist = synth.AllDistributions()[rng.Intn(4)]
		b := bCase.Dataset()
		want := &pairs.Collector{}
		brute.Join(a, b, c.Options(), want)
		got := &pairs.Collector{}
		fn(a, b, c.Options(), got)
		g := pairs.Dedup(got.Sorted())
		if len(g) != len(got.Pairs) {
			t.Errorf("%v: emitted duplicate pairs", c)
		}
		if !pairs.Equal(g, want.Sorted()) {
			t.Errorf("%v vs n=%d: wrong result: %s", c, b.Len(), pairs.Diff(g, want.Pairs))
		}
	}
}

// AdversarialDatasets returns hand-built degenerate datasets that break
// sloppy implementations: coincident points, boundary-exact distances,
// collinear runs, a single cluster smaller than ε, and points on grid-cell
// boundaries.
func AdversarialDatasets(dims int) map[string]*dataset.Dataset {
	out := map[string]*dataset.Dataset{}

	coincident := dataset.New(dims, 6)
	p := make([]float64, dims)
	for i := 0; i < 6; i++ {
		coincident.Append(p)
	}
	out["coincident"] = coincident

	// Points spaced exactly ε=0.25 apart along dimension 0.
	lattice := dataset.New(dims, 9)
	for i := 0; i < 9; i++ {
		q := make([]float64, dims)
		q[0] = 0.25 * float64(i)
		lattice.Append(q)
	}
	out["boundary-lattice"] = lattice

	// Everything inside one ε ball.
	tiny := dataset.New(dims, 8)
	for i := 0; i < 8; i++ {
		q := make([]float64, dims)
		for k := range q {
			q[k] = 0.5 + 0.001*float64(i)
		}
		tiny.Append(q)
	}
	out["single-cluster"] = tiny

	// Two points at opposite corners (nothing joins).
	corners := dataset.New(dims, 2)
	lo, hi := make([]float64, dims), make([]float64, dims)
	for k := range hi {
		hi[k] = 1
	}
	corners.Append(lo)
	corners.Append(hi)
	out["corners"] = corners

	return out
}

// CheckSelfAdversarial runs fn against the oracle on the adversarial
// datasets with ε chosen to sit exactly on the lattice spacing.
func CheckSelfAdversarial(t *testing.T, fn SelfJoinFunc) {
	t.Helper()
	for _, dims := range []int{1, 2, 3, 7} {
		for name, ds := range AdversarialDatasets(dims) {
			for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
				opt := join.Options{Metric: m, Eps: 0.25}
				want := &pairs.Collector{Canonical: true}
				brute.SelfJoin(ds, opt, want)
				got := &pairs.Collector{Canonical: true}
				fn(ds, opt, got)
				g := pairs.Dedup(got.Sorted())
				if len(g) != len(got.Pairs) {
					t.Errorf("%s d=%d %v: duplicate pairs", name, dims, m)
				}
				if !pairs.Equal(g, want.Sorted()) {
					t.Errorf("%s d=%d %v: %s", name, dims, m, pairs.Diff(g, want.Pairs))
				}
			}
		}
	}
}
