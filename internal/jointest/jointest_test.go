package jointest

import (
	"strings"
	"testing"

	"simjoin/internal/vec"
)

func TestCasesDeterministicAndDiverse(t *testing.T) {
	a := Cases(50, 7)
	b := Cases(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Cases not deterministic for a fixed seed")
		}
	}
	metrics := map[vec.Metric]bool{}
	dims := map[int]bool{}
	for _, c := range a {
		metrics[c.Metric] = true
		dims[c.Dims] = true
		if c.N < 2 || c.Eps <= 0 {
			t.Fatalf("degenerate case %v", c)
		}
		if ds := c.Dataset(); ds.Len() != c.N || ds.Dims() != c.Dims {
			t.Fatalf("case %v materialized wrong shape", c)
		}
		if err := c.Options().Validate(); err != nil {
			t.Fatalf("case %v options invalid: %v", c, err)
		}
	}
	if len(metrics) < 3 || len(dims) < 6 {
		t.Errorf("cases not diverse: %d metrics, %d dims", len(metrics), len(dims))
	}
	if !strings.Contains(a[0].String(), "eps=") {
		t.Error("Case.String missing fields")
	}
}

func TestAdversarialDatasetsShape(t *testing.T) {
	for _, dims := range []int{1, 4} {
		sets := AdversarialDatasets(dims)
		for _, name := range []string{"coincident", "boundary-lattice", "single-cluster", "corners"} {
			ds, ok := sets[name]
			if !ok {
				t.Fatalf("d=%d: missing %s", dims, name)
			}
			if ds.Dims() != dims || ds.Len() < 2 {
				t.Fatalf("d=%d %s: shape %dx%d", dims, name, ds.Len(), ds.Dims())
			}
		}
	}
}
