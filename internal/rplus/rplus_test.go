package rplus

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 1001)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 1002)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

func TestParamVariants(t *testing.T) {
	for _, p := range []struct{ fanOut, leaf int }{{2, 1}, {4, 8}, {16, 64}, {64, 2}} {
		p := p
		fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			Build(ds, p.fanOut, p.leaf).SelfJoin(opt, sink)
		}
		jointest.CheckSelf(t, fn, 10, 1003+int64(p.fanOut*100+p.leaf))
	}
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(700)
		d := 1 + rng.Intn(10)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		tr := Build(ds, 2+rng.Intn(16), 1+rng.Intn(48))
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d d=%d: %v", n, d, err)
		}
	}
}

func TestBuildDuplicateHeavy(t *testing.T) {
	// Repeated values must not be split across slabs (disjointness) and
	// must not hang the build.
	ds := dataset.New(2, 0)
	for i := 0; i < 300; i++ {
		ds.Append([]float64{float64(i % 4), float64(i % 2)})
	}
	tr := Build(ds, 4, 8)
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Fully coincident points collapse into one (oversized) leaf.
	co := dataset.New(3, 0)
	for i := 0; i < 100; i++ {
		co.Append([]float64{1, 2, 3})
	}
	tr2 := Build(co, 4, 8)
	if err := tr2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var sink pairs.Counter
	tr2.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.5}, &sink)
	if sink.N() != 100*99/2 {
		t.Errorf("coincident join = %d, want %d", sink.N(), 100*99/2)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(empty) did not panic")
		}
	}()
	Build(dataset.New(2, 0), 0, 0)
}

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := synth.Generate(synth.Config{N: 900, Dims: 5, Seed: 3, Dist: synth.GaussianClusters})
	tr := Build(ds, 0, 0)
	for trial := 0; trial < 40; trial++ {
		q := make([]float64, 5)
		for k := range q {
			q[k] = rng.Float64()
		}
		for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
			eps := 0.05 + rng.Float64()*0.3
			var got []int
			tr.RangeQuery(q, m, eps, nil, func(i int) { got = append(got, i) })
			sort.Ints(got)
			th := vec.Threshold(m, eps)
			var want []int
			for i := 0; i < ds.Len(); i++ {
				if vec.Within(m, q, ds.Point(i), th) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v eps=%g: %d hits, want %d", m, eps, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: hit set differs", m)
				}
			}
		}
	}
}

func TestRangeQueryDimMismatchPanics(t *testing.T) {
	tr := Build(dataset.FromPoints([][]float64{{1, 2}}), 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	tr.RangeQuery([]float64{1}, vec.L2, 1, nil, func(int) {})
}

// TestDisjointnessBeatsRTreeOverlap: on clustered data the R+-tree's
// disjoint regions must prune at least as well as a quadratic baseline —
// sanity that the structure is actually filtering.
func TestJoinPrunes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 4, Dist: synth.Uniform})
	var c stats.Counters
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.03, Counters: &c}, &sink)
	quad := int64(ds.Len()) * int64(ds.Len()-1) / 2
	if got := c.Snapshot().Candidates; got*4 > quad {
		t.Errorf("candidates %d not well below quadratic %d", got, quad)
	}
	if c.Snapshot().NodeVisits == 0 {
		t.Error("node visits not counted")
	}
}

func TestJoinTreesAsymmetric(t *testing.T) {
	a := synth.Generate(synth.Config{N: 3000, Dims: 3, Seed: 5, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 7, Dims: 3, Seed: 6, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.1}
	got := &pairs.Collector{}
	JoinTrees(Build(a, 4, 8), Build(b, 4, 2), opt, got)
	want := &pairs.Collector{}
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if vec.Within(vec.L2, a.Point(i), b.Point(j), opt.Threshold()) {
				want.Emit(i, j)
			}
		}
	}
	if !pairs.Equal(got.Sorted(), want.Sorted()) {
		t.Errorf("asymmetric join wrong: %s", pairs.Diff(got.Pairs, want.Pairs))
	}
}

func TestAccessors(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 100, Dims: 3, Seed: 9, Dist: synth.Uniform})
	tr := Build(ds, 4, 8)
	if tr.Size() < 3 {
		t.Errorf("Size = %d", tr.Size())
	}
	b := tr.Bounds()
	for i := 0; i < ds.Len(); i++ {
		if !b.Contains(ds.Point(i)) {
			t.Fatal("Bounds does not contain all points")
		}
	}
}
