// Package rplus implements a point R+-tree: an M-way spatial tree whose
// sibling regions are disjoint (no overlap, unlike the R-tree), obtained by
// recursively slicing the widest dimension of each node's point set into
// fan-out-many equal-count slabs, then keeping tight bounding boxes per
// child. For point data this captures exactly what made the R+ tree the
// strongest disk-era baseline of the original evaluation: a search or join
// never has to follow two children for one location.
//
// The similarity join is a synchronized traversal like the R-tree's, but
// because regions are disjoint the candidate explosion in high dimensions
// comes only from boxes being within ε of each other — the best a
// box-pruned method can do, and still not enough at high d, which is the
// comparison the evaluation draws against the ε-kdB tree.
package rplus

import (
	"fmt"
	"sort"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

const (
	// DefaultFanOut is the children per internal node.
	DefaultFanOut = 8
	// DefaultLeafSize is the leaf capacity.
	DefaultLeafSize = 32
)

// Tree is an immutable point R+-tree over one dataset.
type Tree struct {
	ds       *dataset.Dataset
	root     *node
	fanOut   int
	leafSize int
	nodes    int
}

type node struct {
	box      vec.Box
	children []*node // nil for leaves
	pts      []int32 // leaf points
}

// Build constructs an R+-tree over ds (fanOut/leafSize ≤ 0 select the
// defaults). It panics on an empty dataset.
func Build(ds *dataset.Dataset, fanOut, leafSize int) *Tree {
	if ds.Len() == 0 {
		panic("rplus: building over an empty dataset")
	}
	if fanOut <= 1 {
		fanOut = DefaultFanOut
	}
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	idx := make([]int32, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &Tree{ds: ds, fanOut: fanOut, leafSize: leafSize}
	t.root = t.build(idx)
	return t
}

// build recursively slabs idx (which it owns and may reorder).
func (t *Tree) build(idx []int32) *node {
	t.nodes++
	box := vec.BoundingBox(len(idx), func(i int) []float64 { return t.ds.Point(int(idx[i])) })
	n := &node{box: box}
	if len(idx) <= t.leafSize {
		n.pts = idx
		return n
	}
	// Slice the widest dimension into fanOut equal-count slabs. Sorting the
	// slice is O(m log m) per level — simple, and the build is a small
	// fraction of join time at this structure's operating points.
	dim, extent := 0, -1.0
	for k := 0; k < t.ds.Dims(); k++ {
		if e := box.Hi[k] - box.Lo[k]; e > extent {
			dim, extent = k, e
		}
	}
	if extent == 0 {
		// All points coincide; nothing can separate them.
		n.pts = idx
		return n
	}
	sort.Slice(idx, func(a, b int) bool {
		return t.ds.Point(int(idx[a]))[dim] < t.ds.Point(int(idx[b]))[dim]
	})
	val := func(i int) float64 { return t.ds.Point(int(idx[i]))[dim] }
	slabs := t.fanOut
	if slabs > len(idx) {
		slabs = len(idx)
	}
	// Cut at value-run starts nearest the ideal equal-count boundaries: a
	// run of equal coordinates must never be split across slabs
	// (disjointness of sibling regions is the structure's defining
	// invariant), and because extent > 0 guarantees at least one run start
	// strictly inside the slice, the first cut always succeeds — the node
	// always gets ≥ 2 children and the recursion always shrinks.
	bounds := make([]int, 0, slabs-1)
	prev := 0
	for s := 1; s < slabs; s++ {
		cut := len(idx) * s / slabs
		if cut <= prev {
			cut = prev + 1
		}
		if cut >= len(idx) {
			break
		}
		fwd := cut
		for fwd < len(idx) && val(fwd) == val(fwd-1) {
			fwd++
		}
		back := cut
		for back > prev && val(back) == val(back-1) {
			back--
		}
		switch {
		case back > prev && (fwd >= len(idx) || cut-back <= fwd-cut):
			cut = back
		case fwd < len(idx):
			cut = fwd
		default:
			continue // no valid boundary left for this slab
		}
		bounds = append(bounds, cut)
		prev = cut
	}
	prev = 0
	for _, b := range append(bounds, len(idx)) {
		if b > prev {
			n.children = append(n.children, t.build(idx[prev:b:b]))
			prev = b
		}
	}
	return n
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.nodes }

// Bounds returns the root bounding box.
func (t *Tree) Bounds() vec.Box { return t.root.box }

// RangeQuery visits every point index with dist(q, p) ≤ eps.
func (t *Tree) RangeQuery(q []float64, metric vec.Metric, eps float64, counters *stats.Counters, visit func(i int)) {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("rplus: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	th := vec.Threshold(metric, eps)
	var visits, comps int64
	var rec func(n *node)
	rec = func(n *node) {
		visits++
		if n.children == nil {
			for _, i := range n.pts {
				comps++
				if vec.Within(metric, q, t.ds.Point(int(i)), th) {
					visit(int(i))
				}
			}
			return
		}
		for _, c := range n.children {
			if c.box.MinDistPoint(metric, q) <= eps {
				rec(c)
			}
		}
	}
	if t.root.box.MinDistPoint(metric, q) <= eps {
		rec(t.root)
	}
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
}

// SelfJoin reports every unordered pair within ε once, building a tree
// with default parameters.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	start := time.Now()
	t := Build(ds, 0, 0)
	opt.Timing().AddBuild(time.Since(start))
	t.SelfJoin(opt, sink)
}

// SelfJoin runs the synchronized-traversal self-join on a built tree.
func (t *Tree) SelfJoin(opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Stats()
	th := opt.Threshold()
	var cand, res, visits int64
	var rec func(a, b *node)
	rec = func(a, b *node) {
		visits++
		same := a == b
		switch {
		case a.children == nil && b.children == nil:
			for i, ia := range a.pts {
				pa := t.ds.Point(int(ia))
				jStart := 0
				if same {
					jStart = i + 1
				}
				for _, ib := range b.pts[jStart:] {
					cand++
					if vec.Within(opt.Metric, pa, t.ds.Point(int(ib)), th) {
						res++
						sink.Emit(int(ia), int(ib))
					}
				}
			}
		case a.children == nil: // b internal
			for _, cb := range b.children {
				if cb.box.WithinDist(opt.Metric, a.box, th) {
					rec(a, cb)
				}
			}
		case b.children == nil: // a internal
			for _, ca := range a.children {
				if ca.box.WithinDist(opt.Metric, b.box, th) {
					rec(ca, b)
				}
			}
		default:
			if same {
				for i, ca := range a.children {
					rec(ca, ca)
					for _, cb := range a.children[i+1:] {
						if ca.box.WithinDist(opt.Metric, cb.box, th) {
							rec(ca, cb)
						}
					}
				}
				return
			}
			for _, ca := range a.children {
				for _, cb := range b.children {
					if ca.box.WithinDist(opt.Metric, cb.box, th) {
						rec(ca, cb)
					}
				}
			}
		}
	}
	rec(t.root, t.root)
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}

// Join reports every (a-index, b-index) pair within ε across two datasets.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	start := time.Now()
	ta := Build(a, 0, 0)
	tb := Build(b, 0, 0)
	opt.Timing().AddBuild(time.Since(start))
	JoinTrees(ta, tb, opt, sink)
}

// JoinTrees runs the synchronized-traversal join over two built trees.
func JoinTrees(ta, tb *Tree, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	c := opt.Stats()
	th := opt.Threshold()
	var cand, res, visits int64
	var rec func(a, b *node)
	rec = func(a, b *node) {
		visits++
		switch {
		case a.children == nil && b.children == nil:
			for _, ia := range a.pts {
				pa := ta.ds.Point(int(ia))
				for _, ib := range b.pts {
					cand++
					if vec.Within(opt.Metric, pa, tb.ds.Point(int(ib)), th) {
						res++
						sink.Emit(int(ia), int(ib))
					}
				}
			}
		case a.children == nil:
			for _, cb := range b.children {
				if cb.box.WithinDist(opt.Metric, a.box, th) {
					rec(a, cb)
				}
			}
		default:
			for _, ca := range a.children {
				if ca.box.WithinDist(opt.Metric, b.box, th) {
					rec(ca, b)
				}
			}
		}
	}
	if ta.root.box.WithinDist(opt.Metric, tb.root.box, th) {
		rec(ta.root, tb.root)
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
	c.AddNodeVisits(visits)
}

// checkInvariants validates disjointness, containment and coverage for
// tests.
func (t *Tree) checkInvariants() error {
	seen := make([]bool, t.ds.Len())
	var rec func(n *node) error
	rec = func(n *node) error {
		if n.children == nil {
			if len(n.pts) == 0 {
				return fmt.Errorf("rplus: empty leaf")
			}
			for _, i := range n.pts {
				if seen[i] {
					return fmt.Errorf("rplus: point %d in two leaves", i)
				}
				seen[i] = true
				if !n.box.Contains(t.ds.Point(int(i))) {
					return fmt.Errorf("rplus: point %d outside its leaf box", i)
				}
			}
			return nil
		}
		if len(n.children) < 2 {
			return fmt.Errorf("rplus: internal node with %d children", len(n.children))
		}
		for i, a := range n.children {
			if !n.box.ContainsBox(a.box) {
				return fmt.Errorf("rplus: child box escapes parent")
			}
			for _, b := range n.children[i+1:] {
				if a.box.OverlapVolume(b.box) > 0 {
					return fmt.Errorf("rplus: sibling regions overlap: %v and %v", a.box, b.box)
				}
			}
			if err := rec(a); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("rplus: point %d missing", i)
		}
	}
	return nil
}
