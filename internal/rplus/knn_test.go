package rplus

import (
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func bruteKNN(ds *dataset.Dataset, q []float64, k int, m vec.Metric) []join.Neighbor {
	all := make([]join.Neighbor, ds.Len())
	for i := range all {
		all[i] = join.Neighbor{Index: i, Dist: vec.Dist(m, q, ds.Point(i))}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(600)
		d := 1 + rng.Intn(6)
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: rng.Int63(), Dist: synth.AllDistributions()[rng.Intn(4)]})
		tr := Build(ds, 2+rng.Intn(10), 1+rng.Intn(24))
		for qi := 0; qi < 8; qi++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64()
			}
			k := 1 + rng.Intn(10)
			for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
				got := tr.KNN(q, k, m, nil)
				want := bruteKNN(ds, q, k, m)
				if len(got) != len(want) {
					t.Fatalf("len %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i].Dist != want[i].Dist {
						t.Fatalf("%v: neighbor %d dist %g, want %g", m, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestKNNPrunes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 25000, Dims: 3, Seed: 2, Dist: synth.Uniform})
	tr := Build(ds, 0, 0)
	var c stats.Counters
	tr.KNN([]float64{0.5, 0.5, 0.5}, 8, vec.L2, &c)
	if c.Snapshot().DistComps > int64(ds.Len())/20 {
		t.Errorf("KNN tested %d of %d points", c.Snapshot().DistComps, ds.Len())
	}
}

func TestKNNPanics(t *testing.T) {
	tr := Build(synth.Generate(synth.Config{N: 5, Dims: 2, Seed: 3, Dist: synth.Uniform}), 0, 0)
	for name, fn := range map[string]func(){
		"k=0":          func() { tr.KNN([]float64{0, 0}, 0, vec.L2, nil) },
		"dim mismatch": func() { tr.KNN([]float64{0}, 1, vec.L2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
