package rplus

import (
	"fmt"

	"simjoin/internal/join"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// KNN returns the k nearest neighbors of q in ascending distance order.
// Children are visited nearest-region first (regions are disjoint, so the
// ordering is meaningful) and pruned against the current k-th best.
func (t *Tree) KNN(q []float64, k int, metric vec.Metric, counters *stats.Counters) []join.Neighbor {
	if len(q) != t.ds.Dims() {
		panic(fmt.Sprintf("rplus: query of dimension %d against %d-dim tree", len(q), t.ds.Dims()))
	}
	if k < 1 {
		panic(fmt.Sprintf("rplus: KNN with k=%d", k))
	}
	best := join.NewMaxHeap(k)
	var visits, comps int64
	var rec func(n *node)
	rec = func(n *node) {
		visits++
		if n.children == nil {
			for _, i := range n.pts {
				comps++
				best.Push(join.Neighbor{Index: int(i), Dist: vec.Dist(metric, q, t.ds.Point(int(i)))})
			}
			return
		}
		// Order children by region distance; the first is often enough to
		// tighten the bound so the rest prune.
		type cand struct {
			d float64
			c *node
		}
		order := make([]cand, 0, len(n.children))
		for _, c := range n.children {
			order = append(order, cand{d: c.box.MinDistPoint(metric, q), c: c})
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j].d < order[j-1].d; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, oc := range order {
			if b, ok := best.Bound(); ok && oc.d > b {
				break // sorted: no later child can qualify
			}
			rec(oc.c)
		}
	}
	rec(t.root)
	if counters != nil {
		counters.AddNodeVisits(visits)
		counters.AddDistComps(comps)
		counters.AddCandidates(comps)
	}
	return best.Sorted()
}
