package estimate

import (
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func exactSelfJoinSize(ds *dataset.Dataset, m vec.Metric, eps float64) int64 {
	var sink pairs.Counter
	brute.SelfJoin(ds, join.Options{Metric: m, Eps: eps}, &sink)
	return sink.N()
}

func TestSelfJoinSizeSmallIsExact(t *testing.T) {
	// Datasets at or below the sample size are counted exactly.
	ds := synth.Generate(synth.Config{N: 300, Dims: 4, Seed: 1, Dist: synth.GaussianClusters})
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		got := SelfJoinSize(ds, m, 0.1, 0, 1)
		want := exactSelfJoinSize(ds, m, 0.1)
		if got != want {
			t.Errorf("%v: estimate %d, exact %d", m, got, want)
		}
	}
}

func TestSelfJoinSizeLargeWithinFactor(t *testing.T) {
	// Sampled estimates must land within a factor of ~4 of the truth on
	// well-populated workloads.
	for _, dist := range []synth.Distribution{synth.Uniform, synth.GaussianClusters} {
		ds := synth.Generate(synth.Config{N: 12000, Dims: 4, Seed: 2, Dist: dist})
		eps := 0.05
		want := exactSelfJoinSize(ds, vec.L2, eps)
		if want < 100 {
			t.Fatalf("%v: degenerate ground truth %d", dist, want)
		}
		got := SelfJoinSize(ds, vec.L2, eps, 0, 3)
		if got < want/4 || got > want*4 {
			t.Errorf("%v: estimate %d outside 4× band of %d", dist, got, want)
		}
	}
}

func TestSelfJoinSizeDegenerate(t *testing.T) {
	if got := SelfJoinSize(dataset.New(3, 0), vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("empty estimate = %d", got)
	}
	one := dataset.FromPoints([][]float64{{1, 2, 3}})
	if got := SelfJoinSize(one, vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("singleton estimate = %d", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 500, Dims: 2, Seed: 4, Dist: synth.Uniform})
	tiny := Selectivity(ds, vec.L2, 0.001, 0, 1)
	huge := Selectivity(ds, vec.L2, 5, 0, 1)
	if tiny < 0 || tiny > 0.01 {
		t.Errorf("tiny-eps selectivity = %g", tiny)
	}
	if huge < 0.99 || huge > 1.0001 {
		t.Errorf("diameter-eps selectivity = %g, want ≈1", huge)
	}
	if Selectivity(dataset.New(2, 0), vec.L2, 1, 0, 1) != 0 {
		t.Error("empty selectivity nonzero")
	}
}

func TestChooseRules(t *testing.T) {
	small := synth.Generate(synth.Config{N: 100, Dims: 5, Seed: 5, Dist: synth.Uniform})
	if got := Choose(small, vec.L2, 0.1, 1); got != ChooseBrute {
		t.Errorf("small input chose %s", got)
	}
	oneD := synth.Generate(synth.Config{N: 5000, Dims: 1, Seed: 6, Dist: synth.Uniform})
	if got := Choose(oneD, vec.L2, 0.01, 1); got != ChooseSweep {
		t.Errorf("1-D chose %s", got)
	}
	unselective := synth.Generate(synth.Config{N: 5000, Dims: 3, Seed: 7, Dist: synth.Uniform})
	if got := Choose(unselective, vec.L2, 0.6, 1); got != ChooseGrid {
		t.Errorf("unselective join chose %s", got)
	}
	typical := synth.Generate(synth.Config{N: 5000, Dims: 8, Seed: 8, Dist: synth.GaussianClusters})
	if got := Choose(typical, vec.L2, 0.05, 1); got != ChooseEKDB {
		t.Errorf("typical workload chose %s", got)
	}
}

func TestChooseJoinRules(t *testing.T) {
	// Tiny on BOTH sides: nested loop.
	a := synth.Generate(synth.Config{N: 120, Dims: 5, Seed: 10, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 150, Dims: 5, Seed: 11, Dist: synth.Uniform})
	if got := ChooseJoin(a, b, vec.L2, 0.1, 1); got != ChooseBrute {
		t.Errorf("tiny×tiny chose %s", got)
	}
	// The satellite regression: a tiny outer set probing a large inner
	// set passes the single-set N ≤ 400 rule but must NOT pick brute —
	// the workload is |a|·|b| comparisons, not |a|².
	big := synth.Generate(synth.Config{N: 6000, Dims: 5, Seed: 12, Dist: synth.GaussianClusters})
	if got := Choose(a, vec.L2, 0.05, 1); got != ChooseBrute {
		t.Fatalf("precondition: Choose(a) = %s, want brute", got)
	}
	if got := ChooseJoin(a, big, vec.L2, 0.05, 1); got == ChooseBrute {
		t.Errorf("tiny×large chose brute")
	}
	// One dimension: sort-sweep.
	a1 := synth.Generate(synth.Config{N: 3000, Dims: 1, Seed: 13, Dist: synth.Uniform})
	b1 := synth.Generate(synth.Config{N: 3000, Dims: 1, Seed: 14, Dist: synth.Uniform})
	if got := ChooseJoin(a1, b1, vec.L2, 0.01, 1); got != ChooseSweep {
		t.Errorf("1-D chose %s", got)
	}
	// Unselective cross join: grid.
	ua := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 15, Dist: synth.Uniform})
	ub := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 16, Dist: synth.Uniform})
	if got := ChooseJoin(ua, ub, vec.L2, 0.6, 1); got != ChooseGrid {
		t.Errorf("unselective chose %s", got)
	}
	// Typical selective workload: ε-kdB.
	ta := synth.Generate(synth.Config{N: 4000, Dims: 8, Seed: 17, Dist: synth.GaussianClusters})
	tb := synth.Generate(synth.Config{N: 4000, Dims: 8, Seed: 18, Dist: synth.GaussianClusters})
	if got := ChooseJoin(ta, tb, vec.L2, 0.05, 1); got != ChooseEKDB {
		t.Errorf("typical chose %s", got)
	}
}

func TestJoinSizeAgainstExact(t *testing.T) {
	a := synth.Generate(synth.Config{N: 250, Dims: 4, Seed: 20, Dist: synth.GaussianClusters})
	b := synth.Generate(synth.Config{N: 200, Dims: 4, Seed: 21, Dist: synth.GaussianClusters})
	var sink pairs.Counter
	brute.Join(a, b, join.Options{Metric: vec.L2, Eps: 0.15}, &sink)
	// Both sets fit inside the sample, so the estimate is exact.
	if got := JoinSize(a, b, vec.L2, 0.15, 0, 1); got != sink.N() {
		t.Errorf("small JoinSize = %d, exact %d", got, sink.N())
	}
	if JoinSize(a, dataset.New(4, 0), vec.L2, 0.15, 0, 1) != 0 {
		t.Error("empty side gave nonzero estimate")
	}
}
