package estimate

import (
	"math"
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/sketch"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func exactSelfJoinSize(ds *dataset.Dataset, m vec.Metric, eps float64) int64 {
	var sink pairs.Counter
	brute.SelfJoin(ds, join.Options{Metric: m, Eps: eps}, &sink)
	return sink.N()
}

func TestSelfJoinSizeSmallIsExact(t *testing.T) {
	// Datasets at or below the sample size are counted exactly.
	ds := synth.Generate(synth.Config{N: 300, Dims: 4, Seed: 1, Dist: synth.GaussianClusters})
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		got := SelfJoinSize(ds, m, 0.1, 0, 1)
		want := exactSelfJoinSize(ds, m, 0.1)
		if got != want {
			t.Errorf("%v: estimate %d, exact %d", m, got, want)
		}
	}
}

func TestSelfJoinSizeLargeWithinFactor(t *testing.T) {
	// Sampled estimates must land within a factor of ~4 of the truth on
	// well-populated workloads.
	for _, dist := range []synth.Distribution{synth.Uniform, synth.GaussianClusters} {
		ds := synth.Generate(synth.Config{N: 12000, Dims: 4, Seed: 2, Dist: dist})
		eps := 0.05
		want := exactSelfJoinSize(ds, vec.L2, eps)
		if want < 100 {
			t.Fatalf("%v: degenerate ground truth %d", dist, want)
		}
		got := SelfJoinSize(ds, vec.L2, eps, 0, 3)
		if got < want/4 || got > want*4 {
			t.Errorf("%v: estimate %d outside 4× band of %d", dist, got, want)
		}
	}
}

func TestSelfJoinSizeDegenerate(t *testing.T) {
	if got := SelfJoinSize(dataset.New(3, 0), vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("empty estimate = %d", got)
	}
	one := dataset.FromPoints([][]float64{{1, 2, 3}})
	if got := SelfJoinSize(one, vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("singleton estimate = %d", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 500, Dims: 2, Seed: 4, Dist: synth.Uniform})
	tiny := Selectivity(ds, vec.L2, 0.001, 0, 1)
	huge := Selectivity(ds, vec.L2, 5, 0, 1)
	if tiny < 0 || tiny > 0.01 {
		t.Errorf("tiny-eps selectivity = %g", tiny)
	}
	if huge < 0.99 || huge > 1.0001 {
		t.Errorf("diameter-eps selectivity = %g, want ≈1", huge)
	}
	if Selectivity(dataset.New(2, 0), vec.L2, 1, 0, 1) != 0 {
		t.Error("empty selectivity nonzero")
	}
}

func TestChooseRules(t *testing.T) {
	small := synth.Generate(synth.Config{N: 100, Dims: 5, Seed: 5, Dist: synth.Uniform})
	if got := Choose(small, vec.L2, 0.1, 1); got != ChooseBrute {
		t.Errorf("small input chose %s", got)
	}
	oneD := synth.Generate(synth.Config{N: 5000, Dims: 1, Seed: 6, Dist: synth.Uniform})
	if got := Choose(oneD, vec.L2, 0.01, 1); got != ChooseSweep {
		t.Errorf("1-D chose %s", got)
	}
	unselective := synth.Generate(synth.Config{N: 5000, Dims: 3, Seed: 7, Dist: synth.Uniform})
	if got := Choose(unselective, vec.L2, 0.6, 1); got != ChooseGrid {
		t.Errorf("unselective join chose %s", got)
	}
	typical := synth.Generate(synth.Config{N: 5000, Dims: 8, Seed: 8, Dist: synth.GaussianClusters})
	if got := Choose(typical, vec.L2, 0.05, 1); got != ChooseEKDB {
		t.Errorf("typical workload chose %s", got)
	}
}

func TestChooseJoinRules(t *testing.T) {
	// Tiny on BOTH sides: nested loop.
	a := synth.Generate(synth.Config{N: 120, Dims: 5, Seed: 10, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 150, Dims: 5, Seed: 11, Dist: synth.Uniform})
	if got := ChooseJoin(a, b, vec.L2, 0.1, 1); got != ChooseBrute {
		t.Errorf("tiny×tiny chose %s", got)
	}
	// The satellite regression: a tiny outer set probing a large inner
	// set passes the single-set N ≤ 400 rule but must NOT pick brute —
	// the workload is |a|·|b| comparisons, not |a|².
	big := synth.Generate(synth.Config{N: 6000, Dims: 5, Seed: 12, Dist: synth.GaussianClusters})
	if got := Choose(a, vec.L2, 0.05, 1); got != ChooseBrute {
		t.Fatalf("precondition: Choose(a) = %s, want brute", got)
	}
	if got := ChooseJoin(a, big, vec.L2, 0.05, 1); got == ChooseBrute {
		t.Errorf("tiny×large chose brute")
	}
	// One dimension: sort-sweep.
	a1 := synth.Generate(synth.Config{N: 3000, Dims: 1, Seed: 13, Dist: synth.Uniform})
	b1 := synth.Generate(synth.Config{N: 3000, Dims: 1, Seed: 14, Dist: synth.Uniform})
	if got := ChooseJoin(a1, b1, vec.L2, 0.01, 1); got != ChooseSweep {
		t.Errorf("1-D chose %s", got)
	}
	// Unselective cross join: grid.
	ua := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 15, Dist: synth.Uniform})
	ub := synth.Generate(synth.Config{N: 4000, Dims: 3, Seed: 16, Dist: synth.Uniform})
	if got := ChooseJoin(ua, ub, vec.L2, 0.6, 1); got != ChooseGrid {
		t.Errorf("unselective chose %s", got)
	}
	// Typical selective workload: ε-kdB.
	ta := synth.Generate(synth.Config{N: 4000, Dims: 8, Seed: 17, Dist: synth.GaussianClusters})
	tb := synth.Generate(synth.Config{N: 4000, Dims: 8, Seed: 18, Dist: synth.GaussianClusters})
	if got := ChooseJoin(ta, tb, vec.L2, 0.05, 1); got != ChooseEKDB {
		t.Errorf("typical chose %s", got)
	}
}

// TestSelfJoinSizeMeasuredBias is the satellite's bias regression: the
// mean scaled estimate over many independent sample draws must sit on
// the exact count. A deliberately small sample (s = 25) makes the two
// candidate scales differ by the factor (1−1/s)/(1−1/n) ≈ 4%, and a
// near-diameter ε keeps the per-draw variance tiny — so a ±1.5% band on
// the mean cleanly separates the correct n(n−1)/(s(s−1)) scale from the
// biased (n/s)² one.
func TestSelfJoinSizeMeasuredBias(t *testing.T) {
	const (
		n, s  = 2000, 25
		seeds = 40
		eps   = 1.2 // unit square: almost every pair joins
	)
	ds := synth.Generate(synth.Config{N: n, Dims: 2, Seed: 30, Dist: synth.Uniform})
	exact := exactSelfJoinSize(ds, vec.L2, eps)
	if exact == 0 {
		t.Fatal("degenerate ground truth")
	}
	var sum float64
	for seed := int64(0); seed < seeds; seed++ {
		sum += float64(SelfJoinSize(ds, vec.L2, eps, s, seed))
	}
	ratio := sum / seeds / float64(exact)
	if ratio < 0.985 || ratio > 1.015 {
		t.Errorf("mean estimate / exact = %.4f over %d seeds, want ≈1 (r² scale would give ≈%.4f)",
			ratio, seeds, (1-1.0/s)/(1-1.0/n))
	}
}

// TestJoinSizeMeasuredBias is the two-set counterpart: the ra·rb scale
// is unbiased for cross pairs (no finite-population correction applies
// across two independent samples), so the mean must also sit on the
// exact count.
func TestJoinSizeMeasuredBias(t *testing.T) {
	const (
		s     = 30
		seeds = 40
		eps   = 1.2
	)
	a := synth.Generate(synth.Config{N: 1500, Dims: 2, Seed: 31, Dist: synth.Uniform})
	b := synth.Generate(synth.Config{N: 1200, Dims: 2, Seed: 32, Dist: synth.Uniform})
	var sink pairs.Counter
	brute.Join(a, b, join.Options{Metric: vec.L2, Eps: eps}, &sink)
	exact := sink.N()
	if exact == 0 {
		t.Fatal("degenerate ground truth")
	}
	var sum float64
	for seed := int64(0); seed < seeds; seed++ {
		sum += float64(JoinSize(a, b, vec.L2, eps, s, seed))
	}
	ratio := sum / seeds / float64(exact)
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("mean estimate / exact = %.4f over %d seeds, want ≈1", ratio, seeds)
	}
}

// TestPlanShortCircuitsDegenerateEps: non-finite or non-positive ε must
// be answered without running a single sample join (the satellite's
// short-circuit), with the trivially known prediction filled in.
func TestPlanShortCircuitsDegenerateEps(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 5000, Dims: 4, Seed: 33, Dist: synth.Uniform})
	n := int64(ds.Len())
	before := SampleJoins()
	for _, eps := range []float64{0, -1, math.NaN()} {
		p := Plan(ds, vec.L2, eps, 1)
		if p.Pairs != 0 || p.Selectivity != 0 {
			t.Errorf("eps=%g: predicted %d pairs, selectivity %g, want 0/0", eps, p.Pairs, p.Selectivity)
		}
	}
	if p := Plan(ds, vec.L2, math.Inf(1), 1); p.Pairs != n*(n-1)/2 || p.Selectivity != 1 || p.Algorithm != ChooseGrid {
		t.Errorf("eps=+Inf: prediction %+v", p)
	}
	if pj := PlanJoin(ds, ds, vec.L2, math.NaN(), 1); pj.Pairs != 0 {
		t.Errorf("join eps=NaN: predicted %d pairs", pj.Pairs)
	}
	if got := SampleJoins() - before; got != 0 {
		t.Errorf("degenerate ε ran %d sample joins, want 0", got)
	}
}

// TestPlanPredictionFields: the sampling planner fills the prediction
// when the rules needed one and reports -1 when it decided without.
func TestPlanPredictionFields(t *testing.T) {
	tiny := synth.Generate(synth.Config{N: 100, Dims: 5, Seed: 34, Dist: synth.Uniform})
	if p := Plan(tiny, vec.L2, 0.1, 1); p.Algorithm != ChooseBrute || p.Pairs != -1 {
		t.Errorf("tiny: %+v", p)
	}
	typical := synth.Generate(synth.Config{N: 5000, Dims: 8, Seed: 35, Dist: synth.GaussianClusters})
	p := Plan(typical, vec.L2, 0.05, 1)
	if p.Algorithm != ChooseEKDB || p.Pairs < 0 || p.Sketched {
		t.Errorf("typical: %+v", p)
	}
	want := SelfJoinSize(typical, vec.L2, 0.05, 0, 1)
	if p.Pairs < want/4 || p.Pairs > want*4 {
		t.Errorf("predicted %d pairs, sampling estimator says %d", p.Pairs, want)
	}
}

// TestSketchPlannerAgreesWithSampling is the acceptance sweep: across
// the EXPERIMENTS.md workload regimes (F1 tiny-N crossover, 1-D, the F3
// unselective convergence, F2-style clustered selective joins), the
// sketch-backed planner must pick the same algorithm as the sampling
// planner — and do it without a single brute-force sample join.
func TestSketchPlannerAgreesWithSampling(t *testing.T) {
	workloads := []struct {
		name string
		cfg  synth.Config
		eps  float64
	}{
		{"F1-tiny", synth.Config{N: 100, Dims: 5, Seed: 40, Dist: synth.Uniform}, 0.1},
		{"one-dim", synth.Config{N: 5000, Dims: 1, Seed: 41, Dist: synth.Uniform}, 0.01},
		{"F3-unselective", synth.Config{N: 5000, Dims: 3, Seed: 42, Dist: synth.Uniform}, 0.6},
		{"F2-clustered-d4", synth.Config{N: 5000, Dims: 4, Seed: 43, Dist: synth.GaussianClusters}, 0.05},
		{"F1-uniform-d8", synth.Config{N: 5000, Dims: 8, Seed: 44, Dist: synth.Uniform}, 0.1},
		{"F2-clustered-d16", synth.Config{N: 5000, Dims: 16, Seed: 45, Dist: synth.GaussianClusters}, 0.05},
	}
	for _, w := range workloads {
		ds := synth.Generate(w.cfg)
		sampled := Plan(ds, vec.L2, w.eps, 1)
		sk := sketch.FromDataset(ds, sketch.Config{})
		before := SampleJoins()
		sketched := PlanSketch(sk, ds.Len(), vec.L2, w.eps)
		if ran := SampleJoins() - before; ran != 0 {
			t.Errorf("%s: sketch planner ran %d sample joins", w.name, ran)
		}
		if sketched.Algorithm != sampled.Algorithm {
			t.Errorf("%s: sketch chose %s (sel %.4f), sampling chose %s (sel %.4f)",
				w.name, sketched.Algorithm, sketched.Selectivity, sampled.Algorithm, sampled.Selectivity)
		}
		if !sketched.Sketched {
			t.Errorf("%s: prediction not marked sketched", w.name)
		}
	}
}

// TestPlanJoinSketch covers the two-set sketch planner's shape.
func TestPlanJoinSketch(t *testing.T) {
	a := synth.Generate(synth.Config{N: 3000, Dims: 4, Seed: 50, Dist: synth.GaussianClusters})
	b := synth.Generate(synth.Config{N: 3000, Dims: 4, Seed: 50, Dist: synth.GaussianClusters})
	ska := sketch.FromDataset(a, sketch.Config{})
	skb := sketch.FromDataset(b, sketch.Config{Seed: 7})
	sampled := PlanJoin(a, b, vec.L2, 0.1, 1)
	sketched := PlanJoinSketch(ska, skb, a.Len(), b.Len(), vec.L2, 0.1)
	if sketched.Algorithm != sampled.Algorithm {
		t.Errorf("sketch chose %s, sampling chose %s", sketched.Algorithm, sampled.Algorithm)
	}
	if sketched.Pairs < 0 {
		t.Errorf("no pair prediction: %+v", sketched)
	}
}

func TestJoinSizeAgainstExact(t *testing.T) {
	a := synth.Generate(synth.Config{N: 250, Dims: 4, Seed: 20, Dist: synth.GaussianClusters})
	b := synth.Generate(synth.Config{N: 200, Dims: 4, Seed: 21, Dist: synth.GaussianClusters})
	var sink pairs.Counter
	brute.Join(a, b, join.Options{Metric: vec.L2, Eps: 0.15}, &sink)
	// Both sets fit inside the sample, so the estimate is exact.
	if got := JoinSize(a, b, vec.L2, 0.15, 0, 1); got != sink.N() {
		t.Errorf("small JoinSize = %d, exact %d", got, sink.N())
	}
	if JoinSize(a, dataset.New(4, 0), vec.L2, 0.15, 0, 1) != 0 {
		t.Error("empty side gave nonzero estimate")
	}
}
