package estimate

import (
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func exactSelfJoinSize(ds *dataset.Dataset, m vec.Metric, eps float64) int64 {
	var sink pairs.Counter
	brute.SelfJoin(ds, join.Options{Metric: m, Eps: eps}, &sink)
	return sink.N()
}

func TestSelfJoinSizeSmallIsExact(t *testing.T) {
	// Datasets at or below the sample size are counted exactly.
	ds := synth.Generate(synth.Config{N: 300, Dims: 4, Seed: 1, Dist: synth.GaussianClusters})
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		got := SelfJoinSize(ds, m, 0.1, 0, 1)
		want := exactSelfJoinSize(ds, m, 0.1)
		if got != want {
			t.Errorf("%v: estimate %d, exact %d", m, got, want)
		}
	}
}

func TestSelfJoinSizeLargeWithinFactor(t *testing.T) {
	// Sampled estimates must land within a factor of ~4 of the truth on
	// well-populated workloads.
	for _, dist := range []synth.Distribution{synth.Uniform, synth.GaussianClusters} {
		ds := synth.Generate(synth.Config{N: 12000, Dims: 4, Seed: 2, Dist: dist})
		eps := 0.05
		want := exactSelfJoinSize(ds, vec.L2, eps)
		if want < 100 {
			t.Fatalf("%v: degenerate ground truth %d", dist, want)
		}
		got := SelfJoinSize(ds, vec.L2, eps, 0, 3)
		if got < want/4 || got > want*4 {
			t.Errorf("%v: estimate %d outside 4× band of %d", dist, got, want)
		}
	}
}

func TestSelfJoinSizeDegenerate(t *testing.T) {
	if got := SelfJoinSize(dataset.New(3, 0), vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("empty estimate = %d", got)
	}
	one := dataset.FromPoints([][]float64{{1, 2, 3}})
	if got := SelfJoinSize(one, vec.L2, 0.1, 0, 1); got != 0 {
		t.Errorf("singleton estimate = %d", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 500, Dims: 2, Seed: 4, Dist: synth.Uniform})
	tiny := Selectivity(ds, vec.L2, 0.001, 0, 1)
	huge := Selectivity(ds, vec.L2, 5, 0, 1)
	if tiny < 0 || tiny > 0.01 {
		t.Errorf("tiny-eps selectivity = %g", tiny)
	}
	if huge < 0.99 || huge > 1.0001 {
		t.Errorf("diameter-eps selectivity = %g, want ≈1", huge)
	}
	if Selectivity(dataset.New(2, 0), vec.L2, 1, 0, 1) != 0 {
		t.Error("empty selectivity nonzero")
	}
}

func TestChooseRules(t *testing.T) {
	small := synth.Generate(synth.Config{N: 100, Dims: 5, Seed: 5, Dist: synth.Uniform})
	if got := Choose(small, vec.L2, 0.1, 1); got != ChooseBrute {
		t.Errorf("small input chose %s", got)
	}
	oneD := synth.Generate(synth.Config{N: 5000, Dims: 1, Seed: 6, Dist: synth.Uniform})
	if got := Choose(oneD, vec.L2, 0.01, 1); got != ChooseSweep {
		t.Errorf("1-D chose %s", got)
	}
	unselective := synth.Generate(synth.Config{N: 5000, Dims: 3, Seed: 7, Dist: synth.Uniform})
	if got := Choose(unselective, vec.L2, 0.6, 1); got != ChooseGrid {
		t.Errorf("unselective join chose %s", got)
	}
	typical := synth.Generate(synth.Config{N: 5000, Dims: 8, Seed: 8, Dist: synth.GaussianClusters})
	if got := Choose(typical, vec.L2, 0.05, 1); got != ChooseEKDB {
		t.Errorf("typical workload chose %s", got)
	}
}
