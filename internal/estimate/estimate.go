// Package estimate provides cheap pre-join estimation: result-size
// (selectivity) estimates — from a brute-force join over a random
// subsample, or from a resident streaming sketch (internal/sketch) —
// and a rule-based algorithm chooser calibrated from the library's own
// evaluation (EXPERIMENTS.md). Query optimizers are the paper family's
// first consumer of selectivity estimates; here they feed the public
// API's "auto" algorithm option and simjoind's admission control.
package estimate

import (
	"math"
	"sync/atomic"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/sketch"
	"simjoin/internal/vec"
)

// SampleSize is the default subsample used by the estimators. Estimation
// cost is quadratic in it; 1000 keeps it under a millisecond while the
// relative error of the scaled count stays within a small factor for the
// workloads the evaluation sweeps.
const SampleSize = 1000

// sampleJoins counts the brute-force sample joins the sampling
// estimators have run, exported for tests and observability: a planner
// consulting a sketch must leave it untouched.
var sampleJoins atomic.Int64

// SampleJoins reports how many brute-force sample joins the sampling
// estimators have performed process-wide.
func SampleJoins() int64 { return sampleJoins.Load() }

// SelfJoinSize estimates the number of result pairs of a self-join over ds
// at the given metric and ε: the exact count on a shuffled subsample of
// sampleSize points (0 selects SampleSize), scaled by n(n−1)/(s(s−1)) —
// an unordered pair {i, j} survives sampling s of n points without
// replacement with probability s(s−1)/(n(n−1)), so this scale makes the
// estimate unbiased over the random subsample. (The square of the point
// sampling ratio, (n/s)², is NOT the right scale: it under-estimates by
// the factor (1−1/n)/(1−1/s).) Expect factor-level accuracy, not
// percent-level.
func SelfJoinSize(ds *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) int64 {
	if sampleSize <= 0 {
		sampleSize = SampleSize
	}
	n := ds.Len()
	if n < 2 {
		return 0
	}
	sample := ds
	scale := 1.0
	if n > sampleSize {
		c := ds.Clone()
		c.Shuffle(seed)
		sample = c.Head(sampleSize)
		nf, sf := float64(n), float64(sampleSize)
		scale = nf * (nf - 1) / (sf * (sf - 1))
	}
	sampleJoins.Add(1)
	var sink pairs.Counter
	brute.SelfJoin(sample, join.Options{Metric: m, Eps: eps}, &sink)
	return int64(float64(sink.N()) * scale)
}

// Selectivity estimates the fraction of all point pairs that join (in
// [0, 1]).
func Selectivity(ds *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) float64 {
	n := int64(ds.Len())
	if n < 2 {
		return 0
	}
	total := n * (n - 1) / 2
	return float64(SelfJoinSize(ds, m, eps, sampleSize, seed)) / float64(total)
}

// JoinSize estimates the result cardinality of a two-set join of a and b
// at the given metric and ε: the exact brute-force count over shuffled
// subsamples of both sides (each capped at sampleSize; 0 selects
// SampleSize), scaled by the product of the two sampling ratios. Unlike
// the self-join case no finite-population pair correction applies: a
// cross pair (i, j) survives the two independent without-replacement
// samples with probability exactly (sa/na)·(sb/nb), so the ra·rb scale
// is unbiased as it stands. Like SelfJoinSize, expect factor-level
// accuracy.
func JoinSize(a, b *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) int64 {
	if sampleSize <= 0 {
		sampleSize = SampleSize
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	sample := func(ds *dataset.Dataset, seed int64) (*dataset.Dataset, float64) {
		if ds.Len() <= sampleSize {
			return ds, 1
		}
		c := ds.Clone()
		c.Shuffle(seed)
		return c.Head(sampleSize), float64(ds.Len()) / float64(sampleSize)
	}
	sa, ra := sample(a, seed)
	sb, rb := sample(b, seed^0x7ab1e5)
	sampleJoins.Add(1)
	var sink pairs.Counter
	brute.Join(sa, sb, join.Options{Metric: m, Eps: eps}, &sink)
	return int64(float64(sink.N()) * ra * rb)
}

// JoinSelectivity estimates the fraction of the |a|×|b| cross pairs that
// join (in [0, 1]).
func JoinSelectivity(a, b *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) float64 {
	total := int64(a.Len()) * int64(b.Len())
	if total == 0 {
		return 0
	}
	return float64(JoinSize(a, b, m, eps, sampleSize, seed)) / float64(total)
}

// Choice names the algorithm the chooser picked, using the same names as
// the public API.
type Choice string

// The chooser's possible answers.
const (
	ChooseBrute Choice = "brute"
	ChooseSweep Choice = "sweep"
	ChooseGrid  Choice = "grid"
	ChooseEKDB  Choice = "ekdb"
)

// Prediction is what the planner derived before a join runs: the chosen
// algorithm plus the result-size estimate that drove it. It is the unit
// simjoind's admission control and the predicted-vs-actual metrics
// consume.
type Prediction struct {
	// Algorithm is the chooser's pick.
	Algorithm Choice
	// Pairs is the predicted result size (self-joins: unordered pairs),
	// or -1 when the planner decided without estimating (tiny or
	// one-dimensional inputs on the sampling path, where estimating
	// would cost more than it informs).
	Pairs int64
	// Selectivity is Pairs over the total pair count, or -1 when Pairs
	// is -1.
	Selectivity float64
	// Sketched reports whether a resident sketch answered (true) or the
	// sampling path ran (false).
	Sketched bool
}

// The cost model behind the chooser, calibrated from the evaluation:
//
//   - tiny inputs (N ≤ chooseTinyN): nested loop — no build cost to
//     amortize (F1's crossover sits below N≈500);
//   - one dimension: the sort-sweep is exactly the right structure;
//   - very unselective joins (estimated selectivity ≥ chooseGridSel):
//     grid — F3 shows every ε-structure converging once most stripe
//     pairs join, and the grid's flat per-cell overhead wins the tie;
//   - everything else: the ε-kdB tree (fastest on every other row of
//     F1–F6/T1).
//
// Both the sampling and the sketch-backed planners decide through this
// one table, so their choices agree whenever their selectivity
// estimates land on the same side of chooseGridSel.
const (
	chooseTinyN   = 400
	chooseGridSel = 0.02
)

// chooseFrom applies the calibrated decision rules. selectivity is
// called only when the rules actually need an estimate, so trivial
// workloads never pay for one.
func chooseFrom(n, dims int, selectivity func() float64) Choice {
	switch {
	case n <= chooseTinyN:
		return ChooseBrute
	case dims == 1:
		return ChooseSweep
	case selectivity() >= chooseGridSel:
		return ChooseGrid
	default:
		return ChooseEKDB
	}
}

// Plan runs the sampling planner over ds: pick an algorithm and, when
// the rules needed one (or the answer was free), record the result-size
// estimate that drove it. Non-finite or non-positive ε short-circuits
// before any sampling — the public API rejects such thresholds, and the
// answer is known without looking at a single point.
func Plan(ds *dataset.Dataset, m vec.Metric, eps float64, seed int64) Prediction {
	n := int64(ds.Len())
	total := n * (n - 1) / 2
	p := Prediction{Pairs: -1, Selectivity: -1}
	sel := func() float64 {
		switch {
		case n < 2 || !(eps > 0): // empty input, or eps ≤ 0 / NaN: nothing joins
			p.Pairs, p.Selectivity = 0, 0
		case math.IsInf(eps, 1): // every pair joins
			p.Pairs, p.Selectivity = total, 1
		default:
			p.Selectivity = Selectivity(ds, m, eps, 0, seed)
			p.Pairs = int64(p.Selectivity*float64(total) + 0.5)
		}
		return p.Selectivity
	}
	p.Algorithm = chooseFrom(ds.Len(), ds.Dims(), sel)
	return p
}

// PlanJoin is Plan for a two-set join. It judges the workload by BOTH
// sides — total point count against the tiny-input rule, cross-join
// selectivity sampled from both sets — so a small outer set probing a
// large inner set is not mistaken for a tiny workload.
func PlanJoin(a, b *dataset.Dataset, m vec.Metric, eps float64, seed int64) Prediction {
	total := int64(a.Len()) * int64(b.Len())
	p := Prediction{Pairs: -1, Selectivity: -1}
	sel := func() float64 {
		switch {
		case total == 0 || !(eps > 0):
			p.Pairs, p.Selectivity = 0, 0
		case math.IsInf(eps, 1):
			p.Pairs, p.Selectivity = total, 1
		default:
			p.Selectivity = JoinSelectivity(a, b, m, eps, 0, seed)
			p.Pairs = int64(p.Selectivity*float64(total) + 0.5)
		}
		return p.Selectivity
	}
	p.Algorithm = chooseFrom(a.Len()+b.Len(), a.Dims(), sel)
	return p
}

// PlanSketch is Plan answered by a resident sketch instead of a fresh
// sample join: zero passes over the raw points, so the estimate is
// computed unconditionally and Pairs is always filled. n is the served
// dataset's current length (the sketch may trail or lead it by an
// in-flight batch; the sketch supplies the distance distribution, the
// caller the population size).
func PlanSketch(sk *sketch.Sketch, n int, m vec.Metric, eps float64) Prediction {
	total := int64(n) * int64(n-1) / 2
	p := Prediction{Sketched: true}
	switch {
	case n < 2 || !(eps > 0):
		p.Pairs, p.Selectivity = 0, 0
	case math.IsInf(eps, 1):
		p.Pairs, p.Selectivity = total, 1
	default:
		p.Selectivity = sk.SelfSelectivity(m, eps)
		p.Pairs = int64(p.Selectivity*float64(total) + 0.5)
	}
	p.Algorithm = chooseFrom(n, sk.Dims(), func() float64 { return p.Selectivity })
	return p
}

// PlanJoinSketch is PlanSketch for a two-set join over two sketches.
// na and nb are the served datasets' current lengths.
func PlanJoinSketch(ska, skb *sketch.Sketch, na, nb int, m vec.Metric, eps float64) Prediction {
	total := int64(na) * int64(nb)
	p := Prediction{Sketched: true}
	switch {
	case total == 0 || !(eps > 0):
		p.Pairs, p.Selectivity = 0, 0
	case math.IsInf(eps, 1):
		p.Pairs, p.Selectivity = total, 1
	default:
		p.Selectivity = ska.JoinSelectivity(skb, m, eps)
		p.Pairs = int64(p.Selectivity*float64(total) + 0.5)
	}
	p.Algorithm = chooseFrom(na+nb, ska.Dims(), func() float64 { return p.Selectivity })
	return p
}

// Choose picks a join algorithm for the workload through the sampling
// planner; see the cost-model rules above.
func Choose(ds *dataset.Dataset, m vec.Metric, eps float64, seed int64) Choice {
	return Plan(ds, m, eps, seed).Algorithm
}

// ChooseJoin is Choose for a two-set join.
func ChooseJoin(a, b *dataset.Dataset, m vec.Metric, eps float64, seed int64) Choice {
	return PlanJoin(a, b, m, eps, seed).Algorithm
}
