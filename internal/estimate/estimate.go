// Package estimate provides cheap pre-join estimation: result-size
// (selectivity) estimates from a brute-force join over a random subsample,
// and a rule-based algorithm chooser calibrated from the library's own
// evaluation (EXPERIMENTS.md). Query optimizers are the paper family's
// first consumer of selectivity estimates; here they feed the public API's
// "auto" algorithm option.
package estimate

import (
	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SampleSize is the default subsample used by the estimators. Estimation
// cost is quadratic in it; 1000 keeps it under a millisecond while the
// relative error of the scaled count stays within a small factor for the
// workloads the evaluation sweeps.
const SampleSize = 1000

// SelfJoinSize estimates the number of result pairs of a self-join over ds
// at the given metric and ε: the exact count on a shuffled subsample of
// sampleSize points (0 selects SampleSize), scaled by the squared sampling
// ratio. The estimate is unbiased over the random subsample; expect
// factor-level accuracy, not percent-level.
func SelfJoinSize(ds *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) int64 {
	if sampleSize <= 0 {
		sampleSize = SampleSize
	}
	n := ds.Len()
	if n < 2 {
		return 0
	}
	sample := ds
	scale := 1.0
	if n > sampleSize {
		c := ds.Clone()
		c.Shuffle(seed)
		sample = c.Head(sampleSize)
		r := float64(n) / float64(sampleSize)
		scale = r * r
	}
	var sink pairs.Counter
	brute.SelfJoin(sample, join.Options{Metric: m, Eps: eps}, &sink)
	return int64(float64(sink.N()) * scale)
}

// Selectivity estimates the fraction of all point pairs that join (in
// [0, 1]).
func Selectivity(ds *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) float64 {
	n := int64(ds.Len())
	if n < 2 {
		return 0
	}
	total := n * (n - 1) / 2
	return float64(SelfJoinSize(ds, m, eps, sampleSize, seed)) / float64(total)
}

// JoinSize estimates the result cardinality of a two-set join of a and b
// at the given metric and ε: the exact brute-force count over shuffled
// subsamples of both sides (each capped at sampleSize; 0 selects
// SampleSize), scaled by the product of the two sampling ratios. Like
// SelfJoinSize, expect factor-level accuracy.
func JoinSize(a, b *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) int64 {
	if sampleSize <= 0 {
		sampleSize = SampleSize
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	sample := func(ds *dataset.Dataset, seed int64) (*dataset.Dataset, float64) {
		if ds.Len() <= sampleSize {
			return ds, 1
		}
		c := ds.Clone()
		c.Shuffle(seed)
		return c.Head(sampleSize), float64(ds.Len()) / float64(sampleSize)
	}
	sa, ra := sample(a, seed)
	sb, rb := sample(b, seed^0x7ab1e5)
	var sink pairs.Counter
	brute.Join(sa, sb, join.Options{Metric: m, Eps: eps}, &sink)
	return int64(float64(sink.N()) * ra * rb)
}

// JoinSelectivity estimates the fraction of the |a|×|b| cross pairs that
// join (in [0, 1]).
func JoinSelectivity(a, b *dataset.Dataset, m vec.Metric, eps float64, sampleSize int, seed int64) float64 {
	total := int64(a.Len()) * int64(b.Len())
	if total == 0 {
		return 0
	}
	return float64(JoinSize(a, b, m, eps, sampleSize, seed)) / float64(total)
}

// Choice names the algorithm the chooser picked, using the same names as
// the public API.
type Choice string

// The chooser's possible answers.
const (
	ChooseBrute Choice = "brute"
	ChooseSweep Choice = "sweep"
	ChooseGrid  Choice = "grid"
	ChooseEKDB  Choice = "ekdb"
)

// Choose picks a join algorithm for the workload, using rules calibrated
// from the library's evaluation:
//
//   - tiny inputs (N ≤ 400): nested loop — no build cost to amortize
//     (F1's crossover sits below N≈500);
//   - one dimension: the sort-sweep is exactly the right structure;
//   - very unselective joins (estimated selectivity ≥ 2%): grid — F3
//     shows every ε-structure converging once most stripe pairs join, and
//     the grid's flat per-cell overhead wins the tie;
//   - everything else: the ε-kdB tree (fastest on every other row of
//     F1–F6/T1).
func Choose(ds *dataset.Dataset, m vec.Metric, eps float64, seed int64) Choice {
	if ds.Len() <= 400 {
		return ChooseBrute
	}
	if ds.Dims() == 1 {
		return ChooseSweep
	}
	if Selectivity(ds, m, eps, 0, seed) >= 0.02 {
		return ChooseGrid
	}
	return ChooseEKDB
}

// ChooseJoin is Choose for a two-set join. It judges the workload by BOTH
// sides — total point count against the tiny-input rule, cross-join
// selectivity sampled from both sets — so a small outer set probing a
// large inner set is not mistaken for a tiny workload (a, alone, would
// pass the N ≤ 400 brute rule while b holds millions of points).
func ChooseJoin(a, b *dataset.Dataset, m vec.Metric, eps float64, seed int64) Choice {
	if a.Len()+b.Len() <= 400 {
		return ChooseBrute
	}
	if a.Dims() == 1 {
		return ChooseSweep
	}
	if JoinSelectivity(a, b, m, eps, 0, seed) >= 0.02 {
		return ChooseGrid
	}
	return ChooseEKDB
}
