// Package store is a dependency-free durable storage engine for named
// datasets. Each dataset lives in its own directory as a versioned binary
// snapshot plus an append-only write-ahead log:
//
//	<dir>/<name>/snapshot-XXXXXXXX.sjds   full dataset image (CRC-trailed)
//	<dir>/<name>/wal.log                  put/append/delete records since it
//
// The WAL header names the snapshot generation it applies on top of, so a
// crash at any point of the snapshot/WAL rotation leaves exactly one
// consistent (snapshot, log) pair to recover from. Every record is
// length-prefixed and CRC-checked; recovery replays the valid prefix and
// truncates a torn tail instead of failing. A compactor folds a long WAL
// into a fresh snapshot (write temp + fsync + rename) once the log passes
// a size threshold.
//
// Catalog is the public face: it owns the directory, replays it on Open,
// and exposes the same put/append/delete verbs simjoind's handlers use.
package store

import (
	"errors"
	"fmt"
	"time"
)

// SyncMode selects when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs after every WAL record — no acknowledged write is
	// lost even to power failure. The default.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs dirty logs from a background loop every
	// Options.SyncInterval — bounded loss on power failure, none on a
	// process crash.
	SyncInterval
	// SyncNever leaves flushing to the OS — process crashes still lose
	// nothing (writes hit the page cache), power failures may.
	SyncNever
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSync parses a -fsync flag value: "always", "never", or a
// time.Duration like "100ms" selecting interval mode with that period.
func ParseSync(s string) (SyncMode, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf(`store: bad fsync policy %q (want "always", "never", or a positive duration)`, s)
	}
	return SyncInterval, d, nil
}

// DefaultCompactBytes is the WAL size that triggers compaction when
// Options.CompactBytes is zero.
const DefaultCompactBytes = 8 << 20

// DefaultSyncInterval is the flush period interval mode uses when
// Options.SyncInterval is zero.
const DefaultSyncInterval = 100 * time.Millisecond

// Hooks are optional observability callbacks; nil fields are skipped.
// They fire synchronously on the mutating goroutine, so they must be
// cheap and safe for concurrent use (metric increments, not logging IO).
type Hooks struct {
	// WALAppend observes one record write: wall time and encoded bytes.
	WALAppend func(d time.Duration, bytes int)
	// Snapshot observes one snapshot write: wall time and file bytes.
	Snapshot func(d time.Duration, bytes int)
	// Compaction observes one whole WAL-into-snapshot fold.
	Compaction func(d time.Duration)
	// Fsync fires once per fsync issued (WAL, snapshot, or directory).
	Fsync func()
}

// Options configures a Catalog. The zero value means: fsync always,
// DefaultCompactBytes compaction threshold, no hooks.
type Options struct {
	Sync         SyncMode
	SyncInterval time.Duration // interval mode period; DefaultSyncInterval if 0
	// CompactBytes is the WAL size that triggers folding it into a fresh
	// snapshot. 0 means DefaultCompactBytes; negative disables compaction.
	CompactBytes int64
	Hooks        Hooks
}

func (o Options) compactBytes() int64 {
	if o.CompactBytes == 0 {
		return DefaultCompactBytes
	}
	return o.CompactBytes
}

func (o Options) syncInterval() time.Duration {
	if o.SyncInterval <= 0 {
		return DefaultSyncInterval
	}
	return o.SyncInterval
}

// InputError marks a caller mistake (bad name, dimensionality mismatch,
// unknown dataset) as opposed to an IO failure, so HTTP layers can map
// it to a 4xx.
type InputError struct{ msg string }

func (e InputError) Error() string { return e.msg }

func inputErrf(format string, args ...any) error {
	return InputError{msg: fmt.Sprintf(format, args...)}
}

// ErrNotFound is wrapped by Append/Delete on an unknown dataset.
var ErrNotFound = errors.New("store: no such dataset")

// ErrChecksum is wrapped by the snapshot and WAL decoders on a CRC
// mismatch.
var ErrChecksum = errors.New("store: checksum mismatch")

// maxName bounds dataset names; they double as directory names.
const maxName = 128

// ValidateName reports whether name is usable as a dataset directory:
// 1–128 chars drawn from [A-Za-z0-9._-], not starting with a dot (which
// also rules out "." and ".." traversal).
func ValidateName(name string) error {
	if name == "" || len(name) > maxName {
		return inputErrf("store: dataset name must be 1–%d characters, got %d", maxName, len(name))
	}
	if name[0] == '.' {
		return inputErrf("store: dataset name %q may not start with a dot", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return inputErrf("store: dataset name %q contains %q; allowed: letters, digits, '.', '_', '-'", name, r)
		}
	}
	return nil
}
