package store

import (
	"bytes"
	"testing"

	"simjoin/internal/dataset"
)

// buildWAL assembles a WAL image from a header and framed records.
func buildWAL(gen uint64, payloads ...[]byte) []byte {
	var buf bytes.Buffer
	buf.Write(encodeWALHeader(gen))
	for _, p := range payloads {
		buf.Write(encodeRecord(p))
	}
	return buf.Bytes()
}

func TestWALReplayPutAppendDelete(t *testing.T) {
	base := testDataset(t, 3, 2)
	extra := [][]float64{{9, 9}, {8, 8}}
	flat := []float64{9, 9, 8, 8}

	img := buildWAL(0, putPayload(base), appendPayload(2, flat))
	res, err := replayWAL(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.gen != 0 || res.records != 2 || res.truncated {
		t.Fatalf("replay = %+v", res)
	}
	want := base.CloneWithCap(2)
	for _, p := range extra {
		want.Append(p)
	}
	if !res.state.Equal(want) {
		t.Fatalf("replayed %d points, want %d", res.state.Len(), want.Len())
	}

	// A delete record ends with no dataset; a put after it resurrects.
	img = buildWAL(0, putPayload(base), deletePayload())
	res, err = replayWAL(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.state != nil {
		t.Fatalf("state after delete = %v, want nil", res.state)
	}
	img = buildWAL(0, putPayload(base), deletePayload(), putPayload(base))
	res, err = replayWAL(img, nil)
	if err != nil || res.state == nil || !res.state.Equal(base) {
		t.Fatalf("put after delete: res=%+v err=%v", res, err)
	}
}

func TestWALReplayAppliesOnBase(t *testing.T) {
	base := testDataset(t, 5, 3)
	img := buildWAL(7, appendPayload(3, []float64{1, 2, 3}))
	res, err := replayWAL(img, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.gen != 7 || res.state.Len() != 6 {
		t.Fatalf("replay on base: gen=%d len=%d", res.gen, res.state.Len())
	}
	if base.Len() != 5 {
		t.Fatal("replay mutated the base dataset")
	}
}

func TestWALTornTailTruncation(t *testing.T) {
	base := testDataset(t, 3, 2)
	full := buildWAL(0, putPayload(base), appendPayload(2, []float64{1, 1}), appendPayload(2, []float64{2, 2}))
	// Offset just past the second record: header + rec1 + rec2.
	rec1 := len(encodeRecord(putPayload(base)))
	rec2 := len(encodeRecord(appendPayload(2, []float64{1, 1})))
	wantEnd := int64(walHdrLen + rec1 + rec2)

	for cut := int(wantEnd) + 1; cut < len(full); cut++ {
		res, err := replayWAL(full[:cut], nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.truncated || res.validEnd != wantEnd || res.records != 2 {
			t.Fatalf("cut %d: truncated=%v validEnd=%d records=%d, want true/%d/2", cut, res.truncated, res.validEnd, res.records, wantEnd)
		}
		if res.state.Len() != 4 {
			t.Fatalf("cut %d: recovered %d points, want 4", cut, res.state.Len())
		}
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	base := testDataset(t, 3, 2)
	img := buildWAL(0, putPayload(base), appendPayload(2, []float64{1, 1}))
	// Flip a byte inside the second record's payload.
	rec1 := len(encodeRecord(putPayload(base)))
	img[walHdrLen+rec1+10] ^= 0xff
	res, err := replayWAL(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.truncated || res.records != 1 || res.state.Len() != 3 {
		t.Fatalf("corrupt record: truncated=%v records=%d len=%d", res.truncated, res.records, res.state.Len())
	}
	if res.validEnd != int64(walHdrLen+rec1) {
		t.Fatalf("validEnd = %d, want %d", res.validEnd, walHdrLen+rec1)
	}
}

func TestWALHeaderErrors(t *testing.T) {
	if _, err := replayWAL([]byte("SJ"), nil); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := replayWAL([]byte("NOPE0123456789"), nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	img := buildWAL(0)
	img[4] = 42 // version
	if _, err := replayWAL(img, nil); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestApplyRecordRejectsGarbage(t *testing.T) {
	base := testDataset(t, 2, 2)
	cases := map[string][]byte{
		"empty":              {},
		"unknown op":         {42},
		"short put":          {opPut, 1, 2},
		"put size mismatch":  append([]byte{opPut, 2, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0}, 1, 2, 3),
		"short append":       {opAppend, 1},
		"append dims zero":   {opAppend, 0, 0, 0, 0, 0, 0, 0, 0},
		"delete with body":   {opDelete, 1},
		"append wrong bytes": {opAppend, 2, 0, 0, 0, 1, 0, 0, 0, 9},
	}
	for name, payload := range cases {
		if _, err := applyRecord(base, payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Dimensionality conflict with current state.
	if _, err := applyRecord(base, appendPayload(3, []float64{1, 2, 3})); err == nil {
		t.Error("dims conflict accepted")
	}
}

func TestEncodeDecodeRecordFraming(t *testing.T) {
	p := appendPayload(2, []float64{1, 2})
	rec := encodeRecord(p)
	if len(rec) != 8+len(p) {
		t.Fatalf("record length %d, want %d", len(rec), 8+len(p))
	}
	var ds *dataset.Dataset
	res, err := replayWAL(append(encodeWALHeader(3), rec...), ds)
	if err != nil || res.records != 1 || res.state.Len() != 1 {
		t.Fatalf("framed record replay: %+v, %v", res, err)
	}
}
