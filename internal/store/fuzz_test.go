package store

import (
	"bytes"
	"testing"

	"simjoin/internal/dataset"
)

// FuzzReadSnapshot: arbitrary input must never panic and must either
// error or yield a dataset that round-trips bit-exactly.
func FuzzReadSnapshot(f *testing.F) {
	for _, ds := range [][][]float64{
		{{1, 2}, {3, 4}},
		{{0.5}},
		{{1, 2, 3, 4, 5, 6, 7, 8}},
	} {
		var buf bytes.Buffer
		_ = WriteSnapshot(&buf, dataset.FromPoints(ds))
		f.Add(buf.Bytes())
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("XXXXXXXXXXXXXXXXXXXXXX"))
	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := ReadSnapshot(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, ds); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		var again bytes.Buffer
		if err := WriteSnapshot(&again, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatal("snapshot round trip changed the data")
		}
	})
}

// FuzzWALReplay: arbitrary WAL images must never panic, and recovery
// must be idempotent — truncating at validEnd and replaying again yields
// the same state with no further truncation.
func FuzzWALReplay(f *testing.F) {
	base := dataset.FromPoints([][]float64{{0, 0}, {1, 1}})
	f.Add(buildWAL(0, putPayload(base)))
	f.Add(buildWAL(3, putPayload(base), appendPayload(2, []float64{5, 5}), deletePayload()))
	f.Add(append(buildWAL(0, appendPayload(2, []float64{9, 9})), 1, 2, 3))
	f.Add(encodeWALHeader(7))
	f.Add([]byte("SJWL"))
	f.Fuzz(func(t *testing.T, in []byte) {
		res, err := replayWAL(in, nil)
		if err != nil {
			return
		}
		if res.validEnd < walHdrLen || res.validEnd > int64(len(in)) {
			t.Fatalf("validEnd %d outside [%d, %d]", res.validEnd, walHdrLen, len(in))
		}
		// Replaying the valid prefix alone must succeed cleanly.
		res2, err := replayWAL(in[:res.validEnd], nil)
		if err != nil {
			t.Fatalf("replay of valid prefix failed: %v", err)
		}
		if res2.truncated {
			t.Fatal("valid prefix still reports a torn tail")
		}
		if res2.records != res.records {
			t.Fatalf("prefix replay found %d records, first pass %d", res2.records, res.records)
		}
		if (res.state == nil) != (res2.state == nil) {
			t.Fatal("prefix replay disagrees on final state")
		}
		if res.state != nil && !res.state.Equal(res2.state) {
			t.Fatal("prefix replay produced different data")
		}
	})
}
