package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"simjoin/internal/dataset"
)

// WAL file format (all integers little-endian):
//
//	header:  "SJWL" | version uint16 | gen uint64
//	records: payloadLen uint32 | crc uint32 | payload
//
// gen names the snapshot generation the log applies on top of:
// replay loads snapshot-<gen> (empty base if the file is absent) and
// applies records in order. The per-record CRC covers the payload, so a
// torn write — short prefix, short payload, or a bit flip — is detected
// at the exact record boundary and recovery truncates there.
//
// Payloads:
//
//	opPut    | dims uint32 | count uint64 | count*dims float64   replace dataset
//	opAppend | dims uint32 | count uint32 | count*dims float64   append points
//	opDelete                                                     delete dataset
const (
	walMagic   = "SJWL"
	walVersion = 1
	walHdrLen  = 4 + 2 + 8
)

const (
	opPut    = byte(1)
	opAppend = byte(2)
	opDelete = byte(3)
)

// maxRecordBytes bounds one WAL record payload; anything larger is
// treated as corruption.
const maxRecordBytes = 1 << 30

// walName is the single log file every dataset directory carries.
const walName = "wal.log"

// encodeWALHeader renders the 14-byte file header for generation gen.
func encodeWALHeader(gen uint64) []byte {
	hdr := make([]byte, walHdrLen)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], gen)
	return hdr
}

// decodeWALHeader parses a file header, returning the generation.
func decodeWALHeader(hdr []byte) (uint64, error) {
	if len(hdr) < walHdrLen {
		return 0, fmt.Errorf("store: WAL header truncated: %d of %d bytes", len(hdr), walHdrLen)
	}
	if string(hdr[0:4]) != walMagic {
		return 0, fmt.Errorf("store: bad WAL magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != walVersion {
		return 0, fmt.Errorf("store: unsupported WAL version %d (want %d)", v, walVersion)
	}
	return binary.LittleEndian.Uint64(hdr[6:14]), nil
}

// encodeRecord frames payload as length | crc | payload.
func encodeRecord(payload []byte) []byte {
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	return rec
}

// putPayload encodes an opPut record body for ds.
func putPayload(ds *dataset.Dataset) []byte {
	flat := ds.Flat()
	p := make([]byte, 1+4+8+8*len(flat))
	p[0] = opPut
	binary.LittleEndian.PutUint32(p[1:5], uint32(ds.Dims()))
	binary.LittleEndian.PutUint64(p[5:13], uint64(ds.Len()))
	for i, v := range flat {
		binary.LittleEndian.PutUint64(p[13+8*i:], math.Float64bits(v))
	}
	return p
}

// appendPayload encodes an opAppend record body for count points stored
// row-major in flat.
func appendPayload(dims int, flat []float64) []byte {
	p := make([]byte, 1+4+4+8*len(flat))
	p[0] = opAppend
	binary.LittleEndian.PutUint32(p[1:5], uint32(dims))
	binary.LittleEndian.PutUint32(p[5:9], uint32(len(flat)/dims))
	for i, v := range flat {
		binary.LittleEndian.PutUint64(p[9+8*i:], math.Float64bits(v))
	}
	return p
}

// deletePayload encodes an opDelete record body.
func deletePayload() []byte { return []byte{opDelete} }

// applyRecord folds one decoded payload into state, returning the new
// state (nil means "dataset deleted"). Structurally invalid payloads —
// unknown op, size mismatch, dimensionality conflict — return an error;
// since the CRC already matched, these indicate writer bugs, but replay
// treats them like a torn tail and truncates rather than guessing.
func applyRecord(state *dataset.Dataset, payload []byte) (*dataset.Dataset, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("store: empty WAL record")
	}
	op, body := payload[0], payload[1:]
	switch op {
	case opPut:
		if len(body) < 12 {
			return nil, fmt.Errorf("store: put record body %d bytes, want ≥ 12", len(body))
		}
		dims := int(binary.LittleEndian.Uint32(body[0:4]))
		count := binary.LittleEndian.Uint64(body[4:12])
		if dims < 1 || dims > 1<<20 {
			return nil, fmt.Errorf("store: put record has implausible dimensionality %d", dims)
		}
		if count > 1<<40 {
			return nil, fmt.Errorf("store: put record has implausible point count %d", count)
		}
		if uint64(len(body)-12) != count*uint64(dims)*8 {
			return nil, fmt.Errorf("store: put record declares %d×%d floats but carries %d bytes", count, dims, len(body)-12)
		}
		return decodeFloats(dims, body[12:]), nil
	case opAppend:
		if len(body) < 8 {
			return nil, fmt.Errorf("store: append record body %d bytes, want ≥ 8", len(body))
		}
		dims := int(binary.LittleEndian.Uint32(body[0:4]))
		count := int(binary.LittleEndian.Uint32(body[4:8]))
		if dims < 1 || dims > 1<<20 {
			return nil, fmt.Errorf("store: append record has implausible dimensionality %d", dims)
		}
		if len(body)-8 != count*dims*8 {
			return nil, fmt.Errorf("store: append record declares %d×%d floats but carries %d bytes", count, dims, len(body)-8)
		}
		pts := decodeFloats(dims, body[8:])
		if state == nil {
			return pts, nil // append into the void establishes the dataset
		}
		if state.Dims() != dims {
			return nil, fmt.Errorf("store: append record has %d dims, dataset has %d", dims, state.Dims())
		}
		grown := state.CloneWithCap(pts.Len())
		grown.AppendFlat(pts.Flat())
		return grown, nil
	case opDelete:
		if len(body) != 0 {
			return nil, fmt.Errorf("store: delete record carries %d unexpected bytes", len(body))
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("store: unknown WAL op %d", op)
	}
}

// decodeFloats builds a dataset from a little-endian float64 block whose
// length is already validated as count*dims*8.
func decodeFloats(dims int, body []byte) *dataset.Dataset {
	flat := make([]float64, len(body)/8)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return dataset.FromFlat(dims, flat)
}

// replayResult reports what replayWAL recovered.
type replayResult struct {
	gen       uint64 // snapshot generation the log applies to
	state     *dataset.Dataset
	records   int
	validEnd  int64 // offset just past the last valid record
	truncated bool  // a torn tail was dropped
	tailErr   error // why the tail was dropped (diagnostic only)
}

// replayWAL reads a whole WAL image, applying records to base. It never
// fails on a damaged tail: the first record that is short, CRC-mismatched
// or structurally invalid ends the replay, and validEnd marks where the
// file should be truncated. A damaged header, by contrast, is a hard
// error — there is no valid prefix to keep.
func replayWAL(data []byte, base *dataset.Dataset) (replayResult, error) {
	gen, err := decodeWALHeader(data)
	if err != nil {
		return replayResult{}, err
	}
	res := replayResult{gen: gen, state: base, validEnd: walHdrLen}
	off := int64(walHdrLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return res, nil
		}
		if len(rest) < 8 {
			res.truncated, res.tailErr = true, fmt.Errorf("store: torn record prefix: %d bytes", len(rest))
			return res, nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen == 0 || plen > maxRecordBytes {
			res.truncated, res.tailErr = true, fmt.Errorf("store: implausible record length %d", plen)
			return res, nil
		}
		if uint64(len(rest)-8) < uint64(plen) {
			res.truncated, res.tailErr = true, fmt.Errorf("store: torn record payload: %d of %d bytes", len(rest)-8, plen)
			return res, nil
		}
		payload := rest[8 : 8+plen]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			res.truncated, res.tailErr = true, fmt.Errorf("%w: record at offset %d: stored %08x, computed %08x", ErrChecksum, off, crc, got)
			return res, nil
		}
		next, err := applyRecord(res.state, payload)
		if err != nil {
			res.truncated, res.tailErr = true, err
			return res, nil
		}
		res.state = next
		res.records++
		off += int64(8 + plen)
		res.validEnd = off
	}
}

// loadWALFile reads and replays path on top of base, truncating a torn
// tail in place so the next writer appends after the valid prefix.
func loadWALFile(path string, base *dataset.Dataset) (replayResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return replayResult{}, err
	}
	res, err := replayWAL(data, base)
	if err != nil {
		return res, err
	}
	if res.truncated {
		if err := os.Truncate(path, res.validEnd); err != nil {
			return res, fmt.Errorf("store: truncating torn WAL tail of %s: %w", path, err)
		}
	}
	return res, nil
}

// createWALFile atomically writes a fresh WAL containing only the header
// for gen and returns it opened for appending.
func createWALFile(path string, gen uint64, hooks Hooks) (*os.File, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeWALHeader(gen)); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := fsync(f, hooks); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(path, hooks); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
