package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"simjoin/internal/dataset"
)

func testDataset(t *testing.T, n, dims int) *dataset.Dataset {
	t.Helper()
	ds := dataset.New(dims, n)
	for i := 0; i < n; i++ {
		p := make([]float64, dims)
		for k := range p {
			p[k] = float64(i)*0.01 + float64(k)
		}
		ds.Append(p)
	}
	return ds
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, dims int }{{0, 1}, {1, 3}, {100, 8}, {7, 2}} {
		ds := testDataset(t, tc.n, tc.dims)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, ds); err != nil {
			t.Fatalf("n=%d dims=%d: write: %v", tc.n, tc.dims, err)
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("n=%d dims=%d: read: %v", tc.n, tc.dims, err)
		}
		if !back.Equal(ds) {
			t.Fatalf("n=%d dims=%d: round trip changed the data", tc.n, tc.dims)
		}
	}
}

func TestSnapshotChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testDataset(t, 10, 4)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one data byte; the trailer no longer matches.
	raw[snapshotHdrLen+5] ^= 0xff
	_, err := ReadSnapshot(bytes.NewReader(raw))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted snapshot: err = %v, want ErrChecksum", err)
	}
}

func TestSnapshotTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testDataset(t, 10, 4)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, snapshotHdrLen - 1, snapshotHdrLen + 3, len(raw) - 2} {
		_, err := ReadSnapshot(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut at %d: err %q does not mention truncation", cut, err)
		}
	}
}

func TestSnapshotBadMagicAndVersion(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("NOPE....................")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testDataset(t, 2, 2)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}
}
