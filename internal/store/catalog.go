package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/obsv/trace"
)

// Catalog is the durable dataset registry: one subdirectory per dataset,
// replayed on Open, mutated through Put/Append/Delete. All methods are
// safe for concurrent use; mutations to one dataset serialize on its own
// lock, so independent datasets never contend.
//
// Datasets handed to Put or returned by Append/Datasets are shared, not
// copied: callers must treat them as immutable (the same copy-on-write
// discipline simjoind's query path already relies on).
type Catalog struct {
	dir string
	opt Options

	mu   sync.Mutex
	sets map[string]*dsStore

	walBytes atomic.Int64 // total across datasets, for gauges/healthz
	rec      RecoveryInfo

	stopFlush chan struct{} // closes the interval-fsync loop
	flushDone chan struct{}
	closed    bool
}

// dsStore is one dataset's durable state. mu serializes every mutation
// (WAL append, compaction, delete) for that dataset.
type dsStore struct {
	mu       sync.Mutex
	name     string
	dir      string
	gen      uint64
	cur      *dataset.Dataset // latest durable state; nil once deleted
	wal      *os.File
	walBytes int64
	deleted  bool
	dirty    atomic.Bool // has unsynced WAL writes (interval mode)
}

// DatasetRecovery describes one dataset's replay on Open.
type DatasetRecovery struct {
	Name          string `json:"name"`
	Points        int    `json:"points"`
	Dims          int    `json:"dims"`
	Records       int    `json:"records"` // WAL records replayed
	WALBytes      int64  `json:"wal_bytes"`
	TailTruncated bool   `json:"tail_truncated"` // a torn WAL tail was dropped
}

// Quarantined names a dataset directory Open could not recover (for
// example a snapshot with a bad checksum). Its files are left untouched
// for forensics; the dataset is not served.
type Quarantined struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	Datasets    []DatasetRecovery `json:"datasets"`
	Quarantined []Quarantined     `json:"quarantined,omitempty"`
}

// Records returns the total WAL records replayed across datasets.
func (r RecoveryInfo) Records() int {
	n := 0
	for _, d := range r.Datasets {
		n += d.Records
	}
	return n
}

// TruncatedTails returns how many datasets lost a torn WAL tail.
func (r RecoveryInfo) TruncatedTails() int {
	n := 0
	for _, d := range r.Datasets {
		if d.TailTruncated {
			n++
		}
	}
	return n
}

// Open recovers (or creates) a catalog rooted at dir. Every dataset
// subdirectory is replayed — snapshot first, then the WAL's valid
// prefix, truncating a torn tail in place. Directories that cannot be
// recovered are quarantined in the RecoveryInfo rather than failing the
// whole catalog. In interval sync mode Open also starts the background
// flush loop; Close stops it.
func Open(dir string, opt Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	c := &Catalog{dir: dir, opt: opt, sets: make(map[string]*dsStore)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	for _, ent := range entries {
		if !ent.IsDir() || ValidateName(ent.Name()) != nil {
			continue
		}
		name := ent.Name()
		ds, rec, err := c.recoverDataset(name)
		if err != nil {
			c.rec.Quarantined = append(c.rec.Quarantined, Quarantined{Name: name, Error: err.Error()})
			continue
		}
		if ds == nil {
			continue // replay ended deleted; directory removed
		}
		c.sets[name] = ds
		c.walBytes.Add(ds.walBytes)
		c.rec.Datasets = append(c.rec.Datasets, rec)
	}
	sort.Slice(c.rec.Datasets, func(i, j int) bool { return c.rec.Datasets[i].Name < c.rec.Datasets[j].Name })
	if opt.Sync == SyncInterval {
		c.stopFlush = make(chan struct{})
		c.flushDone = make(chan struct{})
		go c.flushLoop()
	}
	return c, nil
}

// recoverDataset replays one dataset directory. A nil dsStore with nil
// error means the dataset's final state is "deleted" and its directory
// was removed.
func (c *Catalog) recoverDataset(name string) (*dsStore, DatasetRecovery, error) {
	dsDir := filepath.Join(c.dir, name)
	walPath := filepath.Join(dsDir, walName)

	st, err := os.Stat(walPath)
	switch {
	case os.IsNotExist(err) || (err == nil && st.Size() == 0):
		// Crash between directory creation and the first WAL header: if a
		// snapshot exists the dataset is still whole, otherwise nothing
		// durable ever landed here and the leftovers go.
		gen, ok := highestSnapshotGen(dsDir)
		if !ok {
			os.RemoveAll(dsDir)
			return nil, DatasetRecovery{}, nil
		}
		base, err := readSnapshotFile(snapshotPath(dsDir, gen))
		if err != nil {
			return nil, DatasetRecovery{}, err
		}
		wal, err := createWALFile(walPath, gen, c.opt.Hooks)
		if err != nil {
			return nil, DatasetRecovery{}, err
		}
		removeStaleSnapshots(dsDir, gen)
		d := &dsStore{name: name, dir: dsDir, gen: gen, cur: base, wal: wal, walBytes: walHdrLen}
		return d, DatasetRecovery{Name: name, Points: base.Len(), Dims: base.Dims(), WALBytes: walHdrLen}, nil
	case err != nil:
		return nil, DatasetRecovery{}, err
	}

	// Peek at the header to learn which snapshot the log applies to.
	hdr := make([]byte, walHdrLen)
	f, err := os.Open(walPath)
	if err != nil {
		return nil, DatasetRecovery{}, err
	}
	n, _ := f.Read(hdr)
	f.Close()
	gen, err := decodeWALHeader(hdr[:n])
	if err != nil {
		return nil, DatasetRecovery{}, err
	}
	var base *dataset.Dataset
	if _, err := os.Stat(snapshotPath(dsDir, gen)); err == nil {
		base, err = readSnapshotFile(snapshotPath(dsDir, gen))
		if err != nil {
			return nil, DatasetRecovery{}, err
		}
	}
	res, err := loadWALFile(walPath, base)
	if err != nil {
		return nil, DatasetRecovery{}, err
	}
	if res.state == nil {
		// The last durable word on this dataset is "deleted".
		os.RemoveAll(dsDir)
		return nil, DatasetRecovery{}, nil
	}
	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, DatasetRecovery{}, err
	}
	removeStaleSnapshots(dsDir, gen)
	d := &dsStore{name: name, dir: dsDir, gen: gen, cur: res.state, wal: wal, walBytes: res.validEnd}
	rec := DatasetRecovery{
		Name: name, Points: res.state.Len(), Dims: res.state.Dims(),
		Records: res.records, WALBytes: res.validEnd, TailTruncated: res.truncated,
	}
	return d, rec, nil
}

func snapshotPath(dsDir string, gen uint64) string {
	return filepath.Join(dsDir, fmt.Sprintf("snapshot-%08x.sjds", gen))
}

// highestSnapshotGen scans dsDir for snapshot files and returns the
// largest generation found.
func highestSnapshotGen(dsDir string) (uint64, bool) {
	gens := snapshotGens(dsDir)
	if len(gens) == 0 {
		return 0, false
	}
	return gens[len(gens)-1], true
}

func snapshotGens(dsDir string) []uint64 {
	ents, err := os.ReadDir(dsDir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		n := e.Name()
		if !strings.HasPrefix(n, "snapshot-") || !strings.HasSuffix(n, ".sjds") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "snapshot-"), ".sjds"), 16, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// removeStaleSnapshots deletes snapshot files from generations other
// than keep — leftovers of a compaction that crashed mid-rotation.
func removeStaleSnapshots(dsDir string, keep uint64) {
	for _, g := range snapshotGens(dsDir) {
		if g != keep {
			os.Remove(snapshotPath(dsDir, g))
		}
	}
}

func readSnapshotFile(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return ds, nil
}

// Recovery returns what Open found on disk.
func (c *Catalog) Recovery() RecoveryInfo { return c.rec }

// WALBytes returns the current total WAL size across datasets.
func (c *Catalog) WALBytes() int64 { return c.walBytes.Load() }

// DatasetWALBytes returns one dataset's current WAL size, and whether
// the dataset exists.
func (c *Catalog) DatasetWALBytes(name string) (int64, bool) {
	d, ok := c.get(name)
	if !ok {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deleted {
		return 0, false
	}
	return d.walBytes, true
}

// Dir returns the catalog's root directory.
func (c *Catalog) Dir() string { return c.dir }

// Datasets returns the recovered/current dataset for every live name.
func (c *Catalog) Datasets() map[string]*dataset.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*dataset.Dataset, len(c.sets))
	for name, d := range c.sets {
		d.mu.Lock()
		if !d.deleted {
			out[name] = d.cur
		}
		d.mu.Unlock()
	}
	return out
}

// Put durably replaces (or creates) the named dataset with ds.
func (c *Catalog) Put(ctx context.Context, name string, ds *dataset.Dataset) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	sp := trace.FromContext(ctx).Child("store.put")
	defer sp.End()
	sp.SetAttr("dataset", name)
	sp.AddCounter("points", int64(ds.Len()))
	for {
		d, err := c.getOrCreate(name)
		if err != nil {
			return err
		}
		d.mu.Lock()
		if d.deleted {
			d.mu.Unlock()
			continue // lost a race with Delete; re-create the directory
		}
		err = c.appendRecord(sp, d, putPayload(ds))
		if err == nil {
			d.cur = ds
			c.maybeCompact(sp, d)
		}
		d.mu.Unlock()
		return err
	}
}

// Append durably appends pts to the named dataset and returns the grown
// dataset (a fresh copy — the previous one stays valid for in-flight
// readers).
func (c *Catalog) Append(ctx context.Context, name string, pts [][]float64) (*dataset.Dataset, error) {
	sp := trace.FromContext(ctx).Child("store.append")
	defer sp.End()
	sp.SetAttr("dataset", name)
	sp.AddCounter("points", int64(len(pts)))
	d, ok := c.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deleted {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	dims := d.cur.Dims()
	flat := make([]float64, 0, len(pts)*dims)
	for i, p := range pts {
		if len(p) != dims {
			return nil, inputErrf("point %d has %d dims, dataset has %d", i, len(p), dims)
		}
		flat = append(flat, p...)
	}
	if err := c.appendRecord(sp, d, appendPayload(dims, flat)); err != nil {
		return nil, err
	}
	grown := d.cur.CloneWithCap(len(pts))
	grown.AppendFlat(flat)
	d.cur = grown
	c.maybeCompact(sp, d)
	return grown, nil
}

// Delete durably removes the named dataset: a delete record makes the
// intent crash-safe, then the directory goes away.
func (c *Catalog) Delete(ctx context.Context, name string) error {
	sp := trace.FromContext(ctx).Child("store.delete")
	defer sp.End()
	sp.SetAttr("dataset", name)
	d, ok := c.get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deleted {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := c.appendRecord(sp, d, deletePayload()); err != nil {
		return err
	}
	d.deleted = true
	d.cur = nil
	d.wal.Close()
	d.wal = nil
	c.walBytes.Add(-d.walBytes)
	d.walBytes = 0
	c.mu.Lock()
	if c.sets[name] == d {
		delete(c.sets, name)
	}
	c.mu.Unlock()
	if err := os.RemoveAll(d.dir); err != nil {
		return fmt.Errorf("store: removing %s: %w", d.dir, err)
	}
	return nil
}

// get fetches a live dataset store.
func (c *Catalog) get(name string) (*dsStore, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.sets[name]
	return d, ok
}

// getOrCreate returns the named dataset store, materializing its
// directory and an empty generation-0 WAL on first use.
func (c *Catalog) getOrCreate(name string) (*dsStore, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("store: catalog is closed")
	}
	if d, ok := c.sets[name]; ok {
		return d, nil
	}
	dsDir := filepath.Join(c.dir, name)
	if err := os.MkdirAll(dsDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dsDir, err)
	}
	wal, err := createWALFile(filepath.Join(dsDir, walName), 0, c.opt.Hooks)
	if err != nil {
		return nil, err
	}
	d := &dsStore{name: name, dir: dsDir, wal: wal, walBytes: walHdrLen}
	c.sets[name] = d
	c.walBytes.Add(walHdrLen)
	return d, nil
}

// appendRecord writes one framed record to d's WAL and applies the sync
// policy. Caller holds d.mu.
func (c *Catalog) appendRecord(sp *trace.Span, d *dsStore, payload []byte) error {
	child := sp.Child("store.wal.append")
	defer child.End()
	rec := encodeRecord(payload)
	start := time.Now()
	if _, err := d.wal.Write(rec); err != nil {
		return fmt.Errorf("store: appending to %s WAL: %w", d.name, err)
	}
	switch c.opt.Sync {
	case SyncAlways:
		if err := fsync(d.wal, c.opt.Hooks); err != nil {
			return fmt.Errorf("store: syncing %s WAL: %w", d.name, err)
		}
	case SyncInterval:
		d.dirty.Store(true)
	}
	d.walBytes += int64(len(rec))
	c.walBytes.Add(int64(len(rec)))
	child.AddCounter("bytes", int64(len(rec)))
	if c.opt.Hooks.WALAppend != nil {
		c.opt.Hooks.WALAppend(time.Since(start), len(rec))
	}
	return nil
}

// flushLoop is the interval-mode background fsync: every period it syncs
// each dataset WAL that saw writes since the last pass.
func (c *Catalog) flushLoop() {
	defer close(c.flushDone)
	t := time.NewTicker(c.opt.syncInterval())
	defer t.Stop()
	for {
		select {
		case <-c.stopFlush:
			c.flushDirty()
			return
		case <-t.C:
			c.flushDirty()
		}
	}
}

func (c *Catalog) flushDirty() {
	c.mu.Lock()
	sets := make([]*dsStore, 0, len(c.sets))
	for _, d := range c.sets {
		sets = append(sets, d)
	}
	c.mu.Unlock()
	for _, d := range sets {
		d.mu.Lock()
		if !d.deleted && d.dirty.Swap(false) {
			_ = fsync(d.wal, c.opt.Hooks)
		}
		d.mu.Unlock()
	}
}

// Close stops the flush loop, syncs every WAL, and closes the files.
// The catalog rejects mutations afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	sets := make([]*dsStore, 0, len(c.sets))
	for _, d := range c.sets {
		sets = append(sets, d)
	}
	c.mu.Unlock()
	if c.stopFlush != nil {
		close(c.stopFlush)
		<-c.flushDone
	}
	var first error
	for _, d := range sets {
		d.mu.Lock()
		if !d.deleted && d.wal != nil {
			if err := fsync(d.wal, c.opt.Hooks); err != nil && first == nil {
				first = err
			}
			if err := d.wal.Close(); err != nil && first == nil {
				first = err
			}
			d.deleted = true // reject further writes through stale handles
			d.wal = nil
		}
		d.mu.Unlock()
	}
	return first
}
