package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"simjoin/internal/dataset"
)

// Snapshot file format (all integers little-endian):
//
//	"SJSS"           4 bytes  magic
//	version  uint16  2 bytes  currently 1
//	dims     uint32  4 bytes
//	count    uint64  8 bytes
//	points   count*dims float64
//	crc      uint32  4 bytes  CRC-32 (IEEE) of every preceding byte
//
// The trailer makes truncation and bit rot indistinguishable from a bad
// write: both fail loudly with ErrChecksum or an unexpected-EOF error
// instead of yielding a silently short dataset.
const (
	snapshotMagic   = "SJSS"
	snapshotVersion = 1
	snapshotHdrLen  = 4 + 2 + 4 + 8
)

// maxSnapshotFloats caps the pre-allocation a snapshot header can demand;
// the header is untrusted input and growth past the cap is amortized by
// append (mirrors dataset.ReadBinary).
const maxSnapshotFloats = 1 << 22

// WriteSnapshot encodes ds in the snapshot format.
func WriteSnapshot(w io.Writer, ds *dataset.Dataset) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var hdr [snapshotHdrLen]byte
	copy(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(ds.Dims()))
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(ds.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range ds.Flat() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

// ReadSnapshot decodes a snapshot, refusing mismatched checksums and
// truncation with precise errors.
func ReadSnapshot(r io.Reader) (*dataset.Dataset, error) {
	// Hash exactly the bytes consumed (not through a TeeReader: bufio's
	// read-ahead would feed the hash bytes past the logical position,
	// including the trailer itself).
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	var hdr [snapshotHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot truncated in header: %w", err)
	}
	crc.Write(hdr[:])
	if string(hdr[0:4]) != snapshotMagic {
		return nil, fmt.Errorf("store: bad snapshot magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != snapshotVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	dims := int(binary.LittleEndian.Uint32(hdr[6:10]))
	count := binary.LittleEndian.Uint64(hdr[10:18])
	if dims < 1 || dims > 1<<20 {
		return nil, fmt.Errorf("store: implausible snapshot dimensionality %d", dims)
	}
	if count > 1<<40 {
		return nil, fmt.Errorf("store: implausible snapshot point count %d", count)
	}
	hint := int(count)
	if maxHint := maxSnapshotFloats / dims; hint > maxHint {
		hint = maxHint
	}
	ds := dataset.New(dims, hint)
	flat := make([]float64, 0, hint*dims)
	raw := make([]byte, 8*dims)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("store: snapshot truncated at point %d of %d: %w", i, count, err)
		}
		crc.Write(raw)
		for k := 0; k < dims; k++ {
			flat = append(flat, math.Float64frombits(binary.LittleEndian.Uint64(raw[k*8:])))
		}
	}
	ds.AppendFlat(flat)
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot truncated in checksum trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, fmt.Errorf("%w: snapshot trailer %08x, computed %08x", ErrChecksum, got, sum)
	}
	return ds, nil
}

// writeSnapshotFile atomically writes ds as path: temp file in the same
// directory, fsync, rename, directory fsync. Returns the file size.
func writeSnapshotFile(path string, ds *dataset.Dataset, hooks Hooks) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if err := WriteSnapshot(f, ds); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := fsync(f, hooks); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size, _ := f.Seek(0, io.SeekEnd)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, syncDir(path, hooks)
}

// fsync flushes f and charges the hook.
func fsync(f *os.File, hooks Hooks) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if hooks.Fsync != nil {
		hooks.Fsync()
	}
	return nil
}

// syncDir fsyncs the directory containing path so a just-renamed file
// survives power loss. Best effort on platforms that refuse directory
// fsync.
func syncDir(path string, hooks Hooks) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return nil // e.g. Windows: directories cannot be fsynced
	}
	if hooks.Fsync != nil {
		hooks.Fsync()
	}
	return nil
}
