package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openTestCatalog(t *testing.T, dir string, opt Options) *Catalog {
	t.Helper()
	c, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCatalogLifecycleAndRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{})

	base := testDataset(t, 20, 3)
	if err := c.Put(ctx, "pts", base); err != nil {
		t.Fatal(err)
	}
	grown, err := c.Append(ctx, "pts", [][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != 22 {
		t.Fatalf("grown len = %d, want 22", grown.Len())
	}
	if base.Len() != 20 {
		t.Fatal("Append mutated the caller's dataset")
	}
	if _, err := c.Append(ctx, "pts", [][]float64{{1, 2}}); err == nil {
		t.Fatal("dims mismatch accepted")
	} else if !errors.As(err, &InputError{}) {
		t.Fatalf("dims mismatch error type: %v", err)
	}
	if _, err := c.Append(ctx, "nope", [][]float64{{1, 2, 3}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to missing: %v", err)
	}
	if c.WALBytes() == 0 {
		t.Fatal("WALBytes = 0 after writes")
	}

	// Hard kill: no Close, just reopen the directory.
	c2 := openTestCatalog(t, dir, Options{})
	got := c2.Datasets()
	if len(got) != 1 || got["pts"] == nil {
		t.Fatalf("recovered datasets = %v", got)
	}
	if !got["pts"].Equal(grown) {
		t.Fatalf("recovered %d points, want %d", got["pts"].Len(), grown.Len())
	}
	rec := c2.Recovery()
	if len(rec.Datasets) != 1 || rec.Datasets[0].Records != 2 || rec.Datasets[0].Points != 22 {
		t.Fatalf("recovery info = %+v", rec)
	}
}

func TestCatalogDeletePersists(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{})
	if err := c.Put(ctx, "a", testDataset(t, 5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "b", testDataset(t, 5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatal("deleted dataset directory still exists")
	}
	// Re-put after delete works and survives restart.
	if err := c.Put(ctx, "a", testDataset(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
	c2 := openTestCatalog(t, dir, Options{})
	got := c2.Datasets()
	if len(got) != 2 || got["a"].Len() != 3 || got["a"].Dims() != 4 {
		t.Fatalf("after restart: %v", got)
	}
}

func TestCatalogTornWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{})
	if err := c.Put(ctx, "pts", testDataset(t, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "pts", [][]float64{{7, 7}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Tear the tail: chop 5 bytes off the last record.
	walPath := filepath.Join(dir, "pts", walName)
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCatalog(t, dir, Options{})
	rec := c2.Recovery()
	if len(rec.Datasets) != 1 || !rec.Datasets[0].TailTruncated {
		t.Fatalf("recovery = %+v, want tail truncated", rec)
	}
	if rec.TruncatedTails() != 1 {
		t.Fatalf("TruncatedTails = %d", rec.TruncatedTails())
	}
	// The valid prefix — the original put — survives.
	got := c2.Datasets()["pts"]
	if got == nil || got.Len() != 4 {
		t.Fatalf("recovered %v, want the 4-point put", got)
	}
	// The file was physically truncated: appends after recovery land
	// cleanly and the next restart sees no damage.
	if _, err := c2.Append(ctx, "pts", [][]float64{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3 := openTestCatalog(t, dir, Options{})
	if rec := c3.Recovery(); rec.TruncatedTails() != 0 {
		t.Fatalf("second recovery still truncating: %+v", rec)
	}
	if got := c3.Datasets()["pts"]; got.Len() != 5 {
		t.Fatalf("after repair + append: %d points, want 5", got.Len())
	}
}

func TestCatalogQuarantinesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// Tiny threshold so the put compacts into a snapshot immediately.
	c := openTestCatalog(t, dir, Options{CompactBytes: 1})
	if err := c.Put(ctx, "bad", testDataset(t, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "good", testDataset(t, 6, 2)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Corrupt a data byte in bad's snapshot.
	snaps, err := filepath.Glob(filepath.Join(dir, "bad", "snapshot-*.sjds"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[snapshotHdrLen+3] ^= 0xff
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCatalog(t, dir, Options{})
	rec := c2.Recovery()
	if len(rec.Quarantined) != 1 || rec.Quarantined[0].Name != "bad" {
		t.Fatalf("quarantined = %+v", rec.Quarantined)
	}
	got := c2.Datasets()
	if len(got) != 1 || got["good"] == nil || got["good"].Len() != 6 {
		t.Fatalf("surviving datasets = %v", got)
	}
	// The quarantined directory is left for forensics.
	if _, err := os.Stat(snaps[0]); err != nil {
		t.Fatalf("quarantined snapshot removed: %v", err)
	}
}

func TestCatalogCompaction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	var compactions, snapshots atomic.Int64
	opt := Options{
		CompactBytes: 2048,
		Hooks: Hooks{
			Compaction: func(time.Duration) { compactions.Add(1) },
			Snapshot:   func(time.Duration, int) { snapshots.Add(1) },
		},
	}
	c := openTestCatalog(t, dir, opt)
	if err := c.Put(ctx, "pts", testDataset(t, 10, 4)); err != nil {
		t.Fatal(err)
	}
	want := c.Datasets()["pts"]
	for i := 0; i < 50; i++ {
		var err error
		want, err = c.Append(ctx, "pts", [][]float64{{float64(i), 0, 0, 0}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if compactions.Load() == 0 || snapshots.Load() == 0 {
		t.Fatalf("compactions=%d snapshots=%d, want > 0", compactions.Load(), snapshots.Load())
	}
	// After compaction the WAL is near-empty again.
	if wb := c.WALBytes(); wb > 2048+walHdrLen {
		t.Fatalf("WALBytes = %d after compaction, want small", wb)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "pts", "snapshot-*.sjds"))
	if len(snaps) != 1 {
		t.Fatalf("snapshot files = %v, want exactly one generation", snaps)
	}
	// Restart recovers snapshot + residual WAL exactly.
	c.Close()
	c2 := openTestCatalog(t, dir, Options{})
	got := c2.Datasets()["pts"]
	if got == nil || !got.Equal(want) {
		t.Fatalf("recovered %v, want %d points (recovery: %+v)", got, want.Len(), c2.Recovery())
	}
}

func TestCatalogStaleSnapshotSwept(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{})
	if err := c.Put(ctx, "pts", testDataset(t, 4, 2)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Simulate a compaction that crashed after writing the next-gen
	// snapshot but before rotating the WAL (which still names gen 0).
	orphan := snapshotPath(filepath.Join(dir, "pts"), 1)
	f, err := os.Create(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(f, testDataset(t, 99, 2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c2 := openTestCatalog(t, dir, Options{})
	if got := c2.Datasets()["pts"]; got == nil || got.Len() != 4 {
		t.Fatalf("recovered %v, want the gen-0 WAL state", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan snapshot not swept")
	}
}

func TestCatalogNameValidation(t *testing.T) {
	c := openTestCatalog(t, t.TempDir(), Options{})
	ctx := context.Background()
	ds := testDataset(t, 1, 1)
	for _, name := range []string{"", ".", "..", ".hidden", "a/b", "a\\b", "a b", "x\x00y"} {
		err := c.Put(ctx, name, ds)
		if err == nil {
			t.Errorf("name %q accepted", name)
			continue
		}
		if !errors.As(err, &InputError{}) {
			t.Errorf("name %q: error type %T", name, err)
		}
	}
	for _, name := range []string{"a", "A-1", "foo_bar.v2", "0"} {
		if err := c.Put(ctx, name, ds); err != nil {
			t.Errorf("name %q rejected: %v", name, err)
		}
	}
}

func TestCatalogSyncModes(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"always", Options{Sync: SyncAlways}},
		{"never", Options{Sync: SyncNever}},
		{"interval", Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var fsyncs atomic.Int64
			tc.opt.Hooks.Fsync = func() { fsyncs.Add(1) }
			c := openTestCatalog(t, dir, tc.opt)
			if err := c.Put(ctx, "pts", testDataset(t, 3, 2)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Append(ctx, "pts", [][]float64{{1, 1}}); err != nil {
				t.Fatal(err)
			}
			if tc.opt.Sync == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for fsyncs.Load() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if fsyncs.Load() == 0 {
					t.Fatal("interval mode never fsynced")
				}
			}
			c.Close()
			c2 := openTestCatalog(t, dir, Options{})
			if got := c2.Datasets()["pts"]; got == nil || got.Len() != 4 {
				t.Fatalf("%s: recovered %v", tc.name, got)
			}
		})
	}
}

func TestCatalogConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{Sync: SyncNever, CompactBytes: 4096})
	const workers, per = 8, 25
	for w := 0; w < workers; w++ {
		if err := c.Put(ctx, fmt.Sprintf("set-%d", w%2), testDataset(t, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("set-%d", w%2)
			for i := 0; i < per; i++ {
				if _, err := c.Append(ctx, name, [][]float64{{float64(w), float64(i)}}); err != nil {
					errs <- err
					return
				}
				c.WALBytes()
				c.Datasets()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.Close()
	c2 := openTestCatalog(t, dir, Options{})
	got := c2.Datasets()
	total := 0
	for _, ds := range got {
		total += ds.Len()
	}
	if want := 2 + workers*per; total != want {
		t.Fatalf("recovered %d points total, want %d", total, want)
	}
}

func TestCatalogClosedRejectsWrites(t *testing.T) {
	c := openTestCatalog(t, t.TempDir(), Options{})
	ctx := context.Background()
	if err := c.Put(ctx, "a", testDataset(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Put(ctx, "b", testDataset(t, 1, 1)); err == nil {
		t.Fatal("Put on closed catalog accepted")
	}
	if _, err := c.Append(ctx, "a", [][]float64{{1}}); err == nil {
		t.Fatal("Append on closed catalog accepted")
	}
}

func TestParseSync(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "never": SyncNever, "100ms": SyncInterval} {
		mode, _, err := ParseSync(in)
		if err != nil || mode != want {
			t.Errorf("ParseSync(%q) = %v, %v", in, mode, err)
		}
	}
	for _, in := range []string{"", "sometimes", "-5s", "0s"} {
		if _, _, err := ParseSync(in); err == nil {
			t.Errorf("ParseSync(%q) accepted", in)
		}
	}
}

func TestCatalogPutLargeCompactsOnNextWrite(t *testing.T) {
	// A put bigger than the threshold compacts immediately after the
	// record lands; the WAL shrinks back to (almost) nothing.
	dir := t.TempDir()
	ctx := context.Background()
	c := openTestCatalog(t, dir, Options{CompactBytes: 1024})
	big := testDataset(t, 1000, 4) // 32 KB record
	if err := c.Put(ctx, "big", big); err != nil {
		t.Fatal(err)
	}
	if wb := c.WALBytes(); wb != walHdrLen {
		t.Fatalf("WALBytes = %d after oversized put, want %d (compacted)", wb, walHdrLen)
	}
	c2 := openTestCatalog(t, dir, Options{})
	if got := c2.Datasets()["big"]; got == nil || !got.Equal(big) {
		t.Fatalf("recovered %v", got)
	}
}
