package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"simjoin/internal/obsv/trace"
)

// maybeCompact folds d's WAL into a fresh snapshot when it has outgrown
// the configured threshold. Caller holds d.mu. Compaction failures are
// deliberately non-fatal to the triggering write — the WAL that just
// grew is still intact and replayable, so the worst outcome of a failed
// fold is a longer recovery, not data loss; the next mutation retries.
func (c *Catalog) maybeCompact(sp *trace.Span, d *dsStore) {
	limit := c.opt.compactBytes()
	if limit < 0 || d.walBytes <= limit || d.cur == nil {
		return
	}
	_ = c.compactLocked(sp, d)
}

// compactLocked rotates d onto a new generation:
//
//  1. write snapshot-<gen+1> from the in-memory state (temp+fsync+rename)
//  2. swap in a fresh WAL whose header names gen+1 (temp+fsync+rename)
//  3. delete the gen snapshot
//
// A crash after (1) leaves both snapshots with the WAL still naming gen:
// recovery uses the old pair and removes the orphan. A crash after (2)
// leaves the new pair authoritative and only a stale old snapshot to
// sweep. There is no point at which the directory is unrecoverable.
func (c *Catalog) compactLocked(sp *trace.Span, d *dsStore) error {
	child := sp.Child("store.compact")
	defer child.End()
	child.SetAttr("dataset", d.name)
	child.AddCounter("wal_bytes_before", d.walBytes)
	start := time.Now()

	newGen := d.gen + 1
	snapStart := time.Now()
	size, err := writeSnapshotFile(snapshotPath(d.dir, newGen), d.cur, c.opt.Hooks)
	if err != nil {
		child.SetAttr("error", err.Error())
		return fmt.Errorf("store: writing snapshot for %s: %w", d.name, err)
	}
	if c.opt.Hooks.Snapshot != nil {
		c.opt.Hooks.Snapshot(time.Since(snapStart), int(size))
	}
	sn := sp.Child("store.snapshot")
	sn.AddCounter("bytes", size)
	sn.End()

	wal, err := createWALFile(filepath.Join(d.dir, walName), newGen, c.opt.Hooks)
	if err != nil {
		// The new snapshot is an orphan recovery will sweep; the old
		// (snapshot, WAL) pair is still the durable truth.
		os.Remove(snapshotPath(d.dir, newGen))
		child.SetAttr("error", err.Error())
		return fmt.Errorf("store: rotating WAL for %s: %w", d.name, err)
	}
	d.wal.Close()
	d.wal = wal
	c.walBytes.Add(walHdrLen - d.walBytes)
	d.walBytes = walHdrLen
	os.Remove(snapshotPath(d.dir, d.gen))
	d.gen = newGen
	d.dirty.Store(false)
	if c.opt.Hooks.Compaction != nil {
		c.opt.Hooks.Compaction(time.Since(start))
	}
	return nil
}
