// Package brute implements the nested-loop similarity join. It is the
// correctness oracle every other algorithm is tested against, the small-N
// baseline of the evaluation (where its lack of build cost wins), and the
// refinement kernel other algorithms reuse for leaf-level work.
package brute

import (
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoin reports every unordered pair {i, j}, i < j, of points in ds with
// dist ≤ opt.Eps, emitting each exactly once with i < j.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	n := ds.Len()
	f := ds.KernelView(opt.Float32)
	var cand, res int64
	var i int32
	emit := func(j int32) { sink.Emit(int(i), int(j)) }
	for i = 0; int(i) < n; i++ {
		pc, pr := vec.ProbeRangeFlat(opt.Metric, f, i, f, int(i)+1, n, t, emit)
		cand += pc
		res += pr
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}

// Join reports every pair (i, j) with dist(a[i], b[j]) ≤ opt.Eps.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	na, nb := a.Len(), b.Len()
	fa := a.KernelView(opt.Float32)
	fb := b.KernelView(opt.Float32)
	var cand, res int64
	var i int32
	emit := func(j int32) { sink.Emit(int(i), int(j)) }
	for i = 0; int(i) < na; i++ {
		pc, pr := vec.ProbeRangeFlat(opt.Metric, fa, i, fb, 0, nb, t, emit)
		cand += pc
		res += pr
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}
