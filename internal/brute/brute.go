// Package brute implements the nested-loop similarity join. It is the
// correctness oracle every other algorithm is tested against, the small-N
// baseline of the evaluation (where its lack of build cost wins), and the
// refinement kernel other algorithms reuse for leaf-level work.
package brute

import (
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoin reports every unordered pair {i, j}, i < j, of points in ds with
// dist ≤ opt.Eps, emitting each exactly once with i < j.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	n := ds.Len()
	var cand, comps, res int64
	for i := 0; i < n; i++ {
		pi := ds.Point(i)
		for j := i + 1; j < n; j++ {
			cand++
			comps++
			if vec.Within(opt.Metric, pi, ds.Point(j), t) {
				res++
				sink.Emit(i, j)
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(comps)
	c.AddResults(res)
}

// Join reports every pair (i, j) with dist(a[i], b[j]) ≤ opt.Eps.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	opt.MustValidate()
	c := opt.Stats()
	t := opt.Threshold()
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	na, nb := a.Len(), b.Len()
	var cand, comps, res int64
	for i := 0; i < na; i++ {
		pi := a.Point(i)
		for j := 0; j < nb; j++ {
			cand++
			comps++
			if vec.Within(opt.Metric, pi, b.Point(j), t) {
				res++
				sink.Emit(i, j)
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(comps)
	c.AddResults(res)
}
