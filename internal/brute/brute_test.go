package brute

import (
	"math"
	"testing"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// reference computes the self-join answer with straight-line code fully
// independent of the package under test (no shared kernels).
func referenceSelf(ds *dataset.Dataset, metric vec.Metric, eps float64) []pairs.Pair {
	var out []pairs.Pair
	for i := 0; i < ds.Len(); i++ {
		for j := i + 1; j < ds.Len(); j++ {
			a, b := ds.Point(i), ds.Point(j)
			var d float64
			switch metric {
			case vec.L2:
				for k := range a {
					d += (a[k] - b[k]) * (a[k] - b[k])
				}
				d = math.Sqrt(d)
			case vec.L1:
				for k := range a {
					d += math.Abs(a[k] - b[k])
				}
			default:
				for k := range a {
					d = math.Max(d, math.Abs(a[k]-b[k]))
				}
			}
			if d <= eps {
				out = append(out, pairs.Pair{I: int32(i), J: int32(j)})
			}
		}
	}
	return out
}

func TestSelfJoinKnownCase(t *testing.T) {
	ds := dataset.FromPoints([][]float64{
		{0, 0}, {0.5, 0}, {3, 3}, {3.2, 3}, {10, 10},
	})
	for _, metric := range []vec.Metric{vec.L2, vec.L1, vec.Linf} {
		col := &pairs.Collector{Canonical: true}
		SelfJoin(ds, join.Options{Metric: metric, Eps: 0.6}, col)
		want := referenceSelf(ds, metric, 0.6)
		if !pairs.Equal(col.Sorted(), want) {
			t.Errorf("%v: %s", metric, pairs.Diff(col.Pairs, want))
		}
		// Under every metric here, {0,1} and {2,3} are within 0.6.
		if len(col.Pairs) != 2 {
			t.Errorf("%v: %d pairs, want 2", metric, len(col.Pairs))
		}
	}
}

func TestSelfJoinOrderingContract(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}, {0.1}, {0.2}})
	col := &pairs.Collector{}
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 1}, col)
	for _, p := range col.Pairs {
		if p.I >= p.J {
			t.Errorf("pair (%d,%d) not emitted with i<j", p.I, p.J)
		}
	}
	if len(col.Pairs) != 3 {
		t.Errorf("%d pairs, want 3", len(col.Pairs))
	}
}

func TestJoinTwoSets(t *testing.T) {
	a := dataset.FromPoints([][]float64{{0, 0}, {5, 5}})
	b := dataset.FromPoints([][]float64{{0.1, 0}, {5, 5.1}, {100, 100}})
	col := &pairs.Collector{}
	Join(a, b, join.Options{Metric: vec.L2, Eps: 0.2}, col)
	want := []pairs.Pair{{I: 0, J: 0}, {I: 1, J: 1}}
	if !pairs.Equal(col.Sorted(), want) {
		t.Errorf("got %v, want %v", col.Pairs, want)
	}
}

func TestJoinIsDirectional(t *testing.T) {
	// (i, j) must mean (a-index, b-index), not a canonical pair.
	a := dataset.FromPoints([][]float64{{0}})
	b := dataset.FromPoints([][]float64{{10}, {10}, {0.05}})
	col := &pairs.Collector{}
	Join(a, b, join.Options{Metric: vec.L2, Eps: 0.1}, col)
	if len(col.Pairs) != 1 || col.Pairs[0] != (pairs.Pair{I: 0, J: 2}) {
		t.Errorf("got %v, want [(0,2)]", col.Pairs)
	}
}

func TestCounters(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}, {1}, {2}, {3}})
	var c stats.Counters
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 1, Counters: &c}, &sink)
	s := c.Snapshot()
	if s.Candidates != 6 || s.DistComps != 6 { // C(4,2)
		t.Errorf("candidates/distcomps = %d/%d, want 6/6", s.Candidates, s.DistComps)
	}
	if s.Results != 3 || sink.N() != 3 {
		t.Errorf("results = %d/%d, want 3", s.Results, sink.N())
	}
}

func TestInvalidOptionsPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}})
	defer func() {
		if recover() == nil {
			t.Error("invalid options did not panic")
		}
	}()
	SelfJoin(ds, join.Options{}, &pairs.Counter{})
}

func TestEmptyAndSingleton(t *testing.T) {
	single := dataset.FromPoints([][]float64{{1, 2}})
	var sink pairs.Counter
	SelfJoin(single, join.Options{Metric: vec.L2, Eps: 1}, &sink)
	if sink.N() != 0 {
		t.Error("singleton self-join produced pairs")
	}
	empty := dataset.New(2, 0)
	SelfJoin(empty, join.Options{Metric: vec.L2, Eps: 1}, &sink)
	Join(empty, single, join.Options{Metric: vec.L2, Eps: 1}, &sink)
	Join(single, empty, join.Options{Metric: vec.L2, Eps: 1}, &sink)
	if sink.N() != 0 {
		t.Error("empty joins produced pairs")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Coincident points are pairs at distance 0 and must all be reported.
	ds := dataset.FromPoints([][]float64{{1, 1}, {1, 1}, {1, 1}})
	var sink pairs.Counter
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.001}, &sink)
	if sink.N() != 3 {
		t.Errorf("coincident triple produced %d pairs, want 3", sink.N())
	}
}
