// Package querylog is the query journal of the observability plane: a
// bounded, concurrency-safe record of every join-shaped query a daemon
// served — what was asked, what the planner predicted, what actually
// happened, and under which trace ID — so estimate-vs-actual accuracy,
// per-algorithm latency and individual slow queries are inspectable
// per query, after the fact, without any external collector.
//
// Retention is priority-aware, not purely FIFO: ordinary records live
// in one fixed ring, while records worth keeping longer — slow queries,
// and queries whose estimate missed the actual result size by more than
// MispredictFactor in either direction — are pinned into a second ring
// that only other pinned records can evict. A burst of healthy traffic
// therefore cannot flush the one query you need to debug.
package querylog

import (
	"sync"
	"time"
)

// DefaultCapacity is the journal size New uses for capacity <= 0:
// enough recent history to debug an incident, bounded memory forever.
const DefaultCapacity = 256

// DefaultSlowThreshold marks queries as slow when no threshold is
// configured. Joins on daemon-sized datasets complete well under this;
// anything slower is worth pinning.
const DefaultSlowThreshold = 250 * time.Millisecond

// MispredictFactor is how far the planner's estimate may deviate from
// the actual result size (in either direction) before the record is
// pinned as a misprediction.
const MispredictFactor = 10

// Outcome classifies how a journaled query ended.
type Outcome string

const (
	// OutcomeOK is a query that ran and answered normally.
	OutcomeOK Outcome = "ok"
	// OutcomeError is a query that failed validation or execution.
	OutcomeError Outcome = "error"
	// OutcomeRejected is a query refused by admission control (429).
	OutcomeRejected Outcome = "rejected"
	// OutcomeDegraded is an over-budget query that ran counting-only.
	OutcomeDegraded Outcome = "degraded"
)

// Record is one journaled query, JSON-shaped for GET /debug/queries.
// EstimatedPairs is -1 when the run carried no pre-run estimate.
type Record struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"` // selfjoin, join, knn, range, watch
	Dataset   string    `json:"dataset"`
	Dataset2  string    `json:"dataset2,omitempty"`
	Eps       float64   `json:"eps,omitempty"`
	Metric    string    `json:"metric,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	Stream    bool      `json:"stream,omitempty"`

	EstimatedPairs int64 `json:"estimated_pairs"`
	ActualPairs    int64 `json:"actual_pairs"`
	DistComps      int64 `json:"dist_comps,omitempty"`
	Candidates     int64 `json:"candidates,omitempty"`
	BuildNS        int64 `json:"build_ns,omitempty"`
	ProbeNS        int64 `json:"probe_ns,omitempty"`
	ElapsedNS      int64 `json:"elapsed_ns"`

	// Shards is the fan-out width of a coordinator-side record (0 on
	// workers).
	Shards int `json:"shards,omitempty"`

	TraceID string  `json:"trace_id,omitempty"`
	Outcome Outcome `json:"outcome"`
	Error   string  `json:"error,omitempty"`

	// Slow, Mispredicted and Pinned are filled by Add from the record's
	// timings and estimate; callers leave them zero.
	Slow         bool `json:"slow"`
	Mispredicted bool `json:"mispredicted"`
	Pinned       bool `json:"pinned"`
}

// Elapsed returns the query's wall time.
func (r Record) Elapsed() time.Duration { return time.Duration(r.ElapsedNS) }

// Log is the journal: two fixed rings under one mutex. All methods are
// safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	seq  uint64
	slow time.Duration

	normal ring
	pinned ring

	totalAdded int64
	slowAdded  int64
}

// New returns a Log retaining the last capacity ordinary records
// (DefaultCapacity when capacity <= 0) plus up to capacity/4 pinned
// ones (minimum 8), with DefaultSlowThreshold as the slow cutoff.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	pcap := capacity / 4
	if pcap < 8 {
		pcap = 8
	}
	return &Log{
		slow:   DefaultSlowThreshold,
		normal: newRing(capacity),
		pinned: newRing(pcap),
	}
}

// SetSlowThreshold changes the slow cutoff (d <= 0 marks every query
// slow, which tests use to force pinning).
func (l *Log) SetSlowThreshold(d time.Duration) {
	l.mu.Lock()
	l.slow = d
	l.mu.Unlock()
}

// SlowThreshold returns the current slow cutoff.
func (l *Log) SlowThreshold() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slow
}

// mispredicted reports whether est missed actual by more than
// MispredictFactor in either direction. est < 0 (no estimate) never
// counts; zeros clamp to one so an estimate of 0 against 5 actual pairs
// is a miss of 5×, not infinity.
func mispredicted(est, actual int64) bool {
	if est < 0 {
		return false
	}
	e, a := est, actual
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	return e > MispredictFactor*a || a > MispredictFactor*e
}

// Add journals r: Seq is assigned, Time defaults to now, and the
// Slow/Mispredicted/Pinned classification is computed. The annotated
// record is returned so callers can charge metrics off the same
// classification the journal stored.
func (l *Log) Add(r Record) Record {
	l.mu.Lock()
	l.seq++
	r.Seq = l.seq
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	r.Slow = time.Duration(r.ElapsedNS) >= l.slow
	r.Mispredicted = mispredicted(r.EstimatedPairs, r.ActualPairs)
	r.Pinned = r.Slow || r.Mispredicted
	l.totalAdded++
	if r.Slow {
		l.slowAdded++
	}
	if r.Pinned {
		l.pinned.push(r)
	} else {
		l.normal.push(r)
	}
	l.mu.Unlock()
	return r
}

// Filter narrows a Snapshot. The zero value selects everything.
type Filter struct {
	// Dataset keeps only records naming it (as either side of a join).
	Dataset string
	// SlowOnly keeps only records classified slow.
	SlowOnly bool
	// Limit caps the result length (0 = no cap).
	Limit int
}

func (f Filter) match(r Record) bool {
	if f.SlowOnly && !r.Slow {
		return false
	}
	if f.Dataset != "" && r.Dataset != f.Dataset && r.Dataset2 != f.Dataset {
		return false
	}
	return true
}

// Snapshot returns the retained records matching f, newest first
// (descending Seq), pinned and ordinary interleaved by recency. The
// returned slice is the caller's to keep.
func (l *Log) Snapshot(f Filter) []Record {
	l.mu.Lock()
	a := l.normal.snapshot() // oldest first
	b := l.pinned.snapshot()
	l.mu.Unlock()
	out := make([]Record, 0, len(a)+len(b))
	// Merge the two seq-ascending rings from their tails, emitting the
	// larger seq first — newest-first without a sort.
	i, j := len(a)-1, len(b)-1
	for i >= 0 || j >= 0 {
		var r Record
		switch {
		case j < 0 || (i >= 0 && a[i].Seq > b[j].Seq):
			r = a[i]
			i--
		default:
			r = b[j]
			j--
		}
		if !f.match(r) {
			continue
		}
		out = append(out, r)
		if f.Limit > 0 && len(out) == f.Limit {
			break
		}
	}
	return out
}

// Len returns how many records are currently retained (both rings).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.normal.len() + l.pinned.len()
}

// Totals reports how many records were ever journaled and how many of
// those were slow — the monotonic feed for scrape-time counters.
func (l *Log) Totals() (total, slow int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalAdded, l.slowAdded
}

// ring is a fixed-capacity FIFO of records.
type ring struct {
	buf   []Record
	next  int
	wrapd bool
}

func newRing(capacity int) ring {
	if capacity < 1 {
		capacity = 1
	}
	return ring{buf: make([]Record, capacity)}
}

func (r *ring) push(rec Record) {
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapd = true
	}
}

func (r *ring) len() int {
	if r.wrapd {
		return len(r.buf)
	}
	return r.next
}

// snapshot returns the retained records oldest first.
func (r *ring) snapshot() []Record {
	if !r.wrapd {
		out := make([]Record, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
