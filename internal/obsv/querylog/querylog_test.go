package querylog

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func rec(dataset string, elapsed time.Duration, est, actual int64) Record {
	return Record{
		Kind: "selfjoin", Dataset: dataset,
		EstimatedPairs: est, ActualPairs: actual,
		ElapsedNS: elapsed.Nanoseconds(),
		Outcome:   OutcomeOK,
	}
}

func TestAddClassifies(t *testing.T) {
	l := New(16)
	cases := []struct {
		name               string
		r                  Record
		slow, mispredicted bool
	}{
		{"fast accurate", rec("a", time.Millisecond, 100, 95), false, false},
		{"slow", rec("a", time.Second, 100, 95), true, false},
		{"over-estimate 20x", rec("a", time.Millisecond, 2000, 100), false, true},
		{"under-estimate 20x", rec("a", time.Millisecond, 100, 2000), false, true},
		{"exactly 10x is fine", rec("a", time.Millisecond, 1000, 100), false, false},
		{"no estimate", rec("a", time.Millisecond, -1, 1000000), false, false},
		{"zero actual clamps", rec("a", time.Millisecond, 5, 0), false, false},
		{"zero actual big estimate", rec("a", time.Millisecond, 50, 0), false, true},
	}
	for _, tc := range cases {
		got := l.Add(tc.r)
		if got.Slow != tc.slow || got.Mispredicted != tc.mispredicted {
			t.Errorf("%s: slow=%v mispredicted=%v, want %v/%v",
				tc.name, got.Slow, got.Mispredicted, tc.slow, tc.mispredicted)
		}
		if got.Pinned != (tc.slow || tc.mispredicted) {
			t.Errorf("%s: pinned=%v inconsistent with slow/mispredicted", tc.name, got.Pinned)
		}
		if got.Seq == 0 || got.Time.IsZero() {
			t.Errorf("%s: Add did not assign seq/time: %+v", tc.name, got)
		}
	}
}

// TestPriorityRetention is the retention contract: a flood of ordinary
// records evicts other ordinary records but cannot evict pinned ones.
func TestPriorityRetention(t *testing.T) {
	l := New(8) // pinned ring: max(8/4, 8) = 8
	pinned := l.Add(rec("important", time.Second, -1, 0))
	if !pinned.Pinned {
		t.Fatal("slow record not pinned")
	}
	for i := 0; i < 100; i++ {
		l.Add(rec(fmt.Sprintf("noise%d", i), time.Millisecond, -1, 0))
	}
	got := l.Snapshot(Filter{Dataset: "important"})
	if len(got) != 1 || got[0].Seq != pinned.Seq {
		t.Fatalf("pinned record evicted by ordinary flood: %+v", got)
	}
	// Ordinary retention is still bounded at the ring capacity.
	all := l.Snapshot(Filter{})
	if len(all) != 9 { // 8 ordinary + 1 pinned
		t.Fatalf("retained %d records, want 9", len(all))
	}
}

func TestSnapshotNewestFirstAndFilters(t *testing.T) {
	l := New(32)
	l.Add(rec("a", time.Millisecond, 10, 10))
	l.Add(rec("b", time.Second, 10, 10)) // slow
	l.Add(Record{Kind: "join", Dataset: "a", Dataset2: "b", EstimatedPairs: -1, ElapsedNS: 1})

	all := l.Snapshot(Filter{})
	if len(all) != 3 {
		t.Fatalf("snapshot len %d, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq >= all[i-1].Seq {
			t.Fatalf("snapshot not newest-first: %+v", all)
		}
	}
	if got := l.Snapshot(Filter{SlowOnly: true}); len(got) != 1 || got[0].Dataset != "b" {
		t.Fatalf("SlowOnly = %+v, want the slow b record", got)
	}
	// Dataset filter matches either side of a two-set join.
	if got := l.Snapshot(Filter{Dataset: "b"}); len(got) != 2 {
		t.Fatalf("Dataset=b matched %d records, want 2", len(got))
	}
	if got := l.Snapshot(Filter{Limit: 2}); len(got) != 2 || got[0].Seq != all[0].Seq {
		t.Fatalf("Limit=2 = %+v", got)
	}
}

func TestTotals(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(rec("a", time.Millisecond, -1, 0))
	}
	l.Add(rec("a", time.Second, -1, 0))
	total, slow := l.Totals()
	if total != 11 || slow != 1 {
		t.Fatalf("Totals = %d/%d, want 11/1", total, slow)
	}
	if l.Len() != 5 { // 4 ordinary retained + 1 pinned
		t.Fatalf("Len = %d, want 5", l.Len())
	}
}

func TestSetSlowThreshold(t *testing.T) {
	l := New(4)
	if got := l.Add(rec("a", time.Millisecond, -1, 0)); got.Slow {
		t.Fatal("1ms slow under the default threshold")
	}
	l.SetSlowThreshold(0)
	if got := l.Add(rec("a", 0, -1, 0)); !got.Slow {
		t.Fatal("threshold 0 should mark everything slow")
	}
	if l.SlowThreshold() != 0 {
		t.Fatal("SlowThreshold not updated")
	}
}

// TestConcurrentPriorityRetention hammers the journal from many writers
// mixing pinned and ordinary records while readers snapshot, then
// verifies no pinned record in the final window was lost and snapshots
// stay ordered. Run under -race this is the journal's concurrency gate.
func TestConcurrentPriorityRetention(t *testing.T) {
	l := New(64) // pinned capacity 16
	const writers = 8
	const perWriter = 500
	var wg, readers sync.WaitGroup
	var done atomic.Bool
	// Readers yield between snapshots and stop once the writers finish —
	// a tight snapshot loop would starve the writers on a single-CPU
	// machine under the race detector.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !done.Load() {
				snap := l.Snapshot(Filter{})
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq >= snap[i-1].Seq {
						t.Errorf("snapshot out of order at %d", i)
						return
					}
				}
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%10 == 0 {
					l.Add(rec("pinme", time.Second, -1, 0)) // slow → pinned
				} else {
					l.Add(rec("bulk", time.Microsecond, 10, 10))
				}
			}
		}(w)
	}
	wg.Wait()
	done.Store(true)
	readers.Wait()

	total, slow := l.Totals()
	if want := int64(writers * perWriter); total != want {
		t.Fatalf("Totals total = %d, want %d", total, want)
	}
	if want := int64(writers * perWriter / 10); slow != want {
		t.Fatalf("Totals slow = %d, want %d", slow, want)
	}
	// The pinned ring holds exactly its capacity of slow records — the
	// newest 16 by seq — and none were displaced by the bulk flood.
	pinnedSnap := l.Snapshot(Filter{Dataset: "pinme"})
	if len(pinnedSnap) != 16 {
		t.Fatalf("retained %d pinned records, want 16", len(pinnedSnap))
	}
	// No ordinary record outlived a pinned one wrongly: every retained
	// pinned record is newer than the oldest possible eviction horizon.
	bulkSnap := l.Snapshot(Filter{Dataset: "bulk"})
	if len(bulkSnap) != 64 {
		t.Fatalf("retained %d bulk records, want 64", len(bulkSnap))
	}
}

func TestSnapshotLimitAcrossRings(t *testing.T) {
	l := New(8)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			l.Add(rec("s", time.Second, -1, 0))
		} else {
			l.Add(rec("f", time.Millisecond, -1, 0))
		}
	}
	got := l.Snapshot(Filter{Limit: 5})
	if len(got) != 5 {
		t.Fatalf("limit 5 returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq >= got[i-1].Seq {
			t.Fatalf("limited snapshot out of order: %+v", got)
		}
	}
}
