package obsv

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Write(&sb)
	return sb.String()
}

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a test counter")
	c.Inc()
	c.Add(4)
	out := render(r)
	for _, want := range []string{
		"# HELP test_total a test counter\n",
		"# TYPE test_total counter\n",
		"test_total 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecRender(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("req_total", "requests", "route")
	v.With("GET /b").Inc()
	v.With("GET /a").Add(2)
	v.With("GET /a").Inc() // same child
	out := render(r)
	// Deterministic label order: /a before /b.
	ia := strings.Index(out, `req_total{route="GET /a"} 3`)
	ib := strings.Index(out, `req_total{route="GET /b"} 1`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("unexpected vec rendering:\n%s", out)
	}
	snap := v.Snapshot()
	if snap["GET /a"] != 3 || snap["GET /b"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 20} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-20.65) > 1e-9 {
		t.Errorf("Sum = %g, want 20.65", h.Sum())
	}
	out := render(r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1 (le is inclusive)
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecRender(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("lat_seconds", "latency", "route", LatencyBuckets())
	v.With("GET /x").Observe(0.003)
	out := render(r)
	for _, want := range []string{
		`lat_seconds_bucket{route="GET /x",le="0.005"} 1`,
		`lat_seconds_bucket{route="GET /x",le="0.001"} 0`,
		`lat_seconds_bucket{route="GET /x",le="+Inf"} 1`,
		`lat_seconds_count{route="GET /x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyBucketsLogSpaced(t *testing.T) {
	b := LatencyBuckets()
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
		ratio := b[i] / b[i-1]
		if ratio < 1.9 || ratio > 2.6 {
			t.Errorf("bucket ratio %g at %d not log-spaced", ratio, i)
		}
	}
}

func TestGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("up", "one", func() float64 { return 1 })
	r.NewGaugeVecFunc("worker_up", "per worker", "worker", func() map[string]float64 {
		return map[string]float64{"http://w1": 1, "http://w2": 0}
	})
	out := render(r)
	for _, want := range []string{
		"# TYPE up gauge\nup 1\n",
		`worker_up{worker="http://w1"} 1`,
		`worker_up{worker="http://w2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c_total", "counts", "k")
	v.With(`a"b\c` + "\n").Inc()
	out := render(r)
	want := `c_total{k="a\"b\\c\n"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", h.Count())
	}
	if math.Abs(h.Sum()-4.0) > 1e-6 {
		t.Errorf("Sum = %g, want 4", h.Sum())
	}
}

func ExampleRegistry() {
	r := NewRegistry()
	c := r.NewCounterVec("simjoind_requests_total", "requests by route", "route")
	c.With("GET /healthz").Inc()
	var sb strings.Builder
	r.Write(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP simjoind_requests_total requests by route
	// # TYPE simjoind_requests_total counter
	// simjoind_requests_total{route="GET /healthz"} 1
}
