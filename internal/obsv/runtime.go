package obsv

import (
	"math"
	"runtime/metrics"
	"sync"
)

// RuntimeCollector samples Go runtime health — heap footprint, GC pause
// and scheduler latency distributions, goroutine count — through the
// runtime/metrics interface, at scrape time only: an idle daemon pays
// nothing, and a scrape pays one metrics.Read plus a fixed re-bucketing
// pass. A goroutine-growth watchdog gauge tracks the current goroutine
// count against the low-water mark observed since the collector was
// registered, so a leak shows up as a steadily rising ratio even when
// the absolute count looks plausible.
type RuntimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	// low is the smallest goroutine count any scrape has observed
	// (0 = no scrape yet); the watchdog reports current/low.
	low int64
}

// Runtime metric names, in samples order. The pause series prefers the
// modern /sched/pauses name and falls back to the deprecated /gc/pauses
// if the runtime lacks it, so the collector works across toolchains.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
	rmGCPausesOld = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
)

// NewRuntimeCollector returns an unregistered collector.
func NewRuntimeCollector() *RuntimeCollector {
	pauses := rmGCPauses
	if !metricSupported(pauses) {
		pauses = rmGCPausesOld
	}
	c := &RuntimeCollector{samples: []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: pauses},
		{Name: rmSchedLat},
		{Name: rmGCCycles},
	}}
	return c
}

// metricSupported reports whether the running toolchain publishes name.
func metricSupported(name string) bool {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return s[0].Value.Kind() != metrics.KindBad
}

// read refreshes the sample set and returns it; callers use it under
// the collector's lock via with.
func (c *RuntimeCollector) with(fn func(s []metrics.Sample)) {
	c.mu.Lock()
	metrics.Read(c.samples)
	fn(c.samples)
	c.mu.Unlock()
}

// microBuckets is the fixed bound ladder runtime histograms are
// re-bucketed into: 1µs to 100ms in a 1–2.5–5 progression. GC pauses
// and scheduler latencies live in the microsecond range, far below the
// request-latency ladder LatencyBuckets covers.
func microBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 1e-1,
	}
}

// rebucket folds a runtime/metrics Float64Histogram onto fixed bounds:
// each runtime bucket's count lands in the first fixed bucket whose
// bound covers the runtime bucket's upper edge (+Inf when none does).
// The sample sum is approximated from bucket midpoints — runtime
// histograms carry no exact sum — which is fine for the ratios
// dashboards compute from it.
func rebucket(h *metrics.Float64Histogram, bounds []float64) HistogramSample {
	out := HistogramSample{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	if h == nil {
		return out
	}
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// Place by upper edge; an infinite edge lands in the overflow
		// bucket.
		j := len(bounds)
		for b, ub := range bounds {
			if hi <= ub {
				j = b
				break
			}
		}
		out.Counts[j] += n
		mid := (lo + hi) / 2
		if math.IsInf(hi, 1) {
			mid = lo
		}
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if !math.IsInf(mid, 0) && !math.IsNaN(mid) {
			out.Sum += float64(n) * mid
		}
	}
	return out
}

// Register wires the collector's series into reg under the given name
// prefix (e.g. "simjoind"): goroutine and heap gauges, GC-pause and
// scheduler-latency histograms, a GC cycle counter, and the
// goroutine-growth watchdog gauge.
func (c *RuntimeCollector) Register(reg *Registry, prefix string) {
	reg.NewGaugeFunc(prefix+"_go_goroutines",
		"Goroutines currently live (runtime/metrics).",
		func() float64 {
			var v float64
			c.with(func(s []metrics.Sample) {
				n := int64(s[0].Value.Uint64())
				if c.low == 0 || n < c.low {
					c.low = n
				}
				v = float64(n)
			})
			return v
		})
	reg.NewGaugeFunc(prefix+"_go_goroutine_growth",
		"Goroutine-growth watchdog: current goroutine count over the low-water mark observed since start. A steadily rising value means a leak.",
		func() float64 {
			var v float64
			c.with(func(s []metrics.Sample) {
				n := int64(s[0].Value.Uint64())
				if c.low == 0 || n < c.low {
					c.low = n
				}
				v = float64(n) / float64(c.low)
			})
			return v
		})
	reg.NewGaugeFunc(prefix+"_go_heap_bytes",
		"Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).",
		func() float64 {
			var v float64
			c.with(func(s []metrics.Sample) { v = float64(s[1].Value.Uint64()) })
			return v
		})
	reg.NewHistogramFunc(prefix+"_go_gc_pause_seconds",
		"Distribution of stop-the-world GC pause latencies since process start (re-bucketed from runtime/metrics; sum approximated from bucket midpoints).",
		func() HistogramSample {
			var hs HistogramSample
			c.with(func(s []metrics.Sample) { hs = rebucket(s[2].Value.Float64Histogram(), microBuckets()) })
			return hs
		})
	reg.NewHistogramFunc(prefix+"_go_sched_latency_seconds",
		"Distribution of goroutine scheduling latencies since process start (re-bucketed from runtime/metrics; sum approximated from bucket midpoints).",
		func() HistogramSample {
			var hs HistogramSample
			c.with(func(s []metrics.Sample) { hs = rebucket(s[3].Value.Float64Histogram(), microBuckets()) })
			return hs
		})
	reg.NewCounterFunc(prefix+"_go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() int64 {
			var v int64
			c.with(func(s []metrics.Sample) { v = int64(s[4].Value.Uint64()) })
			return v
		})
}
