package trace

import "sort"

// Collect gathers every span belonging to traceID across a set of
// retained traces. One process can legitimately retain several
// TraceData under the same trace ID — a coordinator estimate GET and
// the join POST that follows both continue the client's trace, and each
// handler seals its own trace view — so callers merge them all.
func Collect(traces []TraceData, traceID string) []SpanData {
	var out []SpanData
	for _, td := range traces {
		if td.TraceID != traceID {
			continue
		}
		out = append(out, td.Spans...)
	}
	return out
}

// Stitch assembles span sets gathered from multiple processes into one
// distributed trace: spans are deduplicated by SpanID (first occurrence
// wins, so pass the most authoritative source first) and ordered by
// start time. The result is a single tree when the sets were propagated
// through traceparent links — each worker's root span carries the
// coordinator's attempt span as its remote parent — and Root/ChildrenOf
// walk it like any local trace.
func Stitch(traceID string, sets ...[]SpanData) TraceData {
	seen := make(map[string]bool)
	var spans []SpanData
	for _, set := range sets {
		for _, sd := range set {
			if sd.TraceID != traceID || seen[sd.SpanID] {
				continue
			}
			seen[sd.SpanID] = true
			spans = append(spans, sd)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return TraceData{TraceID: traceID, Spans: spans}
}
