// Package trace is the distributed-tracing half of the observability
// layer: a dependency-free Trace/Span model with monotonic timings,
// parent links, key/value attributes and per-span counters, W3C
// traceparent propagation, and a fixed-capacity ring buffer of recently
// completed traces.
//
// The design rule matches the metrics side of obsv: the instrumented
// code pays nothing when tracing is off. Every Span method is a no-op
// on a nil receiver, so call sites thread a possibly-nil *Span without
// guards, and a disabled run costs one nil check per instrumentation
// point.
//
// Lifecycle: a Tracer owns the ring. Tracer.Start (or StartRemote, to
// continue a trace arriving over HTTP) opens a root span; Span.Child
// opens children. Each span records its data into the trace when it
// ends; when the root ends, the assembled trace — root plus every child
// that ended before it — is pushed into the ring. Spans that outlive
// their root are dropped, so well-behaved callers end children first
// (handlers naturally do: the fan-out completes before the server span
// closes).
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// DefaultCapacity is the ring size Tracers use when New is given a
// non-positive capacity.
const DefaultCapacity = 128

// Tracer mints spans and retains completed traces. A nil *Tracer is a
// valid disabled tracer: Start and StartRemote return nil spans.
type Tracer struct {
	ring *Ring
}

// New returns a Tracer retaining the last capacity completed traces
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: NewRing(capacity)}
}

// Traces returns the retained completed traces, oldest first.
func (t *Tracer) Traces() []TraceData {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// Start opens the root span of a new trace.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, newTraceID(), SpanID{})
}

// StartRemote opens a root span continuing the trace named by a W3C
// traceparent header value: the new span shares the remote trace ID and
// links the remote span as its parent. A missing or malformed header
// falls back to a fresh trace, so callers pass the header through
// unchecked.
func (t *Tracer) StartRemote(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	tid, parent, ok := ParseTraceParent(traceparent)
	if !ok {
		return t.Start(name)
	}
	return t.start(name, tid, parent)
}

func (t *Tracer) start(name string, tid TraceID, parent SpanID) *Span {
	tr := &liveTrace{tracer: t, id: tid}
	sp := &Span{
		tr:     tr,
		id:     newSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	tr.root = sp.id
	return sp
}

// liveTrace accumulates the spans of one in-flight trace.
type liveTrace struct {
	tracer *Tracer
	id     TraceID
	// root is the ID of the span the tracer opened the trace with; its
	// end seals the trace. Set once at construction, immutable after.
	root SpanID

	mu    sync.Mutex
	ended []SpanData
}

// record appends one ended span's data. root marks the trace's root
// span, whose end seals the trace into the tracer's ring.
func (tr *liveTrace) record(sd SpanData, root bool) {
	tr.mu.Lock()
	tr.ended = append(tr.ended, sd)
	if !root {
		tr.mu.Unlock()
		return
	}
	spans := make([]SpanData, len(tr.ended))
	copy(spans, tr.ended)
	tr.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	tr.tracer.ring.Push(TraceData{TraceID: tr.id.String(), Spans: spans})
}

// Span is one timed node of a trace. All methods are safe on a nil
// receiver (no-ops / zero values), which is how disabled tracing is
// threaded through call sites, and safe for concurrent use, so a
// scatter's goroutines can annotate their own child spans freely.
// Durations come from Go's monotonic clock (time.Since), so spans
// order correctly even across wall-clock adjustments.
type Span struct {
	tr     *liveTrace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	counters []Counter
	children []SpanData // completed-interval children recorded wholesale
	ended    bool
}

// Attr is one string key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is one integer measurement on a span (work counts, attempt
// tallies) — kept apart from Attrs so consumers can aggregate without
// parsing.
type Counter struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's own ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// StartTime returns when the span started (zero time for a nil span).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// TraceParent renders the span as an outgoing W3C traceparent header
// value, or "" for a nil span.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.tr.id, s.id)
}

// Child opens a child span. On a nil receiver it returns nil, so a
// whole call tree stays no-op when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		id:     newSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// SetAttr annotates the span. Keys are not deduplicated; last write
// appears last.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AddCounter records one integer measurement on the span.
func (s *Span) AddCounter(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters = append(s.counters, Counter{Key: key, Value: value})
	s.mu.Unlock()
}

// ChildInterval records an already-completed child span covering
// [start, start+d). It exists for phases measured by other
// instrumentation (the engines' obsv.Phases timers): the join layer
// converts those totals into spans without re-timing the engines.
func (s *Span) ChildInterval(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	sd := SpanData{
		TraceID:    s.tr.id.String(),
		SpanID:     newSpanID().String(),
		ParentID:   s.id.String(),
		Name:       name,
		Start:      start,
		DurationNS: d.Nanoseconds(),
	}
	s.mu.Lock()
	s.children = append(s.children, sd)
	s.mu.Unlock()
}

// End seals the span and records it into its trace; ending the root
// span pushes the assembled trace into the tracer's ring. End is
// idempotent — second and later calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:    s.tr.id.String(),
		SpanID:     s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationNS: d.Nanoseconds(),
		Attrs:      s.attrs,
		Counters:   s.counters,
	}
	intervals := s.children
	s.children = nil
	s.mu.Unlock()
	// A root span continuing a remote trace keeps its remote parent
	// link, so the wire shows one connected tree across processes.
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	root := s.isRoot()
	for _, c := range intervals {
		s.tr.record(c, false)
	}
	s.tr.record(sd, root)
}

// isRoot reports whether the span is its trace's root: the span the
// tracer opened the trace with. A remote parent link does not make a
// span a child locally — each process seals its own trace view.
func (s *Span) isRoot() bool { return s.id == s.tr.root }

// SpanData is one completed span, JSON-shaped for /debug/traces.
type SpanData struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Counters   []Counter `json:"counters,omitempty"`
}

// Duration returns the span's length as a time.Duration.
func (sd SpanData) Duration() time.Duration { return time.Duration(sd.DurationNS) }

// Attr returns the value of the named attribute ("" when absent; the
// last write wins when a key repeats).
func (sd SpanData) Attr(key string) string {
	v := ""
	for _, a := range sd.Attrs {
		if a.Key == key {
			v = a.Value
		}
	}
	return v
}

// TraceData is one completed trace: every span that ended before (or
// with) the root, ordered by start time.
type TraceData struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
}

// Root returns the trace's root span — the one whose parent is not a
// span of this trace (a remote parent or none at all).
func (td TraceData) Root() (SpanData, bool) {
	local := make(map[string]bool, len(td.Spans))
	for _, s := range td.Spans {
		local[s.SpanID] = true
	}
	for _, s := range td.Spans {
		if s.ParentID == "" || !local[s.ParentID] {
			return s, true
		}
	}
	return SpanData{}, false
}

// ChildrenOf returns the spans directly under the given span ID, in
// start order.
func (td TraceData) ChildrenOf(id string) []SpanData {
	var out []SpanData
	for _, s := range td.Spans {
		if s.ParentID == id {
			out = append(out, s)
		}
	}
	return out
}

// ctxKey is the context key type for span propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sp. A nil span stores nothing, so
// FromContext keeps returning whatever was there before (usually nil).
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil. The nil result
// composes: every Span method no-ops on nil, so callers never branch.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
