package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := New(4)
	root := tr.Start("root")
	root.SetAttr("kind", "server")
	c1 := root.Child("shard.0")
	c1.AddCounter("attempts", 1)
	g := c1.Child("rpc")
	g.End()
	c1.End()
	c2 := root.Child("shard.1")
	c2.End()
	root.ChildInterval("build", root.StartTime(), 5*time.Millisecond)
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if len(td.Spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(td.Spans), td.Spans)
	}
	rd, ok := td.Root()
	if !ok || rd.Name != "root" {
		t.Fatalf("root = %+v ok=%v", rd, ok)
	}
	if rd.Attr("kind") != "server" {
		t.Fatalf("root attrs = %+v", rd.Attrs)
	}
	kids := td.ChildrenOf(rd.SpanID)
	names := map[string]bool{}
	for _, k := range kids {
		names[k.Name] = true
		if k.TraceID != td.TraceID {
			t.Fatalf("child %s has trace %s, want %s", k.Name, k.TraceID, td.TraceID)
		}
	}
	for _, want := range []string{"shard.0", "shard.1", "build"} {
		if !names[want] {
			t.Fatalf("root children %v missing %q", names, want)
		}
	}
	// The grandchild hangs under shard.0, not the root.
	var shard0 SpanData
	for _, k := range kids {
		if k.Name == "shard.0" {
			shard0 = k
		}
	}
	gc := td.ChildrenOf(shard0.SpanID)
	if len(gc) != 1 || gc[0].Name != "rpc" {
		t.Fatalf("grandchildren of shard.0 = %+v", gc)
	}
	if len(shard0.Counters) != 1 || shard0.Counters[0] != (Counter{Key: "attempts", Value: 1}) {
		t.Fatalf("shard.0 counters = %+v", shard0.Counters)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer started a span")
	}
	// Every method must be callable on the nil span.
	sp.SetAttr("k", "v")
	sp.AddCounter("n", 1)
	sp.ChildInterval("i", time.Now(), time.Second)
	child := sp.Child("c")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	child.End()
	sp.End()
	if got := sp.TraceParent(); got != "" {
		t.Fatalf("nil span traceparent = %q", got)
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Fatal("nil span has non-zero IDs")
	}
	if tr.Traces() != nil {
		t.Fatal("nil tracer retained traces")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New(4)
	sp := tr.Start("once")
	sp.End()
	sp.End()
	if n := len(tr.Traces()); n != 1 {
		t.Fatalf("double End recorded %d traces, want 1", n)
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	up := New(4)
	parent := up.Start("client")
	header := parent.TraceParent()

	down := New(4)
	server := down.StartRemote("server", header)
	if server.TraceID() != parent.TraceID() {
		t.Fatalf("remote span trace %s, want %s", server.TraceID(), parent.TraceID())
	}
	server.End()
	td := down.Traces()[0]
	rd, _ := td.Root()
	if rd.ParentID != parent.SpanID().String() {
		t.Fatalf("server parent = %q, want remote span %s", rd.ParentID, parent.SpanID())
	}
	if td.TraceID != parent.TraceID().String() {
		t.Fatalf("trace id = %s, want %s", td.TraceID, parent.TraceID())
	}

	// Garbage falls back to a fresh trace instead of failing.
	fresh := down.StartRemote("server", "not-a-traceparent")
	if fresh == nil || fresh.TraceID().IsZero() || fresh.TraceID() == parent.TraceID() {
		t.Fatalf("malformed header handled badly: %+v", fresh)
	}
	fresh.End()
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(4)
	sp := tr.Start("x")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %p, want %p", got, sp)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded span %p", got)
	}
	// Storing nil keeps the previous value visible.
	if got := FromContext(NewContext(ctx, nil)); got != sp {
		t.Fatalf("NewContext(nil) hid the span: %p", got)
	}
	sp.End()
}

func TestTraceParentRoundTrip(t *testing.T) {
	tid, sid := newTraceID(), newSpanID()
	h := FormatTraceParent(tid, sid)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("format = %q", h)
	}
	gt, gs, ok := ParseTraceParent(h)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("roundtrip failed: %v %v %v", gt, gs, ok)
	}
}

func TestTraceParentRejectsMalformed(t *testing.T) {
	good := FormatTraceParent(newTraceID(), newSpanID())
	bad := []string{
		"",
		"00",
		good[:54],       // truncated
		"ff" + good[2:], // forbidden version
		"0G" + good[2:], // non-hex version
		"00-" + strings.Repeat("0", 32) + good[35:],     // zero trace id
		good[:36] + strings.Repeat("0", 16) + good[52:], // zero span id
		strings.ToUpper(good),                           // uppercase hex forbidden
		good + "extra",                                  // trailing junk without separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceParent(h); ok {
			t.Errorf("accepted malformed %q", h)
		}
	}
	// Future versions with extra dash-separated fields parse.
	future := "01" + good[2:] + "-deadbeef"
	if _, _, ok := ParseTraceParent(future); !ok {
		t.Errorf("rejected future-version %q", future)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(TraceData{TraceID: string(rune('a' + i))})
	}
	if r.Len() != 3 || r.Capacity() != 3 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Capacity())
	}
	snap := r.Snapshot()
	want := []string{"c", "d", "e"}
	for i, td := range snap {
		if td.TraceID != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %+v)", i, td.TraceID, want[i], snap)
		}
	}
}

// TestRingConcurrency hammers Push and Snapshot from many goroutines;
// run under -race it is the buffer's thread-safety proof.
func TestRingConcurrency(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Push(TraceData{TraceID: "t"})
				if i%10 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("len = %d after saturation, want 16", r.Len())
	}
}

// TestConcurrentChildren ends sibling spans from racing goroutines —
// the scatter-gather shape — and checks nothing is lost.
func TestConcurrentChildren(t *testing.T) {
	tr := New(4)
	root := tr.Start("fanout")
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("shard")
			c.SetAttr("k", "v")
			c.AddCounter("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	td := tr.Traces()[0]
	if len(td.Spans) != n+1 {
		t.Fatalf("got %d spans, want %d", len(td.Spans), n+1)
	}
	rd, _ := td.Root()
	if got := len(td.ChildrenOf(rd.SpanID)); got != n {
		t.Fatalf("root has %d children, want %d", got, n)
	}
}
