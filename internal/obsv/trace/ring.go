package trace

import "sync"

// Ring is a fixed-capacity concurrent buffer of completed traces: the
// newest capacity traces survive, older ones are evicted in FIFO order.
// It is the retention policy behind GET /debug/traces — recent history
// for debugging one slow request, bounded memory forever.
type Ring struct {
	mu    sync.Mutex
	buf   []TraceData
	next  int  // index the next Push writes
	wrapd bool // the buffer has wrapped at least once
}

// NewRing returns a Ring retaining the last capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceData, capacity)}
}

// Capacity returns the fixed retention size.
func (r *Ring) Capacity() int { return len(r.buf) }

// Len returns the number of traces currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapd {
		return len(r.buf)
	}
	return r.next
}

// Push retains td, evicting the oldest trace when full.
func (r *Ring) Push(td TraceData) {
	r.mu.Lock()
	r.buf[r.next] = td
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapd = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, oldest first. The returned
// slice is the caller's to keep.
func (r *Ring) Snapshot() []TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapd {
		out := make([]TraceData, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceData, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
