package trace

import (
	"encoding/hex"
	"math/rand/v2"
)

// TraceID identifies one causally-connected request tree, end to end —
// the same 16 bytes appear on the coordinator's root span, every
// per-shard RPC span, and the server spans the workers record for those
// RPCs. The zero value is invalid (the W3C spec reserves it).
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value is invalid.
type SpanID [8]byte

// String returns the 32-char lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the 16-char lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// newTraceID returns a random non-zero trace ID. math/rand suffices:
// trace IDs need collision resistance across a deployment's recent
// history, not unpredictability.
func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// newSpanID returns a random non-zero span ID.
func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// FormatTraceParent renders the W3C trace-context header value
// (version 00, sampled flag set):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func FormatTraceParent(t TraceID, s SpanID) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, t[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, s[:])
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceParent parses a W3C traceparent header value, returning the
// trace ID and the caller's span ID. ok is false for anything
// malformed: wrong field lengths, non-hex bytes, the forbidden version
// ff, or all-zero IDs. Versions above 00 are accepted as long as the
// first four fields are well-formed (the spec requires forward
// compatibility); trailing fields are ignored.
func ParseTraceParent(h string) (t TraceID, s SpanID, ok bool) {
	if len(h) < 55 {
		return t, s, false
	}
	if len(h) > 55 && h[55] != '-' {
		return t, s, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	ver := h[0:2]
	if !isHex(ver) || ver == "ff" {
		return t, s, false
	}
	if ver == "00" && len(h) != 55 {
		return t, s, false
	}
	// hex.Decode accepts uppercase; the header grammar does not, so
	// check case first.
	if !isHex(h[3:35]) || !isHex(h[36:52]) {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, false
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, false
	}
	if !isHex(h[53:55]) {
		return t, s, false
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false
	}
	return t, s, true
}

// isHex reports whether every byte of s is a lowercase hex digit (the
// header grammar forbids uppercase).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
