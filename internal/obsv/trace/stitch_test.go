package trace

import (
	"testing"
	"time"
)

func sd(trace, span, parent, name string, start time.Time) SpanData {
	return SpanData{TraceID: trace, SpanID: span, ParentID: parent, Name: name, Start: start}
}

func TestCollectMergesMultipleTraceData(t *testing.T) {
	t0 := time.Now()
	traces := []TraceData{
		{TraceID: "t1", Spans: []SpanData{sd("t1", "a", "", "estimate", t0)}},
		{TraceID: "t2", Spans: []SpanData{sd("t2", "x", "", "other", t0)}},
		{TraceID: "t1", Spans: []SpanData{sd("t1", "b", "", "selfjoin", t0.Add(time.Millisecond))}},
	}
	got := Collect(traces, "t1")
	if len(got) != 2 {
		t.Fatalf("Collect returned %d spans, want 2: %+v", len(got), got)
	}
}

func TestStitchBuildsOneTree(t *testing.T) {
	t0 := time.Now()
	// Coordinator view: root + one attempt span per worker.
	coord := []SpanData{
		sd("t1", "root", "", "http.selfjoin", t0),
		sd("t1", "att1", "root", "rclient.attempt", t0.Add(1*time.Millisecond)),
		sd("t1", "att2", "root", "rclient.attempt", t0.Add(2*time.Millisecond)),
	}
	// Worker views: each root parented on the coordinator's attempt span.
	w1 := []SpanData{
		sd("t1", "w1root", "att1", "http.selfjoin", t0.Add(3*time.Millisecond)),
		sd("t1", "w1join", "w1root", "join.self", t0.Add(4*time.Millisecond)),
	}
	w2 := []SpanData{
		sd("t1", "w2root", "att2", "http.selfjoin", t0.Add(3*time.Millisecond)),
		// A stray span from another trace must not leak in.
		sd("t9", "zzz", "", "noise", t0),
	}
	// Worker 1's spans arrive twice (e.g. retry fetched it from two
	// sources) — duplicates collapse.
	td := Stitch("t1", coord, w1, w2, w1)
	if len(td.Spans) != 6 {
		t.Fatalf("stitched %d spans, want 6: %+v", len(td.Spans), td.Spans)
	}
	root, ok := td.Root()
	if !ok || root.SpanID != "root" {
		t.Fatalf("Root = %+v ok=%v, want the coordinator root", root, ok)
	}
	// Every non-root span must be reachable from the root: a single tree.
	reach := map[string]bool{"root": true}
	for changed := true; changed; {
		changed = false
		for _, s := range td.Spans {
			if !reach[s.SpanID] && reach[s.ParentID] {
				reach[s.SpanID] = true
				changed = true
			}
		}
	}
	for _, s := range td.Spans {
		if !reach[s.SpanID] {
			t.Fatalf("span %s not reachable from root", s.SpanID)
		}
	}
	// Ordered by start time.
	for i := 1; i < len(td.Spans); i++ {
		if td.Spans[i].Start.Before(td.Spans[i-1].Start) {
			t.Fatalf("spans not start-ordered at %d", i)
		}
	}
}

func TestStitchEmpty(t *testing.T) {
	td := Stitch("t1")
	if td.TraceID != "t1" || len(td.Spans) != 0 {
		t.Fatalf("empty stitch = %+v", td)
	}
}
