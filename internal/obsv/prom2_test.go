package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVec2Render(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec2("gw_shed_total", "Shed requests.", "tenant", "reason")
	v.With("acme", "rate").Add(3)
	v.With("acme", "inflight").Inc()
	v.With("beta", "rate").Inc()
	var sb strings.Builder
	reg.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE gw_shed_total counter",
		`gw_shed_total{tenant="acme",reason="rate"} 3`,
		`gw_shed_total{tenant="acme",reason="inflight"} 1`,
		`gw_shed_total{tenant="beta",reason="rate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic order: acme/inflight sorts before acme/rate.
	if strings.Index(out, `tenant="acme",reason="inflight"`) > strings.Index(out, `tenant="acme",reason="rate"`) {
		t.Errorf("children not sorted:\n%s", out)
	}
	snap := v.Snapshot()
	if snap[[2]string{"acme", "rate"}] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestHistogramVec2Render(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewHistogramVec2("gw_arm_latency_seconds", "Per-arm latency.", "experiment", "arm", []float64{0.1, 1})
	v.With("exp1", "incumbent").Observe(0.05)
	v.With("exp1", "incumbent").Observe(0.5)
	v.With("exp1", "candidate").Observe(2)
	var sb strings.Builder
	reg.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE gw_arm_latency_seconds histogram",
		`gw_arm_latency_seconds_bucket{experiment="exp1",arm="incumbent",le="0.1"} 1`,
		`gw_arm_latency_seconds_bucket{experiment="exp1",arm="incumbent",le="1"} 2`,
		`gw_arm_latency_seconds_bucket{experiment="exp1",arm="incumbent",le="+Inf"} 2`,
		`gw_arm_latency_seconds_count{experiment="exp1",arm="incumbent"} 2`,
		`gw_arm_latency_seconds_bucket{experiment="exp1",arm="candidate",le="1"} 0`,
		`gw_arm_latency_seconds_bucket{experiment="exp1",arm="candidate",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVec2Concurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounterVec2("c", "h", "a", "b")
	h := reg.NewHistogramVec2("hh", "h", "a", "b", LatencyBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.With("x", "y").Inc()
				h.With("x", "y").Observe(0.01)
			}
		}()
	}
	var sb strings.Builder
	reg.Write(&sb)
	wg.Wait()
	if got := c.With("x", "y").Value(); got != 1600 {
		t.Fatalf("count = %d, want 1600", got)
	}
}
