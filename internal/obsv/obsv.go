// Package obsv is the observability layer of the repository: cheap atomic
// instrumentation shared by every join engine (per-phase wall time), and a
// dependency-free Prometheus-text metrics registry (counters, latency
// histograms, gauges) used by the simjoind daemons. The package exists so
// the performance evaluation — the paper's entire contribution — has a
// machine-readable trajectory: engines charge phase timers through
// join.Options, the public API surfaces them via simjoin.Options.Stats,
// the daemons serve them at /metrics, and cmd/simjoinbench freezes them
// into BENCH_*.json artifacts that CI compares against.
package obsv

import (
	"sync/atomic"
	"time"
)

// Phases accumulates per-phase wall-clock time of one join run. All adds
// are atomic so a run's serial prologue (index build) and its parallel
// epilogue (probe) can charge the same Phases without coordination; the
// engines charge each phase exactly once per entry point, from the
// coordinating goroutine, so sums stay comparable to wall time.
//
// The two phases mirror the paper's cost decomposition: every algorithm
// first organizes the data (sort, hash, tree build — "build"), then
// enumerates candidate pairs against that organization ("probe"). Brute
// force has a zero build phase by construction.
type Phases struct {
	build atomic.Int64 // nanoseconds
	probe atomic.Int64 // nanoseconds
}

// AddBuild charges d to the index-construction phase.
func (p *Phases) AddBuild(d time.Duration) { p.build.Add(int64(d)) }

// AddProbe charges d to the candidate-enumeration phase.
func (p *Phases) AddProbe(d time.Duration) { p.probe.Add(int64(d)) }

// Build returns the accumulated index-construction time.
func (p *Phases) Build() time.Duration { return time.Duration(p.build.Load()) }

// Probe returns the accumulated candidate-enumeration time.
func (p *Phases) Probe() time.Duration { return time.Duration(p.probe.Load()) }

// Reset zeroes both phases.
func (p *Phases) Reset() {
	p.build.Store(0)
	p.probe.Store(0)
}
