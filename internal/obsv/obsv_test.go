package obsv

import (
	"sync"
	"testing"
	"time"
)

func TestPhasesAccumulate(t *testing.T) {
	var p Phases
	if p.Build() != 0 || p.Probe() != 0 {
		t.Fatal("zero Phases not zero")
	}
	p.AddBuild(10 * time.Millisecond)
	p.AddBuild(5 * time.Millisecond)
	p.AddProbe(time.Second)
	if got := p.Build(); got != 15*time.Millisecond {
		t.Errorf("Build = %v, want 15ms", got)
	}
	if got := p.Probe(); got != time.Second {
		t.Errorf("Probe = %v, want 1s", got)
	}
	p.Reset()
	if p.Build() != 0 || p.Probe() != 0 {
		t.Error("Reset did not zero phases")
	}
}

func TestPhasesConcurrent(t *testing.T) {
	var p Phases
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.AddProbe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := p.Probe(); got != 8000*time.Microsecond {
		t.Errorf("concurrent Probe = %v, want 8ms", got)
	}
}
