package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a fixed set of metrics and renders them in the
// Prometheus text exposition format (version 0.0.4). It is deliberately
// tiny — counters, histograms and gauge callbacks, one optional label —
// because that is all the daemons need and the container must not grow
// external dependencies.
type Registry struct {
	mu      sync.Mutex
	metrics []renderer
}

// renderer is anything the registry can write in exposition format.
type renderer interface {
	render(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m renderer) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// Write renders every registered metric in registration order.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	ms := append([]renderer(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.render(w)
	}
}

// Handler serves the registry as Prometheus text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		r.Write(&sb)
		_, _ = io.WriteString(w, sb.String())
	})
}

// header writes the # HELP / # TYPE preamble.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer sample.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for counter semantics; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// namedCounter is a registry-owned unlabeled counter.
type namedCounter struct {
	name, help string
	Counter
}

func (c *namedCounter) render(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &namedCounter{name: name, help: help}
	r.add(c)
	return &c.Counter
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Counter
}

// NewCounterVec registers and returns a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.add(v)
	return v
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Snapshot returns the current label → count mapping.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

// sortedKeys returns the child label values in deterministic order.
func (v *CounterVec) sortedKeys() []string {
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (v *CounterVec) render(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range v.sortedKeys() {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(k), v.children[k].Value())
	}
}

// LatencyBuckets returns the fixed log-spaced bucket bounds (seconds)
// every latency histogram in the repository uses: a 1–2.5–5 ladder from
// 100 µs to 10 s. Fixed buckets keep scrapes from different builds and
// different daemons directly comparable.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, by convention). Observations are lock-free.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	count   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// writeSamples renders the _bucket/_sum/_count lines with an optional
// label pair (empty label renders unlabeled samples).
func (h *Histogram) writeSamples(w io.Writer, name, label, value string) {
	var cum int64
	labelPrefix := ""
	if label != "" {
		labelPrefix = fmt.Sprintf("%s=\"%s\",", label, escapeLabel(value))
	}
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, labelPrefix, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", name, label, escapeLabel(value), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", name, label, escapeLabel(value), h.Count())
		return
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// namedHistogram is a registry-owned unlabeled histogram.
type namedHistogram struct {
	name, help string
	*Histogram
}

func (h *namedHistogram) render(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	h.writeSamples(w, h.name, "", "")
}

// NewHistogram registers and returns an unlabeled fixed-bucket histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &namedHistogram{name: name, help: help, Histogram: newHistogram(bounds)}
	r.add(h)
	return h.Histogram
}

// HistogramVec is a family of fixed-bucket histograms keyed by one label.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.Mutex
	children          map[string]*Histogram
}

// NewHistogramVec registers and returns a one-label histogram family.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{name: name, help: help, label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.add(v)
	return v
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

func (v *HistogramVec) render(w io.Writer) {
	header(w, v.name, v.help, "histogram")
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v.children[k].writeSamples(w, v.name, v.label, k)
	}
}

// gaugeFunc samples a callback at scrape time.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *gaugeFunc) render(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&gaugeFunc{name: name, help: help, fn: fn})
}

// counterFunc samples a monotonic callback at scrape time, for counters
// whose source of truth lives elsewhere (e.g. an HTTP client's retry
// tally).
type counterFunc struct {
	name, help string
	fn         func() int64
}

func (c *counterFunc) render(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonically non-decreasing.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.add(&counterFunc{name: name, help: help, fn: fn})
}

// HistogramSample is one scrape's worth of histogram state for
// NewHistogramFunc: ascending upper bounds plus per-bucket counts, with
// Counts one longer than Bounds (the last entry is the +Inf overflow
// bucket) and Sum the (possibly approximated) sum of observations.
type HistogramSample struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// histogramFunc samples a full histogram from a callback at scrape
// time, for distributions whose source of truth lives elsewhere (e.g.
// runtime/metrics pause histograms).
type histogramFunc struct {
	name, help string
	fn         func() HistogramSample
}

func (h *histogramFunc) render(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	s := h.fn()
	var cum uint64
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, formatFloat(b), cum)
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// NewHistogramFunc registers a histogram whose buckets are read from fn
// at scrape time. fn must return cumulative-consistent (monotone over
// time) per-bucket counts.
func (r *Registry) NewHistogramFunc(name, help string, fn func() HistogramSample) {
	r.add(&histogramFunc{name: name, help: help, fn: fn})
}

// gaugeVecFunc samples a label → value callback at scrape time.
type gaugeVecFunc struct {
	name, help, label string
	fn                func() map[string]float64
}

func (g *gaugeVecFunc) render(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	vals := g.fn()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", g.name, g.label, escapeLabel(k), formatFloat(vals[k]))
	}
}

// NewGaugeVecFunc registers a one-label gauge family computed at scrape
// time (e.g. per-worker health probed on demand).
func (r *Registry) NewGaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	r.add(&gaugeVecFunc{name: name, help: help, label: label, fn: fn})
}
