package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// labelPair2 keys a two-label child. The registry's one-label families
// cover most daemon metrics; the gateway's experiment surface needs two
// (experiment × arm, tenant × shed-reason), hence these variants.
type labelPair2 struct{ a, b string }

// CounterVec2 is a family of counters keyed by two label values.
type CounterVec2 struct {
	name, help     string
	labelA, labelB string
	mu             sync.Mutex
	children       map[labelPair2]*Counter
}

// NewCounterVec2 registers and returns a two-label counter family.
func (r *Registry) NewCounterVec2(name, help, labelA, labelB string) *CounterVec2 {
	v := &CounterVec2{name: name, help: help, labelA: labelA, labelB: labelB,
		children: make(map[labelPair2]*Counter)}
	r.add(v)
	return v
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec2) With(a, b string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	k := labelPair2{a, b}
	c, ok := v.children[k]
	if !ok {
		c = &Counter{}
		v.children[k] = c
	}
	return c
}

// Snapshot returns the current ("a","b") → count mapping with the two
// label values joined by a comma, for tests and debug dumps.
func (v *CounterVec2) Snapshot() map[[2]string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[[2]string]int64, len(v.children))
	for k, c := range v.children {
		out[[2]string{k.a, k.b}] = c.Value()
	}
	return out
}

// sortedKeys2 orders two-label children deterministically.
func sortedKeys2[T any](children map[labelPair2]T) []labelPair2 {
	keys := make([]labelPair2, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}

func (v *CounterVec2) render(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range sortedKeys2(v.children) {
		fmt.Fprintf(w, "%s{%s=\"%s\",%s=\"%s\"} %d\n",
			v.name, v.labelA, escapeLabel(k.a), v.labelB, escapeLabel(k.b), v.children[k].Value())
	}
}

// HistogramVec2 is a family of fixed-bucket histograms keyed by two
// label values.
type HistogramVec2 struct {
	name, help     string
	labelA, labelB string
	bounds         []float64
	mu             sync.Mutex
	children       map[labelPair2]*Histogram
}

// NewHistogramVec2 registers and returns a two-label histogram family.
func (r *Registry) NewHistogramVec2(name, help, labelA, labelB string, bounds []float64) *HistogramVec2 {
	v := &HistogramVec2{name: name, help: help, labelA: labelA, labelB: labelB, bounds: bounds,
		children: make(map[labelPair2]*Histogram)}
	r.add(v)
	return v
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec2) With(a, b string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	k := labelPair2{a, b}
	h, ok := v.children[k]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[k] = h
	}
	return h
}

func (v *HistogramVec2) render(w io.Writer) {
	header(w, v.name, v.help, "histogram")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range sortedKeys2(v.children) {
		v.children[k].writeSamples2(w, v.name, v.labelA, k.a, v.labelB, k.b)
	}
}

// writeSamples2 renders the _bucket/_sum/_count lines with two label
// pairs.
func (h *Histogram) writeSamples2(w io.Writer, name, labelA, valueA, labelB, valueB string) {
	prefix := fmt.Sprintf("%s=\"%s\",%s=\"%s\"", labelA, escapeLabel(valueA), labelB, escapeLabel(valueB))
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", name, prefix, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, prefix, cum)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, prefix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, prefix, h.Count())
}
