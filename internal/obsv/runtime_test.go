package obsv

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"testing"
)

func TestRuntimeCollectorRegisters(t *testing.T) {
	runtime.GC() // ensure at least one pause is on record
	reg := NewRegistry()
	NewRuntimeCollector().Register(reg, "test")
	var sb strings.Builder
	reg.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		"test_go_goroutines ",
		"test_go_goroutine_growth ",
		"test_go_heap_bytes ",
		"test_go_gc_pause_seconds_bucket{le=\"+Inf\"}",
		"test_go_gc_pause_seconds_count",
		"test_go_sched_latency_seconds_bucket",
		"test_go_gc_cycles_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// The growth watchdog starts at exactly 1 on the first scrapes (the
	// low-water mark is set from the first observation).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "test_go_goroutine_growth ") {
			if !strings.HasSuffix(line, " 1") {
				t.Fatalf("first-scrape growth gauge = %q, want 1", line)
			}
		}
	}
}

func TestRuntimeCollectorGrowthTracksLowWater(t *testing.T) {
	c := NewRuntimeCollector()
	reg := NewRegistry()
	c.Register(reg, "t")
	var sb strings.Builder
	reg.Write(&sb) // primes the low-water mark
	if c.low <= 0 {
		t.Fatalf("low-water mark not primed: %d", c.low)
	}
	// Spawn goroutines parked until cleanup; the ratio must now exceed 1.
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 50; i++ {
		go func() { <-stop }()
	}
	sb.Reset()
	reg.Write(&sb)
	growth := scrapeValue(t, sb.String(), "t_go_goroutine_growth")
	if growth <= 1 {
		t.Fatalf("growth gauge = %v after spawning 50 goroutines, want > 1", growth)
	}
}

func scrapeValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", name, scrape)
	return 0
}

func TestRebucket(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{3, 5, 2},
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-3, math.Inf(1)},
	}
	bounds := []float64{1e-6, 1e-3}
	s := rebucket(h, bounds)
	if s.Counts[0] != 3 || s.Counts[1] != 5 || s.Counts[2] != 2 {
		t.Fatalf("rebucket counts = %v", s.Counts)
	}
	if s.Sum <= 0 {
		t.Fatalf("rebucket sum = %v, want > 0", s.Sum)
	}
	empty := rebucket(nil, bounds)
	if len(empty.Counts) != len(bounds)+1 {
		t.Fatalf("nil histogram counts = %v", empty.Counts)
	}
}
