package join

import (
	"math"
	"runtime"
	"testing"

	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

func TestValidate(t *testing.T) {
	good := Options{Metric: vec.L2, Eps: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	for name, o := range map[string]Options{
		"zero eps":     {Metric: vec.L2},
		"negative eps": {Metric: vec.L2, Eps: -1},
		"nan eps":      {Metric: vec.L2, Eps: math.NaN()},
		"bad metric":   {Metric: vec.Metric(9), Eps: 1},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMustValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustValidate of invalid options did not panic")
		}
	}()
	Options{}.MustValidate()
}

func TestStatsNilSafe(t *testing.T) {
	var o Options
	o.Stats().AddDistComps(5) // must not crash
	var c stats.Counters
	o.Counters = &c
	o.Stats().AddDistComps(3)
	if c.Snapshot().DistComps != 3 {
		t.Error("counters not forwarded")
	}
}

func TestWorkerCount(t *testing.T) {
	if got := (Options{Workers: 3}).WorkerCount(); got != 3 {
		t.Errorf("WorkerCount = %d, want 3", got)
	}
	if got := (Options{}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default WorkerCount = %d, want GOMAXPROCS", got)
	}
}

func TestThreshold(t *testing.T) {
	if got := (Options{Metric: vec.L2, Eps: 3}).Threshold(); got != 9 {
		t.Errorf("L2 threshold = %g, want 9", got)
	}
	if got := (Options{Metric: vec.L1, Eps: 3}).Threshold(); got != 3 {
		t.Errorf("L1 threshold = %g, want 3", got)
	}
}
