package join

// Neighbor is one k-nearest-neighbor result: a point index and its
// distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// MaxHeap is a bounded max-heap of neighbors ordered by distance, used by
// every KNN search to track the k best candidates found so far; the root
// is the current worst, so its distance is the search's pruning bound.
// The zero value is unusable; construct with NewMaxHeap.
type MaxHeap struct {
	k     int
	items []Neighbor
}

// NewMaxHeap returns a heap that retains the k smallest-distance
// neighbors pushed into it. It panics if k < 1.
func NewMaxHeap(k int) *MaxHeap {
	if k < 1 {
		panic("join: KNN heap needs k ≥ 1")
	}
	return &MaxHeap{k: k, items: make([]Neighbor, 0, k)}
}

// Len returns the number of retained neighbors.
func (h *MaxHeap) Len() int { return len(h.items) }

// Full reports whether k neighbors are retained.
func (h *MaxHeap) Full() bool { return len(h.items) == h.k }

// Bound returns the pruning distance: the k-th best distance once the
// heap is full, +Inf semantics expressed as ok=false otherwise.
func (h *MaxHeap) Bound() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Push offers a neighbor; it is retained iff fewer than k neighbors are
// held or it beats the current worst.
func (h *MaxHeap) Push(n Neighbor) {
	if len(h.items) < h.k {
		h.items = append(h.items, n)
		h.up(len(h.items) - 1)
		return
	}
	if n.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = n
	h.down(0)
}

// Sorted drains the heap, returning the retained neighbors ordered by
// ascending distance (ties by ascending index for determinism). The heap
// is empty afterwards.
func (h *MaxHeap) Sorted() []Neighbor {
	out := make([]Neighbor, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.down(0)
		}
	}
	// The heap order resolves distance ties arbitrarily; normalize.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist == out[j-1].Dist && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (h *MaxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *MaxHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
