// Package join defines the options contract shared by every similarity-join
// algorithm in the library. Each algorithm package (brute, sweep, grid,
// kdtree, rtree, zorder, core) exposes the same two entry points:
//
//	SelfJoin(ds, opt, sink)  — all pairs within ε inside one set
//	Join(a, b, opt, sink)    — all (a, b) pairs within ε across two sets
//
// so the public API and the benchmark harness can treat them uniformly.
package join

import (
	"fmt"
	"math"
	"runtime"

	"simjoin/internal/obsv"
	"simjoin/internal/stats"
	"simjoin/internal/vec"
)

// Options parameterizes a join run. The zero value is invalid (Eps must be
// positive); use Validate before running.
type Options struct {
	// Metric selects the distance function (default vec.L2).
	Metric vec.Metric
	// Eps is the similarity threshold: pairs with dist ≤ Eps are reported.
	Eps float64
	// Counters, if non-nil, receives work metrics (distance computations,
	// candidates, node visits). Algorithms never require it.
	Counters *stats.Counters
	// Phases, if non-nil, receives per-phase wall time: every algorithm
	// charges its index-construction cost to the build phase and its
	// candidate-enumeration cost to the probe phase, each exactly once
	// per entry point. Algorithms never require it.
	Phases *obsv.Phases
	// Workers bounds the goroutines used by parallel variants; ≤ 0 selects
	// GOMAXPROCS. Serial algorithms ignore it.
	Workers int
	// Float32 opts into the float32 kernel mode: distance tests run over a
	// float32 mirror of the coordinates, halving memory traffic per
	// candidate. Pairs within a few ULP of the ε boundary may decide
	// differently from the float64 kernels (see docs/KERNELS.md); engines
	// without float32 kernels (rtree, rplus, zorder, hilbert, kdtree)
	// ignore the flag and stay exact.
	Float32 bool
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if !(o.Eps > 0) || math.IsInf(o.Eps, 0) { // !(Eps > 0) also rejects NaN
		return fmt.Errorf("join: Eps must be positive and finite, got %g", o.Eps)
	}
	if !o.Metric.Valid() {
		return fmt.Errorf("join: invalid metric %d", int(o.Metric))
	}
	return nil
}

// MustValidate panics if the options are invalid. Algorithms call it on
// entry: a silent wrong-ε join is worse than a crash.
func (o Options) MustValidate() {
	if err := o.Validate(); err != nil {
		panic(err)
	}
}

// Stats returns the counters, substituting a shared no-op sink when nil so
// algorithms can charge unconditionally.
func (o Options) Stats() *stats.Counters {
	if o.Counters != nil {
		return o.Counters
	}
	return &discard
}

// discard swallows counter traffic for uninstrumented runs.
var discard stats.Counters

// Timing returns the phase recorder, substituting a shared no-op sink
// when nil so algorithms can charge unconditionally.
func (o Options) Timing() *obsv.Phases {
	if o.Phases != nil {
		return o.Phases
	}
	return &discardPhases
}

// discardPhases swallows phase timings for uninstrumented runs.
var discardPhases obsv.Phases

// WorkerCount resolves Workers to a concrete positive goroutine count.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Threshold returns the precomputed comparison constant for the options'
// metric and ε (ε² for L2).
func (o Options) Threshold() float64 { return vec.Threshold(o.Metric, o.Eps) }
