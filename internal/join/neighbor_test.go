package join

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxHeapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewMaxHeap(0)
}

func TestMaxHeapBasics(t *testing.T) {
	h := NewMaxHeap(3)
	if _, ok := h.Bound(); ok {
		t.Error("empty heap reported a bound")
	}
	for i, d := range []float64{5, 1, 3} {
		h.Push(Neighbor{Index: i, Dist: d})
	}
	if !h.Full() {
		t.Error("heap not full after k pushes")
	}
	if b, ok := h.Bound(); !ok || b != 5 {
		t.Errorf("Bound = %g, %v; want 5, true", b, ok)
	}
	h.Push(Neighbor{Index: 3, Dist: 2}) // evicts 5
	if b, _ := h.Bound(); b != 3 {
		t.Errorf("Bound after eviction = %g, want 3", b)
	}
	h.Push(Neighbor{Index: 4, Dist: 9}) // ignored
	got := h.Sorted()
	want := []Neighbor{{Index: 1, Dist: 1}, {Index: 3, Dist: 2}, {Index: 2, Dist: 3}}
	if len(got) != 3 {
		t.Fatalf("Sorted len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMaxHeapMatchesSort: the heap's retained set equals the k smallest of
// the pushed distances, for arbitrary inputs.
func TestMaxHeapMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		dists := make([]float64, n)
		h := NewMaxHeap(k)
		for i := range dists {
			dists[i] = rng.Float64()
			h.Push(Neighbor{Index: i, Dist: dists[i]})
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		got := h.Sorted()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		for i, nb := range got {
			if nb.Dist != sorted[i] {
				return false
			}
			if i > 0 && got[i-1].Dist > nb.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxHeapTieDeterminism(t *testing.T) {
	h := NewMaxHeap(3)
	h.Push(Neighbor{Index: 9, Dist: 1})
	h.Push(Neighbor{Index: 2, Dist: 1})
	h.Push(Neighbor{Index: 5, Dist: 1})
	got := h.Sorted()
	if got[0].Index != 2 || got[1].Index != 5 || got[2].Index != 9 {
		t.Errorf("ties not index-ordered: %v", got)
	}
}

func TestMaxHeapLen(t *testing.T) {
	h := NewMaxHeap(2)
	if h.Len() != 0 {
		t.Errorf("Len = %d", h.Len())
	}
	h.Push(Neighbor{Index: 1, Dist: 1})
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}
