package bench

import (
	"fmt"
	"sort"

	"simjoin/internal/core"
	"simjoin/internal/estimate"
	"simjoin/internal/grid"
	"simjoin/internal/hilbert"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/rtree"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
	"simjoin/internal/zorder"
)

// Extensions lists the experiments that go beyond the reconstructed paper
// figures: ablations and extension features the DESIGN.md inventory calls
// out.
func Extensions() []Experiment {
	return []Experiment{
		{"e1", "E1: k-NN join time vs k (R-tree best-first vs brute)", E1KNNJoin},
		{"e2", "E2: space-filling-curve ablation (Z-order vs Hilbert)", E2CurveAblation},
		{"e3", "E3: selectivity estimation accuracy vs sample size", E3Estimation},
		{"e4", "E4: multi-ε amortization (build once vs rebuild per ε)", E4MultiEps},
		{"e5", "E5: parallel self-join speedup vs workers", E5Parallel},
	}
}

// E5Parallel measures the stripe-parallel ε-kdB self-join and the
// cell-parallel grid join against their serial runs. Expected shape:
// near-linear speedup while workers ≤ cores, flattening beyond; the grid
// parallelizes slightly better (finer task granularity) but from a slower
// serial base.
func E5Parallel(quick bool) *stats.Table {
	n := 60000
	if quick {
		n = 8000
	}
	ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0xE6, Dist: synth.GaussianClusters})
	const eps = 0.05
	tb := stats.NewTable(fmt.Sprintf("E5 parallel speedup (N=%d, d=8, clustered, ε=%g)", n, eps),
		"workers", "ekdb_ms", "ekdb_speedup", "grid_ms", "grid_speedup")

	tree := core.Build(ds, eps, core.Config{})
	runEKDB := func(workers int) (float64, int64) {
		opt := join.Options{Metric: vec.L2, Eps: eps, Workers: workers}
		var sink pairs.Counter
		watch := stats.Start()
		if workers <= 1 {
			tree.SelfJoin(opt, &sink)
		} else {
			tree.SelfJoinParallel(opt, func() pairs.Sink { return &sink })
		}
		return ms(watch.Elapsed()), sink.N()
	}
	runGrid := func(workers int) (float64, int64) {
		opt := join.Options{Metric: vec.L2, Eps: eps, Workers: workers}
		var sink pairs.Counter
		watch := stats.Start()
		if workers <= 1 {
			grid.SelfJoin(ds, opt, &sink)
		} else {
			grid.SelfJoinParallel(ds, opt, grid.DefaultConfig(), func() pairs.Sink { return &sink })
		}
		return ms(watch.Elapsed()), sink.N()
	}

	ekSerial, ekPairs := runEKDB(1)
	gSerial, gPairs := runGrid(1)
	if ekPairs != gPairs {
		panic("bench: E5 algorithms disagree")
	}
	tb.AddRow(1, ekSerial, 1.0, gSerial, 1.0)
	for _, w := range []int{2, 4, 8} {
		ekMs, _ := runEKDB(w)
		gMs, _ := runGrid(w)
		tb.AddRow(w, ekMs, ekSerial/ekMs, gMs, gSerial/gMs)
	}
	return tb
}

// E4MultiEps measures the build-once-query-many feature: one ε-kdB tree
// built at the largest threshold answers every smaller one, versus
// rebuilding per threshold. Expected shape: the shared tree saves all but
// one build and costs only mildly more per query (its stripes are coarser
// than a purpose-built tree's).
func E4MultiEps(quick bool) *stats.Table {
	n := 20000
	if quick {
		n = 4000
	}
	ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0xE5, Dist: synth.GaussianClusters})
	epss := []float64{0.01, 0.02, 0.04, 0.08}
	buildEps := epss[len(epss)-1]

	watch := stats.Start()
	shared := core.Build(ds, buildEps, core.Config{})
	sharedBuild := watch.Lap()

	tb := stats.NewTable(
		fmt.Sprintf("E4 multi-ε amortization (shared tree built at ε=%g in %.4g ms)", buildEps, ms(sharedBuild)),
		"eps", "shared_join_ms", "rebuild_build_ms", "rebuild_join_ms", "pairs")
	for _, eps := range epss {
		opt := join.Options{Metric: vec.L2, Eps: eps}
		var s1 pairs.Counter
		watch := stats.Start()
		shared.SelfJoin(opt, &s1)
		sharedJoin := watch.Lap()

		fresh := core.Build(ds, eps, core.Config{})
		freshBuild := watch.Lap()
		var s2 pairs.Counter
		fresh.SelfJoin(opt, &s2)
		freshJoin := watch.Lap()
		if s1.N() != s2.N() {
			panic("bench: multi-ε answers disagree")
		}
		tb.AddRow(eps, ms(sharedJoin), ms(freshBuild), ms(freshJoin), s1.N())
	}
	return tb
}

// E1KNNJoin measures the k-NN join (every point of A to its k nearest in
// B) against the brute-force scan baseline. Expected shape: the indexed
// join wins by orders of magnitude and degrades slowly with k.
func E1KNNJoin(quick bool) *stats.Table {
	na, nb := 2000, 20000
	if quick {
		na, nb = 300, 3000
	}
	a := synth.Generate(synth.Config{N: na, Dims: 6, Seed: 0xE1, Dist: synth.GaussianClusters})
	b := synth.Generate(synth.Config{N: nb, Dims: 6, Seed: 0xE2, Dist: synth.GaussianClusters})
	tb := stats.NewTable("E1 k-NN join time vs k (ms)",
		"k", "rtree_ms", "rtree_distcomps", "brute_ms", "speedup")
	for _, k := range []int{1, 5, 10, 50} {
		var c stats.Counters
		watch := stats.Start()
		rows := rtree.KNNJoin(a, b, k, 1, vec.L2, &c)
		indexed := watch.Lap()
		// Brute baseline: full scan per query point.
		bruteRows := make([][]join.Neighbor, a.Len())
		for i := 0; i < a.Len(); i++ {
			all := make([]join.Neighbor, b.Len())
			q := a.Point(i)
			for j := 0; j < b.Len(); j++ {
				all[j] = join.Neighbor{Index: j, Dist: vec.Dist(vec.L2, q, b.Point(j))}
			}
			sort.Slice(all, func(x, y int) bool { return all[x].Dist < all[y].Dist })
			bruteRows[i] = all[:k]
		}
		bruteTime := watch.Lap()
		// Spot-check agreement (distances; indexes may tie-swap).
		for i := 0; i < a.Len(); i += 97 {
			for j := 0; j < k; j++ {
				if rows[i][j].Dist != bruteRows[i][j].Dist {
					panic("bench: k-NN join disagrees with brute baseline")
				}
			}
		}
		tb.AddRow(k, ms(indexed), c.Snapshot().DistComps, ms(bruteTime),
			float64(bruteTime)/float64(indexed))
		c.Reset()
	}
	return tb
}

// E2CurveAblation swaps the Morton key for the Hilbert key in the
// curve-block join. Expected shape: Hilbert's tighter blocks inspect
// somewhat fewer candidates; the gap narrows as blocks grow (bigger blocks
// wash out curve order).
func E2CurveAblation(quick bool) *stats.Table {
	n := 16000
	if quick {
		n = 3000
	}
	ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0xE3, Dist: synth.GaussianClusters})
	tb := stats.NewTable("E2 curve ablation (clustered, d=8, ε=0.05)",
		"block", "z_ms", "z_candidates", "hilbert_ms", "hilbert_candidates", "pairs")
	for _, block := range []int{64, 256, 1024} {
		run := func(key zorder.KeyFunc) (float64, int64, int64) {
			var c stats.Counters
			var sink pairs.Counter
			watch := stats.Start()
			zorder.SelfJoinKeyed(ds, join.Options{Metric: vec.L2, Eps: 0.05, Counters: &c}, block, key, &sink)
			return ms(watch.Elapsed()), c.Snapshot().Candidates, sink.N()
		}
		zMs, zCand, zPairs := run(zorder.Key)
		hMs, hCand, hPairs := run(hilbert.Key)
		if zPairs != hPairs {
			panic("bench: curve ablation results disagree")
		}
		tb.AddRow(block, zMs, zCand, hMs, hCand, zPairs)
	}
	return tb
}

// E3Estimation measures the selectivity estimator's relative error as the
// sample grows. Expected shape: error shrinks roughly with 1/√sample; even
// small samples land within a small factor.
func E3Estimation(quick bool) *stats.Table {
	n := 20000
	if quick {
		n = 5000
	}
	ds := synth.Generate(synth.Config{N: n, Dims: 6, Seed: 0xE4, Dist: synth.GaussianClusters})
	const eps = 0.08
	exact := RunSelf("ekdb", ds, vec.L2, eps).Pairs
	tb := stats.NewTable("E3 selectivity estimation (exact result size known)",
		"sample", "estimate", "exact", "rel_error", "est_ms")
	for _, sample := range []int{100, 250, 500, 1000, 2000} {
		watch := stats.Start()
		// Average a few seeds so the row reflects typical, not lucky, error.
		var sum float64
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			sum += float64(estimate.SelfJoinSize(ds, vec.L2, eps, sample, 100+s))
		}
		est := int64(sum / seeds)
		elapsed := watch.Elapsed() / seeds
		rel := 0.0
		if exact > 0 {
			rel = float64(est-exact) / float64(exact)
			if rel < 0 {
				rel = -rel
			}
		}
		tb.AddRow(sample, est, exact, rel, ms(elapsed))
	}
	return tb
}
