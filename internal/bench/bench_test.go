package bench

import (
	"strings"
	"testing"

	"simjoin/internal/vec"
)

// TestAllExperimentsQuick runs the complete reproduction suite at quick
// scale: every table must materialize with plausible rows (this is also
// what keeps cmd/repro from rotting).
func TestAllExperimentsQuick(t *testing.T) {
	for _, ex := range append(All(), Extensions()...) {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tb := ex.Run(true)
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", ex.ID)
			}
			if len(tb.Headers) < 2 {
				t.Fatalf("%s: degenerate headers %v", ex.ID, tb.Headers)
			}
			out := tb.String()
			if !strings.Contains(out, tb.Headers[0]) {
				t.Fatalf("%s: render lost headers", ex.ID)
			}
		})
	}
}

// TestAlgorithmsAgreeAtBenchScale reruns the agreement check at a bench
// workload: every algorithm must report the same pair count F1 will time.
func TestAlgorithmsAgreeAtBenchScale(t *testing.T) {
	ds := Uniform(2000, 8, 0xF1)
	var want int64 = -1
	for _, algo := range AlgoNames {
		r := RunSelf(algo, ds, vec.L2, 0.3)
		if want == -1 {
			want = r.Pairs
			continue
		}
		if r.Pairs != want {
			t.Errorf("%s: %d pairs, want %d", algo, r.Pairs, want)
		}
	}
	if want <= 0 {
		t.Error("degenerate workload: no pairs")
	}
}

func TestCalibrateEps(t *testing.T) {
	for _, d := range []int{2, 8, 16} {
		ds := Uniform(4000, d, 7)
		eps := CalibrateEps(ds, vec.L2, 8000)
		r := RunSelf("ekdb", ds, vec.L2, eps)
		// Calibration is statistical (subsampled); accept a 4× band.
		if r.Pairs < 2000 || r.Pairs > 32000 {
			t.Errorf("d=%d: calibrated eps %g yields %d pairs, want ≈8000", d, eps, r.Pairs)
		}
		if d > 2 {
			prev := CalibrateEps(Uniform(4000, d-1, 7), vec.L2, 8000)
			if eps <= prev*0.5 {
				t.Errorf("d=%d: eps %g did not grow with dimensionality (prev %g)", d, eps, prev)
			}
		}
	}
}

func TestRunPanicsOnUnknownAlgo(t *testing.T) {
	ds := Uniform(10, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm did not panic")
		}
	}()
	RunSelf("lsh", ds, vec.L2, 0.1)
}
