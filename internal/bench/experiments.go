package bench

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/dft"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

// Experiment binds an experiment id to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) *stats.Table
}

// All lists every experiment of the evaluation in report order.
func All() []Experiment {
	return []Experiment{
		{"f1", "F1: join time vs cardinality (d=8, uniform, ε=0.1)", F1ScaleN},
		{"f2", "F2: join time vs dimensionality (constant selectivity)", F2Dimensionality},
		{"f3", "F3: join time vs ε (N=16k, d=8, uniform)", F3Epsilon},
		{"f4", "F4: ε-kdB leaf-threshold ablation", F4LeafThreshold},
		{"f5", "F5: candidate ratio vs dimensionality", F5Candidates},
		{"f6", "F6: data-distribution sensitivity", F6Distributions},
		{"f7", "F7: external join page I/O vs buffer budget", F7External},
		{"f8", "F8: time-series filter-and-refine vs DFT coefficients", F8TimeSeries},
		{"t1", "T1: algorithm summary (self- and two-set joins)", T1Summary},
		{"t2", "T2: ε-kdB build/join breakdown and configuration", T2Breakdown},
	}
}

// F1ScaleN sweeps cardinality with everything else fixed. Expected shape:
// brute grows quadratically and wins only at the smallest N; ε-kdB and grid
// stay near-linear.
func F1ScaleN(quick bool) *stats.Table {
	sizes := []int{2500, 5000, 10000, 20000, 40000}
	if quick {
		sizes = []int{500, 1000, 2000}
	}
	tb := stats.NewTable("F1 join time vs N (ms)", append([]string{"n"}, AlgoNames...)...)
	for _, n := range sizes {
		ds := Uniform(n, 8, 0xF1)
		row := []any{n}
		for _, algo := range AlgoNames {
			r := RunSelf(algo, ds, vec.L2, 0.1)
			row = append(row, ms(r.Elapsed))
		}
		tb.AddRow(row...)
	}
	return tb
}

// F2Dimensionality sweeps dimensionality with ε calibrated per d so the
// output size stays roughly constant. Clustered data keeps the calibrated ε
// well below the data extent at every d — on uniform data ε would have to
// approach the cube diagonal, a regime where every method degenerates
// identically (the curse of dimensionality; EXPERIMENTS.md discusses it).
// Expected shape: the SAM baselines (k-d tree, R-tree) degrade fastest;
// ε-kdB stays flat longest.
func F2Dimensionality(quick bool) *stats.Table {
	dims := []int{2, 4, 8, 12, 16, 20, 24, 28}
	n := 16000
	if quick {
		dims = []int{2, 6, 12}
		n = 2500
	}
	algos := []string{"sweep", "grid", "kdtree", "rtree", "rplus", "zorder", "ekdb"}
	tb := stats.NewTable("F2 join time vs dimensionality (ms)", append([]string{"d", "eps", "pairs"}, algos...)...)
	for _, d := range dims {
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: 0xF2, Dist: synth.GaussianClusters, Clusters: 20})
		eps := CalibrateEps(ds, vec.L2, int64(2*n))
		row := []any{d, eps}
		var pairsN int64
		results := make([]any, 0, len(algos))
		for _, algo := range algos {
			r := RunSelf(algo, ds, vec.L2, eps)
			pairsN = r.Pairs
			results = append(results, ms(r.Elapsed))
		}
		row = append(row, pairsN)
		row = append(row, results...)
		tb.AddRow(row...)
	}
	return tb
}

// F3Epsilon sweeps the threshold. Expected shape: every algorithm slows as
// ε (and output) grows; ε-kdB's advantage narrows because fewer, fatter
// stripes prune less.
func F3Epsilon(quick bool) *stats.Table {
	n := 16000
	if quick {
		n = 2500
	}
	epss := []float64{0.02, 0.04, 0.08, 0.12, 0.16, 0.24}
	algos := []string{"sweep", "grid", "kdtree", "rtree", "rplus", "zorder", "ekdb"}
	tb := stats.NewTable("F3 join time vs eps (ms)", append([]string{"eps", "pairs"}, algos...)...)
	// Clustered data keeps every ε in the sweep selective but non-empty.
	ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0xF3, Dist: synth.GaussianClusters})
	for _, eps := range epss {
		row := []any{eps}
		var pairsN int64
		results := make([]any, 0, len(algos))
		for _, algo := range algos {
			r := RunSelf(algo, ds, vec.L2, eps)
			pairsN = r.Pairs
			results = append(results, ms(r.Elapsed))
		}
		row = append(row, pairsN)
		row = append(row, results...)
		tb.AddRow(row...)
	}
	return tb
}

// F4LeafThreshold ablates the ε-kdB leaf capacity, separating build and
// join time. Expected shape: U-shaped total — tiny leaves pay in build
// depth and recursion, huge leaves degenerate to quadratic leaf work.
func F4LeafThreshold(quick bool) *stats.Table {
	n := 30000
	if quick {
		n = 4000
	}
	ds := Uniform(n, 8, 0xF4)
	tb := stats.NewTable("F4 ε-kdB leaf-threshold ablation",
		"leaf", "build_ms", "join_ms", "total_ms", "nodes", "leaves", "candidates")
	for _, leaf := range []int{4, 16, 64, 256, 1024, 4096} {
		var c stats.Counters
		opt := join.Options{Metric: vec.L2, Eps: 0.1, Counters: &c}
		watch := stats.Start()
		t := core.Build(ds, 0.1, core.Config{LeafThreshold: leaf})
		build := watch.Lap()
		var sink pairs.Counter
		t.SelfJoin(opt, &sink)
		joinTime := watch.Lap()
		tb.AddRow(leaf, ms(build), ms(joinTime), ms(build+joinTime),
			t.Nodes(), t.Leaves(), c.Snapshot().Candidates)
	}
	return tb
}

// F5Candidates reports the filtering power (candidates per result) across
// dimensionality. Expected shape: ε-kdB's ratio stays lowest and flattest;
// grid and R-tree blow up as boxes/cells stop discriminating.
func F5Candidates(quick bool) *stats.Table {
	dims := []int{2, 8, 16, 28}
	n := 8000
	if quick {
		dims = []int{2, 10}
		n = 2000
	}
	algos := []string{"grid", "kdtree", "rtree", "rplus", "zorder", "ekdb"}
	headers := []string{"d", "pairs"}
	for _, a := range algos {
		headers = append(headers, a+"_cand", a+"_ratio")
	}
	tb := stats.NewTable("F5 candidates and candidate ratio vs dimensionality", headers...)
	for _, d := range dims {
		ds := synth.Generate(synth.Config{N: n, Dims: d, Seed: 0xF5, Dist: synth.GaussianClusters, Clusters: 20})
		eps := CalibrateEps(ds, vec.L2, int64(2*n))
		row := []any{d}
		var pairsN int64
		cells := make([]any, 0, 2*len(algos))
		for _, algo := range algos {
			r := RunSelf(algo, ds, vec.L2, eps)
			pairsN = r.Pairs
			ratio := 0.0
			if r.Pairs > 0 {
				ratio = float64(r.Snap.Candidates) / float64(r.Pairs)
			}
			cells = append(cells, r.Snap.Candidates, ratio)
		}
		row = append(row, pairsN)
		row = append(row, cells...)
		tb.AddRow(row...)
	}
	return tb
}

// F6Distributions compares algorithms across data distributions at a fixed
// ε. Expected shape: skew (zipf) hurts the grid most (hot cells), ε-kdB
// stays robust; correlation collapses the data onto a diagonal where the
// sweep baseline looks better than it deserves.
func F6Distributions(quick bool) *stats.Table {
	n := 16000
	if quick {
		n = 2500
	}
	algos := []string{"sweep", "grid", "kdtree", "rtree", "rplus", "zorder", "ekdb"}
	tb := stats.NewTable("F6 join time by distribution (ms)", append([]string{"dist", "pairs"}, algos...)...)
	for _, dist := range synth.AllDistributions() {
		ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0xF6, Dist: dist})
		row := []any{dist.String()}
		var pairsN int64
		results := make([]any, 0, len(algos))
		for _, algo := range algos {
			r := RunSelf(algo, ds, vec.L2, 0.08)
			pairsN = r.Pairs
			results = append(results, ms(r.Elapsed))
		}
		row = append(row, pairsN)
		row = append(row, results...)
		tb.AddRow(row...)
	}
	return tb
}

// F7External sweeps the buffer-pool budget for the two external
// algorithms. Expected shape: partitioned ε-kdB I/O stays near two scans
// regardless of budget; block-nested-loop reads grow sharply as the pool
// shrinks.
func F7External(quick bool) *stats.Table {
	n := 50000
	pools := []int{8, 16, 32, 64, 128, 256, 1024}
	if quick {
		n = 8000
		pools = []int{4, 16, 64}
	}
	ds := Uniform(n, 4, 0xF7)
	tb := stats.NewTable("F7 external join page I/O vs pool budget (4KiB pages)",
		"pool_pages", "ekdb_reads", "ekdb_writes", "bnl_reads", "bnl_writes", "pairs")
	for _, pool := range pools {
		var cEK stats.Counters
		var sinkEK pairs.Counter
		core.ExternalSelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.05, Counters: &cEK},
			core.ExternalConfig{PoolPages: pool}, &sinkEK)
		var cBN stats.Counters
		var sinkBN pairs.Counter
		core.ExternalBlockNestedLoopSelfJoin(ds, join.Options{Metric: vec.L2, Eps: 0.05, Counters: &cBN},
			core.ExternalConfig{PoolPages: pool}, &sinkBN)
		if sinkEK.N() != sinkBN.N() {
			panic(fmt.Sprintf("bench: external algorithms disagree: %d vs %d", sinkEK.N(), sinkBN.N()))
		}
		ek, bn := cEK.Snapshot(), cBN.Snapshot()
		tb.AddRow(pool, ek.PageReads, ek.PageWrites, bn.PageReads, bn.PageWrites, sinkEK.N())
	}
	return tb
}

// F8TimeSeries measures the DFT filter-and-refine pipeline of the
// time-series application. Expected shape: the false-positive ratio drops
// steeply over the first few coefficients then flattens; filter-and-refine
// beats joining the raw sequences directly.
func F8TimeSeries(quick bool) *stats.Table {
	n, dup, length := 4000, 100, 128
	if quick {
		n, dup = 600, 30
	}
	const eps = 2.0
	series := synth.SimilarWalkPairs(n, dup, length, 1, 0.05, 0xF8)
	// Mean-normalize every sequence (standard in sequence matching: level
	// offsets are not dissimilarity). This also removes the trivial
	// level-separation a raw-space index would otherwise exploit.
	for _, s := range series {
		var mean float64
		for _, v := range s {
			mean += v
		}
		mean /= float64(len(s))
		for t := range s {
			s[t] -= mean
		}
	}

	// Ground truth and direct baselines on the raw sequences (they are
	// just length-dimensional points).
	raw := synth.SeriesDataset(series)
	truth := RunSelf("ekdb", raw, vec.L2, eps)
	directBrute := RunSelf("brute", raw, vec.L2, eps)
	if directBrute.Pairs != truth.Pairs {
		panic("bench: direct baselines disagree")
	}

	headers := []string{"k", "feat_dims", "candidates", "true_pairs", "fp_ratio", "filter_ms", "refine_ms", "total_ms"}
	tb := stats.NewTable(fmt.Sprintf("F8 DFT filter-and-refine (%d seqs × %d, ε=%g; direct 128-dim join: ekdb %.4g ms, brute %.4g ms, %d pairs)",
		len(series), length, eps, ms(truth.Elapsed), ms(directBrute.Elapsed), truth.Pairs), headers...)
	for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		watch := stats.Start()
		feats := dft.FeatureDataset(series, k)
		col := &pairs.Collector{Canonical: true}
		core.SelfJoin(feats, join.Options{Metric: vec.L2, Eps: eps}, col)
		filter := watch.Lap()
		var confirmed int64
		for _, p := range col.Pairs {
			if dft.SeqDist(series[p.I], series[p.J]) <= eps {
				confirmed++
			}
		}
		refine := watch.Lap()
		if confirmed != truth.Pairs {
			panic(fmt.Sprintf("bench: filter-and-refine lost pairs at k=%d: %d vs %d", k, confirmed, truth.Pairs))
		}
		fp := 0.0
		if len(col.Pairs) > 0 {
			fp = float64(int64(len(col.Pairs))-confirmed) / float64(len(col.Pairs))
		}
		tb.AddRow(k, dft.FeatureDims(k), len(col.Pairs), confirmed, fp, ms(filter), ms(refine), ms(filter+refine))
	}
	return tb
}

// T1Summary is the headline comparison: every algorithm on one clustered
// workload, self-join and two-set join.
func T1Summary(quick bool) *stats.Table {
	n := 16000
	if quick {
		n = 2500
	}
	// Split one generated set in half so the two join sides share cluster
	// structure (independently seeded clusters would share no ε-pairs).
	both := synth.Generate(synth.Config{N: 2 * n, Dims: 8, Seed: 0x71, Dist: synth.GaussianClusters})
	a := both.Head(n)
	b := both.Subset(tailIndexes(n, 2*n))
	tb := stats.NewTable(fmt.Sprintf("T1 algorithm summary (N=%d, d=8, clustered, ε=0.05)", n),
		"algo", "self_ms", "join_ms", "self_candidates", "self_distcomps", "self_pairs", "join_pairs")
	for _, algo := range AlgoNames {
		self := RunSelf(algo, a, vec.L2, 0.05)
		two := RunJoin(algo, a, b, vec.L2, 0.05)
		tb.AddRow(algo, ms(self.Elapsed), ms(two.Elapsed),
			self.Snap.Candidates, self.Snap.DistComps, self.Pairs, two.Pairs)
	}
	return tb
}

// tailIndexes returns [from, to).
func tailIndexes(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

// T2Breakdown opens up the ε-kdB tree: build vs join time, structure size,
// and the biased-split option, per leaf threshold.
func T2Breakdown(quick bool) *stats.Table {
	n := 30000
	if quick {
		n = 4000
	}
	ds := synth.Generate(synth.Config{N: n, Dims: 8, Seed: 0x73, Dist: synth.GaussianClusters})
	tb := stats.NewTable(fmt.Sprintf("T2 ε-kdB internals (N=%d, d=8, clustered, ε=0.05)", n),
		"config", "build_ms", "join_ms", "nodes", "leaves", "max_depth", "mem_kb", "pairs")
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"leaf=16", core.Config{LeafThreshold: 16}},
		{"leaf=64", core.Config{LeafThreshold: 64}},
		{"leaf=256", core.Config{LeafThreshold: 256}},
		{"leaf=64 biased", core.Config{LeafThreshold: 64, BiasedSplit: true}},
		{"leaf=256 biased", core.Config{LeafThreshold: 256, BiasedSplit: true}},
	} {
		watch := stats.Start()
		t := core.Build(ds, 0.05, cfg.c)
		build := watch.Lap()
		var sink pairs.Counter
		t.SelfJoin(join.Options{Metric: vec.L2, Eps: 0.05}, &sink)
		joinTime := watch.Lap()
		tb.AddRow(cfg.name, ms(build), ms(joinTime),
			t.Nodes(), t.Leaves(), t.MaxDepth(), t.MemoryBytes()/1024, sink.N())
	}
	return tb
}
