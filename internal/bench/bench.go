// Package bench is the reproduction harness: one function per figure/table
// of the evaluation (see DESIGN.md §4), each returning a stats.Table with
// the same rows the paper-style report prints. cmd/repro drives the full
// suite; bench_test.go holds testing.B counterparts for micro-level timing.
//
// Every experiment is deterministic (fixed seeds) and has a quick variant
// for CI-scale runs; absolute times vary with hardware but the shapes the
// evaluation argues from (who wins, by what factor, where the crossovers
// fall) are stable.
package bench

import (
	"time"

	"simjoin/internal/brute"
	"simjoin/internal/core"
	"simjoin/internal/dataset"
	"simjoin/internal/grid"
	"simjoin/internal/hilbert"
	"simjoin/internal/join"
	"simjoin/internal/kdtree"
	"simjoin/internal/pairs"
	"simjoin/internal/rplus"
	"simjoin/internal/rtree"
	"simjoin/internal/stats"
	"simjoin/internal/sweep"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
	"simjoin/internal/zorder"
)

// AlgoNames lists the compared algorithms in report order.
var AlgoNames = []string{"brute", "sweep", "grid", "kdtree", "rtree", "rplus", "zorder", "ekdb"}

// selfJoins maps algorithm names to their self-join entry points.
var selfJoins = map[string]func(*dataset.Dataset, join.Options, pairs.Sink){
	"brute":   brute.SelfJoin,
	"sweep":   sweep.SelfJoin,
	"grid":    grid.SelfJoin,
	"kdtree":  kdtree.SelfJoin,
	"rtree":   rtree.SelfJoin,
	"rplus":   rplus.SelfJoin,
	"zorder":  zorder.SelfJoin,
	"hilbert": hilbert.SelfJoin,
	"ekdb":    core.SelfJoin,
}

// twoJoins maps algorithm names to their two-set join entry points.
var twoJoins = map[string]func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink){
	"brute":   brute.Join,
	"sweep":   sweep.Join,
	"grid":    grid.Join,
	"kdtree":  kdtree.Join,
	"rtree":   rtree.Join,
	"rplus":   rplus.Join,
	"zorder":  zorder.Join,
	"hilbert": hilbert.Join,
	"ekdb":    core.Join,
}

// RunResult captures one measured algorithm run.
type RunResult struct {
	Algo    string
	Elapsed time.Duration
	Snap    stats.Snapshot
	Pairs   int64
}

// RunSelf measures one self-join run of the named algorithm.
func RunSelf(algo string, ds *dataset.Dataset, metric vec.Metric, eps float64) RunResult {
	fn, ok := selfJoins[algo]
	if !ok {
		panic("bench: unknown algorithm " + algo)
	}
	var c stats.Counters
	opt := join.Options{Metric: metric, Eps: eps, Counters: &c}
	var sink pairs.Counter
	watch := stats.Start()
	fn(ds, opt, &sink)
	elapsed := watch.Elapsed()
	return RunResult{Algo: algo, Elapsed: elapsed, Snap: c.Snapshot(), Pairs: sink.N()}
}

// RunJoin measures one two-set join run of the named algorithm.
func RunJoin(algo string, a, b *dataset.Dataset, metric vec.Metric, eps float64) RunResult {
	fn, ok := twoJoins[algo]
	if !ok {
		panic("bench: unknown algorithm " + algo)
	}
	var c stats.Counters
	opt := join.Options{Metric: metric, Eps: eps, Counters: &c}
	var sink pairs.Counter
	watch := stats.Start()
	fn(a, b, opt, &sink)
	elapsed := watch.Elapsed()
	return RunResult{Algo: algo, Elapsed: elapsed, Snap: c.Snapshot(), Pairs: sink.N()}
}

// Uniform returns the standard uniform workload of the evaluation.
func Uniform(n, dims int, seed int64) *dataset.Dataset {
	return synth.Generate(synth.Config{N: n, Dims: dims, Seed: seed, Dist: synth.Uniform})
}

// ms renders a duration as fractional milliseconds for table cells.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// CalibrateEps finds an ε giving approximately targetPairs self-join
// results on ds under metric m, by bisection over a brute-force count on a
// subsample (scaled quadratically back to the full set). The evaluation
// uses it to hold selectivity roughly constant while dimensionality varies
// — otherwise "time vs d" would mostly measure output size.
func CalibrateEps(ds *dataset.Dataset, m vec.Metric, targetPairs int64) float64 {
	const sampleCap = 1500
	sample := ds
	scale := 1.0
	if ds.Len() > sampleCap {
		c := ds.Clone()
		c.Shuffle(12345)
		sample = c.Head(sampleCap)
		r := float64(ds.Len()) / float64(sampleCap)
		scale = r * r
	}
	target := float64(targetPairs) / scale
	if target < 1 {
		target = 1
	}
	count := func(eps float64) float64 {
		var sink pairs.Counter
		brute.SelfJoin(sample, join.Options{Metric: m, Eps: eps}, &sink)
		return float64(sink.N())
	}
	// Bracket: grow hi until enough pairs.
	lo, hi := 0.0, 0.05
	for count(hi) < target && hi < 64 {
		hi *= 2
	}
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		if count(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
