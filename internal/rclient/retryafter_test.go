package rclient

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0.5", 500 * time.Millisecond},
		{" 3 ", 3 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"garbage", 0},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0},
	}
	for _, c := range cases {
		if got := ParseRetryAfter(c.in); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// A future HTTP-date parses to roughly the distance to it.
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if got := ParseRetryAfter(future); got <= 3*time.Second || got > 6*time.Second {
		t.Errorf("ParseRetryAfter(future date) = %v, want ~5s", got)
	}
}

// TestRetryAfterHonored asserts a 429 with Retry-After delays the next
// attempt by the header's value rather than the exponential schedule.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := &Client{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Second}
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	// The exponential schedule would have waited ~1ms; the header said
	// 200ms. Allow generous slack below the target for coarse clocks.
	if g := time.Duration(gap.Load()); g < 150*time.Millisecond {
		t.Errorf("retry gap = %v, want >= 150ms (Retry-After honored)", g)
	}
}

// TestRetryAfterCapped asserts a huge Retry-After cannot stall the
// client past MaxDelay.
func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := &Client{MaxRetries: 1, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	start := time.Now()
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v; Retry-After was not capped at MaxDelay", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
}

// TestDoStreamPassthrough asserts DoStream forwards an unbuffered
// request body (no GetBody), carries the correlation header, and hands
// back the response stream untouched.
func TestDoStreamPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(RequestIDHeader) == "" {
			t.Error("missing X-Request-Id on streamed request")
		}
		b, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("echo:"))
		w.Write(b)
	}))
	defer srv.Close()

	// An io.Pipe has no GetBody — Do would refuse to retry it; DoStream
	// must pass it through in one attempt.
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("streamed-payload"))
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, srv.URL, pr)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	resp, err := c.DoStream(context.Background(), req)
	if err != nil {
		t.Fatalf("DoStream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.HasSuffix(string(b), "streamed-payload") {
		t.Fatalf("body = %q", b)
	}
	if c.Retries() != 0 {
		t.Fatalf("retries = %d, want 0", c.Retries())
	}
}
