package rclient

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"simjoin/internal/rclient/rclienttest"
)

// fastClient returns a client with millisecond backoff so retry tests
// stay quick while still exercising the real sleep path.
func fastClient() *Client {
	return &Client{
		MaxRetries:     3,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       20 * time.Millisecond,
		AttemptTimeout: time.Second,
	}
}

func TestFlakyBackendRecovers(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{FailFirst: 2, Body: "recovered"})
	defer ts.Close()

	c := fastClient()
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "recovered" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if got := ts.Calls(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + 1 success)", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestFlakyBackendExhaustsRetries(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{FailFirst: 10})
	defer ts.Close()

	c := fastClient()
	_, err := c.Get(context.Background(), ts.URL)
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("error = %v, want giving-up message", err)
	}
	if got := ts.Calls(); got != 4 {
		t.Fatalf("server saw %d calls, want 4 (1 + 3 retries)", got)
	}
}

func TestSlowBackendHitsAttemptTimeout(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{DelayFirst: -1, Delay: 200 * time.Millisecond})
	defer ts.Close()

	c := fastClient()
	c.AttemptTimeout = 20 * time.Millisecond
	start := time.Now()
	_, err := c.Get(context.Background(), ts.URL)
	if err == nil {
		t.Fatal("want error from slow backend")
	}
	if got := ts.Calls(); got != 4 {
		t.Fatalf("server saw %d calls, want 4", got)
	}
	// Each attempt must have been cut off near the per-attempt timeout,
	// not the full server delay.
	if elapsed := time.Since(start); elapsed > 600*time.Millisecond {
		t.Fatalf("elapsed %v: attempts were not bounded by AttemptTimeout", elapsed)
	}
}

func TestSlowBackendRecoversAfterFirstAttempt(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{DelayFirst: 1, Delay: 200 * time.Millisecond, Body: "late"})
	defer ts.Close()

	c := fastClient()
	c.AttemptTimeout = 30 * time.Millisecond
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "late" {
		t.Fatalf("body = %q", body)
	}
	if got := ts.Calls(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestHardDownBackend(t *testing.T) {
	url := rclienttest.NewDown()

	c := fastClient()
	if _, err := c.Get(context.Background(), url); err == nil {
		t.Fatal("want transport error from down backend")
	}

	// POST to a dead backend must fail fast without retries unless the
	// caller opted in.
	start := time.Now()
	if _, err := c.Post(context.Background(), url, "application/json", []byte("{}")); err == nil {
		t.Fatal("want transport error from down backend")
	} else if strings.Contains(err.Error(), "giving up") {
		t.Fatalf("POST was retried without RetryPOST: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("POST fail-fast took %v", elapsed)
	}

	c.RetryPOST = true
	if _, err := c.Post(context.Background(), url, "application/json", []byte("{}")); err == nil {
		t.Fatal("want error")
	} else if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("RetryPOST error = %v, want giving-up message", err)
	}
}

func TestPostBodyRewindsAcrossRetries(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{FailFirst: 2, Body: "done"})
	defer ts.Close()

	c := fastClient()
	c.RetryPOST = true
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte(`{"eps":0.1}`))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	resp.Body.Close()
	if got := ts.Calls(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{FailFirst: 5, FailStatus: http.StatusNotFound})
	defer ts.Close()

	resp, err := fastClient().Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 passed through", resp.StatusCode)
	}
	if got := ts.Calls(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ts := rclienttest.New(rclienttest.Config{FailFirst: 100})
	defer ts.Close()

	c := fastClient()
	c.BaseDelay = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Get(ctx, ts.URL)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("error = %v, want context deadline", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name      string
		method    string
		status    int
		err       error
		retryPOST bool
		want      Decision
	}{
		{"get transport error", "GET", 0, io.ErrUnexpectedEOF, false, Retry},
		{"put transport error", "PUT", 0, io.ErrUnexpectedEOF, false, Retry},
		{"delete transport error", "DELETE", 0, io.ErrUnexpectedEOF, false, Retry},
		{"post transport error", "POST", 0, io.ErrUnexpectedEOF, false, Fail},
		{"post transport error opted in", "POST", 0, io.ErrUnexpectedEOF, true, Retry},
		{"get 500", "GET", 500, nil, false, Retry},
		{"post 503", "POST", 503, nil, false, Retry},
		{"get 429", "GET", 429, nil, false, Retry},
		{"get 200", "GET", 200, nil, false, Accept},
		{"get 404", "GET", 404, nil, false, Accept},
		{"post 400", "POST", 400, nil, true, Accept},
	}
	for _, tc := range cases {
		if got := Classify(tc.method, tc.status, tc.err, tc.retryPOST); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	for attempt := 1; attempt <= 20; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := Backoff(attempt, base, max)
			if d < base/2 {
				t.Fatalf("attempt %d: delay %v below base/2", attempt, d)
			}
			if d > max {
				t.Fatalf("attempt %d: delay %v exceeds max %v", attempt, d, max)
			}
			// The exponential ceiling for this attempt, pre-jitter.
			ceil := base << (attempt - 1)
			if attempt > 5 || ceil > max {
				ceil = max
			}
			if d >= ceil && ceil > 1 {
				t.Fatalf("attempt %d: delay %v not under jittered ceiling %v", attempt, d, ceil)
			}
		}
	}
}
