// Package rclienttest provides configurable httptest backends for
// exercising retry clients: flaky (fail N calls then succeed), slow
// (delay N calls past a per-attempt timeout), and hard-down servers,
// with thread-safe call counting so tests can assert attempt counts.
package rclienttest

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Config shapes a Server's behavior. The zero value answers every call
// immediately with 200 and Body "ok".
type Config struct {
	// FailFirst makes the first n calls answer FailStatus.
	FailFirst int
	// FailStatus is the status for failed calls (default 503).
	FailStatus int
	// DelayFirst makes the first n calls sleep Delay before answering;
	// < 0 delays every call.
	DelayFirst int
	// Delay is the per-call sleep for delayed calls.
	Delay time.Duration
	// Body is the success payload (default "ok").
	Body string
}

// Server is an httptest.Server with call counting.
type Server struct {
	*httptest.Server

	mu    sync.Mutex
	calls int
}

// New starts a Server with the given behavior. Close it when done.
func New(cfg Config) *Server {
	if cfg.FailStatus == 0 {
		cfg.FailStatus = http.StatusServiceUnavailable
	}
	if cfg.Body == "" {
		cfg.Body = "ok"
	}
	s := &Server{}
	s.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		call := s.inc()
		if cfg.Delay > 0 && (cfg.DelayFirst < 0 || call <= cfg.DelayFirst) {
			time.Sleep(cfg.Delay)
		}
		if call <= cfg.FailFirst {
			http.Error(w, "injected failure", cfg.FailStatus)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(cfg.Body))
	}))
	return s
}

// NewDown returns the URL of a server that is already stopped — every
// request fails at the transport layer.
func NewDown() string {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	return url
}

func (s *Server) inc() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return s.calls
}

// Calls returns how many requests the server has received.
func (s *Server) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}
