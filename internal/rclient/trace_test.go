package rclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simjoin/internal/obsv/trace"
	"simjoin/internal/rclient/rclienttest"
)

// headerRecorder captures selected headers from every request a test
// server receives, in arrival order.
type headerRecorder struct {
	mu   sync.Mutex
	got  []http.Header
	fail int // first n calls answer 503
}

func (h *headerRecorder) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		h.got = append(h.got, r.Header.Clone())
		n := len(h.got)
		h.mu.Unlock()
		if n <= h.fail {
			http.Error(w, "injected failure", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
}

func (h *headerRecorder) headers() []http.Header {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.got
}

// TestRequestIDStableAcrossRetries is the satellite contract: one
// X-Request-Id, minted at the first attempt, repeated verbatim by every
// retry.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	rec := &headerRecorder{fail: 2}
	ts := httptest.NewServer(rec.handler())
	defer ts.Close()
	c := &Client{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hs := rec.headers()
	if len(hs) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(hs))
	}
	id := hs[0].Get(RequestIDHeader)
	if id == "" {
		t.Fatal("first attempt carried no X-Request-Id")
	}
	for i, h := range hs {
		if h.Get(RequestIDHeader) != id {
			t.Fatalf("attempt %d X-Request-Id = %q, want %q", i+1, h.Get(RequestIDHeader), id)
		}
	}
}

// TestTraceParentPropagation: with a span in ctx, every attempt carries
// a traceparent of the same trace, and each attempt appears as a child
// span of the caller's span.
func TestTraceParentPropagation(t *testing.T) {
	rec := &headerRecorder{fail: 1}
	ts := httptest.NewServer(rec.handler())
	defer ts.Close()
	tr := trace.New(4)
	root := tr.Start("caller")
	ctx := trace.NewContext(context.Background(), root)

	c := &Client{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	resp, err := c.Get(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	root.End()

	hs := rec.headers()
	if len(hs) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(hs))
	}
	wantTrace := root.TraceID()
	seen := map[string]bool{}
	for i, h := range hs {
		tid, sid, ok := trace.ParseTraceParent(h.Get("traceparent"))
		if !ok {
			t.Fatalf("attempt %d traceparent %q malformed", i+1, h.Get("traceparent"))
		}
		if tid != wantTrace {
			t.Fatalf("attempt %d trace %s, want %s", i+1, tid, wantTrace)
		}
		if seen[sid.String()] {
			t.Fatalf("attempt %d reused span id %s", i+1, sid)
		}
		seen[sid.String()] = true
	}
	td := tr.Traces()[0]
	rd, _ := td.Root()
	kids := td.ChildrenOf(rd.SpanID)
	if len(kids) != 2 {
		t.Fatalf("caller span has %d attempt children, want 2: %+v", len(kids), kids)
	}
	if kids[0].Name != "rclient.attempt" || kids[0].Attr("status") != "503" {
		t.Fatalf("first attempt span = %+v", kids[0])
	}
	if kids[1].Attr("status") != "200" {
		t.Fatalf("second attempt span = %+v", kids[1])
	}
}

// TestNoTraceParentWithoutSpan: a bare context adds no traceparent —
// downstream servers must not inherit phantom parents.
func TestNoTraceParentWithoutSpan(t *testing.T) {
	rec := &headerRecorder{}
	ts := httptest.NewServer(rec.handler())
	defer ts.Close()
	resp, err := New().Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := rec.headers()[0].Get("traceparent"); got != "" {
		t.Fatalf("unexpected traceparent %q", got)
	}
	if got := rec.headers()[0].Get(RequestIDHeader); got == "" {
		t.Fatal("X-Request-Id missing without a span — correlation must not depend on tracing")
	}
}

// TestAttemptsInErrors: exhausted retries report how many attempts ran.
func TestAttemptsInErrors(t *testing.T) {
	srv := rclienttest.New(rclienttest.Config{FailFirst: 100})
	defer srv.Close()
	c := &Client{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := c.Get(context.Background(), srv.URL)
	if err == nil {
		t.Fatal("want error from always-failing server")
	}
	if got := Attempts(err); got != 3 {
		t.Fatalf("Attempts = %d, want 3 (err: %v)", got, err)
	}
	// Non-retryable transport failure counts its single attempt too.
	_, err = (&Client{MaxRetries: 2}).Post(context.Background(), rclienttest.NewDown(), "text/plain", nil)
	if err == nil {
		t.Fatal("want error from down server")
	}
	if got := Attempts(err); got != 1 {
		t.Fatalf("Attempts = %d, want 1 (err: %v)", got, err)
	}
	if Attempts(nil) != 0 || Attempts(context.Canceled) != 0 {
		t.Fatal("Attempts must be 0 for nil/foreign errors")
	}
}
