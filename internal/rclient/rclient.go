// Package rclient is the resilient HTTP client the cluster layer uses to
// talk to simjoind workers: per-attempt timeouts, bounded exponential
// backoff with jitter, and retries restricted to failures that are safe
// to repeat.
//
// The retry policy is deliberately narrow. Transport errors and
// per-attempt timeouts are retried only for idempotent methods (GET,
// HEAD, PUT, DELETE, OPTIONS) — or for POST when the caller opts in with
// RetryPOST, which the coordinator does because its POST endpoints are
// read-only queries. 5xx and 429 responses are retried for any method:
// the worker reported failure without doing the work. Every other
// response, 4xx included, is returned to the caller unchanged — a
// validation error does not get better by asking again.
package rclient

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"simjoin/internal/obsv/trace"
)

// Defaults used by New and by zero-valued fields of Client.
const (
	DefaultMaxRetries     = 3
	DefaultBaseDelay      = 25 * time.Millisecond
	DefaultMaxDelay       = 2 * time.Second
	DefaultAttemptTimeout = 30 * time.Second
)

// Client is an http.Client wrapper that retries safely-repeatable
// failures with bounded exponential backoff. The zero value is usable;
// zero fields take the package defaults.
type Client struct {
	// HTTP is the underlying client (nil = http.DefaultClient). Its
	// Timeout, if set, caps the whole call including retries; prefer
	// AttemptTimeout for per-try limits.
	HTTP *http.Client
	// MaxRetries is the number of retries after the first attempt.
	MaxRetries int
	// BaseDelay seeds the exponential backoff: attempt n sleeps a
	// jittered value in [d/2, d) where d = min(BaseDelay·2ⁿ⁻¹, MaxDelay).
	BaseDelay time.Duration
	// MaxDelay bounds a single backoff sleep.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; a slow attempt is
	// cancelled and (if retryable) retried. < 0 disables the limit.
	AttemptTimeout time.Duration
	// RetryPOST treats POST like an idempotent method for transport-error
	// retries. Only set this when every POST the client issues is a
	// read-only query (true for the cluster coordinator).
	RetryPOST bool

	// retries counts retry attempts (not first attempts) across the
	// client's lifetime, for observability.
	retries atomic.Int64
}

// Retries returns the total number of retry attempts the client has made
// (first attempts are not counted). Safe for concurrent use.
func (c *Client) Retries() int64 { return c.retries.Load() }

// New returns a Client with the package defaults.
func New() *Client { return &Client{} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return DefaultMaxRetries
}

func (c *Client) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return DefaultBaseDelay
}

func (c *Client) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return DefaultMaxDelay
}

func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout != 0 {
		return c.AttemptTimeout
	}
	return DefaultAttemptTimeout
}

// AttemptsError wraps a request failure with the number of attempts the
// request made before giving up, so callers (the cluster coordinator's
// logs, shard-error payloads) can report "failed after N attempts"
// without parsing error strings. Error() delegates to the wrapped
// error, so existing message matching keeps working.
type AttemptsError struct {
	// Attempts is how many tries were made, first attempt included.
	Attempts int
	// Err is the underlying failure.
	Err error
}

func (e *AttemptsError) Error() string { return e.Err.Error() }
func (e *AttemptsError) Unwrap() error { return e.Err }

// Attempts extracts the attempt count from an error chain, 0 when the
// error does not carry one.
func Attempts(err error) int {
	var ae *AttemptsError
	if errors.As(err, &ae) {
		return ae.Attempts
	}
	return 0
}

// withAttempts tags err with the attempt count (nil stays nil).
func withAttempts(attempts int, err error) error {
	if err == nil {
		return nil
	}
	return &AttemptsError{Attempts: attempts, Err: err}
}

// RequestIDHeader is the correlation header set on every outgoing
// request. The value is minted once per Do call and reused verbatim by
// every retry, so a worker's access log shows one ID across a request's
// attempts.
const RequestIDHeader = "X-Request-Id"

// newRequestID returns a 16-hex-char correlation ID.
func newRequestID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// Decision classifies one attempt's outcome.
type Decision int

const (
	// Accept: hand the response to the caller (2xx/3xx/4xx).
	Accept Decision = iota
	// Retry: transient failure worth another attempt.
	Retry
	// Fail: give up immediately (non-retryable transport error).
	Fail
)

// Idempotent reports whether method is safe to repeat blindly.
func Idempotent(method string) bool {
	switch strings.ToUpper(method) {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete, http.MethodOptions:
		return true
	}
	return false
}

// Classify maps one attempt's (status, err) outcome to a Decision. status
// is ignored when err is non-nil. retryPOST extends transport-error
// retries to POST (see Client.RetryPOST).
func Classify(method string, status int, err error, retryPOST bool) Decision {
	if err != nil {
		if Idempotent(method) || (retryPOST && strings.ToUpper(method) == http.MethodPost) {
			return Retry
		}
		return Fail
	}
	if status >= http.StatusInternalServerError || status == http.StatusTooManyRequests {
		return Retry
	}
	return Accept
}

// Backoff returns the jittered sleep before retry attempt n (n ≥ 1):
// uniform in [d/2, d) with d = min(base·2ⁿ⁻¹, max). The jitter spreads
// coordinated clients; the cap keeps tail retries from stalling a
// scatter-gather fan-out.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half)
}

// cancelBody ties an attempt's context cancellation to the response body
// so the per-attempt timer is released when the caller finishes reading.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// Do executes req with retries. The caller owns the returned response
// body. Requests with bodies must have GetBody set (true for requests
// built by http.NewRequest from a *bytes.Reader and for the package's
// helpers) or the first retry fails.
//
// Every outgoing attempt carries a stable X-Request-Id (minted once per
// Do call, reused by retries; a caller-set header wins) and — when ctx
// carries a trace span — a W3C traceparent naming a per-attempt child
// span, so a flaky fan-out shows up as one shard span with several
// attempt spans under it. Failures are tagged with the attempt count;
// extract it with Attempts.
func (c *Client) Do(ctx context.Context, req *http.Request) (*http.Response, error) {
	if req.Header.Get(RequestIDHeader) == "" {
		req.Header.Set(RequestIDHeader, newRequestID())
	}
	parent := trace.FromContext(ctx)
	attempts := c.maxRetries() + 1
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			delay := Backoff(attempt, c.baseDelay(), c.maxDelay())
			if retryAfter > 0 {
				// The server named its own backoff (admission control's
				// 429 + Retry-After); honoring it beats hammering the
				// exponential schedule into the same rejection. Still
				// capped at MaxDelay so a hostile header cannot stall a
				// scatter-gather fan-out.
				delay = min(retryAfter, c.maxDelay())
				retryAfter = 0
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, withAttempts(attempt, fmt.Errorf("rclient: %s %s: %w (last attempt: %w)", req.Method, req.URL, ctx.Err(), lastErr))
			case <-t.C:
			}
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, withAttempts(attempt, fmt.Errorf("rclient: %s %s: rewinding body: %w", req.Method, req.URL, err))
				}
				req.Body = body
			} else if req.Body != nil {
				return nil, withAttempts(attempt, fmt.Errorf("rclient: %s %s: cannot retry request without GetBody: %w", req.Method, req.URL, lastErr))
			}
		}
		asp := parent.Child("rclient.attempt")
		asp.SetAttr("method", req.Method)
		asp.SetAttr("url", req.URL.String())
		asp.AddCounter("attempt", int64(attempt+1))
		if asp != nil {
			req.Header.Set("traceparent", asp.TraceParent())
		}
		resp, err := c.attempt(ctx, req)
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		if err != nil {
			asp.SetAttr("error", err.Error())
		} else {
			asp.SetAttr("status", strconv.Itoa(status))
		}
		asp.End()
		if err != nil && ctx.Err() != nil {
			// The caller's context ended; the attempt error is noise.
			return nil, withAttempts(attempt+1, fmt.Errorf("rclient: %s %s: %w", req.Method, req.URL, ctx.Err()))
		}
		switch Classify(req.Method, status, err, c.RetryPOST) {
		case Accept:
			return resp, nil
		case Fail:
			return nil, withAttempts(attempt+1, fmt.Errorf("rclient: %s %s: %w", req.Method, req.URL, err))
		case Retry:
			if err != nil {
				lastErr = err
			} else {
				lastErr = fmt.Errorf("server status %d", status)
				retryAfter = ParseRetryAfter(resp.Header.Get("Retry-After"))
				// Drain so the transport can reuse the connection.
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
				resp.Body.Close()
			}
		}
	}
	return nil, withAttempts(attempts, fmt.Errorf("rclient: %s %s: giving up after %d attempts: %w", req.Method, req.URL, attempts, lastErr))
}

// ParseRetryAfter reads a Retry-After header value — delay-seconds or
// an HTTP-date — into a duration. 0 means absent or unusable (past
// dates included), so callers can fall back to their own backoff.
func ParseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// DoStream executes req once, with no retries, no per-attempt timeout
// and no body-rewind requirement: the request body may be an unbuffered
// stream (a client upload passing through a proxy) and the response may
// be an unbounded stream (NDJSON pairs, a standing-query watch). The
// request still carries the stable X-Request-Id and — when ctx holds a
// trace span — a traceparent naming an "rclient.stream" child span,
// which is ended when the returned body is closed so the span covers
// the full transfer, not just the headers.
func (c *Client) DoStream(ctx context.Context, req *http.Request) (*http.Response, error) {
	if req.Header.Get(RequestIDHeader) == "" {
		req.Header.Set(RequestIDHeader, newRequestID())
	}
	sp := trace.FromContext(ctx).Child("rclient.stream")
	sp.SetAttr("method", req.Method)
	sp.SetAttr("url", req.URL.String())
	if sp != nil {
		req.Header.Set("traceparent", sp.TraceParent())
	}
	resp, err := c.httpClient().Do(req.WithContext(ctx))
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	resp.Body = endSpanBody{ReadCloser: resp.Body, sp: sp}
	return resp, nil
}

// endSpanBody ends the stream span when the caller finishes the body.
type endSpanBody struct {
	io.ReadCloser
	sp *trace.Span
}

func (b endSpanBody) Close() error {
	err := b.ReadCloser.Close()
	b.sp.End()
	return err
}

// attempt runs one try under the per-attempt timeout. On success the
// response body owns the attempt's cancel func (released on Close).
func (c *Client) attempt(ctx context.Context, req *http.Request) (*http.Response, error) {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if t := c.attemptTimeout(); t > 0 {
		actx, cancel = context.WithTimeout(ctx, t)
	}
	resp, err := c.httpClient().Do(req.WithContext(actx))
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// Get issues a GET with retries.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, req)
}

// Post issues a POST with retries. body is buffered so retries can rewind
// it; see RetryPOST for when transport errors are retried.
func (c *Client) Post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	return c.bodyRequest(ctx, http.MethodPost, url, contentType, body)
}

// Put issues a PUT with retries.
func (c *Client) Put(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	return c.bodyRequest(ctx, http.MethodPut, url, contentType, body)
}

// Delete issues a DELETE with retries.
func (c *Client) Delete(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, req)
}

func (c *Client) bodyRequest(ctx context.Context, method, url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.Do(ctx, req)
}
