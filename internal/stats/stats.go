// Package stats provides the instrumentation the performance evaluation is
// built on: work counters shared by every join algorithm (distance
// computations, candidates, node visits, page I/Os), wall-clock stopwatches,
// and aligned-table / CSV reporters used by the reproduction harness.
package stats

import (
	"sync/atomic"
	"time"
)

// Counters accumulates the work metrics of one algorithm run. All increments
// are atomic so parallel joins can share one Counters; reads via Snapshot
// are consistent enough for reporting (the algorithms quiesce before the
// harness reads).
type Counters struct {
	distComps  atomic.Int64 // full (or early-exited) distance evaluations
	candidates atomic.Int64 // candidate pairs inspected before the distance test
	results    atomic.Int64 // pairs reported
	nodeVisits atomic.Int64 // index nodes touched during the join
	pageReads  atomic.Int64 // simulated page fetches (external algorithms)
	pageWrites atomic.Int64 // simulated page writes (external algorithms)
}

// AddDistComps records n distance evaluations.
func (c *Counters) AddDistComps(n int64) { c.distComps.Add(n) }

// AddCandidates records n candidate pairs inspected.
func (c *Counters) AddCandidates(n int64) { c.candidates.Add(n) }

// AddResults records n reported pairs.
func (c *Counters) AddResults(n int64) { c.results.Add(n) }

// AddNodeVisits records n index-node visits.
func (c *Counters) AddNodeVisits(n int64) { c.nodeVisits.Add(n) }

// AddPageReads records n simulated page reads.
func (c *Counters) AddPageReads(n int64) { c.pageReads.Add(n) }

// AddPageWrites records n simulated page writes.
func (c *Counters) AddPageWrites(n int64) { c.pageWrites.Add(n) }

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.distComps.Store(0)
	c.candidates.Store(0)
	c.results.Store(0)
	c.nodeVisits.Store(0)
	c.pageReads.Store(0)
	c.pageWrites.Store(0)
}

// Snapshot is a plain-value copy of a Counters, safe to store and compare.
type Snapshot struct {
	DistComps  int64
	Candidates int64
	Results    int64
	NodeVisits int64
	PageReads  int64
	PageWrites int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		DistComps:  c.distComps.Load(),
		Candidates: c.candidates.Load(),
		Results:    c.results.Load(),
		NodeVisits: c.nodeVisits.Load(),
		PageReads:  c.pageReads.Load(),
		PageWrites: c.pageWrites.Load(),
	}
}

// Sub returns the element-wise difference s − o, for measuring one phase of
// a longer run.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		DistComps:  s.DistComps - o.DistComps,
		Candidates: s.Candidates - o.Candidates,
		Results:    s.Results - o.Results,
		NodeVisits: s.NodeVisits - o.NodeVisits,
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
	}
}

// CandidateRatio returns candidates per result (the selectivity of the
// filtering step); 0 when there are no results.
func (s Snapshot) CandidateRatio() float64 {
	if s.Results == 0 {
		return 0
	}
	return float64(s.Candidates) / float64(s.Results)
}

// Stopwatch measures elapsed wall-clock time across named phases.
type Stopwatch struct {
	start time.Time
}

// Start returns a running stopwatch.
func Start() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since Start.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Lap returns the time since Start and restarts the watch.
func (s *Stopwatch) Lap() time.Duration {
	d := time.Since(s.start)
	s.start = time.Now()
	return d
}
