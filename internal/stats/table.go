package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of an experiment report and renders them as an
// aligned text table (for the terminal) or CSV (for plotting). The
// reproduction harness builds one Table per paper figure/table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row, formatting each cell with %v. It panics if the cell
// count disagrees with the header count (a malformed experiment report
// should fail loudly, not misalign silently).
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row of %d cells in a %d-column table %q", len(cells), len(t.Headers), t.Title))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.001 && v > -0.001):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV with the title as a leading comment.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "# %s\n", t.Title)
	}
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}
