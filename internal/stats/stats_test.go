package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrentAndSnapshot(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.AddDistComps(1)
				c.AddCandidates(2)
				c.AddResults(1)
				c.AddNodeVisits(3)
				c.AddPageReads(1)
				c.AddPageWrites(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	total := int64(workers * each)
	if s.DistComps != total || s.Candidates != 2*total || s.Results != total ||
		s.NodeVisits != 3*total || s.PageReads != total || s.PageWrites != total {
		t.Errorf("snapshot %+v, want multiples of %d", s, total)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Error("Reset left residue")
	}
}

func TestSnapshotSubAndRatio(t *testing.T) {
	a := Snapshot{DistComps: 10, Candidates: 20, Results: 5, NodeVisits: 7, PageReads: 2, PageWrites: 1}
	b := Snapshot{DistComps: 4, Candidates: 8, Results: 2, NodeVisits: 3, PageReads: 1, PageWrites: 1}
	d := a.Sub(b)
	if d.DistComps != 6 || d.Candidates != 12 || d.Results != 3 || d.NodeVisits != 4 || d.PageReads != 1 || d.PageWrites != 0 {
		t.Errorf("Sub = %+v", d)
	}
	if got := a.CandidateRatio(); got != 4 {
		t.Errorf("CandidateRatio = %g, want 4", got)
	}
	if got := (Snapshot{Candidates: 9}).CandidateRatio(); got != 0 {
		t.Errorf("zero-results ratio = %g, want 0", got)
	}
}

func TestStopwatch(t *testing.T) {
	sw := Start()
	time.Sleep(5 * time.Millisecond)
	if e := sw.Elapsed(); e < 4*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 4ms", e)
	}
	lap := sw.Lap()
	if lap < 4*time.Millisecond {
		t.Errorf("Lap = %v, want >= 4ms", lap)
	}
	if e := sw.Elapsed(); e > lap {
		t.Errorf("Elapsed after Lap = %v, not restarted", e)
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("F1", "n", "algo", "ms")
	tb.AddRow(1000, "ekdb", 1.5)
	tb.AddRow(200000, "brute", 12345.678)
	s := tb.String()
	if !strings.Contains(s, "== F1 ==") {
		t.Errorf("missing title in %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	// Columns align: "algo" header starts at the same offset as "ekdb".
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "algo") != strings.Index(row, "ekdb") {
		t.Errorf("columns misaligned:\n%s\n%s", hdr, row)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("fig", "a", "b")
	tb.AddRow("x", 2.0)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# fig\na,b\nx,2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tb.AddRow(1)
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{2, "2"},
		{-3, "-3"},
		{0, "0"},
		{0.5, "0.5"},
		{0.0001234, "0.000123"},
		{1234.5678, "1235"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
