// Package vec provides the numeric kernel for the similarity-join library:
// Minkowski metrics over float64 vectors, threshold ("within ε") tests with
// early exit, and axis-aligned boxes with minimum/maximum distance bounds.
//
// Everything in this package is allocation-free on the hot path. Vectors are
// plain []float64 slices; callers guarantee equal lengths (enforced only in
// debug-style helpers, not in the per-pair kernels, which are called O(N²)
// times in the worst case).
package vec

import (
	"fmt"
	"math"
)

// Metric identifies a Minkowski distance function.
type Metric int

const (
	// L2 is the Euclidean metric. It is the default everywhere.
	L2 Metric = iota
	// L1 is the Manhattan (city-block) metric.
	L1
	// Linf is the maximum (Chebyshev) metric.
	Linf
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case Linf:
		return "Linf"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ParseMetric converts a name such as "L2", "l1" or "linf" to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "L2", "l2", "euclidean":
		return L2, nil
	case "L1", "l1", "manhattan":
		return L1, nil
	case "Linf", "linf", "LINF", "chebyshev", "max":
		return Linf, nil
	}
	return L2, fmt.Errorf("vec: unknown metric %q", s)
}

// Valid reports whether m is one of the defined metrics.
func (m Metric) Valid() bool { return m == L2 || m == L1 || m == Linf }

// Dist returns the distance between a and b under metric m.
func Dist(m Metric, a, b []float64) float64 {
	switch m {
	case L2:
		return math.Sqrt(DistSqL2(a, b))
	case L1:
		return DistL1(a, b)
	default:
		return DistLinf(a, b)
	}
}

// DistSqL2 returns the squared Euclidean distance between a and b. The
// body is unrolled four-wide with an up-front reslice so the compiler can
// eliminate bounds checks — this function and WithinSqL2 together are the
// majority of cycles in every L2 join.
func DistSqL2(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// DistL1 returns the Manhattan distance between a and b.
func DistL1(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// DistLinf returns the Chebyshev distance between a and b.
func DistLinf(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		if d > s {
			s = d
		}
	}
	return s
}

// Threshold precomputes the comparison constant used by Within for metric m
// and radius eps: eps² for L2 (so the square root is never taken), eps
// itself otherwise.
func Threshold(m Metric, eps float64) float64 {
	if m == L2 {
		return eps * eps
	}
	return eps
}

// Within reports whether dist(a, b) ≤ eps under metric m, where t must be
// Threshold(m, eps). It abandons the accumulation as soon as the partial sum
// proves the pair is out of range; for high-dimensional rejection-heavy
// workloads this is the single most important constant factor in the
// library.
func Within(m Metric, a, b []float64, t float64) bool {
	switch m {
	case L2:
		return WithinSqL2(a, b, t)
	case L1:
		return WithinL1(a, b, t)
	default:
		return WithinLinf(a, b, t)
	}
}

// WithinSqL2 reports whether the squared L2 distance of a and b is ≤ epsSq,
// abandoning the accumulation once the running sum exceeds epsSq. The loop
// is unrolled four-wide (one exit test per four dimensions): the unrolled
// accumulation pipelines better, and checking the bound every coordinate
// saves at most three subtractions when it fires.
func WithinSqL2(a, b []float64, epsSq float64) bool {
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		if s > epsSq {
			return false
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s <= epsSq
}

// WithinL1 reports whether the L1 distance of a and b is ≤ eps, with early
// exit.
func WithinL1(a, b []float64, eps float64) bool {
	var s float64
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		s += d
		if s > eps {
			return false
		}
	}
	return true
}

// WithinLinf reports whether the L∞ distance of a and b is ≤ eps. Every
// coordinate is an exit opportunity.
func WithinLinf(a, b []float64, eps float64) bool {
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same length and identical
// coordinates.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if av != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}
