package vec

import (
	"fmt"
	"math"
	"strings"
)

// Box is an axis-aligned hyper-rectangle [Lo[i], Hi[i]] per dimension. The
// zero Box has no dimensions; use NewEmptyBox or BoundingBox to construct a
// useful one. Boxes are the region vocabulary shared by the tree-based join
// algorithms (ε-kdB tree, k-d tree, R-tree).
type Box struct {
	Lo, Hi []float64
}

// NewEmptyBox returns a d-dimensional box that contains nothing: every lower
// bound is +Inf and every upper bound is -Inf, so the first Extend fixes it.
func NewEmptyBox(d int) Box {
	b := Box{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := 0; i < d; i++ {
		b.Lo[i] = math.Inf(1)
		b.Hi[i] = math.Inf(-1)
	}
	return b
}

// NewBox returns a box with the given bounds. It panics if the slices differ
// in length or any lower bound exceeds its upper bound, because a malformed
// box silently corrupts every downstream pruning decision.
func NewBox(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("vec: box bounds of different dimension %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("vec: inverted box bound in dimension %d: [%g, %g]", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Empty reports whether the box contains no point (any inverted bound).
func (b Box) Empty() bool {
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	return Box{Lo: Clone(b.Lo), Hi: Clone(b.Hi)}
}

// Extend grows the box in place to contain point p.
func (b Box) Extend(p []float64) {
	for i, v := range p {
		if v < b.Lo[i] {
			b.Lo[i] = v
		}
		if v > b.Hi[i] {
			b.Hi[i] = v
		}
	}
}

// ExtendBox grows the box in place to contain the box o.
func (b Box) ExtendBox(o Box) {
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] {
			b.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > b.Hi[i] {
			b.Hi[i] = o.Hi[i]
		}
	}
}

// Contains reports whether point p lies inside the (closed) box.
func (b Box) Contains(p []float64) bool {
	for i, v := range p {
		if v < b.Lo[i] || v > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] || o.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one point.
func (b Box) Intersects(o Box) bool {
	for i := range b.Lo {
		if b.Lo[i] > o.Hi[i] || o.Lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// gap returns the per-dimension separation of b and o in dimension i (zero
// if the projections overlap).
func (b Box) gap(o Box, i int) float64 {
	switch {
	case b.Lo[i] > o.Hi[i]:
		return b.Lo[i] - o.Hi[i]
	case o.Lo[i] > b.Hi[i]:
		return o.Lo[i] - b.Hi[i]
	default:
		return 0
	}
}

// MinDist returns the minimum distance under metric m between any point of b
// and any point of o. It is the pruning bound for tree joins: if
// MinDist > ε, no pair spanning the two boxes can qualify.
func (b Box) MinDist(m Metric, o Box) float64 {
	switch m {
	case L2:
		var s float64
		for i := range b.Lo {
			g := b.gap(o, i)
			s += g * g
		}
		return math.Sqrt(s)
	case L1:
		var s float64
		for i := range b.Lo {
			s += b.gap(o, i)
		}
		return s
	default:
		var s float64
		for i := range b.Lo {
			if g := b.gap(o, i); g > s {
				s = g
			}
		}
		return s
	}
}

// MinDistPoint returns the minimum distance under metric m between point p
// and the box.
func (b Box) MinDistPoint(m Metric, p []float64) float64 {
	switch m {
	case L2:
		var s float64
		for i, v := range p {
			g := pointGap(v, b.Lo[i], b.Hi[i])
			s += g * g
		}
		return math.Sqrt(s)
	case L1:
		var s float64
		for i, v := range p {
			s += pointGap(v, b.Lo[i], b.Hi[i])
		}
		return s
	default:
		var s float64
		for i, v := range p {
			if g := pointGap(v, b.Lo[i], b.Hi[i]); g > s {
				s = g
			}
		}
		return s
	}
}

func pointGap(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// WithinDist reports whether MinDist(m, o) ≤ eps without computing a square
// root for L2 (t must be Threshold(m, eps)). Early-exits per dimension.
func (b Box) WithinDist(m Metric, o Box, t float64) bool {
	switch m {
	case L2:
		var s float64
		for i := range b.Lo {
			g := b.gap(o, i)
			s += g * g
			if s > t {
				return false
			}
		}
		return true
	case L1:
		var s float64
		for i := range b.Lo {
			s += b.gap(o, i)
			if s > t {
				return false
			}
		}
		return true
	default:
		for i := range b.Lo {
			if b.gap(o, i) > t {
				return false
			}
		}
		return true
	}
}

// Margin returns the sum of the box's edge lengths (the R*-tree split
// heuristic quantity).
func (b Box) Margin() float64 {
	var s float64
	for i := range b.Lo {
		s += b.Hi[i] - b.Lo[i]
	}
	return s
}

// Volume returns the product of the box's edge lengths.
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// EnlargedVolume returns the volume of the smallest box containing both b
// and o, without materializing it.
func (b Box) EnlargedVolume(o Box) float64 {
	v := 1.0
	for i := range b.Lo {
		lo, hi := b.Lo[i], b.Hi[i]
		if o.Lo[i] < lo {
			lo = o.Lo[i]
		}
		if o.Hi[i] > hi {
			hi = o.Hi[i]
		}
		v *= hi - lo
	}
	return v
}

// OverlapVolume returns the volume of the intersection of b and o (zero if
// disjoint).
func (b Box) OverlapVolume(o Box) float64 {
	v := 1.0
	for i := range b.Lo {
		lo, hi := b.Lo[i], b.Hi[i]
		if o.Lo[i] > lo {
			lo = o.Lo[i]
		}
		if o.Hi[i] < hi {
			hi = o.Hi[i]
		}
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Center writes the box center into dst (which must have length Dims) and
// returns it; dst may be nil, in which case a new slice is allocated.
func (b Box) Center(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(b.Lo))
	}
	for i := range b.Lo {
		dst[i] = b.Lo[i] + (b.Hi[i]-b.Lo[i])/2
	}
	return dst
}

// PointBox returns the degenerate box covering exactly point p. The returned
// box aliases copies of p, not p itself.
func PointBox(p []float64) Box {
	return Box{Lo: Clone(p), Hi: Clone(p)}
}

// BoundingBox returns the smallest box containing all points produced by
// iterating i over [0, n) and fetching at(i). It panics if n == 0 because an
// empty bounding box has no meaningful dimensionality.
func BoundingBox(n int, at func(int) []float64) Box {
	if n == 0 {
		panic("vec: bounding box of zero points")
	}
	first := at(0)
	b := Box{Lo: Clone(first), Hi: Clone(first)}
	for i := 1; i < n; i++ {
		b.Extend(at(i))
	}
	return b
}

// String renders the box as [lo…hi]×… for debugging.
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i := range b.Lo {
		if i > 0 {
			sb.WriteString(" × ")
		}
		fmt.Fprintf(&sb, "[%g,%g]", b.Lo[i], b.Hi[i])
	}
	sb.WriteByte('}')
	return sb.String()
}
