package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randFlat builds a deterministic point set with clustered structure so
// every eps below has both hits and misses.
func randFlat(t *testing.T, n, dims int, seed int64) Flat {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*dims)
	for i := 0; i < n; i++ {
		center := float64(rng.Intn(4))
		for k := 0; k < dims; k++ {
			data[i*dims+k] = center + rng.NormFloat64()*0.3
		}
	}
	return FlatView(dims, data)
}

// sortedBy returns 0..n-1 ordered by coordinate dim.
func sortedBy(f Flat, dim int) []int32 {
	idx := make([]int32, f.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		return f.Data[int(idx[a])*f.Dims+dim] < f.Data[int(idx[b])*f.Dims+dim]
	})
	return idx
}

type pair struct{ i, j int32 }

func canon(p pair) pair {
	if p.i > p.j {
		return pair{p.j, p.i}
	}
	return p
}

// referencePairs computes the expected self-join pair set with the
// original slice predicate — the oracle the flat kernels must match.
func referencePairs(f Flat, m Metric, eps float64) map[pair]bool {
	th := Threshold(m, eps)
	out := make(map[pair]bool)
	for i := 0; i < f.Len(); i++ {
		for j := i + 1; j < f.Len(); j++ {
			if Within(m, f.At(i), f.At(j), th) {
				out[pair{int32(i), int32(j)}] = true
			}
		}
	}
	return out
}

func samePairs(t *testing.T, name string, want map[pair]bool, got map[pair]bool) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Errorf("%s: missing pair %v", name, p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("%s: extra pair %v", name, p)
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	f := randFlat(t, 17, 5, 1)
	g := FlatFromSlices(f.Slices())
	if g.Dims != f.Dims || len(g.Data) != len(f.Data) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g.Dims, len(g.Data), f.Dims, len(f.Data))
	}
	for i, v := range f.Data {
		if g.Data[i] != v {
			t.Fatalf("round trip changed Data[%d]: %g vs %g", i, g.Data[i], v)
		}
	}
}

func TestSelfSweepFlatMatchesReference(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 4, 5, 8, 16, 33} {
		for _, m := range []Metric{L2, L1, Linf} {
			f := randFlat(t, 120, dims, int64(dims)*7+int64(m))
			for _, eps := range []float64{0.1, 0.5, 1.2} {
				want := referencePairs(f, m, eps)
				for _, sweepDim := range []int{0, dims - 1} {
					idx := sortedBy(f, sweepDim)
					got := make(map[pair]bool)
					cand, res := SelfSweepFlat(m, f, idx, sweepDim, eps, Threshold(m, eps), func(i, j int32) {
						got[canon(pair{i, j})] = true
					})
					samePairs(t, m.String(), want, got)
					if res != int64(len(got)) || cand < res {
						t.Fatalf("%s d%d: res %d != %d hits, cand %d", m, dims, res, len(got), cand)
					}
				}
			}
		}
	}
}

func TestCrossSweepFlatMatchesReference(t *testing.T) {
	for _, dims := range []int{1, 3, 8, 17} {
		for _, m := range []Metric{L2, L1, Linf} {
			fx := randFlat(t, 90, dims, int64(dims)*13+int64(m))
			fy := randFlat(t, 70, dims, int64(dims)*29+int64(m))
			eps := 0.6
			th := Threshold(m, eps)
			want := make(map[pair]bool)
			for i := 0; i < fx.Len(); i++ {
				for j := 0; j < fy.Len(); j++ {
					if Within(m, fx.At(i), fy.At(j), th) {
						want[pair{int32(i), int32(j)}] = true
					}
				}
			}
			sweepDim := dims / 2
			got := make(map[pair]bool)
			CrossSweepFlat(m, fx, fy, sortedBy(fx, sweepDim), sortedBy(fy, sweepDim), sweepDim, eps, th, func(xi, yi int32) {
				got[pair{xi, yi}] = true
			})
			samePairs(t, m.String(), want, got)
		}
	}
}

func TestProbeKernelsMatchReference(t *testing.T) {
	for _, m := range []Metric{L2, L1, Linf} {
		f := randFlat(t, 80, 7, 3+int64(m))
		eps := 0.7
		th := Threshold(m, eps)
		want := referencePairs(f, m, eps)

		gotList := make(map[pair]bool)
		gotRange := make(map[pair]bool)
		gotQuery := make(map[pair]bool)
		ys := make([]int32, f.Len())
		for i := range ys {
			ys[i] = int32(i)
		}
		for i := 0; i < f.Len(); i++ {
			i := int32(i)
			ProbeListFlat(m, f, i, f, ys[i+1:], th, func(yi int32) { gotList[pair{i, yi}] = true })
			ProbeRangeFlat(m, f, i, f, int(i)+1, f.Len(), th, func(j int32) { gotRange[pair{i, j}] = true })
			ProbeQueryFlat(m, f.At(int(i)), f, ys[i+1:], th, func(yi int32) { gotQuery[pair{i, yi}] = true })
		}
		samePairs(t, "ProbeListFlat/"+m.String(), want, gotList)
		samePairs(t, "ProbeRangeFlat/"+m.String(), want, gotRange)
		samePairs(t, "ProbeQueryFlat/"+m.String(), want, gotQuery)
	}
}

// TestFlatKernelsEpsBoundary pins the inclusive contract: pairs at exactly
// ε are in, pairs one ULP past it are out. 0.25 and its square are exactly
// representable, so there is no rounding slack in the expected answer.
func TestFlatKernelsEpsBoundary(t *testing.T) {
	const eps = 0.25
	data := []float64{
		0, 0, // 0: origin
		eps, 0, // 1: at exactly eps (L2, L1, Linf)
		math.Nextafter(eps, 1), 0, // 2: one ULP past eps
		0.1, 0.2, // 3: inside for L2/L1/Linf
	}
	f := FlatView(2, data)
	for _, m := range []Metric{L2, L1, Linf} {
		idx := sortedBy(f, 0)
		got := make(map[pair]bool)
		SelfSweepFlat(m, f, idx, 0, eps, Threshold(m, eps), func(i, j int32) {
			got[canon(pair{i, j})] = true
		})
		if !got[pair{0, 1}] {
			t.Errorf("%s: pair at exactly eps not reported", m)
		}
		if got[pair{0, 2}] {
			t.Errorf("%s: pair one ULP past eps reported", m)
		}
		want := referencePairs(f, m, eps)
		samePairs(t, m.String(), want, got)
	}
}

// float32Reference mirrors the float32 kernels' accept predicate exactly
// (same accumulation order), so kernel output can be compared against an
// all-pairs evaluation of the same predicate.
func float32Reference(m Metric, f Flat, eps, th float64) map[pair]bool {
	out := make(map[pair]bool)
	n := f.Len()
	th32 := float32(th)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := f.Data32[i*f.Dims : (i+1)*f.Dims]
			b := f.Data32[j*f.Dims : (j+1)*f.Dims]
			var in bool
			switch m {
			case L2:
				in = withinSqL2Gen(a, b, th32)
			case L1:
				in = withinL1Gen(a, b, th32)
			default:
				in = withinLinfGen(a, b, th32)
			}
			if in {
				out[pair{int32(i), int32(j)}] = true
			}
		}
	}
	return out
}

// TestFlat32KernelsMatchPredicate holds every float32 kernel to the exact
// pair set of its own accept predicate: the padded window filters may only
// ever widen, never decide.
func TestFlat32KernelsMatchPredicate(t *testing.T) {
	for _, dims := range []int{2, 5, 8, 19} {
		for _, m := range []Metric{L2, L1, Linf} {
			f := randFlat(t, 100, dims, int64(dims)*17+int64(m))
			f.Data32 = ToFloat32(f.Data)
			eps := 0.5
			th := Threshold(m, eps)
			want := float32Reference(m, f, eps, th)

			idx := sortedBy(f, dims-1)
			got := make(map[pair]bool)
			SelfSweepFlat(m, f, idx, dims-1, eps, th, func(i, j int32) {
				got[canon(pair{i, j})] = true
			})
			samePairs(t, "f32 SelfSweep/"+m.String(), want, got)

			got = make(map[pair]bool)
			ys := make([]int32, f.Len())
			for i := range ys {
				ys[i] = int32(i)
			}
			for i := 0; i < f.Len(); i++ {
				i := int32(i)
				ProbeListFlat(m, f, i, f, ys[i+1:], th, func(yi int32) { got[pair{i, yi}] = true })
			}
			samePairs(t, "f32 ProbeList/"+m.String(), want, got)
		}
	}
}

// TestFlat32MixedViewsStayFloat64 pins the dispatch rule: a float32 mirror
// on only one side of a cross kernel must not switch precision.
func TestFlat32MixedViewsStayFloat64(t *testing.T) {
	fx := randFlat(t, 40, 3, 5)
	fy := randFlat(t, 40, 3, 6)
	fx.Data32 = ToFloat32(fx.Data)
	eps := 0.6
	th := Threshold(L2, eps)
	want := make(map[pair]bool)
	for i := 0; i < fx.Len(); i++ {
		for j := 0; j < fy.Len(); j++ {
			if Within(L2, fx.At(i), fy.At(j), th) {
				want[pair{int32(i), int32(j)}] = true
			}
		}
	}
	got := make(map[pair]bool)
	CrossSweepFlat(L2, fx, fy, sortedBy(fx, 0), sortedBy(fy, 0), 0, eps, th, func(xi, yi int32) {
		got[pair{xi, yi}] = true
	})
	samePairs(t, "mixed views", want, got)
}
