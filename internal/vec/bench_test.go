package vec

import (
	"math/rand"
	"testing"
)

func benchVectors(d int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	a, b := make([]float64, d), make([]float64, d)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	return a, b
}

func BenchmarkWithinSqL2(b *testing.B) {
	for _, d := range []int{4, 8, 16, 32, 64} {
		x, y := benchVectors(d)
		// Accepting threshold: full accumulation, no early exit.
		b.Run("accept/d="+itoa(d), func(b *testing.B) {
			t := 1e18
			for i := 0; i < b.N; i++ {
				if !WithinSqL2(x, y, t) {
					b.Fatal("unexpected reject")
				}
			}
		})
		// Rejecting threshold: early exit path.
		b.Run("reject/d="+itoa(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if WithinSqL2(x, y, 1e-9) {
					b.Fatal("unexpected accept")
				}
			}
		})
	}
}

func BenchmarkDistSqL2(b *testing.B) {
	for _, d := range []int{8, 32} {
		x, y := benchVectors(d)
		b.Run("d="+itoa(d), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += DistSqL2(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkWithinL1(b *testing.B) {
	x, y := benchVectors(16)
	for i := 0; i < b.N; i++ {
		WithinL1(x, y, 0.5)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
