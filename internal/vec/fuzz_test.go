package vec

import (
	"sort"
	"testing"
)

// FuzzFlatRoundTrip drives the flat kernels with adversarial coordinate
// patterns: the raw bytes become a quantized point set (1/256 granularity,
// so exact ε-boundary collisions are common), and every kernel's pair set
// must match an all-pairs evaluation of the metric's reference predicate —
// in float64 against Within, and in float32 against the kernels' own
// accept predicate (the padded windows may widen the candidate set, never
// change membership). The flat↔slices↔float32 conversions are checked to
// be lossless along the way.
func FuzzFlatRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(2), uint16(300))
	f.Add([]byte{255, 0, 255, 0, 1, 1, 1, 1, 128, 128}, uint8(1), uint16(65535))
	f.Add([]byte{64, 0, 64, 0, 64, 1, 64, 1, 63, 255, 64, 2}, uint8(3), uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, dimsRaw uint8, epsRaw uint16) {
		dims := int(dimsRaw)%9 + 1
		n := len(raw) / 2 / dims
		if n < 2 {
			return
		}
		if n > 48 {
			n = 48
		}
		// Quantized coordinates: int16 / 256 keeps everything finite,
		// modest, and full of exactly-representable boundary ties.
		data := make([]float64, n*dims)
		for i := range data {
			v := int16(raw[2*i]) | int16(raw[2*i+1])<<8
			data[i] = float64(v) / 256
		}
		eps := 1e-3 + float64(epsRaw)/65535*8
		fl := FlatView(dims, data)

		rt := FlatFromSlices(fl.Slices())
		for i, v := range fl.Data {
			if rt.Data[i] != v {
				t.Fatalf("flat->slices->flat changed Data[%d]: %g vs %g", i, rt.Data[i], v)
			}
		}
		m32 := ToFloat32(fl.Data)
		for i, v := range fl.Data {
			if m32[i] != float32(v) {
				t.Fatalf("ToFloat32 changed Data[%d]: %g vs %g", i, m32[i], float32(v))
			}
		}

		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sweepDim := dims - 1
		sort.Slice(idx, func(a, b int) bool {
			return data[int(idx[a])*dims+sweepDim] < data[int(idx[b])*dims+sweepDim]
		})
		ys := make([]int32, n)
		for i := range ys {
			ys[i] = int32(i)
		}

		for _, m := range []Metric{L2, L1, Linf} {
			th := Threshold(m, eps)

			want := referenceFuzzPairs(fl, m, th, nil)
			check := func(name string, got map[pair]bool) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d pairs, want %d (dims %d eps %g)", name, m, len(got), len(want), dims, eps)
				}
				for p := range got {
					if !want[p] {
						t.Fatalf("%s/%s: extra pair %v (dims %d eps %g)", name, m, p, dims, eps)
					}
				}
			}

			got := make(map[pair]bool)
			SelfSweepFlat(m, fl, idx, sweepDim, eps, th, func(i, j int32) { got[canon(pair{i, j})] = true })
			check("SelfSweepFlat", got)

			got = make(map[pair]bool)
			for i := 0; i < n; i++ {
				i := int32(i)
				ProbeRangeFlat(m, fl, i, fl, int(i)+1, n, th, func(j int32) { got[pair{i, j}] = true })
			}
			check("ProbeRangeFlat", got)

			got = make(map[pair]bool)
			CrossSweepFlat(m, fl, fl, idx, idx, sweepDim, eps, th, func(xi, yi int32) {
				if xi != yi {
					got[canon(pair{xi, yi})] = true
				}
			})
			check("CrossSweepFlat", got)

			// Float32 pass over the mirrored view.
			f32 := fl
			f32.Data32 = m32
			want32 := referenceFuzzPairs(f32, m, th, m32)
			got = make(map[pair]bool)
			SelfSweepFlat(m, f32, idx, sweepDim, eps, th, func(i, j int32) { got[canon(pair{i, j})] = true })
			if len(got) != len(want32) {
				t.Fatalf("f32 SelfSweepFlat/%s: %d pairs, want %d (dims %d eps %g)", m, len(got), len(want32), dims, eps)
			}
			for p := range got {
				if !want32[p] {
					t.Fatalf("f32 SelfSweepFlat/%s: extra pair %v (dims %d eps %g)", m, p, dims, eps)
				}
			}
		}
	})
}

// referenceFuzzPairs evaluates the all-pairs reference predicate: Within
// over float64 slices when m32 is nil, the float32 kernels' own predicate
// otherwise.
func referenceFuzzPairs(f Flat, m Metric, th float64, m32 []float32) map[pair]bool {
	out := make(map[pair]bool)
	n := f.Len()
	th32 := float32(th)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var in bool
			if m32 == nil {
				in = Within(m, f.At(i), f.At(j), th)
			} else {
				a := m32[i*f.Dims : (i+1)*f.Dims]
				b := m32[j*f.Dims : (j+1)*f.Dims]
				switch m {
				case L2:
					in = withinSqL2Gen(a, b, th32)
				case L1:
					in = withinL1Gen(a, b, th32)
				default:
					in = withinLinfGen(a, b, th32)
				}
			}
			if in {
				out[pair{int32(i), int32(j)}] = true
			}
		}
	}
	return out
}
