package vec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randBox(rng *rand.Rand, d int) Box {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return NewBox(lo, hi)
}

// randPointIn returns a uniform point inside b.
func randPointIn(rng *rand.Rand, b Box) []float64 {
	p := make([]float64, b.Dims())
	for i := range p {
		p[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return p
}

func TestNewBoxPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dimension mismatch", func() { NewBox([]float64{0}, []float64{1, 2}) })
	mustPanic("inverted bound", func() { NewBox([]float64{2}, []float64{1}) })
	mustPanic("empty bounding box", func() { BoundingBox(0, nil) })
}

func TestEmptyBoxLifecycle(t *testing.T) {
	b := NewEmptyBox(3)
	if !b.Empty() {
		t.Fatal("fresh empty box is not Empty")
	}
	b.Extend([]float64{1, 2, 3})
	if b.Empty() {
		t.Fatal("box containing a point is Empty")
	}
	if !b.Contains([]float64{1, 2, 3}) {
		t.Fatal("box does not contain its only point")
	}
	b.Extend([]float64{-1, 5, 0})
	for _, p := range [][]float64{{1, 2, 3}, {-1, 5, 0}, {0, 3, 1.5}} {
		if !b.Contains(p) {
			t.Errorf("box %v does not contain %v", b, p)
		}
	}
	if b.Contains([]float64{2, 2, 2}) {
		t.Errorf("box %v contains out-of-range point", b)
	}
}

func TestBoundingBoxContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = randVec(rng, 6)
	}
	b := BoundingBox(len(pts), func(i int) []float64 { return pts[i] })
	for i, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("bounding box misses point %d", i)
		}
	}
	// Bounds must be tight: each face touched by some point.
	for dim := 0; dim < 6; dim++ {
		loTouched, hiTouched := false, false
		for _, p := range pts {
			if p[dim] == b.Lo[dim] {
				loTouched = true
			}
			if p[dim] == b.Hi[dim] {
				hiTouched = true
			}
		}
		if !loTouched || !hiTouched {
			t.Fatalf("dimension %d bound not tight", dim)
		}
	}
}

func TestIntersectsSymmetricAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a, b := randBox(r, d), randBox(r, d)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		// Intersects ⇔ MinDist == 0 under every metric.
		for _, m := range []Metric{L2, L1, Linf} {
			if (a.MinDist(m, b) == 0) != a.Intersects(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestMinDistLowerBound: MinDist(a.box, b.box) ≤ Dist(p, q) for any points
// p ∈ a, q ∈ b. This is the property all tree pruning depends on.
func TestMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(6)
		a, b := randBox(rng, d), randBox(rng, d)
		p, q := randPointIn(rng, a), randPointIn(rng, b)
		for _, m := range []Metric{L2, L1, Linf} {
			md := a.MinDist(m, b)
			pd := Dist(m, p, q)
			if md > pd+1e-9 {
				t.Fatalf("%v: MinDist %g exceeds point distance %g", m, md, pd)
			}
		}
	}
}

func TestMinDistPointLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(6)
		b := randBox(rng, d)
		p := randVec(rng, d)
		q := randPointIn(rng, b)
		for _, m := range []Metric{L2, L1, Linf} {
			md := b.MinDistPoint(m, p)
			pd := Dist(m, p, q)
			if md > pd+1e-9 {
				t.Fatalf("%v: MinDistPoint %g exceeds point distance %g", m, md, pd)
			}
		}
		if b.Contains(p) && b.MinDistPoint(L2, p) != 0 {
			t.Fatal("MinDistPoint of contained point is nonzero")
		}
	}
}

func TestWithinDistAgreesWithMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a, b := randBox(r, d), randBox(r, d)
		eps := r.Float64() * 2
		for _, m := range []Metric{L2, L1, Linf} {
			want := a.MinDist(m, b) <= eps
			got := a.WithinDist(m, b, Threshold(m, eps))
			// Allow boundary-only disagreement from the sqrt comparison.
			if got != want && math.Abs(a.MinDist(m, b)-eps) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestKnownMinDist(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{1, 1})
	b := NewBox([]float64{4, 5}, []float64{6, 7})
	if got := a.MinDist(L2, b); !almostEqual(got, 5) {
		t.Errorf("L2 MinDist = %g, want 5", got)
	}
	if got := a.MinDist(L1, b); !almostEqual(got, 7) {
		t.Errorf("L1 MinDist = %g, want 7", got)
	}
	if got := a.MinDist(Linf, b); !almostEqual(got, 4) {
		t.Errorf("Linf MinDist = %g, want 4", got)
	}
}

func TestVolumeMarginOverlap(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{2, 3})
	if got := a.Volume(); !almostEqual(got, 6) {
		t.Errorf("Volume = %g, want 6", got)
	}
	if got := a.Margin(); !almostEqual(got, 5) {
		t.Errorf("Margin = %g, want 5", got)
	}
	b := NewBox([]float64{1, 1}, []float64{4, 4})
	if got := a.OverlapVolume(b); !almostEqual(got, 2) {
		t.Errorf("OverlapVolume = %g, want 2", got)
	}
	if got := a.EnlargedVolume(b); !almostEqual(got, 16) {
		t.Errorf("EnlargedVolume = %g, want 16", got)
	}
	far := NewBox([]float64{10, 10}, []float64{11, 11})
	if got := a.OverlapVolume(far); got != 0 {
		t.Errorf("disjoint OverlapVolume = %g, want 0", got)
	}
}

func TestEnlargedVolumeMatchesExplicitUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(5)
		a, b := randBox(rng, d), randBox(rng, d)
		u := a.Clone()
		u.ExtendBox(b)
		if !almostEqual(a.EnlargedVolume(b), u.Volume()) {
			t.Fatalf("EnlargedVolume %g != union volume %g", a.EnlargedVolume(b), u.Volume())
		}
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			t.Fatal("union does not contain operands")
		}
	}
}

func TestCenterAndPointBox(t *testing.T) {
	b := NewBox([]float64{0, 2}, []float64{4, 2})
	c := b.Center(nil)
	if !Equal(c, []float64{2, 2}) {
		t.Errorf("Center = %v, want [2 2]", c)
	}
	dst := make([]float64, 2)
	if got := b.Center(dst); &got[0] != &dst[0] {
		t.Error("Center did not reuse dst")
	}
	p := []float64{1, 2, 3}
	pb := PointBox(p)
	if !pb.Contains(p) || pb.Volume() != 0 {
		t.Errorf("PointBox malformed: %v", pb)
	}
	p[0] = 99
	if pb.Lo[0] == 99 {
		t.Error("PointBox aliases input")
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox([]float64{0, 1}, []float64{2, 3})
	s := b.String()
	if !strings.Contains(s, "[0,2]") || !strings.Contains(s, "[1,3]") {
		t.Errorf("String() = %q, missing bounds", s)
	}
}
