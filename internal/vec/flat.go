package vec

import "fmt"

// Flat is a zero-copy view of a point set stored as one flat buffer of
// dims-contiguous blocks: point i occupies Data[i*Dims : (i+1)*Dims]. It is
// the layout every hot loop in the library runs over — no per-point slice
// headers, no pointer chasing, and leaf-vs-leaf sweeps walk memory in
// stride.
//
// Data32, when non-nil, is the float32 mirror of Data (same layout, same
// length). Kernels dispatched over a pair of views run in float32 exactly
// when both sides carry a mirror: half the memory traffic per candidate,
// which is what matters for memory-bandwidth-bound high-d workloads. The
// precision contract is documented in docs/KERNELS.md: coordinates are
// rounded once at the dataset boundary, the distance test accumulates in
// float32 against float32(Threshold(m, eps)), and only pairs within a few
// ULP of the ε boundary can decide differently from the float64 kernels.
type Flat struct {
	Dims   int
	Data   []float64
	Data32 []float32
}

// FlatView wraps a row-major buffer without copying. len(data) must be a
// multiple of dims.
func FlatView(dims int, data []float64) Flat {
	if dims < 1 {
		panic(fmt.Sprintf("vec: invalid dimensionality %d", dims))
	}
	if len(data)%dims != 0 {
		panic(fmt.Sprintf("vec: flat length %d not a multiple of dims %d", len(data), dims))
	}
	return Flat{Dims: dims, Data: data}
}

// Len returns the number of points in the view.
func (f Flat) Len() int { return len(f.Data) / f.Dims }

// At returns a view of point i, aliasing the underlying buffer.
func (f Flat) At(i int) []float64 {
	return f.Data[i*f.Dims : (i+1)*f.Dims : (i+1)*f.Dims]
}

// ToFloat32 converts a float64 coordinate buffer to its float32 mirror.
func ToFloat32(data []float64) []float32 {
	m := make([]float32, len(data))
	for i, v := range data {
		m[i] = float32(v)
	}
	return m
}

// FlatFromSlices packs per-point slices into a flat buffer (the inverse of
// Flat.Slices). All points must share len(pts[0]); it panics otherwise.
func FlatFromSlices(pts [][]float64) Flat {
	if len(pts) == 0 {
		panic("vec: FlatFromSlices of empty slice (dimensionality unknown)")
	}
	dims := len(pts[0])
	data := make([]float64, 0, len(pts)*dims)
	for _, p := range pts {
		if len(p) != dims {
			panic(fmt.Sprintf("vec: packing %d-dim point into %d-dim flat view", len(p), dims))
		}
		data = append(data, p...)
	}
	return FlatView(dims, data)
}

// Slices unpacks the view into per-point slices (copies, not aliases).
func (f Flat) Slices() [][]float64 {
	out := make([][]float64, f.Len())
	for i := range out {
		out[i] = Clone(f.At(i))
	}
	return out
}

// float is the coordinate type the generic kernels are instantiated over.
// float32 and float64 are distinct GC shapes, so each instantiation
// compiles to its own tight loop — no boxing, no dynamic dispatch.
type float interface {
	~float32 | ~float64
}

// f32WindowPad widens the sweep-window filters of the float32 kernels by a
// hair (relative). The accept predicate — float32-accumulated distance vs.
// float32 threshold — can round a pair *in* whose single-coordinate gap is
// marginally past ε, and the window filter must never drop a pair the
// predicate would accept, or engines with different sweep dimensions would
// disagree in float32 mode. 1e-4 relative dwarfs the worst-case float32
// accumulation error at any supported dimensionality and costs ~0.01%
// extra window width.
const f32WindowPad = 1 + 1e-4

// kernelThresholds resolves the comparison constants one time per kernel
// call (never per pair): the float64 threshold th is Threshold(m, eps) as
// everywhere else; the float32 side compares against float32(th) with the
// padded window.
func kernelThresholds(eps, th float64) (eps32, th32 float32) {
	return float32(eps) * f32WindowPad, float32(th)
}

// use32 reports whether a kernel over the two views should run in float32:
// both sides must carry a mirror.
func use32(a, b Flat) bool { return a.Data32 != nil && b.Data32 != nil }

// SelfSweepFlat enumerates the in-window pairs of one sweep-sorted index
// list over f and tests each with the metric's early-exit kernel, calling
// emit(i, j) (dataset indexes, list order) for every hit. idx must be
// sorted ascending on coordinate sweepDim; eps is the window width and th
// must be Threshold(m, eps). It returns the number of candidates tested
// and the number of hits — the caller charges its own counters, so the
// kernel itself stays free of shared state.
func SelfSweepFlat(m Metric, f Flat, idx []int32, sweepDim int, eps, th float64, emit func(i, j int32)) (cand, res int64) {
	if f.Data32 != nil {
		eps32, th32 := kernelThresholds(eps, th)
		switch m {
		case L2:
			return selfSweepL2(f.Data32, f.Dims, idx, sweepDim, eps32, th32, emit)
		case L1:
			return selfSweepL1(f.Data32, f.Dims, idx, sweepDim, eps32, th32, emit)
		default:
			return selfSweepLinf(f.Data32, f.Dims, idx, sweepDim, eps32, th32, emit)
		}
	}
	switch m {
	case L2:
		return selfSweepL2(f.Data, f.Dims, idx, sweepDim, eps, th, emit)
	case L1:
		return selfSweepL1(f.Data, f.Dims, idx, sweepDim, eps, th, emit)
	default:
		return selfSweepLinf(f.Data, f.Dims, idx, sweepDim, eps, th, emit)
	}
}

// CrossSweepFlat merges two sweep-sorted index lists, testing only pairs
// whose sweepDim coordinates differ by at most eps, and calls emit(xi, yi)
// for hits. Both lists must be sorted ascending on sweepDim; th must be
// Threshold(m, eps). Views fx and fy may alias (self-joins of adjacent
// stripes) or differ (two-set joins).
func CrossSweepFlat(m Metric, fx, fy Flat, xs, ys []int32, sweepDim int, eps, th float64, emit func(xi, yi int32)) (cand, res int64) {
	if use32(fx, fy) {
		eps32, th32 := kernelThresholds(eps, th)
		switch m {
		case L2:
			return crossSweepL2(fx.Data32, fy.Data32, fx.Dims, xs, ys, sweepDim, eps32, th32, emit)
		case L1:
			return crossSweepL1(fx.Data32, fy.Data32, fx.Dims, xs, ys, sweepDim, eps32, th32, emit)
		default:
			return crossSweepLinf(fx.Data32, fy.Data32, fx.Dims, xs, ys, sweepDim, eps32, th32, emit)
		}
	}
	switch m {
	case L2:
		return crossSweepL2(fx.Data, fy.Data, fx.Dims, xs, ys, sweepDim, eps, th, emit)
	case L1:
		return crossSweepL1(fx.Data, fy.Data, fx.Dims, xs, ys, sweepDim, eps, th, emit)
	default:
		return crossSweepLinf(fx.Data, fy.Data, fx.Dims, xs, ys, sweepDim, eps, th, emit)
	}
}

// ProbeListFlat tests point xi of fx against every index in ys over fy,
// calling emit(yi) for hits. th must be Threshold(m, eps). This is the
// cell-vs-cell kernel of the grid join and the generic "one point against
// an index list" sweep.
func ProbeListFlat(m Metric, fx Flat, xi int32, fy Flat, ys []int32, th float64, emit func(yi int32)) (cand, res int64) {
	if use32(fx, fy) {
		th32 := float32(th)
		switch m {
		case L2:
			return probeListL2(fx.Data32, int(xi), fy.Data32, fy.Dims, ys, th32, emit)
		case L1:
			return probeListL1(fx.Data32, int(xi), fy.Data32, fy.Dims, ys, th32, emit)
		default:
			return probeListLinf(fx.Data32, int(xi), fy.Data32, fy.Dims, ys, th32, emit)
		}
	}
	switch m {
	case L2:
		return probeListL2(fx.Data, int(xi), fy.Data, fy.Dims, ys, th, emit)
	case L1:
		return probeListL1(fx.Data, int(xi), fy.Data, fy.Dims, ys, th, emit)
	default:
		return probeListLinf(fx.Data, int(xi), fy.Data, fy.Dims, ys, th, emit)
	}
}

// ProbeRangeFlat tests point xi of fx against the contiguous index range
// [lo, hi) of fy, calling emit(j) for hits. The inner side walks memory
// sequentially — this is the nested-loop (brute) kernel, and the fastest
// per-candidate path in the package because every load is a stride-1
// prefetchable access.
func ProbeRangeFlat(m Metric, fx Flat, xi int32, fy Flat, lo, hi int, th float64, emit func(j int32)) (cand, res int64) {
	if use32(fx, fy) {
		th32 := float32(th)
		switch m {
		case L2:
			return probeRangeL2(fx.Data32, int(xi), fy.Data32, fy.Dims, lo, hi, th32, emit)
		case L1:
			return probeRangeL1(fx.Data32, int(xi), fy.Data32, fy.Dims, lo, hi, th32, emit)
		default:
			return probeRangeLinf(fx.Data32, int(xi), fy.Data32, fy.Dims, lo, hi, th32, emit)
		}
	}
	switch m {
	case L2:
		return probeRangeL2(fx.Data, int(xi), fy.Data, fy.Dims, lo, hi, th, emit)
	case L1:
		return probeRangeL1(fx.Data, int(xi), fy.Data, fy.Dims, lo, hi, th, emit)
	default:
		return probeRangeLinf(fx.Data, int(xi), fy.Data, fy.Dims, lo, hi, th, emit)
	}
}

// ProbeQueryFlat tests an external query point q against every index in ys
// over f, calling emit(yi) for hits. It always runs in float64 (the query
// is not part of any mirrored buffer); th must be Threshold(m, eps).
func ProbeQueryFlat(m Metric, q []float64, f Flat, ys []int32, th float64, emit func(yi int32)) (cand, res int64) {
	data, dims := f.Data, f.Dims
	switch m {
	case L2:
		for _, yi := range ys {
			iy := int(yi) * dims
			cand++
			if withinSqL2Gen(q, data[iy:iy+dims:iy+dims], th) {
				res++
				emit(yi)
			}
		}
	case L1:
		for _, yi := range ys {
			iy := int(yi) * dims
			cand++
			if withinL1Gen(q, data[iy:iy+dims:iy+dims], th) {
				res++
				emit(yi)
			}
		}
	default:
		for _, yi := range ys {
			iy := int(yi) * dims
			cand++
			if withinLinfGen(q, data[iy:iy+dims:iy+dims], th) {
				res++
				emit(yi)
			}
		}
	}
	return
}

// withinSqL2Gen is the generic early-exit squared-L2 predicate: four-wide
// unrolled accumulation in the same term order as WithinSqL2, with one exit
// test per two blocks. Check spacing is a pure performance knob — the sum
// only grows (squares are non-negative and float rounding is monotone), so
// any partial sum past epsSq forces the same reject the final sum would —
// and testing every other block keeps the dependency chain off the branch:
// eight dimensions of accumulation are in flight before a compare needs the
// running total.
func withinSqL2Gen[F float](a, b []F, epsSq F) bool {
	b = b[:len(a)]
	var s F
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		d0 = a[i+4] - b[i+4]
		d1 = a[i+5] - b[i+5]
		d2 = a[i+6] - b[i+6]
		d3 = a[i+7] - b[i+7]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		if s > epsSq {
			return false
		}
	}
	if i+4 <= len(a) {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		i += 4
		if s > epsSq {
			return false
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s <= epsSq
}

// withinL1Gen is the generic early-exit L1 predicate.
func withinL1Gen[F float](a, b []F, eps F) bool {
	b = b[:len(a)]
	var s F
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		s += d
		if s > eps {
			return false
		}
	}
	return true
}

// withinLinfGen is the generic early-exit L∞ predicate.
func withinLinfGen[F float](a, b []F, eps F) bool {
	b = b[:len(a)]
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}
