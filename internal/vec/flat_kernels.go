package vec

// This file holds the generic loop bodies behind the Flat kernel entry
// points. Each is instantiated once for float64 and once for float32 —
// distinct GC shapes, so the compiler emits two independent tight loops.
//
// The L2 distance test is written out inline in every loop: the four-wide
// unrolled accumulation is far past the inliner's budget as a helper, and
// a per-candidate call is exactly the overhead this package exists to
// remove. L1 and L∞ go through the shared predicates — they are off the
// default path and their loop bodies are cheap either way.

// selfSweepL2 is SelfSweepFlat's L2 loop: one sweep-sorted list against
// itself.
func selfSweepL2[F float](data []F, dims int, idx []int32, sweepDim int, eps, epsSq F, emit func(i, j int32)) (cand, res int64) {
	if dims == 16 {
		return selfSweepL2D16(data, idx, sweepDim, eps, epsSq, emit)
	}
	for a := 0; a+1 < len(idx); a++ {
		ia := int(idx[a]) * dims
		pa := data[ia : ia+dims : ia+dims]
		x := pa[sweepDim]
		for b := a + 1; b < len(idx); b++ {
			ib := int(idx[b]) * dims
			pb := data[ib : ib+dims : ib+dims]
			if pb[sweepDim]-x > eps {
				break
			}
			cand++
			var s F
			k := 0
			ok := true
			for ; k+8 <= dims; k += 8 {
				d0 := pa[k] - pb[k]
				d1 := pa[k+1] - pb[k+1]
				d2 := pa[k+2] - pb[k+2]
				d3 := pa[k+3] - pb[k+3]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				d0 = pa[k+4] - pb[k+4]
				d1 = pa[k+5] - pb[k+5]
				d2 = pa[k+6] - pb[k+6]
				d3 = pa[k+7] - pb[k+7]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				if s > epsSq {
					ok = false
					break
				}
			}
			if ok && k+4 <= dims {
				d0 := pa[k] - pb[k]
				d1 := pa[k+1] - pb[k+1]
				d2 := pa[k+2] - pb[k+2]
				d3 := pa[k+3] - pb[k+3]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				k += 4
				ok = s <= epsSq
			}
			if ok {
				for ; k < dims; k++ {
					d := pa[k] - pb[k]
					s += d * d
				}
				if s <= epsSq {
					res++
					emit(idx[a], idx[b])
				}
			}
		}
	}
	return
}

// crossSweepL2 is CrossSweepFlat's L2 loop: two sweep-sorted lists merged
// with an ε window.
func crossSweepL2[F float](dx, dy []F, dims int, xs, ys []int32, sweepDim int, eps, epsSq F, emit func(xi, yi int32)) (cand, res int64) {
	if dims == 16 {
		return crossSweepL2D16(dx, dy, xs, ys, sweepDim, eps, epsSq, emit)
	}
	lo := 0
	for _, xr := range xs {
		ix := int(xr) * dims
		px := dx[ix : ix+dims : ix+dims]
		v := px[sweepDim]
		for lo < len(ys) && dy[int(ys[lo])*dims+sweepDim] < v-eps {
			lo++
		}
		for w := lo; w < len(ys); w++ {
			iy := int(ys[w]) * dims
			py := dy[iy : iy+dims : iy+dims]
			if py[sweepDim]-v > eps {
				break
			}
			cand++
			var s F
			k := 0
			ok := true
			for ; k+8 <= dims; k += 8 {
				d0 := px[k] - py[k]
				d1 := px[k+1] - py[k+1]
				d2 := px[k+2] - py[k+2]
				d3 := px[k+3] - py[k+3]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				d0 = px[k+4] - py[k+4]
				d1 = px[k+5] - py[k+5]
				d2 = px[k+6] - py[k+6]
				d3 = px[k+7] - py[k+7]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				if s > epsSq {
					ok = false
					break
				}
			}
			if ok && k+4 <= dims {
				d0 := px[k] - py[k]
				d1 := px[k+1] - py[k+1]
				d2 := px[k+2] - py[k+2]
				d3 := px[k+3] - py[k+3]
				s += d0*d0 + d1*d1 + d2*d2 + d3*d3
				k += 4
				ok = s <= epsSq
			}
			if ok {
				for ; k < dims; k++ {
					d := px[k] - py[k]
					s += d * d
				}
				if s <= epsSq {
					res++
					emit(xr, ys[w])
				}
			}
		}
	}
	return
}

// selfSweepL2D16 is selfSweepL2 specialized to sixteen dimensions — the
// point of the paper's evaluation, and the default high-d benchmark case.
// Rows become array pointers so every trip count is a compile-time constant
// and no bounds check survives; the accumulation is the SAME four-wide block
// order and eight-dimension check spacing as the generic loop, fully
// unrolled and written out inline (the unrolled test is far past the inliner
// budget as a helper, and a per-candidate call costs as much as a block).
// That ordering is load-bearing: the float32 oracle tests compare against
// the generic predicate's rounding, term by term.
func selfSweepL2D16[F float](data []F, idx []int32, sweepDim int, eps, epsSq F, emit func(i, j int32)) (cand, res int64) {
	for a := 0; a+1 < len(idx); a++ {
		ia := int(idx[a]) * 16
		pa := (*[16]F)(data[ia:])
		x := pa[sweepDim]
		for b := a + 1; b < len(idx); b++ {
			ib := int(idx[b]) * 16
			pb := (*[16]F)(data[ib:])
			if pb[sweepDim]-x > eps {
				break
			}
			cand++
			d0 := pa[0] - pb[0]
			d1 := pa[1] - pb[1]
			d2 := pa[2] - pb[2]
			d3 := pa[3] - pb[3]
			s := d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = pa[4] - pb[4]
			d1 = pa[5] - pb[5]
			d2 = pa[6] - pb[6]
			d3 = pa[7] - pb[7]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s > epsSq {
				continue
			}
			d0 = pa[8] - pb[8]
			d1 = pa[9] - pb[9]
			d2 = pa[10] - pb[10]
			d3 = pa[11] - pb[11]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = pa[12] - pb[12]
			d1 = pa[13] - pb[13]
			d2 = pa[14] - pb[14]
			d3 = pa[15] - pb[15]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s <= epsSq {
				res++
				emit(idx[a], idx[b])
			}
		}
	}
	return
}

// crossSweepL2D16 is crossSweepL2 specialized to sixteen dimensions; see
// selfSweepL2D16.
func crossSweepL2D16[F float](dx, dy []F, xs, ys []int32, sweepDim int, eps, epsSq F, emit func(xi, yi int32)) (cand, res int64) {
	lo := 0
	for _, xr := range xs {
		ix := int(xr) * 16
		px := (*[16]F)(dx[ix:])
		v := px[sweepDim]
		for lo < len(ys) && dy[int(ys[lo])*16+sweepDim] < v-eps {
			lo++
		}
		for w := lo; w < len(ys); w++ {
			iy := int(ys[w]) * 16
			py := (*[16]F)(dy[iy:])
			if py[sweepDim]-v > eps {
				break
			}
			cand++
			d0 := px[0] - py[0]
			d1 := px[1] - py[1]
			d2 := px[2] - py[2]
			d3 := px[3] - py[3]
			s := d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = px[4] - py[4]
			d1 = px[5] - py[5]
			d2 = px[6] - py[6]
			d3 = px[7] - py[7]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s > epsSq {
				continue
			}
			d0 = px[8] - py[8]
			d1 = px[9] - py[9]
			d2 = px[10] - py[10]
			d3 = px[11] - py[11]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = px[12] - py[12]
			d1 = px[13] - py[13]
			d2 = px[14] - py[14]
			d3 = px[15] - py[15]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s <= epsSq {
				res++
				emit(xr, ys[w])
			}
		}
	}
	return
}

// selfSweepL1 is SelfSweepFlat's L1 loop.
func selfSweepL1[F float](data []F, dims int, idx []int32, sweepDim int, eps, th F, emit func(i, j int32)) (cand, res int64) {
	for a := 0; a+1 < len(idx); a++ {
		ia := int(idx[a]) * dims
		pa := data[ia : ia+dims : ia+dims]
		x := pa[sweepDim]
		for b := a + 1; b < len(idx); b++ {
			ib := int(idx[b]) * dims
			pb := data[ib : ib+dims : ib+dims]
			if pb[sweepDim]-x > eps {
				break
			}
			cand++
			if withinL1Gen(pa, pb, th) {
				res++
				emit(idx[a], idx[b])
			}
		}
	}
	return
}

// crossSweepL1 is CrossSweepFlat's L1 loop.
func crossSweepL1[F float](dx, dy []F, dims int, xs, ys []int32, sweepDim int, eps, th F, emit func(xi, yi int32)) (cand, res int64) {
	lo := 0
	for _, xr := range xs {
		ix := int(xr) * dims
		px := dx[ix : ix+dims : ix+dims]
		v := px[sweepDim]
		for lo < len(ys) && dy[int(ys[lo])*dims+sweepDim] < v-eps {
			lo++
		}
		for w := lo; w < len(ys); w++ {
			iy := int(ys[w]) * dims
			py := dy[iy : iy+dims : iy+dims]
			if py[sweepDim]-v > eps {
				break
			}
			cand++
			if withinL1Gen(px, py, th) {
				res++
				emit(xr, ys[w])
			}
		}
	}
	return
}

// selfSweepLinf is SelfSweepFlat's L∞ loop.
func selfSweepLinf[F float](data []F, dims int, idx []int32, sweepDim int, eps, th F, emit func(i, j int32)) (cand, res int64) {
	for a := 0; a+1 < len(idx); a++ {
		ia := int(idx[a]) * dims
		pa := data[ia : ia+dims : ia+dims]
		x := pa[sweepDim]
		for b := a + 1; b < len(idx); b++ {
			ib := int(idx[b]) * dims
			pb := data[ib : ib+dims : ib+dims]
			if pb[sweepDim]-x > eps {
				break
			}
			cand++
			if withinLinfGen(pa, pb, th) {
				res++
				emit(idx[a], idx[b])
			}
		}
	}
	return
}

// crossSweepLinf is CrossSweepFlat's L∞ loop.
func crossSweepLinf[F float](dx, dy []F, dims int, xs, ys []int32, sweepDim int, eps, th F, emit func(xi, yi int32)) (cand, res int64) {
	lo := 0
	for _, xr := range xs {
		ix := int(xr) * dims
		px := dx[ix : ix+dims : ix+dims]
		v := px[sweepDim]
		for lo < len(ys) && dy[int(ys[lo])*dims+sweepDim] < v-eps {
			lo++
		}
		for w := lo; w < len(ys); w++ {
			iy := int(ys[w]) * dims
			py := dy[iy : iy+dims : iy+dims]
			if py[sweepDim]-v > eps {
				break
			}
			cand++
			if withinLinfGen(px, py, th) {
				res++
				emit(xr, ys[w])
			}
		}
	}
	return
}

// probeListL2 is ProbeListFlat's L2 loop: one point against an index list.
func probeListL2[F float](dx []F, xi int, dy []F, dims int, ys []int32, epsSq F, emit func(yi int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for _, yr := range ys {
		iy := int(yr) * dims
		py := dy[iy : iy+dims : iy+dims]
		cand++
		var s F
		k := 0
		ok := true
		for ; k+8 <= dims; k += 8 {
			d0 := px[k] - py[k]
			d1 := px[k+1] - py[k+1]
			d2 := px[k+2] - py[k+2]
			d3 := px[k+3] - py[k+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = px[k+4] - py[k+4]
			d1 = px[k+5] - py[k+5]
			d2 = px[k+6] - py[k+6]
			d3 = px[k+7] - py[k+7]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s > epsSq {
				ok = false
				break
			}
		}
		if ok && k+4 <= dims {
			d0 := px[k] - py[k]
			d1 := px[k+1] - py[k+1]
			d2 := px[k+2] - py[k+2]
			d3 := px[k+3] - py[k+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			k += 4
			ok = s <= epsSq
		}
		if ok {
			for ; k < dims; k++ {
				d := px[k] - py[k]
				s += d * d
			}
			if s <= epsSq {
				res++
				emit(yr)
			}
		}
	}
	return
}

// probeListL1 is ProbeListFlat's L1 loop.
func probeListL1[F float](dx []F, xi int, dy []F, dims int, ys []int32, th F, emit func(yi int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for _, yr := range ys {
		iy := int(yr) * dims
		cand++
		if withinL1Gen(px, dy[iy:iy+dims:iy+dims], th) {
			res++
			emit(yr)
		}
	}
	return
}

// probeListLinf is ProbeListFlat's L∞ loop.
func probeListLinf[F float](dx []F, xi int, dy []F, dims int, ys []int32, th F, emit func(yi int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for _, yr := range ys {
		iy := int(yr) * dims
		cand++
		if withinLinfGen(px, dy[iy:iy+dims:iy+dims], th) {
			res++
			emit(yr)
		}
	}
	return
}

// probeRangeL2 is ProbeRangeFlat's L2 loop: one point against a contiguous
// block, the stride-1 nested-loop kernel.
func probeRangeL2[F float](dx []F, xi int, dy []F, dims int, lo, hi int, epsSq F, emit func(j int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for j := lo; j < hi; j++ {
		iy := j * dims
		py := dy[iy : iy+dims : iy+dims]
		cand++
		var s F
		k := 0
		ok := true
		for ; k+8 <= dims; k += 8 {
			d0 := px[k] - py[k]
			d1 := px[k+1] - py[k+1]
			d2 := px[k+2] - py[k+2]
			d3 := px[k+3] - py[k+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			d0 = px[k+4] - py[k+4]
			d1 = px[k+5] - py[k+5]
			d2 = px[k+6] - py[k+6]
			d3 = px[k+7] - py[k+7]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if s > epsSq {
				ok = false
				break
			}
		}
		if ok && k+4 <= dims {
			d0 := px[k] - py[k]
			d1 := px[k+1] - py[k+1]
			d2 := px[k+2] - py[k+2]
			d3 := px[k+3] - py[k+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			k += 4
			ok = s <= epsSq
		}
		if ok {
			for ; k < dims; k++ {
				d := px[k] - py[k]
				s += d * d
			}
			if s <= epsSq {
				res++
				emit(int32(j))
			}
		}
	}
	return
}

// probeRangeL1 is ProbeRangeFlat's L1 loop.
func probeRangeL1[F float](dx []F, xi int, dy []F, dims int, lo, hi int, th F, emit func(j int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for j := lo; j < hi; j++ {
		iy := j * dims
		cand++
		if withinL1Gen(px, dy[iy:iy+dims:iy+dims], th) {
			res++
			emit(int32(j))
		}
	}
	return
}

// probeRangeLinf is ProbeRangeFlat's L∞ loop.
func probeRangeLinf[F float](dx []F, xi int, dy []F, dims int, lo, hi int, th F, emit func(j int32)) (cand, res int64) {
	ix := xi * dims
	px := dx[ix : ix+dims : ix+dims]
	for j := lo; j < hi; j++ {
		iy := j * dims
		cand++
		if withinLinfGen(px, dy[iy:iy+dims:iy+dims], th) {
			res++
			emit(int32(j))
		}
	}
	return
}
