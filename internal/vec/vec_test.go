package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestMetricString(t *testing.T) {
	cases := map[Metric]string{L2: "L2", L1: "L1", Linf: "Linf", Metric(42): "Metric(42)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Metric(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestParseMetric(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Metric
	}{
		{"L2", L2}, {"l2", L2}, {"euclidean", L2},
		{"L1", L1}, {"manhattan", L1},
		{"Linf", Linf}, {"max", Linf}, {"chebyshev", Linf},
	} {
		got, err := ParseMetric(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMetric("cosine"); err == nil {
		t.Error("ParseMetric(cosine) succeeded, want error")
	}
}

func TestMetricValid(t *testing.T) {
	for _, m := range []Metric{L2, L1, Linf} {
		if !m.Valid() {
			t.Errorf("%v.Valid() = false", m)
		}
	}
	if Metric(99).Valid() {
		t.Error("Metric(99).Valid() = true")
	}
}

func TestDistKnownValues(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{3, 4, 0}
	if got := Dist(L2, a, b); !almostEqual(got, 5) {
		t.Errorf("L2 dist = %g, want 5", got)
	}
	if got := Dist(L1, a, b); !almostEqual(got, 7) {
		t.Errorf("L1 dist = %g, want 7", got)
	}
	if got := Dist(Linf, a, b); !almostEqual(got, 4) {
		t.Errorf("Linf dist = %g, want 4", got)
	}
}

func TestDistZeroAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Metric{L2, L1, Linf} {
		for trial := 0; trial < 50; trial++ {
			d := 1 + rng.Intn(16)
			a := randVec(rng, d)
			b := randVec(rng, d)
			if got := Dist(m, a, a); got != 0 {
				t.Fatalf("%v: Dist(a,a) = %g, want 0", m, got)
			}
			if ab, ba := Dist(m, a, b), Dist(m, b, a); !almostEqual(ab, ba) {
				t.Fatalf("%v: asymmetric distance %g vs %g", m, ab, ba)
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Metric{L2, L1, Linf} {
		for trial := 0; trial < 200; trial++ {
			d := 1 + rng.Intn(10)
			a, b, c := randVec(rng, d), randVec(rng, d), randVec(rng, d)
			ab, bc, ac := Dist(m, a, b), Dist(m, b, c), Dist(m, a, c)
			if ac > ab+bc+1e-9 {
				t.Fatalf("%v: triangle violated: d(a,c)=%g > d(a,b)+d(b,c)=%g", m, ac, ab+bc)
			}
		}
	}
}

func TestMetricOrdering(t *testing.T) {
	// For any pair: Linf ≤ L2 ≤ L1.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(12)
		a, b := randVec(rng, d), randVec(rng, d)
		linf, l2, l1 := Dist(Linf, a, b), Dist(L2, a, b), Dist(L1, a, b)
		if linf > l2+1e-9 || l2 > l1+1e-9 {
			t.Fatalf("metric ordering violated: Linf=%g L2=%g L1=%g", linf, l2, l1)
		}
	}
}

// TestWithinAgreesWithDist is the central property: the early-exit threshold
// kernels must make exactly the same accept/reject decision as the full
// distance computation, for all metrics.
func TestWithinAgreesWithDist(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []Metric{L2, L1, Linf} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			d := 1 + r.Intn(20)
			a, b := randVec(r, d), randVec(r, d)
			eps := r.Float64() * 3
			want := Dist(m, a, b) <= eps
			got := Within(m, a, b, Threshold(m, eps))
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestWithinBoundaryExact(t *testing.T) {
	// ε tests are closed (≤), including exactly at the boundary.
	a := []float64{0, 0}
	b := []float64{3, 4}
	if !Within(L2, a, b, Threshold(L2, 5)) {
		t.Error("L2 boundary pair rejected")
	}
	if Within(L2, a, b, Threshold(L2, 4.999999)) {
		t.Error("L2 out-of-range pair accepted")
	}
	if !Within(L1, a, b, Threshold(L1, 7)) {
		t.Error("L1 boundary pair rejected")
	}
	if !Within(Linf, a, b, Threshold(Linf, 4)) {
		t.Error("Linf boundary pair rejected")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := []float64{1, 2, 3}
	if !Equal(a, a) {
		t.Error("Equal(a,a) = false")
	}
	if Equal(a, []float64{1, 2}) {
		t.Error("Equal over different lengths = true")
	}
	if Equal(a, []float64{1, 2, 4}) {
		t.Error("Equal over different values = true")
	}
	c := Clone(a)
	if !Equal(a, c) {
		t.Error("Clone differs from original")
	}
	c[0] = 99
	if a[0] == 99 {
		t.Error("Clone aliases original")
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
