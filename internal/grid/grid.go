// Package grid implements the ε-cell hash-grid similarity join: space is
// cut into cells of width ε, points are hashed to their cell, and only
// points in the same or adjacent cells are tested. It is the natural
// competitor to the ε-kdB tree — and its weakness is the point of the
// comparison: the number of adjacent cells grows as 3^g in the number g of
// gridded dimensions, so the grid can only afford to use a few dimensions
// (the widest ones), leaving the remaining dimensions unfiltered. The ε-kdB
// tree escapes this by nesting stripes one dimension at a time, visiting
// only the non-empty parts of the neighborhood.
package grid

import (
	"sort"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// Config holds the grid-specific knobs.
type Config struct {
	// MaxDims bounds how many dimensions are gridded (the widest ones).
	// Each gridded dimension triples the neighborhood, so the default of 6
	// (≤ 729 neighbor cells) is about as far as the method can be pushed.
	MaxDims int
}

// DefaultConfig returns the configuration used by the evaluation.
func DefaultConfig() Config { return Config{MaxDims: 6} }

// index is the cell-hash structure built over one dataset.
type index struct {
	ds      *dataset.Dataset
	eps     float64
	gridded []int     // which dimensions are gridded, in order
	origin  []float64 // grid origin per gridded dimension
	cells   map[string][]int32
}

// build hashes every point of ds into cells of width eps over the gridded
// dimensions. The origin comes from box (so two sets can share one grid).
func build(ds *dataset.Dataset, eps float64, box vec.Box, cfg Config) *index {
	g := cfg.MaxDims
	if g <= 0 {
		g = DefaultConfig().MaxDims
	}
	if g > ds.Dims() {
		g = ds.Dims()
	}
	// Grid the g widest dimensions: widest first prunes most.
	dims := make([]int, ds.Dims())
	for i := range dims {
		dims[i] = i
	}
	sort.Slice(dims, func(a, b int) bool {
		return box.Hi[dims[a]]-box.Lo[dims[a]] > box.Hi[dims[b]]-box.Lo[dims[b]]
	})
	idx := &index{
		ds:      ds,
		eps:     eps,
		gridded: dims[:g],
		origin:  make([]float64, g),
		cells:   make(map[string][]int32, ds.Len()/2+1),
	}
	for k, dim := range idx.gridded {
		idx.origin[k] = box.Lo[dim]
	}
	coords := make([]int32, g)
	for i := 0; i < ds.Len(); i++ {
		idx.cellOf(ds.Point(i), coords)
		k := string(encode(nil, coords))
		idx.cells[k] = append(idx.cells[k], int32(i))
	}
	return idx
}

// cellOf writes the cell coordinates of point p into dst. Coordinates are
// clamped to int32 range so a pathologically small ε degrades to a coarse
// (still correct, just unselective) final cell rather than overflowing.
func (ix *index) cellOf(p []float64, dst []int32) {
	const maxCell = 1 << 30
	for k, dim := range ix.gridded {
		v := (p[dim] - ix.origin[k]) / ix.eps
		if v > maxCell {
			v = maxCell
		}
		if v < -maxCell {
			v = -maxCell
		}
		dst[k] = int32(v)
	}
}

// encode appends the byte encoding of cell coordinates to dst.
func encode(dst []byte, coords []int32) []byte {
	for _, c := range coords {
		u := uint32(c)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return dst
}

// SelfJoin reports every unordered pair within ε once using the default
// grid configuration.
func SelfJoin(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	SelfJoinConfig(ds, opt, DefaultConfig(), sink)
}

// SelfJoinConfig is SelfJoin with explicit grid configuration.
func SelfJoinConfig(ds *dataset.Dataset, opt join.Options, cfg Config, sink pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	ix := build(ds, opt.Eps, ds.Bounds(), cfg)
	g := len(ix.gridded)
	offsets := positiveOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	f := ds.KernelView(opt.Float32)
	var cand, res int64
	nb := make([]int32, g)
	keyBuf := make([]byte, 0, 4*g)
	var cur int32
	emit := func(yi int32) { sink.Emit(int(cur), int(yi)) }
	for key, members := range ix.cells {
		// Within-cell pairs.
		for a := 0; a < len(members); a++ {
			cur = members[a]
			pc, pr := vec.ProbeListFlat(opt.Metric, f, cur, f, members[a+1:], t, emit)
			cand += pc
			res += pr
		}
		// Lexicographically-positive neighbors: each unordered cell pair once.
		coords := decode(key, g)
		for _, off := range offsets {
			for k := range nb {
				nb[k] = coords[k] + int32(off[k])
			}
			other, ok := ix.cells[string(encode(keyBuf[:0], nb))]
			if !ok {
				continue
			}
			for _, ia := range members {
				cur = ia
				pc, pr := vec.ProbeListFlat(opt.Metric, f, ia, f, other, t, emit)
				cand += pc
				res += pr
			}
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}

// Join reports every (a-index, b-index) pair within ε using the default
// configuration.
func Join(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
	JoinConfig(a, b, opt, DefaultConfig(), sink)
}

// JoinConfig is Join with explicit grid configuration. The grid is built on
// b over the joint bounding box; every a-point probes its 3^g neighborhood.
func JoinConfig(a, b *dataset.Dataset, opt join.Options, cfg Config, sink pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ix := build(b, opt.Eps, box, cfg)
	g := len(ix.gridded)
	offsets := allOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	fa := a.KernelView(opt.Float32)
	fb := b.KernelView(opt.Float32)
	var cand, res int64
	coords := make([]int32, g)
	nb := make([]int32, g)
	keyBuf := make([]byte, 0, 4*g)
	var cur int32
	emit := func(yi int32) { sink.Emit(int(cur), int(yi)) }
	for i := 0; i < a.Len(); i++ {
		ix.cellOf(a.Point(i), coords)
		cur = int32(i)
		for _, off := range offsets {
			for k := range nb {
				nb[k] = coords[k] + int32(off[k])
			}
			members, ok := ix.cells[string(encode(keyBuf[:0], nb))]
			if !ok {
				continue
			}
			pc, pr := vec.ProbeListFlat(opt.Metric, fa, cur, fb, members, t, emit)
			cand += pc
			res += pr
		}
	}
	c.AddCandidates(cand)
	c.AddDistComps(cand)
	c.AddResults(res)
}

// decode parses a cell key back into coordinates.
func decode(key string, g int) []int32 {
	out := make([]int32, g)
	for k := 0; k < g; k++ {
		b := key[4*k:]
		out[k] = int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	}
	return out
}

// allOffsets enumerates {-1,0,1}^g.
func allOffsets(g int) [][]int8 {
	total := 1
	for i := 0; i < g; i++ {
		total *= 3
	}
	out := make([][]int8, 0, total)
	cur := make([]int8, g)
	for i := range cur {
		cur[i] = -1
	}
	for {
		off := make([]int8, g)
		copy(off, cur)
		out = append(out, off)
		k := g - 1
		for ; k >= 0; k-- {
			if cur[k] < 1 {
				cur[k]++
				break
			}
			cur[k] = -1
		}
		if k < 0 {
			return out
		}
	}
}

// positiveOffsets enumerates the offsets in {-1,0,1}^g whose first nonzero
// component is +1, i.e. exactly one of {δ, −δ} for each δ ≠ 0. Visiting
// only these from every cell touches each unordered pair of adjacent cells
// exactly once.
func positiveOffsets(g int) [][]int8 {
	var out [][]int8
	for _, off := range allOffsets(g) {
		for _, v := range off {
			if v > 0 {
				out = append(out, off)
				break
			}
			if v < 0 {
				break
			}
		}
	}
	return out
}
