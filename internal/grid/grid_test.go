package grid

import (
	"testing"

	"simjoin/internal/brute"
	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/jointest"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
	"simjoin/internal/synth"
	"simjoin/internal/vec"
)

func TestSelfJoinOracle(t *testing.T) {
	jointest.CheckSelf(t, SelfJoin, 60, 201)
}

func TestJoinOracle(t *testing.T) {
	jointest.CheckJoin(t, Join, 60, 202)
}

func TestSelfJoinAdversarial(t *testing.T) {
	jointest.CheckSelfAdversarial(t, SelfJoin)
}

// TestMaxDimsVariants: the join is correct regardless of how many
// dimensions are gridded (including 1 and all of them).
func TestMaxDimsVariants(t *testing.T) {
	for _, maxDims := range []int{1, 2, 3, 8} {
		cfg := Config{MaxDims: maxDims}
		fn := func(ds *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			SelfJoinConfig(ds, opt, cfg, sink)
		}
		jointest.CheckSelf(t, fn, 15, 203+int64(maxDims))
		jfn := func(a, b *dataset.Dataset, opt join.Options, sink pairs.Sink) {
			JoinConfig(a, b, opt, cfg, sink)
		}
		jointest.CheckJoin(t, jfn, 10, 303+int64(maxDims))
	}
	// Gridding every dimension must stay correct too (small case only: the
	// 3^d neighborhood is the very blow-up the evaluation documents).
	ds := synth.Generate(synth.Config{N: 80, Dims: 9, Seed: 999, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.4}
	want := &pairs.Collector{Canonical: true}
	brute.SelfJoin(ds, opt, want)
	got := &pairs.Collector{Canonical: true}
	SelfJoinConfig(ds, opt, Config{MaxDims: 100}, got)
	if !pairs.Equal(got.Sorted(), want.Sorted()) {
		t.Errorf("full-dims grid wrong: %s", pairs.Diff(got.Pairs, want.Pairs))
	}
}

func TestOffsetEnumeration(t *testing.T) {
	all := allOffsets(3)
	if len(all) != 27 {
		t.Fatalf("allOffsets(3) = %d entries, want 27", len(all))
	}
	pos := positiveOffsets(3)
	if len(pos) != 13 { // (27-1)/2
		t.Fatalf("positiveOffsets(3) = %d entries, want 13", len(pos))
	}
	// Positivity: first nonzero component is +1, and no duplicates.
	seen := map[string]bool{}
	for _, off := range pos {
		firstNonzero := int8(0)
		for _, v := range off {
			if v != 0 {
				firstNonzero = v
				break
			}
		}
		if firstNonzero != 1 {
			t.Errorf("offset %v is not lexicographically positive", off)
		}
		k := string([]byte{byte(off[0] + 1), byte(off[1] + 1), byte(off[2] + 1)})
		if seen[k] {
			t.Errorf("duplicate offset %v", off)
		}
		seen[k] = true
	}
	// Exactly one of δ, −δ present for every nonzero δ.
	for _, off := range all {
		zero := true
		for _, v := range off {
			if v != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		k := string([]byte{byte(off[0] + 1), byte(off[1] + 1), byte(off[2] + 1)})
		nk := string([]byte{byte(-off[0] + 1), byte(-off[1] + 1), byte(-off[2] + 1)})
		if seen[k] == seen[nk] {
			t.Errorf("offset pair %v: exactly one of ±δ must be positive", off)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	coords := []int32{0, -1, 1 << 20, -(1 << 20), 2147480000}
	enc := encode(nil, coords)
	back := decode(string(enc), len(coords))
	for i := range coords {
		if back[i] != coords[i] {
			t.Fatalf("coord %d: %d → %d", i, coords[i], back[i])
		}
	}
}

// TestGridPrunes: on spread-out data the grid must inspect far fewer
// candidates than brute force.
func TestGridPrunes(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 2000, Dims: 4, Seed: 5, Dist: synth.Uniform})
	opt := join.Options{Metric: vec.L2, Eps: 0.05}
	var cGrid, cBrute stats.Counters
	var sink pairs.Counter
	optG := opt
	optG.Counters = &cGrid
	SelfJoin(ds, optG, &sink)
	optB := opt
	optB.Counters = &cBrute
	var sinkB pairs.Counter
	brute.SelfJoin(ds, optB, &sinkB)
	if sink.N() != sinkB.N() {
		t.Fatalf("result mismatch: %d vs %d", sink.N(), sinkB.N())
	}
	if cGrid.Snapshot().Candidates*10 > cBrute.Snapshot().Candidates {
		t.Errorf("grid candidates %d not ≪ brute %d", cGrid.Snapshot().Candidates, cBrute.Snapshot().Candidates)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ds := synth.Generate(synth.Config{N: 3000, Dims: 5, Seed: 6, Dist: synth.GaussianClusters})
	opt := join.Options{Metric: vec.L2, Eps: 0.08, Workers: 4}
	serial := &pairs.Collector{Canonical: true}
	SelfJoin(ds, opt, serial)
	sh := pairs.NewSharded(true)
	SelfJoinParallel(ds, opt, DefaultConfig(), sh.Handle)
	got := sh.Merged()
	if !pairs.Equal(got, serial.Sorted()) {
		t.Errorf("parallel differs from serial: %s", pairs.Diff(got, serial.Pairs))
	}
}

func TestParallelSmallInputs(t *testing.T) {
	// Fewer cells than workers, empty and singleton datasets.
	for _, n := range []int{0, 1, 2, 5} {
		ds := dataset.New(3, n)
		for i := 0; i < n; i++ {
			ds.Append([]float64{0.5, 0.5, 0.5})
		}
		opt := join.Options{Metric: vec.L2, Eps: 0.1, Workers: 8}
		sh := pairs.NewSharded(true)
		SelfJoinParallel(ds, opt, DefaultConfig(), sh.Handle)
		want := int64(n * (n - 1) / 2)
		if got := int64(len(sh.Merged())); got != want {
			t.Errorf("n=%d: %d pairs, want %d", n, got, want)
		}
	}
}

func TestTinyEpsClampStaysCorrect(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0, 0}, {1e-12, 0}, {0.5, 0.5}})
	col := &pairs.Collector{Canonical: true}
	SelfJoin(ds, join.Options{Metric: vec.L2, Eps: 1e-11}, col)
	if len(col.Pairs) != 1 || col.Pairs[0] != (pairs.Pair{I: 0, J: 1}) {
		t.Errorf("tiny-eps join = %v, want [(0,1)]", col.Pairs)
	}
}

func TestInvalidOptionsPanics(t *testing.T) {
	ds := dataset.FromPoints([][]float64{{0}})
	defer func() {
		if recover() == nil {
			t.Error("invalid options did not panic")
		}
	}()
	SelfJoin(ds, join.Options{}, &pairs.Counter{})
}
