package grid

import (
	"sync"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoinParallel is SelfJoin with the per-cell work spread across
// opt.WorkerCount() goroutines. newSink is called once per worker to obtain
// that worker's private result sink (use pairs.Sharded, or a shared
// pairs.Counter returned from every call). The grid decomposition makes
// this embarrassingly parallel: each occupied cell owns its within-cell
// pairs and its lexicographically-positive neighbor pairs, so no pair is
// claimed by two cells.
// JoinParallel is Join with the probe side spread across
// opt.WorkerCount() goroutines: the grid is built once over b (on the
// joint bounding box, exactly as JoinConfig does), then the workers
// stride over a's points, each probing its own 3^g neighborhood into a
// private sink from newSink. Point-partitioning the probe side cannot
// duplicate: every (a, b) pair is owned by its a-point.
func JoinParallel(a, b *dataset.Dataset, opt join.Options, cfg Config, newSink func() pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ix := build(b, opt.Eps, box, cfg)
	g := len(ix.gridded)
	offsets := allOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	workers := opt.WorkerCount()
	if workers > a.Len() {
		workers = a.Len()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := newSink()
			coords := make([]int32, g)
			nb := make([]int32, g)
			keyBuf := make([]byte, 0, 4*g)
			var cand, res int64
			for i := w; i < a.Len(); i += workers {
				pa := a.Point(i)
				ix.cellOf(pa, coords)
				for _, off := range offsets {
					for k := range nb {
						nb[k] = coords[k] + int32(off[k])
					}
					members, ok := ix.cells[string(encode(keyBuf[:0], nb))]
					if !ok {
						continue
					}
					for _, ib := range members {
						cand++
						if vec.Within(opt.Metric, pa, b.Point(int(ib)), t) {
							res++
							sink.Emit(i, int(ib))
						}
					}
				}
			}
			c.AddCandidates(cand)
			c.AddDistComps(cand)
			c.AddResults(res)
		}(w)
	}
	wg.Wait()
}

func SelfJoinParallel(ds *dataset.Dataset, opt join.Options, cfg Config, newSink func() pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	ix := build(ds, opt.Eps, ds.Bounds(), cfg)
	g := len(ix.gridded)
	offsets := positiveOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()

	keys := make([]string, 0, len(ix.cells))
	for key := range ix.cells {
		keys = append(keys, key)
	}
	workers := opt.WorkerCount()
	if workers > len(keys) {
		workers = len(keys)
	}
	work := make(chan string, len(keys))
	for _, k := range keys {
		work <- k
	}
	close(work)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := newSink()
			nb := make([]int32, g)
			keyBuf := make([]byte, 0, 4*g)
			var cand, res int64
			for key := range work {
				members := ix.cells[key]
				for a := 0; a < len(members); a++ {
					pa := ds.Point(int(members[a]))
					for b := a + 1; b < len(members); b++ {
						cand++
						if vec.Within(opt.Metric, pa, ds.Point(int(members[b])), t) {
							res++
							sink.Emit(int(members[a]), int(members[b]))
						}
					}
				}
				coords := decode(key, g)
				for _, off := range offsets {
					for k := range nb {
						nb[k] = coords[k] + int32(off[k])
					}
					other, ok := ix.cells[string(encode(keyBuf[:0], nb))]
					if !ok {
						continue
					}
					for _, ia := range members {
						pa := ds.Point(int(ia))
						for _, ib := range other {
							cand++
							if vec.Within(opt.Metric, pa, ds.Point(int(ib)), t) {
								res++
								sink.Emit(int(ia), int(ib))
							}
						}
					}
				}
			}
			c.AddCandidates(cand)
			c.AddDistComps(cand)
			c.AddResults(res)
		}()
	}
	wg.Wait()
}
