package grid

import (
	"sync"
	"time"

	"simjoin/internal/dataset"
	"simjoin/internal/join"
	"simjoin/internal/pairs"
	"simjoin/internal/vec"
)

// SelfJoinParallel is SelfJoin with the per-cell work spread across
// opt.WorkerCount() goroutines. newSink is called once per worker to obtain
// that worker's private result sink (use pairs.Sharded, or a shared
// pairs.Counter returned from every call). The grid decomposition makes
// this embarrassingly parallel: each occupied cell owns its within-cell
// pairs and its lexicographically-positive neighbor pairs, so no pair is
// claimed by two cells.
// JoinParallel is Join with the probe side spread across
// opt.WorkerCount() goroutines: the grid is built once over b (on the
// joint bounding box, exactly as JoinConfig does), then the workers
// stride over a's points, each probing its own 3^g neighborhood into a
// private sink from newSink. Point-partitioning the probe side cannot
// duplicate: every (a, b) pair is owned by its a-point.
func JoinParallel(a, b *dataset.Dataset, opt join.Options, cfg Config, newSink func() pairs.Sink) {
	opt.MustValidate()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	box := a.Bounds()
	box.ExtendBox(b.Bounds())
	ix := build(b, opt.Eps, box, cfg)
	g := len(ix.gridded)
	offsets := allOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()
	// Warm both kernel views before any worker spawns: the lazy float32
	// mirror build must not race.
	fa := a.KernelView(opt.Float32)
	fb := b.KernelView(opt.Float32)
	workers := opt.WorkerCount()
	if workers > a.Len() {
		workers = a.Len()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := newSink()
			coords := make([]int32, g)
			nb := make([]int32, g)
			keyBuf := make([]byte, 0, 4*g)
			var cand, res int64
			var cur int32
			emit := func(yi int32) { sink.Emit(int(cur), int(yi)) }
			for i := w; i < a.Len(); i += workers {
				ix.cellOf(a.Point(i), coords)
				cur = int32(i)
				for _, off := range offsets {
					for k := range nb {
						nb[k] = coords[k] + int32(off[k])
					}
					members, ok := ix.cells[string(encode(keyBuf[:0], nb))]
					if !ok {
						continue
					}
					pc, pr := vec.ProbeListFlat(opt.Metric, fa, cur, fb, members, t, emit)
					cand += pc
					res += pr
				}
			}
			c.AddCandidates(cand)
			c.AddDistComps(cand)
			c.AddResults(res)
		}(w)
	}
	wg.Wait()
}

func SelfJoinParallel(ds *dataset.Dataset, opt join.Options, cfg Config, newSink func() pairs.Sink) {
	opt.MustValidate()
	if ds.Len() < 2 {
		return
	}
	c := opt.Stats()
	t := opt.Threshold()
	start := time.Now()
	ix := build(ds, opt.Eps, ds.Bounds(), cfg)
	g := len(ix.gridded)
	offsets := positiveOffsets(g)
	opt.Timing().AddBuild(time.Since(start))
	probe := time.Now()
	defer func() { opt.Timing().AddProbe(time.Since(probe)) }()

	// Warm the kernel view before any worker spawns: the lazy float32
	// mirror build must not race.
	f := ds.KernelView(opt.Float32)
	keys := make([]string, 0, len(ix.cells))
	for key := range ix.cells {
		keys = append(keys, key)
	}
	workers := opt.WorkerCount()
	if workers > len(keys) {
		workers = len(keys)
	}
	work := make(chan string, len(keys))
	for _, k := range keys {
		work <- k
	}
	close(work)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := newSink()
			nb := make([]int32, g)
			keyBuf := make([]byte, 0, 4*g)
			var cand, res int64
			var cur int32
			emit := func(yi int32) { sink.Emit(int(cur), int(yi)) }
			for key := range work {
				members := ix.cells[key]
				for a := 0; a < len(members); a++ {
					cur = members[a]
					pc, pr := vec.ProbeListFlat(opt.Metric, f, cur, f, members[a+1:], t, emit)
					cand += pc
					res += pr
				}
				coords := decode(key, g)
				for _, off := range offsets {
					for k := range nb {
						nb[k] = coords[k] + int32(off[k])
					}
					other, ok := ix.cells[string(encode(keyBuf[:0], nb))]
					if !ok {
						continue
					}
					for _, ia := range members {
						cur = ia
						pc, pr := vec.ProbeListFlat(opt.Metric, f, ia, f, other, t, emit)
						cand += pc
						res += pr
					}
				}
			}
			c.AddCandidates(cand)
			c.AddDistComps(cand)
			c.AddResults(res)
		}()
	}
	wg.Wait()
}
