package simjoin

import (
	"math"
	"testing"
)

// TestJoinStatsBruteExact pins the brute-force distance-evaluation count:
// the nested loop tests every unordered pair exactly once, so DistComps
// must be exactly n(n-1)/2.
func TestJoinStatsBruteExact(t *testing.T) {
	const n = 50
	ds, err := Synthetic("uniform", n, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	var js JoinStats
	res, err := SelfJoin(ds, Options{Eps: 0.2, Algorithm: AlgorithmBrute, Stats: &js})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); js.DistComps != want {
		t.Errorf("brute DistComps = %d, want exactly %d", js.DistComps, want)
	}
	if js.Algorithm != AlgorithmBrute {
		t.Errorf("Algorithm = %q, want brute", js.Algorithm)
	}
	if js.PairsEmitted != int64(len(res.Pairs)) {
		t.Errorf("PairsEmitted = %d, want %d", js.PairsEmitted, len(res.Pairs))
	}
	if js.BuildTime != 0 {
		t.Errorf("brute BuildTime = %v, want 0 (no index to build)", js.BuildTime)
	}
	if js.ProbeTime <= 0 {
		t.Errorf("brute ProbeTime = %v, want > 0", js.ProbeTime)
	}
	if js.Elapsed <= 0 {
		t.Error("Elapsed not positive")
	}
}

// TestJoinStatsEveryAlgorithm checks that every engine charges the
// observability hook on both the serial and the parallel path: non-zero
// distance evaluations, a PairsEmitted count matching the result, and a
// probe-phase wall time.
func TestJoinStatsEveryAlgorithm(t *testing.T) {
	ds, err := Synthetic("clustered", 400, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		for _, workers := range []int{1, 4} {
			var js JoinStats
			res, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: algo, Workers: workers, Stats: &js})
			if err != nil {
				t.Fatalf("%s/w%d: %v", algo, workers, err)
			}
			if js.Algorithm != algo {
				t.Errorf("%s/w%d: Algorithm = %q", algo, workers, js.Algorithm)
			}
			if js.DistComps <= 0 {
				t.Errorf("%s/w%d: DistComps = %d, want > 0", algo, workers, js.DistComps)
			}
			if js.PairsEmitted != int64(len(res.Pairs)) {
				t.Errorf("%s/w%d: PairsEmitted = %d, want %d", algo, workers, js.PairsEmitted, len(res.Pairs))
			}
			if js.ProbeTime <= 0 {
				t.Errorf("%s/w%d: ProbeTime = %v, want > 0", algo, workers, js.ProbeTime)
			}
			if algo != AlgorithmBrute && js.BuildTime <= 0 {
				t.Errorf("%s/w%d: BuildTime = %v, want > 0", algo, workers, js.BuildTime)
			}
			if js.Elapsed <= 0 {
				t.Errorf("%s/w%d: Elapsed not positive", algo, workers)
			}
		}
	}
}

// TestJoinStatsAutoResolves checks that Stats reports the concrete
// algorithm Auto picked, not "auto".
func TestJoinStatsAutoResolves(t *testing.T) {
	ds, err := Synthetic("uniform", 200, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var js JoinStats
	if _, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto, Stats: &js}); err != nil {
		t.Fatal(err)
	}
	if js.Algorithm == AlgorithmAuto || js.Algorithm == "" {
		t.Errorf("auto run reported Algorithm = %q, want a concrete algorithm", js.Algorithm)
	}
}

// TestJoinStatsTwoSet covers the two-set entry point for every algorithm.
func TestJoinStatsTwoSet(t *testing.T) {
	a, _ := Synthetic("uniform", 300, 5, 1)
	b, _ := Synthetic("clustered", 200, 5, 2)
	for _, algo := range Algorithms() {
		var js JoinStats
		res, err := Join(a, b, Options{Eps: 0.15, Algorithm: algo, Stats: &js})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if js.DistComps <= 0 {
			t.Errorf("%s: DistComps = %d, want > 0", algo, js.DistComps)
		}
		if js.PairsEmitted != int64(len(res.Pairs)) {
			t.Errorf("%s: PairsEmitted = %d, want %d", algo, js.PairsEmitted, len(res.Pairs))
		}
	}
}

// TestJoinStatsStreamingAndCounting checks that the non-collecting paths —
// SelfJoinEach / JoinEach streaming and CollectPairs=false counting — fill
// Stats too, with PairsEmitted equal to the delivered/counted totals.
func TestJoinStatsStreamingAndCounting(t *testing.T) {
	ds, err := Synthetic("clustered", 300, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	base, err := SelfJoin(ds, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(base.Pairs))
	if want == 0 {
		t.Fatal("degenerate test: no pairs")
	}

	var js JoinStats
	var streamed int64
	if _, err := SelfJoinEach(ds, Options{Eps: 0.1, Stats: &js}, func(i, j int) { streamed++ }); err != nil {
		t.Fatal(err)
	}
	if js.PairsEmitted != streamed || streamed != want {
		t.Errorf("streaming: PairsEmitted = %d, streamed %d, want %d", js.PairsEmitted, streamed, want)
	}
	if js.DistComps <= 0 {
		t.Error("streaming: DistComps not charged")
	}

	js = JoinStats{}
	off := false
	if _, err := SelfJoin(ds, Options{Eps: 0.1, CollectPairs: &off, Stats: &js}); err != nil {
		t.Fatal(err)
	}
	if js.PairsEmitted != want {
		t.Errorf("counting-only: PairsEmitted = %d, want %d", js.PairsEmitted, want)
	}

	js = JoinStats{}
	var crossed int64
	if _, err := JoinEach(ds, ds, Options{Eps: 0.1, Stats: &js}, func(i, j int) { crossed++ }); err != nil {
		t.Fatal(err)
	}
	if js.PairsEmitted != crossed || crossed <= 0 {
		t.Errorf("JoinEach: PairsEmitted = %d, delivered %d", js.PairsEmitted, crossed)
	}
}

// TestJoinStatsIndex checks the reusable-Index entry points fill Stats.
func TestJoinStatsIndex(t *testing.T) {
	ds, err := Synthetic("clustered", 300, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewIndex(ds, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var js JoinStats
	res, err := x.SelfJoin(Options{Eps: 0.1, Stats: &js})
	if err != nil {
		t.Fatal(err)
	}
	if js.PairsEmitted != int64(len(res.Pairs)) || js.DistComps <= 0 {
		t.Errorf("index stats = %+v for %d pairs", js, len(res.Pairs))
	}
	if js.BuildTime != 0 {
		t.Errorf("index query BuildTime = %v, want 0 (build paid at NewIndex)", js.BuildTime)
	}
}

// TestEpsRejectedAtEveryEntryPoint pins the contract that a non-positive
// or non-finite Eps is rejected at every public boundary before any work
// runs.
func TestEpsRejectedAtEveryEntryPoint(t *testing.T) {
	ds := unitSquareCluster()
	noop := func(i, j int) { t.Error("callback ran despite invalid Eps") }
	for name, eps := range map[string]float64{
		"zero": 0, "negative": -1, "nan": math.NaN(),
		"+inf": math.Inf(1), "-inf": math.Inf(-1),
	} {
		opt := Options{Eps: eps}
		if _, err := SelfJoin(ds, opt); err == nil {
			t.Errorf("SelfJoin accepted %s Eps", name)
		}
		if _, err := Join(ds, ds, opt); err == nil {
			t.Errorf("Join accepted %s Eps", name)
		}
		if _, err := SelfJoinEach(ds, opt, noop); err == nil {
			t.Errorf("SelfJoinEach accepted %s Eps", name)
		}
		if _, err := JoinEach(ds, ds, opt, noop); err == nil {
			t.Errorf("JoinEach accepted %s Eps", name)
		}
	}
}
