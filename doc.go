// Package simjoin is a high-dimensional similarity-join library: given one
// or two sets of d-dimensional points and a distance threshold ε, it
// reports every pair of points within ε under an Lp metric.
//
// The primary algorithm is the ε-kdB tree (AlgorithmEKDB), a main-memory
// index built for one specific ε that splits one dimension per level into
// stripes of width ε, confining every join candidate to adjacent stripes.
// The library also ships the full set of comparison algorithms its
// performance evaluation uses — nested loop, plane sweep, ε-grid, k-d tree,
// packed R-tree with synchronized traversal, and Z-order blocking — behind
// one uniform API, so callers can pick per workload and benchmarks can
// compare like for like.
//
// # Quick start
//
//	ds := simjoin.FromPoints(points)           // [][]float64, one row per point
//	res, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.1})
//	for _, p := range res.Pairs { ... }        // all pairs with dist ≤ 0.1
//
// See the examples directory for complete programs: near-duplicate
// detection, time-series similarity via DFT features, and density
// clustering on top of the join.
package simjoin
