package simjoin

import "simjoin/internal/sketch"

// SizeSketch is an incrementally maintained join-size sketch: a bounded
// reservoir of points plus per-metric distance histograms, updated in
// O(1) per appended point. Once attached to a Dataset (EnableSketch /
// AttachSketch) it answers result-size and selectivity estimates at any
// (metric, ε) without touching the raw points — AlgorithmAuto plans
// from it instead of brute-force joining a fresh subsample, and
// simjoind's admission control prices queries with it. Safe for
// concurrent use. See docs/ESTIMATION.md for accuracy characteristics.
type SizeSketch struct {
	sk *sketch.Sketch
}

// NewSizeSketch returns an empty sketch for points of the given
// dimensionality. It panics if dims < 1.
func NewSizeSketch(dims int) *SizeSketch {
	return &SizeSketch{sk: sketch.New(dims, sketch.Config{})}
}

// SketchOf builds a sketch over a dataset's current points in one pass.
// The returned sketch is NOT attached; use Dataset.EnableSketch for the
// build-and-attach combination.
func SketchOf(d *Dataset) *SizeSketch {
	return &SizeSketch{sk: sketch.FromDataset(d.internal(), sketch.Config{})}
}

// Observe folds one point into the sketch. It panics on dimensionality
// mismatch. Datasets with an attached sketch call this from Append
// automatically.
func (s *SizeSketch) Observe(p []float64) { s.sk.Observe(p) }

// Points returns how many points the sketch has observed.
func (s *SizeSketch) Points() int64 { return s.sk.Snapshot().Points }

// Reservoir returns how many observed points the sketch currently
// retains verbatim.
func (s *SizeSketch) Reservoir() int { return s.sk.Snapshot().Reservoir }

// SampledPairs returns how many point-pair distances the sketch has
// recorded into its histograms.
func (s *SizeSketch) SampledPairs() int64 { return s.sk.Snapshot().SampledPairs }

// Dims returns the sketch's dimensionality.
func (s *SizeSketch) Dims() int { return s.sk.Dims() }

// SelfJoinSize estimates the number of unordered pairs within eps under
// the metric, over the points observed so far.
func (s *SizeSketch) SelfJoinSize(m Metric, eps float64) int64 {
	return s.sk.SelfJoinSize(m.internal(), eps)
}

// SelfSelectivity estimates the fraction of all unordered pairs within
// eps (in [0, 1]).
func (s *SizeSketch) SelfSelectivity(m Metric, eps float64) float64 {
	return s.sk.SelfSelectivity(m.internal(), eps)
}

// JoinSize estimates the result cardinality of a two-set join between
// this sketch's points and o's. Mismatched dimensionalities estimate 0.
func (s *SizeSketch) JoinSize(o *SizeSketch, m Metric, eps float64) int64 {
	return s.sk.JoinSize(o.sk, m.internal(), eps)
}

// JoinSelectivity estimates the fraction of the cross pairs within eps
// (in [0, 1]).
func (s *SizeSketch) JoinSelectivity(o *SizeSketch, m Metric, eps float64) float64 {
	return s.sk.JoinSelectivity(o.sk, m.internal(), eps)
}

// internal exposes the wrapped sketch to the package's planner wiring.
func (s *SizeSketch) internal() *sketch.Sketch {
	if s == nil {
		return nil
	}
	return s.sk
}
