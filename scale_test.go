package simjoin

import "testing"

// TestLargeScaleAgreement cross-validates the three fastest algorithms at
// a scale where the brute-force oracle is no longer practical: if ε-kdB,
// grid and R+-tree all report identical pair sets on 200k points, a
// correctness defect would need the same blind spot in three unrelated
// candidate-generation schemes. Skipped under -short.
func TestLargeScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale agreement test skipped in -short mode")
	}
	ds, err := Synthetic("clustered", 200000, 8, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	off := false
	var want int64 = -1
	for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmRPlus} {
		res, err := SelfJoin(ds, Options{Eps: 0.03, Algorithm: algo, CollectPairs: &off})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		t.Logf("%s: %d pairs in %s (%d candidates)", algo, res.Stats.Results, res.Stats.Elapsed, res.Stats.Candidates)
		if want == -1 {
			want = res.Stats.Results
			continue
		}
		if res.Stats.Results != want {
			t.Fatalf("%s: %d pairs, others found %d", algo, res.Stats.Results, want)
		}
	}
	if want <= 0 {
		t.Fatal("degenerate workload: no pairs at this scale")
	}
}
