package simjoin

import (
	"math"
	"testing"
)

func TestIndexBuildOnceQueryMany(t *testing.T) {
	ds, _ := Synthetic("clustered", 3000, 6, 30)
	idx, err := NewIndex(ds, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.02, 0.08, 0.2} {
		got, err := idx.SelfJoin(Options{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelfJoin(ds, Options{Eps: eps, Algorithm: AlgorithmBrute})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("eps=%g: %d pairs, want %d", eps, len(got.Pairs), len(want.Pairs))
		}
		for i := range want.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("eps=%g: pair %d differs", eps, i)
			}
		}
	}
	// Parallel path agrees too.
	serial, _ := idx.SelfJoin(Options{Eps: 0.08})
	par, err := idx.SelfJoin(Options{Eps: 0.08, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Pairs) != len(par.Pairs) {
		t.Fatalf("parallel %d pairs, serial %d", len(par.Pairs), len(serial.Pairs))
	}
}

func TestIndexErrors(t *testing.T) {
	ds, _ := Synthetic("uniform", 100, 3, 31)
	if _, err := NewIndex(ds, 0, Options{}); err == nil {
		t.Error("zero eps accepted")
	}
	idx, _ := NewIndex(ds, 0.1, Options{})
	if _, err := idx.SelfJoin(Options{Eps: 0.2}); err == nil {
		t.Error("query eps above index eps accepted")
	}
	if _, err := idx.SelfJoin(Options{}); err == nil {
		t.Error("zero query eps accepted")
	}
	if _, err := idx.Range([]float64{0, 0}, L2, 0.05); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := idx.Range([]float64{0, 0, 0}, L2, 0.5); err == nil {
		t.Error("radius above eps accepted")
	}
	if _, err := idx.Insert([]float64{1}); err == nil {
		t.Error("dim-mismatched insert accepted")
	}
}

func TestIndexRange(t *testing.T) {
	ds := FromPoints([][]float64{{0, 0}, {0.05, 0}, {0.5, 0.5}})
	idx, _ := NewIndex(ds, 0.1, Options{})
	got, err := idx.Range([]float64{0, 0}, L2, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Range = %v", got)
	}
}

func TestIndexInsertDelete(t *testing.T) {
	ds := FromPoints([][]float64{{0.5, 0.5}})
	idx, err := NewIndex(ds, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	i, err := idx.Insert([]float64{0.52, 0.5})
	if err != nil || i != 1 {
		t.Fatalf("Insert = %d, %v", i, err)
	}
	res, _ := idx.SelfJoin(Options{Eps: 0.1})
	if len(res.Pairs) != 1 || res.Pairs[0] != (Pair{I: 0, J: 1}) {
		t.Fatalf("post-insert join = %v", res.Pairs)
	}
	if !idx.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if idx.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	res, _ = idx.SelfJoin(Options{Eps: 0.1})
	if len(res.Pairs) != 0 {
		t.Fatalf("post-delete join = %v", res.Pairs)
	}
	if idx.Len() != 2 || idx.Eps() != 0.1 {
		t.Errorf("accessors: Len=%d Eps=%g", idx.Len(), idx.Eps())
	}
}

func TestIndexInsertOutsideOriginalBounds(t *testing.T) {
	ds := FromPoints([][]float64{{0, 0}, {1, 1}})
	idx, _ := NewIndex(ds, 0.1, Options{})
	// Points outside the original frame must still join correctly (edge
	// stripe clamping).
	a, _ := idx.Insert([]float64{5, 5})
	b, _ := idx.Insert([]float64{5.05, 5})
	res, err := idx.SelfJoin(Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0] != (Pair{I: a, J: b}) {
		t.Fatalf("out-of-frame join = %v, want [(2,3)]", res.Pairs)
	}
	d := math.Hypot(0.05, 0)
	if d > 0.1 == false && len(res.Pairs) == 0 {
		t.Fatal("unreachable")
	}
}
