// Quickstart: generate a small clustered dataset, find every pair of points
// within ε, and compare two algorithms on the same workload.
package main

import (
	"fmt"
	"log"

	"simjoin"
)

func main() {
	// 5,000 points in 8 dimensions, drawn from Gaussian clusters — the kind
	// of feature-vector data similarity joins are built for.
	ds, err := simjoin.Synthetic("clustered", 5000, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The default algorithm is the ε-kdB tree.
	res, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε-kdB tree: %d similar pairs (inspected %d candidates) in %s\n",
		res.Stats.Results, res.Stats.Candidates, res.Stats.Elapsed)

	// Print a few matches.
	for i, p := range res.Pairs {
		if i == 5 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  points %d and %d are within 0.05\n", p.I, p.J)
	}

	// Any other algorithm answers identically — only the work differs.
	naive, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.05, Algorithm: simjoin.AlgorithmBrute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nested loop: %d pairs (inspected %d candidates) in %s\n",
		naive.Stats.Results, naive.Stats.Candidates, naive.Stats.Elapsed)

	if naive.Stats.Results != res.Stats.Results {
		log.Fatal("algorithms disagree — this is a bug")
	}
	fmt.Printf("speed ratio: the tree inspected %.1f%% of the naive candidates\n",
		100*float64(res.Stats.Candidates)/float64(naive.Stats.Candidates))
}
