// k-nearest-neighbor retrieval over item feature vectors — the
// "customers who liked this also liked…" workload. One KNN join maps every
// item in a query catalog to its most similar items in a reference
// catalog; the single-query path answers interactive lookups.
package main

import (
	"fmt"
	"log"

	"simjoin"
)

const (
	catalogSize = 20000
	dims        = 12
	topK        = 5
)

func main() {
	catalog, err := simjoin.Synthetic("clustered", catalogSize, dims, 77)
	if err != nil {
		log.Fatal(err)
	}

	// Interactive path: one query against a reusable index.
	idx := simjoin.NewNeighborIndex(catalog)
	probe := catalog.Point(42)
	nbrs := idx.KNN(probe, topK+1, simjoin.L2) // +1: the item matches itself
	fmt.Printf("items most similar to item 42:\n")
	for _, n := range nbrs {
		if n.Index == 42 {
			continue
		}
		fmt.Printf("  item %-6d distance %.4f\n", n.Index, n.Dist)
	}

	// Batch path: every new item against the full catalog in one join.
	newItems, err := simjoin.Synthetic("clustered", 500, dims, 78)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := simjoin.KNNJoin(newItems, catalog, topK, 4, simjoin.L2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch KNN join: %d new items × top-%d catalog matches\n", len(rows), topK)
	for i := 0; i < 3; i++ {
		fmt.Printf("  new item %d → %v…\n", i, rows[i][:2])
	}

	// Sanity: every row has k ordered results.
	for i, row := range rows {
		if len(row) != topK {
			log.Fatalf("row %d has %d neighbors", i, len(row))
		}
		for j := 1; j < len(row); j++ {
			if row[j].Dist < row[j-1].Dist {
				log.Fatalf("row %d not distance-ordered", i)
			}
		}
	}
	fmt.Println("all rows complete and distance-ordered ✓")
}
