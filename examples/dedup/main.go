// Near-duplicate detection over feature vectors — e.g. color histograms of
// an image catalog. Items whose feature vectors sit within ε of each other
// are duplicate candidates; a union-find over the join output groups them
// into duplicate clusters.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simjoin"
)

const (
	catalogSize = 8000
	histogramD  = 16 // a 16-bucket color histogram per "image"
	epsilon     = 0.02
)

func main() {
	ds, planted := buildCatalog()

	res, err := simjoin.SelfJoin(ds, simjoin.Options{
		Eps:     epsilon,
		Metric:  simjoin.L1, // histogram similarity is conventionally L1
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Group matches into clusters with union-find.
	uf := newUnionFind(ds.Len())
	for _, p := range res.Pairs {
		uf.union(p.I, p.J)
	}
	clusters := map[int][]int{}
	for i := 0; i < ds.Len(); i++ {
		r := uf.find(i)
		if uf.size[r] > 1 {
			clusters[r] = append(clusters[r], i)
		}
	}

	fmt.Printf("catalog of %d histograms (%d dims), ε=%g under L1\n", ds.Len(), histogramD, epsilon)
	fmt.Printf("join found %d near-duplicate pairs in %s (%d candidates inspected)\n",
		res.Stats.Results, res.Stats.Elapsed, res.Stats.Candidates)
	fmt.Printf("duplicate groups: %d (largest shown first)\n", len(clusters))

	shown := 0
	for _, members := range clusters {
		if shown == 3 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  group of %d: %v\n", len(members), members)
		shown++
	}

	if len(clusters) < planted {
		log.Fatalf("only %d groups found, %d planted — detection failed", len(clusters), planted)
	}
	fmt.Printf("all %d planted duplicate groups detected ✓\n", planted)
}

// buildCatalog synthesizes random histograms plus a handful of planted
// duplicate groups (slightly perturbed copies).
func buildCatalog() (*simjoin.Dataset, int) {
	rng := rand.New(rand.NewSource(99))
	ds := simjoin.NewDataset(histogramD)
	hist := make([]float64, histogramD)
	emit := func() {
		// Normalize to a unit-mass histogram.
		var sum float64
		for _, v := range hist {
			sum += v
		}
		for k := range hist {
			hist[k] /= sum
		}
		ds.Append(hist)
	}
	for i := 0; i < catalogSize; i++ {
		for k := range hist {
			hist[k] = rng.Float64()
		}
		emit()
	}
	// Plant 10 duplicate groups of 3 (a re-encode and a thumbnail of the
	// same image, say).
	const groups = 10
	for g := 0; g < groups; g++ {
		src := rng.Intn(catalogSize)
		for copyN := 0; copyN < 2; copyN++ {
			base := ds.Point(src)
			for k := range hist {
				hist[k] = base[k] + rng.Float64()*1e-4
			}
			emit()
		}
	}
	return ds, groups
}

type unionFind struct {
	parent, size []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
