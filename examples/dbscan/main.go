// Density clustering (DBSCAN) built on the similarity join: the ε-join
// gives every point's ε-neighborhood in one pass, after which DBSCAN is a
// straightforward traversal — core points (≥ minPts neighbors) connected
// through shared neighborhoods form clusters, the rest is noise. This is
// the data-mining workload the paper family cites as a join consumer.
package main

import (
	"fmt"
	"log"

	"simjoin"
)

const (
	numPoints = 6000
	dims      = 4
	epsilon   = 0.03
	minPts    = 5
)

func main() {
	ds, err := simjoin.Synthetic("clustered", numPoints, dims, 11)
	if err != nil {
		log.Fatal(err)
	}

	// One self-join replaces numPoints range queries.
	res, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: epsilon, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Adjacency lists from the pair stream.
	adj := make([][]int, ds.Len())
	for _, p := range res.Pairs {
		adj[p.I] = append(adj[p.I], p.J)
		adj[p.J] = append(adj[p.J], p.I)
	}

	labels := dbscan(adj)

	clusterSizes := map[int]int{}
	noise := 0
	for _, l := range labels {
		if l < 0 {
			noise++
		} else {
			clusterSizes[l]++
		}
	}
	fmt.Printf("%d points, ε=%g, minPts=%d\n", ds.Len(), float64(epsilon), minPts)
	fmt.Printf("join: %d neighbor pairs in %s\n", res.Stats.Results, res.Stats.Elapsed)
	fmt.Printf("clusters: %d, noise points: %d\n", len(clusterSizes), noise)
	big := 0
	for _, size := range clusterSizes {
		if size >= 50 {
			big++
		}
	}
	fmt.Printf("clusters with ≥ 50 members: %d\n", big)
	if len(clusterSizes) == 0 {
		log.Fatal("no clusters found — ε or minPts miscalibrated for the workload")
	}
}

// dbscan labels every point with a cluster id (−1 = noise) given ε-adjacency.
func dbscan(adj [][]int) []int {
	const (
		unvisited = -2
		noise     = -1
	)
	labels := make([]int, len(adj))
	for i := range labels {
		labels[i] = unvisited
	}
	next := 0
	for i := range adj {
		if labels[i] != unvisited {
			continue
		}
		if len(adj[i]) < minPts-1 { // neighborhood includes the point itself
			labels[i] = noise
			continue
		}
		// Grow a new cluster from core point i.
		id := next
		next++
		labels[i] = id
		queue := append([]int(nil), adj[i]...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == noise {
				labels[q] = id // border point adopted by the cluster
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = id
			if len(adj[q]) >= minPts-1 { // q is core: expand through it
				queue = append(queue, adj[q]...)
			}
		}
	}
	return labels
}
