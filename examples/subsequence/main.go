// Subsequence matching — "find every place this pattern occurs in a long
// signal". A year of telemetry is scanned for windows similar to a query
// pattern: sliding-DFT features (O(k) per step) filter candidate offsets,
// exact window distances confirm them. The filter cannot miss a match
// (feature distance lower-bounds window distance), so the answer is exact
// at a fraction of the scan cost.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"simjoin"
)

const (
	signalLen = 200000 // ~one year of 3-minute samples
	window    = 256
	dftCoeffs = 6
	epsilon   = 3.0
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	// A long random-walk signal with a recurring daily-shape pattern
	// planted at known offsets.
	signal := make([]float64, signalLen)
	level := 50.0
	for i := range signal {
		level += rng.NormFloat64()
		signal[i] = level
	}
	pattern := make([]float64, window)
	for i := range pattern {
		pattern[i] = 8 * math.Sin(2*math.Pi*float64(i)/float64(window))
	}
	planted := []int{12345, 67890, 150000}
	for _, at := range planted {
		for i, v := range pattern {
			signal[at+i] += v
		}
	}

	// The query: the pattern riding on a flat baseline equal to the local
	// signal level at the first planted site (subsequence matching is
	// level-sensitive; production systems mean-normalize both sides —
	// here the plant guarantees near-exact windows exist).
	query := make([]float64, window)
	copy(query, signal[planted[0]:planted[0]+window])

	matches := simjoin.SubsequenceMatches(signal, query, dftCoeffs, epsilon)
	fmt.Printf("signal of %d samples, window %d, ε=%g, %d DFT coefficients\n",
		signalLen, window, float64(epsilon), dftCoeffs)
	fmt.Printf("%d matching window offsets found\n", len(matches))
	for i, off := range matches {
		if i == 8 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  offset %d (distance %.3f)\n", off,
			simjoin.SeqDist(signal[off:off+window], query))
	}

	// The planted site itself must be recovered.
	found := false
	for _, off := range matches {
		if off == planted[0] {
			found = true
		}
	}
	if !found {
		log.Fatal("planted pattern not recovered — lower-bounding violated (bug)")
	}
	fmt.Println("query's own site recovered exactly ✓")
}
