// Time-series similarity — the application that motivates high-dimensional
// similarity joins. Each sequence (think a stock's daily closes or a
// router's utilization curve) is reduced to its first k DFT coefficients;
// an ε-join over the 2k-dimensional feature vectors yields candidate pairs
// with NO false dismissals (the transform is distance-preserving, and
// truncation only shrinks distances); a refinement pass in the raw time
// domain removes the false positives.
package main

import (
	"fmt"
	"log"

	"simjoin"
)

const (
	numSeries = 2000
	seqLen    = 128
	dftCoeffs = 6   // feature space: 12 dimensions
	epsilon   = 4.0 // raw-sequence Euclidean threshold
)

func main() {
	// Random walks stand in for market/telemetry traces. The generator
	// plants 50 near-duplicate pairs so there is something to find.
	series := simjoin.RandomWalks(numSeries, seqLen, 7)
	for i := 0; i < 50; i++ {
		dup := make([]float64, seqLen)
		copy(dup, series[i])
		for t := range dup {
			dup[t] += 0.02 * float64(t%3)
		}
		series = append(series, dup)
	}

	// Filter: ε-join in DFT feature space.
	features := simjoin.TimeSeriesFeatures(series, dftCoeffs)
	res, err := simjoin.SelfJoin(features, simjoin.Options{Eps: epsilon})
	if err != nil {
		log.Fatal(err)
	}

	// Refine: exact distance on the raw sequences.
	var confirmed []simjoin.Pair
	for _, p := range res.Pairs {
		if simjoin.SeqDist(series[p.I], series[p.J]) <= epsilon {
			confirmed = append(confirmed, p)
		}
	}

	fmt.Printf("%d sequences of length %d → %d-dim DFT features\n",
		len(series), seqLen, features.Dims())
	fmt.Printf("filter step: %d candidate pairs (join took %s)\n",
		len(res.Pairs), res.Stats.Elapsed)
	fmt.Printf("refine step: %d true pairs within ε=%g\n", len(confirmed), float64(epsilon))
	if len(res.Pairs) > 0 {
		fmt.Printf("false-positive ratio of the DFT filter: %.1f%%\n",
			100*float64(len(res.Pairs)-len(confirmed))/float64(len(res.Pairs)))
	}

	// Every planted near-duplicate must have been recovered — the filter
	// cannot dismiss a true pair.
	found := map[simjoin.Pair]bool{}
	for _, p := range confirmed {
		found[p] = true
	}
	missing := 0
	for i := 0; i < 50; i++ {
		if simjoin.SeqDist(series[i], series[numSeries+i]) <= epsilon &&
			!found[simjoin.Pair{I: i, J: numSeries + i}] {
			missing++
		}
	}
	if missing > 0 {
		log.Fatalf("%d planted pairs missed — lower-bounding violated (bug)", missing)
	}
	fmt.Println("all planted near-duplicates recovered (no false dismissals) ✓")
}
