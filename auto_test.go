package simjoin

import "testing"

// TestAutoAlgorithm: "auto" must pick a working algorithm for every
// workload regime and give the exact answer each time.
func TestAutoAlgorithm(t *testing.T) {
	for name, make := range map[string]func() *Dataset{
		"tiny":        func() *Dataset { ds, _ := Synthetic("uniform", 50, 4, 1); return ds },
		"one-dim":     func() *Dataset { ds, _ := Synthetic("uniform", 3000, 1, 2); return ds },
		"typical":     func() *Dataset { ds, _ := Synthetic("clustered", 3000, 8, 3); return ds },
		"unselective": func() *Dataset { ds, _ := Synthetic("uniform", 3000, 2, 4); return ds },
	} {
		ds := make()
		eps := 0.1
		if name == "unselective" {
			eps = 0.8
		}
		auto, err := SelfJoin(ds, Options{Eps: eps, Algorithm: AlgorithmAuto})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact, err := SelfJoin(ds, Options{Eps: eps, Algorithm: AlgorithmBrute})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(auto.Pairs) != len(exact.Pairs) {
			t.Fatalf("%s: auto %d pairs, exact %d", name, len(auto.Pairs), len(exact.Pairs))
		}
		for i := range exact.Pairs {
			if auto.Pairs[i] != exact.Pairs[i] {
				t.Fatalf("%s: pair %d differs", name, i)
			}
		}
	}
}

func TestAutoOnEmptyDataset(t *testing.T) {
	res, err := SelfJoin(NewDataset(3), Options{Eps: 0.1, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Error("empty dataset produced pairs")
	}
}

func TestAutoTwoSetJoin(t *testing.T) {
	a, _ := Synthetic("clustered", 2000, 6, 5)
	b, _ := Synthetic("clustered", 2000, 6, 5) // same seed: many cross pairs
	auto, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmBrute})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Pairs) != len(exact.Pairs) {
		t.Fatalf("auto %d pairs, exact %d", len(auto.Pairs), len(exact.Pairs))
	}
}
