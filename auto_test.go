package simjoin

import (
	"testing"

	"simjoin/internal/estimate"
)

// TestAutoAlgorithm: "auto" must pick a working algorithm for every
// workload regime and give the exact answer each time.
func TestAutoAlgorithm(t *testing.T) {
	for name, make := range map[string]func() *Dataset{
		"tiny":        func() *Dataset { ds, _ := Synthetic("uniform", 50, 4, 1); return ds },
		"one-dim":     func() *Dataset { ds, _ := Synthetic("uniform", 3000, 1, 2); return ds },
		"typical":     func() *Dataset { ds, _ := Synthetic("clustered", 3000, 8, 3); return ds },
		"unselective": func() *Dataset { ds, _ := Synthetic("uniform", 3000, 2, 4); return ds },
	} {
		ds := make()
		eps := 0.1
		if name == "unselective" {
			eps = 0.8
		}
		auto, err := SelfJoin(ds, Options{Eps: eps, Algorithm: AlgorithmAuto})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact, err := SelfJoin(ds, Options{Eps: eps, Algorithm: AlgorithmBrute})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(auto.Pairs) != len(exact.Pairs) {
			t.Fatalf("%s: auto %d pairs, exact %d", name, len(auto.Pairs), len(exact.Pairs))
		}
		for i := range exact.Pairs {
			if auto.Pairs[i] != exact.Pairs[i] {
				t.Fatalf("%s: pair %d differs", name, i)
			}
		}
	}
}

func TestAutoOnEmptyDataset(t *testing.T) {
	res, err := SelfJoin(NewDataset(3), Options{Eps: 0.1, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Error("empty dataset produced pairs")
	}
}

// TestAutoWithSketchRunsNoSampleJoins is the tentpole's acceptance
// check: on a sketched dataset, AlgorithmAuto must plan entirely from
// the resident sketch — zero brute-force sample joins — fill
// JoinStats.EstimatedPairs, and still produce the exact result.
func TestAutoWithSketchRunsNoSampleJoins(t *testing.T) {
	ds, _ := Synthetic("clustered", 3000, 8, 3)
	sk := ds.EnableSketch()
	if sk == nil || ds.Sketch() != sk {
		t.Fatal("EnableSketch did not attach")
	}
	before := estimate.SampleJoins()
	var st JoinStats
	auto, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: AlgorithmAuto, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if got := estimate.SampleJoins() - before; got != 0 {
		t.Errorf("sketched Auto ran %d sample joins, want 0", got)
	}
	if st.EstimatedPairs < 0 {
		t.Errorf("EstimatedPairs not filled: %d", st.EstimatedPairs)
	}
	exact, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: AlgorithmBrute})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Pairs) != len(exact.Pairs) {
		t.Fatalf("auto %d pairs, exact %d", len(auto.Pairs), len(exact.Pairs))
	}
	// The estimate must be in the right ballpark of what actually came out.
	if actual := int64(len(exact.Pairs)); st.EstimatedPairs > 8*actual+8 || 8*st.EstimatedPairs+8 < actual {
		t.Errorf("estimate %d vs actual %d: off by more than 8x", st.EstimatedPairs, actual)
	}
}

// TestAutoSketchAppendKeepsTracking: appends after EnableSketch must
// flow into the sketch so its population count follows the data.
func TestAutoSketchAppendKeepsTracking(t *testing.T) {
	ds, _ := Synthetic("uniform", 500, 3, 9)
	sk := ds.EnableSketch()
	ds.Append([]float64{0.5, 0.5, 0.5})
	if sk.Points() != 501 {
		t.Errorf("sketch saw %d points, want 501", sk.Points())
	}
}

// TestAutoTwoSetJoinSketched: the two-set planner must also avoid
// sampling when both sides carry sketches.
func TestAutoTwoSetJoinSketched(t *testing.T) {
	a, _ := Synthetic("clustered", 2000, 6, 5)
	b, _ := Synthetic("clustered", 2000, 6, 5)
	a.EnableSketch()
	b.EnableSketch()
	before := estimate.SampleJoins()
	var st JoinStats
	auto, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmAuto, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if got := estimate.SampleJoins() - before; got != 0 {
		t.Errorf("sketched Auto ran %d sample joins, want 0", got)
	}
	if st.EstimatedPairs < 0 {
		t.Errorf("EstimatedPairs not filled: %d", st.EstimatedPairs)
	}
	exact, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmBrute})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Pairs) != len(exact.Pairs) {
		t.Fatalf("auto %d pairs, exact %d", len(auto.Pairs), len(exact.Pairs))
	}
}

func TestAutoTwoSetJoin(t *testing.T) {
	a, _ := Synthetic("clustered", 2000, 6, 5)
	b, _ := Synthetic("clustered", 2000, 6, 5) // same seed: many cross pairs
	auto, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmAuto})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Join(a, b, Options{Eps: 0.05, Algorithm: AlgorithmBrute})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Pairs) != len(exact.Pairs) {
		t.Fatalf("auto %d pairs, exact %d", len(auto.Pairs), len(exact.Pairs))
	}
}
