package simjoin

import (
	"io"

	"simjoin/internal/dataset"
)

// Dataset is an immutable-by-convention collection of d-dimensional points
// used as join input. Construct with FromPoints, NewDataset, or Load.
type Dataset struct {
	ds *dataset.Dataset
	// sk, when non-nil, is the dataset's resident join-size sketch:
	// AlgorithmAuto plans from it instead of running a fresh sample join.
	// See EnableSketch / AttachSketch.
	sk *SizeSketch
}

// NewDataset returns an empty dataset of the given dimensionality. It
// panics if dims < 1.
func NewDataset(dims int) *Dataset {
	return &Dataset{ds: dataset.New(dims, 0)}
}

// FromPoints builds a dataset by copying the given points (all of one
// dimensionality; panics otherwise or when empty).
func FromPoints(pts [][]float64) *Dataset {
	return &Dataset{ds: dataset.FromPoints(pts)}
}

// Append copies point p into the dataset. It panics on dimensionality
// mismatch. When a sketch is attached it observes the point too, so the
// resident estimate keeps tracking the data.
func (d *Dataset) Append(p []float64) {
	d.ds.Append(p)
	if d.sk != nil {
		d.sk.Observe(p)
	}
}

// EnableSketch builds a join-size sketch over the dataset's current
// points (once; repeated calls return the existing sketch) and keeps it
// attached: AlgorithmAuto then plans from the sketch in O(1) instead of
// brute-force joining a fresh subsample, and later Appends feed it
// incrementally. See docs/ESTIMATION.md.
func (d *Dataset) EnableSketch() *SizeSketch {
	if d.sk == nil {
		d.sk = SketchOf(d)
	}
	return d.sk
}

// Sketch returns the attached join-size sketch, or nil when none is
// attached.
func (d *Dataset) Sketch() *SizeSketch { return d.sk }

// AttachSketch adopts an externally maintained sketch — the serving
// layer's pattern, where one long-lived sketch outlives each
// copy-on-write dataset snapshot. The caller owns keeping the sketch in
// step with the data; attach before sharing the Dataset across
// goroutines.
func (d *Dataset) AttachSketch(s *SizeSketch) { d.sk = s }

// Len returns the number of points.
func (d *Dataset) Len() int { return d.ds.Len() }

// Dims returns the dimensionality.
func (d *Dataset) Dims() int { return d.ds.Dims() }

// Point returns a read-only view of point i; the slice aliases internal
// storage and must not be modified.
func (d *Dataset) Point(i int) []float64 { return d.ds.Point(i) }

// Load reads a dataset from path: ".csv" files as comma-separated rows
// (blank lines and '#' comments skipped), anything else in the library's
// binary format.
func Load(path string) (*Dataset, error) {
	ds, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// Save writes the dataset to path, choosing CSV or binary by extension as
// in Load.
func (d *Dataset) Save(path string) error { return d.ds.SaveFile(path) }

// WriteCSV writes the dataset as CSV rows.
func (d *Dataset) WriteCSV(w io.Writer) error { return d.ds.WriteCSV(w) }

// ReadCSV parses a dataset from CSV rows.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds, err := dataset.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// CloneWithCap returns a deep copy with spare capacity for extra more
// points — the cheap way to grow copy-on-write: clone once, then Append
// the batch without reallocation.
func (d *Dataset) CloneWithCap(extra int) *Dataset {
	return &Dataset{ds: d.ds.CloneWithCap(extra)}
}

// internal exposes the underlying container to the package.
func (d *Dataset) internal() *dataset.Dataset { return d.ds }

// Internal returns the underlying container. It exists for sibling
// packages inside this module (simjoind's storage wiring); importers
// outside the module cannot name its type.
func (d *Dataset) Internal() *dataset.Dataset { return d.ds }

// WrapDataset adopts an internal container without copying, the inverse
// of Internal. Module-internal, like Internal.
func WrapDataset(ds *dataset.Dataset) *Dataset { return &Dataset{ds: ds} }
