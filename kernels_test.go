package simjoin

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/vec"
)

// quantizedDataset builds a clustered dataset whose coordinates are all
// multiples of 1/64 — exactly representable in binary, so inter-point
// distances collide with ε boundaries routinely instead of almost never.
func quantizedDataset(n, dims int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := NewDataset(dims)
	p := make([]float64, dims)
	center := make([]float64, dims)
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			for k := range center {
				center[k] = float64(rng.Intn(48)) / 64
			}
		}
		for k := range p {
			p[k] = center[k] + float64(rng.Intn(17))/64
		}
		ds.Append(p)
	}
	return ds
}

// oraclePairs evaluates the reference predicate — vec.Within over float64
// slice views, the exact accept test the engines used before the flat
// kernels — on every pair.
func oraclePairs(ds *Dataset, m Metric, eps float64) []Pair {
	im := m.internal()
	th := vec.Threshold(im, eps)
	var out []Pair
	n := ds.Len()
	for i := 0; i < n; i++ {
		pi := ds.Point(i)
		for j := i + 1; j < n; j++ {
			if vec.Within(im, pi, ds.Point(j), th) {
				out = append(out, Pair{i, j})
			}
		}
	}
	return out
}

func sortedPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	for i, p := range out {
		if p.I > p.J {
			out[i] = Pair{p.J, p.I}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

func diffPairs(a, b []Pair) []Pair {
	in := make(map[Pair]bool, len(b))
	for _, p := range b {
		in[p] = true
	}
	var out []Pair
	for _, p := range a {
		if !in[p] {
			out = append(out, p)
		}
	}
	return out
}

// TestEnginesMatchOracle holds every algorithm, across every metric and a
// low/medium/high dimensionality, to the exact pair set of the reference
// predicate — on boundary-rich quantized data where distances tie with ε
// exactly. This is the contract the flat kernels must preserve: the SoA
// refactor changes the memory walk, never the accepted set.
func TestEnginesMatchOracle(t *testing.T) {
	for _, dims := range []int{2, 8, 32} {
		ds := quantizedDataset(280, dims, int64(dims))
		for _, m := range []Metric{L2, L1, Linf} {
			// ε grows with dimensionality (L1 linearly, L2 as √d, Linf not
			// at all) to keep the result non-degenerate; 1/64-multiples make
			// exact boundary ties common.
			eps := map[Metric]map[int]float64{
				L2:   {2: 0.25, 8: 0.375, 32: 0.75},
				L1:   {2: 0.25, 8: 1, 32: 3.5},
				Linf: {2: 0.25, 8: 0.25, 32: 0.25},
			}[m][dims]
			want := sortedPairs(oraclePairs(ds, m, eps))
			if len(want) == 0 {
				t.Fatalf("degenerate oracle: no pairs at dims=%d metric=%s", dims, m)
			}
			for _, algo := range Algorithms() {
				res, err := SelfJoin(ds, Options{Eps: eps, Metric: m, Algorithm: algo})
				if err != nil {
					t.Fatal(err)
				}
				got := sortedPairs(res.Pairs)
				if len(got) != len(want) {
					t.Errorf("dims=%d metric=%s algo=%s: %d pairs, want %d (missing %v, extra %v)",
						dims, m, algo, len(got), len(want), diffPairs(want, got), diffPairs(got, want))
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("dims=%d metric=%s algo=%s: pair %d = %v, want %v", dims, m, algo, i, got[i], want[i])
						break
					}
				}
			}
		}
	}
}

// TestEnginesEpsBoundaryExact pins the ≤-vs-< boundary: a pair at distance
// exactly ε is in the result, one a single ULP past ε is not — for every
// algorithm and metric. All coordinates and thresholds are powers-of-two
// fractions, so every distance involved is exactly representable.
func TestEnginesEpsBoundaryExact(t *testing.T) {
	// d(0,1): L2 = 0.3125 (3-4-5 triangle scaled by 1/16), L1 = 0.4375,
	// Linf = 0.25. Point 2 is far from both.
	ds := FromPoints([][]float64{
		{0, 0, 0, 0},
		{0.1875, 0.25, 0, 0},
		{4, 4, 4, 4},
	})
	exact := map[Metric]float64{L2: 0.3125, L1: 0.4375, Linf: 0.25}
	for m, d := range exact {
		for _, algo := range Algorithms() {
			at, err := SelfJoin(ds, Options{Eps: d, Metric: m, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if len(at.Pairs) != 1 || at.Pairs[0] != (Pair{0, 1}) {
				t.Errorf("metric=%s algo=%s eps=dist: pairs = %v, want [{0 1}]", m, algo, at.Pairs)
			}
			below, err := SelfJoin(ds, Options{Eps: math.Nextafter(d, 0), Metric: m, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if len(below.Pairs) != 0 {
				t.Errorf("metric=%s algo=%s eps just below dist: pairs = %v, want none", m, algo, below.Pairs)
			}
		}
	}
}

// float32Algorithms lists the engines with float32 kernel support.
func float32Algorithms() []Algorithm {
	return []Algorithm{AlgorithmBrute, AlgorithmSweep, AlgorithmGrid, AlgorithmEKDB}
}

// TestFloat32MeasuredRecall documents the float32 precision contract on
// realistic data: against the float64 oracle, the float32 engines may flip
// only pairs whose true distance lies within a narrow relative band of ε
// (the float32 rounding of coordinates plus accumulation error), recall
// stays ≥ 99.9%, and every float32 engine — serial or parallel — produces
// the identical pair set, because they share one rounded mirror and one
// accumulation order.
func TestFloat32MeasuredRecall(t *testing.T) {
	ds, err := Synthetic("clustered", 1200, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{L2, L1, Linf} {
		eps := map[Metric]float64{L2: 0.6, L1: 2.8, Linf: 0.22}[m]
		oracle := sortedPairs(oraclePairs(ds, m, eps))
		if len(oracle) < 50 {
			t.Fatalf("degenerate: only %d oracle pairs for %s", len(oracle), m)
		}
		var f32Ref []Pair
		for _, algo := range float32Algorithms() {
			res, err := SelfJoin(ds, Options{Eps: eps, Metric: m, Algorithm: algo, Float32: true})
			if err != nil {
				t.Fatal(err)
			}
			got := sortedPairs(res.Pairs)
			if f32Ref == nil {
				f32Ref = got
			} else if fmt.Sprint(got) != fmt.Sprint(f32Ref) {
				t.Errorf("metric=%s algo=%s: float32 pair set differs from other float32 engines", m, algo)
			}

			// Every flipped pair must sit in the boundary band: float32
			// coordinate rounding is ~6e-8 relative, and accumulating 32
			// dimensions grows it by well under three orders of magnitude,
			// so 1e-4·ε bounds every legitimate flip with huge margin while
			// still catching any real kernel defect.
			band := 1e-4 * eps
			im := m.internal()
			for _, p := range append(diffPairs(oracle, got), diffPairs(got, oracle)...) {
				d := vec.Dist(im, ds.Point(p.I), ds.Point(p.J))
				if math.Abs(d-eps) > band {
					t.Errorf("metric=%s algo=%s: pair %v flipped at dist %.9f, |d-eps|=%g exceeds band %g",
						m, algo, p, d, math.Abs(d-eps), band)
				}
			}
			missing := len(diffPairs(oracle, got))
			recall := 1 - float64(missing)/float64(len(oracle))
			if recall < 0.999 {
				t.Errorf("metric=%s algo=%s: recall %.6f < 0.999 (%d/%d missing)", m, algo, recall, missing, len(oracle))
			}
		}

		// The parallel ekdb path shares the warmed mirror and kernels: its
		// float32 pair set must match the serial one exactly.
		par, err := SelfJoin(ds, Options{Eps: eps, Metric: m, Algorithm: AlgorithmEKDB, Float32: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedPairs(par.Pairs); fmt.Sprint(got) != fmt.Sprint(f32Ref) {
			t.Errorf("metric=%s: parallel float32 ekdb differs from serial float32 pair set", m)
		}
	}
}

// TestFloat32IgnoredByExactEngines checks that the engines without float32
// kernels accept the option and stay exact.
func TestFloat32IgnoredByExactEngines(t *testing.T) {
	ds := quantizedDataset(200, 8, 3)
	want := sortedPairs(oraclePairs(ds, L2, 0.375))
	for _, algo := range []Algorithm{AlgorithmKDTree, AlgorithmRTree, AlgorithmRPlus, AlgorithmZOrder, AlgorithmHilbert} {
		res, err := SelfJoin(ds, Options{Eps: 0.375, Algorithm: algo, Float32: true})
		if err != nil {
			t.Fatal(err)
		}
		got := sortedPairs(res.Pairs)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s with Float32: pair set differs from exact oracle", algo)
		}
	}
}
