package main

import (
	"strings"
	"testing"
)

// TestTraceFlagPrintsSpanTree: -trace renders the run's span tree on
// stderr — a root, the library entry-point child with its algorithm
// attribute and work counters, and the build/probe phases under it.
func TestTraceFlagPrintsSpanTree(t *testing.T) {
	in := writeFixture(t, "a.csv", [][]float64{
		{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9},
	})
	var out, errw strings.Builder
	if err := run(in, "", 0.1, "L2", "ekdb", 1, false, false, true, true, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := errw.String()
	for _, want := range []string{
		"trace ",
		"simjoin.run",
		"simjoin.SelfJoin",
		"algorithm=ekdb",
		"pairs_emitted=2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
	// The entry-point span is indented under the CLI root.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "simjoin.SelfJoin") && !strings.HasPrefix(line, "    ") {
			t.Errorf("SelfJoin span not nested under root: %q", line)
		}
	}
}
