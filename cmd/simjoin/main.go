// Command simjoin runs a similarity join over CSV or binary point files.
//
// Self-join:
//
//	simjoin -in points.csv -eps 0.1
//
// Two-set join:
//
//	simjoin -in a.csv -with b.csv -eps 0.1 -algo rtree -metric L1
//
// k-nearest-neighbor join (every -in point to its k nearest -with points):
//
//	simjoin -in a.csv -with b.csv -knn 5
//
// EXPLAIN — what would run and the predicted result size, no execution:
//
//	simjoin -in points.csv -eps 0.1 -algo auto -explain
//
// Output is one "i,j,dist" row per matching pair (suppress with -count).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"simjoin"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input point file (.csv or binary); required")
		withPath = flag.String("with", "", "second point file for a two-set join (optional)")
		eps      = flag.Float64("eps", 0, "similarity threshold ε (required, > 0)")
		metric   = flag.String("metric", "L2", "distance metric: L2, L1 or Linf")
		algo     = flag.String("algo", string(simjoin.AlgorithmEKDB), "join algorithm: ekdb, brute, sweep, grid, kdtree, rtree, zorder")
		workers  = flag.Int("workers", 1, "parallel workers (ekdb/grid/kdtree joins and self-joins; KNN joins)")
		count    = flag.Bool("count", false, "print only the pair count and statistics")
		stream   = flag.Bool("stream", false, "print pairs as they are found instead of buffering the result set (memory stays flat)")
		quiet    = flag.Bool("quiet", false, "suppress the statistics footer on stderr")
		tracing  = flag.Bool("trace", false, "record a trace of the run and print its span tree on stderr")
		knn      = flag.Int("knn", 0, "k-nearest-neighbor join instead of an ε-join (requires -with; ignores -eps)")
		explain  = flag.Bool("explain", false, "print the plan — resolved algorithm and predicted result size — without running the join")
	)
	flag.Parse()
	if *explain {
		if err := runExplain(*inPath, *withPath, *eps, *metric, *algo, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
		return
	}
	if *knn > 0 {
		if err := runKNN(*inPath, *withPath, *knn, *metric, *workers, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*inPath, *withPath, *eps, *metric, *algo, *workers, *count, *stream, *quiet, *tracing, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "simjoin:", err)
		os.Exit(1)
	}
}

func run(inPath, withPath string, eps float64, metric, algo string, workers int, countOnly, stream, quiet, tracing bool, stdout, stderr io.Writer) error {
	if inPath == "" {
		return fmt.Errorf("-in is required")
	}
	if countOnly && stream {
		return fmt.Errorf("-count and -stream are mutually exclusive")
	}
	m, err := simjoin.ParseMetric(metric)
	if err != nil {
		return err
	}
	a, err := simjoin.Load(inPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", inPath, err)
	}
	opt := simjoin.Options{
		Eps:       eps,
		Metric:    m,
		Algorithm: simjoin.Algorithm(algo),
		Workers:   workers,
	}
	if countOnly {
		off := false
		opt.CollectPairs = &off
	}
	var tracer *simjoin.Tracer
	if tracing {
		tracer = simjoin.NewTracer(1)
		root := tracer.Start("simjoin.run")
		opt.Trace = root
		defer func() {
			root.End()
			printTrace(stderr, tracer)
		}()
	}
	var b *simjoin.Dataset
	if withPath != "" {
		b, err = simjoin.Load(withPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", withPath, err)
		}
		if b.Dims() != a.Dims() {
			return fmt.Errorf("dimensionality mismatch: %d vs %d", a.Dims(), b.Dims())
		}
	}
	second := a
	if b != nil {
		second = b
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	var s simjoin.Stats
	if stream {
		// Pairs print the moment the join finds them; nothing buffers.
		emit := func(i, j int) {
			fmt.Fprintf(out, "%d,%d,%g\n", i, j, dist(m, a.Point(i), second.Point(j)))
		}
		if b == nil {
			s, err = simjoin.SelfJoinEach(a, opt, emit)
		} else {
			s, err = simjoin.JoinEach(a, b, opt, emit)
		}
		if err != nil {
			return err
		}
	} else {
		var res *simjoin.Result
		if b == nil {
			res, err = simjoin.SelfJoin(a, opt)
		} else {
			res, err = simjoin.Join(a, b, opt)
		}
		if err != nil {
			return err
		}
		s = res.Stats
		if countOnly {
			fmt.Fprintf(out, "%d\n", s.Results)
		} else {
			for _, p := range res.Pairs {
				fmt.Fprintf(out, "%d,%d,%g\n", p.I, p.J, dist(m, a.Point(p.I), second.Point(p.J)))
			}
		}
	}
	if !quiet {
		fmt.Fprintf(stderr, "pairs=%d candidates=%d distcomps=%d nodevisits=%d elapsed=%s\n",
			s.Results, s.Candidates, s.DistComps, s.NodeVisits, s.Elapsed)
	}
	return nil
}

// runExplain handles -explain: the library's EXPLAIN report — requested
// vs resolved algorithm and the planner's size prediction — printed as
// key=value lines, without executing the join.
func runExplain(inPath, withPath string, eps float64, metric, algo string, stdout io.Writer) error {
	if inPath == "" {
		return fmt.Errorf("-in is required")
	}
	m, err := simjoin.ParseMetric(metric)
	if err != nil {
		return err
	}
	a, err := simjoin.Load(inPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", inPath, err)
	}
	opt := simjoin.Options{Eps: eps, Metric: m, Algorithm: simjoin.Algorithm(algo)}
	var ex simjoin.Explanation
	if withPath != "" {
		b, err := simjoin.Load(withPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", withPath, err)
		}
		ex, err = simjoin.ExplainJoin(a, b, opt)
		if err != nil {
			return err
		}
	} else {
		ex, err = simjoin.Explain(a, opt)
		if err != nil {
			return err
		}
	}
	source := "sample"
	if ex.Plan.Sketched {
		source = "sketch"
	}
	fmt.Fprintf(stdout, "eps=%g metric=%s requested=%s algorithm=%s estimated_pairs=%d selectivity=%g estimate_source=%s\n",
		ex.Eps, ex.Metric, ex.Requested, ex.Algorithm, ex.Plan.EstimatedPairs, ex.Plan.Selectivity, source)
	return nil
}

// runKNN handles -knn: every -in point mapped to its k nearest -with
// points, one "i,j,dist" row per neighbor in ascending distance order.
func runKNN(inPath, withPath string, k int, metric string, workers int, stdout io.Writer) error {
	if inPath == "" || withPath == "" {
		return fmt.Errorf("-knn requires both -in and -with")
	}
	m, err := simjoin.ParseMetric(metric)
	if err != nil {
		return err
	}
	a, err := simjoin.Load(inPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", inPath, err)
	}
	b, err := simjoin.Load(withPath)
	if err != nil {
		return fmt.Errorf("loading %s: %w", withPath, err)
	}
	rows, err := simjoin.KNNJoin(a, b, k, workers, m)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	for i, row := range rows {
		for _, n := range row {
			fmt.Fprintf(out, "%d,%d,%g\n", i, n.Index, n.Dist)
		}
	}
	return nil
}

// dist recomputes the pair distance for output (the library reports only
// membership).
func dist(m simjoin.Metric, a, b []float64) float64 {
	switch m {
	case simjoin.L1:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case simjoin.Linf:
		var s float64
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > s {
				s = d
			}
		}
		return s
	default:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
}
