package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"simjoin"
)

// printTrace renders the tracer's most recent trace as an indented span
// tree on w:
//
//	trace 4bf92f3577b34da6a3ce929d0e0e4736
//	  simjoin.run 12.4ms
//	    simjoin.SelfJoin 12.1ms algorithm=ekdb [dist_comps=812 pairs_emitted=97]
//	      build 1.3ms
//	      probe 10.8ms
func printTrace(w io.Writer, tr *simjoin.Tracer) {
	traces := tr.Traces()
	if len(traces) == 0 {
		fmt.Fprintln(w, "trace: no completed trace recorded")
		return
	}
	td := traces[len(traces)-1]
	fmt.Fprintf(w, "trace %s\n", td.TraceID)
	root, ok := td.Root()
	if !ok {
		return
	}
	printSpan(w, td, root, 1)
}

func printSpan(w io.Writer, td simjoin.TraceData, sp simjoin.SpanData, depth int) {
	fmt.Fprintf(w, "%s%s %s%s%s\n", strings.Repeat("  ", depth),
		sp.Name, sp.Duration(), formatAttrs(sp.Attrs), formatCounters(sp.Counters))
	for _, child := range td.ChildrenOf(sp.SpanID) {
		printSpan(w, td, child, depth+1)
	}
}

func formatAttrs(attrs []simjoin.SpanAttr) string {
	if len(attrs) == 0 {
		return ""
	}
	sorted := append([]simjoin.SpanAttr(nil), attrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, a := range sorted {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	return b.String()
}

func formatCounters(counters []simjoin.SpanCounter) string {
	if len(counters) == 0 {
		return ""
	}
	sorted := append([]simjoin.SpanCounter(nil), counters...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, len(sorted))
	for i, c := range sorted {
		parts[i] = fmt.Sprintf("%s=%d", c.Key, c.Value)
	}
	return " [" + strings.Join(parts, " ") + "]"
}
