package main

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"simjoin"
)

// writeFixture writes a tiny known dataset and returns its path.
func writeFixture(t *testing.T, name string, pts [][]float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := simjoin.FromPoints(pts).Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfJoinOutput(t *testing.T) {
	in := writeFixture(t, "a.csv", [][]float64{
		{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9},
	})
	var out, errw strings.Builder
	if err := run(in, "", 0.1, "L2", "ekdb", 1, false, false, false, false, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 2 {
		t.Fatalf("got %d pair lines: %q", len(lines), out.String())
	}
	// Each line is i,j,dist with dist ≤ eps.
	for _, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			t.Fatalf("malformed line %q", line)
		}
		d, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || d > 0.1 {
			t.Fatalf("bad distance in %q", line)
		}
	}
	if !strings.Contains(errw.String(), "pairs=2") {
		t.Errorf("stats footer missing: %q", errw.String())
	}
}

func TestCountOnlyAndQuiet(t *testing.T) {
	in := writeFixture(t, "a.bin", [][]float64{{0}, {0.01}, {5}})
	var out, errw strings.Builder
	if err := run(in, "", 0.1, "L2", "brute", 1, true, false, true, false, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "1" {
		t.Errorf("count output = %q, want 1", out.String())
	}
	if errw.Len() != 0 {
		t.Errorf("quiet run wrote stats: %q", errw.String())
	}
}

func TestTwoSetJoin(t *testing.T) {
	a := writeFixture(t, "a.csv", [][]float64{{0, 0}, {1, 1}})
	b := writeFixture(t, "b.csv", [][]float64{{0.05, 0}, {9, 9}})
	var out, errw strings.Builder
	if err := run(a, b, 0.1, "L2", "rtree", 1, false, false, true, false, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "0,0,") {
		t.Errorf("two-set output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	good := writeFixture(t, "a.csv", [][]float64{{0, 0}})
	bad3d := writeFixture(t, "b.csv", [][]float64{{0, 0, 0}})
	var out, errw strings.Builder
	for name, call := range map[string]func() error{
		"missing -in":   func() error { return run("", "", 0.1, "L2", "ekdb", 1, false, false, true, false, &out, &errw) },
		"bad metric":    func() error { return run(good, "", 0.1, "cosine", "ekdb", 1, false, false, true, false, &out, &errw) },
		"bad algorithm": func() error { return run(good, "", 0.1, "L2", "lsh", 1, false, false, true, false, &out, &errw) },
		"missing file": func() error {
			return run("/no/such/file.csv", "", 0.1, "L2", "ekdb", 1, false, false, true, false, &out, &errw)
		},
		"dims mismatch": func() error { return run(good, bad3d, 0.1, "L2", "ekdb", 1, false, false, true, false, &out, &errw) },
		"zero eps":      func() error { return run(good, "", 0, "L2", "ekdb", 1, false, false, true, false, &out, &errw) },
	} {
		if err := call(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDistHelper(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if d := dist(simjoin.L2, a, b); d != 5 {
		t.Errorf("L2 = %g", d)
	}
	if d := dist(simjoin.L1, a, b); d != 7 {
		t.Errorf("L1 = %g", d)
	}
	if d := dist(simjoin.Linf, a, b); d != 4 {
		t.Errorf("Linf = %g", d)
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

func TestRunKNN(t *testing.T) {
	a := writeFixture(t, "a.csv", [][]float64{{0, 0}, {1, 1}})
	b := writeFixture(t, "b.csv", [][]float64{{0.1, 0}, {0.9, 1}, {5, 5}})
	var out strings.Builder
	if err := runKNN(a, b, 2, "L2", 2, &out); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 4 { // 2 query points × k=2
		t.Fatalf("got %d lines: %q", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "0,0,") || !strings.HasPrefix(lines[2], "1,1,") {
		t.Errorf("nearest neighbors wrong: %q", out.String())
	}
}

func TestRunKNNErrors(t *testing.T) {
	a := writeFixture(t, "a.csv", [][]float64{{0, 0}})
	var out strings.Builder
	if err := runKNN(a, "", 2, "L2", 1, &out); err == nil {
		t.Error("missing -with accepted")
	}
	if err := runKNN("", a, 2, "L2", 1, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runKNN(a, a, 2, "bad", 1, &out); err == nil {
		t.Error("bad metric accepted")
	}
	if err := runKNN(a, "/no/file.csv", 2, "L2", 1, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStreamMatchesBuffered(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9},
	}
	in := writeFixture(t, "a.csv", pts)
	var buffered, streamed, errw strings.Builder
	if err := run(in, "", 0.1, "L2", "ekdb", 1, false, false, true, false, &buffered, &errw); err != nil {
		t.Fatal(err)
	}
	// Streamed pairs arrive in engine order; compare as sets. Workers>1
	// exercises the funnel path end to end.
	for _, workers := range []int{1, 4} {
		streamed.Reset()
		errw.Reset()
		if err := run(in, "", 0.1, "L2", "ekdb", workers, false, true, false, false, &streamed, &errw); err != nil {
			t.Fatal(err)
		}
		want := nonEmptyLines(buffered.String())
		got := nonEmptyLines(streamed.String())
		if len(got) != len(want) {
			t.Fatalf("workers=%d: streamed %d lines, buffered %d", workers, len(got), len(want))
		}
		wantSet := map[string]bool{}
		for _, l := range want {
			wantSet[l] = true
		}
		for _, l := range got {
			if !wantSet[l] {
				t.Fatalf("workers=%d: streamed line %q not in buffered output", workers, l)
			}
		}
		if !strings.Contains(errw.String(), "pairs=2") {
			t.Errorf("workers=%d: stats footer missing: %q", workers, errw.String())
		}
	}
}

func TestStreamTwoSet(t *testing.T) {
	a := writeFixture(t, "a.csv", [][]float64{{0, 0}, {5, 5}})
	b := writeFixture(t, "b.csv", [][]float64{{0.05, 0}, {9, 9}})
	var out, errw strings.Builder
	if err := run(a, b, 0.1, "L2", "", 2, false, true, true, false, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "0,0,") {
		t.Fatalf("streamed two-set output = %q", out.String())
	}
}

func TestStreamAndCountExclusive(t *testing.T) {
	in := writeFixture(t, "a.csv", [][]float64{{0}, {1}})
	var out, errw strings.Builder
	if err := run(in, "", 0.1, "L2", "", 1, true, true, true, false, &out, &errw); err == nil {
		t.Fatal("run accepted -count with -stream")
	}
}
