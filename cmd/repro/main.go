// Command repro regenerates every figure and table of the evaluation (see
// DESIGN.md §4 for the experiment index). Each experiment prints an aligned
// table; pass -csv to also write machine-readable copies.
//
//	repro              # full-scale run (a few minutes)
//	repro -quick       # CI-scale run (tens of seconds)
//	repro -only f2,f7  # a subset of experiments
//	repro -csv out/    # also write out/f1.csv … out/t2.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"simjoin/internal/bench"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "run the reduced CI-scale workloads")
		only   = flag.String("only", "", "comma-separated experiment ids (f1…f8, t1, t2, e1…e3); default all")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files (created if missing)")
	)
	flag.Parse()
	if err := run(*quick, *only, *csvDir, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(quick bool, only, csvDir string, out io.Writer) error {
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	mode := "full"
	if quick {
		mode = "quick"
	}
	fmt.Fprintf(out, "# simjoin evaluation reproduction (%s mode)\n\n", mode)
	total := time.Now()
	ran := 0
	for _, ex := range append(bench.All(), bench.Extensions()...) {
		if len(selected) > 0 && !selected[ex.ID] {
			continue
		}
		ran++
		start := time.Now()
		tb := ex.Run(quick)
		fmt.Fprintf(out, "%s\n", ex.Title)
		if err := tb.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s in %s)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, ex.ID+".csv"))
			if err != nil {
				return err
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched -only=%q", only)
	}
	fmt.Fprintf(out, "# %d experiments in %s\n", ran, time.Since(total).Round(time.Millisecond))
	return nil
}
