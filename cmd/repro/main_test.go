package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubsetQuick(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(true, "f4,t2", dir, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"quick mode", "F4", "T2", "leaf", "build_ms", "2 experiments"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "F1:") {
		t.Error("unselected experiment ran")
	}
	for _, name := range []string{"f4.csv", "t2.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("%s: not CSV-shaped", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(true, "f99", "", &out); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadCSVDir(t *testing.T) {
	var out strings.Builder
	if err := run(true, "f4", "/proc/definitely/not/writable", &out); err == nil {
		t.Error("unwritable csv dir accepted")
	}
}
