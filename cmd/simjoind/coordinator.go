package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"simjoin/internal/cluster"
	"simjoin/internal/obsv"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
)

// coordServer is the HTTP face of coordinator mode: the worker REST API,
// answered by scatter-gather over the fleet. Query responses gain three
// fields — "shards", "partial" and "failed_shards" — so callers can see
// when a dead worker left the answer incomplete.
type coordServer struct {
	c *cluster.Coordinator
	m *metrics
	// tracer retains completed request traces — a coordinator trace holds
	// one "shard.<op>" child span per worker RPC. log, when non-nil, gets
	// one structured access-log line per request.
	tracer *trace.Tracer
	log    *slog.Logger
	// qlog is the coordinator-side query journal behind GET
	// /debug/queries; its records carry the fan-out width in Shards.
	qlog *querylog.Log
	// fanout observes the wall time of each scatter-gather operation
	// across the fleet, labeled by operation.
	fanout *obsv.HistogramVec
	// maxBody bounds request bodies (-max-body-bytes).
	maxBody int64
	// maxPairs, when > 0, is the admission budget (-max-pairs): a
	// distributed self-join whose summed per-shard estimate exceeds it
	// is refused with 429, or runs counting-only when the request sets
	// "degrade".
	maxPairs int64
	// debug additionally mounts net/http/pprof under /debug/pprof/.
	debug bool

	// stopWatches closes when graceful shutdown begins, ending every
	// standing-query watch stream with a terminal event so the HTTP
	// drain is not held open; stopOnce makes shutdownWatches reentrant.
	stopWatches chan struct{}
	stopOnce    sync.Once

	// watchMu guards watches, the active standing-query count per
	// dataset (reported by GET /datasets/{name}).
	watchMu sync.Mutex
	watches map[string]int
}

func newCoordServer(c *cluster.Coordinator) *coordServer {
	m := newMetrics()
	s := &coordServer{
		c: c, m: m, maxBody: defaultMaxBodyBytes, tracer: trace.New(defaultTraceCapacity),
		qlog:        querylog.New(0),
		stopWatches: make(chan struct{}),
		watches:     make(map[string]int),
	}
	m.reg.NewGaugeFunc("simjoind_live_subscriptions",
		"Standing-query subscriptions currently active.",
		func() float64 { return float64(s.watchTotal()) })
	s.fanout = m.reg.NewHistogramVec("simjoind_fanout_duration_seconds",
		"Scatter-gather fan-out latency across the worker fleet by operation.", "op", obsv.LatencyBuckets())
	// Health of every worker, probed at scrape time: 1 up, 0 down.
	m.reg.NewGaugeVecFunc("simjoind_worker_up",
		"Per-worker health as seen by the coordinator (1 = up).", "worker",
		func() map[string]float64 {
			ctx, cancel := context.WithTimeout(context.Background(), healthProbeTimeout)
			defer cancel()
			out := make(map[string]float64, len(c.Workers()))
			for _, wh := range c.Health(ctx) {
				v := 0.0
				if wh.OK {
					v = 1
				}
				out[wh.URL] = v
			}
			return out
		})
	// The scatter client's retry tally — rising values mean a flaky fleet.
	m.reg.NewCounterFunc("simjoind_rclient_retries_total",
		"HTTP retry attempts the coordinator's scatter client has made.",
		c.Client().Retries)
	return s
}

// healthProbeTimeout bounds the worker health sweep a /metrics scrape
// triggers.
const healthProbeTimeout = 2 * time.Second

// observeFanout charges op's scatter wall time to the fan-out histogram.
func (s *coordServer) observeFanout(op string, start time.Time) {
	s.fanout.With(op).Observe(time.Since(start).Seconds())
}

// handler wires up the coordinator routes with the same tracing +
// access-log + metrics middleware the worker uses.
func (s *coordServer) handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(s.m, s.tracer, s.log, pattern, h))
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /datasets", s.handleList)
	handle("GET /datasets/{name}", s.handleGetDataset)
	handle("GET /datasets/{name}/explain", s.handleExplain)
	handle("PUT /datasets/{name}", s.handlePut)
	handle("DELETE /datasets/{name}", s.handleDelete)
	handle("POST /datasets/{name}/selfjoin", s.handleSelfJoin)
	handle("POST /datasets/{name}/range", s.handleRange)
	handle("POST /datasets/{name}/knn", s.handleKNN)
	handle("POST /datasets/{name}/points", s.handleAppend)
	handle("POST /datasets/{name}/watch", s.handleWatch)
	handle("POST /join", unsupported("two-set joins"))
	mux.Handle("GET /metrics", s.m.promHandler())
	mux.HandleFunc("GET /debug/vars", s.m.varsHandler)
	mux.HandleFunc("GET /debug/traces", tracesHandler(s.tracer))
	mux.HandleFunc("GET /debug/traces/{id}", s.handleStitchedTrace)
	mux.HandleFunc("GET /debug/queries", queriesHandler(s.qlog))
	if s.debug {
		mountPprof(mux)
	}
	return mux
}

// handleStitchedTrace serves the coordinator's GET /debug/traces/{id}:
// the coordinator's own retained spans for the trace plus every
// worker's, fetched live and stitched into one distributed span tree.
// Like the other debug routes it is outside the instrument middleware,
// so fetching a trace neither mints a new one nor minted attempt spans
// on the worker RPCs.
func (s *coordServer) handleStitchedTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.c.FetchTrace(r.Context(), id, trace.Collect(s.tracer.Traces(), id))
	if len(st.Spans) == 0 {
		httpError(w, http.StatusNotFound, "no trace %q retained anywhere in the cluster", id)
		return
	}
	writeJSON(w, st)
}

// unsupported answers 501 for worker endpoints the cluster layer does
// not (yet) distribute.
func unsupported(what string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotImplemented, "%s not supported in coordinator mode", what)
	}
}

// coordError maps cluster error types onto HTTP statuses.
func coordError(w http.ResponseWriter, err error) {
	var nfe cluster.NotFoundError
	var qe cluster.QueryError
	var ue cluster.UnavailableError
	switch {
	case errors.As(err, &nfe):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.As(err, &qe):
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.As(err, &ue):
		httpError(w, http.StatusBadGateway, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleHealthz reports the coordinator as live plus each worker's
// health, "degraded" when any worker is down.
func (s *coordServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workers := s.c.Health(r.Context())
	status := "ok"
	for _, wh := range workers {
		if !wh.OK {
			status = "degraded"
		}
	}
	writeJSON(w, map[string]any{
		"status":   status,
		"datasets": len(s.c.List()),
		"workers":  workers,
		"build":    buildVersion,
	})
}

func (s *coordServer) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.c.List())
}

func (s *coordServer) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		httpError(w, http.StatusBadRequest, "dataset name required")
		return
	}
	margin := 0.0
	if v := r.URL.Query().Get("margin"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || !(parsed > 0) {
			httpError(w, http.StatusBadRequest, "margin must be a positive number, got %q", v)
			return
		}
		margin = parsed
	}
	pts, ok := decodeUpload(w, r, s.maxBody)
	if !ok {
		return
	}
	defer s.observeFanout("upload", time.Now())
	info, err := s.c.Upload(r.Context(), name, pts, margin)
	if err != nil {
		coordError(w, err)
		return
	}
	writeJSON(w, info)
}

func (s *coordServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.c.Delete(r.Context(), r.PathValue("name")); err != nil {
		coordError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// coordJoinResponse is joinResponse plus the cluster degradation fields.
type coordJoinResponse struct {
	Pairs        [][2]int             `json:"pairs"`
	Total        int64                `json:"total"`
	Truncated    bool                 `json:"truncated"`
	ElapsedMS    float64              `json:"elapsed_ms"`
	Shards       int                  `json:"shards"`
	Partial      bool                 `json:"partial"`
	FailedShards []cluster.ShardError `json:"failed_shards,omitempty"`
	// EstimatedPairs is the sum of the shards' pre-run predictions,
	// present when the admission budget priced the query.
	EstimatedPairs *int64 `json:"estimated_pairs,omitempty"`
	// Degraded marks a counting-only run forced by the admission budget.
	Degraded bool `json:"degraded,omitempty"`
}

// admitSelfJoin prices a distributed self-join against the -max-pairs
// budget by scattering an estimate round (one sketch scan per worker).
// It returns the summed prediction (nil when no budget is set or no
// shard answered — pricing failures never block the query, they just
// forgo admission) and whether the query is over budget.
func (s *coordServer) admitSelfJoin(r *http.Request, name string, p joinParams) (*int64, bool) {
	if s.maxPairs <= 0 || !(p.Eps > 0) {
		return nil, false
	}
	defer s.observeFanout("estimate", time.Now())
	est, err := s.c.EstimateSelfJoin(r.Context(), name, p.Eps, p.Metric)
	if err != nil {
		return nil, false
	}
	source := "sample"
	for _, sh := range est.Shards {
		if sh.Sketched {
			source = "sketch"
			break
		}
	}
	s.m.estimateRequests.With(source).Inc()
	total := est.Pairs
	return &total, total > s.maxPairs
}

func (s *coordServer) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	var p joinParams
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&p); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	name := r.PathValue("name")
	q := cluster.JoinQuery{
		Eps:       p.Eps,
		Metric:    p.Metric,
		Algorithm: p.Algorithm,
		Workers:   p.Workers,
		Float32:   p.Float32,
	}
	est, over := s.admitSelfJoin(r, name, p)
	rec := querylog.Record{
		Kind: "selfjoin", Dataset: name,
		Eps: p.Eps, Metric: p.Metric, Algorithm: p.Algorithm,
		Stream: p.Stream, EstimatedPairs: -1, TraceID: traceIDOf(r),
	}
	if est != nil {
		rec.EstimatedPairs = *est
	}
	recStart := time.Now()
	if over {
		if !p.Degrade {
			rejectOverBudget(w, s.m, *est, s.maxPairs)
			recordFailure(s.qlog, s.m, rec, recStart, querylog.OutcomeRejected, nil)
			return
		}
		s.m.estimateDegraded.Inc()
		start := time.Now()
		res, err := s.c.SelfJoinEach(r.Context(), name, q, func(i, j int) {})
		s.observeFanout("selfjoin", start)
		if err != nil {
			coordError(w, err)
			recordFailure(s.qlog, s.m, rec, recStart, querylog.OutcomeError, err)
			return
		}
		s.m.observeEstimateRatio(*est, res.Pairs)
		rec.ActualPairs, rec.Shards = res.Pairs, res.Shards
		rec.ElapsedNS = int64(time.Since(recStart))
		rec.Outcome = querylog.OutcomeDegraded
		recordQuery(s.qlog, s.m, rec)
		writeJSON(w, coordJoinResponse{
			Pairs:          [][2]int{},
			Total:          res.Pairs,
			ElapsedMS:      float64(time.Since(start).Microseconds()) / 1000,
			Shards:         res.Shards,
			Partial:        res.Partial,
			FailedShards:   res.Failed,
			EstimatedPairs: est,
			Degraded:       true,
		})
		return
	}
	if p.Stream {
		s.streamSelfJoin(w, r, p, q, rec)
		return
	}
	start := time.Now()
	res, err := s.c.SelfJoin(r.Context(), name, q)
	s.observeFanout("selfjoin", start)
	if err != nil {
		coordError(w, err)
		recordFailure(s.qlog, s.m, rec, recStart, querylog.OutcomeError, err)
		return
	}
	out := coordJoinResponse{
		Pairs:          res.Pairs,
		Total:          int64(len(res.Pairs)),
		ElapsedMS:      float64(time.Since(start).Microseconds()) / 1000,
		Shards:         res.Shards,
		Partial:        res.Partial,
		FailedShards:   res.Failed,
		EstimatedPairs: est,
	}
	if est != nil {
		s.m.observeEstimateRatio(*est, out.Total)
	}
	rec.ActualPairs, rec.Shards = out.Total, res.Shards
	rec.ElapsedNS = int64(time.Since(recStart))
	rec.Outcome = querylog.OutcomeOK
	recordQuery(s.qlog, s.m, rec)
	if p.MaxPairs > 0 && len(out.Pairs) > p.MaxPairs {
		out.Pairs = out.Pairs[:p.MaxPairs]
		out.Truncated = true
	}
	if out.Pairs == nil {
		out.Pairs = [][2]int{}
	}
	writeJSON(w, out)
}

// streamSelfJoin answers a distributed self-join as NDJSON: pairs flow
// from the shards through the coordinator to the client as they arrive —
// end to end, no full pair set is buffered anywhere. The closing summary
// object carries the cluster degradation fields (and estimated_pairs
// when the query was priced). rec is the caller's pre-filled journal
// record; the stream's outcome is journaled here where the totals are
// known.
func (s *coordServer) streamSelfJoin(w http.ResponseWriter, r *http.Request, p joinParams, q cluster.JoinQuery, rec querylog.Record) {
	s.m.streamRequests.With("POST /datasets/{name}/selfjoin").Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	start := time.Now()
	var sent int64
	res, err := s.c.SelfJoinEach(r.Context(), r.PathValue("name"), q, func(i, j int) {
		if p.MaxPairs > 0 && sent >= int64(p.MaxPairs) {
			return
		}
		sent++
		fmt.Fprintf(bw, "[%d,%d]\n", i, j)
		if sent%streamFlushEvery == 0 {
			_ = bw.Flush()
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	s.observeFanout("selfjoin", start)
	if err != nil {
		// SelfJoinEach fails before delivering any pair (validation, or
		// every shard down), so a plain error answer is still possible.
		coordError(w, err)
		recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
		return
	}
	if rec.EstimatedPairs >= 0 {
		s.m.observeEstimateRatio(rec.EstimatedPairs, res.Pairs)
	}
	rec.ActualPairs, rec.Shards = res.Pairs, res.Shards
	rec.ElapsedNS = int64(time.Since(start))
	rec.Outcome = querylog.OutcomeOK
	recordQuery(s.qlog, s.m, rec)
	s.m.streamPairs.Add(sent)
	summary := map[string]any{
		"total":         res.Pairs,
		"truncated":     p.MaxPairs > 0 && res.Pairs > int64(p.MaxPairs),
		"elapsed_ms":    float64(time.Since(start).Microseconds()) / 1000,
		"shards":        res.Shards,
		"partial":       res.Partial,
		"failed_shards": res.Failed,
	}
	if rec.EstimatedPairs >= 0 {
		summary["estimated_pairs"] = rec.EstimatedPairs
	}
	line, _ := json.Marshal(summary)
	bw.Write(line)
	bw.WriteByte('\n')
	_ = bw.Flush()
}

func (s *coordServer) handleRange(w http.ResponseWriter, r *http.Request) {
	var q pointQuery
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	start := time.Now()
	defer s.observeFanout("range", start)
	res, err := s.c.Range(r.Context(), r.PathValue("name"), q.Point, q.Radius, q.Metric)
	if err != nil {
		coordError(w, err)
		return
	}
	idx := res.Indexes
	if idx == nil {
		idx = []int{}
	}
	recordQuery(s.qlog, s.m, querylog.Record{
		Kind: "range", Dataset: r.PathValue("name"), Eps: q.Radius, Metric: q.Metric,
		EstimatedPairs: -1, ActualPairs: int64(len(idx)), Shards: res.Shards,
		ElapsedNS: int64(time.Since(start)), TraceID: traceIDOf(r), Outcome: querylog.OutcomeOK,
	})
	writeJSON(w, map[string]any{
		"indexes":       idx,
		"shards":        res.Shards,
		"partial":       res.Partial,
		"failed_shards": res.Failed,
	})
}

func (s *coordServer) handleKNN(w http.ResponseWriter, r *http.Request) {
	var q pointQuery
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	start := time.Now()
	defer s.observeFanout("knn", start)
	res, err := s.c.KNN(r.Context(), r.PathValue("name"), q.Point, q.K, q.Metric)
	if err != nil {
		coordError(w, err)
		return
	}
	nbrs := res.Neighbors
	if nbrs == nil {
		nbrs = []cluster.Neighbor{}
	}
	recordQuery(s.qlog, s.m, querylog.Record{
		Kind: "knn", Dataset: r.PathValue("name"), Metric: q.Metric,
		EstimatedPairs: -1, ActualPairs: int64(len(nbrs)), Shards: res.Shards,
		ElapsedNS: int64(time.Since(start)), TraceID: traceIDOf(r), Outcome: querylog.OutcomeOK,
	})
	writeJSON(w, map[string]any{
		"neighbors":     nbrs,
		"shards":        res.Shards,
		"partial":       res.Partial,
		"failed_shards": res.Failed,
	})
}
