package main

import (
	"log/slog"
	"time"

	"simjoin"
	"simjoin/internal/store"
)

// attachStore wires a recovered catalog into the server: every recovered
// dataset becomes a served entry, mutating handlers start teeing through
// the store, and the live WAL size becomes a scrape-time gauge.
func (s *server) attachStore(cat *store.Catalog) {
	s.st = cat
	s.rec = cat.Recovery()
	for name, ds := range cat.Datasets() {
		// newEntry rebuilds each dataset's join-size sketch from the
		// recovered points, so estimates survive restarts too.
		s.sets[name] = s.newEntry(simjoin.WrapDataset(ds))
	}
	s.m.reg.NewGaugeFunc("simjoind_store_wal_bytes",
		"Current total write-ahead log size across datasets.",
		func() float64 { return float64(cat.WALBytes()) })
}

// storeHooks routes the storage engine's observability callbacks into
// the server's Prometheus registry.
func storeHooks(m *metrics) store.Hooks {
	return store.Hooks{
		WALAppend: func(d time.Duration, bytes int) {
			m.storeWALAppend.Observe(d.Seconds())
			m.storeWALBytes.Add(int64(bytes))
		},
		Snapshot: func(d time.Duration, bytes int) {
			m.storeSnapshot.Observe(d.Seconds())
		},
		Compaction: func(d time.Duration) {
			m.storeCompactions.Inc()
			m.storeCompaction.Observe(d.Seconds())
		},
		Fsync: func() { m.storeFsyncs.Inc() },
	}
}

// logRecovery emits one structured line per recovered dataset plus one
// per quarantined directory, so a restart's replay is auditable.
func logRecovery(logger *slog.Logger, dir string, rec store.RecoveryInfo) {
	for _, d := range rec.Datasets {
		logger.Info("recovered dataset",
			"name", d.Name, "points", d.Points, "dims", d.Dims,
			"wal_records", d.Records, "wal_bytes", d.WALBytes,
			"tail_truncated", d.TailTruncated)
	}
	for _, q := range rec.Quarantined {
		logger.Error("quarantined dataset directory", "name", q.Name, "error", q.Error)
	}
	logger.Info("storage recovered", "dir", dir,
		"datasets", len(rec.Datasets), "records", rec.Records(),
		"truncated_tails", rec.TruncatedTails(), "quarantined", len(rec.Quarantined))
}
