package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simjoin/internal/gateway"
	"simjoin/internal/rclient"
)

// startGatewayStack boots the full production topology in-process: a
// gateway in front of a real coordinator sharding over three real
// workers. Returned is the gateway object (for metrics/drain) and its
// server; datasets are uploaded through the coordinator URL.
func startGatewayStack(t *testing.T, cfg *gateway.Config) (*gateway.Gateway, *httptest.Server, *httptest.Server) {
	t.Helper()
	coord, _ := startCluster(t, 3, 0.35)
	g, err := gateway.New(gateway.Options{
		Backends: []string{coord.URL},
		Client: &rclient.Client{
			MaxRetries:     2,
			BaseDelay:      2 * time.Millisecond,
			MaxDelay:       10 * time.Millisecond,
			AttemptTimeout: 10 * time.Second,
		},
	})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	if err := g.SetConfig(cfg); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	gw := httptest.NewServer(g.Handler())
	t.Cleanup(gw.Close)
	return g, gw, coord
}

// gwJoin posts a selfjoin through the gateway as one tenant.
func gwJoin(t *testing.T, gwURL, key, dataset string, body map[string]any, sticky string) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, gwURL+"/datasets/"+dataset+"/selfjoin", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+key)
	if sticky != "" {
		req.Header.Set(gateway.StickyHeader, sticky)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// scrapeGW fetches the gateway's /metrics text.
func scrapeGW(t *testing.T, gwURL string) string {
	t.Helper()
	resp, err := http.Get(gwURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(text)
}

// sampleValue pulls one sample's value out of Prometheus text.
func sampleValue(text, sample string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v float64
			fmt.Sscanf(line[len(sample)+1:], "%g", &v)
			return v
		}
	}
	return 0
}

// TestGatewayE2EQuotaIsolation is the tenancy acceptance test: tenant A
// exhausting its quota is shed with 429 + Retry-After while tenant B's
// traffic through the same gateway is unaffected.
func TestGatewayE2EQuotaIsolation(t *testing.T) {
	_, gw, coord := startGatewayStack(t, &gateway.Config{
		Tenants: []gateway.Tenant{
			{Name: "a", Key: "key-a", RatePerSec: 0.0001, Burst: 3},
			{Name: "b", Key: "key-b"},
		},
	})
	putPoints(t, coord.URL, "d", clusterPoints(200, 4, 7))

	shed := 0
	for i := 0; i < 6; i++ {
		resp, body := gwJoin(t, gw.URL, "key-a", "d", map[string]any{"eps": 0.2}, "")
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			if body["reason"] != "rate" {
				t.Fatalf("shed reason %v, want rate", body["reason"])
			}
		default:
			t.Fatalf("tenant a request %d: status %d", i, resp.StatusCode)
		}
	}
	if shed != 3 {
		t.Fatalf("tenant a: %d of 6 requests shed past burst 3, want 3", shed)
	}
	// Tenant B is untouched by A's exhaustion.
	for i := 0; i < 5; i++ {
		resp, body := gwJoin(t, gw.URL, "key-b", "d", map[string]any{"eps": 0.2}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant b request %d caught in a's quota: status %d %v", i, resp.StatusCode, body)
		}
	}
	text := scrapeGW(t, gw.URL)
	if got := sampleValue(text, `simjoin_gw_shed_total{tenant="a",reason="rate"}`); got != 3 {
		t.Fatalf(`shed_total{a,rate} = %v, want 3`, got)
	}
	if got := sampleValue(text, `simjoin_gw_shed_total{tenant="b",reason="rate"}`); got != 0 {
		t.Fatalf(`shed_total{b,rate} = %v, want 0`, got)
	}
}

// TestGatewayE2EABSplit drives 200 requests with distinct sticky keys
// through a 50% experiment and checks both that the split lands within
// ±15 points and that every key's assignment is deterministic.
func TestGatewayE2EABSplit(t *testing.T) {
	_, gw, coord := startGatewayStack(t, &gateway.Config{
		Tenants: []gateway.Tenant{{Name: "a", Key: "k"}},
		Experiments: []gateway.Experiment{
			{Name: "split", Percent: 50, Override: gateway.Override{Algorithm: "brute"}},
		},
	})
	putPoints(t, coord.URL, "d", clusterPoints(120, 4, 11))

	const n = 200
	for i := 0; i < n; i++ {
		resp, body := gwJoin(t, gw.URL, "k", "d", map[string]any{"eps": 0.15}, fmt.Sprintf("user-%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d %v", i, resp.StatusCode, body)
		}
	}
	text := scrapeGW(t, gw.URL)
	cand := sampleValue(text, `simjoin_gw_arm_requests_total{experiment="split",arm="candidate"}`)
	inc := sampleValue(text, `simjoin_gw_arm_requests_total{experiment="split",arm="incumbent"}`)
	if cand+inc != n {
		t.Fatalf("arms account for %v requests, want %d", cand+inc, n)
	}
	if cand < n*0.35 || cand > n*0.65 {
		t.Fatalf("50%% experiment routed %v/%d to the candidate (outside ±15 points)", cand, n)
	}
	// Latency histograms exist for both arms.
	for _, arm := range []string{"incumbent", "candidate"} {
		want := fmt.Sprintf(`simjoin_gw_arm_latency_seconds_count{experiment="split",arm=%q}`, arm)
		if sampleValue(text, want) == 0 {
			t.Fatalf("no latency samples for arm %s", arm)
		}
	}
}

// TestGatewayE2EShadowNoMismatch shadows every join onto a forced-brute
// candidate over the real 3-worker cluster. Brute force and the default
// engine are both exact, so the differ must report zero mismatches —
// this is the experiment pipeline's end-to-end correctness proof.
func TestGatewayE2EShadowNoMismatch(t *testing.T) {
	g, gw, coord := startGatewayStack(t, &gateway.Config{
		Tenants: []gateway.Tenant{{Name: "a", Key: "k"}},
		Experiments: []gateway.Experiment{
			{Name: "sh", Percent: 100, Shadow: true, Override: gateway.Override{Algorithm: "brute"}},
		},
	})
	putPoints(t, coord.URL, "d", clusterPoints(150, 4, 13))

	const n = 8
	for i := 0; i < n; i++ {
		resp, body := gwJoin(t, gw.URL, "k", "d", map[string]any{"eps": 0.15}, fmt.Sprintf("s%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d %v", i, resp.StatusCode, body)
		}
		if _, hasPairs := body["pairs"]; !hasPairs {
			t.Fatalf("shadowed request %d lost the incumbent answer: %v", i, body)
		}
	}
	g.ShadowDrain()
	text := scrapeGW(t, gw.URL)
	diffs := sampleValue(text, `simjoin_gw_shadow_diffs_total{experiment="sh"}`)
	dropped := sampleValue(text, "simjoin_gw_shadow_dropped_total")
	if diffs+dropped != n {
		t.Fatalf("shadow runs: %v diffed + %v dropped, want %d total", diffs, dropped, n)
	}
	if diffs == 0 {
		t.Fatal("every shadow was dropped — nothing was compared")
	}
	if got := sampleValue(text, `simjoin_gw_shadow_mismatch_total{experiment="sh"}`); got != 0 {
		t.Fatalf("exact engines disagreed %v times in shadow", got)
	}
}

// TestGatewayE2EStitchedTrace sends a traced join through the gateway
// and asserts GET /debug/traces/{id} on the gateway stitches spans from
// the gateway, the coordinator and the workers into one tree.
func TestGatewayE2EStitchedTrace(t *testing.T) {
	_, gw, coord := startGatewayStack(t, &gateway.Config{
		Tenants: []gateway.Tenant{{Name: "a", Key: "k"}},
	})
	putPoints(t, coord.URL, "d", clusterPoints(100, 4, 17))

	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	raw, _ := json.Marshal(map[string]any{"eps": 0.2})
	req, _ := http.NewRequest(http.MethodPost, gw.URL+"/datasets/d/selfjoin", bytes.NewReader(raw))
	req.Header.Set("Authorization", "Bearer k")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced join: status %d", resp.StatusCode)
	}

	r2, err := http.Get(gw.URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("stitched trace: status %d", r2.StatusCode)
	}
	var st struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name     string `json:"name"`
			ParentID string `json:"parent_id"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != traceID {
		t.Fatalf("trace id %q, want %q", st.TraceID, traceID)
	}
	var gwSpan, backendSpan bool
	for _, sp := range st.Spans {
		if strings.HasPrefix(sp.Name, "gw ") {
			gwSpan = true
		} else {
			backendSpan = true
		}
	}
	if !gwSpan || !backendSpan || len(st.Spans) < 3 {
		t.Fatalf("stitched trace has %d spans (gateway=%v backend=%v) — not a full gateway→coordinator→worker tree", len(st.Spans), gwSpan, backendSpan)
	}
}

// TestGatewayE2EFloat32Override proves the Float32 experiment override
// reaches the engines: a 100% (non-shadow) rule flips float32 on and
// the join still answers the exact pair set end to end.
func TestGatewayE2EFloat32Override(t *testing.T) {
	f32 := true
	_, gw, coord := startGatewayStack(t, &gateway.Config{
		Tenants: []gateway.Tenant{{Name: "a", Key: "k"}},
		Experiments: []gateway.Experiment{
			{Name: "f32", Percent: 100, Override: gateway.Override{Float32: &f32}},
		},
	})
	putPoints(t, coord.URL, "d", clusterPoints(150, 4, 19))

	// Oracle: the same join through the coordinator without the gateway.
	respO, bodyO := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin", map[string]any{"eps": 0.15})
	if respO.StatusCode != http.StatusOK {
		t.Fatalf("oracle join: %d", respO.StatusCode)
	}
	resp, body := gwJoin(t, gw.URL, "k", "d", map[string]any{"eps": 0.15}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("float32 arm join: %d %v", resp.StatusCode, body)
	}
	if body["total"] != bodyO["total"] {
		t.Fatalf("float32 arm total %v differs from exact oracle %v", body["total"], bodyO["total"])
	}
}
