package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape fetches and returns the /metrics text of a test server.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointWorker(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {1, 1}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}
	// One error to land in the error counter.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/datasets/zzz/selfjoin", map[string]any{"eps": 0.1})
	resp.Body.Close()

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`simjoind_requests_total{route="PUT /datasets/{name}"} 1`,
		`simjoind_requests_total{route="POST /datasets/{name}/selfjoin"} 2`,
		`simjoind_errors_total{route="POST /datasets/{name}/selfjoin"} 1`,
		`simjoind_request_duration_seconds_count{route="POST /datasets/{name}/selfjoin"} 2`,
		`# TYPE simjoind_request_duration_seconds histogram`,
		`simjoind_request_duration_seconds_bucket{route="POST /datasets/{name}/selfjoin",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
}

func TestMetricsStreamCounters(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}})
	resp, err := http.Post(ts.URL+"/datasets/a/selfjoin", "application/json",
		strings.NewReader(`{"eps":0.1,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	text := scrape(t, ts.URL)
	for _, want := range []string{
		// The streamed request is counted by both the route middleware
		// and the dedicated stream counters (2 pairs in this dataset).
		`simjoind_requests_total{route="POST /datasets/{name}/selfjoin"} 1`,
		`simjoind_stream_requests_total{route="POST /datasets/{name}/selfjoin"} 1`,
		`simjoind_stream_pairs_total 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
}

func TestMetricsEndpointCoordinator(t *testing.T) {
	coord, workers := startCluster(t, 2, 0.25)
	putPoints(t, coord.URL, "pts", clusterPoints(60, 3, 5))
	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/pts/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}

	text := scrape(t, coord.URL)
	for _, want := range []string{
		`simjoind_requests_total{route="POST /datasets/{name}/selfjoin"} 1`,
		`simjoind_fanout_duration_seconds_count{op="selfjoin"} 1`,
		`simjoind_fanout_duration_seconds_count{op="upload"} 1`,
		`simjoind_rclient_retries_total 0`,
		`simjoind_worker_up{worker="` + workers[0].URL + `"} 1`,
		`simjoind_worker_up{worker="` + workers[1].URL + `"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator metrics missing %q\n---\n%s", want, text)
		}
	}

	// A dead worker flips its up gauge on the next scrape.
	workers[1].Close()
	text = scrape(t, coord.URL)
	if !strings.Contains(text, `simjoind_worker_up{worker="`+workers[1].URL+`"} 0`) {
		t.Errorf("dead worker still reported up\n---\n%s", text)
	}
}

func TestPprofMountedOnlyWithDebug(t *testing.T) {
	plain := httptest.NewServer(newServer().handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without -debug")
	}

	srv := newServer()
	srv.debug = true
	dbg := httptest.NewServer(srv.handler())
	defer dbg.Close()
	resp, err = http.Get(dbg.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -debug: %d", resp.StatusCode)
	}
}
